#include "osnt/openflow/match.hpp"

#include <algorithm>

namespace osnt::openflow {
namespace {

/// Address mask for a prefix-wildcard field: `wild_bits` low bits wild.
std::uint32_t care_mask(std::uint32_t wild_bits) noexcept {
  if (wild_bits >= 32) return 0;
  return ~((1u << wild_bits) - 1);
}

}  // namespace

void OfMatch::set_nw_src_prefix(std::uint32_t addr,
                                std::uint32_t prefix_len) noexcept {
  nw_src = addr;
  const std::uint32_t wild = 32 - std::min(prefix_len, 32u);
  wildcards = (wildcards & ~wc::kNwSrcMask) | (wild << wc::kNwSrcShift);
}

void OfMatch::set_nw_dst_prefix(std::uint32_t addr,
                                std::uint32_t prefix_len) noexcept {
  nw_dst = addr;
  const std::uint32_t wild = 32 - std::min(prefix_len, 32u);
  wildcards = (wildcards & ~wc::kNwDstMask) | (wild << wc::kNwDstShift);
}

OfMatch OfMatch::from_packet(const net::ParsedPacket& p,
                             std::uint16_t in_port) noexcept {
  OfMatch m;
  m.wildcards = 0;
  m.in_port = in_port;
  m.dl_src = p.eth.src;
  m.dl_dst = p.eth.dst;
  m.dl_vlan = p.vlan ? p.vlan->vid : 0xFFFF;
  m.dl_vlan_pcp = p.vlan ? p.vlan->pcp : 0;
  m.dl_type = p.effective_ethertype();
  if (p.l3 == net::L3Kind::kIpv4) {
    m.nw_tos = static_cast<std::uint8_t>(p.ipv4.dscp << 2);
    m.nw_proto = p.ipv4.protocol;
    m.nw_src = p.ipv4.src.v;
    m.nw_dst = p.ipv4.dst.v;
  } else if (p.l3 == net::L3Kind::kArp) {
    m.nw_proto = static_cast<std::uint8_t>(p.arp.opcode);
    m.nw_src = p.arp.sender_ip.v;
    m.nw_dst = p.arp.target_ip.v;
  }
  switch (p.l4) {
    case net::L4Kind::kTcp:
      m.tp_src = p.tcp.src_port;
      m.tp_dst = p.tcp.dst_port;
      break;
    case net::L4Kind::kUdp:
      m.tp_src = p.udp.src_port;
      m.tp_dst = p.udp.dst_port;
      break;
    case net::L4Kind::kIcmp:
      m.tp_src = p.icmp.type;
      m.tp_dst = p.icmp.code;
      break;
    case net::L4Kind::kNone:
      break;
  }
  return m;
}

OfMatch OfMatch::exact_5tuple(std::uint32_t nw_src, std::uint32_t nw_dst,
                              std::uint8_t nw_proto, std::uint16_t tp_src,
                              std::uint16_t tp_dst) noexcept {
  OfMatch m;
  m.wildcards = wc::kAll & ~(wc::kDlType | wc::kNwProto | wc::kTpSrc |
                             wc::kTpDst | wc::kNwSrcMask | wc::kNwDstMask);
  m.dl_type = 0x0800;
  m.nw_proto = nw_proto;
  m.nw_src = nw_src;
  m.nw_dst = nw_dst;
  m.tp_src = tp_src;
  m.tp_dst = tp_dst;
  return m;
}

bool OfMatch::matches_packet(const OfMatch& c) const noexcept {
  if (!(wildcards & wc::kInPort) && in_port != c.in_port) return false;
  if (!(wildcards & wc::kDlSrc) && !(dl_src == c.dl_src)) return false;
  if (!(wildcards & wc::kDlDst) && !(dl_dst == c.dl_dst)) return false;
  if (!(wildcards & wc::kDlVlan) && dl_vlan != c.dl_vlan) return false;
  if (!(wildcards & wc::kDlVlanPcp) && dl_vlan_pcp != c.dl_vlan_pcp)
    return false;
  if (!(wildcards & wc::kDlType) && dl_type != c.dl_type) return false;
  if (!(wildcards & wc::kNwTos) && nw_tos != c.nw_tos) return false;
  if (!(wildcards & wc::kNwProto) && nw_proto != c.nw_proto) return false;
  {
    const std::uint32_t mask = care_mask(nw_src_wild_bits());
    if ((nw_src & mask) != (c.nw_src & mask)) return false;
  }
  {
    const std::uint32_t mask = care_mask(nw_dst_wild_bits());
    if ((nw_dst & mask) != (c.nw_dst & mask)) return false;
  }
  if (!(wildcards & wc::kTpSrc) && tp_src != c.tp_src) return false;
  if (!(wildcards & wc::kTpDst) && tp_dst != c.tp_dst) return false;
  return true;
}

bool OfMatch::covers(const OfMatch& o) const noexcept {
  // Every field this match cares about must (a) also be cared about by
  // `o` (o at least as specific) and (b) agree on the value.
  const auto field_ok = [&](std::uint32_t bit, bool equal) {
    if (wildcards & bit) return true;   // we don't care
    if (o.wildcards & bit) return false;  // o is wilder than us
    return equal;
  };
  if (!field_ok(wc::kInPort, in_port == o.in_port)) return false;
  if (!field_ok(wc::kDlSrc, dl_src == o.dl_src)) return false;
  if (!field_ok(wc::kDlDst, dl_dst == o.dl_dst)) return false;
  if (!field_ok(wc::kDlVlan, dl_vlan == o.dl_vlan)) return false;
  if (!field_ok(wc::kDlVlanPcp, dl_vlan_pcp == o.dl_vlan_pcp)) return false;
  if (!field_ok(wc::kDlType, dl_type == o.dl_type)) return false;
  if (!field_ok(wc::kNwTos, nw_tos == o.nw_tos)) return false;
  if (!field_ok(wc::kNwProto, nw_proto == o.nw_proto)) return false;
  if (!field_ok(wc::kTpSrc, tp_src == o.tp_src)) return false;
  if (!field_ok(wc::kTpDst, tp_dst == o.tp_dst)) return false;
  // Prefix fields: our prefix must be no longer, and agree on shared bits.
  {
    const std::uint32_t my_wild = nw_src_wild_bits();
    if (my_wild < o.nw_src_wild_bits()) return false;
    const std::uint32_t mask = care_mask(my_wild);
    if ((nw_src & mask) != (o.nw_src & mask)) return false;
  }
  {
    const std::uint32_t my_wild = nw_dst_wild_bits();
    if (my_wild < o.nw_dst_wild_bits()) return false;
    const std::uint32_t mask = care_mask(my_wild);
    if ((nw_dst & mask) != (o.nw_dst & mask)) return false;
  }
  return true;
}

void OfMatch::write(MutByteSpan out) const noexcept {
  store_be32(out.data(), wildcards);
  store_be16(out.data() + 4, in_port);
  std::memcpy(out.data() + 6, dl_src.b.data(), 6);
  std::memcpy(out.data() + 12, dl_dst.b.data(), 6);
  store_be16(out.data() + 18, dl_vlan);
  out[20] = dl_vlan_pcp;
  out[21] = 0;  // pad
  store_be16(out.data() + 22, dl_type);
  out[24] = nw_tos;
  out[25] = nw_proto;
  out[26] = out[27] = 0;  // pad
  store_be32(out.data() + 28, nw_src);
  store_be32(out.data() + 32, nw_dst);
  store_be16(out.data() + 36, tp_src);
  store_be16(out.data() + 38, tp_dst);
}

std::optional<OfMatch> OfMatch::read(ByteSpan in) noexcept {
  if (in.size() < kWireSize) return std::nullopt;
  OfMatch m;
  m.wildcards = load_be32(in.data());
  m.in_port = load_be16(in.data() + 4);
  std::memcpy(m.dl_src.b.data(), in.data() + 6, 6);
  std::memcpy(m.dl_dst.b.data(), in.data() + 12, 6);
  m.dl_vlan = load_be16(in.data() + 18);
  m.dl_vlan_pcp = in[20];
  m.dl_type = load_be16(in.data() + 22);
  m.nw_tos = in[24];
  m.nw_proto = in[25];
  m.nw_src = load_be32(in.data() + 28);
  m.nw_dst = load_be32(in.data() + 32);
  m.tp_src = load_be16(in.data() + 36);
  m.tp_dst = load_be16(in.data() + 38);
  return m;
}

}  // namespace osnt::openflow
