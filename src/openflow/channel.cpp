#include "osnt/openflow/channel.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "osnt/common/log.hpp"

namespace osnt::openflow {

ControlChannel::ControlChannel(sim::Engine& eng, Config cfg)
    : eng_(&eng), cfg_(cfg) {
  a_.chan_ = this;
  a_.peer_ = &b_;
  b_.chan_ = this;
  b_.peer_ = &a_;
}

std::uint32_t ControlChannel::Endpoint::send(const OfMessage& msg,
                                             std::uint32_t xid) {
  if (xid == 0) xid = next_xid_++;
  chan_->transmit(*this, msg, xid);
  return xid;
}

void ControlChannel::transmit(Endpoint& from, const OfMessage& msg,
                              std::uint32_t xid) {
  Bytes wire = encode(msg, xid);
  from.bytes_ += wire.size();
  ++from.sent_;

  // Byte-stream semantics: serialization is FIFO per direction.
  const Picos now = eng_->now();
  const Picos start = std::max(now, from.tx_free_);
  const Picos ser = static_cast<Picos>(static_cast<double>(wire.size()) * 8.0 *
                                       1e6 / cfg_.mbps);  // bits / Mb/s → ps
  from.tx_free_ = start + ser;
  const Picos deliver = from.tx_free_ + cfg_.latency;

  Endpoint* peer = from.peer_;
  eng_->schedule_at(deliver, [peer, wire = std::move(wire)] {
    auto decoded = decode(ByteSpan{wire.data(), wire.size()});
    if (!decoded) {
      OSNT_ERROR("control channel: undecodable message of %zu bytes",
                 wire.size());
      return;
    }
    if (peer->handler_) peer->handler_(std::move(*decoded));
  });
}

}  // namespace osnt::openflow
