#include "osnt/openflow/channel.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "osnt/common/log.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt::openflow {

ControlChannel::ControlChannel(sim::Engine& eng, Config cfg)
    : eng_(&eng), cfg_(cfg) {
  a_.chan_ = this;
  a_.peer_ = &b_;
  b_.chan_ = this;
  b_.peer_ = &a_;
}

ControlChannel::~ControlChannel() {
  if (!telemetry::enabled()) return;
  if (disconnects_ == 0 && lost_in_flight_ == 0 &&
      a_.dropped_down_ + b_.dropped_down_ == 0) {
    return;
  }
  auto& reg = telemetry::registry();
  reg.counter("openflow.channel.disconnects").add(disconnects_);
  reg.counter("openflow.channel.reconnects").add(reconnects_);
  reg.counter("openflow.channel.lost_in_flight").add(lost_in_flight_);
  reg.counter("openflow.channel.dropped_session_down")
      .add(a_.dropped_down_ + b_.dropped_down_);
  reg.counter("openflow.channel.reconnect_probes").add(probes_);
}

std::uint32_t ControlChannel::Endpoint::send(const OfMessage& msg,
                                             std::uint32_t xid) {
  if (xid == 0) xid = next_xid_++;
  chan_->transmit(*this, msg, xid);
  return xid;
}

void ControlChannel::transmit(Endpoint& from, const OfMessage& msg,
                              std::uint32_t xid) {
  if (!connected_) {
    // A closed socket: the send fails immediately, nothing is queued for
    // the next session. Callers learn about it via the status handler.
    ++from.dropped_down_;
    return;
  }
  Bytes wire = encode(msg, xid);
  from.bytes_ += wire.size();
  ++from.sent_;

  // Byte-stream semantics: serialization is FIFO per direction.
  const Picos now = eng_->now();
  const Picos start = std::max(now, from.tx_free_);
  const Picos ser = static_cast<Picos>(static_cast<double>(wire.size()) * 8.0 *
                                       1e6 / cfg_.mbps);  // bits / Mb/s → ps
  from.tx_free_ = start + ser;
  const Picos deliver = from.tx_free_ + cfg_.latency;

  Endpoint* peer = from.peer_;
  eng_->schedule_at(
      deliver, [this, peer, epoch = epoch_, wire = std::move(wire)] {
        if (epoch != epoch_ || !connected_) {
          // The session this message was sent under died while the bytes
          // were in flight — TCP would have RST the stream.
          ++lost_in_flight_;
          return;
        }
        auto decoded = decode(ByteSpan{wire.data(), wire.size()});
        if (!decoded) {
          OSNT_ERROR("control channel: undecodable message of %zu bytes",
                     wire.size());
          return;
        }
        if (peer->handler_) peer->handler_(std::move(*decoded));
      });
}

void ControlChannel::disconnect() {
  if (!connected_) return;
  connected_ = false;
  ++epoch_;
  ++disconnects_;
  // The session's serialization backlog dies with its socket.
  a_.tx_free_ = 0;
  b_.tx_free_ = 0;
  OSNT_INFO("control channel: session down at t=%lld ps",
            static_cast<long long>(eng_->now()));
  notify_(false);
  if (!probing_) schedule_probe_(0);
}

void ControlChannel::set_link_available(bool available) {
  if (link_available_ == available) return;
  link_available_ = available;
  if (!available) {
    disconnect();
  } else if (!connected_ && !probing_) {
    // The FSM already gave up (or the link flapped between probes with
    // none scheduled): kick one fresh probe at base backoff.
    schedule_probe_(0);
  }
}

Picos ControlChannel::backoff_(std::size_t attempt) const noexcept {
  double d = static_cast<double>(cfg_.reconnect_base);
  for (std::size_t i = 0; i < attempt; ++i) {
    d *= cfg_.reconnect_multiplier;
    if (d >= static_cast<double>(cfg_.reconnect_max_backoff)) break;
  }
  const auto capped = std::min(d, static_cast<double>(cfg_.reconnect_max_backoff));
  return std::max<Picos>(1, static_cast<Picos>(capped));
}

void ControlChannel::schedule_probe_(std::size_t attempt) {
  probing_ = true;
  eng_->schedule_in(backoff_(attempt), [this, attempt] {
    probing_ = false;
    if (connected_) return;  // something else restored the session
    ++probes_;
    if (link_available_) {
      restore_session_();
      return;
    }
    if (attempt + 1 < cfg_.reconnect_max_attempts) {
      schedule_probe_(attempt + 1);
    } else {
      OSNT_WARN("control channel: giving up after %zu reconnect probes",
                cfg_.reconnect_max_attempts);
    }
  });
}

void ControlChannel::restore_session_() {
  connected_ = true;
  ++reconnects_;
  OSNT_INFO("control channel: session restored at t=%lld ps",
            static_cast<long long>(eng_->now()));
  notify_(true);
}

void ControlChannel::notify_(bool up) {
  // Controller first: deterministic order, and the controller is the one
  // that re-drives state (re-sent flow_mods) on reconnect.
  if (a_.status_) a_.status_(up);
  if (b_.status_) b_.status_(up);
}

}  // namespace osnt::openflow
