#include "osnt/openflow/messages.hpp"

#include <cstring>

namespace osnt::openflow {
namespace {

// ------------------------------------------------------------ byte writer

class Writer {
 public:
  explicit Writer(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    const std::size_t n = out_.size();
    out_.resize(n + 2);
    store_be16(out_.data() + n, v);
  }
  void u32(std::uint32_t v) {
    const std::size_t n = out_.size();
    out_.resize(n + 4);
    store_be32(out_.data() + n, v);
  }
  void u64(std::uint64_t v) {
    const std::size_t n = out_.size();
    out_.resize(n + 8);
    store_be64(out_.data() + n, v);
  }
  void pad(std::size_t n) { out_.resize(out_.size() + n, 0); }
  void bytes(ByteSpan b) { out_.insert(out_.end(), b.begin(), b.end()); }
  void match(const OfMatch& m) {
    const std::size_t n = out_.size();
    out_.resize(n + OfMatch::kWireSize);
    m.write(MutByteSpan{out_.data() + n, OfMatch::kWireSize});
  }

 private:
  Bytes& out_;
};

// -------------------------------------------------------------- reader

class Reader {
 public:
  explicit Reader(ByteSpan in) : in_(in) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return in_.size() - pos_;
  }

  std::uint8_t u8() { return take(1) ? in_[pos_ - 1] : 0; }
  std::uint16_t u16() { return take(2) ? load_be16(&in_[pos_ - 2]) : 0; }
  std::uint32_t u32() { return take(4) ? load_be32(&in_[pos_ - 4]) : 0; }
  std::uint64_t u64() { return take(8) ? load_be64(&in_[pos_ - 8]) : 0; }
  void skip(std::size_t n) { take(n); }
  Bytes rest() {
    Bytes b(in_.begin() + static_cast<std::ptrdiff_t>(pos_), in_.end());
    pos_ = in_.size();
    return b;
  }
  Bytes bytes(std::size_t n) {
    if (!take(n)) return {};
    return Bytes(in_.begin() + static_cast<std::ptrdiff_t>(pos_ - n),
                 in_.begin() + static_cast<std::ptrdiff_t>(pos_));
  }
  std::optional<OfMatch> match() {
    if (!take(OfMatch::kWireSize)) return std::nullopt;
    return OfMatch::read(in_.subspan(pos_ - OfMatch::kWireSize));
  }

 private:
  bool take(std::size_t n) {
    if (pos_ + n > in_.size()) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  ByteSpan in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// -------------------------------------------------------------- actions

enum ActionType : std::uint16_t {
  kActOutput = 0,
  kActSetVlanVid = 1,
  kActStripVlan = 3,
  kActEnqueue = 11,
};

void write_actions(Writer& w, const std::vector<Action>& actions) {
  for (const auto& a : actions) {
    std::visit(
        [&](const auto& act) {
          using T = std::decay_t<decltype(act)>;
          if constexpr (std::is_same_v<T, ActionOutput>) {
            w.u16(kActOutput);
            w.u16(8);
            w.u16(act.port);
            w.u16(act.max_len);
          } else if constexpr (std::is_same_v<T, ActionSetVlanVid>) {
            w.u16(kActSetVlanVid);
            w.u16(8);
            w.u16(act.vlan_vid);
            w.pad(2);
          } else if constexpr (std::is_same_v<T, ActionEnqueue>) {
            w.u16(kActEnqueue);
            w.u16(16);
            w.u16(act.port);
            w.pad(6);
            w.u32(act.queue_id);
          } else {
            w.u16(kActStripVlan);
            w.u16(8);
            w.pad(4);
          }
        },
        a);
  }
}

bool read_actions(Reader& r, std::size_t bytes, std::vector<Action>& out) {
  std::size_t consumed = 0;
  while (consumed < bytes) {
    const std::uint16_t type = r.u16();
    const std::uint16_t len = r.u16();
    if (!r.ok() || len < 8 || len % 8 != 0) return false;
    switch (type) {
      case kActOutput: {
        ActionOutput a;
        a.port = r.u16();
        a.max_len = r.u16();
        out.emplace_back(a);
        r.skip(len - 8);
        break;
      }
      case kActSetVlanVid: {
        ActionSetVlanVid a;
        a.vlan_vid = r.u16();
        r.skip(2);
        out.emplace_back(a);
        r.skip(len - 8);
        break;
      }
      case kActStripVlan:
        r.skip(len - 4);
        out.emplace_back(ActionStripVlan{});
        break;
      case kActEnqueue: {
        if (len != 16) return false;
        ActionEnqueue a;
        a.port = r.u16();
        r.skip(6);
        a.queue_id = r.u32();
        out.emplace_back(a);
        break;
      }
      default:
        r.skip(len - 4);  // unknown action: skip body
        break;
    }
    if (!r.ok()) return false;
    consumed += len;
  }
  return consumed == bytes;
}

std::size_t actions_wire_size(const std::vector<Action>& actions) noexcept {
  std::size_t n = 0;
  for (const auto& a : actions) n += action_wire_size(a);
  return n;
}

constexpr std::uint16_t kStatsTypeFlow = 1;
constexpr std::uint16_t kStatsTypeAggregate = 2;
constexpr std::uint16_t kStatsTypePort = 4;

}  // namespace

std::size_t action_wire_size(const Action& a) noexcept {
  return std::holds_alternative<ActionEnqueue>(a) ? 16 : 8;
}

MsgType message_type(const OfMessage& msg) noexcept {
  return std::visit(
      [](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello>) return MsgType::kHello;
        else if constexpr (std::is_same_v<T, EchoRequest>) return MsgType::kEchoRequest;
        else if constexpr (std::is_same_v<T, EchoReply>) return MsgType::kEchoReply;
        else if constexpr (std::is_same_v<T, FeaturesRequest>) return MsgType::kFeaturesRequest;
        else if constexpr (std::is_same_v<T, FeaturesReply>) return MsgType::kFeaturesReply;
        else if constexpr (std::is_same_v<T, FlowMod>) return MsgType::kFlowMod;
        else if constexpr (std::is_same_v<T, PacketIn>) return MsgType::kPacketIn;
        else if constexpr (std::is_same_v<T, PacketOut>) return MsgType::kPacketOut;
        else if constexpr (std::is_same_v<T, FlowRemoved>) return MsgType::kFlowRemoved;
        else if constexpr (std::is_same_v<T, BarrierRequest>) return MsgType::kBarrierRequest;
        else if constexpr (std::is_same_v<T, BarrierReply>) return MsgType::kBarrierReply;
        else if constexpr (std::is_same_v<T, ErrorMsg>) return MsgType::kError;
        else if constexpr (std::is_same_v<T, FlowStatsRequest>) return MsgType::kStatsRequest;
        else if constexpr (std::is_same_v<T, PortStatsRequest>) return MsgType::kStatsRequest;
        else if constexpr (std::is_same_v<T, AggregateStatsRequest>) return MsgType::kStatsRequest;
        else if constexpr (std::is_same_v<T, QueueGetConfigRequest>) return MsgType::kQueueGetConfigRequest;
        else if constexpr (std::is_same_v<T, QueueGetConfigReply>) return MsgType::kQueueGetConfigReply;
        else return MsgType::kStatsReply;
      },
      msg);
}

Bytes encode(const OfMessage& msg, std::uint32_t xid) {
  Bytes out;
  Writer w{out};
  // Header placeholder; length patched at the end.
  w.u8(kOfVersion);
  w.u8(static_cast<std::uint8_t>(message_type(msg)));
  w.u16(0);
  w.u32(xid);

  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello> ||
                      std::is_same_v<T, FeaturesRequest> ||
                      std::is_same_v<T, BarrierRequest> ||
                      std::is_same_v<T, BarrierReply>) {
          // header only
        } else if constexpr (std::is_same_v<T, EchoRequest> ||
                             std::is_same_v<T, EchoReply>) {
          w.bytes(ByteSpan{m.payload.data(), m.payload.size()});
        } else if constexpr (std::is_same_v<T, FeaturesReply>) {
          w.u64(m.datapath_id);
          w.u32(m.n_buffers);
          w.u8(m.n_tables);
          w.pad(3);
          w.u32(m.capabilities);
          w.u32(m.actions);
          // ofp_phy_port descriptions: 48 zeroed bytes each, port_no set.
          for (std::uint16_t i = 0; i < m.n_ports; ++i) {
            w.u16(static_cast<std::uint16_t>(i + 1));
            w.pad(46);
          }
        } else if constexpr (std::is_same_v<T, FlowMod>) {
          w.match(m.match);
          w.u64(m.cookie);
          w.u16(static_cast<std::uint16_t>(m.command));
          w.u16(m.idle_timeout);
          w.u16(m.hard_timeout);
          w.u16(m.priority);
          w.u32(m.buffer_id);
          w.u16(m.out_port);
          w.u16(m.flags);
          write_actions(w, m.actions);
        } else if constexpr (std::is_same_v<T, PacketIn>) {
          w.u32(m.buffer_id);
          w.u16(m.total_len);
          w.u16(m.in_port);
          w.u8(static_cast<std::uint8_t>(m.reason));
          w.pad(1);
          w.bytes(ByteSpan{m.data.data(), m.data.size()});
        } else if constexpr (std::is_same_v<T, PacketOut>) {
          w.u32(m.buffer_id);
          w.u16(m.in_port);
          w.u16(static_cast<std::uint16_t>(actions_wire_size(m.actions)));
          write_actions(w, m.actions);
          w.bytes(ByteSpan{m.data.data(), m.data.size()});
        } else if constexpr (std::is_same_v<T, FlowRemoved>) {
          w.match(m.match);
          w.u64(m.cookie);
          w.u16(m.priority);
          w.u8(static_cast<std::uint8_t>(m.reason));
          w.pad(1);
          w.u32(m.duration_sec);
          w.u32(m.duration_nsec);
          w.u16(m.idle_timeout);
          w.pad(2);
          w.u64(m.packet_count);
          w.u64(m.byte_count);
        } else if constexpr (std::is_same_v<T, ErrorMsg>) {
          w.u16(m.type);
          w.u16(m.code);
          w.bytes(ByteSpan{m.data.data(), m.data.size()});
        } else if constexpr (std::is_same_v<T, FlowStatsRequest>) {
          w.u16(kStatsTypeFlow);
          w.u16(0);  // flags
          w.match(m.match);
          w.u8(m.table_id);
          w.pad(1);
          w.u16(m.out_port);
        } else if constexpr (std::is_same_v<T, FlowStatsReply>) {
          w.u16(kStatsTypeFlow);
          w.u16(0);  // flags
          for (const auto& f : m.flows) {
            const std::size_t entry_len = 88 + actions_wire_size(f.actions);
            w.u16(static_cast<std::uint16_t>(entry_len));
            w.u8(f.table_id);
            w.pad(1);
            w.match(f.match);
            w.u32(f.duration_sec);
            w.u32(f.duration_nsec);
            w.u16(f.priority);
            w.u16(f.idle_timeout);
            w.u16(f.hard_timeout);
            w.pad(6);
            w.u64(f.cookie);
            w.u64(f.packet_count);
            w.u64(f.byte_count);
            write_actions(w, f.actions);
          }
        } else if constexpr (std::is_same_v<T, PortStatsRequest>) {
          w.u16(kStatsTypePort);
          w.u16(0);  // flags
          w.u16(m.port_no);
          w.pad(6);
        } else if constexpr (std::is_same_v<T, PortStatsReply>) {
          w.u16(kStatsTypePort);
          w.u16(0);  // flags
          for (const auto& ps : m.ports) {
            w.u16(ps.port_no);
            w.pad(6);
            w.u64(ps.rx_packets);
            w.u64(ps.tx_packets);
            w.u64(ps.rx_bytes);
            w.u64(ps.tx_bytes);
            w.u64(ps.rx_dropped);
            w.u64(ps.tx_dropped);
            w.u64(ps.rx_errors);
            w.u64(ps.tx_errors);
            w.u64(ps.rx_frame_err);
            w.u64(ps.rx_over_err);
            w.u64(ps.rx_crc_err);
            w.u64(ps.collisions);
          }
        } else if constexpr (std::is_same_v<T, AggregateStatsRequest>) {
          w.u16(kStatsTypeAggregate);
          w.u16(0);  // flags
          w.match(m.match);
          w.u8(m.table_id);
          w.pad(1);
          w.u16(m.out_port);
        } else if constexpr (std::is_same_v<T, AggregateStatsReply>) {
          w.u16(kStatsTypeAggregate);
          w.u16(0);  // flags
          w.u64(m.packet_count);
          w.u64(m.byte_count);
          w.u32(m.flow_count);
          w.pad(4);
        } else if constexpr (std::is_same_v<T, QueueGetConfigRequest>) {
          w.u16(m.port);
          w.pad(2);
        } else if constexpr (std::is_same_v<T, QueueGetConfigReply>) {
          w.u16(m.port);
          w.pad(6);
          for (const auto& q : m.queues) {
            w.u32(q.queue_id);
            if (q.min_rate_tenths == 0xFFFF) {
              w.u16(8);  // ofp_packet_queue header only
              w.pad(2);
            } else {
              w.u16(8 + 16);  // + one OFPQT_MIN_RATE property
              w.pad(2);
              w.u16(1);   // OFPQT_MIN_RATE
              w.u16(16);  // property length
              w.pad(4);
              w.u16(q.min_rate_tenths);
              w.pad(6);
            }
          }
        }
      },
      msg);

  store_be16(out.data() + 2, static_cast<std::uint16_t>(out.size()));
  return out;
}

std::optional<Decoded> decode(ByteSpan in) {
  if (in.size() < kHeaderSize) return std::nullopt;
  if (in[0] != kOfVersion) return std::nullopt;
  const auto type = static_cast<MsgType>(in[1]);
  const std::uint16_t length = load_be16(in.data() + 2);
  if (length < kHeaderSize || in.size() < length) return std::nullopt;
  const std::uint32_t xid = load_be32(in.data() + 4);

  Reader r{in.subspan(kHeaderSize, length - kHeaderSize)};
  Decoded d;
  d.xid = xid;
  d.wire_size = length;

  switch (type) {
    case MsgType::kHello:
      d.msg = Hello{};
      break;
    case MsgType::kEchoRequest:
      d.msg = EchoRequest{r.rest()};
      break;
    case MsgType::kEchoReply:
      d.msg = EchoReply{r.rest()};
      break;
    case MsgType::kFeaturesRequest:
      d.msg = FeaturesRequest{};
      break;
    case MsgType::kFeaturesReply: {
      FeaturesReply m;
      m.datapath_id = r.u64();
      m.n_buffers = r.u32();
      m.n_tables = r.u8();
      r.skip(3);
      m.capabilities = r.u32();
      m.actions = r.u32();
      m.n_ports = static_cast<std::uint16_t>(r.remaining() / 48);
      if (!r.ok()) return std::nullopt;
      d.msg = m;
      break;
    }
    case MsgType::kFlowMod: {
      FlowMod m;
      auto match = r.match();
      if (!match) return std::nullopt;
      m.match = *match;
      m.cookie = r.u64();
      m.command = static_cast<FlowModCommand>(r.u16());
      m.idle_timeout = r.u16();
      m.hard_timeout = r.u16();
      m.priority = r.u16();
      m.buffer_id = r.u32();
      m.out_port = r.u16();
      m.flags = r.u16();
      if (!r.ok() || !read_actions(r, r.remaining(), m.actions))
        return std::nullopt;
      d.msg = std::move(m);
      break;
    }
    case MsgType::kPacketIn: {
      PacketIn m;
      m.buffer_id = r.u32();
      m.total_len = r.u16();
      m.in_port = r.u16();
      m.reason = static_cast<PacketInReason>(r.u8());
      r.skip(1);
      m.data = r.rest();
      if (!r.ok()) return std::nullopt;
      d.msg = std::move(m);
      break;
    }
    case MsgType::kPacketOut: {
      PacketOut m;
      m.buffer_id = r.u32();
      m.in_port = r.u16();
      const std::uint16_t alen = r.u16();
      if (!r.ok() || !read_actions(r, alen, m.actions)) return std::nullopt;
      m.data = r.rest();
      d.msg = std::move(m);
      break;
    }
    case MsgType::kFlowRemoved: {
      FlowRemoved m;
      auto match = r.match();
      if (!match) return std::nullopt;
      m.match = *match;
      m.cookie = r.u64();
      m.priority = r.u16();
      m.reason = static_cast<FlowRemovedReason>(r.u8());
      r.skip(1);
      m.duration_sec = r.u32();
      m.duration_nsec = r.u32();
      m.idle_timeout = r.u16();
      r.skip(2);
      m.packet_count = r.u64();
      m.byte_count = r.u64();
      if (!r.ok()) return std::nullopt;
      d.msg = m;
      break;
    }
    case MsgType::kBarrierRequest:
      d.msg = BarrierRequest{};
      break;
    case MsgType::kBarrierReply:
      d.msg = BarrierReply{};
      break;
    case MsgType::kError: {
      ErrorMsg m;
      m.type = r.u16();
      m.code = r.u16();
      m.data = r.rest();
      if (!r.ok()) return std::nullopt;
      d.msg = std::move(m);
      break;
    }
    case MsgType::kStatsRequest: {
      const std::uint16_t stype = r.u16();
      r.skip(2);  // flags
      if (stype == kStatsTypePort) {
        PortStatsRequest m;
        m.port_no = r.u16();
        r.skip(6);
        if (!r.ok()) return std::nullopt;
        d.msg = m;
        break;
      }
      if (stype == kStatsTypeAggregate) {
        AggregateStatsRequest m;
        auto match = r.match();
        if (!match) return std::nullopt;
        m.match = *match;
        m.table_id = r.u8();
        r.skip(1);
        m.out_port = r.u16();
        if (!r.ok()) return std::nullopt;
        d.msg = m;
        break;
      }
      if (stype != kStatsTypeFlow) return std::nullopt;
      FlowStatsRequest m;
      auto match = r.match();
      if (!match) return std::nullopt;
      m.match = *match;
      m.table_id = r.u8();
      r.skip(1);
      m.out_port = r.u16();
      if (!r.ok()) return std::nullopt;
      d.msg = m;
      break;
    }
    case MsgType::kStatsReply: {
      const std::uint16_t stype = r.u16();
      r.skip(2);  // flags
      if (stype == kStatsTypePort) {
        PortStatsReply m;
        while (r.ok() && r.remaining() >= 104) {
          PortStatsEntry ps;
          ps.port_no = r.u16();
          r.skip(6);
          ps.rx_packets = r.u64();
          ps.tx_packets = r.u64();
          ps.rx_bytes = r.u64();
          ps.tx_bytes = r.u64();
          ps.rx_dropped = r.u64();
          ps.tx_dropped = r.u64();
          ps.rx_errors = r.u64();
          ps.tx_errors = r.u64();
          ps.rx_frame_err = r.u64();
          ps.rx_over_err = r.u64();
          ps.rx_crc_err = r.u64();
          ps.collisions = r.u64();
          m.ports.push_back(ps);
        }
        if (!r.ok()) return std::nullopt;
        d.msg = std::move(m);
        break;
      }
      if (stype == kStatsTypeAggregate) {
        AggregateStatsReply m;
        m.packet_count = r.u64();
        m.byte_count = r.u64();
        m.flow_count = r.u32();
        r.skip(4);
        if (!r.ok()) return std::nullopt;
        d.msg = m;
        break;
      }
      if (stype != kStatsTypeFlow) return std::nullopt;
      FlowStatsReply m;
      while (r.ok() && r.remaining() >= 88) {
        FlowStatsEntry f;
        const std::uint16_t entry_len = r.u16();
        f.table_id = r.u8();
        r.skip(1);
        auto match = r.match();
        if (!match) return std::nullopt;
        f.match = *match;
        f.duration_sec = r.u32();
        f.duration_nsec = r.u32();
        f.priority = r.u16();
        f.idle_timeout = r.u16();
        f.hard_timeout = r.u16();
        r.skip(6);
        f.cookie = r.u64();
        f.packet_count = r.u64();
        f.byte_count = r.u64();
        if (entry_len < 88 ||
            !read_actions(r, entry_len - 88, f.actions))
          return std::nullopt;
        m.flows.push_back(std::move(f));
      }
      if (!r.ok()) return std::nullopt;
      d.msg = std::move(m);
      break;
    }
    case MsgType::kQueueGetConfigRequest: {
      QueueGetConfigRequest m;
      m.port = r.u16();
      r.skip(2);
      if (!r.ok()) return std::nullopt;
      d.msg = m;
      break;
    }
    case MsgType::kQueueGetConfigReply: {
      QueueGetConfigReply m;
      m.port = r.u16();
      r.skip(6);
      while (r.ok() && r.remaining() >= 8) {
        QueueDesc q;
        q.queue_id = r.u32();
        const std::uint16_t qlen = r.u16();
        r.skip(2);
        if (qlen < 8) return std::nullopt;
        std::size_t props = qlen - 8;
        while (props >= 8) {
          const std::uint16_t ptype = r.u16();
          const std::uint16_t plen = r.u16();
          r.skip(4);
          if (!r.ok() || plen < 8 || plen > props) return std::nullopt;
          if (ptype == 1 && plen == 16) {
            q.min_rate_tenths = r.u16();
            r.skip(6);
          } else {
            r.skip(plen - 8);
          }
          props -= plen;
        }
        if (props != 0) return std::nullopt;
        m.queues.push_back(q);
      }
      if (!r.ok()) return std::nullopt;
      d.msg = std::move(m);
      break;
    }
    default:
      return std::nullopt;
  }
  return d;
}

}  // namespace osnt::openflow
