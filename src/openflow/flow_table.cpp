#include "osnt/openflow/flow_table.hpp"

#include <algorithm>

namespace osnt::openflow {
namespace {

bool strict_equal(const FlowEntry& e, const FlowMod& mod) noexcept {
  return e.priority == mod.priority && e.match == mod.match;
}

}  // namespace

bool FlowTable::outputs_to(const FlowEntry& e,
                           std::uint16_t port) const noexcept {
  if (port == ofpp::kNone) return true;  // no filter
  for (const auto& a : e.actions) {
    if (const auto* out = std::get_if<ActionOutput>(&a);
        out && out->port == port)
      return true;
  }
  return false;
}

FlowTable::ModResult FlowTable::apply(const FlowMod& mod, Picos now,
                                      std::vector<FlowEntry>* removed) {
  switch (mod.command) {
    case FlowModCommand::kAdd: {
      if (mod.flags & off::kCheckOverlap) {
        for (const auto& e : entries_) {
          if (e.priority == mod.priority &&
              (e.match.covers(mod.match) || mod.match.covers(e.match)))
            return ModResult::kOverlap;
        }
      }
      // Identical match+priority replaces (per OF 1.0 §4.6).
      for (auto& e : entries_) {
        if (strict_equal(e, mod)) {
          e.actions = mod.actions;
          e.cookie = mod.cookie;
          e.idle_timeout = mod.idle_timeout;
          e.hard_timeout = mod.hard_timeout;
          e.flags = mod.flags;
          e.installed_at = now;
          e.last_used = now;
          e.packet_count = 0;
          e.byte_count = 0;
          return ModResult::kAdded;
        }
      }
      if (entries_.size() >= cfg_.max_entries) return ModResult::kTableFull;
      FlowEntry e;
      e.match = mod.match;
      e.priority = mod.priority;
      e.cookie = mod.cookie;
      e.actions = mod.actions;
      e.idle_timeout = mod.idle_timeout;
      e.hard_timeout = mod.hard_timeout;
      e.flags = mod.flags;
      e.installed_at = now;
      e.last_used = now;
      // Insert keeping priority-descending, stable among equals.
      const auto pos = std::upper_bound(
          entries_.begin(), entries_.end(), e.priority,
          [](std::uint16_t p, const FlowEntry& x) { return p > x.priority; });
      entries_.insert(pos, std::move(e));
      return ModResult::kAdded;
    }

    case FlowModCommand::kModify:
    case FlowModCommand::kModifyStrict: {
      const bool strict = mod.command == FlowModCommand::kModifyStrict;
      bool any = false;
      for (auto& e : entries_) {
        const bool hit = strict ? strict_equal(e, mod)
                                : mod.match.covers(e.match);
        if (hit) {
          e.actions = mod.actions;  // counters/timeouts preserved per spec
          any = true;
        }
      }
      if (any) return ModResult::kModified;
      // Per OF 1.0, MODIFY with no match behaves like ADD.
      FlowMod as_add = mod;
      as_add.command = FlowModCommand::kAdd;
      return apply(as_add, now, removed);
    }

    case FlowModCommand::kDelete:
    case FlowModCommand::kDeleteStrict: {
      const bool strict = mod.command == FlowModCommand::kDeleteStrict;
      bool any = false;
      for (auto it = entries_.begin(); it != entries_.end();) {
        const bool hit = (strict ? strict_equal(*it, mod)
                                 : mod.match.covers(it->match)) &&
                         outputs_to(*it, mod.out_port);
        if (hit) {
          if (removed) removed->push_back(std::move(*it));
          it = entries_.erase(it);
          any = true;
        } else {
          ++it;
        }
      }
      return any ? ModResult::kRemoved : ModResult::kNoOp;
    }
  }
  return ModResult::kNoOp;
}

const FlowEntry* FlowTable::lookup(const OfMatch& concrete, Picos now,
                                   std::size_t wire_bytes) {
  ++lookups_;
  for (auto& e : entries_) {
    if (e.match.matches_packet(concrete)) {
      if (wire_bytes > 0) {
        ++e.packet_count;
        e.byte_count += wire_bytes;
        e.last_used = now;
      }
      return &e;
    }
  }
  ++misses_;
  return nullptr;
}

std::vector<FlowEntry> FlowTable::expire(Picos now) {
  std::vector<FlowEntry> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const bool idle =
        it->idle_timeout != 0 &&
        now - it->last_used >= static_cast<Picos>(it->idle_timeout) * kPicosPerSec;
    const bool hard =
        it->hard_timeout != 0 &&
        now - it->installed_at >=
            static_cast<Picos>(it->hard_timeout) * kPicosPerSec;
    if (idle || hard) {
      out.push_back(std::move(*it));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<const FlowEntry*> FlowTable::collect_stats(
    const FlowStatsRequest& req) const {
  std::vector<const FlowEntry*> out;
  for (const auto& e : entries_) {
    if (req.match.covers(e.match) && outputs_to(e, req.out_port))
      out.push_back(&e);
  }
  return out;
}

}  // namespace osnt::openflow
