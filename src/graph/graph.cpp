#include "osnt/graph/graph.hpp"

namespace osnt::graph {

Block& Graph::add(std::unique_ptr<Block> block) {
  if (!block) throw GraphError("graph: cannot add a null block");
  if (find(block->name()) != nullptr) {
    throw GraphError("graph: duplicate block name '" + block->name() + "'");
  }
  blocks_.push_back(std::move(block));
  return *blocks_.back();
}

Block& Graph::lookup(const std::string& name, const char* role) {
  Block* b = find(name);
  if (!b) {
    throw GraphError(std::string("graph: unknown ") + role + " block '" +
                     name + "'");
  }
  return *b;
}

void Graph::claim_output(Block& src, std::size_t out_port, sim::Link* link) {
  if (out_port >= src.num_outputs()) {
    throw GraphError("graph: block '" + src.name() + "' has no output port " +
                     std::to_string(out_port) + " (outputs: " +
                     std::to_string(src.num_outputs()) + ")");
  }
  if (src.outs_[out_port] != nullptr) {
    throw GraphError("graph: output '" + src.name() + ":" +
                     std::to_string(out_port) + "' is already wired");
  }
  src.outs_[out_port] = link;
}

sim::Link& Graph::connect(const std::string& src, std::size_t out_port,
                          const std::string& dst, std::size_t in_port,
                          Picos propagation) {
  Block& to = lookup(dst, "destination");
  if (in_port >= to.num_inputs()) {
    throw GraphError("graph: block '" + to.name() + "' has no input port " +
                     std::to_string(in_port) + " (inputs: " +
                     std::to_string(to.num_inputs()) + ")");
  }
  Block& from = lookup(src, "source");
  links_.emplace_back(*eng_, propagation);
  sim::Link& link = links_.back();
  adapters_.emplace_back(to, in_port);
  link.connect(adapters_.back());
  claim_output(from, out_port, &link);
  return link;
}

sim::FrameSink& Graph::input(const std::string& dst, std::size_t in_port) {
  Block& to = lookup(dst, "ingress");
  if (in_port >= to.num_inputs()) {
    throw GraphError("graph: block '" + to.name() + "' has no input port " +
                     std::to_string(in_port) + " (inputs: " +
                     std::to_string(to.num_inputs()) + ")");
  }
  adapters_.emplace_back(to, in_port);
  return adapters_.back();
}

sim::Link& Graph::connect_output(const std::string& src, std::size_t out_port,
                                 sim::FrameSink& sink, Picos propagation) {
  Block& from = lookup(src, "egress");
  links_.emplace_back(*eng_, propagation);
  sim::Link& link = links_.back();
  link.connect(sink);
  claim_output(from, out_port, &link);
  return link;
}

void Graph::start() {
  for (auto& b : blocks_) b->start();
}

Block* Graph::find(const std::string& name) noexcept {
  for (auto& b : blocks_) {
    if (b->name() == name) return b.get();
  }
  return nullptr;
}

Block& Graph::at(const std::string& name) { return lookup(name, "graph"); }

std::uint64_t Graph::total_frames_in() const noexcept {
  std::uint64_t v = 0;
  for (const auto& b : blocks_) v += b->frames_in();
  return v;
}

std::uint64_t Graph::total_drops() const noexcept {
  std::uint64_t v = 0;
  for (const auto& b : blocks_) v += b->drops();
  return v;
}

}  // namespace osnt::graph
