#include "osnt/graph/topology.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "osnt/common/cli.hpp"
#include "osnt/common/json.hpp"
#include "osnt/common/random.hpp"
#include "osnt/core/device.hpp"
#include "osnt/fault/injector.hpp"
#include "osnt/hw/port.hpp"

namespace osnt::graph {
namespace {

using Json = json::Value;

[[noreturn]] void fail(const std::string& why, const Json* at = nullptr) {
  std::string msg = "topology: " + why;
  if (at && at->line > 0) msg += " (" + at->where() + ")";
  throw TopologyError(msg);
}

std::string type_name(Json::Type t) {
  switch (t) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kNumber: return "number";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

const Json& need(const Json& obj, const std::string& key, Json::Type t,
                 const std::string& who) {
  const Json* v = obj.find(key);
  if (!v) fail(who + ": missing required key '" + key + "'", &obj);
  if (!v->is(t)) {
    fail(who + ": '" + key + "' must be a " + type_name(t) + ", got " +
             type_name(v->type),
         v);
  }
  return *v;
}

double number_or(const Json& obj, const std::string& key, double fallback,
                 const std::string& who) {
  const Json* v = obj.find(key);
  if (!v) return fallback;
  if (!v->is(Json::Type::kNumber)) {
    fail(who + ": '" + key + "' must be a number", v);
  }
  return v->number;
}

std::size_t count_or(const Json& obj, const std::string& key,
                     std::size_t fallback, const std::string& who) {
  const double d = number_or(obj, key, static_cast<double>(fallback), who);
  if (d < 0 || d != static_cast<double>(static_cast<std::uint64_t>(d))) {
    fail(who + ": '" + key + "' must be a non-negative integer",
         obj.find(key));
  }
  return static_cast<std::size_t>(d);
}

bool bool_or(const Json& obj, const std::string& key, bool fallback,
             const std::string& who) {
  const Json* v = obj.find(key);
  if (!v) return fallback;
  if (!v->is(Json::Type::kBool)) fail(who + ": '" + key + "' must be a bool", v);
  return v->boolean;
}

std::string string_or(const Json& obj, const std::string& key,
                      const std::string& fallback, const std::string& who) {
  const Json* v = obj.find(key);
  if (!v) return fallback;
  if (!v->is(Json::Type::kString)) {
    fail(who + ": '" + key + "' must be a string", v);
  }
  return v->string;
}

/// `<base>_ns` / `<base>_us` / `<base>_ms`, at most one unit (the same
/// convention as fault plans). Returns `fallback` when absent.
Picos time_or(const Json& obj, const std::string& base, Picos fallback,
              const std::string& who) {
  static constexpr struct {
    const char* suffix;
    double to_ps;
  } kUnits[] = {{"_ns", 1e3}, {"_us", 1e6}, {"_ms", 1e9}};
  const Json* found = nullptr;
  double scale = 0.0;
  for (const auto& u : kUnits) {
    if (const Json* v = obj.find(base + u.suffix)) {
      if (found) fail(who + ": '" + base + "' given in more than one unit", v);
      found = v;
      scale = u.to_ps;
    }
  }
  if (!found) return fallback;
  if (!found->is(Json::Type::kNumber)) {
    fail(who + ": '" + base + "' must be a number", found);
  }
  const double ps = found->number * scale;
  if (ps < 0 || ps > 9.2e18) fail(who + ": '" + base + "' out of range", found);
  return static_cast<Picos>(ps);
}

/// Every key in `obj` must be allowed; anything else is a hard error
/// with a did-you-mean when the typo is close.
void check_keys(const Json& obj, const std::vector<std::string>& allowed,
                const std::string& who) {
  for (const auto& [k, v] : obj.object) {
    if (std::find(allowed.begin(), allowed.end(), k) != allowed.end()) {
      continue;
    }
    std::string msg = who + ": unknown key '" + k + "'";
    const std::string hint = suggest_nearest(k, allowed);
    if (!hint.empty()) msg += " (did you mean '" + hint + "'?)";
    fail(msg, &v);
  }
}

std::vector<std::string> with_time_units(std::vector<std::string> keys,
                                         std::initializer_list<const char*>
                                             bases) {
  for (const char* base : bases) {
    for (const char* suffix : {"_ns", "_us", "_ms"}) {
      keys.push_back(std::string(base) + suffix);
    }
  }
  return keys;
}

/// Pattern fields shared by burst_source blocks and the burst workload
/// stanza. `extra` carries the caller's structural keys ("name"/"type" or
/// "kind"/"ingress"/...); the allowed set is per-pattern, so a strobe
/// stanza with an `alpha` key fails like any other unknown key.
burst::PatternConfig parse_burst_pattern(const Json& obj,
                                         std::vector<std::string> extra,
                                         const std::string& who) {
  burst::PatternConfig cfg;
  const std::string pname =
      need(obj, "pattern", Json::Type::kString, who).string;
  const auto& names = burst::known_patterns();
  if (std::find(names.begin(), names.end(), pname) == names.end()) {
    std::string msg = who + ": unknown burst pattern '" + pname + "'";
    const std::string hint = suggest_nearest(pname, names);
    if (!hint.empty()) msg += " (did you mean '" + hint + "'?)";
    fail(msg, obj.find("pattern"));
  }
  cfg.pattern = burst::pattern_from_name(pname);

  std::vector<std::string> keys = std::move(extra);
  for (const char* k : {"pattern", "rate_gbps", "frame_size", "flows", "l4"}) {
    keys.emplace_back(k);
  }
  switch (cfg.pattern) {
    case burst::Pattern::kOnOff:
      keys = with_time_units(std::move(keys), {"period"});
      keys.emplace_back("duty");
      break;
    case burst::Pattern::kStrobe:
      keys = with_time_units(std::move(keys), {"period"});
      keys.emplace_back("pulse_frames");
      break;
    case burst::Pattern::kHeavyTail:
      keys = with_time_units(std::move(keys), {"mean_on", "mean_off"});
      keys.emplace_back("alpha");
      break;
    case burst::Pattern::kAmplification:
      keys = with_time_units(std::move(keys), {"period"});
      for (const char* k : {"duty", "attackers", "request_size", "amp_factor"}) {
        keys.emplace_back(k);
      }
      break;
  }
  check_keys(obj, keys, who);

  cfg.rate_gbps = number_or(obj, "rate_gbps", cfg.rate_gbps, who);
  cfg.frame_size = count_or(obj, "frame_size", cfg.frame_size, who);
  cfg.flows = count_or(obj, "flows", cfg.flows, who);
  const std::string l4 = string_or(obj, "l4", "udp", who);
  if (l4 == "udp") {
    cfg.l4 = burst::L4::kUdp;
  } else if (l4 == "tcp_syn") {
    cfg.l4 = burst::L4::kTcpSyn;
  } else {
    const std::vector<std::string> kinds = {"udp", "tcp_syn"};
    std::string msg = who + ": unknown l4 '" + l4 + "'";
    const std::string hint = suggest_nearest(l4, kinds);
    if (!hint.empty()) msg += " (did you mean '" + hint + "'?)";
    fail(msg, obj.find("l4"));
  }
  cfg.period = time_or(obj, "period", cfg.period, who);
  cfg.duty = number_or(obj, "duty", cfg.duty, who);
  cfg.pulse_frames = count_or(obj, "pulse_frames", cfg.pulse_frames, who);
  cfg.alpha = number_or(obj, "alpha", cfg.alpha, who);
  cfg.mean_on = time_or(obj, "mean_on", cfg.mean_on, who);
  cfg.mean_off = time_or(obj, "mean_off", cfg.mean_off, who);
  cfg.attackers = count_or(obj, "attackers", cfg.attackers, who);
  cfg.request_size = count_or(obj, "request_size", cfg.request_size, who);
  cfg.amp_factor = number_or(obj, "amp_factor", cfg.amp_factor, who);
  return cfg;
}

Endpoint parse_endpoint(const Json& v, const std::string& who) {
  if (!v.is(Json::Type::kString)) {
    fail(who + ": endpoint must be a \"block\" or \"block:port\" string", &v);
  }
  Endpoint ep;
  const std::string& s = v.string;
  const auto colon = s.find(':');
  if (colon == std::string::npos) {
    ep.block = s;
    return ep;
  }
  ep.block = s.substr(0, colon);
  const std::string port = s.substr(colon + 1);
  if (port.empty() ||
      port.find_first_not_of("0123456789") != std::string::npos) {
    fail(who + ": bad port in endpoint '" + s + "'", &v);
  }
  ep.port = static_cast<std::size_t>(std::stoul(port));
  if (ep.block.empty()) fail(who + ": empty block name in endpoint", &v);
  return ep;
}

BlockSpec parse_block(const Json& b, std::size_t i) {
  const std::string who = "blocks[" + std::to_string(i) + "]";
  if (!b.is(Json::Type::kObject)) fail(who + ": must be an object", &b);
  BlockSpec spec;
  spec.name = need(b, "name", Json::Type::kString, who).string;
  if (spec.name.empty()) fail(who + ": 'name' must not be empty", &b);
  spec.type = need(b, "type", Json::Type::kString, who).string;
  const std::string who2 = who + " ('" + spec.name + "')";

  if (spec.type == "fifo_queue") {
    check_keys(b, {"name", "type", "rate_gbps", "queue_frames"}, who2);
    spec.fifo.rate_gbps =
        number_or(b, "rate_gbps", spec.fifo.rate_gbps, who2);
    spec.fifo.queue_frames =
        count_or(b, "queue_frames", spec.fifo.queue_frames, who2);
  } else if (spec.type == "red") {
    check_keys(b,
               {"name", "type", "rate_gbps", "queue_frames", "min_th",
                "max_th", "max_p", "weight"},
               who2);
    spec.red.rate_gbps = number_or(b, "rate_gbps", spec.red.rate_gbps, who2);
    spec.red.queue_frames =
        count_or(b, "queue_frames", spec.red.queue_frames, who2);
    spec.red.min_th = number_or(b, "min_th", spec.red.min_th, who2);
    spec.red.max_th = number_or(b, "max_th", spec.red.max_th, who2);
    spec.red.max_p = number_or(b, "max_p", spec.red.max_p, who2);
    spec.red.weight = number_or(b, "weight", spec.red.weight, who2);
  } else if (spec.type == "token_bucket") {
    check_keys(
        b, {"name", "type", "rate_gbps", "burst_bytes", "shape",
            "queue_frames"},
        who2);
    spec.token_bucket.rate_gbps =
        number_or(b, "rate_gbps", spec.token_bucket.rate_gbps, who2);
    spec.token_bucket.burst_bytes =
        count_or(b, "burst_bytes", spec.token_bucket.burst_bytes, who2);
    spec.token_bucket.shape =
        bool_or(b, "shape", spec.token_bucket.shape, who2);
    spec.token_bucket.queue_frames =
        count_or(b, "queue_frames", spec.token_bucket.queue_frames, who2);
  } else if (spec.type == "delay_ber") {
    check_keys(b, with_time_units({"name", "type", "ber"}, {"delay"}), who2);
    spec.delay_ber.delay = time_or(b, "delay", 0, who2);
    spec.delay_ber.ber = number_or(b, "ber", 0.0, who2);
  } else if (spec.type == "ecmp") {
    check_keys(b, {"name", "type", "fanout", "salt"}, who2);
    spec.ecmp.fanout = count_or(b, "fanout", spec.ecmp.fanout, who2);
    spec.ecmp.salt = count_or(b, "salt", 0, who2);
    spec.num_outputs = spec.ecmp.fanout;
  } else if (spec.type == "sink") {
    check_keys(b, {"name", "type"}, who2);
    spec.num_outputs = 0;
  } else if (spec.type == "monitor") {
    check_keys(b, {"name", "type", "rtt_probe"}, who2);
    spec.monitor.rtt_probe =
        bool_or(b, "rtt_probe", spec.monitor.rtt_probe, who2);
  } else if (spec.type == "burst_source") {
    spec.burst.pattern =
        parse_burst_pattern(b, {"name", "type", "batched"}, who2);
    spec.burst.batched = bool_or(b, "batched", spec.burst.batched, who2);
    spec.num_inputs = 0;
  } else if (spec.type == "legacy_switch") {
    check_keys(b,
               with_time_units({"name", "type", "num_ports", "queue_bytes",
                                "flood_unknown", "lookup_rate_mpps",
                                "cut_through"},
                               {"pipeline_latency"}),
               who2);
    auto& c = spec.legacy_switch;
    c.num_ports = count_or(b, "num_ports", c.num_ports, who2);
    c.queue_bytes = count_or(b, "queue_bytes", c.queue_bytes, who2);
    c.flood_unknown = bool_or(b, "flood_unknown", c.flood_unknown, who2);
    c.lookup_rate_mpps =
        number_or(b, "lookup_rate_mpps", c.lookup_rate_mpps, who2);
    c.cut_through = bool_or(b, "cut_through", c.cut_through, who2);
    c.pipeline_latency =
        time_or(b, "pipeline_latency", c.pipeline_latency, who2);
    if (c.num_ports == 0) fail(who2 + ": num_ports must be positive", &b);
    spec.num_inputs = spec.num_outputs = c.num_ports;
  } else if (spec.type == "openflow_switch") {
    check_keys(b, {"name", "type", "num_ports", "table_size"}, who2);
    auto& c = spec.openflow_switch.sw;
    c.num_ports = count_or(b, "num_ports", c.num_ports, who2);
    c.table.max_entries =
        count_or(b, "table_size", c.table.max_entries, who2);
    if (c.num_ports == 0) fail(who2 + ": num_ports must be positive", &b);
    spec.num_inputs = spec.num_outputs = c.num_ports;
  } else {
    std::string msg = who + ": unknown block type '" + spec.type + "'";
    const std::string hint =
        suggest_nearest(spec.type, TopologyFile::known_types());
    if (!hint.empty()) msg += " (did you mean '" + hint + "'?)";
    fail(msg, b.find("type"));
  }
  return spec;
}

WorkloadSpec parse_workload(const Json& w) {
  const std::string who = "workload";
  if (!w.is(Json::Type::kObject)) fail("'workload' must be an object", &w);
  WorkloadSpec spec;
  const std::string kind = need(w, "kind", Json::Type::kString, who).string;
  if (kind == "none") {
    check_keys(w, {"kind"}, who);
    return spec;
  }
  if (kind == "tcp") {
    spec.kind = WorkloadSpec::Kind::kTcp;
    check_keys(w,
               {"kind", "ingress", "egress", "ack_ingress", "ack_egress",
                "flows", "cc", "mss", "bottleneck_gbps", "queue_segments",
                "rwnd_kb", "rate_limit_detector"},
               who);
    spec.flows = count_or(w, "flows", spec.flows, who);
    spec.cc = string_or(w, "cc", spec.cc, who);
    spec.mss = static_cast<std::uint32_t>(count_or(w, "mss", spec.mss, who));
    spec.bottleneck_gbps =
        number_or(w, "bottleneck_gbps", spec.bottleneck_gbps, who);
    spec.queue_segments =
        count_or(w, "queue_segments", spec.queue_segments, who);
    spec.rwnd_kb = count_or(w, "rwnd_kb", spec.rwnd_kb, who);
    spec.rate_limit_detector =
        bool_or(w, "rate_limit_detector", spec.rate_limit_detector, who);
    if (spec.flows == 0) fail(who + ": 'flows' must be positive", &w);
  } else if (kind == "cbr") {
    spec.kind = WorkloadSpec::Kind::kCbr;
    check_keys(
        w, {"kind", "ingress", "egress", "rate_gbps", "frame_size", "flows"},
        who);
    spec.rate_gbps = number_or(w, "rate_gbps", spec.rate_gbps, who);
    spec.frame_size = count_or(w, "frame_size", spec.frame_size, who);
    spec.flow_count = static_cast<std::uint32_t>(
        count_or(w, "flows", spec.flow_count, who));
  } else if (kind == "burst") {
    spec.kind = WorkloadSpec::Kind::kBurst;
    spec.burst = parse_burst_pattern(
        w, {"kind", "ingress", "egress", "batched"}, who);
    spec.burst_batched = bool_or(w, "batched", spec.burst_batched, who);
  } else {
    const std::vector<std::string> kinds = {"none", "tcp", "cbr", "burst"};
    std::string msg = who + ": unknown kind '" + kind + "'";
    const std::string hint = suggest_nearest(kind, kinds);
    if (!hint.empty()) msg += " (did you mean '" + hint + "'?)";
    fail(msg, w.find("kind"));
  }
  spec.ingress = parse_endpoint(need(w, "ingress", Json::Type::kString, who),
                                who + ".ingress");
  spec.egress = parse_endpoint(need(w, "egress", Json::Type::kString, who),
                               who + ".egress");
  if (const Json* v = w.find("ack_ingress")) {
    spec.ack_ingress = parse_endpoint(*v, who + ".ack_ingress");
  }
  if (const Json* v = w.find("ack_egress")) {
    spec.ack_egress = parse_endpoint(*v, who + ".ack_egress");
  }
  if (spec.ack_ingress.has_value() != spec.ack_egress.has_value()) {
    fail(who + ": ack_ingress and ack_egress must be given together", &w);
  }
  return spec;
}

/// Structural validation: every referenced endpoint exists, input ports
/// are in range, and every output port is claimed at most once.
void validate(const TopologyFile& t) {
  std::unordered_map<std::string, const BlockSpec*> by_name;
  for (const auto& b : t.blocks) {
    if (!by_name.emplace(b.name, &b).second) {
      fail("duplicate block name '" + b.name + "'");
    }
  }
  const auto resolve = [&](const Endpoint& ep,
                           const std::string& who) -> const BlockSpec& {
    const auto it = by_name.find(ep.block);
    if (it == by_name.end()) {
      std::string msg = who + ": unknown block '" + ep.block + "'";
      std::vector<std::string> names;
      names.reserve(t.blocks.size());
      for (const auto& b : t.blocks) names.push_back(b.name);
      const std::string hint = suggest_nearest(ep.block, names);
      if (!hint.empty()) msg += " (did you mean '" + hint + "'?)";
      fail(msg);
    }
    return *it->second;
  };
  const auto check_out = [&](const Endpoint& ep, const std::string& who) {
    const BlockSpec& b = resolve(ep, who);
    if (ep.port >= b.num_outputs) {
      fail(who + ": block '" + b.name + "' has no output port " +
           std::to_string(ep.port) + " (outputs: " +
           std::to_string(b.num_outputs) + ")");
    }
  };
  const auto check_in = [&](const Endpoint& ep, const std::string& who) {
    const BlockSpec& b = resolve(ep, who);
    if (ep.port >= b.num_inputs) {
      fail(who + ": block '" + b.name + "' has no input port " +
           std::to_string(ep.port) + " (inputs: " +
           std::to_string(b.num_inputs) + ")");
    }
  };

  std::unordered_set<std::string> claimed;
  const auto claim = [&](const Endpoint& ep, const std::string& who) {
    check_out(ep, who);
    const std::string key = ep.block + ":" + std::to_string(ep.port);
    if (!claimed.insert(key).second) {
      fail(who + ": output '" + key + "' is already wired");
    }
  };

  for (std::size_t i = 0; i < t.edges.size(); ++i) {
    const std::string who = "edges[" + std::to_string(i) + "]";
    claim(t.edges[i].from, who);
    check_in(t.edges[i].to, who);
  }
  if (t.workload.kind != WorkloadSpec::Kind::kNone) {
    check_in(t.workload.ingress, "workload.ingress");
    claim(t.workload.egress, "workload.egress");
    if (t.workload.ack_ingress) {
      check_in(*t.workload.ack_ingress, "workload.ack_ingress");
      claim(*t.workload.ack_egress, "workload.ack_egress");
    }
  }
  if (t.workload.kind == WorkloadSpec::Kind::kBurst) {
    for (const char* r : {"burst_workload", "burst_sink"}) {
      if (by_name.count(r) != 0) {
        fail("block name '" + std::string(r) +
             "' is reserved for the burst workload");
      }
    }
  }
}

}  // namespace

const std::vector<std::string>& TopologyFile::known_types() {
  static const std::vector<std::string> kTypes = {
      "fifo_queue",    "red",  "token_bucket", "delay_ber", "ecmp",
      "sink",          "monitor", "legacy_switch", "openflow_switch",
      "burst_source"};
  return kTypes;
}

TopologyFile TopologyFile::from_json(const std::string& text) {
  const Json root = [&text] {
    try {
      return json::parse(text, "topology JSON");
    } catch (const json::ParseError& e) {
      throw TopologyError(e.what());
    }
  }();
  if (!root.is(Json::Type::kObject)) {
    fail("top level must be an object", &root);
  }
  check_keys(root,
             with_time_units({"name", "seed", "blocks", "edges", "workload"},
                             {"duration"}),
             "topology");

  TopologyFile t;
  t.name = string_or(root, "name", "", "topology");
  t.seed = static_cast<std::uint64_t>(
      count_or(root, "seed", static_cast<std::size_t>(t.seed), "topology"));
  t.duration = time_or(root, "duration", t.duration, "topology");

  const Json& blocks = need(root, "blocks", Json::Type::kArray, "topology");
  if (blocks.array.empty()) fail("'blocks' must not be empty", &blocks);
  for (std::size_t i = 0; i < blocks.array.size(); ++i) {
    t.blocks.push_back(parse_block(blocks.array[i], i));
  }

  if (const Json* edges = root.find("edges")) {
    if (!edges->is(Json::Type::kArray)) {
      fail("'edges' must be an array", edges);
    }
    for (std::size_t i = 0; i < edges->array.size(); ++i) {
      const Json& e = edges->array[i];
      const std::string who = "edges[" + std::to_string(i) + "]";
      if (!e.is(Json::Type::kObject)) fail(who + ": must be an object", &e);
      check_keys(e, with_time_units({"from", "to"}, {"propagation"}), who);
      EdgeSpec edge;
      edge.from = parse_endpoint(need(e, "from", Json::Type::kString, who),
                                 who + ".from");
      edge.to =
          parse_endpoint(need(e, "to", Json::Type::kString, who), who + ".to");
      edge.propagation = time_or(e, "propagation", 0, who);
      t.edges.push_back(edge);
    }
  }

  if (const Json* w = root.find("workload")) t.workload = parse_workload(*w);

  validate(t);
  return t;
}

TopologyFile TopologyFile::load(const std::string& path) {
  try {
    return from_json(json::read_file(path, "topology"));
  } catch (const json::ParseError& e) {
    throw TopologyError(e.what());
  }
}

void TopologyFile::build(sim::Engine& eng, Graph& g, std::uint64_t trial_seed,
                         Picos horizon) const {
  if (horizon <= 0) horizon = duration;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const BlockSpec& b = blocks[i];
    // Stream tag 0x109 ("toPO"-ish) + ordinal: decorrelated from the
    // workload's flow substreams, stable across runs of the same file.
    const std::uint64_t block_seed = derive_seed(trial_seed, 0x1090 + i);
    if (b.type == "fifo_queue") {
      g.emplace<FifoQueueBlock>(eng, b.name, b.fifo);
    } else if (b.type == "red") {
      RedConfig cfg = b.red;
      cfg.seed = block_seed;
      g.emplace<RedBlock>(eng, b.name, cfg);
    } else if (b.type == "token_bucket") {
      g.emplace<TokenBucketBlock>(eng, b.name, b.token_bucket);
    } else if (b.type == "delay_ber") {
      DelayBerConfig cfg = b.delay_ber;
      cfg.seed = block_seed;
      g.emplace<DelayBerBlock>(eng, b.name, cfg);
    } else if (b.type == "ecmp") {
      g.emplace<EcmpBlock>(eng, b.name, b.ecmp);
    } else if (b.type == "sink") {
      g.emplace<SinkBlock>(eng, b.name);
    } else if (b.type == "monitor") {
      g.emplace<MonitorBlock>(eng, b.name, b.monitor);
    } else if (b.type == "legacy_switch") {
      dut::LegacySwitchConfig cfg = b.legacy_switch;
      cfg.seed = block_seed;
      g.emplace<LegacySwitchBlock>(eng, b.name, cfg);
    } else if (b.type == "openflow_switch") {
      OpenFlowSwitchBlockConfig cfg = b.openflow_switch;
      cfg.sw.seed = block_seed;
      g.emplace<OpenFlowSwitchBlock>(eng, b.name, cfg);
    } else if (b.type == "burst_source") {
      burst::BurstSourceConfig cfg = b.burst;
      cfg.pattern.seed = block_seed;
      if (cfg.horizon <= 0) cfg.horizon = horizon;
      g.emplace<burst::BurstSourceBlock>(eng, b.name, cfg);
    } else {
      fail("unknown block type '" + b.type + "'");  // unreachable post-parse
    }
  }
  for (const auto& e : edges) {
    g.connect(e.from.block, e.from.port, e.to.block, e.to.port,
              e.propagation);
  }
}

void validate_fault_targets(const TopologyFile& topo,
                            const fault::FaultPlan& plan) {
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const fault::FaultEvent& ev = plan.events[i];
    if (ev.kind != fault::FaultKind::kRateLimit &&
        ev.kind != fault::FaultKind::kQueueCap) {
      continue;
    }
    const bool rate = ev.kind == fault::FaultKind::kRateLimit;
    const auto eligible = [rate](const BlockSpec& b) {
      if (b.type == "token_bucket") return true;
      return !rate && (b.type == "fifo_queue" || b.type == "red");
    };
    const BlockSpec* found = nullptr;
    std::vector<std::string> names;
    for (const auto& b : topo.blocks) {
      if (!eligible(b)) continue;
      names.push_back(b.name);
      if (b.name == ev.target) found = &b;
    }
    if (found) continue;
    const std::string who =
        std::string(fault_kind_name(ev.kind)) + " event " + std::to_string(i);
    // Distinguish "no such block" from "block of the wrong type" — the
    // second is the likelier authoring mistake and deserves a plain answer.
    for (const auto& b : topo.blocks) {
      if (b.name == ev.target) {
        fail("fault plan: " + who + " targets block '" + ev.target +
             "' of type '" + b.type + "', which " +
             (rate ? "is not a token_bucket"
                   : "has no queue to cap (need fifo_queue, red, or "
                     "token_bucket)"));
      }
    }
    std::string msg =
        "fault plan: " + who + " targets unknown block '" + ev.target + "'";
    const std::string hint = suggest_nearest(ev.target, names);
    if (!hint.empty()) msg += " (did you mean '" + hint + "'?)";
    fail(msg);
  }
}

void validate_workload(const TopologyFile& topo) {
  const WorkloadSpec& w = topo.workload;
  if (w.kind == WorkloadSpec::Kind::kTcp) {
    static const std::vector<std::string> kCc = {"newreno", "cubic", "bbr"};
    if (std::find(kCc.begin(), kCc.end(), w.cc) == kCc.end()) {
      std::string msg = "workload: unknown cc '" + w.cc + "'";
      const std::string hint = suggest_nearest(w.cc, kCc);
      if (!hint.empty()) msg += " (did you mean '" + hint + "'?)";
      fail(msg);
    }
    if (w.mss == 0) fail("workload: 'mss' must be positive");
    if (w.bottleneck_gbps < 0) {
      fail("workload: 'bottleneck_gbps' must not be negative");
    }
  } else if (w.kind == WorkloadSpec::Kind::kCbr) {
    if (w.rate_gbps <= 0) fail("workload: 'rate_gbps' must be positive");
    if (w.frame_size < net::kEthMinFrame ||
        w.frame_size > net::kEthMaxFrame) {
      fail("workload: 'frame_size' must be in [64, 1518]");
    }
    if (w.flow_count == 0) fail("workload: 'flows' must be positive");
  } else if (w.kind == WorkloadSpec::Kind::kBurst) {
    try {
      w.burst.validate();
    } catch (const burst::BurstError& e) {
      fail("workload: " + std::string(e.what()));
    }
  }
  for (const auto& b : topo.blocks) {
    if (b.type != "burst_source") continue;
    try {
      b.burst.pattern.validate();
    } catch (const burst::BurstError& e) {
      fail("block '" + b.name + "': " + std::string(e.what()));
    }
  }
}

TopologyTrialReport run_topology_trial(const TopologyFile& topo,
                                       std::uint64_t trial_seed,
                                       Picos duration,
                                       const fault::FaultPlan* plan,
                                       telemetry::TraceRecorder* trace,
                                       Picos series_interval) {
  if (duration == 0) duration = topo.duration;
  TopologyTrialReport report;

  sim::Engine eng;
  if (trace) eng.set_trace(trace);
  core::OsntDevice dev{eng};
  Graph g{eng};
  topo.build(eng, g, trial_seed, duration);

  const WorkloadSpec& w = topo.workload;

  // Burst workloads are graph-native: the source and sink join the graph
  // itself (so the series loop below picks up their channels) rather than
  // riding the device ports. Names are reserved at validate() time.
  burst::BurstSourceBlock* burst_src = nullptr;
  SinkBlock* burst_sink = nullptr;
  if (w.kind == WorkloadSpec::Kind::kBurst) {
    burst::BurstSourceConfig bcfg;
    bcfg.pattern = w.burst;
    // Stream tag 0x10B0: decorrelated from the 0x1090+i block streams.
    bcfg.pattern.seed = derive_seed(trial_seed, 0x10B0);
    bcfg.batched = w.burst_batched;
    bcfg.horizon = duration;
    burst_src =
        &g.emplace<burst::BurstSourceBlock>(eng, "burst_workload", bcfg);
    burst_sink = &g.emplace<SinkBlock>(eng, "burst_sink");
    g.connect("burst_workload", 0, w.ingress.block, w.ingress.port);
    g.connect(w.egress.block, w.egress.port, "burst_sink", 0);
  }
  std::optional<fault::Injector> injector;
  const auto arm_faults = [&] {
    if (plan && !plan->events.empty()) {
      injector.emplace(eng, *plan);
      injector->attach_device(dev);
      injector->attach_graph(g);
      injector->arm();
    }
  };

  // Sim-time sampler: per-block intrinsic channels plus each monitor's
  // in-plane RTT histogram. Workload channels join below, before start.
  std::optional<telemetry::TimeSeries> series;
  if (series_interval > 0) {
    series.emplace(series_interval);
    for (std::size_t i = 0; i < g.num_blocks(); ++i) {
      const Block* b = &g.block(i);
      const std::string prefix = "graph." + b->name() + ".";
      series->add_counter(prefix + "frames_in",
                          [b] { return b->frames_in(); });
      series->add_counter(prefix + "frames_out",
                          [b] { return b->frames_out(); });
      series->add_counter(prefix + "drops", [b] { return b->drops(); });
      series->add_counter(prefix + "frame_bytes",
                          [b] { return b->bytes_in(); });
      if (const auto* mb = dynamic_cast<const MonitorBlock*>(b)) {
        series->add_histogram(prefix + "rtt.ns",
                              [mb] { return mb->rtt_probe().merged(); });
      }
    }
    series->attach(eng, duration);
  }
  const auto finish_series = [&] {
    if (!series) return;
    series->finish();
    report.series = series->take();
    series.reset();
  };

  if (w.kind == WorkloadSpec::Kind::kTcp) {
    // Forward path: device TX port 0 → graph → device RX port 1.
    dev.port(0).out_link().connect(g.input(w.ingress.block, w.ingress.port));
    g.connect_output(w.egress.block, w.egress.port, dev.port(1).rx());
    // ACK path: through its own blocks, or an ideal reverse cable.
    if (w.ack_ingress) {
      dev.port(1).out_link().connect(
          g.input(w.ack_ingress->block, w.ack_ingress->port));
      g.connect_output(w.ack_egress->block, w.ack_egress->port,
                       dev.port(0).rx());
    } else {
      dev.port(1).out_link().connect(dev.port(0).rx());
    }

    tcp::WorkloadConfig cfg;
    cfg.flows = w.flows;
    cfg.cc = w.cc;
    cfg.mss = w.mss;
    cfg.bottleneck_gbps = w.bottleneck_gbps;
    cfg.queue_segments = w.queue_segments;
    cfg.rwnd_bytes = w.rwnd_kb * 1024;
    cfg.rate_limit_detector = w.rate_limit_detector;
    cfg.seed = trial_seed;
    tcp::ClosedLoopWorkload workload{eng, dev, cfg};
    if (series) {
      series->add_counter("tcp.bytes_acked",
                          [&workload] { return workload.total_bytes_acked(); });
      series->add_counter("tcp.acks_sent",
                          [&workload] { return workload.total_acks_sent(); });
      series->add_counter("tcp.retransmits",
                          [&workload] { return workload.total_retransmits(); });
      series->add_counter("tcp.queue_drops",
                          [&workload] { return workload.source().drops(); });
      series->add_histogram("tcp.rtt.ns", [&workload] {
        return workload.rtt_probe().merged();
      });
    }
    arm_faults();
    g.start();
    workload.start();
    eng.run_until(duration);

    tcp::TcpTrialReport& r = report.tcp;
    r.bytes_acked = workload.total_bytes_acked();
    r.retransmits = workload.total_retransmits();
    r.rto_fires = workload.total_rto_fires();
    r.fast_retx = workload.total_fast_retx();
    r.cwnd_reductions = workload.total_cwnd_reductions();
    r.acks_sent = workload.total_acks_sent();
    r.queue_drops = workload.source().drops();
    r.goodput_bps = workload.goodput_bps(duration);
    r.rld_detections = workload.total_rld_detections();
    r.rld_rate_bps = workload.mean_rld_rate_bps();
    r.rld_detect_time = workload.mean_rld_detect_time();
    const telemetry::Log2Histogram rtt = workload.rtt_probe().merged();
    if (rtt.count() > 0) {
      r.rtt_p99_ns = rtt.quantile(0.99);
      r.rtt_min_ns = static_cast<double>(rtt.min());
    }
    for (std::size_t i = 0; i < workload.num_flows(); ++i) {
      const tcp::Flow& f = workload.flow(i);
      r.segs_sent += f.stats().segs_sent;
      r.emit_rejects += f.stats().emit_rejects;
      const double rate = f.delivery_rate_bps();
      if (i == 0 || rate < r.min_flow_rate_bps) r.min_flow_rate_bps = rate;
      if (i == 0 || rate > r.max_flow_rate_bps) r.max_flow_rate_bps = rate;
    }
    finish_series();  // before the workload (and its channels) go away
  } else if (w.kind == WorkloadSpec::Kind::kCbr) {
    dev.port(0).out_link().connect(g.input(w.ingress.block, w.ingress.port));
    g.connect_output(w.egress.block, w.egress.port, dev.port(1).rx());
    dev.port(1).out_link().connect(dev.port(0).rx());
    arm_faults();
    g.start();
    core::TrafficSpec spec;
    spec.rate = gen::RateSpec::gbps(w.rate_gbps);
    spec.frame_size = w.frame_size;
    spec.flow_count = w.flow_count;
    spec.seed = trial_seed;
    report.cbr = core::run_capture_test(eng, dev, 0, 1, spec, duration);
    finish_series();
  } else if (w.kind == WorkloadSpec::Kind::kBurst) {
    arm_faults();
    g.start();
    eng.run_until(duration);
    auto& r = report.burst;
    r.frames = burst_src->frames_out();
    r.bursts = burst_src->bursts_emitted();
    r.tx_bytes = burst_src->wire_bytes();
    r.rx_frames = burst_sink->frames_in();
    r.rx_bytes = burst_sink->bytes();
    finish_series();
  } else {
    arm_faults();
    g.start();
    eng.run_until(duration);
    finish_series();
  }

  report.blocks.reserve(g.num_blocks());
  for (std::size_t i = 0; i < g.num_blocks(); ++i) {
    const Block& b = g.block(i);
    BlockCounters bc;
    bc.name = b.name();
    bc.frames_in = b.frames_in();
    bc.frames_out = b.frames_out();
    bc.drops = b.drops();
    bc.frame_bytes = b.bytes_in();
    if (const auto* mb = dynamic_cast<const MonitorBlock*>(&b)) {
      const telemetry::Log2Histogram h = mb->rtt_probe().merged();
      bc.rtt_samples = h.count();
      if (h.count() > 0) {
        bc.rtt_p50_ns = h.quantile(0.5);
        bc.rtt_p90_ns = h.quantile(0.9);
        bc.rtt_p99_ns = h.quantile(0.99);
      }
    }
    report.blocks.push_back(std::move(bc));
  }
  report.graph_frames_in = g.total_frames_in();
  report.graph_drops = g.total_drops();
  return report;
}

}  // namespace osnt::graph
