#include "osnt/graph/dut_blocks.hpp"

namespace osnt::graph {

LegacySwitchBlock::LegacySwitchBlock(sim::Engine& eng, std::string name,
                                     dut::LegacySwitchConfig cfg)
    : Block(eng, std::move(name), cfg.num_ports, cfg.num_ports),
      sw_(dut::GraphWired{}, eng, cfg) {
  for (std::size_t i = 0; i < sw_.num_ports(); ++i) {
    egress_.emplace_back(*this, i);
    sw_.port(i).out_link().connect(egress_.back());
  }
}

void LegacySwitchBlock::on_frame(std::size_t in_port, net::Packet pkt,
                                 Picos first_bit, Picos last_bit) {
  sw_.port(in_port).rx().on_frame(std::move(pkt), first_bit, last_bit);
}

OpenFlowSwitchBlock::OpenFlowSwitchBlock(sim::Engine& eng, std::string name,
                                         OpenFlowSwitchBlockConfig cfg)
    : Block(eng, std::move(name), cfg.sw.num_ports, cfg.sw.num_ports),
      chan_(eng, cfg.chan),
      sw_(dut::GraphWired{}, eng, chan_, cfg.sw) {
  for (std::size_t i = 0; i < sw_.num_ports(); ++i) {
    egress_.emplace_back(*this, i);
    sw_.port(i).out_link().connect(egress_.back());
  }
}

void OpenFlowSwitchBlock::on_frame(std::size_t in_port, net::Packet pkt,
                                   Picos first_bit, Picos last_bit) {
  sw_.port(in_port).rx().on_frame(std::move(pkt), first_bit, last_bit);
}

}  // namespace osnt::graph
