#include "osnt/graph/blocks.hpp"

#include <algorithm>
#include <cmath>

#include "osnt/common/hash.hpp"
#include "osnt/net/parser.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt::graph {

// ------------------------------------------------------------ fifo_queue

FifoQueueBlock::FifoQueueBlock(sim::Engine& eng, std::string name,
                               FifoQueueConfig cfg)
    : Block(eng, std::move(name), 1, 1), fifo_cfg_(cfg) {
  if (fifo_cfg_.rate_gbps <= 0.0) {
    throw GraphError("graph: fifo_queue '" + this->name() +
                     "' needs rate_gbps > 0");
  }
  if (fifo_cfg_.queue_frames == 0) {
    throw GraphError("graph: fifo_queue '" + this->name() +
                     "' needs queue_frames > 0");
  }
}

FifoQueueBlock::~FifoQueueBlock() {
  if (telemetry::enabled() && frames_in() > 0) {
    auto& reg = telemetry::registry();
    const std::string prefix = "graph." + name() + ".";
    reg.counter(prefix + "tail_drops").add(tail_drops_);
    reg.gauge(prefix + "peak_depth")
        .update_max(static_cast<std::int64_t>(peak_));
  }
}

void FifoQueueBlock::set_queue_frames(std::size_t frames) {
  if (frames == 0) {
    throw GraphError("graph: fifo_queue '" + name() +
                     "' retime needs queue_frames > 0");
  }
  fifo_cfg_.queue_frames = frames;
}

void FifoQueueBlock::on_frame(std::size_t /*in_port*/, net::Packet pkt,
                              Picos /*first_bit*/, Picos /*last_bit*/) {
  if (depth_ >= fifo_cfg_.queue_frames) {
    count_tail_drop();
    return;
  }
  enqueue(std::move(pkt));
}

void FifoQueueBlock::enqueue(net::Packet pkt) {
  ++depth_;
  peak_ = std::max(peak_, depth_);
  const Picos start = std::max(now(), busy_until_);
  const Picos air = net::serialization_time(pkt.line_len(), fifo_cfg_.rate_gbps);
  const Picos end = start + air;
  busy_until_ = end;
  engine().schedule_at(end, [this, pkt = std::move(pkt), start, end]() mutable {
    --depth_;
    emit(0, std::move(pkt), start, end);
  });
}

// ------------------------------------------------------------------- red

RedBlock::RedBlock(sim::Engine& eng, std::string name, RedConfig cfg)
    : FifoQueueBlock(eng, std::move(name),
                     FifoQueueConfig{cfg.rate_gbps, cfg.queue_frames}),
      cfg_(cfg),
      rng_(cfg.seed) {
  if (!(cfg_.min_th < cfg_.max_th)) {
    throw GraphError("graph: red '" + this->name() +
                     "' needs min_th < max_th");
  }
  if (cfg_.max_p <= 0.0 || cfg_.max_p > 1.0) {
    throw GraphError("graph: red '" + this->name() +
                     "' needs max_p in (0, 1]");
  }
  if (cfg_.weight <= 0.0 || cfg_.weight > 1.0) {
    throw GraphError("graph: red '" + this->name() +
                     "' needs weight in (0, 1]");
  }
}

RedBlock::~RedBlock() {
  if (telemetry::enabled() && frames_in() > 0) {
    auto& reg = telemetry::registry();
    const std::string prefix = "graph." + name() + ".";
    reg.counter(prefix + "red_early_drops").add(early_drops_);
    reg.counter(prefix + "red_forced_drops").add(forced_drops_);
  }
}

void RedBlock::on_frame(std::size_t in_port, net::Packet pkt, Picos first_bit,
                        Picos last_bit) {
  avg_ += cfg_.weight * (static_cast<double>(depth()) - avg_);
  if (avg_ >= cfg_.max_th) {
    ++forced_drops_;
    count_drop();
    return;
  }
  if (avg_ >= cfg_.min_th) {
    const double p =
        cfg_.max_p * (avg_ - cfg_.min_th) / (cfg_.max_th - cfg_.min_th);
    if (rng_.chance(p)) {
      ++early_drops_;
      count_drop();
      return;
    }
  }
  FifoQueueBlock::on_frame(in_port, std::move(pkt), first_bit, last_bit);
}

// ----------------------------------------------------------- token_bucket

TokenBucketBlock::TokenBucketBlock(sim::Engine& eng, std::string name,
                                   TokenBucketConfig cfg)
    : Block(eng, std::move(name), 1, 1),
      cfg_(cfg),
      bytes_per_pico_(cfg.rate_gbps / 8000.0),
      tokens_(static_cast<double>(cfg.burst_bytes)) {
  if (cfg_.rate_gbps <= 0.0) {
    throw GraphError("graph: token_bucket '" + this->name() +
                     "' needs rate_gbps > 0");
  }
  if (cfg_.burst_bytes == 0) {
    throw GraphError("graph: token_bucket '" + this->name() +
                     "' needs burst_bytes > 0");
  }
}

TokenBucketBlock::~TokenBucketBlock() {
  if (telemetry::enabled() && frames_in() > 0) {
    auto& reg = telemetry::registry();
    const std::string prefix = "graph." + name() + ".";
    reg.counter(prefix + "conforming").add(conforming_);
    reg.counter(prefix + "shaped").add(shaped_);
    reg.counter(prefix + "policed").add(policed_);
  }
}

void TokenBucketBlock::set_rate_gbps(double rate_gbps) {
  if (rate_gbps <= 0.0) {
    throw GraphError("graph: token_bucket '" + name() +
                     "' retime needs rate_gbps > 0");
  }
  // Settle the balance at the old slope first — tokens earned before the
  // retime were earned at the old rate — then switch the slope.
  refill();
  cfg_.rate_gbps = rate_gbps;
  bytes_per_pico_ = rate_gbps / 8000.0;
}

void TokenBucketBlock::set_burst_bytes(std::size_t burst_bytes) {
  if (burst_bytes == 0) {
    throw GraphError("graph: token_bucket '" + name() +
                     "' retime needs burst_bytes > 0");
  }
  refill();
  cfg_.burst_bytes = burst_bytes;
  // A shrunken bucket spills the excess; a shaping deficit (negative
  // balance) is untouched — those bytes were already borrowed.
  tokens_ = std::min(tokens_, static_cast<double>(burst_bytes));
}

void TokenBucketBlock::set_queue_frames(std::size_t frames) {
  if (frames == 0) {
    throw GraphError("graph: token_bucket '" + name() +
                     "' retime needs queue_frames > 0");
  }
  cfg_.queue_frames = frames;  // gates admission only; backlog stays
}

void TokenBucketBlock::refill() noexcept {
  const Picos t = now();
  tokens_ = std::min(static_cast<double>(cfg_.burst_bytes),
                     tokens_ + static_cast<double>(t - last_refill_) *
                                   bytes_per_pico_);
  last_refill_ = t;
}

void TokenBucketBlock::on_frame(std::size_t /*in_port*/, net::Packet pkt,
                                Picos first_bit, Picos last_bit) {
  refill();
  const double cost = static_cast<double>(pkt.line_len());
  if (tokens_ >= cost) {
    tokens_ -= cost;
    ++conforming_;
    emit(0, std::move(pkt), first_bit, last_bit);
    return;
  }
  if (!cfg_.shape) {
    ++policed_;
    count_drop();
    return;
  }
  if (backlog_ >= cfg_.queue_frames) {
    count_drop();
    return;
  }
  // Shape: borrow against future refill. The deficit (negative balance)
  // fixes the release time; keeping releases monotonic preserves FIFO
  // order when several frames are backlogged at once.
  tokens_ -= cost;
  const Picos wait =
      static_cast<Picos>(std::ceil(-tokens_ / bytes_per_pico_));
  const Picos release = std::max(now() + wait, last_release_ + 1);
  last_release_ = release;
  ++backlog_;
  ++shaped_;
  const Picos dur = last_bit - first_bit;
  engine().schedule_at(release,
                       [this, pkt = std::move(pkt), release, dur]() mutable {
                         --backlog_;
                         emit(0, std::move(pkt), release - dur, release);
                       });
}

// -------------------------------------------------------------- delay_ber

DelayBerBlock::DelayBerBlock(sim::Engine& eng, std::string name,
                             DelayBerConfig cfg)
    : Block(eng, std::move(name), 1, 1), cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.ber < 0.0 || cfg_.ber >= 1.0) {
    throw GraphError("graph: delay_ber '" + this->name() +
                     "' needs ber in [0, 1)");
  }
}

DelayBerBlock::~DelayBerBlock() {
  if (telemetry::enabled() && corrupted_ > 0) {
    telemetry::registry()
        .counter("graph." + name() + ".corrupted")
        .add(corrupted_);
  }
}

void DelayBerBlock::on_frame(std::size_t /*in_port*/, net::Packet pkt,
                             Picos first_bit, Picos last_bit) {
  if (cfg_.ber > 0.0 && !pkt.empty()) {
    // Same frame-hit model as sim::Link: P = 1 - (1-ber)^bits, one bit
    // flipped on a hit, FCS marked bad for the receiver to discard.
    const double bits = static_cast<double>(pkt.line_len()) * 8.0;
    const double p_hit = -std::expm1(bits * std::log1p(-cfg_.ber));
    if (rng_.chance(p_hit)) {
      const auto byte = rng_.uniform_int(0, pkt.size() - 1);
      const auto bit = rng_.uniform_int(0, 7);
      pkt.data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      pkt.fcs_bad = true;
      ++corrupted_;
    }
  }
  emit(0, std::move(pkt), first_bit + cfg_.delay, last_bit + cfg_.delay);
}

// ------------------------------------------------------------------ ecmp

EcmpBlock::EcmpBlock(sim::Engine& eng, std::string name, EcmpConfig cfg)
    : Block(eng, std::move(name), 1, cfg.fanout), cfg_(cfg) {
  if (cfg_.fanout == 0) {
    throw GraphError("graph: ecmp '" + this->name() + "' needs fanout > 0");
  }
}

void EcmpBlock::on_frame(std::size_t /*in_port*/, net::Packet pkt,
                         Picos first_bit, Picos last_bit) {
  std::uint64_t h;
  const auto parsed = net::parse_packet(pkt.bytes());
  if (parsed && parsed->l3 == net::L3Kind::kIpv4) {
    // Pack the 5-tuple into a fixed little buffer so the hash covers
    // exactly the flow identity, independent of payload bytes.
    std::uint8_t key[13] = {};
    const auto& ip = parsed->ipv4;
    std::uint16_t sp = 0, dp = 0;
    if (parsed->l4 == net::L4Kind::kTcp) {
      sp = parsed->tcp.src_port;
      dp = parsed->tcp.dst_port;
    } else if (parsed->l4 == net::L4Kind::kUdp) {
      sp = parsed->udp.src_port;
      dp = parsed->udp.dst_port;
    }
    const std::uint32_t s = ip.src.v, d = ip.dst.v;
    key[0] = static_cast<std::uint8_t>(s >> 24);
    key[1] = static_cast<std::uint8_t>(s >> 16);
    key[2] = static_cast<std::uint8_t>(s >> 8);
    key[3] = static_cast<std::uint8_t>(s);
    key[4] = static_cast<std::uint8_t>(d >> 24);
    key[5] = static_cast<std::uint8_t>(d >> 16);
    key[6] = static_cast<std::uint8_t>(d >> 8);
    key[7] = static_cast<std::uint8_t>(d);
    key[8] = ip.protocol;
    key[9] = static_cast<std::uint8_t>(sp >> 8);
    key[10] = static_cast<std::uint8_t>(sp);
    key[11] = static_cast<std::uint8_t>(dp >> 8);
    key[12] = static_cast<std::uint8_t>(dp);
    h = fnv1a64(ByteSpan{key, sizeof key});
  } else {
    h = fnv1a64(pkt.bytes());
  }
  h ^= cfg_.salt;
  emit(static_cast<std::size_t>(h % cfg_.fanout), std::move(pkt), first_bit,
       last_bit);
}

// ------------------------------------------------------------------ sink

SinkBlock::SinkBlock(sim::Engine& eng, std::string name)
    : Block(eng, std::move(name), 1, 0) {}

SinkBlock::~SinkBlock() {
  if (telemetry::enabled() && frames_in() > 0) {
    telemetry::registry().counter("graph." + name() + ".bytes").add(bytes_);
  }
}

void SinkBlock::on_frame(std::size_t /*in_port*/, net::Packet pkt,
                         Picos /*first_bit*/, Picos last_bit) {
  bytes_ += pkt.wire_len();
  last_arrival_ = last_bit;
}

// --------------------------------------------------------------- monitor

MonitorBlock::MonitorBlock(sim::Engine& eng, std::string name,
                           MonitorConfig cfg)
    : Block(eng, std::move(name), 1, 1), cfg_(cfg) {}

MonitorBlock::~MonitorBlock() {
  if (telemetry::enabled() && frames_in() > 0) {
    auto& reg = telemetry::registry();
    const std::string prefix = "graph." + name() + ".";
    reg.counter(prefix + "bytes").add(bytes_);
    reg.counter(prefix + "fcs_errors").add(fcs_errors_);
    reg.histogram(prefix + "frame_bytes").merge(frame_bytes_);
    rtt_probe_.flush(prefix);
  }
}

namespace {

/// Traffic class without a full parse: the IPv4 DSCP low bits, read
/// straight off the TOS byte (eth[12..13] == 0x0800, tos at eth+15).
/// Non-IPv4 and VLAN-tagged frames fall into class 0.
std::uint8_t frame_class(const net::Packet& pkt) noexcept {
  const auto b = pkt.bytes();
  if (b.size() >= 16 && b[12] == 0x08 && b[13] == 0x00) {
    return static_cast<std::uint8_t>((b[15] >> 2) &
                                     mon::LatencyProbe::kClassMask);
  }
  return 0;
}

}  // namespace

void MonitorBlock::on_frame(std::size_t /*in_port*/, net::Packet pkt,
                            Picos first_bit, Picos last_bit) {
  bytes_ += pkt.wire_len();
  frame_bytes_.record(pkt.wire_len());
  if (pkt.fcs_bad) ++fcs_errors_;
  // In-plane latency at the tap: source-MAC ground truth to arrival here,
  // recorded for every frame regardless of what downstream blocks or the
  // capture path do with it.
  if (cfg_.rtt_probe && pkt.tx_truth > 0 && first_bit >= pkt.tx_truth) {
    rtt_probe_.observe(
        static_cast<std::uint64_t>((first_bit - pkt.tx_truth) / kPicosPerNano),
        frame_class(pkt));
  }
  emit(0, std::move(pkt), first_bit, last_bit);
}

}  // namespace osnt::graph
