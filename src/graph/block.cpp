#include "osnt/graph/block.hpp"

#include "osnt/sim/link.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt::graph {

Block::Block(sim::Engine& eng, std::string name, std::size_t num_inputs,
             std::size_t num_outputs)
    : eng_(&eng),
      name_(std::move(name)),
      num_in_(num_inputs),
      outs_(num_outputs, nullptr) {
  if (name_.empty()) throw GraphError("graph: block name must not be empty");
  if (telemetry::TraceRecorder* tr = eng_->trace()) {
    track_ = tr->track("graph/" + name_);
    traced_ = true;
  }
}

Block::~Block() {
  if (telemetry::enabled() && frames_in_ + frames_out_ + drops_ > 0) {
    auto& reg = telemetry::registry();
    const std::string prefix = "graph." + name_ + ".";
    reg.counter(prefix + "frames_in").add(frames_in_);
    reg.counter(prefix + "frames_out").add(frames_out_);
    reg.counter(prefix + "drops").add(drops_);
    reg.counter(prefix + "frame_bytes").add(bytes_in_);
  }
}

Picos Block::now() const noexcept { return eng_->now(); }

void Block::emit(std::size_t out_port, net::Packet pkt, Picos tx_start,
                 Picos tx_end) {
  if (out_port >= outs_.size() || outs_[out_port] == nullptr) {
    ++drops_;  // dark fiber stub: counted, not fatal
    return;
  }
  ++frames_out_;
  outs_[out_port]->carry(std::move(pkt), tx_start, tx_end);
}

void Block::deliver(std::size_t in_port, net::Packet pkt, Picos first_bit,
                    Picos last_bit) {
  ++frames_in_;
  bytes_in_ += pkt.wire_len();
  if (traced_) {
    eng_->trace()->complete(track_, "frame", first_bit, last_bit - first_bit);
  }
  const sim::Engine::CategoryScope cat(*eng_, sim::EventCategory::kDut);
  on_frame(in_port, std::move(pkt), first_bit, last_bit);
}

}  // namespace osnt::graph
