#include "osnt/hw/fifo.hpp"

#include <algorithm>

namespace osnt::hw {

bool PacketFifo::push(net::Packet pkt) {
  const std::size_t w = pkt.wire_len();
  const bool over_bytes = cfg_.max_bytes != 0 && bytes_ + w > cfg_.max_bytes;
  const bool over_pkts = cfg_.max_packets != 0 && q_.size() >= cfg_.max_packets;
  if (over_bytes || over_pkts) {
    ++drops_;
    dropped_bytes_ += w;
    return false;
  }
  bytes_ += w;
  peak_bytes_ = std::max(peak_bytes_, bytes_);
  q_.push_back(std::move(pkt));
  return true;
}

std::optional<net::Packet> PacketFifo::pop() {
  if (q_.empty()) return std::nullopt;
  net::Packet pkt = std::move(q_.front());
  q_.pop_front();
  bytes_ -= pkt.wire_len();
  return pkt;
}

void PacketFifo::clear() {
  q_.clear();
  bytes_ = 0;
}

}  // namespace osnt::hw
