#include "osnt/hw/mac10g.hpp"

#include <algorithm>

namespace osnt::hw {

Picos TxMac::frame_air_time(const net::Packet& pkt) const noexcept {
  return net::serialization_time(pkt.line_len(), cfg_.gbps);
}

std::optional<Picos> TxMac::transmit(net::Packet pkt) {
  const Picos now = eng_->now();
  const Picos start = std::max(now, next_free_);
  if (cfg_.queue_limit_bytes != 0) {
    // Approximate FIFO occupancy by the backlog the serializer still owes:
    // everything scheduled after `now` in byte terms.
    const Picos backlog_time = next_free_ - now;
    const double bytes_backlog =
        backlog_time > 0
            ? static_cast<double>(backlog_time) * cfg_.gbps / (8.0 * 1000.0)
            : 0.0;
    if (bytes_backlog + static_cast<double>(pkt.wire_len()) >
        static_cast<double>(cfg_.queue_limit_bytes)) {
      ++drops_;
      return std::nullopt;
    }
  }
  const Picos air = frame_air_time(pkt);
  const Picos end = start + air;
  next_free_ = end;
  busy_ += air;
  ++frames_;
  bytes_ += pkt.wire_len();
  if (link_) link_->carry(std::move(pkt), start, end);
  return start;
}

void RxMac::on_frame(net::Packet pkt, Picos first_bit, Picos last_bit) {
  if (pkt.fcs_bad) {
    ++crc_errors_;
    return;
  }
  const std::size_t wire = pkt.wire_len();
  if (wire < cfg_.min_frame) {
    ++runts_;
    return;
  }
  if (wire > cfg_.max_frame && !cfg_.accept_oversize) {
    ++giants_;
    return;
  }
  ++frames_;
  bytes_ += wire;
  pkt.rx_truth = last_bit;
  if (handler_) handler_(std::move(pkt), first_bit, last_bit);
}

}  // namespace osnt::hw
