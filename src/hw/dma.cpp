#include "osnt/hw/dma.hpp"

#include <algorithm>
#include <memory>

#include "osnt/net/packet.hpp"

namespace osnt::hw {

bool DmaEngine::enqueue(DmaRecord rec) {
  if (in_ring_ >= cfg_.ring_entries) {
    ++drops_;
    return false;
  }
  ++in_ring_;
  const std::size_t bus_bytes =
      rec.payload.size() + cfg_.per_record_overhead_bytes;
  const Picos now = eng_->now();
  const Picos start = std::max(now, bus_free_);
  const Picos xfer =
      net::serialization_time(bus_bytes, cfg_.gbps);
  bus_free_ = start + xfer;
  eng_->schedule_at(bus_free_, [this, rec = std::move(rec)]() mutable {
    --in_ring_;
    ++delivered_;
    bytes_delivered_ += rec.payload.size();
    if (handler_) handler_(std::move(rec));
  });
  return true;
}

}  // namespace osnt::hw
