#include "osnt/hw/dma.hpp"

#include <algorithm>
#include <memory>

#include "osnt/net/packet.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt::hw {

DmaEngine::~DmaEngine() {
  if (!telemetry::enabled() || (delivered_ == 0 && drops_ == 0 && stalls_ == 0))
    return;
  auto& reg = telemetry::registry();
  reg.counter("hw.dma.records_delivered").add(delivered_);
  reg.counter("hw.dma.bytes_delivered").add(bytes_delivered_);
  reg.counter("hw.dma.drops_ring_full").add(drops_);
  reg.gauge("hw.dma.ring_high_water")
      .update_max(static_cast<std::int64_t>(ring_hw_));
  reg.counter("hw.dma.stalls_injected").add(stalls_);
}

void DmaEngine::inject_stall(Picos duration) {
  if (duration <= 0) return;
  bus_free_ = std::max(bus_free_, eng_->now()) + duration;
  ++stalls_;
}

bool DmaEngine::enqueue(DmaRecord rec) {
  if (in_ring_ >= cfg_.ring_entries) {
    ++drops_;
    return false;
  }
  ++in_ring_;
  ring_hw_ = in_ring_ > ring_hw_ ? in_ring_ : ring_hw_;
  const std::size_t bus_bytes =
      rec.payload.size() + cfg_.per_record_overhead_bytes;
  const Picos now = eng_->now();
  const Picos start = std::max(now, bus_free_);
  const Picos xfer =
      net::serialization_time(bus_bytes, cfg_.gbps);
  bus_free_ = start + xfer;
  const sim::Engine::CategoryScope cat(*eng_, sim::EventCategory::kHw);
  eng_->schedule_at(bus_free_, [this, rec = std::move(rec)]() mutable {
    --in_ring_;
    ++delivered_;
    bytes_delivered_ += rec.payload.size();
    if (handler_) handler_(std::move(rec));
  });
  return true;
}

}  // namespace osnt::hw
