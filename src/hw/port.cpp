#include "osnt/hw/port.hpp"

namespace osnt::hw {

void connect(EthPort& a, EthPort& b) {
  a.out_link().connect(b.rx());
  b.out_link().connect(a.rx());
}

}  // namespace osnt::hw
