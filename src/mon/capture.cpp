#include "osnt/mon/capture.hpp"

#include <algorithm>
#include <unordered_map>

#include "osnt/net/pcap.hpp"
#include "osnt/net/pcapng.hpp"
#include "osnt/tstamp/embed.hpp"

namespace osnt::mon {

CaptureRecord CaptureRecord::from_dma(hw::DmaRecord rec) {
  CaptureRecord c;
  c.data = std::move(rec.payload);
  c.ts = tstamp::Timestamp::from_raw(rec.meta_a);
  c.orig_len = static_cast<std::uint32_t>(rec.meta_b);
  c.hash = static_cast<std::uint32_t>(rec.meta_b >> 32);
  c.port = static_cast<std::uint8_t>(rec.meta_c);
  return c;
}

hw::DmaRecord CaptureRecord::to_dma() && {
  hw::DmaRecord rec;
  rec.payload = std::move(data);
  rec.meta_a = ts.raw;
  rec.meta_b = (std::uint64_t{hash} << 32) | orig_len;
  rec.meta_c = port;
  return rec;
}

HostCapture::HostCapture(hw::DmaEngine& dma) {
  dma.set_handler([this](hw::DmaRecord rec) {
    records_.push_back(CaptureRecord::from_dma(std::move(rec)));
    if (on_record_) on_record_(records_.back());
  });
}

void HostCapture::write_pcap(const std::string& path) const {
  net::PcapWriter writer{path, /*nanosecond=*/true};
  for (const auto& rec : records_) {
    writer.write(static_cast<std::uint64_t>(rec.ts.to_nanos()),
                 ByteSpan{rec.data.data(), rec.data.size()}, rec.orig_len);
  }
}

void HostCapture::write_pcapng(const std::string& path,
                               std::size_t num_ports) const {
  std::vector<std::string> names;
  names.reserve(num_ports);
  for (std::size_t i = 0; i < num_ports; ++i)
    names.push_back("osnt-port" + std::to_string(i));
  net::PcapngWriter writer{path, std::move(names)};
  for (const auto& rec : records_) {
    const std::uint32_t iface =
        rec.port < num_ports ? rec.port : static_cast<std::uint32_t>(0);
    writer.write(iface, static_cast<std::uint64_t>(rec.ts.to_nanos()),
                 ByteSpan{rec.data.data(), rec.data.size()}, rec.orig_len);
  }
}

SampleSet HostCapture::latency_ns(std::size_t embed_offset, int port) const {
  SampleSet out;
  for (const auto& rec : records_) {
    if (port >= 0 && rec.port != port) continue;
    const auto stamp = tstamp::extract_timestamp(
        ByteSpan{rec.data.data(), rec.data.size()}, embed_offset);
    if (!stamp) continue;
    out.add(tstamp::delta_nanos(rec.ts, stamp->ts));
  }
  return out;
}

HostCapture::DupReport HostCapture::duplicate_report() const {
  DupReport rep;
  // Key = (hash, orig_len) to keep accidental CRC collisions on different
  // sizes apart; value = bitset of ports (≤ 64 ports).
  std::unordered_map<std::uint64_t, std::uint64_t> seen;
  for (const auto& rec : records_) {
    const std::uint64_t key =
        (std::uint64_t{rec.hash} << 32) | rec.orig_len;
    auto [it, inserted] = seen.try_emplace(key, 0);
    if (!inserted) ++rep.duplicates;
    it->second |= 1ull << (rec.port % 64);
  }
  rep.unique = seen.size();
  for (const auto& [key, ports] : seen) {
    if ((ports & (ports - 1)) != 0) ++rep.multi_port;
  }
  return rep;
}

HostCapture::SeqReport HostCapture::sequence_report(std::size_t embed_offset,
                                                    int port) const {
  SeqReport rep;
  std::vector<std::uint32_t> seqs;
  for (const auto& rec : records_) {
    if (port >= 0 && rec.port != port) continue;
    const auto stamp = tstamp::extract_timestamp(
        ByteSpan{rec.data.data(), rec.data.size()}, embed_offset);
    if (!stamp) continue;
    seqs.push_back(stamp->seq);
  }
  rep.received = seqs.size();
  if (seqs.empty()) return rep;
  rep.max_seq = *std::max_element(seqs.begin(), seqs.end());
  std::uint32_t prev = 0;
  bool first = true;
  for (const auto s : seqs) {
    if (!first && s < prev) ++rep.reordered;
    prev = std::max(prev, s);
    first = false;
  }
  // Lost = sequence range observed minus records received (assumes the
  // stream started at seq of the first captured frame).
  const std::uint32_t min_seq = *std::min_element(seqs.begin(), seqs.end());
  const std::uint64_t span = std::uint64_t{rep.max_seq} - min_seq + 1;
  rep.lost = span > rep.received ? span - rep.received : 0;
  return rep;
}

}  // namespace osnt::mon
