#include "osnt/mon/latency_probe.hpp"

#include "osnt/telemetry/registry.hpp"

namespace osnt::mon {

void LatencyProbe::observe_batch(const std::uint64_t* latency_ns,
                                 std::size_t n, std::uint8_t tclass) noexcept {
  const std::uint64_t tag = tclass & kClassMask;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v =
        latency_ns[i] > kMaxNs ? kMaxNs : latency_ns[i];
    batch_[pending_++] = (v << 2) | tag;
    if (pending_ == kBatch) drain();
  }
}

void LatencyProbe::drain() const noexcept {
  for (std::size_t i = 0; i < pending_; ++i) {
    const std::uint64_t packed = batch_[i];
    hist_[packed & kClassMask].record(packed >> 2);
  }
  pending_ = 0;
}

telemetry::Log2Histogram LatencyProbe::merged() const noexcept {
  drain();
  telemetry::Log2Histogram out = hist_[0];
  for (std::size_t k = 1; k < kClasses; ++k) out.merge(hist_[k]);
  return out;
}

std::uint64_t LatencyProbe::samples() const noexcept {
  drain();
  std::uint64_t n = 0;
  for (const auto& h : hist_) n += h.count();
  return n;
}

void LatencyProbe::flush(const std::string& prefix) const {
  drain();
  std::uint64_t total = 0;
  for (const auto& h : hist_) total += h.count();
  if (total == 0) return;
  auto& reg = telemetry::registry();
  reg.histogram(prefix + "rtt.ns").merge(merged());
  for (std::size_t k = 0; k < kClasses; ++k) {
    if (hist_[k].count() == 0) continue;
    reg.histogram(prefix + "rtt.class" + std::to_string(k) + ".ns")
        .merge(hist_[k]);
  }
  reg.counter(prefix + "rtt.samples").add(total);
}

void LatencyProbe::reset() noexcept {
  pending_ = 0;
  for (auto& h : hist_) h.reset();
}

BiasReport compare_bias(const LatencyProbe& probe, const SampleSet& host) {
  BiasReport rep;
  const telemetry::Log2Histogram inplane = probe.merged();
  rep.inplane_samples = inplane.count();
  rep.host_samples = host.count();
  rep.coverage = rep.inplane_samples == 0
                     ? 1.0
                     : static_cast<double>(rep.host_samples) /
                           static_cast<double>(rep.inplane_samples);
  rep.inplane_p50 = inplane.quantile(0.5);
  rep.inplane_p99 = inplane.quantile(0.99);
  rep.host_p50 = host.quantile(0.5);
  rep.host_p99 = host.quantile(0.99);
  return rep;
}

}  // namespace osnt::mon
