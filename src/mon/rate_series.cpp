#include "osnt/mon/rate_series.hpp"

#include <algorithm>
#include <stdexcept>

namespace osnt::mon {

RateSeries::RateSeries(Picos bucket_width) : width_(bucket_width) {
  if (bucket_width <= 0)
    throw std::invalid_argument("RateSeries: bucket width must be positive");
}

void RateSeries::record(Picos now, std::size_t line_bytes) {
  if (now < 0) return;
  const auto idx = static_cast<std::size_t>(now / width_);
  if (idx >= buckets_.size()) {
    const std::size_t old = buckets_.size();
    buckets_.resize(idx + 1);
    for (std::size_t i = old; i < buckets_.size(); ++i)
      buckets_[i].start = static_cast<Picos>(i) * width_;
  }
  ++buckets_[idx].frames;
  buckets_[idx].line_bytes += line_bytes;
}

double RateSeries::peak_gbps() const noexcept {
  double peak = 0.0;
  for (const auto& b : buckets_) peak = std::max(peak, b.gbps(width_));
  return peak;
}

int RateSeries::first_dip_below(double threshold_gbps) const noexcept {
  bool seen_above = false;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double g = buckets_[i].gbps(width_);
    if (g >= threshold_gbps) {
      seen_above = true;
    } else if (seen_above) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace osnt::mon
