#include "osnt/mon/cutter.hpp"

#include <algorithm>

#include "osnt/common/crc.hpp"

namespace osnt::mon {

CutResult PacketCutter::process(ByteSpan frame) const {
  CutResult r;
  r.orig_len = static_cast<std::uint32_t>(frame.size());
  if (cfg_.hash_full_frame) r.hash = crc32(frame);
  const std::size_t keep =
      cfg_.snap_len == 0 ? frame.size() : std::min(cfg_.snap_len, frame.size());
  r.data.assign(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(keep));
  return r;
}

}  // namespace osnt::mon
