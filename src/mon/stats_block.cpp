#include "osnt/mon/stats_block.hpp"

#include "osnt/net/packet.hpp"

namespace osnt::mon {

void StatsBlock::record(const net::ParsedPacket& parsed, std::size_t wire_len,
                        Picos now) noexcept {
  ++frames_;
  bytes_ += wire_len + net::kEthPerFrameOverhead;
  if (first_ < 0) first_ = now;
  last_ = now;

  if (wire_len <= 64) ++bins_.p64;
  else if (wire_len <= 127) ++bins_.p65_127;
  else if (wire_len <= 255) ++bins_.p128_255;
  else if (wire_len <= 511) ++bins_.p256_511;
  else if (wire_len <= 1023) ++bins_.p512_1023;
  else if (wire_len <= 1518) ++bins_.p1024_1518;
  else ++bins_.oversize;

  switch (parsed.l3) {
    case net::L3Kind::kIpv4: ++proto_.ipv4; break;
    case net::L3Kind::kIpv6: ++proto_.ipv6; break;
    case net::L3Kind::kArp: ++proto_.arp; break;
    case net::L3Kind::kNone: ++proto_.other_l3; break;
  }
  switch (parsed.l4) {
    case net::L4Kind::kTcp: ++proto_.tcp; break;
    case net::L4Kind::kUdp: ++proto_.udp; break;
    case net::L4Kind::kIcmp: ++proto_.icmp; break;
    case net::L4Kind::kNone: break;
  }
}

double StatsBlock::mean_gbps() const noexcept {
  if (frames_ < 2 || last_ <= first_) return 0.0;
  const double span = static_cast<double>(last_ - first_) *
                      static_cast<double>(frames_) /
                      static_cast<double>(frames_ - 1);
  return static_cast<double>(bytes_) * 8.0 * 1000.0 / span;
}

double StatsBlock::mean_pps() const noexcept {
  if (frames_ < 2 || last_ <= first_) return 0.0;
  return static_cast<double>(frames_ - 1) /
         to_seconds(last_ - first_);
}

}  // namespace osnt::mon
