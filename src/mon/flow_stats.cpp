#include "osnt/mon/flow_stats.hpp"

#include <algorithm>

namespace osnt::mon {

void FlowStatsCollector::add(const CaptureRecord& rec) {
  const auto key =
      net::extract_flow(ByteSpan{rec.data.data(), rec.data.size()});
  if (!key) {
    ++unclassified_;
    return;
  }
  auto [it, inserted] = flows_.try_emplace(*key);
  FlowRecord& f = it->second;
  if (inserted) {
    f.key = *key;
    f.first_seen = rec.ts;
  }
  ++f.packets;
  f.bytes += rec.orig_len;
  f.last_seen = rec.ts;
}

void FlowStatsCollector::add_all(const HostCapture& capture) {
  for (const auto& rec : capture.records()) add(rec);
}

const FlowRecord* FlowStatsCollector::find(const net::FiveTuple& key) const {
  const auto it = flows_.find(key);
  return it == flows_.end() ? nullptr : &it->second;
}

std::vector<FlowRecord> FlowStatsCollector::top_by_bytes(std::size_t n) const {
  std::vector<FlowRecord> out;
  out.reserve(flows_.size());
  for (const auto& [key, rec] : flows_) out.push_back(rec);
  std::sort(out.begin(), out.end(), [](const FlowRecord& a, const FlowRecord& b) {
    return a.bytes != b.bytes ? a.bytes > b.bytes : a.key < b.key;
  });
  if (n != 0 && out.size() > n) out.resize(n);
  return out;
}

void FlowStatsCollector::clear() {
  flows_.clear();
  unclassified_ = 0;
}

}  // namespace osnt::mon
