#include "osnt/mon/flow_stats.hpp"

#include <algorithm>

#include "osnt/net/parser.hpp"

namespace osnt::mon {

void FlowStatsCollector::add(const CaptureRecord& rec) {
  const ByteSpan bytes{rec.data.data(), rec.data.size()};
  const auto key = net::extract_flow(bytes);
  if (!key) {
    ++unclassified_;
    return;
  }
  auto [it, inserted] = flows_.try_emplace(*key);
  FlowRecord& f = it->second;
  if (inserted) {
    f.key = *key;
    f.first_seen = rec.ts;
  }
  ++f.packets;
  f.bytes += rec.orig_len;
  f.last_seen = rec.ts;

  if (key->protocol == net::ipproto::kTcp) {
    const auto parsed = net::parse_packet(bytes);
    if (parsed && parsed->l4 == net::L4Kind::kTcp) {
      const std::uint32_t seq = parsed->tcp.seq;
      if (f.tcp_segments == 0) {
        f.highest_seq = seq;
      } else if (static_cast<std::int32_t>(seq - f.highest_seq) > 0) {
        f.highest_seq = seq;
      } else if (static_cast<std::int32_t>(seq - f.highest_seq) < 0) {
        ++f.seq_regressions;
      }
      ++f.tcp_segments;
    }
  }
}

void FlowStatsCollector::add_all(const HostCapture& capture) {
  for (const auto& rec : capture.records()) add(rec);
}

const FlowRecord* FlowStatsCollector::find(const net::FiveTuple& key) const {
  const auto it = flows_.find(key);
  return it == flows_.end() ? nullptr : &it->second;
}

std::vector<FlowRecord> FlowStatsCollector::top_by_bytes(std::size_t n) const {
  std::vector<FlowRecord> out;
  out.reserve(flows_.size());
  for (const auto& [key, rec] : flows_) out.push_back(rec);
  std::sort(out.begin(), out.end(), [](const FlowRecord& a, const FlowRecord& b) {
    return a.bytes != b.bytes ? a.bytes > b.bytes : a.key < b.key;
  });
  if (n != 0 && out.size() > n) out.resize(n);
  return out;
}

void FlowStatsCollector::clear() {
  flows_.clear();
  unclassified_ = 0;
}

}  // namespace osnt::mon
