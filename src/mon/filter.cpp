#include "osnt/mon/filter.hpp"

namespace osnt::mon {

bool FilterRule::matches(const net::ParsedPacket& p) const noexcept {
  if (ethertype && p.effective_ethertype() != *ethertype) return false;
  if (vlan_id && (!p.vlan || p.vlan->vid != *vlan_id)) return false;

  const bool needs_ip = src_ip_mask != 0 || dst_ip_mask != 0 ||
                        protocol.has_value() || src_port.has_value() ||
                        dst_port.has_value();
  if (!needs_ip) return true;
  if (p.l3 != net::L3Kind::kIpv4) return false;

  if ((p.ipv4.src.v & src_ip_mask) != (src_ip & src_ip_mask)) return false;
  if ((p.ipv4.dst.v & dst_ip_mask) != (dst_ip & dst_ip_mask)) return false;
  if (protocol && p.ipv4.protocol != *protocol) return false;

  if (src_port || dst_port) {
    std::uint16_t sp = 0, dp = 0;
    switch (p.l4) {
      case net::L4Kind::kTcp:
        sp = p.tcp.src_port;
        dp = p.tcp.dst_port;
        break;
      case net::L4Kind::kUdp:
        sp = p.udp.src_port;
        dp = p.udp.dst_port;
        break;
      default:
        return false;  // port match requested on a port-less packet
    }
    if (src_port && sp != *src_port) return false;
    if (dst_port && dp != *dst_port) return false;
  }
  return true;
}

bool FilterTable::add(FilterRule rule) {
  if (rules_.size() >= kMaxRules) return false;
  rules_.push_back(rule);
  hits_.push_back(0);
  return true;
}

void FilterTable::clear() {
  rules_.clear();
  hits_.clear();
  misses_ = 0;
}

FilterTable::Verdict FilterTable::classify(const net::ParsedPacket& p) noexcept {
  if (rules_.empty()) return {true, std::nullopt};
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].matches(p)) {
      ++hits_[i];
      return {rules_[i].action == FilterAction::kCapture, i};
    }
  }
  ++misses_;
  return {false, std::nullopt};
}

std::uint64_t FilterTable::hits(std::size_t rule_idx) const {
  return hits_.at(rule_idx);
}

}  // namespace osnt::mon
