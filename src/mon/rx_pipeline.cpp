#include "osnt/mon/rx_pipeline.hpp"

#include "osnt/mon/capture.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt::mon {

RxPipeline::~RxPipeline() {
  if (!telemetry::enabled() || seen_ == 0) return;
  auto& reg = telemetry::registry();
  reg.counter("mon.rx.frames_seen").add(seen_);
  reg.counter("mon.rx.captured").add(captured_);
  reg.counter("mon.rx.filter_drops").add(filtered_);
  reg.counter("mon.rx.dma_drops").add(dma_drops_);
  reg.counter("mon.rx.probe_hits").add(probe_seen_);
  reg.histogram("mon.rx.latency_ns").merge(latency_ns_);
  rtt_probe_.flush("mon.rx.");
}

void RxPipeline::arm_trigger(FilterRule rule, std::uint64_t window) {
  trigger_rule_ = rule;
  trigger_remaining_ = window;
  trigger_state_ = TriggerState::kArmed;
}

RxPipeline::RxPipeline(sim::Engine& eng, hw::RxMac& mac,
                       tstamp::DisciplinedClock& clock, hw::DmaEngine& dma,
                       Config cfg)
    : eng_(&eng), clock_(&clock), dma_(&dma), cfg_(cfg), cutter_(cfg.cutter) {
  mac.set_handler([this](net::Packet pkt, Picos first_bit, Picos last_bit) {
    on_frame(std::move(pkt), first_bit, last_bit);
  });
}

void RxPipeline::on_frame(net::Packet pkt, Picos first_bit, Picos last_bit) {
  ++seen_;
  // Timestamp on MAC receipt (first bit) — before any queueing, which is
  // what keeps timestamp noise out of OSNT measurements.
  const tstamp::Timestamp ts = clock_->now(first_bit);

  // Ground-truth one-way latency in sim time (frames whose tx_truth was
  // never stamped by a generator carry the 0 default and are skipped).
  if (pkt.tx_truth > 0 && first_bit >= pkt.tx_truth) {
    latency_ns_.record(
        static_cast<std::uint64_t>((first_bit - pkt.tx_truth) / kPicosPerNano));
  }
  if (auto* tr = eng_->trace()) {
    if (!trace_track_set_) {
      trace_track_ = tr->track("mon.rx");
      trace_track_set_ = true;
    }
    tr->complete(trace_track_, "frame", first_bit,
                 last_bit > first_bit ? last_bit - first_bit : 0);
  }

  auto parsed = net::parse_packet(pkt.bytes());
  if (!parsed) return;  // runt below L2 header; MAC counters caught it
  stats_.record(*parsed, pkt.wire_len(), eng_->now());
  if (probe_ && probe_->matches(*parsed)) ++probe_seen_;
  if (tap_) tap_(*parsed, pkt, first_bit);

  // In-plane RTT probe: the same embedded-stamp-vs-RX-stamp delta that
  // HostCapture::latency_ns computes for DMA survivors, taken here for
  // *every* frame — ahead of the trigger/filter/DMA stages, so capture
  // loss cannot bias the distribution. Unstamped frames decode to deltas
  // outside the plausibility window and are skipped.
  if (cfg_.rtt_probe) {
    if (const auto st =
            tstamp::extract_timestamp(pkt.bytes(), cfg_.probe_embed_offset)) {
      const double d = tstamp::delta_nanos(ts, st->ts);
      if (d >= 0.0 && d < cfg_.probe_window_ns) {
        const std::uint8_t cls =
            parsed->l3 == net::L3Kind::kIpv4 ? parsed->ipv4.dscp : 0;
        rtt_probe_.observe(static_cast<std::uint64_t>(d), cls);
      }
    }
  }

  if (!cfg_.capture_enabled) return;

  // Trigger gate (before the capture filter): swallow everything until
  // the trigger matches, then pass a bounded window through.
  if (trigger_state_ == TriggerState::kArmed) {
    if (!trigger_rule_.matches(*parsed)) return;
    trigger_state_ = TriggerState::kFired;
  }
  if (trigger_state_ == TriggerState::kFired) {
    if (trigger_remaining_ == 0) {
      trigger_state_ = TriggerState::kDone;
      return;
    }
    --trigger_remaining_;
  } else if (trigger_state_ == TriggerState::kDone) {
    return;
  }

  const auto verdict = filters_.classify(*parsed);
  if (!verdict.capture) {
    ++filtered_;
    return;
  }

  CutResult cut = cutter_.process(pkt.bytes());
  CaptureRecord rec;
  rec.data = std::move(cut.data);
  rec.ts = ts;
  rec.orig_len = cut.orig_len;
  rec.hash = cut.hash;
  rec.port = cfg_.port_id;
  if (dma_->enqueue(std::move(rec).to_dma())) {
    ++captured_;
  } else {
    ++dma_drops_;
  }
}

}  // namespace osnt::mon
