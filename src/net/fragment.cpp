#include "osnt/net/fragment.hpp"

#include <algorithm>
#include <stdexcept>

#include "osnt/net/checksum.hpp"

namespace osnt::net {

std::vector<Packet> fragment_ipv4(const Packet& packet, std::size_t mtu) {
  const auto parsed = parse_packet(packet.bytes());
  if (!parsed || parsed->l3 != L3Kind::kIpv4)
    throw std::invalid_argument("fragment_ipv4: not an IPv4 frame");

  const std::size_t l3_off = parsed->l3_offset;
  const std::size_t hdr_len = parsed->ipv4.header_len();
  const std::size_t datagram_len = parsed->ipv4.total_length;
  if (datagram_len <= mtu) return {packet};
  if (parsed->ipv4.dont_fragment)
    throw std::invalid_argument("fragment_ipv4: DF set and datagram > MTU");
  if (mtu < hdr_len + 8)
    throw std::invalid_argument("fragment_ipv4: MTU below header + 8");

  // Payload bytes per fragment: multiple of 8 (offset units).
  const std::size_t per_frag = ((mtu - hdr_len) / 8) * 8;
  const std::size_t payload_len = datagram_len - hdr_len;
  const std::uint8_t* payload = packet.data.data() + l3_off + hdr_len;

  std::vector<Packet> out;
  for (std::size_t off = 0; off < payload_len; off += per_frag) {
    const std::size_t take = std::min(per_frag, payload_len - off);
    Packet frag;
    // Ethernet header (+ any VLAN tag) verbatim.
    frag.data.assign(packet.data.begin(),
                     packet.data.begin() + static_cast<std::ptrdiff_t>(l3_off));
    // IP header with adjusted length/flags/offset/checksum.
    Ipv4Header h = parsed->ipv4;
    h.total_length = static_cast<std::uint16_t>(hdr_len + take);
    h.fragment_offset =
        static_cast<std::uint16_t>((parsed->ipv4.fragment_offset * 8 + off) / 8);
    h.more_fragments =
        (off + take < payload_len) || parsed->ipv4.more_fragments;
    h.finalize_checksum();
    const std::size_t hdr_at = frag.data.size();
    frag.data.resize(hdr_at + hdr_len);
    h.write(MutByteSpan{frag.data.data() + hdr_at, hdr_len});
    frag.data.insert(frag.data.end(), payload + off, payload + off + take);
    // Respect the Ethernet minimum.
    if (frag.wire_len() < kEthMinFrame)
      frag.data.resize(kEthMinFrame - kEthFcsLen, 0);
    frag.id = packet.id;
    out.push_back(std::move(frag));
  }
  return out;
}

std::optional<Packet> Ipv4Reassembler::add(const Packet& frame, Picos now) {
  const auto parsed = parse_packet(frame.bytes());
  if (!parsed || parsed->l3 != L3Kind::kIpv4) return std::nullopt;
  const Ipv4Header& ip = parsed->ipv4;
  if (ip.fragment_offset == 0 && !ip.more_fragments) return frame;  // whole

  const Key key{ip.src.v, ip.dst.v, ip.identification, ip.protocol};
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    if (pending_.size() >= cfg_.max_pending) {
      ++dropped_overflow_;
      return std::nullopt;
    }
    it = pending_.emplace(key, Partial{}).first;
    it->second.first_seen = now;
  }
  Partial& p = it->second;

  const std::size_t hdr_len = ip.header_len();
  const std::size_t chunk_len = ip.total_length - hdr_len;
  const std::uint16_t off_bytes = ip.fragment_offset * 8;
  Bytes chunk(frame.data.begin() +
                  static_cast<std::ptrdiff_t>(parsed->l3_offset + hdr_len),
              frame.data.begin() +
                  static_cast<std::ptrdiff_t>(parsed->l3_offset + hdr_len +
                                              chunk_len));
  p.chunks[off_bytes] = std::move(chunk);
  if (!ip.more_fragments)
    p.total_payload = off_bytes + chunk_len;
  if (off_bytes == 0) {
    p.first_frame_headers.assign(
        frame.data.begin(),
        frame.data.begin() +
            static_cast<std::ptrdiff_t>(parsed->l3_offset + hdr_len));
  }

  // Complete? All bytes up to total_payload covered contiguously.
  if (!p.total_payload || p.first_frame_headers.empty()) return std::nullopt;
  std::size_t covered = 0;
  for (const auto& [off, data] : p.chunks) {
    if (off > covered) return std::nullopt;  // hole
    covered = std::max(covered, off + data.size());
  }
  if (covered < *p.total_payload) return std::nullopt;

  // Rebuild the datagram behind the offset-0 fragment's headers.
  Packet whole;
  whole.data = p.first_frame_headers;
  const std::size_t l3_off = whole.data.size() - hdr_len;
  for (const auto& [off, data] : p.chunks) {
    const std::size_t want = l3_off + hdr_len + off;
    if (whole.data.size() < want + data.size())
      whole.data.resize(want + data.size());
    std::copy(data.begin(), data.end(),
              whole.data.begin() + static_cast<std::ptrdiff_t>(want));
  }
  // Patch the IP header: full length, no fragmentation.
  Ipv4Header h = ip;
  h.total_length = static_cast<std::uint16_t>(hdr_len + *p.total_payload);
  h.fragment_offset = 0;
  h.more_fragments = false;
  h.finalize_checksum();
  h.write(MutByteSpan{whole.data.data() + l3_off, hdr_len});
  if (whole.wire_len() < kEthMinFrame)
    whole.data.resize(kEthMinFrame - kEthFcsLen, 0);

  pending_.erase(it);
  ++completed_;
  return whole;
}

std::size_t Ipv4Reassembler::expire(Picos now) {
  std::size_t n = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->second.first_seen >= cfg_.timeout) {
      it = pending_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  return n;
}

}  // namespace osnt::net
