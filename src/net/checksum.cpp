#include "osnt/net/checksum.hpp"

namespace osnt::net {

void InternetChecksum::add(ByteSpan data) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    sum_ += (std::uint16_t{data[i]} << 8) | data[i + 1];
  if (i < data.size()) sum_ += std::uint16_t{data[i]} << 8;  // odd trailing byte
}

std::uint16_t InternetChecksum::fold() const noexcept {
  std::uint64_t s = sum_;
  while (s >> 16) s = (s & 0xFFFF) + (s >> 16);
  return static_cast<std::uint16_t>(~s & 0xFFFF);
}

std::uint16_t internet_checksum(ByteSpan data) noexcept {
  InternetChecksum c;
  c.add(data);
  return c.fold();
}

std::uint16_t l4_checksum_v4(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
                             ByteSpan l4) noexcept {
  InternetChecksum c;
  c.add_u32(src.v);
  c.add_u32(dst.v);
  c.add_u16(protocol);
  c.add_u16(static_cast<std::uint16_t>(l4.size()));
  c.add(l4);
  return c.fold();
}

std::uint16_t l4_checksum_v6(const Ipv6Addr& src, const Ipv6Addr& dst,
                             std::uint8_t next_header, ByteSpan l4) noexcept {
  InternetChecksum c;
  c.add(ByteSpan{src.b.data(), src.b.size()});
  c.add(ByteSpan{dst.b.data(), dst.b.size()});
  c.add_u32(static_cast<std::uint32_t>(l4.size()));
  c.add_u16(next_header);
  c.add(l4);
  return c.fold();
}

}  // namespace osnt::net
