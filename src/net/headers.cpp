#include "osnt/net/headers.hpp"

#include <cstdio>

#include "osnt/net/checksum.hpp"

namespace osnt::net {

// ---------------------------------------------------------------- MacAddr

std::optional<MacAddr> MacAddr::parse(const std::string& s) {
  MacAddr m;
  unsigned v[6];
  char tail;
  const int n = std::sscanf(s.c_str(), "%x:%x:%x:%x:%x:%x%c", &v[0], &v[1],
                            &v[2], &v[3], &v[4], &v[5], &tail);
  if (n != 6) return std::nullopt;
  for (int i = 0; i < 6; ++i) {
    if (v[i] > 0xFF) return std::nullopt;
    m.b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v[i]);
  }
  return m;
}

MacAddr MacAddr::from_index(std::uint64_t idx) noexcept {
  // 0x02 sets the locally-administered bit and clears multicast.
  MacAddr m;
  m.b[0] = 0x02;
  m.b[1] = static_cast<std::uint8_t>(idx >> 32);
  m.b[2] = static_cast<std::uint8_t>(idx >> 24);
  m.b[3] = static_cast<std::uint8_t>(idx >> 16);
  m.b[4] = static_cast<std::uint8_t>(idx >> 8);
  m.b[5] = static_cast<std::uint8_t>(idx);
  return m;
}

bool MacAddr::is_broadcast() const noexcept {
  for (auto x : b)
    if (x != 0xFF) return false;
  return true;
}

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", b[0], b[1],
                b[2], b[3], b[4], b[5]);
  return buf;
}

std::uint64_t MacAddr::to_u64() const noexcept {
  std::uint64_t v = 0;
  for (auto x : b) v = (v << 8) | x;
  return v;
}

// --------------------------------------------------------------- Ipv4Addr

std::optional<Ipv4Addr> Ipv4Addr::parse(const std::string& s) {
  unsigned a, b, c, d;
  char tail;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4)
    return std::nullopt;
  if (a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return Ipv4Addr::of(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                      static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (v >> 24) & 0xFF,
                (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF);
  return buf;
}

// --------------------------------------------------------------- Ipv6Addr

std::string Ipv6Addr::to_string() const {
  char buf[40];
  std::snprintf(buf, sizeof buf,
                "%02x%02x:%02x%02x:%02x%02x:%02x%02x:"
                "%02x%02x:%02x%02x:%02x%02x:%02x%02x",
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9],
                b[10], b[11], b[12], b[13], b[14], b[15]);
  return buf;
}

// -------------------------------------------------------------- EthHeader

std::optional<EthHeader> EthHeader::read(ByteSpan in) noexcept {
  if (in.size() < kSize) return std::nullopt;
  EthHeader h;
  std::memcpy(h.dst.b.data(), in.data(), 6);
  std::memcpy(h.src.b.data(), in.data() + 6, 6);
  h.ethertype = load_be16(in.data() + 12);
  return h;
}

void EthHeader::write(MutByteSpan out) const noexcept {
  std::memcpy(out.data(), dst.b.data(), 6);
  std::memcpy(out.data() + 6, src.b.data(), 6);
  store_be16(out.data() + 12, ethertype);
}

// ---------------------------------------------------------------- VlanTag

std::optional<VlanTag> VlanTag::read(ByteSpan in) noexcept {
  // `in` starts at the TPID.
  if (in.size() < kSize + 2) return std::nullopt;  // TCI + inner ethertype
  if (load_be16(in.data()) != static_cast<std::uint16_t>(EtherType::kVlan))
    return std::nullopt;
  VlanTag t;
  const std::uint16_t tci = load_be16(in.data() + 2);
  t.pcp = static_cast<std::uint8_t>(tci >> 13);
  t.dei = (tci >> 12) & 1;
  t.vid = tci & 0x0FFF;
  t.inner_ethertype = load_be16(in.data() + 4);
  return t;
}

void VlanTag::write(MutByteSpan out) const noexcept {
  store_be16(out.data(), static_cast<std::uint16_t>(EtherType::kVlan));
  const std::uint16_t tci = static_cast<std::uint16_t>(
      (std::uint16_t{pcp} << 13) | (std::uint16_t{dei} << 12) | (vid & 0x0FFF));
  store_be16(out.data() + 2, tci);
  store_be16(out.data() + 4, inner_ethertype);
}

// -------------------------------------------------------------- Ipv4Header

std::optional<Ipv4Header> Ipv4Header::read(ByteSpan in) noexcept {
  if (in.size() < kMinSize) return std::nullopt;
  const std::uint8_t ver_ihl = in[0];
  if ((ver_ihl >> 4) != 4) return std::nullopt;
  Ipv4Header h;
  h.ihl = ver_ihl & 0x0F;
  if (h.ihl < 5 || in.size() < h.header_len()) return std::nullopt;
  h.dscp = in[1] >> 2;
  h.ecn = in[1] & 0x03;
  h.total_length = load_be16(in.data() + 2);
  h.identification = load_be16(in.data() + 4);
  const std::uint16_t flags_frag = load_be16(in.data() + 6);
  h.dont_fragment = (flags_frag >> 14) & 1;
  h.more_fragments = (flags_frag >> 13) & 1;
  h.fragment_offset = flags_frag & 0x1FFF;
  h.ttl = in[8];
  h.protocol = in[9];
  h.checksum = load_be16(in.data() + 10);
  h.src.v = load_be32(in.data() + 12);
  h.dst.v = load_be32(in.data() + 16);
  return h;
}

void Ipv4Header::write(MutByteSpan out) const noexcept {
  out[0] = static_cast<std::uint8_t>((4 << 4) | (ihl & 0x0F));
  out[1] = static_cast<std::uint8_t>((dscp << 2) | (ecn & 0x03));
  store_be16(out.data() + 2, total_length);
  store_be16(out.data() + 4, identification);
  const std::uint16_t flags_frag = static_cast<std::uint16_t>(
      (std::uint16_t{dont_fragment} << 14) |
      (std::uint16_t{more_fragments} << 13) | (fragment_offset & 0x1FFF));
  store_be16(out.data() + 6, flags_frag);
  out[8] = ttl;
  out[9] = protocol;
  store_be16(out.data() + 10, checksum);
  store_be32(out.data() + 12, src.v);
  store_be32(out.data() + 16, dst.v);
}

void Ipv4Header::finalize_checksum() noexcept {
  std::uint8_t raw[60];
  checksum = 0;
  write(MutByteSpan{raw, header_len()});
  checksum = internet_checksum(ByteSpan{raw, header_len()});
}

// -------------------------------------------------------------- Ipv6Header

std::optional<Ipv6Header> Ipv6Header::read(ByteSpan in) noexcept {
  if (in.size() < kSize) return std::nullopt;
  if ((in[0] >> 4) != 6) return std::nullopt;
  Ipv6Header h;
  const std::uint32_t w0 = load_be32(in.data());
  h.traffic_class = static_cast<std::uint8_t>((w0 >> 20) & 0xFF);
  h.flow_label = w0 & 0xFFFFF;
  h.payload_length = load_be16(in.data() + 4);
  h.next_header = in[6];
  h.hop_limit = in[7];
  std::memcpy(h.src.b.data(), in.data() + 8, 16);
  std::memcpy(h.dst.b.data(), in.data() + 24, 16);
  return h;
}

void Ipv6Header::write(MutByteSpan out) const noexcept {
  const std::uint32_t w0 = (std::uint32_t{6} << 28) |
                           (std::uint32_t{traffic_class} << 20) |
                           (flow_label & 0xFFFFF);
  store_be32(out.data(), w0);
  store_be16(out.data() + 4, payload_length);
  out[6] = next_header;
  out[7] = hop_limit;
  std::memcpy(out.data() + 8, src.b.data(), 16);
  std::memcpy(out.data() + 24, dst.b.data(), 16);
}

// -------------------------------------------------------------- ArpHeader

std::optional<ArpHeader> ArpHeader::read(ByteSpan in) noexcept {
  if (in.size() < kSize) return std::nullopt;
  // Require Ethernet (1) / IPv4 (0x0800) with standard lengths.
  if (load_be16(in.data()) != 1 || load_be16(in.data() + 2) != 0x0800 ||
      in[4] != 6 || in[5] != 4)
    return std::nullopt;
  ArpHeader h;
  h.opcode = load_be16(in.data() + 6);
  std::memcpy(h.sender_mac.b.data(), in.data() + 8, 6);
  h.sender_ip.v = load_be32(in.data() + 14);
  std::memcpy(h.target_mac.b.data(), in.data() + 18, 6);
  h.target_ip.v = load_be32(in.data() + 24);
  return h;
}

void ArpHeader::write(MutByteSpan out) const noexcept {
  store_be16(out.data(), 1);           // htype: Ethernet
  store_be16(out.data() + 2, 0x0800);  // ptype: IPv4
  out[4] = 6;
  out[5] = 4;
  store_be16(out.data() + 6, opcode);
  std::memcpy(out.data() + 8, sender_mac.b.data(), 6);
  store_be32(out.data() + 14, sender_ip.v);
  std::memcpy(out.data() + 18, target_mac.b.data(), 6);
  store_be32(out.data() + 24, target_ip.v);
}

// --------------------------------------------------------------- TcpHeader

std::optional<TcpHeader> TcpHeader::read(ByteSpan in) noexcept {
  if (in.size() < kMinSize) return std::nullopt;
  TcpHeader h;
  h.src_port = load_be16(in.data());
  h.dst_port = load_be16(in.data() + 2);
  h.seq = load_be32(in.data() + 4);
  h.ack = load_be32(in.data() + 8);
  h.data_offset = in[12] >> 4;
  if (h.data_offset < 5 || in.size() < h.header_len()) return std::nullopt;
  h.flags = in[13];
  h.window = load_be16(in.data() + 14);
  h.checksum = load_be16(in.data() + 16);
  h.urgent_ptr = load_be16(in.data() + 18);
  return h;
}

void TcpHeader::write(MutByteSpan out) const noexcept {
  store_be16(out.data(), src_port);
  store_be16(out.data() + 2, dst_port);
  store_be32(out.data() + 4, seq);
  store_be32(out.data() + 8, ack);
  out[12] = static_cast<std::uint8_t>(data_offset << 4);
  out[13] = flags;
  store_be16(out.data() + 14, window);
  store_be16(out.data() + 16, checksum);
  store_be16(out.data() + 18, urgent_ptr);
}

// --------------------------------------------------------------- UdpHeader

std::optional<UdpHeader> UdpHeader::read(ByteSpan in) noexcept {
  if (in.size() < kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = load_be16(in.data());
  h.dst_port = load_be16(in.data() + 2);
  h.length = load_be16(in.data() + 4);
  h.checksum = load_be16(in.data() + 6);
  return h;
}

void UdpHeader::write(MutByteSpan out) const noexcept {
  store_be16(out.data(), src_port);
  store_be16(out.data() + 2, dst_port);
  store_be16(out.data() + 4, length);
  store_be16(out.data() + 6, checksum);
}

// -------------------------------------------------------------- IcmpHeader

std::optional<IcmpHeader> IcmpHeader::read(ByteSpan in) noexcept {
  if (in.size() < kSize) return std::nullopt;
  IcmpHeader h;
  h.type = in[0];
  h.code = in[1];
  h.checksum = load_be16(in.data() + 2);
  h.identifier = load_be16(in.data() + 4);
  h.sequence = load_be16(in.data() + 6);
  return h;
}

void IcmpHeader::write(MutByteSpan out) const noexcept {
  out[0] = type;
  out[1] = code;
  store_be16(out.data() + 2, checksum);
  store_be16(out.data() + 4, identifier);
  store_be16(out.data() + 6, sequence);
}

}  // namespace osnt::net
