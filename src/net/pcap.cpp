#include "osnt/net/pcap.hpp"

#include <stdexcept>

#include "osnt/common/log.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt::net {
namespace {

constexpr std::uint32_t kMagicMicros = 0xA1B2C3D4;
constexpr std::uint32_t kMagicNanos = 0xA1B23C4D;
constexpr std::uint32_t kMagicMicrosSwapped = 0xD4C3B2A1;
constexpr std::uint32_t kMagicNanosSwapped = 0x4D3CB2A1;

std::uint32_t bswap32(std::uint32_t v) noexcept {
  return ((v & 0xFF) << 24) | ((v & 0xFF00) << 8) | ((v >> 8) & 0xFF00) |
         (v >> 24);
}

std::uint32_t read_u32(std::FILE* f, bool swapped, bool* eof = nullptr) {
  std::uint8_t b[4];
  if (std::fread(b, 1, 4, f) != 4) {
    if (eof) {
      *eof = true;
      return 0;
    }
    throw std::runtime_error("pcap: truncated file");
  }
  const std::uint32_t v = load_le32(b);
  return swapped ? bswap32(v) : v;
}

void write_u32(std::FILE* f, std::uint32_t v) {
  std::uint8_t b[4];
  store_le32(b, v);
  if (std::fwrite(b, 1, 4, f) != 4)
    throw std::runtime_error("pcap: write failed");
}

void write_u16(std::FILE* f, std::uint16_t v) {
  std::uint8_t b[2];
  store_le16(b, v);
  if (std::fwrite(b, 1, 2, f) != 2)
    throw std::runtime_error("pcap: write failed");
}

}  // namespace

PcapReader::PcapReader(const std::string& path, PcapReaderOptions options)
    : opt_(options) {
  f_ = std::fopen(path.c_str(), "rb");
  if (!f_) throw std::runtime_error("pcap: cannot open " + path);
  bool eof = false;
  const std::uint32_t magic = read_u32(f_, false, &eof);
  if (eof) {
    std::fclose(f_);
    f_ = nullptr;
    throw std::runtime_error("pcap: empty file " + path);
  }
  switch (magic) {
    case kMagicMicros: nanos_ = false; swapped_ = false; break;
    case kMagicNanos: nanos_ = true; swapped_ = false; break;
    case kMagicMicrosSwapped: nanos_ = false; swapped_ = true; break;
    case kMagicNanosSwapped: nanos_ = true; swapped_ = true; break;
    default:
      std::fclose(f_);
      f_ = nullptr;
      throw std::runtime_error("pcap: bad magic in " + path);
  }
  read_u32(f_, swapped_);  // version major/minor
  read_u32(f_, swapped_);  // thiszone
  read_u32(f_, swapped_);  // sigfigs
  snaplen_ = read_u32(f_, swapped_);
  link_type_ = read_u32(f_, swapped_);
}

PcapReader::~PcapReader() {
  if (f_) std::fclose(f_);
}

PcapReader::PcapReader(PcapReader&& other) noexcept
    : f_(other.f_), opt_(other.opt_), nanos_(other.nanos_),
      swapped_(other.swapped_), done_(other.done_),
      link_type_(other.link_type_), snaplen_(other.snaplen_),
      truncated_tail_(other.truncated_tail_) {
  other.f_ = nullptr;
}

PcapReader& PcapReader::operator=(PcapReader&& other) noexcept {
  if (this != &other) {
    if (f_) std::fclose(f_);
    f_ = other.f_;
    opt_ = other.opt_;
    nanos_ = other.nanos_;
    swapped_ = other.swapped_;
    done_ = other.done_;
    link_type_ = other.link_type_;
    snaplen_ = other.snaplen_;
    truncated_tail_ = other.truncated_tail_;
    other.f_ = nullptr;
  }
  return *this;
}

std::optional<PcapRecord> PcapReader::truncated_eof_() {
  if (opt_.strict) throw std::runtime_error("pcap: truncated record");
  // Reads are sequential, so a mid-record EOF is by definition the final
  // record — the usual fate of a capture whose writer died. Count it,
  // warn, and report clean EOF so the records before it stay usable.
  ++truncated_tail_;
  done_ = true;
  OSNT_WARN("pcap: final record truncated, dropping it (%llu so far)",
            static_cast<unsigned long long>(truncated_tail_));
  if (telemetry::enabled()) {
    telemetry::registry().counter("net.pcap.truncated_tail").inc();
  }
  return std::nullopt;
}

std::optional<PcapRecord> PcapReader::next() {
  if (!f_ || done_) return std::nullopt;
  bool eof = false;
  const std::uint32_t ts_sec = read_u32(f_, swapped_, &eof);
  if (eof) return std::nullopt;
  // Past this point an EOF is a record cut off mid-way.
  bool cut = false;
  bool* tail = opt_.strict ? nullptr : &cut;
  const std::uint32_t ts_frac = read_u32(f_, swapped_, tail);
  const std::uint32_t incl_len = read_u32(f_, swapped_, tail);
  const std::uint32_t orig_len = read_u32(f_, swapped_, tail);
  if (cut) return truncated_eof_();
  if (incl_len > 256 * 1024 * 1024)
    throw std::runtime_error("pcap: implausible record length");
  PcapRecord rec;
  rec.ts_nanos = std::uint64_t{ts_sec} * 1'000'000'000ull +
                 (nanos_ ? ts_frac : std::uint64_t{ts_frac} * 1000ull);
  rec.orig_len = orig_len;
  rec.data.resize(incl_len);
  if (incl_len &&
      std::fread(rec.data.data(), 1, incl_len, f_) != incl_len) {
    return truncated_eof_();  // throws in strict mode
  }
  return rec;
}

std::vector<PcapRecord> PcapReader::read_all(const std::string& path,
                                             PcapReaderOptions options) {
  PcapReader reader{path, options};
  std::vector<PcapRecord> out;
  while (auto rec = reader.next()) out.push_back(std::move(*rec));
  return out;
}

PcapWriter::PcapWriter(const std::string& path, bool nanosecond,
                       std::uint32_t snaplen)
    : nanos_(nanosecond) {
  f_ = std::fopen(path.c_str(), "wb");
  if (!f_) throw std::runtime_error("pcap: cannot create " + path);
  write_u32(f_, nanos_ ? kMagicNanos : kMagicMicros);
  write_u16(f_, 2);  // version major
  write_u16(f_, 4);  // version minor
  write_u32(f_, 0);  // thiszone
  write_u32(f_, 0);  // sigfigs
  write_u32(f_, snaplen);
  write_u32(f_, 1);  // LINKTYPE_ETHERNET
}

PcapWriter::~PcapWriter() {
  if (f_) std::fclose(f_);
}

void PcapWriter::write(std::uint64_t ts_nanos, ByteSpan frame,
                       std::uint32_t orig_len) {
  const std::uint32_t sec =
      static_cast<std::uint32_t>(ts_nanos / 1'000'000'000ull);
  const std::uint32_t frac = static_cast<std::uint32_t>(
      nanos_ ? ts_nanos % 1'000'000'000ull
             : (ts_nanos % 1'000'000'000ull) / 1000ull);
  write_u32(f_, sec);
  write_u32(f_, frac);
  write_u32(f_, static_cast<std::uint32_t>(frame.size()));
  write_u32(f_, orig_len ? orig_len : static_cast<std::uint32_t>(frame.size()));
  if (!frame.empty() &&
      std::fwrite(frame.data(), 1, frame.size(), f_) != frame.size())
    throw std::runtime_error("pcap: write failed");
  ++count_;
}

void PcapWriter::flush() {
  if (f_) std::fflush(f_);
}

}  // namespace osnt::net
