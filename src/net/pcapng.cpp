#include "osnt/net/pcapng.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace osnt::net {
namespace {

constexpr std::uint32_t kShbType = 0x0A0D0D0A;
constexpr std::uint32_t kIdbType = 0x00000001;
constexpr std::uint32_t kEpbType = 0x00000006;
constexpr std::uint32_t kByteOrderMagic = 0x1A2B3C4D;

std::uint32_t bswap32(std::uint32_t v) noexcept {
  return ((v & 0xFF) << 24) | ((v & 0xFF00) << 8) | ((v >> 8) & 0xFF00) |
         (v >> 24);
}
std::uint16_t bswap16(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

void push_u16(Bytes& b, std::uint16_t v) {
  const std::size_t n = b.size();
  b.resize(n + 2);
  store_le16(b.data() + n, v);
}
void push_u32(Bytes& b, std::uint32_t v) {
  const std::size_t n = b.size();
  b.resize(n + 4);
  store_le32(b.data() + n, v);
}
void pad4(Bytes& b) {
  while (b.size() % 4 != 0) b.push_back(0);
}

}  // namespace

// ------------------------------------------------------------------ writer

PcapngWriter::PcapngWriter(const std::string& path,
                           std::vector<std::string> interfaces,
                           std::uint32_t snaplen) {
  if (interfaces.empty())
    throw std::invalid_argument("pcapng: need at least one interface");
  f_ = std::fopen(path.c_str(), "wb");
  if (!f_) throw std::runtime_error("pcapng: cannot create " + path);
  n_ifaces_ = interfaces.size();

  // Section Header Block.
  Bytes shb;
  push_u32(shb, kByteOrderMagic);
  push_u16(shb, 1);  // major
  push_u16(shb, 0);  // minor
  push_u32(shb, 0xFFFFFFFF);  // section length unknown (-1)
  push_u32(shb, 0xFFFFFFFF);
  write_block(kShbType, ByteSpan{shb.data(), shb.size()});

  // One Interface Description Block per port, nanosecond resolution.
  for (const auto& name : interfaces) {
    Bytes idb;
    push_u16(idb, 1);  // LINKTYPE_ETHERNET
    push_u16(idb, 0);  // reserved
    push_u32(idb, snaplen);
    // option if_name (2)
    push_u16(idb, 2);
    push_u16(idb, static_cast<std::uint16_t>(name.size()));
    idb.insert(idb.end(), name.begin(), name.end());
    pad4(idb);
    // option if_tsresol (9) = 9 → 10^-9 s units
    push_u16(idb, 9);
    push_u16(idb, 1);
    idb.push_back(9);
    pad4(idb);
    // opt_endofopt
    push_u16(idb, 0);
    push_u16(idb, 0);
    write_block(kIdbType, ByteSpan{idb.data(), idb.size()});
  }
}

PcapngWriter::~PcapngWriter() {
  if (f_) std::fclose(f_);
}

void PcapngWriter::write_block(std::uint32_t type, ByteSpan body) {
  const std::uint32_t total =
      static_cast<std::uint32_t>(12 + ((body.size() + 3) & ~std::size_t{3}));
  std::uint8_t hdr[8];
  store_le32(hdr, type);
  store_le32(hdr + 4, total);
  if (std::fwrite(hdr, 1, 8, f_) != 8)
    throw std::runtime_error("pcapng: write failed");
  if (!body.empty() && std::fwrite(body.data(), 1, body.size(), f_) != body.size())
    throw std::runtime_error("pcapng: write failed");
  static constexpr std::uint8_t zeros[3] = {0, 0, 0};
  const std::size_t pad = (4 - body.size() % 4) % 4;
  if (pad && std::fwrite(zeros, 1, pad, f_) != pad)
    throw std::runtime_error("pcapng: write failed");
  std::uint8_t tail[4];
  store_le32(tail, total);
  if (std::fwrite(tail, 1, 4, f_) != 4)
    throw std::runtime_error("pcapng: write failed");
}

void PcapngWriter::write(std::uint32_t interface_id, std::uint64_t ts_nanos,
                         ByteSpan frame, std::uint32_t orig_len) {
  if (interface_id >= n_ifaces_)
    throw std::invalid_argument("pcapng: unknown interface id");
  Bytes epb;
  push_u32(epb, interface_id);
  push_u32(epb, static_cast<std::uint32_t>(ts_nanos >> 32));
  push_u32(epb, static_cast<std::uint32_t>(ts_nanos));
  push_u32(epb, static_cast<std::uint32_t>(frame.size()));
  push_u32(epb, orig_len ? orig_len : static_cast<std::uint32_t>(frame.size()));
  epb.insert(epb.end(), frame.begin(), frame.end());
  pad4(epb);
  write_block(kEpbType, ByteSpan{epb.data(), epb.size()});
  ++count_;
}

// ------------------------------------------------------------------ reader

PcapngReader::PcapngReader(const std::string& path) {
  f_ = std::fopen(path.c_str(), "rb");
  if (!f_) throw std::runtime_error("pcapng: cannot open " + path);
  // Peek type + length + byte-order magic to fix endianness, then rewind
  // and consume the SHB through the normal path.
  std::uint8_t head[12];
  if (std::fread(head, 1, 12, f_) != 12 || load_le32(head) != kShbType) {
    std::fclose(f_);
    f_ = nullptr;
    throw std::runtime_error("pcapng: missing section header in " + path);
  }
  const std::uint32_t magic = load_le32(head + 8);
  if (magic == kByteOrderMagic) {
    swapped_ = false;
  } else if (bswap32(magic) == kByteOrderMagic) {
    swapped_ = true;
  } else {
    std::fclose(f_);
    f_ = nullptr;
    throw std::runtime_error("pcapng: bad byte-order magic in " + path);
  }
  std::rewind(f_);
  std::uint32_t type = 0;
  if (!read_block(&type) || type != kShbType) {
    std::fclose(f_);
    f_ = nullptr;
    throw std::runtime_error("pcapng: unreadable section header in " + path);
  }
}

PcapngReader::~PcapngReader() {
  if (f_) std::fclose(f_);
}

std::optional<Bytes> PcapngReader::read_block(std::uint32_t* type) {
  std::uint8_t hdr[8];
  if (std::fread(hdr, 1, 8, f_) != 8) return std::nullopt;  // EOF
  std::uint32_t t = load_le32(hdr);
  std::uint32_t total = load_le32(hdr + 4);
  if (swapped_) {
    t = bswap32(t);  // SHB's palindromic type swaps to itself
    total = bswap32(total);
  }
  if (total < 12 || total > (1u << 28))
    throw std::runtime_error("pcapng: implausible block length");
  Bytes body(total - 12);
  if (!body.empty() && std::fread(body.data(), 1, body.size(), f_) != body.size())
    throw std::runtime_error("pcapng: truncated block");
  std::uint8_t tail[4];
  if (std::fread(tail, 1, 4, f_) != 4)
    throw std::runtime_error("pcapng: truncated block trailer");
  *type = t;
  return body;
}

std::optional<PcapngRecord> PcapngReader::next() {
  if (!f_) return std::nullopt;
  const auto u32 = [&](const std::uint8_t* p) {
    const std::uint32_t v = load_le32(p);
    return swapped_ ? bswap32(v) : v;
  };
  const auto u16 = [&](const std::uint8_t* p) {
    const std::uint16_t v = load_le16(p);
    return swapped_ ? bswap16(v) : v;
  };
  while (true) {
    std::uint32_t type = 0;
    auto block = read_block(&type);
    if (!block) return std::nullopt;
    if (type == kIdbType) {
      // Default resolution 10^-6; look for if_tsresol.
      double to_nanos = 1000.0;
      std::size_t off = 8;  // linktype+reserved+snaplen
      while (off + 4 <= block->size()) {
        const std::uint16_t code = u16(block->data() + off);
        const std::uint16_t len = u16(block->data() + off + 2);
        off += 4;
        if (code == 0) break;
        if (off + len > block->size()) break;
        if (code == 9 && len == 1) {
          const std::uint8_t r = (*block)[off];
          const double units_per_sec =
              (r & 0x80) ? std::pow(2.0, r & 0x7F) : std::pow(10.0, r);
          to_nanos = 1e9 / units_per_sec;
        }
        off += (len + 3) & ~std::size_t{3};
      }
      tsresol_.push_back(to_nanos);
      continue;
    }
    if (type != kEpbType) continue;  // SHB restart, stats, unknown: skip
    if (block->size() < 20) throw std::runtime_error("pcapng: short EPB");
    PcapngRecord rec;
    rec.interface_id = u32(block->data());
    const std::uint64_t ticks =
        (std::uint64_t{u32(block->data() + 4)} << 32) | u32(block->data() + 8);
    const double scale = rec.interface_id < tsresol_.size()
                             ? tsresol_[rec.interface_id]
                             : 1000.0;
    rec.ts_nanos = static_cast<std::uint64_t>(static_cast<double>(ticks) * scale);
    const std::uint32_t cap_len = u32(block->data() + 12);
    rec.orig_len = u32(block->data() + 16);
    if (20 + cap_len > block->size())
      throw std::runtime_error("pcapng: EPB capture length overruns block");
    rec.data.assign(block->begin() + 20, block->begin() + 20 + cap_len);
    return rec;
  }
}

std::vector<PcapngRecord> PcapngReader::read_all(const std::string& path) {
  PcapngReader reader{path};
  std::vector<PcapngRecord> out;
  while (auto rec = reader.next()) out.push_back(std::move(*rec));
  return out;
}

}  // namespace osnt::net
