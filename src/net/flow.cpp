#include "osnt/net/flow.hpp"

#include "osnt/common/hash.hpp"

namespace osnt::net {

std::uint64_t FiveTuple::hash() const noexcept {
  // Pack the tuple into two words and mix. Symmetric enough for dispatch;
  // exact-match lookups use operator== behind the hash.
  const std::uint64_t a =
      (std::uint64_t{src_ip.v} << 32) | dst_ip.v;
  const std::uint64_t b = (std::uint64_t{src_port} << 32) |
                          (std::uint64_t{dst_port} << 16) | protocol;
  return mix64(a ^ mix64(b));
}

std::optional<FiveTuple> extract_flow(const ParsedPacket& p) noexcept {
  if (p.l3 != L3Kind::kIpv4) return std::nullopt;
  FiveTuple t;
  t.src_ip = p.ipv4.src;
  t.dst_ip = p.ipv4.dst;
  t.protocol = p.ipv4.protocol;
  switch (p.l4) {
    case L4Kind::kTcp:
      t.src_port = p.tcp.src_port;
      t.dst_port = p.tcp.dst_port;
      break;
    case L4Kind::kUdp:
      t.src_port = p.udp.src_port;
      t.dst_port = p.udp.dst_port;
      break;
    case L4Kind::kIcmp:
      break;  // ports stay 0
    case L4Kind::kNone:
      if (p.ipv4.protocol == ipproto::kTcp ||
          p.ipv4.protocol == ipproto::kUdp)
        return std::nullopt;  // truncated L4
      break;
  }
  return t;
}

std::optional<FiveTuple> extract_flow(ByteSpan frame) noexcept {
  auto parsed = parse_packet(frame);
  if (!parsed) return std::nullopt;
  return extract_flow(*parsed);
}

}  // namespace osnt::net
