#include "osnt/net/packet.hpp"

#include <cstdio>
#include <string>

#include "osnt/net/parser.hpp"

namespace osnt::net {

/// One-line human-readable summary of a frame (used by CLI tools/examples).
std::string describe(const Packet& pkt) {
  auto parsed = parse_packet(pkt.bytes());
  char buf[256];
  if (!parsed) {
    std::snprintf(buf, sizeof buf, "[%zu B] <short frame>", pkt.size());
    return buf;
  }
  const auto& p = *parsed;
  std::string l3;
  switch (p.l3) {
    case L3Kind::kIpv4:
      l3 = p.ipv4.src.to_string() + " > " + p.ipv4.dst.to_string();
      break;
    case L3Kind::kIpv6:
      l3 = p.ipv6.src.to_string() + " > " + p.ipv6.dst.to_string();
      break;
    case L3Kind::kArp:
      l3 = "arp op=" + std::to_string(p.arp.opcode);
      break;
    case L3Kind::kNone:
      l3 = p.eth.src.to_string() + " > " + p.eth.dst.to_string();
      break;
  }
  const char* l4 = p.l4 == L4Kind::kTcp    ? "tcp"
                   : p.l4 == L4Kind::kUdp  ? "udp"
                   : p.l4 == L4Kind::kIcmp ? "icmp"
                                           : "-";
  std::uint16_t sport = 0, dport = 0;
  if (p.l4 == L4Kind::kTcp) {
    sport = p.tcp.src_port;
    dport = p.tcp.dst_port;
  } else if (p.l4 == L4Kind::kUdp) {
    sport = p.udp.src_port;
    dport = p.udp.dst_port;
  }
  std::snprintf(buf, sizeof buf, "[%4zu B] %s %s %u>%u", pkt.wire_len(),
                l3.c_str(), l4, sport, dport);
  return buf;
}

}  // namespace osnt::net
