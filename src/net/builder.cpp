#include "osnt/net/builder.hpp"

#include <stdexcept>

#include "osnt/common/hash.hpp"
#include "osnt/net/checksum.hpp"

namespace osnt::net {
namespace {

// Reserve space for a header and return its offset.
std::size_t append_zeros(Bytes& buf, std::size_t n) {
  const std::size_t off = buf.size();
  buf.resize(buf.size() + n, 0);
  return off;
}

}  // namespace

PacketBuilder& PacketBuilder::eth(MacAddr src, MacAddr dst,
                                  std::uint16_t ethertype) {
  eth_off_ = append_zeros(buf_, EthHeader::kSize);
  EthHeader h{dst, src, ethertype};
  h.write(MutByteSpan{buf_.data() + *eth_off_, EthHeader::kSize});
  return *this;
}

PacketBuilder& PacketBuilder::vlan(std::uint16_t vid, std::uint8_t pcp) {
  if (!eth_off_) throw std::logic_error("vlan() requires eth() first");
  // The tag is inserted by rewriting the outer ethertype to 0x8100 and
  // appending TCI + placeholder inner ethertype.
  const std::uint16_t outer = load_be16(buf_.data() + *eth_off_ + 12);
  store_be16(buf_.data() + *eth_off_ + 12,
             static_cast<std::uint16_t>(EtherType::kVlan));
  vlan_off_ = append_zeros(buf_, 4);  // TCI (2) + inner ethertype (2)
  const std::uint16_t tci =
      static_cast<std::uint16_t>((std::uint16_t{pcp} << 13) | (vid & 0x0FFF));
  store_be16(buf_.data() + *vlan_off_, tci);
  store_be16(buf_.data() + *vlan_off_ + 2, outer);
  return *this;
}

PacketBuilder& PacketBuilder::ipv4(Ipv4Addr src, Ipv4Addr dst,
                                   std::uint8_t protocol, std::uint8_t ttl,
                                   std::uint8_t dscp) {
  patch_ethertype(static_cast<std::uint16_t>(EtherType::kIpv4));
  ipv4_off_ = append_zeros(buf_, Ipv4Header::kMinSize);
  Ipv4Header h;
  h.src = src;
  h.dst = dst;
  h.protocol = protocol;
  h.ttl = ttl;
  h.dscp = dscp;
  h.write(MutByteSpan{buf_.data() + *ipv4_off_, Ipv4Header::kMinSize});
  return *this;
}

PacketBuilder& PacketBuilder::ipv6(const Ipv6Addr& src, const Ipv6Addr& dst,
                                   std::uint8_t next_header,
                                   std::uint8_t hop_limit) {
  patch_ethertype(static_cast<std::uint16_t>(EtherType::kIpv6));
  ipv6_off_ = append_zeros(buf_, Ipv6Header::kSize);
  Ipv6Header h;
  h.src = src;
  h.dst = dst;
  h.next_header = next_header;
  h.hop_limit = hop_limit;
  h.write(MutByteSpan{buf_.data() + *ipv6_off_, Ipv6Header::kSize});
  return *this;
}

PacketBuilder& PacketBuilder::arp(std::uint16_t opcode, MacAddr sender_mac,
                                  Ipv4Addr sender_ip, MacAddr target_mac,
                                  Ipv4Addr target_ip) {
  patch_ethertype(static_cast<std::uint16_t>(EtherType::kArp));
  const std::size_t off = append_zeros(buf_, ArpHeader::kSize);
  ArpHeader h;
  h.opcode = opcode;
  h.sender_mac = sender_mac;
  h.sender_ip = sender_ip;
  h.target_mac = target_mac;
  h.target_ip = target_ip;
  h.write(MutByteSpan{buf_.data() + off, ArpHeader::kSize});
  return *this;
}

PacketBuilder& PacketBuilder::udp(std::uint16_t src_port,
                                  std::uint16_t dst_port) {
  patch_l3_protocol(ipproto::kUdp);
  udp_off_ = append_zeros(buf_, UdpHeader::kSize);
  UdpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  h.write(MutByteSpan{buf_.data() + *udp_off_, UdpHeader::kSize});
  return *this;
}

PacketBuilder& PacketBuilder::tcp(std::uint16_t src_port,
                                  std::uint16_t dst_port, std::uint32_t seq,
                                  std::uint32_t ack, std::uint8_t flags) {
  patch_l3_protocol(ipproto::kTcp);
  tcp_off_ = append_zeros(buf_, TcpHeader::kMinSize);
  TcpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  h.seq = seq;
  h.ack = ack;
  h.flags = flags;
  h.write(MutByteSpan{buf_.data() + *tcp_off_, TcpHeader::kMinSize});
  return *this;
}

PacketBuilder& PacketBuilder::tcp_options(
    const std::vector<TcpOption>& options) {
  if (!tcp_off_ || buf_.size() != *tcp_off_ + TcpHeader::kMinSize)
    throw std::logic_error("tcp_options() must follow tcp() immediately");
  const Bytes encoded = encode_tcp_options(options);
  if (TcpHeader::kMinSize + encoded.size() > 60)
    throw std::invalid_argument("tcp_options: header exceeds 60 bytes");
  buf_.insert(buf_.end(), encoded.begin(), encoded.end());
  const auto words =
      static_cast<std::uint8_t>((TcpHeader::kMinSize + encoded.size()) / 4);
  buf_[*tcp_off_ + 12] = static_cast<std::uint8_t>(words << 4);
  return *this;
}

PacketBuilder& PacketBuilder::icmp_echo(std::uint16_t identifier,
                                        std::uint16_t sequence, bool reply) {
  patch_l3_protocol(ipproto::kIcmp);
  icmp_off_ = append_zeros(buf_, IcmpHeader::kSize);
  IcmpHeader h;
  h.type = reply ? 0 : 8;
  h.identifier = identifier;
  h.sequence = sequence;
  h.write(MutByteSpan{buf_.data() + *icmp_off_, IcmpHeader::kSize});
  return *this;
}

PacketBuilder& PacketBuilder::payload(ByteSpan data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  return *this;
}

PacketBuilder& PacketBuilder::payload_random(std::size_t n,
                                             std::uint64_t seed) {
  buf_.reserve(buf_.size() + n);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 8 == 0) state = mix64(state + i);
    buf_.push_back(static_cast<std::uint8_t>(state >> ((i % 8) * 8)));
  }
  return *this;
}

PacketBuilder& PacketBuilder::pad_to_frame(std::size_t frame_len_with_fcs) {
  if (frame_len_with_fcs < kEthMinFrame || frame_len_with_fcs > 9022)
    throw std::invalid_argument("pad_to_frame: frame length out of range");
  const std::size_t target = frame_len_with_fcs - kEthFcsLen;
  if (buf_.size() < target) buf_.resize(target, 0);
  return *this;
}

void PacketBuilder::patch_ethertype(std::uint16_t ethertype) {
  if (vlan_off_) {
    store_be16(buf_.data() + *vlan_off_ + 2, ethertype);
  } else if (eth_off_) {
    store_be16(buf_.data() + *eth_off_ + 12, ethertype);
  } else {
    throw std::logic_error("L3 layer requires eth() first");
  }
}

void PacketBuilder::patch_l3_protocol(std::uint8_t proto) {
  l4_proto_ = proto;
  if (ipv4_off_) {
    buf_[*ipv4_off_ + 9] = proto;
  } else if (ipv6_off_) {
    buf_[*ipv6_off_ + 6] = proto;
  } else {
    throw std::logic_error("L4 layer requires ipv4()/ipv6() first");
  }
}

Packet PacketBuilder::build() {
  if (!eth_off_) throw std::logic_error("build() requires eth()");
  // Enforce the Ethernet minimum (64 B with FCS → 60 B of frame data).
  if (buf_.size() < kEthMinFrame - kEthFcsLen)
    buf_.resize(kEthMinFrame - kEthFcsLen, 0);

  // --- back-patch lengths, outermost first ---
  if (ipv4_off_) {
    const std::uint16_t total =
        static_cast<std::uint16_t>(buf_.size() - *ipv4_off_);
    store_be16(buf_.data() + *ipv4_off_ + 2, total);
  }
  if (ipv6_off_) {
    const std::uint16_t payload = static_cast<std::uint16_t>(
        buf_.size() - *ipv6_off_ - Ipv6Header::kSize);
    store_be16(buf_.data() + *ipv6_off_ + 4, payload);
  }
  if (udp_off_) {
    const std::uint16_t len =
        static_cast<std::uint16_t>(buf_.size() - *udp_off_);
    store_be16(buf_.data() + *udp_off_ + 4, len);
  }

  // --- checksums, innermost first ---
  const std::size_t l4_off =
      udp_off_ ? *udp_off_ : tcp_off_ ? *tcp_off_ : icmp_off_ ? *icmp_off_ : 0;
  if (l4_off != 0) {
    const std::size_t cksum_at = icmp_off_ ? l4_off + 2
                                 : udp_off_ ? l4_off + 6
                                            : l4_off + 16;
    store_be16(buf_.data() + cksum_at, 0);
    const ByteSpan l4{buf_.data() + l4_off, buf_.size() - l4_off};
    std::uint16_t cksum = 0;
    if (icmp_off_) {
      cksum = internet_checksum(l4);
    } else if (ipv4_off_) {
      const std::uint32_t src = load_be32(buf_.data() + *ipv4_off_ + 12);
      const std::uint32_t dst = load_be32(buf_.data() + *ipv4_off_ + 16);
      cksum = l4_checksum_v4(Ipv4Addr{src}, Ipv4Addr{dst}, l4_proto_, l4);
      if (udp_off_ && cksum == 0) cksum = 0xFFFF;  // RFC 768: 0 means "none"
    } else if (ipv6_off_) {
      Ipv6Addr src, dst;
      std::memcpy(src.b.data(), buf_.data() + *ipv6_off_ + 8, 16);
      std::memcpy(dst.b.data(), buf_.data() + *ipv6_off_ + 24, 16);
      cksum = l4_checksum_v6(src, dst, l4_proto_, l4);
      if (udp_off_ && cksum == 0) cksum = 0xFFFF;
    }
    store_be16(buf_.data() + cksum_at, cksum);
  }
  if (ipv4_off_) {
    store_be16(buf_.data() + *ipv4_off_ + 10, 0);
    const std::size_t hlen = std::size_t{buf_[*ipv4_off_]} % 16 * 4;
    const std::uint16_t cksum =
        internet_checksum(ByteSpan{buf_.data() + *ipv4_off_, hlen});
    store_be16(buf_.data() + *ipv4_off_ + 10, cksum);
  }

  Packet pkt{std::move(buf_)};
  *this = PacketBuilder{};
  return pkt;
}

}  // namespace osnt::net
