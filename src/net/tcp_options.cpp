#include "osnt/net/tcp_options.hpp"

namespace osnt::net {

std::optional<std::vector<TcpOption>> parse_tcp_options(
    ByteSpan options) noexcept {
  std::vector<TcpOption> out;
  std::size_t i = 0;
  while (i < options.size()) {
    const auto kind = static_cast<TcpOptionKind>(options[i]);
    if (kind == TcpOptionKind::kEnd) break;
    if (kind == TcpOptionKind::kNop) {
      ++i;
      continue;
    }
    if (i + 1 >= options.size()) return std::nullopt;  // missing length
    const std::uint8_t len = options[i + 1];
    if (len < 2 || i + len > options.size()) return std::nullopt;
    TcpOption opt;
    opt.kind = kind;
    opt.data.assign(options.begin() + static_cast<std::ptrdiff_t>(i + 2),
                    options.begin() + static_cast<std::ptrdiff_t>(i + len));
    out.push_back(std::move(opt));
    i += len;
  }
  return out;
}

Bytes encode_tcp_options(const std::vector<TcpOption>& options) {
  Bytes out;
  for (const auto& opt : options) {
    out.push_back(static_cast<std::uint8_t>(opt.kind));
    out.push_back(static_cast<std::uint8_t>(opt.data.size() + 2));
    out.insert(out.end(), opt.data.begin(), opt.data.end());
  }
  // Pad to a 4-byte boundary: END then NOPs per convention (any padding
  // after END is ignored by parsers).
  if (out.size() % 4 != 0) {
    out.push_back(static_cast<std::uint8_t>(TcpOptionKind::kEnd));
    while (out.size() % 4 != 0)
      out.push_back(static_cast<std::uint8_t>(TcpOptionKind::kNop));
  }
  return out;
}

TcpOption tcp_option_mss(std::uint16_t mss) {
  TcpOption o;
  o.kind = TcpOptionKind::kMss;
  o.data.resize(2);
  store_be16(o.data.data(), mss);
  return o;
}

TcpOption tcp_option_window_scale(std::uint8_t shift) {
  TcpOption o;
  o.kind = TcpOptionKind::kWindowScale;
  o.data = {shift};
  return o;
}

TcpOption tcp_option_sack_permitted() {
  TcpOption o;
  o.kind = TcpOptionKind::kSackPermitted;
  return o;
}

TcpOption tcp_option_timestamps(std::uint32_t tsval, std::uint32_t tsecr) {
  TcpOption o;
  o.kind = TcpOptionKind::kTimestamps;
  o.data.resize(8);
  store_be32(o.data.data(), tsval);
  store_be32(o.data.data() + 4, tsecr);
  return o;
}

std::optional<std::uint16_t> tcp_mss_of(
    const std::vector<TcpOption>& options) noexcept {
  for (const auto& o : options) {
    if (o.kind == TcpOptionKind::kMss && o.data.size() == 2)
      return load_be16(o.data.data());
  }
  return std::nullopt;
}

std::optional<std::uint8_t> tcp_window_scale_of(
    const std::vector<TcpOption>& options) noexcept {
  for (const auto& o : options) {
    if (o.kind == TcpOptionKind::kWindowScale && o.data.size() == 1)
      return o.data[0];
  }
  return std::nullopt;
}

std::optional<std::pair<std::uint32_t, std::uint32_t>> tcp_timestamps_of(
    const std::vector<TcpOption>& options) noexcept {
  for (const auto& o : options) {
    if (o.kind == TcpOptionKind::kTimestamps && o.data.size() == 8)
      return std::make_pair(load_be32(o.data.data()),
                            load_be32(o.data.data() + 4));
  }
  return std::nullopt;
}

}  // namespace osnt::net
