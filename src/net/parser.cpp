#include "osnt/net/parser.hpp"

namespace osnt::net {

std::optional<ParsedPacket> parse_packet(ByteSpan frame) noexcept {
  auto eth = EthHeader::read(frame);
  if (!eth) return std::nullopt;

  ParsedPacket p;
  p.eth = *eth;
  p.frame_len = frame.size();
  std::size_t off = EthHeader::kSize;
  p.payload_offset = off;

  std::uint16_t ethertype = p.eth.ethertype;
  if (ethertype == static_cast<std::uint16_t>(EtherType::kVlan)) {
    // VlanTag::read expects the span to start at the TPID (offset 12).
    if (auto tag = VlanTag::read(frame.subspan(EthHeader::kSize - 2))) {
      p.vlan = *tag;
      ethertype = tag->inner_ethertype;
      off += VlanTag::kSize;
      p.payload_offset = off;
    } else {
      return p;  // tagged but truncated: stop at L2
    }
  }

  std::uint8_t l4_proto = 0;
  switch (static_cast<EtherType>(ethertype)) {
    case EtherType::kIpv4: {
      auto ip = Ipv4Header::read(frame.subspan(off));
      if (!ip) return p;
      p.l3 = L3Kind::kIpv4;
      p.ipv4 = *ip;
      p.l3_offset = off;
      off += ip->header_len();
      p.payload_offset = off;
      l4_proto = ip->protocol;
      break;
    }
    case EtherType::kIpv6: {
      auto ip = Ipv6Header::read(frame.subspan(off));
      if (!ip) return p;
      p.l3 = L3Kind::kIpv6;
      p.ipv6 = *ip;
      p.l3_offset = off;
      off += Ipv6Header::kSize;
      p.payload_offset = off;
      l4_proto = ip->next_header;
      break;
    }
    case EtherType::kArp: {
      auto arp = ArpHeader::read(frame.subspan(off));
      if (!arp) return p;
      p.l3 = L3Kind::kArp;
      p.arp = *arp;
      p.l3_offset = off;
      p.payload_offset = off + ArpHeader::kSize;
      return p;  // ARP has no L4
    }
    default:
      return p;  // unknown L3
  }

  switch (l4_proto) {
    case ipproto::kTcp:
      if (auto tcp = TcpHeader::read(frame.subspan(off))) {
        p.l4 = L4Kind::kTcp;
        p.tcp = *tcp;
        p.l4_offset = off;
        p.payload_offset = off + tcp->header_len();
      }
      break;
    case ipproto::kUdp:
      if (auto udp = UdpHeader::read(frame.subspan(off))) {
        p.l4 = L4Kind::kUdp;
        p.udp = *udp;
        p.l4_offset = off;
        p.payload_offset = off + UdpHeader::kSize;
      }
      break;
    case ipproto::kIcmp:
      if (auto icmp = IcmpHeader::read(frame.subspan(off))) {
        p.l4 = L4Kind::kIcmp;
        p.icmp = *icmp;
        p.l4_offset = off;
        p.payload_offset = off + IcmpHeader::kSize;
      }
      break;
    default:
      break;
  }
  return p;
}

}  // namespace osnt::net
