#include "osnt/telemetry/series.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "osnt/sim/engine.hpp"

namespace osnt::telemetry {
namespace {

/// Shortest round-trippable decimal (same convention as the registry
/// snapshot): identical doubles always render the same bytes.
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Reassemble an interval's histogram delta so the stock quantile walk
/// applies. min/max were not tracked per interval; the bucket bounds of
/// the occupied range are the tightest deterministic substitute, which
/// bounds the interpolation error at one bucket width.
Log2Histogram hist_of_delta(const SeriesData::HistDelta& d) {
  std::uint64_t min = ~std::uint64_t{0};
  std::uint64_t max = 0;
  if (d.count > 0) {
    for (std::size_t b = 0; b < SeriesData::kBuckets; ++b) {
      if (d.buckets[b] == 0) continue;
      min = std::min(min, Log2Histogram::bucket_lo(b));
      max = std::max(max, Log2Histogram::bucket_hi(b));
    }
  }
  return Log2Histogram::from_parts(d.buckets, d.count, d.sum, min, max);
}

}  // namespace

std::size_t SeriesData::intervals() const noexcept {
  std::size_t n = 0;
  for (const auto& [name, ch] : channels) {
    n = std::max(n, ch.kind == Channel::Kind::kCounter ? ch.deltas.size()
                                                       : ch.hist.size());
  }
  return n;
}

void SeriesData::merge_from(const SeriesData& o) {
  if (interval == 0) interval = o.interval;
  tail = std::max(tail, o.tail);
  trials += o.trials;
  for (const auto& [name, och] : o.channels) {
    Channel& ch = channels[name];
    ch.kind = och.kind;
    if (och.kind == Channel::Kind::kCounter) {
      if (ch.deltas.size() < och.deltas.size())
        ch.deltas.resize(och.deltas.size());
      for (std::size_t i = 0; i < och.deltas.size(); ++i)
        ch.deltas[i] += och.deltas[i];
    } else {
      if (ch.hist.size() < och.hist.size()) ch.hist.resize(och.hist.size());
      for (std::size_t i = 0; i < och.hist.size(); ++i) {
        HistDelta& d = ch.hist[i];
        const HistDelta& od = och.hist[i];
        d.count += od.count;
        d.sum += od.sum;
        for (std::size_t b = 0; b < kBuckets; ++b)
          d.buckets[b] += od.buckets[b];
      }
    }
  }
}

std::string SeriesData::to_json() const {
  const std::size_t n = intervals();
  std::string out = "{\n \"schema\": \"osnt.series.v1\",\n";
  out += " \"interval_ps\": " + std::to_string(interval) + ",\n";
  out += " \"tail_ps\": " + std::to_string(tail) + ",\n";
  out += " \"intervals\": " + std::to_string(n) + ",\n";
  out += " \"trials\": " + std::to_string(trials) + ",\n";
  out += " \"channels\": {";
  const double ival_s = static_cast<double>(interval) * 1e-12;
  const double tail_s = static_cast<double>(tail) * 1e-12;
  bool first = true;
  for (const auto& [name, ch] : channels) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  \"" + name + "\": {";
    if (ch.kind == Channel::Kind::kCounter) {
      out += "\"kind\": \"counter\", \"delta\": [";
      for (std::size_t i = 0; i < ch.deltas.size(); ++i) {
        if (i) out += ", ";
        out += std::to_string(ch.deltas[i]);
      }
      out += "], \"rate_per_s\": [";
      for (std::size_t i = 0; i < ch.deltas.size(); ++i) {
        if (i) out += ", ";
        // The final sample may cover a partial interval.
        const bool is_tail = tail > 0 && i + 1 == ch.deltas.size();
        const double span = is_tail ? tail_s : ival_s;
        out += fmt_double(span > 0.0
                              ? static_cast<double>(ch.deltas[i]) / span
                              : 0.0);
      }
      out += "]";
    } else {
      out += "\"kind\": \"histogram\", \"count\": [";
      for (std::size_t i = 0; i < ch.hist.size(); ++i) {
        if (i) out += ", ";
        out += std::to_string(ch.hist[i].count);
      }
      out += "], \"mean\": [";
      for (std::size_t i = 0; i < ch.hist.size(); ++i) {
        if (i) out += ", ";
        const HistDelta& d = ch.hist[i];
        out += fmt_double(d.count ? static_cast<double>(d.sum) /
                                        static_cast<double>(d.count)
                                  : 0.0);
      }
      out += "], \"p50\": [";
      for (std::size_t i = 0; i < ch.hist.size(); ++i) {
        if (i) out += ", ";
        out += fmt_double(hist_of_delta(ch.hist[i]).quantile(0.50));
      }
      out += "], \"p99\": [";
      for (std::size_t i = 0; i < ch.hist.size(); ++i) {
        if (i) out += ", ";
        out += fmt_double(hist_of_delta(ch.hist[i]).quantile(0.99));
      }
      out += "]";
    }
    out += "}";
  }
  out += "\n }\n}\n";
  return out;
}

bool SeriesData::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

TimeSeries::TimeSeries(Picos interval) {
  assert(interval > 0);
  data_.interval = interval;
  data_.trials = 1;
}

void TimeSeries::add_counter(const std::string& name,
                             std::function<std::uint64_t()> get) {
  for (auto& c : counters_) {
    if (c.name == name) {
      c.get = std::move(get);
      return;
    }
  }
  counters_.push_back({name, std::move(get), 0});
  auto& ch = data_.channels[name];
  ch.kind = SeriesData::Channel::Kind::kCounter;
}

void TimeSeries::add_histogram(const std::string& name,
                               std::function<Log2Histogram()> get) {
  for (auto& h : hists_) {
    if (h.name == name) {
      h.get = std::move(get);
      return;
    }
  }
  hists_.push_back({name, std::move(get), Log2Histogram{}});
  auto& ch = data_.channels[name];
  ch.kind = SeriesData::Channel::Kind::kHistogram;
}

void TimeSeries::tick() {
  for (auto& c : counters_) {
    const std::uint64_t cur = c.get();
    data_.channels[c.name].deltas.push_back(cur - c.prev);
    c.prev = cur;
  }
  for (auto& h : hists_) {
    const Log2Histogram cur = h.get();
    SeriesData::HistDelta d;
    d.count = cur.count() - h.prev.count();
    d.sum = cur.sum() - h.prev.sum();
    for (std::size_t b = 0; b < SeriesData::kBuckets; ++b)
      d.buckets[b] = cur.bucket_count(b) - h.prev.bucket_count(b);
    data_.channels[h.name].hist.push_back(d);
    h.prev = cur;
  }
  last_tick_ = eng_ ? eng_->now() : last_tick_;
}

void TimeSeries::attach(sim::Engine& eng, Picos horizon) {
  eng_ = &eng;
  const Picos interval = data_.interval;
  if (interval <= 0 || horizon <= 0) return;
  const sim::Engine::CategoryScope scope{eng, sim::EventCategory::kMon};
  // Bounded pre-schedule: a self-rearming tick would keep Engine::run()
  // from ever draining to empty.
  for (Picos t = interval; t <= horizon; t += interval) {
    eng.schedule_bulk_at(t, [this] { tick(); });
  }
}

void TimeSeries::finish() {
  if (eng_ == nullptr) return;
  const Picos now = eng_->now();
  if (now > last_tick_) {
    data_.tail = now - last_tick_;
    tick();
  }
  eng_ = nullptr;
}

}  // namespace osnt::telemetry
