#include "osnt/telemetry/trace.hpp"

#include <cstdio>
#include <fstream>

namespace osnt::telemetry {
namespace {

/// Chrome's `ts`/`dur` unit is microseconds; sim time is integer picos.
/// %.6f keeps full picosecond precision in the decimals and renders
/// identical picos as identical bytes.
void append_micros(std::string& out, Picos t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f",
                static_cast<double>(t) / static_cast<double>(kPicosPerMicro));
  out += buf;
}

}  // namespace

TraceRecorder::TrackId TraceRecorder::track(const std::string& name) {
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return static_cast<TrackId>(i);
  }
  tracks_.push_back(name);
  return static_cast<TrackId>(tracks_.size() - 1);
}

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  std::string out = "[\n";
  out +=
      "{\"ph\": \"M\", \"pid\": 0, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"osnt-sim\"}}";
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    out += ",\n{\"ph\": \"M\", \"pid\": 0, \"tid\": " + std::to_string(i) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
           tracks_[i] + "\"}}";
  }
  for (const Event& e : events_) {
    out += ",\n{\"ph\": \"";
    out += e.ph;
    out += "\", \"pid\": 0, \"tid\": " + std::to_string(e.track) +
           ", \"ts\": ";
    append_micros(out, e.start);
    if (e.ph == 'X') {
      out += ", \"dur\": ";
      append_micros(out, e.dur);
    } else if (e.ph == 'i') {
      out += ", \"s\": \"t\"";
    }
    out += ", \"cat\": \"sim\", \"name\": \"";
    out += e.name;
    if (e.ph == 'C') {
      out += "\", \"args\": {\"value\": " +
             std::to_string(static_cast<std::uint64_t>(e.dur)) + "}}";
    } else {
      out += "\"}";
    }
    if (out.size() >= std::size_t{1} << 20) {
      os.write(out.data(), static_cast<std::streamsize>(out.size()));
      out.clear();
    }
  }
  out += "\n]\n";
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

bool TraceRecorder::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  write_chrome_json(f);
  return static_cast<bool>(f);
}

}  // namespace osnt::telemetry
