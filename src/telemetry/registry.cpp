#include "osnt/telemetry/registry.hpp"

#include <cstdio>
#include <map>
#include <mutex>

namespace osnt::telemetry {
namespace {

std::atomic<bool> g_enabled{true};

void atomic_update_min(std::atomic<std::uint64_t>& a,
                       std::uint64_t v) noexcept {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_update_max(std::atomic<std::uint64_t>& a,
                       std::uint64_t v) noexcept {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Shortest round-trippable decimal; identical doubles always render the
/// same bytes, which the determinism checks rely on.
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Stats excluded from kSimOnly snapshots: "wall" marks host-time
/// measurements, "impl" marks implementation internals that vary with
/// execution strategy (timer routing, slot recycling) while the simulated
/// universe — and everything else in the snapshot — is unchanged.
bool is_host_dependent(std::string_view name) noexcept {
  return name.find("wall") != std::string_view::npos ||
         name.find("impl") != std::string_view::npos;
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void SharedHistogram::record(std::uint64_t v) noexcept {
  counts_[Log2Histogram::bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_update_min(min_, v);
  atomic_update_max(max_, v);
}

void SharedHistogram::merge(const Log2Histogram& shard) noexcept {
  if (shard.count() == 0) return;
  for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
    const std::uint64_t c = shard.bucket_count(b);
    if (c) counts_[b].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(shard.count(), std::memory_order_relaxed);
  sum_.fetch_add(shard.sum(), std::memory_order_relaxed);
  atomic_update_min(min_, shard.min());
  atomic_update_max(max_, shard.max());
}

Log2Histogram SharedHistogram::snapshot() const noexcept {
  std::array<std::uint64_t, Log2Histogram::kBuckets> counts;
  for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b)
    counts[b] = counts_[b].load(std::memory_order_relaxed);
  return Log2Histogram::from_parts(counts,
                                   count_.load(std::memory_order_relaxed),
                                   sum_.load(std::memory_order_relaxed),
                                   min_.load(std::memory_order_relaxed),
                                   max_.load(std::memory_order_relaxed));
}

void SharedHistogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map: sorted iteration gives deterministic JSON; unique_ptr keeps
  // metric addresses stable across rehash-free inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<SharedHistogram>, std::less<>> hists;
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    it = impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

SharedHistogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->hists.find(name);
  if (it == impl_->hists.end()) {
    it = impl_->hists
             .emplace(std::string(name), std::make_unique<SharedHistogram>())
             .first;
  }
  return *it->second;
}

std::string Registry::to_json(Snapshot mode) const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const bool all = mode == Snapshot::kAll;
  std::string out = "{\n \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    if (!all && is_host_dependent(name)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "  \"" + name + "\": " + std::to_string(c->value());
  }
  out += "\n },\n \"gauges\": {";
  first = true;
  for (const auto& [name, g] : impl_->gauges) {
    if (!all && is_host_dependent(name)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "  \"" + name + "\": " + std::to_string(g->value());
  }
  out += "\n },\n \"histograms\": {";
  first = true;
  for (const auto& [name, h] : impl_->hists) {
    if (!all && is_host_dependent(name)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    const Log2Histogram snap = h->snapshot();
    out += "  \"" + name + "\": {\"count\": " + std::to_string(snap.count()) +
           ", \"sum\": " + std::to_string(snap.sum()) +
           ", \"min\": " + std::to_string(snap.min()) +
           ", \"max\": " + std::to_string(snap.max()) +
           ", \"p50\": " + fmt_double(snap.quantile(0.50)) +
           ", \"p99\": " + fmt_double(snap.quantile(0.99)) +
           ", \"p999\": " + fmt_double(snap.quantile(0.999)) +
           ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
      const std::uint64_t c = snap.bucket_count(b);
      if (c == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      out += "[" + std::to_string(b) + ", " + std::to_string(c) + "]";
    }
    out += "]}";
  }
  out += "\n }\n}\n";
  return out;
}

bool Registry::write_json(const std::string& path, Snapshot mode) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = to_json(mode);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges) g->reset();
  for (auto& [name, h] : impl_->hists) h->reset();
}

Registry& registry() {
  static Registry* g = new Registry();  // leaked: usable from any dtor
  return *g;
}

}  // namespace osnt::telemetry
