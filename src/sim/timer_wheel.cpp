#include "osnt/sim/timer_wheel.hpp"

namespace osnt::sim {

bool TimerWheel::schedule(Picos time, std::uint32_t seq, std::uint32_t slot) {
  const auto qt = static_cast<std::uint64_t>(time) >> kTickShift;
  // Behind/at the cursor the entry could be due immediately; past the
  // horizon the top-level epoch differs and bucket indices would wrap
  // onto live earlier entries. Both spill to the heap.
  if (qt <= cur_tick_ || (qt >> (kSlotBits * kLevels)) !=
                             (cur_tick_ >> (kSlotBits * kLevels))) {
    return false;
  }
  assert(slot < nodes_.size());
  Node& n = nodes_[slot];
  n.time = time;
  n.seq = seq;
  link_(qt, slot);
  ++pending_;
  ++scheduled_;
  // Maintain the cached due bound exactly instead of forcing a rescan:
  // the bound is the min over occupied bucket bases, and a new entry can
  // only lower it to its own bucket's base. This keeps the arm hot path
  // at O(1) — next_due() rescans only after a drain or cancel.
  const std::uint32_t level = level_of_(qt);
  const auto base = static_cast<Picos>(
      (qt & ~((std::uint64_t{1} << (level * kSlotBits)) - 1)) << kTickShift);
  if (pending_ == 1 || (!due_dirty_ && base < cached_due_)) {
    cached_due_ = base;
    due_dirty_ = false;
  }
  return true;
}

void TimerWheel::cancel(std::uint32_t slot) noexcept {
  unlink_(slot);
  --pending_;
  ++cancelled_;
  due_dirty_ = true;
}

void TimerWheel::link_(std::uint64_t qt, std::uint32_t slot) noexcept {
  const std::uint32_t level = level_of_(qt);
  const auto index = static_cast<std::uint32_t>(
      (qt >> (level * kSlotBits)) & (kSlotsPerLevel - 1));
  const std::uint32_t bucket = level * kSlotsPerLevel + index;
  Node& n = nodes_[slot];
  n.bucket = static_cast<std::uint16_t>(bucket);
  n.prev = kNil;
  n.next = heads_[bucket];
  if (n.next != kNil) nodes_[n.next].prev = slot;
  heads_[bucket] = slot;
  occupancy_[level][index >> 6] |= std::uint64_t{1} << (index & 63);
}

void TimerWheel::unlink_(std::uint32_t slot) noexcept {
  Node& n = nodes_[slot];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    heads_[n.bucket] = n.next;
  }
  if (n.next != kNil) nodes_[n.next].prev = n.prev;
  if (heads_[n.bucket] == kNil) {
    const std::uint32_t level = n.bucket / kSlotsPerLevel;
    const std::uint32_t index = n.bucket & (kSlotsPerLevel - 1);
    occupancy_[level][index >> 6] &= ~(std::uint64_t{1} << (index & 63));
  }
}

void TimerWheel::advance_cursor_(std::uint64_t tick) noexcept {
  const std::uint64_t prev = cur_tick_;
  cur_tick_ = tick;
  // Highest level first, so entries trickle all the way down to level 0
  // (and possibly into the level-0 cursor bucket) in a single pass.
  for (std::uint32_t level = kLevels - 1; level >= 1; --level) {
    const std::uint32_t shift = level * kSlotBits;
    if ((tick >> shift) == (prev >> shift)) continue;
    cascade_(level,
             static_cast<std::uint32_t>((tick >> shift) & (kSlotsPerLevel - 1)));
  }
}

void TimerWheel::cascade_(std::uint32_t level, std::uint32_t index) noexcept {
  const std::uint32_t bucket = level * kSlotsPerLevel + index;
  std::uint32_t n = heads_[bucket];
  heads_[bucket] = kNil;
  occupancy_[level][index >> 6] &= ~(std::uint64_t{1} << (index & 63));
  while (n != kNil) {
    const std::uint32_t next = nodes_[n].next;
    // Re-route against the advanced cursor. An entry whose quantized time
    // equals cur_tick_ lands in the level-0 cursor bucket and is drained
    // immediately after the cascade.
    link_(static_cast<std::uint64_t>(nodes_[n].time) >> kTickShift, n);
    ++cascaded_;
    n = next;
  }
}

Picos TimerWheel::scan_due_() const noexcept {
  // First occupied bucket at or ahead of the cursor index, per level; the
  // winner's base time bounds every pending entry from below. O(16 words).
  auto best = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t level = 0; level < kLevels; ++level) {
    const std::uint32_t shift = level * kSlotBits;
    const auto cursor =
        static_cast<std::uint32_t>((cur_tick_ >> shift) & (kSlotsPerLevel - 1));
    std::uint32_t found = kSlotsPerLevel;
    for (std::uint32_t w = cursor >> 6; w < kWordsPerLevel; ++w) {
      std::uint64_t word = occupancy_[level][w];
      if (w == (cursor >> 6)) word &= ~std::uint64_t{0} << (cursor & 63);
      if (word == 0) continue;
      found = (w << 6) +
              static_cast<std::uint32_t>(__builtin_ctzll(word));
      break;
    }
    if (found == kSlotsPerLevel) continue;
    // Bucket base: cursor's bits above this level's span, this bucket's
    // index at the level, zeros below.
    const std::uint64_t span = std::uint64_t{1} << (shift + kSlotBits);
    const std::uint64_t base =
        (cur_tick_ & ~(span - 1)) | (std::uint64_t{found} << shift);
    best = base < best ? base : best;
  }
  assert(best != std::numeric_limits<std::uint64_t>::max() &&
         "scan_due_ called with no pending entries");
  return static_cast<Picos>(best << kTickShift);
}

}  // namespace osnt::sim
