#include "osnt/sim/link.hpp"

#include <cmath>
#include <memory>
#include <utility>

namespace osnt::sim {

void Link::set_bit_error_rate(double ber, std::uint64_t seed) noexcept {
  ber_ = ber;
  rng_ = ber > 0.0 ? std::make_unique<Rng>(seed) : nullptr;
}

void Link::carry(net::Packet pkt, Picos tx_start, Picos tx_end) {
  if (!sink_) {
    ++dark_;
    return;
  }
  if (!up_) {
    ++lost_down_;
    return;
  }
  ++carried_;
  if (ber_ > 0.0 && rng_ && !pkt.empty()) {
    // P(frame hit) = 1 - (1-ber)^bits, numerically stable for tiny ber.
    const double bits = static_cast<double>(pkt.line_len()) * 8.0;
    const double p_hit = -std::expm1(bits * std::log1p(-ber_));
    if (rng_->chance(p_hit)) {
      const auto byte = rng_->uniform_int(0, pkt.size() - 1);
      const auto bit = rng_->uniform_int(0, 7);
      pkt.data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      pkt.fcs_bad = true;
      ++corrupted_;
    }
  }
  const Picos first_bit = tx_start + propagation_ + extra_delay_;
  const Picos last_bit = tx_end + propagation_ + extra_delay_;
  // Deliver at last-bit arrival: sinks are store-and-forward MACs. The
  // first-bit time rides along for MAC-receipt timestamping semantics.
  const Engine::CategoryScope cat(*eng_, EventCategory::kLink);
  if (last_bit == eng_->now()) {
    // Zero-delay hop invoked at the frame's own arrival instant (a graph
    // backplane edge): hand over synchronously instead of paying a full
    // engine event for a no-op timestamp.
    sink_->on_frame(std::move(pkt), first_bit, last_bit);
    return;
  }
  eng_->schedule_at(last_bit,
                    [this, pkt = std::move(pkt), first_bit, last_bit]() mutable {
                      sink_->on_frame(std::move(pkt), first_bit, last_bit);
                    });
}

}  // namespace osnt::sim
