#include "osnt/sim/engine.hpp"

#include <algorithm>

namespace osnt::sim {

EventId Engine::schedule_at(Picos t, EventFn fn) {
  Entry e;
  e.time = std::max(t, now_);
  e.seq = next_seq_++;
  e.id = next_id_++;
  e.fn = std::make_shared<EventFn>(std::move(fn));
  const std::uint64_t id = e.id;
  pending_.insert(id);
  queue_.push(std::move(e));
  return EventId{id};
}

bool Engine::cancel(EventId id) {
  if (!id) return false;
  // Lazy deletion: drop it from the pending set; skip it when popped.
  if (pending_.erase(id.v) == 0) return false;  // already fired or cancelled
  cancelled_.insert(id.v);
  return true;
}

bool Engine::step() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (cancelled_.erase(e.id) > 0) continue;
    pending_.erase(e.id);
    now_ = e.time;
    ++processed_;
    (*e.fn)();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Picos t) {
  while (!queue_.empty()) {
    // Skip over cancelled heads without advancing time.
    if (cancelled_.erase(queue_.top().id) > 0) {
      queue_.pop();
      continue;
    }
    if (queue_.top().time > t) break;
    step();
  }
  now_ = std::max(now_, t);
}

}  // namespace osnt::sim
