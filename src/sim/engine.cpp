#include "osnt/sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "osnt/telemetry/registry.hpp"

namespace osnt::sim {

namespace {
// One ambient config per thread: runner workers set it for the trial they
// execute; engines on unrelated threads are unaffected.
thread_local WatchdogConfig g_ambient_watchdog{};
}  // namespace

WatchdogScope::WatchdogScope(WatchdogConfig cfg) noexcept
    : prev_(g_ambient_watchdog) {
  g_ambient_watchdog = cfg;
}

WatchdogScope::~WatchdogScope() { g_ambient_watchdog = prev_; }

WatchdogConfig ambient_watchdog() noexcept { return g_ambient_watchdog; }

Engine::Engine() {
  const WatchdogConfig wd = g_ambient_watchdog;
  budget_ = wd.event_budget;
  set_wall_deadline_in(wd.wall_budget_ms);
}

void Engine::check_watchdog_() const {
  if (budget_ != 0 && processed_ >= budget_) {
    throw WatchdogError(
        WatchdogKind::kEventBudget,
        "sim: event budget exhausted after " + std::to_string(processed_) +
            " events at t=" + std::to_string(now_) + " ps (livelock watchdog)");
  }
  // Amortize the clock read: a stuck simulation still dispatches events,
  // so sampling every 1024 keeps the deadline responsive and cheap.
  if (wall_armed_ && (processed_ & 0x3ffu) == 0 &&
      std::chrono::steady_clock::now() >= wall_deadline_) {
    throw WatchdogError(
        WatchdogKind::kWallClock,
        "sim: wall-clock deadline exceeded after " +
            std::to_string(processed_) + " events at t=" +
            std::to_string(now_) + " ps (stall watchdog)");
  }
}

Engine::~Engine() {
  // One engine is one telemetry shard: merge its plain local counters into
  // the process-wide registry exactly once. Every merge op commutes
  // (counter adds, gauge maxes), so concurrent trials on any number of
  // runner workers produce identical registry totals.
  if (!telemetry::enabled()) return;
  if (processed_ == 0 && cancelled_ == 0 && meta_.empty()) return;
  auto& reg = telemetry::registry();
  reg.counter("sim.engine.engines").inc();
  reg.counter("sim.engine.events_fired").add(processed_);
  reg.counter("sim.engine.events_cancelled").add(cancelled_);
  // The "impl" token excludes a stat from kSimOnly snapshots (like
  // "wall"): these depend on how timers were *routed* (wheel vs heap,
  // eager vs lazy slot release), not on what the simulation did, and
  // kSimOnly must stay byte-identical across timer-routing configs.
  reg.gauge("sim.engine.impl.heap_high_water")
      .update_max(static_cast<std::int64_t>(heap_hw_));
  reg.gauge("sim.engine.live_high_water")
      .update_max(static_cast<std::int64_t>(live_hw_));
  reg.gauge("sim.engine.impl.slab_slots")
      .update_max(static_cast<std::int64_t>(meta_.size()));
  if (wheel_.scheduled() != 0 || wheel_spilled_ != 0) {
    reg.counter("sim.engine.wheel.impl.scheduled").add(wheel_.scheduled());
    reg.counter("sim.engine.wheel.impl.cancelled").add(wheel_.cancelled());
    reg.counter("sim.engine.wheel.impl.drained").add(wheel_.drained());
    reg.counter("sim.engine.wheel.impl.cascaded").add(wheel_.cascaded());
    reg.counter("sim.engine.wheel.impl.spilled").add(wheel_spilled_);
  }
  for (std::size_t c = 0; c < kEventCategoryCount; ++c) {
    if (handler_ns_[c] == 0) continue;
    reg.counter(std::string("sim.engine.handler_ns.wall.") +
                event_category_name(static_cast<EventCategory>(c)))
        .add(handler_ns_[c]);
  }
}

void Engine::add_block_() {
  assert(blocks_.size() < (std::size_t{1} << (32 - kSlotBlockShift)) &&
         "event slab exhausted");
  const auto base = static_cast<std::uint32_t>(blocks_.size())
                    << kSlotBlockShift;
  blocks_.push_back(std::make_unique<UniqueFn[]>(kSlotBlockSize));
  meta_.resize(meta_.size() + kSlotBlockSize);
  wheel_.ensure_capacity(meta_.size());  // wheel nodes parallel the slab
  // Chain the fresh block into the free list, lowest index first so slot
  // acquisition order stays intuitive in debuggers.
  for (std::uint32_t i = kSlotBlockSize; i-- > 0;) {
    meta_[base + i].next_free = free_head_;
    free_head_ = base + i;
  }
}

bool Engine::cancel(EventId id) {
  if (!id) return false;
  const auto slot = static_cast<std::uint32_t>(id.v & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id.v >> 32);
  if (slot >= meta_.size()) return false;
  SlotMeta& m = meta_[slot];
  if (m.gen != gen || m.state != State::kPending) return false;
  fn_(slot).reset();
  --live_;
  ++cancelled_;
  if (m.where == Where::kWheel) {
    // The heap never saw this entry, so there is nothing to skim: unlink
    // from its bucket and recycle the slot right away.
    wheel_.cancel(slot);
    release_slot_(slot);
    return true;
  }
  // Lazy deletion: free the captures now, skim the heap entry when it
  // surfaces. The slot stays reserved until then so it can't be reused
  // while the heap still points at it.
  m.state = State::kCancelled;
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Picos t) {
  Picos when;
  for (;;) {
    if (watchdog_on_ && live_ != 0) check_watchdog_();
    const std::uint32_t slot = pop_next_live_(t, when);
    if (slot == kNilSlot) break;
    now_ = when;
    ++processed_;
    dispatch_(slot);
  }
  now_ = std::max(now_, t);
}

}  // namespace osnt::sim
