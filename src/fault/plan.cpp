#include "osnt/fault/plan.hpp"

#include <cmath>
#include <cstdio>
#include <algorithm>
#include <utility>

#include "osnt/common/json.hpp"

namespace osnt::fault {
namespace {

// Plans parse through the shared strict JSON reader (osnt::json, also
// behind topology files); its positioned ParseError is rethrown as
// PlanError so fault-plan callers keep a single exception type.
using Json = json::Value;

// ---------------------------------------------------------------------------
// Schema mapping
// ---------------------------------------------------------------------------

[[noreturn]] void bad_event(std::size_t i, const std::string& why) {
  throw PlanError("fault plan event " + std::to_string(i) + ": " + why);
}

double number_field(const Json& ev, const std::string& key, std::size_t i) {
  const Json* v = ev.find(key);
  if (!v || v->type != Json::Type::kNumber) {
    bad_event(i, "'" + key + "' must be a number");
  }
  return v->number;
}

/// Reads `<base>_ns` / `<base>_us` / `<base>_ms` (at most one may appear)
/// into picoseconds. Returns `fallback` when absent and not required.
Picos time_field(const Json& ev, const std::string& base, std::size_t i,
                 bool required, Picos fallback = 0) {
  static constexpr struct {
    const char* suffix;
    double to_ps;
  } kUnits[] = {{"_ns", 1e3}, {"_us", 1e6}, {"_ms", 1e9}};
  const Json* found = nullptr;
  double scale = 0.0;
  for (const auto& u : kUnits) {
    if (const Json* v = ev.find(base + u.suffix)) {
      if (found) bad_event(i, "'" + base + "' given in more than one unit");
      found = v;
      scale = u.to_ps;
    }
  }
  if (!found) {
    if (required) bad_event(i, "missing required field '" + base + "_us'");
    return fallback;
  }
  if (found->type != Json::Type::kNumber) {
    bad_event(i, "'" + base + "' must be a number");
  }
  const double ps = found->number * scale;
  if (ps < 0 || ps > 9.2e18) bad_event(i, "'" + base + "' out of range");
  return static_cast<Picos>(ps);
}

FaultKind kind_of(const std::string& type, std::size_t i) {
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (type == fault_kind_name(static_cast<FaultKind>(k))) {
      return static_cast<FaultKind>(k);
    }
  }
  std::string known;
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    known += std::string(k ? ", " : "") +
             fault_kind_name(static_cast<FaultKind>(k));
  }
  bad_event(i, "unknown type '" + type + "' (known: " + known + ")");
}

/// The keys each fault kind understands beyond "type"; anything else in
/// the event object is a hard error (typos must not silently no-op).
void check_keys(const Json& ev, FaultKind kind, std::size_t i) {
  const auto allowed = [&](const std::string& k) {
    if (k == "type") return true;
    if (k == "at_ns" || k == "at_us" || k == "at_ms") return true;
    if (k == "duration_ns" || k == "duration_us" || k == "duration_ms") {
      return true;
    }
    switch (kind) {
      case FaultKind::kLinkFlap:
        return k == "link";
      case FaultKind::kBerWindow:
        return k == "link" || k == "ber" || k == "ramp_ns" || k == "ramp_us" ||
               k == "ramp_ms";
      case FaultKind::kLatencySpike:
        return k == "link" || k == "extra_ns" || k == "extra_us" ||
               k == "extra_ms";
      case FaultKind::kDmaStall:
      case FaultKind::kCtrlDisconnect:
      case FaultKind::kGpsLoss:
        return false;
    }
    return false;
  };
  for (const auto& [k, v] : ev.object) {
    (void)v;
    if (!allowed(k)) {
      bad_event(i, "unknown key '" + k + "' for type '" +
                       fault_kind_name(kind) + "'");
    }
  }
}

}  // namespace

FaultPlan& FaultPlan::link_flap(Picos at, Picos duration, int link) {
  FaultEvent e;
  e.kind = FaultKind::kLinkFlap;
  e.at = at;
  e.duration = duration;
  e.link = link;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::ber_window(Picos at, Picos duration, double ber,
                                 Picos ramp, int link) {
  FaultEvent e;
  e.kind = FaultKind::kBerWindow;
  e.at = at;
  e.duration = duration;
  e.ber = ber;
  e.ramp = ramp;
  e.link = link;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::latency_spike(Picos at, Picos duration, Picos extra,
                                    int link) {
  FaultEvent e;
  e.kind = FaultKind::kLatencySpike;
  e.at = at;
  e.duration = duration;
  e.extra_delay = extra;
  e.link = link;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::dma_stall(Picos at, Picos duration) {
  FaultEvent e;
  e.kind = FaultKind::kDmaStall;
  e.at = at;
  e.duration = duration;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::ctrl_disconnect(Picos at, Picos duration) {
  FaultEvent e;
  e.kind = FaultKind::kCtrlDisconnect;
  e.at = at;
  e.duration = duration;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::gps_loss(Picos at, Picos duration) {
  FaultEvent e;
  e.kind = FaultKind::kGpsLoss;
  e.at = at;
  e.duration = duration;
  events.push_back(e);
  return *this;
}

void FaultPlan::normalize() {
  for (std::size_t i = 0; i < events.size(); ++i) {
    FaultEvent& e = events[i];
    if (e.at < 0) bad_event(i, "start time must be >= 0");
    if (e.duration < 0) bad_event(i, "duration must be >= 0");
    if (e.kind == FaultKind::kBerWindow) {
      if (!(e.ber >= 0.0 && e.ber <= 1.0)) {
        bad_event(i, "ber must be in [0, 1]");
      }
      if (e.ramp < 0 || e.ramp > e.duration) {
        bad_event(i, "ramp must be in [0, duration]");
      }
    }
    if (e.kind == FaultKind::kLatencySpike && e.extra_delay < 0) {
      bad_event(i, "extra delay must be >= 0");
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

FaultPlan FaultPlan::from_json(const std::string& text) {
  const Json root = [&text] {
    try {
      return json::parse(text, "fault plan JSON");
    } catch (const json::ParseError& e) {
      throw PlanError(e.what());
    }
  }();
  if (root.type != Json::Type::kObject) {
    throw PlanError("fault plan JSON: root must be an object");
  }
  for (const auto& [k, v] : root.object) {
    (void)v;
    if (k != "seed" && k != "events") {
      throw PlanError("fault plan JSON: unknown top-level key '" + k + "'");
    }
  }
  FaultPlan plan;
  if (const Json* seed = root.find("seed")) {
    if (seed->type != Json::Type::kNumber || seed->number < 0) {
      throw PlanError("fault plan JSON: 'seed' must be a non-negative number");
    }
    plan.seed = static_cast<std::uint64_t>(seed->number);
  }
  const Json* events = root.find("events");
  if (!events || events->type != Json::Type::kArray) {
    throw PlanError("fault plan JSON: 'events' array is required");
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const Json& ev = events->array[i];
    if (ev.type != Json::Type::kObject) bad_event(i, "must be an object");
    const Json* type = ev.find("type");
    if (!type || type->type != Json::Type::kString) {
      bad_event(i, "'type' string is required");
    }
    FaultEvent e;
    e.kind = kind_of(type->string, i);
    check_keys(ev, e.kind, i);
    e.at = time_field(ev, "at", i, /*required=*/true);
    e.duration = time_field(ev, "duration", i, /*required=*/false);
    if (const Json* link = ev.find("link")) {
      if (link->type != Json::Type::kNumber || link->number < 0 ||
          link->number != std::floor(link->number)) {
        bad_event(i, "'link' must be a non-negative integer");
      }
      e.link = static_cast<int>(link->number);
    }
    if (e.kind == FaultKind::kBerWindow) {
      e.ber = number_field(ev, "ber", i);
      e.ramp = time_field(ev, "ramp", i, /*required=*/false);
    }
    if (e.kind == FaultKind::kLatencySpike) {
      e.extra_delay = time_field(ev, "extra", i, /*required=*/true);
    }
    plan.events.push_back(e);
  }
  plan.normalize();
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  try {
    return from_json(json::read_file(path, "fault plan"));
  } catch (const json::ParseError& e) {
    throw PlanError(e.what());
  }
}

std::string FaultPlan::summary() const {
  std::size_t by_kind[kFaultKindCount] = {};
  Picos span = 0;
  for (const FaultEvent& e : events) {
    ++by_kind[static_cast<std::size_t>(e.kind)];
    span = std::max(span, e.at + e.duration);
  }
  char head[64];
  std::snprintf(head, sizeof head, "%zu events over %.3f ms:", events.size(),
                static_cast<double>(span) / static_cast<double>(kPicosPerMilli));
  std::string out = head;
  bool any = false;
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (by_kind[k] == 0) continue;
    out += std::string(any ? ", " : " ") + std::to_string(by_kind[k]) + " " +
           fault_kind_name(static_cast<FaultKind>(k));
    any = true;
  }
  if (!any) out += " none";
  return out;
}

}  // namespace osnt::fault
