#include "osnt/fault/plan.hpp"

#include <cmath>
#include <cstdio>
#include <algorithm>
#include <utility>

#include "osnt/common/cli.hpp"
#include "osnt/common/json.hpp"

namespace osnt::fault {
namespace {

// Plans parse through the shared strict JSON reader (osnt::json, also
// behind topology files); its positioned ParseError is rethrown as
// PlanError so fault-plan callers keep a single exception type.
using Json = json::Value;

// ---------------------------------------------------------------------------
// Schema mapping
// ---------------------------------------------------------------------------

/// Schema failure for event `i`. When the offending JSON node (or its
/// enclosing event object) is at hand, the error carries its
/// line/column, matching the topology loader's diagnostics.
[[noreturn]] void bad_event(std::size_t i, const std::string& why,
                            const Json* at = nullptr) {
  std::string msg = "fault plan event " + std::to_string(i) + ": " + why;
  if (at != nullptr && at->line > 0) msg += " (" + at->where() + ")";
  throw PlanError(msg);
}

double number_field(const Json& ev, const std::string& key, std::size_t i) {
  const Json* v = ev.find(key);
  if (!v || v->type != Json::Type::kNumber) {
    bad_event(i, "'" + key + "' must be a number", v ? v : &ev);
  }
  return v->number;
}

std::string string_field(const Json& ev, const std::string& key,
                         std::size_t i) {
  const Json* v = ev.find(key);
  if (!v || v->type != Json::Type::kString) {
    bad_event(i, "'" + key + "' must be a string", v ? v : &ev);
  }
  return v->string;
}

/// Reads `<base>_ns` / `<base>_us` / `<base>_ms` (at most one may appear)
/// into picoseconds. Returns `fallback` when absent and not required.
Picos time_field(const Json& ev, const std::string& base, std::size_t i,
                 bool required, Picos fallback = 0) {
  static constexpr struct {
    const char* suffix;
    double to_ps;
  } kUnits[] = {{"_ns", 1e3}, {"_us", 1e6}, {"_ms", 1e9}};
  const Json* found = nullptr;
  double scale = 0.0;
  for (const auto& u : kUnits) {
    if (const Json* v = ev.find(base + u.suffix)) {
      if (found) {
        bad_event(i, "'" + base + "' given in more than one unit", v);
      }
      found = v;
      scale = u.to_ps;
    }
  }
  if (!found) {
    if (required) {
      bad_event(i, "missing required field '" + base + "_us'", &ev);
    }
    return fallback;
  }
  if (found->type != Json::Type::kNumber) {
    bad_event(i, "'" + base + "' must be a number", found);
  }
  const double ps = found->number * scale;
  if (ps < 0 || ps > 9.2e18) {
    bad_event(i, "'" + base + "' out of range", found);
  }
  return static_cast<Picos>(ps);
}

std::vector<std::string> kind_names() {
  std::vector<std::string> names;
  names.reserve(kFaultKindCount);
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    names.emplace_back(fault_kind_name(static_cast<FaultKind>(k)));
  }
  return names;
}

FaultKind kind_of(const std::string& type, std::size_t i,
                  const Json* at) {
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (type == fault_kind_name(static_cast<FaultKind>(k))) {
      return static_cast<FaultKind>(k);
    }
  }
  const std::vector<std::string> known = kind_names();
  std::string msg = "unknown type '" + type + "'";
  const std::string hint = suggest_nearest(type, known);
  if (!hint.empty()) msg += " (did you mean '" + hint + "'?)";
  msg += " — known:";
  for (std::size_t k = 0; k < known.size(); ++k) {
    msg += std::string(k ? ", " : " ") + known[k];
  }
  bad_event(i, msg, at);
}

/// The keys each fault kind understands beyond "type"; anything else in
/// the event object is a hard error (typos must not silently no-op), with
/// the offending key's position and a did-you-mean over the allowed set.
void check_keys(const Json& ev, FaultKind kind, std::size_t i) {
  std::vector<std::string> allowed = {
      "type",        "at_ns",       "at_us",       "at_ms",
      "duration_ns", "duration_us", "duration_ms"};
  switch (kind) {
    case FaultKind::kLinkFlap:
      allowed.emplace_back("link");
      break;
    case FaultKind::kBerWindow:
      for (const char* k : {"link", "ber", "ramp_ns", "ramp_us", "ramp_ms"}) {
        allowed.emplace_back(k);
      }
      break;
    case FaultKind::kLatencySpike:
      for (const char* k : {"link", "extra_ns", "extra_us", "extra_ms"}) {
        allowed.emplace_back(k);
      }
      break;
    case FaultKind::kDmaStall:
    case FaultKind::kCtrlDisconnect:
    case FaultKind::kGpsLoss:
      break;
    case FaultKind::kRateLimit:
      for (const char* k : {"target", "rate_gbps", "burst_bytes", "ramp_ns",
                            "ramp_us", "ramp_ms"}) {
        allowed.emplace_back(k);
      }
      break;
    case FaultKind::kQueueCap:
      for (const char* k : {"target", "queue_frames"}) {
        allowed.emplace_back(k);
      }
      break;
  }
  for (const auto& [k, v] : ev.object) {
    if (std::find(allowed.begin(), allowed.end(), k) != allowed.end()) {
      continue;
    }
    std::string msg = "unknown key '" + k + "' for type '" +
                      std::string(fault_kind_name(kind)) + "'";
    const std::string hint = suggest_nearest(k, allowed);
    if (!hint.empty()) msg += " (did you mean '" + hint + "'?)";
    bad_event(i, msg, &v);
  }
}

}  // namespace

FaultPlan& FaultPlan::link_flap(Picos at, Picos duration, int link) {
  FaultEvent e;
  e.kind = FaultKind::kLinkFlap;
  e.at = at;
  e.duration = duration;
  e.link = link;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::ber_window(Picos at, Picos duration, double ber,
                                 Picos ramp, int link) {
  FaultEvent e;
  e.kind = FaultKind::kBerWindow;
  e.at = at;
  e.duration = duration;
  e.ber = ber;
  e.ramp = ramp;
  e.link = link;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::latency_spike(Picos at, Picos duration, Picos extra,
                                    int link) {
  FaultEvent e;
  e.kind = FaultKind::kLatencySpike;
  e.at = at;
  e.duration = duration;
  e.extra_delay = extra;
  e.link = link;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::dma_stall(Picos at, Picos duration) {
  FaultEvent e;
  e.kind = FaultKind::kDmaStall;
  e.at = at;
  e.duration = duration;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::ctrl_disconnect(Picos at, Picos duration) {
  FaultEvent e;
  e.kind = FaultKind::kCtrlDisconnect;
  e.at = at;
  e.duration = duration;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::gps_loss(Picos at, Picos duration) {
  FaultEvent e;
  e.kind = FaultKind::kGpsLoss;
  e.at = at;
  e.duration = duration;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::rate_limit(Picos at, Picos duration, std::string target,
                                 double rate_gbps, Picos ramp,
                                 std::int64_t burst_bytes) {
  FaultEvent e;
  e.kind = FaultKind::kRateLimit;
  e.at = at;
  e.duration = duration;
  e.target = std::move(target);
  e.rate_gbps = rate_gbps;
  e.ramp = ramp;
  e.burst_bytes = burst_bytes;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::queue_cap(Picos at, Picos duration, std::string target,
                                std::size_t queue_frames) {
  FaultEvent e;
  e.kind = FaultKind::kQueueCap;
  e.at = at;
  e.duration = duration;
  e.target = std::move(target);
  e.queue_frames = queue_frames;
  events.push_back(e);
  return *this;
}

void FaultPlan::normalize() {
  for (std::size_t i = 0; i < events.size(); ++i) {
    FaultEvent& e = events[i];
    if (e.at < 0) bad_event(i, "start time must be >= 0");
    if (e.duration < 0) bad_event(i, "duration must be >= 0");
    if (e.kind == FaultKind::kBerWindow) {
      if (!(e.ber >= 0.0 && e.ber <= 1.0)) {
        bad_event(i, "ber must be in [0, 1]");
      }
      if (e.ramp < 0 || e.ramp > e.duration) {
        bad_event(i, "ramp must be in [0, duration]");
      }
    }
    if (e.kind == FaultKind::kLatencySpike && e.extra_delay < 0) {
      bad_event(i, "extra delay must be >= 0");
    }
    if (e.kind == FaultKind::kRateLimit) {
      if (e.target.empty()) bad_event(i, "rate_limit requires a target");
      if (!(e.rate_gbps > 0.0)) bad_event(i, "rate_gbps must be > 0");
      if (e.ramp < 0 || e.ramp > e.duration) {
        bad_event(i, "ramp must be in [0, duration]");
      }
      if (e.burst_bytes == 0 || e.burst_bytes < -1) {
        bad_event(i, "burst_bytes must be >= 1 (omit to keep current)");
      }
    }
    if (e.kind == FaultKind::kQueueCap) {
      if (e.target.empty()) bad_event(i, "queue_cap requires a target");
      if (e.queue_frames == 0) bad_event(i, "queue_frames must be >= 1");
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

FaultPlan FaultPlan::from_json(const std::string& text) {
  const Json root = [&text] {
    try {
      return json::parse(text, "fault plan JSON");
    } catch (const json::ParseError& e) {
      throw PlanError(e.what());
    }
  }();
  if (root.type != Json::Type::kObject) {
    throw PlanError("fault plan JSON: root must be an object");
  }
  for (const auto& [k, v] : root.object) {
    (void)v;
    if (k != "seed" && k != "events") {
      throw PlanError("fault plan JSON: unknown top-level key '" + k + "'");
    }
  }
  FaultPlan plan;
  if (const Json* seed = root.find("seed")) {
    if (seed->type != Json::Type::kNumber || seed->number < 0) {
      throw PlanError("fault plan JSON: 'seed' must be a non-negative number");
    }
    plan.seed = static_cast<std::uint64_t>(seed->number);
  }
  const Json* events = root.find("events");
  if (!events || events->type != Json::Type::kArray) {
    throw PlanError("fault plan JSON: 'events' array is required");
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const Json& ev = events->array[i];
    if (ev.type != Json::Type::kObject) {
      bad_event(i, "must be an object", &ev);
    }
    const Json* type = ev.find("type");
    if (!type || type->type != Json::Type::kString) {
      bad_event(i, "'type' string is required", type ? type : &ev);
    }
    FaultEvent e;
    e.kind = kind_of(type->string, i, type);
    check_keys(ev, e.kind, i);
    e.at = time_field(ev, "at", i, /*required=*/true);
    e.duration = time_field(ev, "duration", i, /*required=*/false);
    if (const Json* link = ev.find("link")) {
      if (link->type != Json::Type::kNumber || link->number < 0 ||
          link->number != std::floor(link->number)) {
        bad_event(i, "'link' must be a non-negative integer", link);
      }
      e.link = static_cast<int>(link->number);
    }
    if (e.kind == FaultKind::kBerWindow) {
      e.ber = number_field(ev, "ber", i);
      e.ramp = time_field(ev, "ramp", i, /*required=*/false);
    }
    if (e.kind == FaultKind::kLatencySpike) {
      e.extra_delay = time_field(ev, "extra", i, /*required=*/true);
    }
    if (e.kind == FaultKind::kRateLimit) {
      e.target = string_field(ev, "target", i);
      e.rate_gbps = number_field(ev, "rate_gbps", i);
      e.ramp = time_field(ev, "ramp", i, /*required=*/false);
      if (const Json* burst = ev.find("burst_bytes")) {
        if (burst->type != Json::Type::kNumber || burst->number < 1 ||
            burst->number != std::floor(burst->number)) {
          bad_event(i, "'burst_bytes' must be a positive integer", burst);
        }
        e.burst_bytes = static_cast<std::int64_t>(burst->number);
      }
    }
    if (e.kind == FaultKind::kQueueCap) {
      e.target = string_field(ev, "target", i);
      const double frames = number_field(ev, "queue_frames", i);
      if (frames < 1 || frames != std::floor(frames)) {
        bad_event(i, "'queue_frames' must be a positive integer",
                  ev.find("queue_frames"));
      }
      e.queue_frames = static_cast<std::size_t>(frames);
    }
    plan.events.push_back(e);
  }
  plan.normalize();
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  try {
    return from_json(json::read_file(path, "fault plan"));
  } catch (const json::ParseError& e) {
    throw PlanError(e.what());
  }
}

std::string FaultPlan::summary() const {
  std::size_t by_kind[kFaultKindCount] = {};
  Picos span = 0;
  for (const FaultEvent& e : events) {
    ++by_kind[static_cast<std::size_t>(e.kind)];
    span = std::max(span, e.at + e.duration);
  }
  char head[64];
  std::snprintf(head, sizeof head, "%zu events over %.3f ms:", events.size(),
                static_cast<double>(span) / static_cast<double>(kPicosPerMilli));
  std::string out = head;
  bool any = false;
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (by_kind[k] == 0) continue;
    out += std::string(any ? ", " : " ") + std::to_string(by_kind[k]) + " " +
           fault_kind_name(static_cast<FaultKind>(k));
    any = true;
  }
  if (!any) out += " none";
  return out;
}

}  // namespace osnt::fault
