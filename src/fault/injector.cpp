#include "osnt/fault/injector.hpp"

#include <string>
#include <vector>

#include "osnt/common/cli.hpp"
#include "osnt/common/log.hpp"
#include "osnt/common/random.hpp"
#include "osnt/core/device.hpp"
#include "osnt/graph/blocks.hpp"
#include "osnt/graph/graph.hpp"
#include "osnt/hw/dma.hpp"
#include "osnt/hw/port.hpp"
#include "osnt/openflow/channel.hpp"
#include "osnt/sim/link.hpp"
#include "osnt/telemetry/registry.hpp"
#include "osnt/tstamp/gps.hpp"

namespace osnt::fault {
namespace {

/// Per-event BER stream seed: osnt::derive_seed over the plan seed and the
/// event's ordinal (stream ordinal+1 — stream 0 is not the identity but
/// skipping it keeps historical plans replaying bit-identically), so every
/// BER window draws from its own reproducible stream no matter how the
/// plan is edited around it.
std::uint64_t event_seed(std::uint64_t plan_seed, std::size_t ordinal) {
  return derive_seed(plan_seed, ordinal + 1);
}

/// BER ramps are quantized to a handful of steps: enough to exercise
/// "error rate grows" behaviour without scheduling thousands of events.
constexpr int kRampSteps = 8;

}  // namespace

Injector::Injector(sim::Engine& eng, FaultPlan plan)
    : eng_(&eng), plan_(std::move(plan)) {
  plan_.normalize();
}

Injector::~Injector() {
  if (!telemetry::enabled()) return;
  if (injected_total() == 0 && skipped_ == 0) return;
  auto& reg = telemetry::registry();
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (injected_[k] == 0) continue;
    reg.counter(std::string("fault.injected.") +
                fault_kind_name(static_cast<FaultKind>(k)))
        .add(injected_[k]);
  }
  reg.counter("fault.skipped").add(skipped_);
}

Injector& Injector::attach_link(sim::Link& link) {
  links_.push_back(&link);
  return *this;
}

Injector& Injector::attach_dma(hw::DmaEngine& dma) {
  dma_ = &dma;
  return *this;
}

Injector& Injector::attach_channel(openflow::ControlChannel& chan) {
  chan_ = &chan;
  return *this;
}

Injector& Injector::attach_gps(tstamp::GpsModel& gps) {
  gps_ = &gps;
  return *this;
}

Injector& Injector::attach_device(core::OsntDevice& dev) {
  for (std::size_t i = 0; i < dev.num_ports(); ++i) {
    attach_link(dev.port(i).out_link());
  }
  attach_dma(dev.dma());
  attach_gps(dev.gps());
  return *this;
}

Injector& Injector::attach_token_bucket(const std::string& name,
                                        graph::TokenBucketBlock& tb) {
  buckets_[name] = &tb;
  return *this;
}

Injector& Injector::attach_fifo(const std::string& name,
                                graph::FifoQueueBlock& q) {
  queues_[name] = &q;
  return *this;
}

Injector& Injector::attach_graph(graph::Graph& g) {
  for (std::size_t i = 0; i < g.num_blocks(); ++i) {
    graph::Block& b = g.block(i);
    if (auto* tb = dynamic_cast<graph::TokenBucketBlock*>(&b)) {
      attach_token_bucket(b.name(), *tb);
    } else if (auto* q = dynamic_cast<graph::FifoQueueBlock*>(&b)) {
      attach_fifo(b.name(), *q);
    }
  }
  return *this;
}

std::uint64_t Injector::injected_total() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t v : injected_) total += v;
  return total;
}

std::vector<sim::Link*> Injector::targets_(int link,
                                           std::size_t ordinal) const {
  if (link < 0) return links_;
  if (static_cast<std::size_t>(link) < links_.size()) {
    return {links_[static_cast<std::size_t>(link)]};
  }
  OSNT_WARN("fault: event %zu targets link %d but only %zu attached", ordinal,
            link, links_.size());
  return {};
}

void Injector::mark_(FaultKind kind, Picos at, Picos duration) {
  ++injected_[static_cast<std::size_t>(kind)];
  if (tracing_ && eng_->trace()) {
    eng_->trace()->complete(trace_tracks_[static_cast<std::size_t>(kind)],
                            fault_kind_name(kind), at, duration);
  }
}

void Injector::arm() {
  if (armed_) return;
  armed_ = true;
  tracing_ = eng_->trace() != nullptr;
  if (tracing_) {
    for (std::size_t k = 0; k < kFaultKindCount; ++k) {
      trace_tracks_[k] = eng_->trace()->track(
          std::string("fault/") + fault_kind_name(static_cast<FaultKind>(k)));
    }
  }
  const sim::Engine::CategoryScope cat(*eng_, sim::EventCategory::kFault);
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    arm_event_(plan_.events[i], i);
  }
}

void Injector::arm_event_(const FaultEvent& ev, std::size_t ordinal) {
  const auto skip = [&](const char* needs) {
    ++skipped_;
    OSNT_WARN("fault: skipping %s event %zu — no %s attached",
              fault_kind_name(ev.kind), ordinal, needs);
  };

  switch (ev.kind) {
    case FaultKind::kLinkFlap: {
      const auto targets = targets_(ev.link, ordinal);
      if (targets.empty()) return skip("matching link");
      eng_->schedule_at(ev.at, [this, targets, ev] {
        mark_(FaultKind::kLinkFlap, ev.at, ev.duration);
        for (sim::Link* l : targets) l->set_up(false);
      });
      eng_->schedule_at(ev.at + ev.duration, [targets] {
        for (sim::Link* l : targets) l->set_up(true);
      });
      return;
    }

    case FaultKind::kBerWindow: {
      const auto targets = targets_(ev.link, ordinal);
      if (targets.empty()) return skip("matching link");
      const std::uint64_t seed = event_seed(plan_.seed, ordinal);
      if (ev.ramp > 0) {
        // Linear ramp-in: step the rate up so early-window frames see a
        // gentler channel than the plateau — a link going marginal.
        for (int s = 0; s < kRampSteps; ++s) {
          const Picos t = ev.at + ev.ramp * s / kRampSteps;
          const double ber = ev.ber * (s + 1) / kRampSteps;
          eng_->schedule_at(t, [this, targets, ev, ber, seed, s] {
            if (s == 0) mark_(FaultKind::kBerWindow, ev.at, ev.duration);
            for (sim::Link* l : targets) l->set_bit_error_rate(ber, seed);
          });
        }
      } else {
        eng_->schedule_at(ev.at, [this, targets, ev, seed] {
          mark_(FaultKind::kBerWindow, ev.at, ev.duration);
          for (sim::Link* l : targets) l->set_bit_error_rate(ev.ber, seed);
        });
      }
      eng_->schedule_at(ev.at + ev.duration, [targets] {
        for (sim::Link* l : targets) l->set_bit_error_rate(0.0);
      });
      return;
    }

    case FaultKind::kLatencySpike: {
      const auto targets = targets_(ev.link, ordinal);
      if (targets.empty()) return skip("matching link");
      eng_->schedule_at(ev.at, [this, targets, ev] {
        mark_(FaultKind::kLatencySpike, ev.at, ev.duration);
        for (sim::Link* l : targets) l->set_extra_delay(ev.extra_delay);
      });
      eng_->schedule_at(ev.at + ev.duration, [targets] {
        for (sim::Link* l : targets) l->set_extra_delay(0);
      });
      return;
    }

    case FaultKind::kDmaStall: {
      if (!dma_) return skip("DMA engine");
      eng_->schedule_at(ev.at, [this, ev] {
        mark_(FaultKind::kDmaStall, ev.at, ev.duration);
        dma_->inject_stall(ev.duration);
      });
      return;
    }

    case FaultKind::kCtrlDisconnect: {
      if (!chan_) return skip("control channel");
      eng_->schedule_at(ev.at, [this, ev] {
        mark_(FaultKind::kCtrlDisconnect, ev.at, ev.duration);
        chan_->set_link_available(false);
      });
      eng_->schedule_at(ev.at + ev.duration,
                        [this] { chan_->set_link_available(true); });
      return;
    }

    case FaultKind::kGpsLoss: {
      if (!gps_) return skip("GPS model");
      eng_->schedule_at(ev.at, [this, ev] {
        mark_(FaultKind::kGpsLoss, ev.at, ev.duration);
        gps_->set_connected(false);
      });
      eng_->schedule_at(ev.at + ev.duration,
                        [this] { gps_->set_connected(true); });
      return;
    }

    case FaultKind::kRateLimit: {
      auto it = buckets_.find(ev.target);
      if (it == buckets_.end()) {
        throw PlanError(unknown_target_(ev, ordinal, /*buckets_only=*/true));
      }
      graph::TokenBucketBlock* tb = it->second;
      // Snapshot the pre-fault contract at arm time (before the run, so
      // these are the configured values) — the event restores them.
      const double orig_rate = tb->rate_gbps();
      const std::size_t orig_burst = tb->burst_bytes();
      if (ev.ramp > 0) {
        // Stepped reprovisioning: walk the rate from the current contract
        // to the fault plateau, same quantization as BER ramps — a
        // carrier squeezing a customer over seconds, not one cliff.
        for (int s = 0; s < kRampSteps; ++s) {
          const Picos t = ev.at + ev.ramp * s / kRampSteps;
          const double rate =
              orig_rate + (ev.rate_gbps - orig_rate) * (s + 1) / kRampSteps;
          eng_->schedule_at(t, [this, tb, ev, rate, s] {
            if (s == 0) {
              mark_(FaultKind::kRateLimit, ev.at, ev.duration);
              if (ev.burst_bytes >= 0) {
                tb->set_burst_bytes(static_cast<std::size_t>(ev.burst_bytes));
              }
            }
            tb->set_rate_gbps(rate);
          });
        }
      } else {
        eng_->schedule_at(ev.at, [this, tb, ev] {
          mark_(FaultKind::kRateLimit, ev.at, ev.duration);
          if (ev.burst_bytes >= 0) {
            tb->set_burst_bytes(static_cast<std::size_t>(ev.burst_bytes));
          }
          tb->set_rate_gbps(ev.rate_gbps);
        });
      }
      eng_->schedule_at(ev.at + ev.duration, [tb, orig_rate, orig_burst] {
        tb->set_rate_gbps(orig_rate);
        tb->set_burst_bytes(orig_burst);
      });
      return;
    }

    case FaultKind::kQueueCap: {
      // A cap can land on a serializing queue (fifo_queue / red) or on a
      // shaper's backlog (token_bucket) — whichever owns the name.
      if (auto it = queues_.find(ev.target); it != queues_.end()) {
        graph::FifoQueueBlock* q = it->second;
        const std::size_t orig = q->queue_frames();
        eng_->schedule_at(ev.at, [this, q, ev] {
          mark_(FaultKind::kQueueCap, ev.at, ev.duration);
          q->set_queue_frames(ev.queue_frames);
        });
        eng_->schedule_at(ev.at + ev.duration,
                          [q, orig] { q->set_queue_frames(orig); });
        return;
      }
      if (auto it = buckets_.find(ev.target); it != buckets_.end()) {
        graph::TokenBucketBlock* tb = it->second;
        const std::size_t orig = tb->queue_frames();
        eng_->schedule_at(ev.at, [this, tb, ev] {
          mark_(FaultKind::kQueueCap, ev.at, ev.duration);
          tb->set_queue_frames(ev.queue_frames);
        });
        eng_->schedule_at(ev.at + ev.duration,
                          [tb, orig] { tb->set_queue_frames(orig); });
        return;
      }
      throw PlanError(unknown_target_(ev, ordinal, /*buckets_only=*/false));
    }
  }
}

std::string Injector::unknown_target_(const FaultEvent& ev,
                                      std::size_t ordinal,
                                      bool buckets_only) const {
  std::vector<std::string> names;
  for (const auto& [name, tb] : buckets_) names.push_back(name);
  if (!buckets_only) {
    for (const auto& [name, q] : queues_) names.push_back(name);
  }
  std::string msg = std::string("fault plan: ") + fault_kind_name(ev.kind) +
                    " event " + std::to_string(ordinal) +
                    " targets unknown block '" + ev.target + "'";
  const std::string hint = suggest_nearest(ev.target, names);
  if (!hint.empty()) msg += " (did you mean '" + hint + "'?)";
  if (names.empty()) {
    msg += " — no ";
    msg += buckets_only ? "token_bucket" : "queue";
    msg += " blocks attached";
  } else {
    msg += " — attached: ";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i) msg += ", ";
      msg += names[i];
    }
  }
  return msg;
}

}  // namespace osnt::fault
