#include "osnt/tcp/congestion.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace osnt::tcp {
namespace {

std::uint64_t resolve_initial(const CcConfig& cfg) {
  return cfg.initial_cwnd ? cfg.initial_cwnd : std::uint64_t{10} * cfg.mss;
}

std::uint64_t resolve_min(const CcConfig& cfg, std::uint64_t floor_mss) {
  const std::uint64_t floor = floor_mss * cfg.mss;
  return cfg.min_cwnd ? std::max(cfg.min_cwnd, floor) : floor;
}

// How far above the policer BDP an adapted controller may keep in
// flight. A quarter-BDP of slack keeps the ACK clock alive through
// delivery-rate jitter without rebuilding the standing queue the
// adaptation exists to avoid; it also bounds post-adaptation RTT at
// ~1.25x min_rtt.
constexpr double kPolicerHeadroom = 1.25;


std::uint64_t policer_bdp_bytes(double rate_bps, Picos min_rtt,
                                std::uint64_t floor) {
  if (rate_bps <= 0.0 || min_rtt == 0) return ~std::uint64_t{0};
  const double bdp =
      rate_bps * static_cast<double>(min_rtt) / kPicosPerSec / 8.0;
  return std::max(static_cast<std::uint64_t>(kPolicerHeadroom * bdp), floor);
}

// ------------------------------------------------------------- NewReno
// RFC 5681 window arithmetic with appropriate-byte-counting: slow start
// below ssthresh (cwnd += bytes_acked), one MSS per cwnd-worth of ACKed
// bytes above it. Fast recovery keeps the halved window (no artificial
// inflation — the flow's go-back-N retransmit logic makes inflation moot).
class NewReno final : public CongestionControl {
 public:
  explicit NewReno(CcConfig cfg)
      : mss_(cfg.mss),
        min_cwnd_(resolve_min(cfg, 2)),
        cwnd_(resolve_initial(cfg)) {}

  void on_ack(const AckEvent& ev) override {
    if (cwnd_ < ssthresh_) {
      cwnd_ += ev.bytes_acked;  // slow start: doubles per RTT
      return;
    }
    acked_accum_ += ev.bytes_acked;
    while (acked_accum_ >= cwnd_) {  // congestion avoidance: +1 MSS / RTT
      acked_accum_ -= cwnd_;
      cwnd_ += mss_;
    }
  }

  void on_loss(Picos, std::uint64_t) override {
    ssthresh_ = std::max(cwnd_ / 2, min_cwnd_);
    cwnd_ = ssthresh_;
    acked_accum_ = 0;
  }

  void on_rto(Picos) override {
    ssthresh_ = std::max(cwnd_ / 2, min_cwnd_);
    cwnd_ = std::max<std::uint64_t>(mss_, 1);  // RFC 5681 LW = 1 segment
    acked_accum_ = 0;
  }

  [[nodiscard]] std::uint64_t cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] double pacing_rate_bps() const override { return 0.0; }
  [[nodiscard]] const char* name() const override { return "newreno"; }

 private:
  std::uint64_t mss_;
  std::uint64_t min_cwnd_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_ = ~std::uint64_t{0};
  std::uint64_t acked_accum_ = 0;
};

// ----------------------------------------------------------- CubicLite
// RFC 8312 window curve W(t) = C·(t−K)³ + W_max with β=0.7, C=0.4 (units
// of MSS and seconds). Keeps: the cubic growth function, the β multiplic-
// ative decrease, epoch reset on loss. Drops: TCP-friendliness region and
// fast convergence (single-flow sims don't need inter-flow fairness).
class CubicLite final : public CongestionControl {
 public:
  explicit CubicLite(CcConfig cfg)
      : mss_(cfg.mss),
        min_cwnd_(resolve_min(cfg, 2)),
        cwnd_(static_cast<double>(resolve_initial(cfg))) {}

  void on_ack(const AckEvent& ev) override {
    if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(ev.bytes_acked);
      return;
    }
    if (epoch_start_ == 0) {
      epoch_start_ = ev.now;
      const double wmax_mss = std::max(w_max_mss_, cwnd_ / mss_);
      w_max_mss_ = wmax_mss;
      k_ = std::cbrt(wmax_mss * (1.0 - kBeta) / kC);
    }
    const double t =
        static_cast<double>(ev.now - epoch_start_) / kPicosPerSec;
    const double target_mss = kC * std::pow(t - k_, 3.0) + w_max_mss_;
    const double cwnd_mss = cwnd_ / mss_;
    if (target_mss > cwnd_mss) {
      // Standard per-ACK increment: reach `target` in one RTT's worth of
      // ACKs (cwnd/mss of them).
      cwnd_ += mss_ * (target_mss - cwnd_mss) / cwnd_mss;
    } else {
      cwnd_ += mss_ * 0.01 / cwnd_mss;  // minimal growth in the plateau
    }
    if (policer_cap_ > 0.0) cwnd_ = std::min(cwnd_, policer_cap_);
  }

  void adapt_to_policer(double rate_bps, Picos min_rtt) override {
    if (rate_bps <= 0.0 || min_rtt == 0) {
      policer_cap_ = 0.0;  // verdict revoked: resume the cubic curve
      return;
    }
    const auto cap = policer_bdp_bytes(rate_bps, min_rtt, min_cwnd_);
    policer_cap_ = static_cast<double>(cap);
    // Pin the curve's plateau at the cap so the next epoch converges
    // there instead of re-probing the pre-policer W_max.
    cwnd_ = std::min(cwnd_, policer_cap_);
    ssthresh_ = std::min(ssthresh_, policer_cap_);
    w_max_mss_ = policer_cap_ / mss_;
    epoch_start_ = 0;
  }

  void on_loss(Picos, std::uint64_t) override {
    w_max_mss_ = cwnd_ / mss_;
    cwnd_ = std::max(cwnd_ * kBeta, static_cast<double>(min_cwnd_));
    ssthresh_ = cwnd_;
    epoch_start_ = 0;
  }

  void on_rto(Picos) override {
    w_max_mss_ = cwnd_ / mss_;
    ssthresh_ = std::max(cwnd_ * kBeta, static_cast<double>(min_cwnd_));
    cwnd_ = static_cast<double>(mss_);
    epoch_start_ = 0;
  }

  [[nodiscard]] std::uint64_t cwnd_bytes() const override {
    return static_cast<std::uint64_t>(cwnd_);
  }
  [[nodiscard]] double pacing_rate_bps() const override { return 0.0; }
  [[nodiscard]] const char* name() const override { return "cubic"; }

 private:
  static constexpr double kBeta = 0.7;
  static constexpr double kC = 0.4;

  double mss_;
  std::uint64_t min_cwnd_;
  double cwnd_;
  double ssthresh_ = 1e18;
  double w_max_mss_ = 0.0;
  double k_ = 0.0;
  Picos epoch_start_ = 0;
  double policer_cap_ = 0.0;  ///< 0 = no detected policer
};

// ------------------------------------------------------------- BbrLite
// Model-based control after R-TCP's rtcp_bbr.c (Linux BBRv1): the flow's
// rate is set from an explicit model — bottleneck bandwidth (windowed max
// of delivery-rate samples over the last 10 packet-timed rounds) and
// min_rtt — instead of from a loss-driven window. Gains are the BBRv1
// constants: 2/ln2 ≈ 2.885 in startup (doubles the sending rate per
// round), its inverse to drain the startup queue, then an 8-phase
// pacing-gain cycle [1.25, 0.75, 1×6] probing for more bandwidth.
// Keeps: the mode machine, windowed-max bw filter, full-bw plateau
// detection (3 rounds under 1.25× growth), BDP-derived cwnd, packet
// conservation on loss. Drops: probe_rtt mode, min_rtt window aging,
// cycle-phase randomization (determinism), long-term bw sampling.
class BbrLite final : public CongestionControl {
 public:
  explicit BbrLite(CcConfig cfg)
      : mss_(cfg.mss),
        min_cwnd_(resolve_min(cfg, 4)),  // bbr_cwnd_min_target = 4 packets
        initial_cwnd_(std::max(resolve_initial(cfg), resolve_min(cfg, 4))),
        cwnd_(initial_cwnd_) {}

  void on_ack(const AckEvent& ev) override {
    if (ev.rtt > 0) {
      min_rtt_ = min_rtt_ ? std::min(min_rtt_, ev.rtt) : ev.rtt;
    }
    if (ev.round_start) {
      ++round_;
      round_bw_[round_ % kBwWindowRounds] = 0.0;
      advance_mode(ev);
    }
    if (ev.delivery_rate_bps > 0.0) {
      double& slot = round_bw_[round_ % kBwWindowRounds];
      slot = std::max(slot, ev.delivery_rate_bps);
    }
    if (mode_ == Mode::kDrain && ev.bytes_in_flight <= bdp_bytes()) {
      mode_ = Mode::kProbeBw;
      cycle_idx_ = 0;
    }
    update_cwnd();
  }

  void on_loss(Picos, std::uint64_t bytes_in_flight) override {
    // Packet conservation with a 7/8 haircut: BBRv1 does not treat loss
    // as a congestion signal for the model, but recovery caps cwnd near
    // what is actually in flight (rtcp_bbr's bbr_set_cwnd recovery path,
    // minus the save/restore bookkeeping).
    const std::uint64_t target =
        std::max(bytes_in_flight - bytes_in_flight / 8, min_cwnd_);
    cwnd_ = std::min(cwnd_, target);
  }

  void on_rto(Picos) override {
    // An RTO means the pipe drained: the windowed bw samples taken while
    // the loop was stalled are not representative, so rebuild the model
    // from scratch like a restart-from-idle — back to startup with the
    // high gain (min_rtt survives; it is a property of the path).
    cwnd_ = min_cwnd_;
    mode_ = Mode::kStartup;
    full_bw_ = 0.0;
    full_bw_cnt_ = 0;
    cycle_idx_ = 0;
  }

  void adapt_to_policer(double rate_bps, Picos min_rtt) override {
    policer_rate_ = rate_bps;
    if (rate_bps <= 0.0) return;  // revoked: model rebuilds from samples
    if (min_rtt > 0) {
      min_rtt_ = min_rtt_ ? std::min(min_rtt_, min_rtt) : min_rtt;
    }
    // A policer defines the plateau: startup's 2.885x overshoot and
    // drain have nothing left to discover, so jump straight to the
    // probe cycle (at a cruise phase; phase 0's 1.25x probe comes
    // around on the normal cadence and is what re-tests the limiter).
    if (mode_ != Mode::kProbeBw) {
      mode_ = Mode::kProbeBw;
      cycle_idx_ = 2;
      full_bw_ = bw_bps();
      full_bw_cnt_ = 0;
    }
    cwnd_ = std::min(cwnd_, policer_cap_bytes());
  }

  [[nodiscard]] std::uint64_t cwnd_bytes() const override { return cwnd_; }

  [[nodiscard]] double pacing_rate_bps() const override {
    const double bw = bw_bps();
    if (bw <= 0.0) return 0.0;  // pre-model: burst the initial window
    return pacing_gain() * bw;
  }

  [[nodiscard]] const char* name() const override { return "bbr"; }

  /// The windowed-max bottleneck-bandwidth estimate (test seam).
  [[nodiscard]] double bw_estimate_bps() const { return bw_bps(); }
  [[nodiscard]] bool startup_done() const { return mode_ != Mode::kStartup; }

 private:
  enum class Mode { kStartup, kDrain, kProbeBw };

  static constexpr double kHighGain = 2.885;  // 2/ln2, BBRv1 startup gain
  static constexpr double kDrainGain = 1.0 / kHighGain;
  static constexpr double kCwndGain = 2.0;
  static constexpr double kFullBwThresh = 1.25;
  static constexpr int kFullBwRounds = 3;
  static constexpr int kBwWindowRounds = 10;  // bbr_bw_rtts = CYCLE_LEN + 2
  static constexpr std::array<double, 8> kCycleGain = {1.25, 0.75, 1.0, 1.0,
                                                       1.0,  1.0,  1.0, 1.0};

  [[nodiscard]] double bw_bps() const {
    // While a policer verdict stands it *is* the bandwidth model. The
    // windowed max is poisoned in both directions under a policer:
    // upward by recovery-aliased line-rate spikes (which re-ignite the
    // loss storm the adaptation exists to quell), downward by RTO
    // stalls (which would refuse the detector's probe epochs). The
    // detector re-parameterizes this on every verdict change, including
    // the temporary probe-epoch uplift.
    if (policer_rate_ > 0.0) return policer_rate_;
    double bw = 0.0;
    for (double b : round_bw_) bw = std::max(bw, b);
    return bw;
  }

  [[nodiscard]] std::uint64_t policer_cap_bytes() const {
    return policer_bdp_bytes(policer_rate_, min_rtt_, min_cwnd_);
  }

  [[nodiscard]] double pacing_gain() const {
    switch (mode_) {
      case Mode::kStartup: return kHighGain;
      case Mode::kDrain: return kDrainGain;
      case Mode::kProbeBw:
        // Adapted flows cruise at exactly the verdict: the gain cycle's
        // 1.25x round would shave drops off a standing policer every
        // cycle for nothing (release probing is the detector's job, on
        // its own cadence), and the 0.75x round would under-run it.
        return policer_rate_ > 0.0 ? 1.0 : kCycleGain[cycle_idx_];
    }
    return 1.0;
  }

  [[nodiscard]] std::uint64_t bdp_bytes() const {
    const double bw = bw_bps();
    if (bw <= 0.0 || min_rtt_ == 0) return initial_cwnd_;
    return static_cast<std::uint64_t>(
        bw * static_cast<double>(min_rtt_) / kPicosPerSec / 8.0);
  }

  void advance_mode(const AckEvent&) {
    switch (mode_) {
      case Mode::kStartup: {
        const double bw = bw_bps();
        if (bw >= full_bw_ * kFullBwThresh) {
          full_bw_ = bw;
          full_bw_cnt_ = 0;
        } else if (full_bw_ > 0.0 && ++full_bw_cnt_ >= kFullBwRounds) {
          mode_ = Mode::kDrain;  // bw plateaued: pipe is full
        }
        break;
      }
      case Mode::kDrain:
        break;  // exits on the inflight <= BDP check in on_ack
      case Mode::kProbeBw:
        cycle_idx_ = (cycle_idx_ + 1) % kCycleGain.size();
        break;
    }
  }

  void update_cwnd() {
    const double gain = mode_ == Mode::kStartup ? kHighGain : kCwndGain;
    const std::uint64_t target = std::max(
        static_cast<std::uint64_t>(gain * static_cast<double>(bdp_bytes())),
        min_cwnd_);
    if (bw_bps() <= 0.0) {
      cwnd_ = std::max(cwnd_, initial_cwnd_);
      return;
    }
    // Grow toward the model target (at most one step per ACK keeps the
    // post-RTO rebuild gradual, like bbr's cwnd += acked ramp).
    cwnd_ = cwnd_ < target ? std::min(cwnd_ + mss_, target) : target;
    if (policer_rate_ > 0.0) cwnd_ = std::min(cwnd_, policer_cap_bytes());
  }

  std::uint64_t mss_;
  std::uint64_t min_cwnd_;
  std::uint64_t initial_cwnd_;
  std::uint64_t cwnd_;
  Mode mode_ = Mode::kStartup;
  std::uint64_t round_ = 0;
  std::array<double, kBwWindowRounds> round_bw_{};
  Picos min_rtt_ = 0;
  double full_bw_ = 0.0;
  int full_bw_cnt_ = 0;
  std::size_t cycle_idx_ = 0;
  double policer_rate_ = 0.0;  ///< detected policer rate; 0 = none
};

}  // namespace

std::unique_ptr<CongestionControl> make_congestion_control(
    const std::string& name, CcConfig cfg) {
  if (name == "newreno") return std::make_unique<NewReno>(cfg);
  if (name == "cubic") return std::make_unique<CubicLite>(cfg);
  if (name == "bbr") return std::make_unique<BbrLite>(cfg);
  throw std::invalid_argument("unknown congestion control: " + name +
                              " (expected newreno|cubic|bbr)");
}

}  // namespace osnt::tcp
