#include "osnt/tcp/flow.hpp"

#include <string>

#include "osnt/common/random.hpp"
#include "osnt/mon/latency_probe.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/net/tcp_options.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt::tcp {
namespace {

std::uint32_t tsval_now(Picos now) {
  // Timestamps tick in nanoseconds of sim time: coarse enough to fit the
  // 32-bit option field for seconds-long sims (wrap-aware subtraction
  // handles longer), fine enough to resolve the microsecond RTTs a
  // back-to-back 10G testbed produces.
  return static_cast<std::uint32_t>(now / kPicosPerNano);
}

}  // namespace

Flow::Flow(sim::Engine& eng, FlowConfig cfg, SegmentEmitter emit)
    : eng_(&eng),
      cfg_(std::move(cfg)),
      emit_(std::move(emit)),
      cc_(make_congestion_control(
          cfg_.cc, CcConfig{.mss = cfg_.mss})),
      rld_(cfg_.rate_limit_detector
               ? std::make_unique<RateLimitDetector>(cfg_.rld)
               : nullptr),
      rto_(cfg_.min_rto, cfg_.max_rto),
      isn_(static_cast<std::uint32_t>(derive_seed(cfg_.seed, 1))) {}

Flow::~Flow() {
  if (pace_timer_) eng_->cancel(pace_timer_);
  if (rto_timer_) eng_->cancel(rto_timer_);
  if (!telemetry::enabled() || stats_.segs_sent == 0) return;
  auto& reg = telemetry::registry();
  reg.counter("tcp.segs_sent").add(stats_.segs_sent);
  reg.counter("tcp.bytes_sent").add(stats_.bytes_sent);
  reg.counter("tcp.bytes_acked").add(stats_.bytes_acked);
  reg.counter("tcp.acks_received").add(stats_.acks_received);
  reg.counter("tcp.dup_acks").add(stats_.dup_acks);
  reg.counter("tcp.retransmits").add(stats_.retransmits);
  reg.counter("tcp.rto_fires").add(stats_.rto_fires);
  reg.counter("tcp.fast_retx").add(stats_.fast_retx);
  reg.counter("tcp.cwnd_reductions").add(stats_.cwnd_reductions);
  reg.counter("tcp.emit_rejects").add(stats_.emit_rejects);
  reg.histogram("tcp.cwnd_bytes").merge(cwnd_hist_);
  reg.histogram("tcp.srtt_ns").merge(srtt_hist_);
  reg.histogram("tcp.delivery_rate_bps").merge(rate_hist_);
  if (rld_ && (rld_->detections() > 0 || rld_->releases() > 0)) {
    reg.counter("tcp.rld.detections").add(rld_->detections());
    reg.counter("tcp.rld.releases").add(rld_->releases());
    reg.histogram("tcp.rld.detected_rate_mbps").merge(rld_rate_hist_);
    reg.histogram("tcp.rld.time_to_detect_us").merge(rld_ttd_hist_);
  }
}

void Flow::start() {
  delivered_time_ = eng_->now();
  note_cwnd(eng_->now());
  try_send();
}

std::int64_t Flow::unwrap_ack(std::uint32_t ack32) const {
  // The cumulative ACK is within ±2^31 of snd_una on any sane path, so a
  // signed 32-bit difference against snd_una's wire sequence unwraps it.
  const std::int32_t diff =
      static_cast<std::int32_t>(ack32 - seq32_of(snd_una_));
  return static_cast<std::int64_t>(snd_una_) + diff;
}

void Flow::on_ack(const net::TcpHeader& hdr, std::uint32_t peer_tsval,
                  std::uint32_t tsecr, Picos now) {
  ++stats_.acks_received;
  if (peer_tsval != 0) last_tsecr_seen_ = peer_tsval;
  const std::int64_t ack_abs = unwrap_ack(hdr.ack);

  if (ack_abs > static_cast<std::int64_t>(snd_una_)) {
    const auto ack_off = static_cast<std::uint64_t>(ack_abs);
    const std::uint64_t newly = ack_off - snd_una_;
    snd_una_ = ack_off;
    if (snd_nxt_ < snd_una_) {
      // After an RTO rolled snd_nxt back to snd_una (go-back-N), an ACK
      // for the original transmissions — or the receiver's below-window
      // re-ACK carrying the full rcv_nxt — can land beyond snd_nxt.
      // Without the clamp, snd_nxt - snd_una underflows: the window
      // check never opens, the RTO never re-arms, and the flow
      // deadlocks. All data below snd_una is delivered, so recovery is
      // over too.
      snd_nxt_ = snd_una_;
      in_recovery_ = false;
    }
    delivered_ += newly;
    delivered_time_ = now;
    stats_.bytes_acked += newly;
    dup_acks_ = 0;

    Picos rtt = 0;
    if (tsecr != 0) {
      rtt = static_cast<Picos>(
                static_cast<std::uint32_t>(tsval_now(now) - tsecr)) *
            kPicosPerNano;
      if (rtt > 0) {
        rto_.sample(rtt);
        // In-plane RTT probe: the identical sample stream the RTO
        // estimator consumes, binned by the flow's traffic class.
        if (cfg_.rtt_probe) {
          cfg_.rtt_probe->observe(
              static_cast<std::uint64_t>(rtt / kPicosPerNano), cfg_.dscp);
        }
      }
    }

    // Delivery-rate sample, anchored at the send of the newest segment
    // this ACK covers (BBR-style delivered-delta over elapsed time).
    bool round_start = false;
    double rate = 0.0;
    bool have_anchor = false;
    SegRec anchor{};
    while (!inflight_.empty() &&
           inflight_.front().offset + inflight_.front().len <= ack_off) {
      anchor = inflight_.front();
      have_anchor = true;
      inflight_.pop_front();
    }
    if (have_anchor) {
      if (anchor.delivered_at_send >= round_mark_) {
        round_start = true;  // a full packet-timed round elapsed
        round_mark_ = delivered_;
        ++round_count_;
      }
      if (now > anchor.delivered_time_at_send) {
        rate = static_cast<double>(delivered_ - anchor.delivered_at_send) *
               8.0 * static_cast<double>(kPicosPerSec) /
               static_cast<double>(now - anchor.delivered_time_at_send);
        last_rate_bps_ = rate;
        // Windowed max over the last 10 rounds (monotone deque).
        while (!rate_window_.empty() && rate_window_.back().second <= rate) {
          rate_window_.pop_back();
        }
        rate_window_.emplace_back(round_count_, rate);
        while (!rate_window_.empty() &&
               rate_window_.front().first + 10 < round_count_) {
          rate_window_.pop_front();
        }
      }
    }

    const bool was_in_recovery = in_recovery_;
    if (in_recovery_) {
      if (ack_off >= recover_point_) {
        in_recovery_ = false;
      } else if (snd_nxt_ > snd_una_) {
        // NewReno-style partial ACK: the next hole is at snd_una — resend
        // one segment per partial ACK (go-back-N, one step at a time).
        const auto len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(cfg_.mss, snd_nxt_ - snd_una_));
        emit_segment(snd_una_, len, /*in_place=*/true);
      }
    }

    cc_->on_ack(AckEvent{.now = now,
                         .bytes_acked = newly,
                         .bytes_in_flight = snd_nxt_ - snd_una_,
                         .rtt = rtt,
                         .delivery_rate_bps = rate,
                         .round_start = round_start});
    // Rate-limit detection rides the same estimator state the controller
    // just consumed (recovery-tainted samples zeroed — one hole-filling
    // cumulative ACK aliases into a multi-Gb/s spike). A verdict change
    // — detection, release, or release-probe epoch boundary —
    // re-parameterizes the controller.
    if (rld_) {
      const auto dets = rld_->detections();
      const auto rels = rld_->releases();
      if (rld_->on_ack(now, was_in_recovery ? 0.0 : rate, rtt,
                       delivered_)) {
        cc_->adapt_to_policer(
            rld_->detected() ? rld_->detected_rate_bps() : 0.0,
            rld_->min_rtt());
        const bool fresh_detect = rld_->detections() != dets;
        if (fresh_detect) {
          rld_rate_hist_.record(
              static_cast<std::uint64_t>(rld_->verdict_rate_bps() / 1e6));
          rld_ttd_hist_.record(static_cast<std::uint64_t>(
              rld_->detect_time() / kPicosPerMicro));
        }
        if (trace_track_set_ && (fresh_detect || rld_->releases() != rels)) {
          if (auto* tr = eng_->trace()) {
            tr->instant(trace_track_,
                        fresh_detect ? "rld_detect" : "rld_release", now);
          }
        }
      }
    }
    note_cwnd(now);

    // RFC 6298 (5.3): restart the retransmission timer on new data acked.
    if (rto_timer_) {
      eng_->cancel(rto_timer_);
      rto_timer_ = {};
    }
    try_send();
    return;
  }

  if (ack_abs == static_cast<std::int64_t>(snd_una_) &&
      snd_nxt_ > snd_una_) {
    ++stats_.dup_acks;
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_) {
      // Fast retransmit: resend the first unacked segment once and let
      // the controller halve (or conserve) the window.
      in_recovery_ = true;
      recover_point_ = snd_nxt_;
      ++stats_.fast_retx;
      if (rld_) rld_->on_loss();
      const std::uint64_t before = cc_->cwnd_bytes();
      cc_->on_loss(now, snd_nxt_ - snd_una_);
      if (cc_->cwnd_bytes() < before) ++stats_.cwnd_reductions;
      const auto len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(cfg_.mss, snd_nxt_ - snd_una_));
      emit_segment(snd_una_, len, /*in_place=*/true);
      note_cwnd(now);
      if (trace_track_set_) {
        if (auto* tr = eng_->trace()) {
          tr->instant(trace_track_, "fast_retx", now);
        }
      }
      try_send();
    }
  }
}

void Flow::try_send() {
  const Picos now = eng_->now();
  const std::uint64_t wnd =
      std::min<std::uint64_t>(cc_->cwnd_bytes(), cfg_.rwnd_bytes);
  while (!done()) {
    const std::uint64_t remaining =
        cfg_.bytes_to_send == 0
            ? cfg_.mss
            : (cfg_.bytes_to_send > snd_nxt_ ? cfg_.bytes_to_send - snd_nxt_
                                             : 0);
    if (remaining == 0) break;
    const auto len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(cfg_.mss, remaining));
    if (snd_nxt_ - snd_una_ + len > wnd) break;  // window closed

    const double pace = cc_->pacing_rate_bps();
    if (pace > 0.0 && now < pace_next_) {
      if (!pace_timer_) {
        const sim::Engine::CategoryScope cat(*eng_,
                                             sim::EventCategory::kTcp);
        // Bulk class: pacing gaps above the wheel tick (~65 ns) sit in
        // O(1) buckets; sub-tick gaps spill to the heap automatically.
        pace_timer_ = eng_->schedule_bulk_in(pace_next_ - now, [this] {
          pace_timer_ = {};
          try_send();
        });
      }
      break;
    }

    emit_segment(snd_nxt_, len, /*in_place=*/false);
    snd_nxt_ += len;
    if (snd_nxt_ > max_sent_) max_sent_ = snd_nxt_;
    if (pace > 0.0) {
      const auto gap = static_cast<Picos>(
          static_cast<double>(last_line_len_) * 8.0 *
          static_cast<double>(kPicosPerSec) / pace);
      pace_next_ = std::max(now, pace_next_) + gap;
    }
  }
  if (snd_nxt_ > snd_una_ && !rto_timer_) arm_rto();
}

void Flow::emit_segment(std::uint64_t offset, std::uint32_t len,
                        bool in_place) {
  const Picos now = eng_->now();
  ++stats_.segs_sent;
  stats_.bytes_sent += len;
  if (offset < max_sent_) ++stats_.retransmits;

  if (in_place) {
    // Fast-retransmit / partial-ack resend: refresh the existing record's
    // rate-sample anchors so a post-recovery sample is not computed
    // against the stale original send.
    if (!inflight_.empty() && inflight_.front().offset == offset) {
      SegRec& r = inflight_.front();
      r.sent_time = now;
      r.delivered_at_send = delivered_;
      r.delivered_time_at_send = delivered_time_;
    }
  } else {
    inflight_.push_back(SegRec{offset, len, now, delivered_,
                               delivered_time_ == 0 ? now : delivered_time_});
  }

  // Drop-early fast path: when the bottleneck buffer is already full the
  // frame would be serialized only to be tail-dropped at offer(). Skip
  // the build — the preflight records the drop exactly as a refused
  // offer would, and the sender-side accounting above is identical. The
  // line-length overhead is self-calibrated from the first real build
  // (headers are fixed-size per flow), so pacing sees the same lengths.
  if (line_overhead_ != 0 && preflight_ && !preflight_()) {
    last_line_len_ = line_overhead_ + len;
    ++stats_.emit_rejects;
    return;
  }

  net::PacketBuilder b;
  b.eth(cfg_.src_mac, cfg_.dst_mac)
      .ipv4(cfg_.src_ip, cfg_.dst_ip, net::ipproto::kTcp, /*ttl=*/64,
            cfg_.dscp)
      .tcp(cfg_.src_port, cfg_.dst_port, seq32_of(offset), 0,
           net::TcpFlags::kAck | net::TcpFlags::kPsh)
      .tcp_options(
          {net::tcp_option_timestamps(tsval_now(now), last_tsecr_seen_)});
  const Bytes payload(len, 0);
  b.payload(payload);
  net::Packet pkt = b.build();
  last_line_len_ = pkt.line_len();
  line_overhead_ = pkt.line_len() - len;

  if (!emit_(std::move(pkt))) ++stats_.emit_rejects;
}

void Flow::arm_rto() {
  if (rto_timer_) {
    eng_->cancel(rto_timer_);
    rto_timer_ = {};
  }
  if (snd_nxt_ <= snd_una_) return;
  const sim::Engine::CategoryScope cat(*eng_, sim::EventCategory::kTcp);
  // RTOs are the canonical bulk timer: one per flow, almost always
  // cancelled (by the next cumulative ACK) before firing — exactly the
  // schedule/cancel churn the wheel makes O(1).
  rto_timer_ = eng_->schedule_bulk_in(rto_.rto(), [this] {
    rto_timer_ = {};
    on_rto_fire();
  });
}

void Flow::on_rto_fire() {
  if (snd_nxt_ <= snd_una_) return;
  const Picos now = eng_->now();
  ++stats_.rto_fires;
  rto_.backoff();
  if (rld_) rld_->on_loss();
  cc_->on_rto(now);
  // An RTO collapses the window to the controller's floor by contract;
  // count the event even when decay already had cwnd sitting there.
  ++stats_.cwnd_reductions;

  // Go-back-N: everything past the cumulative ACK is presumed lost and
  // will be resent from snd_una as the (collapsed) window allows.
  snd_nxt_ = snd_una_;
  inflight_.clear();
  dup_acks_ = 0;
  in_recovery_ = false;
  pace_next_ = 0;
  note_cwnd(now);
  if (trace_track_set_) {
    if (auto* tr = eng_->trace()) tr->instant(trace_track_, "rto", now);
  }
  try_send();  // re-arms the (backed-off) timer
}

void Flow::note_cwnd(Picos now) {
  cwnd_hist_.record(cc_->cwnd_bytes());
  if (rto_.srtt() > 0) {
    srtt_hist_.record(
        static_cast<std::uint64_t>(rto_.srtt() / kPicosPerNano));
  }
  if (last_rate_bps_ > 0.0) {
    rate_hist_.record(static_cast<std::uint64_t>(last_rate_bps_));
  }
  if (auto* tr = eng_->trace()) {
    if (!trace_track_set_) {
      trace_track_ = tr->track("tcp/" + std::to_string(cfg_.flow_id));
      trace_track_set_ = true;
    }
    tr->counter(trace_track_, "cwnd_bytes", now, cc_->cwnd_bytes());
    if (rto_.srtt() > 0) {
      tr->counter(trace_track_, "srtt_ns", now,
                  static_cast<std::uint64_t>(rto_.srtt() / kPicosPerNano));
    }
  }
}

}  // namespace osnt::tcp
