#include "osnt/tcp/workload.hpp"

#include <algorithm>
#include <stdexcept>

#include "osnt/common/random.hpp"
#include "osnt/hw/port.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/net/parser.hpp"
#include "osnt/net/tcp_options.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt::tcp {
namespace {

std::uint32_t tsval_now(Picos now) {
  return static_cast<std::uint32_t>(now / kPicosPerNano);
}

/// tsval/tsecr of the frame's timestamps option ({0,0} when absent).
std::pair<std::uint32_t, std::uint32_t> frame_timestamps(
    const net::ParsedPacket& p, const net::Packet& pkt) {
  const std::size_t hdr = p.tcp.header_len();
  if (hdr <= net::TcpHeader::kMinSize) return {0, 0};
  const std::size_t opt_off = p.l4_offset + net::TcpHeader::kMinSize;
  if (opt_off + (hdr - net::TcpHeader::kMinSize) > pkt.size()) return {0, 0};
  const auto opts = net::parse_tcp_options(
      pkt.bytes().subspan(opt_off, hdr - net::TcpHeader::kMinSize));
  if (!opts) return {0, 0};
  const auto ts = net::tcp_timestamps_of(*opts);
  return ts ? *ts : std::pair<std::uint32_t, std::uint32_t>{0, 0};
}

}  // namespace

ClosedLoopWorkload::ClosedLoopWorkload(sim::Engine& eng,
                                       core::OsntDevice& dev,
                                       WorkloadConfig cfg)
    : eng_(&eng), dev_(&dev), cfg_(std::move(cfg)) {
  if (cfg_.flows == 0) throw std::invalid_argument("tcp: flows must be > 0");
  if (cfg_.flows > kMaxFlows) {
    throw std::invalid_argument(
        "tcp: flows exceeds the addressing scheme's capacity (" +
        std::to_string(kMaxFlows) + ")");
  }
  if (cfg_.tx_port == cfg_.rx_port) {
    throw std::invalid_argument("tcp: tx_port and rx_port must differ");
  }
  eng_->set_wheel_enabled(cfg_.wheel_timers && !cfg_.legacy_hot_path);

  gen::TxConfig txcfg;
  txcfg.rate = cfg_.bottleneck_gbps > 0.0
                   ? gen::RateSpec::gbps(cfg_.bottleneck_gbps)
                   : gen::RateSpec::line_rate(1.0);
  // Timestamp embedding would overwrite TCP header bytes at offset 42;
  // TCP RTTs come from the timestamps option instead.
  txcfg.embed_timestamp = false;
  txcfg.seed = derive_seed(cfg_.seed, 0xBEEF);
  gen::TxPipeline& txp = dev_->configure_tx(cfg_.tx_port, txcfg);
  auto src = std::make_unique<gen::ClosedLoopSource>(cfg_.queue_segments);
  source_ = src.get();
  src->set_kick([&txp] { txp.kick(); });
  txp.set_source(std::move(src));

  dev_->rx(cfg_.tx_port).set_capture_enabled(cfg_.capture);
  dev_->rx(cfg_.rx_port).set_capture_enabled(cfg_.capture);

  flow_handles_.reserve(cfg_.flows);
  recv_hot_.resize(cfg_.flows);
  recv_cold_.resize(cfg_.flows);
  for (std::size_t i = 0; i < cfg_.flows; ++i) {
    FlowConfig fc;
    fc.flow_id = static_cast<std::uint32_t>(i);
    fc.src_mac = net::MacAddr::from_index(0x0A000000u + i);
    fc.dst_mac = net::MacAddr::from_index(0x0B000000u + i);
    fc.src_ip = sender_ip_of(i);
    fc.dst_ip = receiver_ip_of(i);
    fc.src_port = sender_port_of(i);
    fc.dst_port = receiver_port_of(i);
    fc.mss = cfg_.mss;
    fc.bytes_to_send = cfg_.bytes_per_flow;
    fc.rwnd_bytes = cfg_.rwnd_bytes;
    fc.seed = derive_seed(cfg_.seed, i + 1);
    fc.cc = cfg_.cc;
    fc.min_rto = cfg_.min_rto;
    fc.max_rto = cfg_.max_rto;
    // Round-robin traffic classes across flows; every segment carries
    // the class in its DSCP bits so in-plane monitor probes can bin it,
    // and the flow's RTT samples land in the shared probe's class bin.
    fc.dscp = static_cast<std::uint8_t>(i & mon::LatencyProbe::kClassMask);
    fc.rtt_probe = &rtt_probe_;
    fc.rate_limit_detector = cfg_.rate_limit_detector;
    const auto h = flows_.emplace(*eng_, fc, [this](net::Packet&& pkt) {
      return source_->offer(std::move(pkt));
    });
    // Dense creation on a fresh slab: slot == flow index, which the O(1)
    // demux and the flow(i) accessor both rely on.
    if (h.slot != i) throw std::logic_error("tcp: flow slab not dense");
    // Drop-early admission probe: under congestion (the common case at
    // 10k+ flows sharing one bottleneck buffer) senders skip serializing
    // frames the queue would tail-drop anyway; the probe records the
    // drop so queue_drops telemetry is identical to built-then-dropped.
    if (!cfg_.legacy_hot_path) {
      flows_[h.slot].set_emit_preflight([this] {
        if (!source_->full()) return true;
        source_->note_tail_drop();
        return false;
      });
    }
    flow_handles_.push_back(h);
    recv_hot_[i].isn = flows_[h.slot].isn();
  }

  dev_->rx(cfg_.rx_port).set_tap(
      [this](const net::ParsedPacket& p, const net::Packet& pkt,
             Picos first_bit) { on_data_frame(p, pkt, first_bit); });
  dev_->rx(cfg_.tx_port).set_tap(
      [this](const net::ParsedPacket& p, const net::Packet& pkt,
             Picos first_bit) { on_ack_frame(p, pkt, first_bit); });
}

ClosedLoopWorkload::~ClosedLoopWorkload() {
  for (ReceiverHot& st : recv_hot_) {
    if (st.delack_timer) {
      eng_->cancel(st.delack_timer);  // O(1) wheel unlink when routed there
      st.delack_timer = {};
    }
  }
  dev_->rx(cfg_.rx_port).set_tap(nullptr);
  dev_->rx(cfg_.tx_port).set_tap(nullptr);

  if (telemetry::enabled() && total_acks_sent() + source_->offered() > 0) {
    auto& reg = telemetry::registry();
    reg.counter("tcp.acks_sent").add(total_acks_sent());
    reg.counter("tcp.ooo_segs").add(total_ooo_segs());
    reg.counter("tcp.queue_drops").add(source_->drops());
    reg.counter("tcp.delack.cancels_saved").add(delack_cancels_saved_);
    rtt_probe_.flush("tcp.");
  }
}

void ClosedLoopWorkload::start() {
  dev_->tx(cfg_.tx_port).start();
  for (const auto& h : flow_handles_) flows_[h.slot].start();
}

void ClosedLoopWorkload::on_data_frame(const net::ParsedPacket& p,
                                       const net::Packet& pkt,
                                       Picos first_bit) {
  if (p.l4 != net::L4Kind::kTcp || p.l3 != net::L3Kind::kIpv4) return;
  const std::size_t idx = flow_index_of_data(p.ipv4.dst, p.tcp.dst_port);
  if (idx >= recv_hot_.size()) return;
  ReceiverHot& st = recv_hot_[idx];

  const std::size_t l3_len = p.ipv4.total_length;
  const std::size_t hdrs = p.ipv4.header_len() + p.tcp.header_len();
  if (l3_len <= hdrs) return;  // no payload (stray pure ACK)
  const std::uint64_t len = l3_len - hdrs;

  const auto [tsval, tsecr] = frame_timestamps(p, pkt);
  (void)tsecr;  // the data direction's echo is unused by the receiver

  // Unwrap the 32-bit wire sequence against the reassembly point.
  const auto diff = static_cast<std::int32_t>(
      p.tcp.seq - (st.isn + static_cast<std::uint32_t>(st.rcv_nxt)));
  const std::int64_t seq_abs = static_cast<std::int64_t>(st.rcv_nxt) + diff;
  if (seq_abs < 0) return;
  const auto seq = static_cast<std::uint64_t>(seq_abs);
  const std::uint64_t seq_end = seq + len;

  if (seq <= st.rcv_nxt && seq_end > st.rcv_nxt) {
    // In-order (or overlapping) advance; absorb any now-contiguous
    // out-of-order intervals. The ooo set lives in the cold half and is
    // only consulted while a loss episode is open.
    st.rcv_nxt = seq_end;
    st.bytes_in_order += len;
    if (tsval != 0) st.last_tsval = tsval;
    ReceiverCold& cold = recv_cold_[idx];
    if (!cold.ooo.empty()) {
      for (auto o = cold.ooo.begin();
           o != cold.ooo.end() && o->first <= st.rcv_nxt;) {
        st.rcv_nxt = std::max(st.rcv_nxt, o->second);
        o = cold.ooo.erase(o);
      }
    }
    ++st.pending_ack_segs;
    if (st.pending_ack_segs >= 2) {  // RFC 1122: ACK every 2nd segment
      send_ack(idx, first_bit);
    } else {
      schedule_delack(idx);
    }
    return;
  }

  ReceiverCold& cold = recv_cold_[idx];
  if (seq > st.rcv_nxt) {
    // Hole: stash the interval and send an immediate duplicate ACK so
    // the sender's dup-ACK counter can reach the fast-retransmit
    // threshold.
    ++cold.ooo_segs;
    auto [o, inserted] = cold.ooo.emplace(seq, seq_end);
    if (!inserted) o->second = std::max(o->second, seq_end);
    send_ack(idx, first_bit);
    return;
  }

  // Entirely below the window: a spurious (go-back-N) retransmit of data
  // already received. Re-ACK immediately so the sender advances. Per
  // RFC 7323 the retransmit's tsval becomes TS.Recent (SEG.SEQ ≤
  // Last.ACK.sent), so the echoed TSecr dates from this arrival — an
  // echo of the pre-outage tsval would inflate the sender's RTT sample
  // by the whole loss episode and blow SRTT/RTO toward max_rto.
  ++cold.below_window_segs;
  if (tsval != 0) st.last_tsval = tsval;
  send_ack(idx, first_bit);
}

void ClosedLoopWorkload::send_ack(std::size_t idx, Picos now) {
  ReceiverHot& st = recv_hot_[idx];
  st.pending_ack_segs = 0;
  // Lazy delayed-ACK discipline: an armed timer is left armed. It fires
  // with pending_ack_segs == 0 and re-arms nothing — one no-op event
  // instead of a cancel + re-arm pair per ACKed segment. (The timer can
  // also fire "early" relative to the newest segment; that only makes an
  // ACK less delayed, which RFC 1122 always allows.)
  if (st.delack_timer) {
    if (cfg_.legacy_hot_path) {
      eng_->cancel(st.delack_timer);
      st.delack_timer = {};
    } else {
      ++delack_cancels_saved_;
    }
  }

  const FlowConfig& fc = flows_[static_cast<std::uint32_t>(idx)].config();
  net::PacketBuilder b;
  b.eth(fc.dst_mac, fc.src_mac)
      .ipv4(fc.dst_ip, fc.src_ip, net::ipproto::kTcp, /*ttl=*/64, fc.dscp)
      .tcp(fc.dst_port, fc.src_port, /*seq=*/0,
           st.isn + static_cast<std::uint32_t>(st.rcv_nxt),
           net::TcpFlags::kAck)
      .tcp_options(
          {net::tcp_option_timestamps(tsval_now(now), st.last_tsval)});
  net::Packet ack = b.build();

  const sim::Engine::CategoryScope cat(*eng_, sim::EventCategory::kTcp);
  (void)dev_->port(cfg_.rx_port).tx().transmit(std::move(ack));
  ++st.acks_sent;
}

void ClosedLoopWorkload::schedule_delack(std::size_t idx) {
  ReceiverHot& st = recv_hot_[idx];
  if (st.delack_timer) return;  // one armed timer per flow, ever
  const sim::Engine::CategoryScope cat(*eng_, sim::EventCategory::kTcp);
  st.delack_timer =
      eng_->schedule_bulk_in(cfg_.delayed_ack_timeout, [this, idx] {
        ReceiverHot& s = recv_hot_[idx];
        s.delack_timer = {};
        if (s.pending_ack_segs > 0) send_ack(idx, eng_->now());
      });
}

void ClosedLoopWorkload::on_ack_frame(const net::ParsedPacket& p,
                                      const net::Packet& pkt,
                                      Picos first_bit) {
  if (p.l4 != net::L4Kind::kTcp || p.l3 != net::L3Kind::kIpv4) return;
  if ((p.tcp.flags & net::TcpFlags::kAck) == 0) return;
  const std::size_t idx = flow_index_of_ack(p.ipv4.dst, p.tcp.dst_port);
  if (idx >= flow_handles_.size()) return;
  const auto [tsval, tsecr] = frame_timestamps(p, pkt);
  flows_[static_cast<std::uint32_t>(idx)].on_ack(p.tcp, tsval, tsecr,
                                                 first_bit);
}

std::uint64_t ClosedLoopWorkload::total_bytes_acked() const {
  std::uint64_t v = 0;
  for (const auto& h : flow_handles_) v += flows_[h.slot].stats().bytes_acked;
  return v;
}
std::uint64_t ClosedLoopWorkload::total_retransmits() const {
  std::uint64_t v = 0;
  for (const auto& h : flow_handles_) v += flows_[h.slot].stats().retransmits;
  return v;
}
std::uint64_t ClosedLoopWorkload::total_rto_fires() const {
  std::uint64_t v = 0;
  for (const auto& h : flow_handles_) v += flows_[h.slot].stats().rto_fires;
  return v;
}
std::uint64_t ClosedLoopWorkload::total_fast_retx() const {
  std::uint64_t v = 0;
  for (const auto& h : flow_handles_) v += flows_[h.slot].stats().fast_retx;
  return v;
}
std::uint64_t ClosedLoopWorkload::total_cwnd_reductions() const {
  std::uint64_t v = 0;
  for (const auto& h : flow_handles_) {
    v += flows_[h.slot].stats().cwnd_reductions;
  }
  return v;
}
std::uint64_t ClosedLoopWorkload::total_acks_sent() const {
  std::uint64_t v = 0;
  for (const auto& r : recv_hot_) v += r.acks_sent;
  return v;
}
std::uint64_t ClosedLoopWorkload::total_ooo_segs() const {
  std::uint64_t v = 0;
  for (const auto& r : recv_cold_) v += r.ooo_segs;
  return v;
}

std::uint64_t ClosedLoopWorkload::total_rld_detections() const {
  std::uint64_t v = 0;
  for (const auto& h : flow_handles_) {
    if (const auto* d = flows_[h.slot].rate_limit_detector()) {
      v += d->detections();
    }
  }
  return v;
}

double ClosedLoopWorkload::mean_rld_rate_bps() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& h : flow_handles_) {
    const auto* d = flows_[h.slot].rate_limit_detector();
    if (d && d->detected()) {
      sum += d->detected_rate_bps();
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

Picos ClosedLoopWorkload::mean_rld_detect_time() const {
  Picos sum = 0;
  std::size_t n = 0;
  for (const auto& h : flow_handles_) {
    const auto* d = flows_[h.slot].rate_limit_detector();
    if (d && d->detections() > 0) {
      sum += d->detect_time();
      ++n;
    }
  }
  return n ? sum / static_cast<Picos>(n) : 0;
}

double ClosedLoopWorkload::goodput_bps(Picos window) const {
  if (window <= 0) return 0.0;
  return static_cast<double>(total_bytes_acked()) * 8.0 *
         static_cast<double>(kPicosPerSec) / static_cast<double>(window);
}

ClosedLoopTestbed::ClosedLoopTestbed(const WorkloadConfig& cfg,
                                     const fault::FaultPlan* plan,
                                     telemetry::TraceRecorder* trace)
    : dev_(eng_) {
  if (trace) eng_.set_trace(trace);
  hw::connect(dev_.port(cfg.tx_port), dev_.port(cfg.rx_port));
  workload_ = std::make_unique<ClosedLoopWorkload>(eng_, dev_, cfg);
  if (plan) {
    injector_.emplace(eng_, *plan);
    injector_->attach_device(dev_);
    injector_->arm();
  }
}

void ClosedLoopTestbed::run_until(Picos until) {
  if (!started_) {
    workload_->start();
    started_ = true;
  }
  eng_.run_until(until);
}

TcpTrialReport ClosedLoopTestbed::report(Picos window) const {
  const ClosedLoopWorkload& w = *workload_;
  TcpTrialReport r;
  r.bytes_acked = w.total_bytes_acked();
  r.retransmits = w.total_retransmits();
  r.rto_fires = w.total_rto_fires();
  r.fast_retx = w.total_fast_retx();
  r.cwnd_reductions = w.total_cwnd_reductions();
  r.acks_sent = w.total_acks_sent();
  r.queue_drops = w.source().drops();
  r.goodput_bps = w.goodput_bps(window);
  for (std::size_t i = 0; i < w.num_flows(); ++i) {
    const Flow& f = w.flow(i);
    r.segs_sent += f.stats().segs_sent;
    r.emit_rejects += f.stats().emit_rejects;
    const double rate = f.delivery_rate_bps();
    if (i == 0 || rate < r.min_flow_rate_bps) r.min_flow_rate_bps = rate;
    if (i == 0 || rate > r.max_flow_rate_bps) r.max_flow_rate_bps = rate;
  }
  r.rld_detections = w.total_rld_detections();
  r.rld_rate_bps = w.mean_rld_rate_bps();
  r.rld_detect_time = w.mean_rld_detect_time();
  const telemetry::Log2Histogram rtt = w.rtt_probe().merged();
  if (rtt.count() > 0) {
    r.rtt_p99_ns = rtt.quantile(0.99);
    r.rtt_min_ns = static_cast<double>(rtt.min());
  }
  return r;
}

TcpTrialReport run_closed_loop_trial(const WorkloadConfig& cfg,
                                     Picos duration,
                                     const fault::FaultPlan* plan,
                                     telemetry::TraceRecorder* trace,
                                     Picos series_interval,
                                     telemetry::SeriesData* series_out) {
  ClosedLoopTestbed bed(cfg, plan, trace);
  std::optional<telemetry::TimeSeries> series;
  if (series_interval > 0 && series_out) {
    series.emplace(series_interval);
    ClosedLoopWorkload& w = bed.workload();
    series->add_counter("tcp.bytes_acked",
                        [&w] { return w.total_bytes_acked(); });
    series->add_counter("tcp.acks_sent", [&w] { return w.total_acks_sent(); });
    series->add_counter("tcp.segs_sent", [&w] {
      std::uint64_t n = 0;
      for (std::size_t i = 0; i < w.num_flows(); ++i) {
        n += w.flow(i).stats().segs_sent;
      }
      return n;
    });
    series->add_counter("tcp.retransmits",
                        [&w] { return w.total_retransmits(); });
    series->add_counter("tcp.queue_drops",
                        [&w] { return w.source().drops(); });
    series->add_histogram("tcp.rtt.ns",
                          [&w] { return w.rtt_probe().merged(); });
    series->attach(bed.engine(), duration);
  }
  bed.run_until(duration);
  if (series) {
    series->finish();
    *series_out = series->take();
  }
  return bed.report(duration);
}

}  // namespace osnt::tcp
