#include "osnt/burst/source.hpp"

#include <utility>

#include "osnt/net/builder.hpp"
#include "osnt/net/headers.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt::burst {

BurstSourceBlock::BurstSourceBlock(sim::Engine& eng, std::string name,
                                   BurstSourceConfig cfg)
    : graph::Block(eng, std::move(name), 0, 1), cfg_(cfg) {
  cfg_.pattern.validate();
}

BurstSourceBlock::~BurstSourceBlock() {
  if (telemetry::enabled() && bursts_ > 0) {
    auto& reg = telemetry::registry();
    const std::string prefix = "graph." + name() + ".";
    reg.counter(prefix + "bursts").add(bursts_);
    reg.counter(prefix + "tx_bytes").add(wire_bytes_);
  }
}

void BurstSourceBlock::set_horizon(Picos horizon) {
  if (sched_) {
    throw BurstError("burst: source '" + name() +
                     "' horizon cannot change after start()");
  }
  cfg_.horizon = horizon;
}

net::Packet BurstSourceBlock::make_frame(const PatternConfig& cfg,
                                         std::uint32_t flow_id,
                                         std::size_t frame_size) {
  const auto hi = static_cast<std::uint8_t>((flow_id >> 8) & 0xFF);
  const auto lo = static_cast<std::uint8_t>(flow_id & 0xFF);
  net::PacketBuilder b;
  if (cfg.pattern == Pattern::kAmplification) {
    // The reflected response: spoofed reflector source (TEST-NET style
    // 198.18/15 bench block, "DNS" source port) converging on one victim
    // address and port — the many-to-one shape demux/ECMP stages see.
    b.eth(net::MacAddr::from_index(0x100 + flow_id),
          net::MacAddr::from_index(1))
        .ipv4(net::Ipv4Addr::of(198, 18, hi, lo),
              net::Ipv4Addr::of(203, 0, 113, 1), /*protocol=*/17);
    b.udp(53, 443);
  } else {
    // Spoofed-source spread: per-flow source IP and port so 5-tuple
    // hashes (ECMP, demux) see realistic entropy.
    const auto sport =
        static_cast<std::uint16_t>(1024 + (flow_id % 60000));
    b.eth(net::MacAddr::from_index(0x100 + flow_id),
          net::MacAddr::from_index(1));
    if (cfg.l4 == L4::kTcpSyn) {
      b.ipv4(net::Ipv4Addr::of(10, 0, hi, lo),
             net::Ipv4Addr::of(192, 168, 0, 1), /*protocol=*/6);
      b.tcp(sport, 80, /*seq=*/flow_id, /*ack=*/0, net::TcpFlags::kSyn);
    } else {
      b.ipv4(net::Ipv4Addr::of(10, 0, hi, lo),
             net::Ipv4Addr::of(192, 168, 0, 1), /*protocol=*/17);
      b.udp(sport, 9);
    }
  }
  return b.pad_to_frame(frame_size).build();
}

void BurstSourceBlock::start() {
  if (cfg_.horizon <= 0) {
    throw BurstError("burst: source '" + name() +
                     "' needs a horizon (the topology loader fills it from "
                     "the run duration)");
  }
  sched_ = std::make_unique<BurstSchedule>(cfg_.pattern, cfg_.horizon);
  origin_ = now();
  if (cfg_.batched) {
    const std::size_t n = cfg_.pattern.template_count();
    templates_.clear();
    templates_.reserve(n);
    for (std::size_t f = 0; f < n; ++f) {
      templates_.push_back(make_frame(
          cfg_.pattern, static_cast<std::uint32_t>(f), cfg_.pattern.frame_size));
    }
  }
  if (sched_->bursts().empty()) return;
  if (cfg_.batched) {
    arm_burst(0);
  } else {
    arm_frame(0, 0);
  }
}

void BurstSourceBlock::on_frame(std::size_t /*in_port*/, net::Packet /*pkt*/,
                                Picos /*first_bit*/, Picos /*last_bit*/) {
  count_drop();  // sources take no input
}

void BurstSourceBlock::emit_one(std::size_t frame_idx, Picos burst_start) {
  const Picos tx_start = burst_start + sched_->offsets()[frame_idx];
  const std::uint32_t flow = sched_->flow_ids()[frame_idx];
  const std::size_t len = sched_->lengths()[frame_idx];
  // Batched: clone the prebuilt template (the MoonGen hot path). Naive:
  // craft the identical frame from scratch, per frame — the baseline.
  net::Packet pkt = cfg_.batched ? templates_[flow]
                                 : make_frame(cfg_.pattern, flow, len);
  pkt.id = next_id_++;
  pkt.tx_truth = tx_start;
  wire_bytes_ += pkt.wire_len();
  const Picos air =
      net::serialization_time(pkt.line_len(), cfg_.pattern.rate_gbps);
  emit(0, std::move(pkt), tx_start, tx_start + air);
}

void BurstSourceBlock::arm_burst(std::size_t burst_idx) {
  const sim::Engine::CategoryScope cat(engine(), sim::EventCategory::kGen);
  engine().schedule_at(origin_ + sched_->bursts()[burst_idx].start,
                       [this, burst_idx] { emit_burst(burst_idx); });
}

void BurstSourceBlock::emit_burst(std::size_t burst_idx) {
  // ONE event per burst: walk the SoA slice, future-dating each frame's
  // serialization window. Downstream Links schedule deliveries at the
  // same last-bit instants naive per-frame emission produces, so the two
  // modes are indistinguishable on the wire.
  const Burst& b = sched_->bursts()[burst_idx];
  const Picos start = origin_ + b.start;
  for (std::size_t i = 0; i < b.count; ++i) emit_one(b.first + i, start);
  ++bursts_;
  if (burst_idx + 1 < sched_->bursts().size()) arm_burst(burst_idx + 1);
}

void BurstSourceBlock::arm_frame(std::size_t burst_idx,
                                 std::size_t offset_in_burst) {
  const Burst& b = sched_->bursts()[burst_idx];
  const Picos when = origin_ + b.start + sched_->offsets()[b.first + offset_in_burst];
  const sim::Engine::CategoryScope cat(engine(), sim::EventCategory::kGen);
  engine().schedule_at(when, [this, burst_idx, offset_in_burst] {
    const Burst& cur = sched_->bursts()[burst_idx];
    emit_one(cur.first + offset_in_burst, origin_ + cur.start);
    if (offset_in_burst + 1 < cur.count) {
      arm_frame(burst_idx, offset_in_burst + 1);
    } else {
      ++bursts_;
      if (burst_idx + 1 < sched_->bursts().size()) arm_frame(burst_idx + 1, 0);
    }
  });
}

}  // namespace osnt::burst
