#include "osnt/burst/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "osnt/net/packet.hpp"

namespace osnt::burst {

namespace {

// E[X] of a bounded Pareto on [lo, hi] with shape alpha != 1 — same
// rescaling scheme as gen::ParetoGap, applied here to on-period lengths.
double bounded_pareto_mean(double alpha, double lo, double hi) {
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return la * alpha / (alpha - 1.0) *
         (1.0 / std::pow(lo, alpha - 1.0) - 1.0 / std::pow(hi, alpha - 1.0)) /
         (1.0 - la / ha);
}
constexpr double kParetoLo = 1.0;
constexpr double kParetoHi = 1000.0;

}  // namespace

BurstSchedule::BurstSchedule(const PatternConfig& cfg, Picos horizon)
    : cfg_(cfg), horizon_(horizon) {
  cfg_.validate();
  if (horizon_ <= 0) throw BurstError("burst: schedule needs horizon > 0");
  switch (cfg_.pattern) {
    case Pattern::kOnOff: build_on_off(); break;
    case Pattern::kStrobe: build_strobe(); break;
    case Pattern::kHeavyTail: build_heavy_tail(); break;
    case Pattern::kAmplification: build_amplification(); break;
  }
  // Invariant emission modes rely on: frame departures strictly increase
  // across bursts (you cannot emit above line rate). A pattern that
  // overruns its period is a config error, not wraparound.
  const Picos slot = cfg_.slot();
  for (std::size_t i = 1; i < bursts_.size(); ++i) {
    const Burst& prev = bursts_[i - 1];
    const Picos prev_end =
        prev.start + offsets_[prev.first + prev.count - 1] + slot;
    if (bursts_[i].start < prev_end) {
      throw BurstError(
          "burst: " + std::string(pattern_name(cfg_.pattern)) +
          " overruns its period — lower pulse_frames/duty/amp_factor or "
          "raise period");
    }
  }
}

void BurstSchedule::append_burst(Picos start, std::size_t count,
                                 std::size_t frame_size, Rng& rng) {
  if (count == 0) return;
  if (total_frames() + count > kMaxFrames) {
    throw BurstError("burst: schedule exceeds " +
                     std::to_string(kMaxFrames) +
                     " frames — shorten the horizon or lower the rate");
  }
  const Picos slot = net::serialization_time(
      frame_size + net::kEthPerFrameOverhead, cfg_.rate_gbps);
  const std::size_t ntmpl = cfg_.template_count();
  bursts_.push_back({start, offsets_.size(), count});
  for (std::size_t i = 0; i < count; ++i) {
    offsets_.push_back(static_cast<Picos>(i) * slot);
    lengths_.push_back(static_cast<std::uint16_t>(frame_size));
    flow_ids_.push_back(
        static_cast<std::uint32_t>(rng.uniform_int(0, ntmpl - 1)));
    total_wire_bytes_ += frame_size;
  }
}

void BurstSchedule::build_on_off() {
  Rng rng(cfg_.seed);
  const Picos slot = cfg_.slot();
  const auto on_window =
      static_cast<Picos>(cfg_.duty * static_cast<double>(cfg_.period));
  // Frames whose serialization slot fits inside the on window; a sliver
  // window still carries one frame so low duty cycles stay visible.
  const std::size_t per_burst = std::max<std::size_t>(
      1, static_cast<std::size_t>(on_window / slot));
  for (Picos t = 0; t < horizon_; t += cfg_.period) {
    append_burst(t, per_burst, cfg_.frame_size, rng);
  }
}

void BurstSchedule::build_strobe() {
  Rng rng(cfg_.seed);
  for (Picos t = 0; t < horizon_; t += cfg_.period) {
    append_burst(t, cfg_.pulse_frames, cfg_.frame_size, rng);
  }
}

void BurstSchedule::build_heavy_tail() {
  Rng rng(cfg_.seed);
  const Picos slot = cfg_.slot();
  const double raw_mean = bounded_pareto_mean(cfg_.alpha, kParetoLo, kParetoHi);
  Picos t = 0;
  while (t < horizon_) {
    // Pareto on-period rescaled to mean_on, quantized to whole frames.
    const double x = rng.pareto(cfg_.alpha, kParetoLo, kParetoHi) / raw_mean;
    const auto on = static_cast<Picos>(
        x * static_cast<double>(cfg_.mean_on));
    const std::size_t frames =
        std::max<std::size_t>(1, static_cast<std::size_t>(on / slot));
    append_burst(t, frames, cfg_.frame_size, rng);
    const auto off = static_cast<Picos>(
        rng.exponential(static_cast<double>(cfg_.mean_off)));
    t += static_cast<Picos>(frames) * slot + std::max<Picos>(off, slot);
  }
}

void BurstSchedule::build_amplification() {
  Rng rng(cfg_.seed);
  // One volley = the reflected response to one request: amp_factor ×
  // request bytes, shipped as back-to-back response frames from a single
  // spoofed reflector. Volleys tile each period's on window, so during an
  // attack wave the victim sees a solid rate_gbps of response traffic.
  const std::size_t volley_frames = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(cfg_.amp_factor *
                       static_cast<double>(cfg_.request_size) /
                       static_cast<double>(cfg_.frame_size))));
  const Picos slot = cfg_.slot();
  const Picos volley_air = static_cast<Picos>(volley_frames) * slot;
  const auto on_window =
      static_cast<Picos>(cfg_.duty * static_cast<double>(cfg_.period));
  for (Picos t = 0; t < horizon_; t += cfg_.period) {
    for (Picos v = 0; v + volley_air <= on_window || v == 0; v += volley_air) {
      // Each volley is one reflector's response stream: a single spoofed
      // source for the whole volley (flow ids drawn per volley, not per
      // frame, matching how a reflection actually arrives).
      const auto attacker =
          static_cast<std::uint32_t>(rng.uniform_int(0, cfg_.attackers - 1));
      if (total_frames() + volley_frames > kMaxFrames) {
        throw BurstError("burst: schedule exceeds " +
                         std::to_string(kMaxFrames) +
                         " frames — shorten the horizon or lower the rate");
      }
      bursts_.push_back({t + v, offsets_.size(), volley_frames});
      for (std::size_t i = 0; i < volley_frames; ++i) {
        offsets_.push_back(static_cast<Picos>(i) * slot);
        lengths_.push_back(static_cast<std::uint16_t>(cfg_.frame_size));
        flow_ids_.push_back(attacker);
        total_wire_bytes_ += cfg_.frame_size;
      }
    }
  }
}

}  // namespace osnt::burst
