#include "osnt/burst/pattern.hpp"

#include "osnt/net/packet.hpp"

namespace osnt::burst {

const std::vector<std::string>& known_patterns() {
  static const std::vector<std::string> kNames = {
      "on_off", "strobe", "heavy_tail", "amplification"};
  return kNames;
}

const char* pattern_name(Pattern p) noexcept {
  switch (p) {
    case Pattern::kOnOff: return "on_off";
    case Pattern::kStrobe: return "strobe";
    case Pattern::kHeavyTail: return "heavy_tail";
    case Pattern::kAmplification: return "amplification";
  }
  return "?";
}

Pattern pattern_from_name(const std::string& name) {
  const auto& names = known_patterns();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<Pattern>(i);
  }
  std::string msg = "burst: unknown pattern '" + name + "' (expected one of";
  for (const auto& n : names) msg += " " + n;
  throw BurstError(msg + ")");
}

void PatternConfig::validate() const {
  const auto bad = [this](const std::string& why) {
    throw BurstError("burst: " + std::string(pattern_name(pattern)) + " " +
                     why);
  };
  if (rate_gbps <= 0.0) bad("needs rate_gbps > 0");
  if (frame_size < net::kEthMinFrame || frame_size > net::kEthMaxFrame) {
    bad("needs frame_size in [64, 1518]");
  }
  if (flows == 0) bad("needs flows >= 1");
  switch (pattern) {
    case Pattern::kOnOff:
      if (period <= 0) bad("needs period > 0");
      if (duty <= 0.0 || duty > 1.0) bad("needs duty in (0, 1]");
      break;
    case Pattern::kStrobe:
      if (period <= 0) bad("needs period > 0");
      if (pulse_frames == 0) bad("needs pulse_frames >= 1");
      break;
    case Pattern::kHeavyTail:
      if (alpha <= 1.0 || alpha > 2.5) bad("needs alpha in (1, 2.5]");
      if (mean_on <= 0) bad("needs mean_on > 0");
      if (mean_off <= 0) bad("needs mean_off > 0");
      break;
    case Pattern::kAmplification:
      if (period <= 0) bad("needs period > 0");
      if (duty <= 0.0 || duty > 1.0) bad("needs duty in (0, 1]");
      if (attackers == 0) bad("needs attackers >= 1");
      if (request_size < net::kEthMinFrame ||
          request_size > net::kEthMaxFrame) {
        bad("needs request_size in [64, 1518]");
      }
      if (amp_factor < 1.0) bad("needs amp_factor >= 1");
      break;
  }
}

Picos PatternConfig::slot() const noexcept {
  return net::serialization_time(frame_size + net::kEthPerFrameOverhead,
                                 rate_gbps);
}

std::size_t PatternConfig::template_count() const noexcept {
  return pattern == Pattern::kAmplification ? attackers : flows;
}

}  // namespace osnt::burst
