#include "osnt/oflops/echo_rtt.hpp"

namespace osnt::oflops {

void EchoRttModule::start(OflopsContext& ctx) {
  ctx.timer_in(0, 0);
}

void EchoRttModule::on_timer(OflopsContext& ctx, std::uint64_t /*timer_id*/) {
  if (sent_ >= cfg_.count) return;
  openflow::EchoRequest req;
  req.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  const std::uint32_t xid = ctx.send(req);
  in_flight_[xid] = ctx.now();
  ++sent_;
  if (sent_ < cfg_.count) ctx.timer_in(cfg_.interval, 0);
}

void EchoRttModule::on_of_message(OflopsContext& ctx,
                                  const openflow::Decoded& msg) {
  if (!std::holds_alternative<openflow::EchoReply>(msg.msg)) return;
  const auto it = in_flight_.find(msg.xid);
  if (it == in_flight_.end()) return;
  rtt_us_.add(to_micros(ctx.now() - it->second));
  in_flight_.erase(it);
  ++replies_;
}

Report EchoRttModule::report() const {
  Report r;
  r.module = name();
  r.add("echo_requests_sent", static_cast<double>(sent_));
  r.add("echo_replies", static_cast<double>(replies_));
  r.add_distribution("rtt_us", rtt_us_);
  return r;
}

}  // namespace osnt::oflops
