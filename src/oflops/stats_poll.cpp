#include "osnt/oflops/stats_poll.hpp"

#include "osnt/gen/template_gen.hpp"
#include "osnt/tstamp/embed.hpp"

namespace osnt::oflops {

using namespace osnt::openflow;

void StatsPollModule::start(OflopsContext& ctx) {
  // Fillers the stats scan will have to serialize over. They deliberately
  // do not match the probe flow, which must keep missing the table.
  for (std::size_t i = 0; i < cfg_.table_size; ++i) {
    FlowMod fm;
    fm.match = OfMatch::exact_5tuple(
        (172u << 24) | 1, (172u << 24) | static_cast<std::uint32_t>(i + 2),
        net::ipproto::kUdp, 2000, 2000);
    fm.priority = 0x4000;
    fm.actions = {ActionOutput{2}};
    ctx.send(fm);
  }
  fill_barrier_ = ctx.send(BarrierRequest{});

  gen::TxConfig txc;
  txc.rate = gen::RateSpec::pps(cfg_.probe_pps);
  auto& tx = ctx.osnt().configure_tx(0, txc);
  gen::TemplateConfig tc;
  tx.set_source(std::make_unique<gen::TemplateSource>(
      tc, std::make_unique<gen::FixedSize>(128)));
}

void StatsPollModule::on_of_message(OflopsContext& ctx,
                                    const openflow::Decoded& msg) {
  if (const auto* pin = std::get_if<PacketIn>(&msg.msg)) {
    const auto stamp = tstamp::extract_timestamp(
        ByteSpan{pin->data.data(), pin->data.size()},
        tstamp::kDefaultEmbedOffset);
    if (!stamp) return;
    const double us = (to_nanos(ctx.now()) - stamp->ts.to_nanos()) * 1e-3;
    if (phase_ == Phase::kBaseline) {
      baseline_pin_us_.add(us);
      if (baseline_pin_us_.count() >= cfg_.probes_per_phase) {
        phase_ = Phase::kPolling;
        ctx.timer_in(0, kTimerPoll);
      }
    } else if (phase_ == Phase::kPolling) {
      polling_pin_us_.add(us);
      if (polling_pin_us_.count() >= cfg_.probes_per_phase) {
        phase_ = Phase::kDone;
        done_ = true;
        ctx.osnt().tx(0).stop();
      }
    }
    return;
  }
  if (std::holds_alternative<BarrierReply>(msg.msg)) {
    if (phase_ == Phase::kFill && msg.xid == fill_barrier_)
      ctx.timer_in(cfg_.fill_settle, kTimerStartProbe);
    return;
  }
  if (const auto* rep = std::get_if<FlowStatsReply>(&msg.msg)) {
    const auto it = stats_in_flight_.find(msg.xid);
    if (it == stats_in_flight_.end()) return;
    stats_rtt_ms_.add(to_seconds(ctx.now() - it->second) * 1e3);
    stats_in_flight_.erase(it);
    flows_reported_ += rep->flows.size();
  }
}

void StatsPollModule::on_timer(OflopsContext& ctx, std::uint64_t timer_id) {
  if (done_) return;
  if (timer_id == kTimerStartProbe && phase_ == Phase::kFill) {
    phase_ = Phase::kBaseline;
    ctx.osnt().tx(0).start();
    return;
  }
  if (timer_id == kTimerPoll && phase_ == Phase::kPolling) {
    FlowStatsRequest req;
    req.match = OfMatch::any();
    const std::uint32_t xid = ctx.send(req);
    stats_in_flight_[xid] = ctx.now();
    ctx.timer_in(cfg_.poll_interval, kTimerPoll);
  }
}

Report StatsPollModule::report() const {
  Report r;
  r.module = name();
  r.add("table_size", static_cast<double>(cfg_.table_size), "rules");
  r.add("stats_polls_answered", static_cast<double>(stats_rtt_ms_.count()));
  r.add("flow_entries_reported", static_cast<double>(flows_reported_));
  r.add_distribution("stats_rtt_ms", stats_rtt_ms_);
  r.add_distribution("packet_in_baseline_us", baseline_pin_us_);
  r.add_distribution("packet_in_while_polling_us", polling_pin_us_);
  return r;
}

}  // namespace osnt::oflops
