#include "osnt/oflops/action_latency.hpp"

#include "osnt/gen/template_gen.hpp"
#include "osnt/net/headers.hpp"
#include "osnt/tstamp/embed.hpp"

namespace osnt::oflops {

using namespace osnt::openflow;

namespace {
constexpr std::uint32_t kSrcIp = (10u << 24) | 1;
constexpr std::uint32_t kDstIp = (10u << 24) | (1 << 8) | 1;
}  // namespace

void ActionLatencyModule::install_rule(OflopsContext& ctx, bool with_modify) {
  FlowMod fm;
  fm.match = OfMatch::exact_5tuple(kSrcIp, kDstIp, net::ipproto::kUdp, 1024,
                                   5001);
  fm.priority = 0x9000;
  if (with_modify) {
    fm.actions = {ActionSetVlanVid{100}, ActionOutput{2}};
  } else {
    fm.actions = {ActionOutput{2}};
  }
  ctx.send(fm);
  barrier_xid_ = ctx.send(BarrierRequest{});
}

void ActionLatencyModule::start(OflopsContext& ctx) {
  install_rule(ctx, /*with_modify=*/false);
  mode_ = Mode::kInstallPlain;

  gen::TxConfig txc;
  txc.rate = gen::RateSpec::pps(cfg_.probe_pps);
  auto& tx = ctx.osnt().configure_tx(0, txc);
  gen::TemplateConfig tc;
  tx.set_source(std::make_unique<gen::TemplateSource>(
      tc, std::make_unique<gen::FixedSize>(256)));
  tx.start();
}

void ActionLatencyModule::on_of_message(OflopsContext& ctx,
                                        const openflow::Decoded& msg) {
  if (!std::holds_alternative<BarrierReply>(msg.msg) ||
      msg.xid != barrier_xid_)
    return;
  // Give the hardware commit time to land, then start sampling.
  ctx.timer_in(cfg_.settle, kTimerSettled);
}

void ActionLatencyModule::on_timer(OflopsContext& /*ctx*/,
                                   std::uint64_t timer_id) {
  if (timer_id != kTimerSettled) return;
  if (mode_ == Mode::kInstallPlain) mode_ = Mode::kPlain;
  if (mode_ == Mode::kInstallModify) mode_ = Mode::kModify;
}

void ActionLatencyModule::on_capture(OflopsContext& ctx,
                                     const mon::CaptureRecord& rec) {
  if (rec.port != 1) return;
  // The VLAN rewrite inserts 4 bytes at offset 12, shifting the embedded
  // stamp from 42 to 46 on tagged frames.
  std::size_t offset = tstamp::kDefaultEmbedOffset;
  if (rec.data.size() >= 14 &&
      load_be16(rec.data.data() + 12) ==
          static_cast<std::uint16_t>(net::EtherType::kVlan))
    offset += net::VlanTag::kSize;
  const auto stamp = tstamp::extract_timestamp(
      ByteSpan{rec.data.data(), rec.data.size()}, offset);
  if (!stamp) return;
  const double lat_ns = tstamp::delta_nanos(rec.ts, stamp->ts);

  if (mode_ == Mode::kPlain) {
    plain_ns_.add(lat_ns);
    if (plain_ns_.count() >= cfg_.samples_per_mode) {
      mode_ = Mode::kInstallModify;
      install_rule(ctx, /*with_modify=*/true);
    }
  } else if (mode_ == Mode::kModify) {
    modify_ns_.add(lat_ns);
    if (modify_ns_.count() >= cfg_.samples_per_mode) {
      mode_ = Mode::kDone;
      done_ = true;
      ctx.osnt().tx(0).stop();
    }
  }
}

Report ActionLatencyModule::report() const {
  Report r;
  r.module = name();
  r.add_distribution("forward_only_ns", plain_ns_);
  r.add_distribution("vlan_rewrite_ns", modify_ns_);
  if (plain_ns_.count() && modify_ns_.count()) {
    r.add("action_overhead_ns",
          modify_ns_.quantile(0.5) - plain_ns_.quantile(0.5), "ns");
  }
  return r;
}

}  // namespace osnt::oflops
