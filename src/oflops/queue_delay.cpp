#include "osnt/oflops/queue_delay.hpp"

#include "osnt/gen/template_gen.hpp"
#include "osnt/tstamp/embed.hpp"

namespace osnt::oflops {

using namespace osnt::openflow;

void QueueDelayModule::start(OflopsContext& ctx) {
  results_.resize(cfg_.queue_ids.size());
  start_queue_run(ctx);
}

void QueueDelayModule::start_queue_run(OflopsContext& ctx) {
  // Route the probe flow through the queue under test on switch port 2.
  FlowMod fm;
  fm.match = OfMatch::exact_5tuple((10u << 24) | 1, (10u << 24) | (1 << 8) | 1,
                                   net::ipproto::kUdp, 1024, 5001);
  fm.priority = 0x9000;
  fm.actions = {ActionEnqueue{2, cfg_.queue_ids[current_]}};
  ctx.send(fm);
  barrier_xid_ = ctx.send(BarrierRequest{});
}

void QueueDelayModule::on_of_message(OflopsContext& ctx,
                                     const openflow::Decoded& msg) {
  if (!std::holds_alternative<BarrierReply>(msg.msg) ||
      msg.xid != barrier_xid_)
    return;
  // Rule is in (plus commit; give it room), then offer the burst.
  ctx.timer_in(100 * kPicosPerMilli, current_);
}

void QueueDelayModule::on_timer(OflopsContext& ctx, std::uint64_t timer_id) {
  if (timer_id != current_) return;
  gen::TxConfig txc;
  txc.rate = gen::RateSpec::gbps(cfg_.offered_gbps);
  auto& tx = ctx.osnt().configure_tx(0, txc);
  gen::TemplateConfig tc;
  tc.count = cfg_.frames_per_queue;
  tx.set_source(std::make_unique<gen::TemplateSource>(
      tc, std::make_unique<gen::FixedSize>(cfg_.frame_size)));
  tx.start();
}

void QueueDelayModule::on_capture(OflopsContext& ctx,
                                  const mon::CaptureRecord& rec) {
  if (rec.port != 1 || done_) return;
  const auto stamp = tstamp::extract_timestamp(
      ByteSpan{rec.data.data(), rec.data.size()}, tstamp::kDefaultEmbedOffset);
  if (!stamp) return;
  PerQueue& pq = results_[current_];
  if (pq.frames == 0) pq.first_rx = rec.ts;
  pq.last_rx = rec.ts;
  ++pq.frames;
  pq.latency_us.add(tstamp::delta_nanos(rec.ts, stamp->ts) * 1e-3);
  if (pq.frames >= cfg_.frames_per_queue) {
    ++current_;
    if (current_ >= cfg_.queue_ids.size()) {
      done_ = true;
      return;
    }
    start_queue_run(ctx);
  }
}

Report QueueDelayModule::report() const {
  Report r;
  r.module = name();
  for (std::size_t i = 0; i < results_.size(); ++i) {
    const PerQueue& pq = results_[i];
    const std::string tag = "q" + std::to_string(cfg_.queue_ids[i]);
    if (pq.frames >= 2) {
      const double span_s =
          tstamp::delta_nanos(pq.last_rx, pq.first_rx) * 1e-9;
      const double gbps =
          static_cast<double>(pq.frames - 1) *
          static_cast<double>(cfg_.frame_size + net::kEthPerFrameOverhead) *
          8.0 / span_s / 1e9;
      r.add(tag + "_achieved_gbps", gbps, "Gb/s");
    }
    r.add_distribution(tag + "_latency_us", pq.latency_us);
  }
  return r;
}

}  // namespace osnt::oflops
