#include "osnt/oflops/flowmod_latency.hpp"

#include "osnt/core/measure.hpp"
#include "osnt/gen/template_gen.hpp"

namespace osnt::oflops {

using namespace osnt::openflow;

namespace {
// The probe flow matches TemplateSource defaults with flow_count = 1.
constexpr std::uint32_t kProbeSrcIp = (10u << 24) | 1;             // 10.0.0.1
constexpr std::uint32_t kProbeDstIp = (10u << 24) | (1 << 8) | 1;  // 10.0.1.1
constexpr std::uint16_t kProbeSport = 1024;
constexpr std::uint16_t kProbeDport = 5001;
}  // namespace

FlowMod FlowModLatencyModule::probe_rule(std::uint16_t out_port) const {
  FlowMod fm;
  fm.match = OfMatch::exact_5tuple(kProbeSrcIp, kProbeDstIp,
                                   net::ipproto::kUdp, kProbeSport,
                                   kProbeDport);
  fm.priority = 0x9000;
  fm.actions = {ActionOutput{out_port}};
  return fm;
}

void FlowModLatencyModule::install_table(OflopsContext& ctx) {
  // Pre-populate the table with filler rules (distinct flows, low prio).
  // Flow_mods replace same-match entries, so a reconnect re-drive of this
  // whole block is idempotent on the switch.
  for (std::size_t i = 0; i < cfg_.table_size; ++i) {
    FlowMod fm;
    fm.match = OfMatch::exact_5tuple(
        kProbeSrcIp, (172u << 24) | static_cast<std::uint32_t>(i + 1),
        net::ipproto::kUdp, 2000, 2000);
    fm.priority = 0x4000;
    fm.actions = {ActionOutput{2}};
    ctx.send(fm);
  }
  // Probe rule → the switch port in front of the current target.
  ctx.send(probe_rule(static_cast<std::uint16_t>(target_osnt_port_ + 1)));
  barrier_xid_ = ctx.send(BarrierRequest{});
  awaiting_barrier_ = true;
}

void FlowModLatencyModule::start(OflopsContext& ctx) {
  target_osnt_port_ = 1;  // initial probe rule → switch port 2 (OSNT 1)
  phase_ = Phase::kFill;
  install_table(ctx);

  // Continuous probe flow from OSNT port 0 — started only once the fill
  // commits have drained (see kTimerStartProbe).
  gen::TxConfig txc;
  txc.rate = gen::RateSpec::pps(cfg_.probe_pps);
  auto& tx = ctx.osnt().configure_tx(0, txc);
  gen::TemplateConfig tc;  // defaults produce exactly the probe 5-tuple
  tc.flow_count = 1;
  tx.set_source(std::make_unique<gen::TemplateSource>(
      tc, std::make_unique<gen::FixedSize>(128)));
}

void FlowModLatencyModule::send_redirect(OflopsContext& ctx) {
  // Flip the rule to the other capture port.
  const std::uint8_t new_port = target_osnt_port_ == 1 ? 2 : 1;
  target_osnt_port_ = new_port;
  t_send_ = ctx.now();
  awaiting_data_ = true;
  ctx.send(probe_rule(static_cast<std::uint16_t>(new_port + 1)));
  barrier_xid_ = ctx.send(BarrierRequest{});
  awaiting_barrier_ = true;
  phase_ = Phase::kMeasure;
}

void FlowModLatencyModule::on_of_message(OflopsContext& ctx,
                                         const openflow::Decoded& msg) {
  if (!std::holds_alternative<BarrierReply>(msg.msg)) return;
  if (!awaiting_barrier_ || msg.xid != barrier_xid_) return;
  awaiting_barrier_ = false;

  if (phase_ == Phase::kFill) {
    // Table populated at the agent; wait out the hardware commit backlog
    // before generating load and measuring.
    phase_ = Phase::kWarmup;
    ctx.timer_in(cfg_.fill_settle, kTimerStartProbe);
    return;
  }
  if (phase_ == Phase::kMeasure) {
    ctrl_ms_.add(to_seconds(ctx.now() - t_send_) * 1e3);
    maybe_finish_round(ctx);
  }
}

void FlowModLatencyModule::on_capture(OflopsContext& ctx,
                                      const mon::CaptureRecord& rec) {
  if (phase_ != Phase::kMeasure || !awaiting_data_) return;
  if (rec.port != target_osnt_port_) return;
  const double t_rec_ns = rec.ts.to_nanos();
  const double t_send_ns = to_nanos(t_send_);
  if (t_rec_ns <= t_send_ns) return;  // stale frame from the old path
  awaiting_data_ = false;
  data_ms_.add((t_rec_ns - t_send_ns) * 1e-6);
  maybe_finish_round(ctx);
}

void FlowModLatencyModule::maybe_finish_round(OflopsContext& ctx) {
  // A round is complete only once BOTH planes have reported.
  if (awaiting_data_ || awaiting_barrier_) return;
  ++round_;
  if (round_ >= cfg_.rounds) {
    phase_ = Phase::kDone;
    done_ = true;
    ctx.osnt().tx(0).stop();
    return;
  }
  ctx.timer_in(cfg_.settle, kTimerNextRound);
}

void FlowModLatencyModule::on_channel_status(OflopsContext& ctx, bool up) {
  if (done_) return;
  if (!up) {
    ++disconnects_;
    return;
  }
  // Session restored. Anything unacknowledged on the old session —
  // flow_mods, the barrier we were waiting on — died with it, so re-drive
  // the current phase's control-plane state. Measurements taken across
  // the outage stay in the distributions (they genuinely include it);
  // the report flags how many rounds were affected.
  if (phase_ == Phase::kFill) {
    install_table(ctx);
    return;
  }
  if (phase_ == Phase::kMeasure && awaiting_barrier_) {
    ++degraded_rounds_;
    ctx.send(probe_rule(static_cast<std::uint16_t>(target_osnt_port_ + 1)));
    barrier_xid_ = ctx.send(BarrierRequest{});
  }
  // kWarmup (timer pending) and a measure round whose barrier was already
  // acknowledged have nothing in flight to recover.
}

void FlowModLatencyModule::on_timer(OflopsContext& ctx,
                                    std::uint64_t timer_id) {
  if (done_) return;
  if (timer_id == kTimerStartProbe) {
    ctx.osnt().tx(0).start();
    ctx.timer_in(cfg_.settle, kTimerNextRound);
    return;
  }
  if (timer_id == kTimerNextRound) send_redirect(ctx);
}

Report FlowModLatencyModule::report() const {
  Report r;
  r.module = name();
  r.add("table_size", static_cast<double>(cfg_.table_size), "rules");
  r.add("rounds_completed", static_cast<double>(round_));
  r.add("channel_disconnects", static_cast<double>(disconnects_));
  r.add("degraded_rounds", static_cast<double>(degraded_rounds_));
  r.add_distribution("control_plane_ms", ctrl_ms_);
  r.add_distribution("data_plane_ms", data_ms_);
  // The headline gap: data-plane install time vs barrier acknowledgement.
  SampleSet gap;
  const std::size_t n = std::min(ctrl_ms_.count(), data_ms_.count());
  for (std::size_t i = 0; i < n; ++i)
    gap.add(data_ms_.samples()[i] - ctrl_ms_.samples()[i]);
  r.add_distribution("data_minus_control_ms", gap);
  return r;
}

}  // namespace osnt::oflops
