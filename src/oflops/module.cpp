#include "osnt/oflops/module.hpp"

namespace osnt::oflops {

void Report::print(std::FILE* out) const {
  std::fprintf(out, "=== %s ===\n", module.c_str());
  for (const auto& m : scalars) {
    std::fprintf(out, "  %-36s %14.3f %s\n", m.name.c_str(), m.value,
                 m.unit.c_str());
  }
  for (const auto& [name, dist] : distributions) {
    if (dist.empty()) {
      std::fprintf(out, "  %-36s (no samples)\n", name.c_str());
      continue;
    }
    std::fprintf(out,
                 "  %-36s n=%zu min=%.3f p50=%.3f mean=%.3f p99=%.3f "
                 "max=%.3f\n",
                 name.c_str(), dist.count(), dist.min(), dist.quantile(0.5),
                 dist.mean(), dist.quantile(0.99), dist.max());
  }
}

}  // namespace osnt::oflops
