#include "osnt/oflops/interaction.hpp"

#include "osnt/gen/template_gen.hpp"

namespace osnt::oflops {

using namespace osnt::openflow;

void InteractionModule::start(OflopsContext& ctx) {
  // Prepare (but don't start) the table-miss storm from OSNT port 0.
  gen::TxConfig txc;
  txc.rate = gen::RateSpec::pps(cfg_.storm_pps);
  auto& tx = ctx.osnt().configure_tx(0, txc);
  gen::TemplateConfig tc;
  tx.set_source(std::make_unique<gen::TemplateSource>(
      tc, std::make_unique<gen::FixedSize>(128)));
  send_round(ctx);
}

void InteractionModule::send_round(OflopsContext& ctx) {
  // A fresh filler rule each round keeps ADD semantics identical.
  FlowMod fm;
  fm.match = OfMatch::exact_5tuple(
      (172u << 24) | (31 << 16) | 1,
      (172u << 24) | (31 << 16) | static_cast<std::uint32_t>(round_ + 2),
      net::ipproto::kUdp, 3000, 3000);
  fm.priority = 0x3000;
  fm.actions = {ActionOutput{2}};
  ctx.send(fm);
  t_send_ = ctx.now();
  barrier_xid_ = ctx.send(BarrierRequest{});
}

void InteractionModule::on_of_message(OflopsContext& ctx,
                                      const openflow::Decoded& msg) {
  if (std::holds_alternative<PacketIn>(msg.msg)) {
    ++packet_ins_seen_;
    return;
  }
  if (!std::holds_alternative<BarrierReply>(msg.msg) ||
      msg.xid != barrier_xid_)
    return;

  const double rtt_us = to_micros(ctx.now() - t_send_);
  (phase_ == Phase::kIdle ? idle_rtt_us_ : storm_rtt_us_).add(rtt_us);
  ++round_;

  if (phase_ == Phase::kIdle && idle_rtt_us_.count() >= cfg_.rounds_per_phase) {
    phase_ = Phase::kStorm;
    ctx.osnt().tx(0).start();  // unleash the table-miss traffic
  } else if (phase_ == Phase::kStorm &&
             storm_rtt_us_.count() >= cfg_.rounds_per_phase) {
    phase_ = Phase::kDone;
    done_ = true;
    ctx.osnt().tx(0).stop();
    return;
  }
  ctx.timer_in(cfg_.round_interval, kTimerRound);
}

void InteractionModule::on_timer(OflopsContext& ctx, std::uint64_t timer_id) {
  if (timer_id == kTimerRound && !done_) send_round(ctx);
}

Report InteractionModule::report() const {
  Report r;
  r.module = name();
  r.add("packet_ins_during_run", static_cast<double>(packet_ins_seen_));
  r.add_distribution("barrier_rtt_idle_us", idle_rtt_us_);
  r.add_distribution("barrier_rtt_under_storm_us", storm_rtt_us_);
  if (idle_rtt_us_.count() && storm_rtt_us_.count()) {
    r.add("storm_slowdown_x",
          storm_rtt_us_.quantile(0.5) / idle_rtt_us_.quantile(0.5));
  }
  return r;
}

}  // namespace osnt::oflops
