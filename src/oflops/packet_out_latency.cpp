#include "osnt/oflops/packet_out_latency.hpp"

#include "osnt/net/builder.hpp"
#include "osnt/tstamp/embed.hpp"

namespace osnt::oflops {

using namespace osnt::openflow;

void PacketOutLatencyModule::start(OflopsContext& ctx) {
  ctx.timer_in(0, 0);
}

void PacketOutLatencyModule::on_timer(OflopsContext& ctx,
                                      std::uint64_t /*timer_id*/) {
  if (sent_ >= cfg_.count) return;
  net::PacketBuilder b;
  net::Packet pkt =
      b.eth(net::MacAddr::from_index(0xC0), net::MacAddr::from_index(0xC1))
          .ipv4(net::Ipv4Addr::of(10, 9, 0, 1), net::Ipv4Addr::of(10, 9, 0, 2),
                net::ipproto::kUdp)
          .udp(7000, 7001)
          .pad_to_frame(128)
          .build();
  // The controller stamps with absolute (GPS) time — its host clock; the
  // capture side compares against the card's disciplined stamp.
  tstamp::embed_timestamp(
      pkt.mut_bytes(), tstamp::kDefaultEmbedOffset,
      {tstamp::Timestamp::from_nanos(to_nanos(ctx.now())),
       static_cast<std::uint32_t>(sent_)});
  PacketOut po;
  po.actions = {ActionOutput{cfg_.out_port}};
  po.data = std::move(pkt.data);
  ctx.send(po);
  ++sent_;
  if (sent_ < cfg_.count) ctx.timer_in(cfg_.interval, 0);
}

void PacketOutLatencyModule::on_capture(OflopsContext& ctx,
                                        const mon::CaptureRecord& rec) {
  (void)ctx;
  if (rec.port != cfg_.out_port - 1) return;
  const auto stamp = tstamp::extract_timestamp(
      ByteSpan{rec.data.data(), rec.data.size()}, tstamp::kDefaultEmbedOffset);
  if (!stamp) return;
  latency_us_.add(tstamp::delta_nanos(rec.ts, stamp->ts) * 1e-3);
  ++received_;
}

Report PacketOutLatencyModule::report() const {
  Report r;
  r.module = name();
  r.add("packet_outs_sent", static_cast<double>(sent_));
  r.add("frames_observed", static_cast<double>(received_));
  r.add_distribution("packet_out_latency_us", latency_us_);
  return r;
}

}  // namespace osnt::oflops
