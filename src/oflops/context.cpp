#include "osnt/oflops/context.hpp"

#include "osnt/common/log.hpp"

namespace osnt::oflops {

OflopsContext::OflopsContext(sim::Engine& eng, core::OsntDevice& osnt,
                             openflow::ControlChannel::Endpoint& ctrl,
                             dut::SnmpAgent* snmp)
    : eng_(&eng), osnt_(&osnt), ctrl_(&ctrl), snmp_(snmp) {}

void OflopsContext::snmp_get(const std::string& oid) {
  if (!snmp_) {
    OSNT_WARN("oflops: snmp_get(%s) without an SNMP agent", oid.c_str());
    return;
  }
  snmp_->get(oid, [this](std::string o, std::uint64_t v, Picos) {
    if (active_) active_->on_snmp(*this, o, v);
  });
}

void OflopsContext::timer_in(Picos dt, std::uint64_t timer_id) {
  eng_->schedule_in(dt, [this, timer_id] {
    if (active_) active_->on_timer(*this, timer_id);
  });
}

Report OflopsContext::run(MeasurementModule& module, Picos timeout) {
  active_ = &module;
  // Route control-plane and data-plane events to the module.
  ctrl_->set_handler([this](openflow::Decoded d) {
    if (active_) active_->on_of_message(*this, d);
  });
  ctrl_->set_status_handler([this](bool up) {
    if (active_) active_->on_channel_status(*this, up);
  });
  osnt_->capture().set_on_record([this](const mon::CaptureRecord& rec) {
    if (active_) active_->on_capture(*this, rec);
  });

  module.start(*this);

  const Picos deadline = eng_->now() + timeout;
  while (!module.finished() && eng_->now() < deadline && !eng_->empty()) {
    eng_->step();
  }
  if (!module.finished()) {
    OSNT_WARN("oflops: module '%s' hit the %0.1fs timeout",
              module.name().c_str(), to_seconds(timeout));
  }

  active_ = nullptr;
  ctrl_->set_status_handler(nullptr);
  osnt_->capture().set_on_record(nullptr);
  return module.report();
}

Testbed::Testbed(dut::OpenFlowSwitchConfig sw_cfg, core::DeviceConfig osnt_cfg,
                 openflow::ChannelConfig chan_cfg)
    : osnt(eng, osnt_cfg), chan(eng, chan_cfg),
      sw(dut::GraphWired{}, eng, chan, sw_cfg),
      snmp(eng), ctx(eng, osnt, chan.controller(), &snmp) {
  const std::size_t n = std::min(osnt.num_ports(), sw.num_ports());
  for (std::size_t i = 0; i < n; ++i) hw::connect(osnt.port(i), sw.port(i));
  snmp.register_counter("ifInOctets.1", [this] {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < sw.num_ports(); ++i)
      total += sw.port(i).rx().bytes_received();
    return total;
  });
  snmp.register_counter("ifOutOctets.1", [this] {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < sw.num_ports(); ++i)
      total += sw.port(i).tx().bytes_sent();
    return total;
  });
  snmp.register_counter("ofFlowTableSize.0", [this] { return sw.table().size(); });
}

}  // namespace osnt::oflops
