#include "osnt/oflops/consistency.hpp"

#include <algorithm>

#include "osnt/gen/template_gen.hpp"
#include "osnt/net/flow.hpp"

namespace osnt::oflops {

using namespace osnt::openflow;

namespace {
constexpr std::uint32_t kSrcIp = (10u << 24) | 1;              // 10.0.0.1
constexpr std::uint32_t kDstBase = (10u << 24) | (1 << 8) | 1; // 10.0.1.1
constexpr std::uint16_t kSportBase = 1024;
constexpr std::uint16_t kDport = 5001;
}  // namespace

ConsistencyModule::ConsistencyModule(Config cfg) : cfg_(cfg) {
  cfg_.rule_count = std::min(cfg_.rule_count, std::size_t{1024});
  first_on_new_ns_.assign(cfg_.rule_count, -1.0);
}

FlowMod ConsistencyModule::rule_for(std::size_t flow,
                                    std::uint16_t out_port) const {
  FlowMod fm;
  fm.match = OfMatch::exact_5tuple(
      kSrcIp, kDstBase + static_cast<std::uint32_t>(flow),
      net::ipproto::kUdp,
      static_cast<std::uint16_t>(kSportBase + flow), kDport);
  fm.priority = 0x9000;
  fm.actions = {ActionOutput{out_port}};
  return fm;
}

int ConsistencyModule::flow_of_record(const mon::CaptureRecord& rec) const {
  const auto tuple =
      net::extract_flow(ByteSpan{rec.data.data(), rec.data.size()});
  if (!tuple) return -1;
  const std::uint32_t off = tuple->dst_ip.v - kDstBase;
  if (off >= cfg_.rule_count) return -1;
  return static_cast<int>(off);
}

void ConsistencyModule::send_generation(OflopsContext& ctx,
                                        std::uint16_t out_port) {
  for (std::size_t i = 0; i < cfg_.rule_count; ++i)
    ctx.send(rule_for(i, out_port));
}

void ConsistencyModule::start(OflopsContext& ctx) {
  // Install the initial generation: all flows → switch port 2 (OSNT 1).
  send_generation(ctx, 2);
  install_barrier_ = ctx.send(BarrierRequest{});

  // Aggregate probe traffic across all flows.
  gen::TxConfig txc;
  txc.rate = gen::RateSpec::gbps(cfg_.traffic_gbps);
  auto& tx = ctx.osnt().configure_tx(0, txc);
  gen::TemplateConfig tc;
  tc.flow_count = static_cast<std::uint32_t>(cfg_.rule_count);
  tc.vary_dst_ip = true;
  tx.set_source(std::make_unique<gen::TemplateSource>(
      tc, std::make_unique<gen::FixedSize>(256)));
}

void ConsistencyModule::on_of_message(OflopsContext& ctx,
                                      const openflow::Decoded& msg) {
  if (!std::holds_alternative<BarrierReply>(msg.msg)) return;
  if (phase_ == Phase::kInstall && msg.xid == install_barrier_) {
    phase_ = Phase::kWarmup;
    ctx.osnt().tx(0).start();
    ctx.timer_in(cfg_.warmup, kTimerBurst);
  }
}

void ConsistencyModule::on_timer(OflopsContext& ctx, std::uint64_t timer_id) {
  if (timer_id == kTimerBurst && phase_ == Phase::kWarmup) {
    // The update burst: redirect every flow → switch port 3 (OSNT 2).
    phase_ = Phase::kUpdating;
    t_burst_ = ctx.now();
    send_generation(ctx, 3);
    ctx.send(BarrierRequest{});
    return;
  }
  if (timer_id == kTimerFinish) {
    ctx.osnt().tx(0).stop();
    phase_ = Phase::kDone;
    done_ = true;
  }
}

void ConsistencyModule::on_channel_status(OflopsContext& ctx, bool up) {
  if (done_) return;
  if (!up) {
    ++disconnects_;
    return;
  }
  // Session restored. Any flow_mods or barriers in flight on the old
  // session were lost, so re-drive the generation the current phase
  // depends on. Re-sending is safe: each flow_mod replaces the entry
  // with the same match, so rules that did land are simply rewritten.
  if (phase_ == Phase::kInstall) {
    send_generation(ctx, 2);
    install_barrier_ = ctx.send(BarrierRequest{});
    rules_resent_ += cfg_.rule_count;
    return;
  }
  if (phase_ == Phase::kUpdating) {
    // Some update flow_mods may have died with the session; without this
    // re-drive, flows never switch and the module hangs to timeout. The
    // measured update window then genuinely includes the outage.
    send_generation(ctx, 3);
    ctx.send(BarrierRequest{});
    rules_resent_ += cfg_.rule_count;
  }
  // kWarmup and kDrain are timer-driven with nothing in flight.
}

void ConsistencyModule::on_capture(OflopsContext& ctx,
                                   const mon::CaptureRecord& rec) {
  if (phase_ == Phase::kInstall) return;
  const int flow = flow_of_record(rec);
  if (flow < 0) return;

  if (phase_ == Phase::kWarmup) {
    ++pre_burst_packets_;
    return;
  }
  const double t_ns = rec.ts.to_nanos();
  const double burst_ns = to_nanos(t_burst_);
  if (rec.port == 1) {
    // Old path. After the burst these are the inconsistency: packets
    // forwarded by rules whose replacement was already requested.
    if (t_ns > burst_ns) ++stale_packets_;
    return;
  }
  if (rec.port != 2) return;
  ++new_packets_;
  if (first_on_new_ns_[static_cast<std::size_t>(flow)] < 0) {
    first_on_new_ns_[static_cast<std::size_t>(flow)] = t_ns;
    install_time_ms_.add((t_ns - burst_ns) * 1e-6);
    ++flows_switched_;
    if (flows_switched_ == cfg_.rule_count && phase_ == Phase::kUpdating) {
      phase_ = Phase::kDrain;
      ctx.timer_in(cfg_.drain, kTimerFinish);
    }
  }
}

Report ConsistencyModule::report() const {
  Report r;
  r.module = name();
  r.add("rules_updated", static_cast<double>(cfg_.rule_count));
  r.add("flows_switched", static_cast<double>(flows_switched_));
  r.add("stale_packets_after_burst", static_cast<double>(stale_packets_));
  r.add("packets_on_new_path", static_cast<double>(new_packets_));
  r.add("channel_disconnects", static_cast<double>(disconnects_));
  r.add("rules_resent", static_cast<double>(rules_resent_));
  if (install_time_ms_.count() >= 2) {
    r.add("update_window_ms",
          install_time_ms_.max() - install_time_ms_.min(), "ms");
  }
  r.add_distribution("rule_effective_ms", install_time_ms_);
  return r;
}

}  // namespace osnt::oflops
