#include "osnt/oflops/packet_in_latency.hpp"

#include "osnt/gen/template_gen.hpp"
#include "osnt/tstamp/embed.hpp"

namespace osnt::oflops {

void PacketInLatencyModule::start(OflopsContext& ctx) {
  gen::TxConfig txc;
  txc.rate = gen::RateSpec::pps(cfg_.probe_pps);
  auto& tx = ctx.osnt().configure_tx(0, txc);
  gen::TemplateConfig tc;
  tc.count = cfg_.probes * 2;  // headroom for limiter losses
  tx.set_source(std::make_unique<gen::TemplateSource>(
      tc, std::make_unique<gen::FixedSize>(128)));
  tx.start();
}

void PacketInLatencyModule::on_of_message(OflopsContext& ctx,
                                          const openflow::Decoded& msg) {
  const auto* pin = std::get_if<openflow::PacketIn>(&msg.msg);
  if (!pin) return;
  // The embedded stamp sits at the default offset, inside the truncated
  // packet_in payload (128 B > 42 + 12).
  const auto stamp = tstamp::extract_timestamp(
      ByteSpan{pin->data.data(), pin->data.size()},
      tstamp::kDefaultEmbedOffset);
  if (!stamp) return;
  const double latency_ns = to_nanos(ctx.now()) - stamp->ts.to_nanos();
  latency_us_.add(latency_ns * 1e-3);
  ++received_;
  if (finished()) ctx.osnt().tx(0).stop();
}

Report PacketInLatencyModule::report() const {
  Report r;
  r.module = name();
  r.add("packet_ins_received", static_cast<double>(received_));
  r.add_distribution("packet_in_latency_us", latency_us_);
  return r;
}

}  // namespace osnt::oflops
