#include "osnt/dut/openflow_switch.hpp"

#include <algorithm>
#include <cmath>

#include "osnt/net/parser.hpp"

namespace osnt::dut {
namespace {

using namespace osnt::openflow;

/// Insert an 802.1Q tag (or rewrite the VID of an existing one).
void set_vlan(Bytes& frame, std::uint16_t vid) {
  if (frame.size() < net::EthHeader::kSize) return;
  const std::uint16_t ethertype = load_be16(frame.data() + 12);
  if (ethertype == static_cast<std::uint16_t>(net::EtherType::kVlan)) {
    const std::uint16_t tci = load_be16(frame.data() + 14);
    store_be16(frame.data() + 14,
               static_cast<std::uint16_t>((tci & 0xF000) | (vid & 0x0FFF)));
    return;
  }
  std::uint8_t tag[4];
  store_be16(tag, static_cast<std::uint16_t>(net::EtherType::kVlan));
  store_be16(tag + 2, vid & 0x0FFF);
  frame.insert(frame.begin() + 12, tag, tag + 4);
}

void strip_vlan(Bytes& frame) {
  if (frame.size() < net::EthHeader::kSize + 4) return;
  if (load_be16(frame.data() + 12) !=
      static_cast<std::uint16_t>(net::EtherType::kVlan))
    return;
  frame.erase(frame.begin() + 12, frame.begin() + 16);
}

}  // namespace

OpenFlowSwitch::OpenFlowSwitch(sim::Engine& eng,
                               openflow::ControlChannel& chan, Config cfg)
    : OpenFlowSwitch(GraphWired{}, eng, chan, std::move(cfg)) {}

OpenFlowSwitch::OpenFlowSwitch(GraphWired, sim::Engine& eng,
                               openflow::ControlChannel& chan, Config cfg)
    : eng_(&eng), cfg_(cfg), rng_(cfg.seed), ctrl_(&chan.switch_end()),
      table_(cfg.table), pin_tokens_(cfg.packet_in_limit_pps) {
  hw::EthPortConfig pc;
  pc.tx.queue_limit_bytes = cfg_.queue_bytes;
  for (std::size_t i = 0; i < cfg_.num_ports; ++i) {
    ports_.push_back(std::make_unique<hw::EthPort>(eng, pc));
    ports_[i]->rx().set_handler(
        [this, i](net::Packet pkt, Picos first_bit, Picos last_bit) {
          on_frame(i, std::move(pkt), first_bit, last_bit);
        });
  }
  if (cfg_.queue_rates.empty()) cfg_.queue_rates = {1.0};
  shaper_free_.assign(cfg_.num_ports,
                      std::vector<Picos>(cfg_.queue_rates.size(), 0));
  ctrl_->set_handler([this](openflow::Decoded d) { on_control(std::move(d)); });
}

Picos OpenFlowSwitch::agent_run(Picos cost) {
  if (cfg_.agent_jitter_ns > 0) {
    cost += from_nanos(std::abs(rng_.normal(0.0, cfg_.agent_jitter_ns)));
  }
  const Picos start = std::max(eng_->now(), agent_busy_);
  agent_busy_ = start + cost;
  return agent_busy_;
}

void OpenFlowSwitch::on_control(openflow::Decoded d) {
  std::visit(
      [&](auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, Hello>) {
          ctrl_->send(Hello{}, d.xid);
        } else if constexpr (std::is_same_v<T, EchoRequest>) {
          const Picos done = agent_run(cfg_.agent_service);
          const std::uint32_t xid = d.xid;
          eng_->schedule_at(
              done, [this, payload = std::move(msg.payload), xid]() mutable {
                ctrl_->send(EchoReply{std::move(payload)}, xid);
              });
        } else if constexpr (std::is_same_v<T, FeaturesRequest>) {
          const Picos done = agent_run(cfg_.agent_service);
          const std::uint32_t xid = d.xid;
          eng_->schedule_at(done, [this, xid] {
            FeaturesReply fr;
            fr.datapath_id = cfg_.datapath_id;
            fr.n_ports = static_cast<std::uint16_t>(ports_.size());
            ctrl_->send(fr, xid);
          });
        } else if constexpr (std::is_same_v<T, FlowMod>) {
          ++flow_mods_;
          // Stage 1: agent parses/validates the message (serial CPU).
          const Picos parsed = agent_run(cfg_.agent_service);
          // Stage 2: asynchronous hardware commit; the cost grows with
          // table occupancy (TCAM reshuffling).
          const std::uint32_t xid = d.xid;
          eng_->schedule_at(parsed, [this, mod = std::move(msg),
                                     xid]() mutable {
            const Picos cost =
                cfg_.commit_base +
                cfg_.commit_per_entry * static_cast<Picos>(table_.size());
            commit_busy_ = std::max(commit_busy_, eng_->now()) + cost;
            // The mod rides through both stages by move; nothing is shared.
            eng_->schedule_at(commit_busy_, [this, mod = std::move(mod), xid] {
              std::vector<FlowEntry> removed;
              const auto result = table_.apply(mod, eng_->now(), &removed);
              ++commits_done_;
              if (result == FlowTable::ModResult::kTableFull ||
                  result == FlowTable::ModResult::kOverlap) {
                ErrorMsg err;
                err.type = 3;  // OFPET_FLOW_MOD_FAILED
                err.code = result == FlowTable::ModResult::kTableFull
                               ? 0   // OFPFMFC_ALL_TABLES_FULL
                               : 2;  // OFPFMFC_OVERLAP
                err.data = encode(mod, xid);  // spec: offending message
                ctrl_->send(std::move(err), xid);
                return;
              }
              for (const auto& e : removed) {
                if (e.flags & off::kSendFlowRem)
                  send_flow_removed(e, FlowRemovedReason::kDelete);
              }
              schedule_expiry_scan();
            });
          });
        } else if constexpr (std::is_same_v<T, BarrierRequest>) {
          const Picos agent_done = agent_run(cfg_.agent_service);
          const std::uint32_t xid = d.xid;
          // The commit backlog is only known once the agent has parsed all
          // prior messages, so the covers-commit check must run *at*
          // agent_done, not now.
          eng_->schedule_at(agent_done, [this, xid] {
            const Picos done = cfg_.barrier_covers_commit
                                   ? std::max(eng_->now(), commit_busy_)
                                   : eng_->now();
            eng_->schedule_at(done,
                              [this, xid] { ctrl_->send(BarrierReply{}, xid); });
          });
        } else if constexpr (std::is_same_v<T, PacketOut>) {
          const Picos done = agent_run(cfg_.agent_service);
          eng_->schedule_at(done, [this, po = std::move(msg)]() mutable {
            net::Packet pkt{std::move(po.data)};
            const std::size_t in_port =
                po.in_port < ports_.size() ? po.in_port : SIZE_MAX;
            execute_actions(po.actions, in_port, std::move(pkt), eng_->now());
          });
        } else if constexpr (std::is_same_v<T, FlowStatsRequest>) {
          // Stats extraction cost scales with the table scan.
          const Picos done = agent_run(
              cfg_.agent_service +
              static_cast<Picos>(table_.size()) * 2 * kPicosPerMicro);
          const std::uint32_t xid = d.xid;
          eng_->schedule_at(done, [this, req = std::move(msg), xid] {
            FlowStatsReply reply;
            for (const auto* e : table_.collect_stats(req)) {
              FlowStatsEntry fe;
              fe.match = e->match;
              fe.priority = e->priority;
              fe.cookie = e->cookie;
              fe.idle_timeout = e->idle_timeout;
              fe.hard_timeout = e->hard_timeout;
              fe.packet_count = e->packet_count;
              fe.byte_count = e->byte_count;
              fe.actions = e->actions;
              const Picos age = eng_->now() - e->installed_at;
              fe.duration_sec = static_cast<std::uint32_t>(age / kPicosPerSec);
              fe.duration_nsec = static_cast<std::uint32_t>(
                  (age % kPicosPerSec) / kPicosPerNano);
              reply.flows.push_back(std::move(fe));
            }
            ctrl_->send(reply, xid);
          });
        } else if constexpr (std::is_same_v<T, AggregateStatsRequest>) {
          // Aggregation walks the table like a flow-stats scan.
          const Picos done = agent_run(
              cfg_.agent_service +
              static_cast<Picos>(table_.size()) * 2 * kPicosPerMicro);
          const std::uint32_t xid = d.xid;
          eng_->schedule_at(done, [this, req = std::move(msg), xid] {
            FlowStatsRequest as_flow;
            as_flow.match = req.match;
            as_flow.table_id = req.table_id;
            as_flow.out_port = req.out_port;
            AggregateStatsReply reply;
            for (const auto* e : table_.collect_stats(as_flow)) {
              reply.packet_count += e->packet_count;
              reply.byte_count += e->byte_count;
              ++reply.flow_count;
            }
            ctrl_->send(reply, xid);
          });
        } else if constexpr (std::is_same_v<T, PortStatsRequest>) {
          const Picos done = agent_run(
              cfg_.agent_service +
              static_cast<Picos>(ports_.size()) * kPicosPerMicro);
          const std::uint32_t xid = d.xid;
          eng_->schedule_at(done, [this, req = std::move(msg), xid] {
            PortStatsReply reply;
            for (std::size_t i = 0; i < ports_.size(); ++i) {
              const auto of_port = static_cast<std::uint16_t>(i + 1);
              if (req.port_no != ofpp::kNone && req.port_no != of_port)
                continue;
              PortStatsEntry ps;
              ps.port_no = of_port;
              ps.rx_packets = ports_[i]->rx().frames_received();
              ps.rx_bytes = ports_[i]->rx().bytes_received();
              ps.tx_packets = ports_[i]->tx().frames_sent();
              ps.tx_bytes = ports_[i]->tx().bytes_sent();
              ps.tx_dropped = ports_[i]->tx().drops();
              ps.rx_crc_err = ports_[i]->rx().crc_errors();
              ps.rx_errors =
                  ports_[i]->rx().runts() + ports_[i]->rx().giants() +
                  ports_[i]->rx().crc_errors();
              reply.ports.push_back(ps);
            }
            ctrl_->send(reply, xid);
          });
        } else if constexpr (std::is_same_v<T, QueueGetConfigRequest>) {
          const Picos done = agent_run(cfg_.agent_service);
          const std::uint16_t port = msg.port;
          const std::uint32_t xid = d.xid;
          eng_->schedule_at(done, [this, port, xid] {
            QueueGetConfigReply reply;
            reply.port = port;
            for (std::size_t q = 0; q < cfg_.queue_rates.size(); ++q) {
              QueueDesc desc;
              desc.queue_id = static_cast<std::uint32_t>(q);
              desc.min_rate_tenths =
                  static_cast<std::uint16_t>(cfg_.queue_rates[q] * 1000.0);
              reply.queues.push_back(desc);
            }
            ctrl_->send(reply, xid);
          });
        } else {
          // EchoReply/FeaturesReply/etc. arriving at a switch: ignore.
        }
      },
      d.msg);
}

void OpenFlowSwitch::on_frame(std::size_t in_port, net::Packet pkt,
                              Picos first_bit, Picos /*last_bit*/) {
  (void)first_bit;
  auto parsed = net::parse_packet(pkt.bytes());
  if (!parsed) return;
  const OfMatch concrete =
      OfMatch::from_packet(*parsed, static_cast<std::uint16_t>(in_port + 1));

  const FlowEntry* entry = table_.lookup(concrete, eng_->now(), pkt.wire_len());
  if (!entry) {
    ++misses_;
    send_packet_in(in_port, pkt);
    return;
  }

  Picos latency = cfg_.pipeline_latency;
  if (cfg_.latency_jitter_ns > 0)
    latency += from_nanos(std::abs(rng_.normal(0.0, cfg_.latency_jitter_ns)));
  execute_actions(entry->actions, in_port, std::move(pkt),
                  eng_->now() + latency);
}

void OpenFlowSwitch::execute_actions(
    const std::vector<openflow::Action>& actions, std::size_t in_port,
    net::Packet pkt, Picos release) {
  // Header-modifying actions cost extra pipeline (or slow-path) time.
  for (const auto& action : actions) {
    if (!std::holds_alternative<ActionOutput>(action))
      release += cfg_.action_modify_latency;
  }
  for (const auto& action : actions) {
    if (const auto* sv = std::get_if<ActionSetVlanVid>(&action)) {
      set_vlan(pkt.data, sv->vlan_vid);
    } else if (std::get_if<ActionStripVlan>(&action)) {
      strip_vlan(pkt.data);
    } else if (const auto* enq = std::get_if<ActionEnqueue>(&action)) {
      // Queue shaper: serialize this queue's frames at its rate share.
      if (enq->port >= 1 && enq->port <= ports_.size() &&
          enq->queue_id < cfg_.queue_rates.size()) {
        const std::size_t port = enq->port - 1;
        const double rate = cfg_.queue_rates[enq->queue_id];
        Picos& shaper = shaper_free_[port][enq->queue_id];
        const Picos start = std::max(release, shaper);
        shaper = start + net::serialization_time(pkt.line_len(),
                                                 10.0 * std::max(rate, 1e-6));
        if (enq->queue_id != 0) ++enqueue_shaped_;
        ++forwarded_;
        eng_->schedule_at(start, [this, port, p = net::Packet{pkt}]() mutable {
          ports_[port]->tx().transmit(std::move(p));
        });
      }
    } else if (const auto* out = std::get_if<ActionOutput>(&action)) {
      auto deliver = [this, release](std::size_t port, net::Packet p) {
        ++forwarded_;
        eng_->schedule_at(release, [this, port, p = std::move(p)]() mutable {
          ports_[port]->tx().transmit(std::move(p));
        });
      };
      if (out->port == ofpp::kController) {
        send_packet_in(in_port, pkt);
      } else if (out->port == ofpp::kFlood || out->port == ofpp::kAll) {
        for (std::size_t i = 0; i < ports_.size(); ++i) {
          if (i != in_port) deliver(i, net::Packet{pkt});
        }
      } else if (out->port == ofpp::kInPort) {
        if (in_port < ports_.size()) deliver(in_port, net::Packet{pkt});
      } else if (out->port >= 1 && out->port <= ports_.size()) {
        deliver(out->port - 1, net::Packet{pkt});
      }
    }
  }
  // Empty action list = drop (per OF 1.0).
}

void OpenFlowSwitch::send_flow_removed(const openflow::FlowEntry& e,
                                       openflow::FlowRemovedReason reason) {
  FlowRemoved fr;
  fr.match = e.match;
  fr.cookie = e.cookie;
  fr.priority = e.priority;
  fr.reason = reason;
  fr.idle_timeout = e.idle_timeout;
  fr.packet_count = e.packet_count;
  fr.byte_count = e.byte_count;
  const Picos age = eng_->now() - e.installed_at;
  fr.duration_sec = static_cast<std::uint32_t>(age / kPicosPerSec);
  fr.duration_nsec =
      static_cast<std::uint32_t>((age % kPicosPerSec) / kPicosPerNano);
  ctrl_->send(fr);
}

void OpenFlowSwitch::schedule_expiry_scan() {
  if (expiry_scan_pending_) return;
  // Only arm the scan while some entry can actually expire, so an idle
  // simulation still drains its event queue.
  bool needed = false;
  for (const auto& e : table_.entries()) {
    if (e.idle_timeout != 0 || e.hard_timeout != 0) {
      needed = true;
      break;
    }
  }
  if (!needed) return;
  expiry_scan_pending_ = true;
  eng_->schedule_in(cfg_.expiry_scan_interval, [this] {
    expiry_scan_pending_ = false;
    for (const auto& e : table_.expire(eng_->now())) {
      const bool idle =
          e.idle_timeout != 0 &&
          eng_->now() - e.last_used >=
              static_cast<Picos>(e.idle_timeout) * kPicosPerSec;
      if (e.flags & off::kSendFlowRem) {
        send_flow_removed(e, idle ? FlowRemovedReason::kIdleTimeout
                                  : FlowRemovedReason::kHardTimeout);
      }
    }
    schedule_expiry_scan();
  });
}

void OpenFlowSwitch::send_packet_in(std::size_t in_port,
                                    const net::Packet& pkt) {
  // Token-bucket rate limiter, as commercial switches protect their CPU.
  if (cfg_.packet_in_limit_pps > 0) {
    const Picos now = eng_->now();
    pin_tokens_ = std::min(
        cfg_.packet_in_limit_pps,
        pin_tokens_ + to_seconds(now - pin_last_refill_) *
                          cfg_.packet_in_limit_pps);
    pin_last_refill_ = now;
    if (pin_tokens_ < 1.0) {
      ++packet_ins_limited_;
      return;
    }
    pin_tokens_ -= 1.0;
  }
  const Picos done = agent_run(cfg_.agent_service);
  PacketIn pin;
  pin.total_len = static_cast<std::uint16_t>(pkt.size());
  pin.in_port = static_cast<std::uint16_t>(in_port + 1);
  pin.reason = PacketInReason::kNoMatch;
  const std::size_t keep = std::min(cfg_.packet_in_trunc, pkt.size());
  pin.data.assign(pkt.data.begin(),
                  pkt.data.begin() + static_cast<std::ptrdiff_t>(keep));
  eng_->schedule_at(done, [this, pin = std::move(pin)]() mutable {
    ++packet_ins_;
    ctrl_->send(std::move(pin));
  });
}

}  // namespace osnt::dut
