#include "osnt/dut/legacy_switch.hpp"

#include <algorithm>

#include "osnt/net/parser.hpp"

namespace osnt::dut {

LegacySwitch::LegacySwitch(sim::Engine& eng, Config cfg)
    : LegacySwitch(GraphWired{}, eng, std::move(cfg)) {}

LegacySwitch::LegacySwitch(GraphWired, sim::Engine& eng, Config cfg)
    : eng_(&eng), cfg_(cfg), rng_(cfg.seed) {
  hw::EthPortConfig pc;
  pc.tx.queue_limit_bytes = cfg_.queue_bytes;
  for (std::size_t i = 0; i < cfg_.num_ports; ++i) {
    ports_.push_back(std::make_unique<hw::EthPort>(eng, pc));
    ports_[i]->rx().set_handler(
        [this, i](net::Packet pkt, Picos first_bit, Picos last_bit) {
          on_frame(i, std::move(pkt), first_bit, last_bit);
        });
  }
}

void LegacySwitch::add_static_mac(const net::MacAddr& mac, std::size_t port) {
  mac_table_[mac.to_u64()] = {port, 0, true};
}

std::uint64_t LegacySwitch::frames_dropped() const noexcept {
  std::uint64_t n = 0;
  for (const auto& p : ports_) n += p->tx().drops();
  return n;
}

void LegacySwitch::on_frame(std::size_t in_port, net::Packet pkt,
                            Picos first_bit, Picos last_bit) {
  auto eth = net::EthHeader::read(pkt.bytes());
  if (!eth) return;

  // --- learning (static entries are never overwritten) ---
  if (!eth->src.is_multicast()) {
    const auto it = mac_table_.find(eth->src.to_u64());
    if (it != mac_table_.end()) {
      if (!it->second.is_static) it->second = {in_port, eng_->now(), false};
    } else if (mac_table_.size() < cfg_.mac_table_size) {
      mac_table_[eth->src.to_u64()] = {in_port, eng_->now(), false};
    }
  }

  // --- lookup stage (serial, packet-rate-limited when configured) ---
  Picos lookup_done = eng_->now();
  if (cfg_.lookup_rate_mpps > 0.0) {
    const Picos per_lookup =
        static_cast<Picos>(1e6 / cfg_.lookup_rate_mpps);  // ps per packet
    const Picos start = std::max(eng_->now(), lookup_busy_);
    if (start - eng_->now() > cfg_.lookup_queue_limit) {
      ++lookup_drops_;
      return;  // ingress queue overflow
    }
    lookup_busy_ = start + per_lookup;
    lookup_done = lookup_busy_;
  }

  // --- forwarding decision ---
  Picos latency = cfg_.pipeline_latency;
  if (cfg_.latency_jitter_ns > 0) {
    latency += from_nanos(
        std::abs(rng_.normal(0.0, cfg_.latency_jitter_ns)));
  }
  // Cut-through: the egress decision races the tail of the frame, so the
  // effective release time is anchored on the first bit. The handler runs
  // at last_bit, so the release clamps to "now" when the frame is longer
  // than the pipeline — matching real cut-through switches degrading to
  // store-and-forward timing for short pipelines.
  const Picos anchor = cfg_.cut_through ? first_bit : last_bit;
  const Picos release =
      std::max({anchor + latency, eng_->now(), lookup_done});

  std::size_t out = SIZE_MAX;
  if (!eth->dst.is_multicast()) {
    const auto it = mac_table_.find(eth->dst.to_u64());
    if (it != mac_table_.end() &&
        (it->second.is_static ||
         eng_->now() - it->second.last_seen <= cfg_.mac_aging)) {
      out = it->second.port;
    }
  }

  if (out != SIZE_MAX) {
    if (out == in_port) return;  // hairpin suppression
    ++forwarded_;
    emit(out, std::move(pkt), release);
    return;
  }

  if (!cfg_.flood_unknown && !eth->dst.is_multicast()) {
    ++unknown_dropped_;
    return;
  }

  // Unknown unicast / multicast / broadcast: flood.
  ++flooded_;
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (i == in_port) continue;
    emit(i, net::Packet{pkt}, release);
  }
}

void LegacySwitch::emit(std::size_t out_port, net::Packet pkt,
                        Picos not_before) {
  const sim::Engine::CategoryScope cat(*eng_, sim::EventCategory::kDut);
  eng_->schedule_at(not_before, [this, out_port, pkt = std::move(pkt)]() mutable {
    ports_[out_port]->tx().transmit(std::move(pkt));
  });
}

}  // namespace osnt::dut
