#include "osnt/dut/snmp.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace osnt::dut {

SnmpAgent::SnmpAgent(sim::Engine& eng, Config cfg)
    : eng_(&eng), cfg_(cfg), rng_(cfg.seed) {}

void SnmpAgent::register_counter(const std::string& oid, CounterFn fn) {
  live_[oid] = std::move(fn);
}

void SnmpAgent::refresh_if_due() {
  const Picos now = eng_->now();
  if (last_refresh_ >= 0 && now - last_refresh_ < cfg_.refresh_interval)
    return;
  // Snap to the refresh grid so staleness is deterministic.
  last_refresh_ = (now / cfg_.refresh_interval) * cfg_.refresh_interval;
  for (const auto& [oid, fn] : live_) snapshot_[oid] = fn();
}

void SnmpAgent::get(const std::string& oid, ResponseFn cb) {
  refresh_if_due();
  std::uint64_t value = 0;
  if (const auto it = snapshot_.find(oid); it != snapshot_.end())
    value = it->second;
  Picos delay = cfg_.response_latency;
  if (cfg_.response_jitter_ms > 0) {
    delay += static_cast<Picos>(
        std::abs(rng_.normal(0.0, cfg_.response_jitter_ms)) *
        static_cast<double>(kPicosPerMilli));
  }
  ++polls_;
  eng_->schedule_in(delay, [oid, value, cb = std::move(cb), this] {
    cb(oid, value, eng_->now());
  });
}

}  // namespace osnt::dut
