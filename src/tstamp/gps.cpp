#include "osnt/tstamp/gps.hpp"

#include <algorithm>
#include <cmath>

namespace osnt::tstamp {

std::optional<Picos> GpsModel::next_pps_after(Picos after) {
  if (!cfg_.connected) return std::nullopt;
  // PPS edges occur near every whole true second. Issue each second once.
  std::int64_t sec = after / kPicosPerSec + 1;
  sec = std::max(sec, last_second_issued_ + 1);
  last_second_issued_ = sec;
  Picos edge = sec * kPicosPerSec;
  if (cfg_.jitter_rms > 0) {
    edge += static_cast<Picos>(
        rng_.normal(0.0, static_cast<double>(cfg_.jitter_rms)));
  }
  return std::max(edge, after + 1);
}

}  // namespace osnt::tstamp
