#include "osnt/tstamp/embed.hpp"

namespace osnt::tstamp {

bool embed_timestamp(MutByteSpan frame, std::size_t offset,
                     EmbeddedStamp stamp) noexcept {
  if (offset + kEmbedSize > frame.size()) return false;
  store_be64(frame.data() + offset, stamp.ts.raw);
  store_be32(frame.data() + offset + 8, stamp.seq);
  return true;
}

std::optional<EmbeddedStamp> extract_timestamp(ByteSpan frame,
                                               std::size_t offset) noexcept {
  if (offset + kEmbedSize > frame.size()) return std::nullopt;
  EmbeddedStamp s;
  s.ts = Timestamp::from_raw(load_be64(frame.data() + offset));
  s.seq = load_be32(frame.data() + offset + 8);
  return s;
}

}  // namespace osnt::tstamp
