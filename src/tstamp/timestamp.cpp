#include "osnt/tstamp/clock.hpp"

#include <cmath>

namespace osnt::tstamp {

DisciplinedClock::DisciplinedClock(GpsModel& gps, Config cfg)
    : osc_(cfg.osc), gps_(&gps), cfg_(cfg) {
  // increment = 2^64 / nominal_hz, in 2^-64 s per tick.
  const double inc = std::ldexp(1.0, 64) / cfg_.osc.nominal_hz;
  nominal_inc_ = static_cast<std::uint64_t>(inc);
  increment_ = nominal_inc_;
  if (cfg_.discipline) next_pps_ = gps_->next_pps_after(0);
}

void DisciplinedClock::advance_to(Picos truth) {
  const std::uint64_t ticks = osc_.ticks_at(truth);
  acc_ += static_cast<unsigned __int128>(ticks - last_ticks_) * increment_;
  last_ticks_ = ticks;
}

void DisciplinedClock::process_pps(Picos edge) {
  advance_to(edge);
  ++pps_count_;
  // GPS tells us which absolute second this edge marks.
  const std::int64_t second = (edge + kPicosPerSec / 2) / kPicosPerSec;
  const unsigned __int128 expected =
      static_cast<unsigned __int128>(second) << 64;
  const double err_ns =
      static_cast<double>(static_cast<__int128>(acc_ - expected)) *
      std::ldexp(1.0, -64) * 1e9;
  last_err_ns_ = err_ns;

  if (std::abs(err_ns) > cfg_.step_threshold_ns) {
    // Cold start / gross error: step the phase, and fold the whole error
    // (accumulated over ~1 s) into the frequency trim so a large static
    // ppm offset converges instead of stepping every second.
    acc_ = expected;
    trim_ -= err_ns * 1e-9;
    increment_ = static_cast<std::uint64_t>(
        static_cast<double>(nominal_inc_) * (1.0 + trim_));
    return;
  }
  // PI servo (NTP-style PLL+FLL): the integral `trim_` is the persistent
  // frequency estimate; the proportional term slews out `kp` of the phase
  // error over the next second on top of it.
  trim_ += -cfg_.servo_ki * err_ns * 1e-9;
  const double phase_slew = -cfg_.servo_kp * err_ns * 1e-9;
  increment_ = static_cast<std::uint64_t>(
      static_cast<double>(nominal_inc_) * (1.0 + trim_ + phase_slew));
}

Timestamp DisciplinedClock::now(Picos truth) {
  if (cfg_.discipline) {
    // Holdover recovery: when the GPS was absent, re-poll it about once
    // per second of simulated time so discipline resumes on reconnect.
    if (!next_pps_ && truth >= holdover_recheck_) {
      next_pps_ = gps_->next_pps_after(truth);
      holdover_recheck_ = truth + kPicosPerSec;
    }
    while (next_pps_ && *next_pps_ <= truth) {
      const Picos edge = *next_pps_;
      process_pps(edge);
      next_pps_ = gps_->next_pps_after(edge);
      if (!next_pps_) holdover_recheck_ = edge + kPicosPerSec;
    }
  }
  advance_to(truth);
  return Timestamp::from_raw(static_cast<std::uint64_t>(acc_ >> 32));
}

double DisciplinedClock::error_nanos(Picos truth) {
  const Timestamp t = now(truth);
  return t.to_nanos() - to_nanos(truth);
}

}  // namespace osnt::tstamp
