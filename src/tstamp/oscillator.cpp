#include "osnt/tstamp/oscillator.hpp"

#include <algorithm>
#include <cmath>

namespace osnt::tstamp {

std::uint64_t Oscillator::ticks_at(Picos truth) {
  truth = std::max(truth, last_truth_);
  // Integrate in bounded steps so the random-walk statistics don't depend
  // on the query pattern more than necessary.
  constexpr Picos kMaxStep = 1 * kPicosPerMilli;
  while (last_truth_ < truth) {
    const Picos step = std::min(kMaxStep, truth - last_truth_);
    const double dt = to_seconds(step);
    if (cfg_.random_walk_ppm > 0.0) {
      freq_error_ppm_ +=
          cfg_.random_walk_ppm * std::sqrt(dt) * rng_.normal(0.0, 1.0);
    }
    phase_ticks_ += dt * cfg_.nominal_hz * (1.0 + freq_error_ppm_ * 1e-6);
    last_truth_ += step;
  }
  return static_cast<std::uint64_t>(phase_ticks_);
}

}  // namespace osnt::tstamp
