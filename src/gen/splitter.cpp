#include "osnt/gen/splitter.hpp"

#include <stdexcept>

#include "osnt/net/flow.hpp"

namespace osnt::gen {

std::vector<std::unique_ptr<PcapReplaySource>> split_trace(
    const std::vector<net::PcapRecord>& records, std::size_t ports,
    ReplayConfig cfg) {
  if (ports == 0) throw std::invalid_argument("split_trace: zero ports");
  std::vector<std::vector<net::PcapRecord>> buckets(ports);
  std::size_t rr = 0;
  for (const auto& rec : records) {
    std::size_t idx;
    if (const auto flow =
            net::extract_flow(ByteSpan{rec.data.data(), rec.data.size()})) {
      idx = static_cast<std::size_t>(flow->hash() % ports);
    } else {
      idx = rr++ % ports;  // non-IP: spread round-robin
    }
    buckets[idx].push_back(rec);
  }
  std::vector<std::unique_ptr<PcapReplaySource>> out;
  out.reserve(ports);
  for (auto& bucket : buckets) {
    // Empty buckets (few flows, many ports) yield no source slot — keep
    // positional correspondence by emitting nullptr so callers can skip.
    out.push_back(bucket.empty()
                      ? nullptr
                      : std::make_unique<PcapReplaySource>(std::move(bucket),
                                                           cfg));
  }
  return out;
}

std::vector<std::unique_ptr<PcapReplaySource>> split_trace_file(
    const std::string& path, std::size_t ports, ReplayConfig cfg) {
  return split_trace(net::PcapReader::read_all(path), ports, cfg);
}

}  // namespace osnt::gen
