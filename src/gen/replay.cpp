#include "osnt/gen/replay.hpp"

#include <algorithm>
#include <stdexcept>

namespace osnt::gen {

PcapReplaySource::PcapReplaySource(const std::string& path, ReplayConfig cfg)
    : PcapReplaySource(net::PcapReader::read_all(path), cfg) {}

PcapReplaySource::PcapReplaySource(std::vector<net::PcapRecord> records,
                                   ReplayConfig cfg)
    : records_(std::move(records)), cfg_(cfg) {
  if (records_.empty())
    throw std::invalid_argument("PcapReplaySource: empty trace");
  if (cfg_.speedup <= 0.0)
    throw std::invalid_argument("PcapReplaySource: speedup must be > 0");
}

std::optional<TimedPacket> PcapReplaySource::next() {
  if (idx_ >= records_.size()) {
    ++loops_done_;
    if (cfg_.loops != 0 && loops_done_ >= cfg_.loops) return std::nullopt;
    idx_ = 0;
  }
  const auto& rec = records_[idx_];
  TimedPacket tp;
  tp.pkt = net::Packet{rec.data};
  tp.pkt.id = idx_;
  if (cfg_.timing == ReplayTiming::kAsRecorded) {
    // Gap to the *next* record; the last record of a loop reuses the
    // previous gap (there is no successor to difference against).
    std::uint64_t gap_ns = 0;
    if (idx_ + 1 < records_.size()) {
      gap_ns = records_[idx_ + 1].ts_nanos - rec.ts_nanos;
    } else if (idx_ > 0) {
      gap_ns = rec.ts_nanos - records_[idx_ - 1].ts_nanos;
    }
    tp.gap_hint = static_cast<Picos>(
        static_cast<double>(gap_ns) * 1000.0 / cfg_.speedup);
  }
  ++idx_;
  return tp;
}

void PcapReplaySource::rewind() {
  idx_ = 0;
  loops_done_ = 0;
}

}  // namespace osnt::gen
