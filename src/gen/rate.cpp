#include "osnt/gen/rate.hpp"

#include <algorithm>

namespace osnt::gen {

Picos RateController::departure_interval(
    std::size_t line_len_bytes) const noexcept {
  const Picos air = net::serialization_time(line_len_bytes, link_gbps_);
  Picos interval = air;
  switch (spec_.mode) {
    case RateMode::kLineRateFraction: {
      const double f = std::clamp(spec_.value, 1e-9, 1.0);
      interval = static_cast<Picos>(static_cast<double>(air) / f);
      break;
    }
    case RateMode::kGbps: {
      const double g = std::max(spec_.value, 1e-9);
      interval = net::serialization_time(line_len_bytes, g);
      break;
    }
    case RateMode::kPps: {
      const double p = std::max(spec_.value, 1e-9);
      interval = static_cast<Picos>(1e12 / p);
      break;
    }
    case RateMode::kGapNanos:
      interval = air + from_nanos(spec_.value);
      break;
  }
  // Never ask for faster than the line can carry.
  return std::max(interval, air);
}

double RateController::offered_gbps(std::size_t line_len_bytes) const noexcept {
  const Picos interval = departure_interval(line_len_bytes);
  return static_cast<double>(line_len_bytes) * 8.0 * 1000.0 /
         static_cast<double>(interval);
}

}  // namespace osnt::gen
