#include "osnt/gen/template_gen.hpp"

#include <algorithm>
#include <stdexcept>

#include "osnt/net/builder.hpp"

namespace osnt::gen {

TemplateSource::TemplateSource(TemplateConfig cfg,
                               std::unique_ptr<SizeModel> size_model)
    : cfg_(cfg), size_(std::move(size_model)), rng_(cfg.seed) {
  if (!size_) throw std::invalid_argument("TemplateSource: null size model");
  if (cfg_.flow_count == 0) cfg_.flow_count = 1;
}

std::optional<TimedPacket> TemplateSource::next() {
  if (cfg_.count != 0 && produced_ >= cfg_.count) return std::nullopt;
  const std::uint32_t flow =
      static_cast<std::uint32_t>(produced_ % cfg_.flow_count);

  std::size_t frame_len = std::clamp(size_->sample(rng_), net::kEthMinFrame,
                                     std::size_t{net::kEthMaxFrame});

  net::PacketBuilder b;
  b.eth(cfg_.src_mac, cfg_.dst_mac);
  if (cfg_.vlan_id != 0) b.vlan(cfg_.vlan_id);
  net::Ipv4Addr dst = cfg_.dst_ip;
  if (cfg_.vary_dst_ip) dst.v += flow;
  b.ipv4(cfg_.src_ip, dst, cfg_.protocol);
  // Flows differ in src_port (and optionally dst_ip); dst_port stays
  // fixed so one wildcard rule can select the whole probe stream.
  const auto sport = static_cast<std::uint16_t>(cfg_.src_port + flow % 1024);
  const auto dport = cfg_.dst_port;
  if (cfg_.protocol == net::ipproto::kTcp) {
    b.tcp(sport, dport, static_cast<std::uint32_t>(produced_ * 1460));
  } else {
    b.udp(sport, dport);
  }
  b.pad_to_frame(frame_len);

  TimedPacket tp;
  tp.pkt = b.build();
  tp.pkt.id = produced_;
  ++produced_;
  return tp;
}

}  // namespace osnt::gen
