#include "osnt/gen/models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace osnt::gen {

Picos ConstantGap::sample(Rng&, Picos mean, Picos min_gap) {
  return std::max(mean, min_gap);
}

Picos PoissonGap::sample(Rng& rng, Picos mean, Picos min_gap) {
  const double m = static_cast<double>(std::max(mean, min_gap));
  const Picos g = static_cast<Picos>(rng.exponential(m));
  return std::max(g, min_gap);
}

Picos BurstGap::sample(Rng&, Picos mean, Picos min_gap) {
  // Long-run mean over a burst of N frames + 1 idle gap must equal `mean`:
  // (N-1)*min_gap + idle = N*mean  →  idle = N*mean - (N-1)*min_gap.
  ++in_burst_;
  if (in_burst_ < burst_len_) return min_gap;
  in_burst_ = 0;
  const auto n = static_cast<Picos>(burst_len_);
  const Picos idle = n * std::max(mean, min_gap) - (n - 1) * min_gap;
  return std::max(idle, min_gap);
}

namespace {
// E[X] of a bounded Pareto on [lo, hi] with shape alpha != 1.
double bounded_pareto_mean(double alpha, double lo, double hi) {
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return la * alpha / (alpha - 1.0) *
         (1.0 / std::pow(lo, alpha - 1.0) - 1.0 / std::pow(hi, alpha - 1.0)) /
         (1.0 - la / ha);
}
constexpr double kParetoLo = 1.0;
constexpr double kParetoHi = 1000.0;
}  // namespace

ParetoGap::ParetoGap(double alpha)
    : alpha_(alpha), raw_mean_(bounded_pareto_mean(alpha, kParetoLo, kParetoHi)) {
  if (alpha <= 1.0 || alpha > 2.5)
    throw std::invalid_argument("ParetoGap: alpha must be in (1, 2.5]");
}

Picos ParetoGap::sample(Rng& rng, Picos mean, Picos min_gap) {
  const double x = rng.pareto(alpha_, kParetoLo, kParetoHi) / raw_mean_;
  const Picos g = static_cast<Picos>(
      x * static_cast<double>(std::max(mean, min_gap)));
  return std::max(g, min_gap);
}

std::size_t UniformSize::sample(Rng& rng) {
  return static_cast<std::size_t>(rng.uniform_int(lo_, hi_));
}

std::size_t ImixSize::sample(Rng& rng) {
  const std::uint64_t r = rng.uniform_int(0, 11);
  if (r < 7) return 64;
  if (r < 11) return 594;
  return 1518;
}

WeightedSize::WeightedSize(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
  if (entries_.empty())
    throw std::invalid_argument("WeightedSize: empty distribution");
  for (const auto& e : entries_) {
    if (e.weight <= 0.0)
      throw std::invalid_argument("WeightedSize: non-positive weight");
    total_weight_ += e.weight;
  }
}

std::size_t WeightedSize::sample(Rng& rng) {
  double r = rng.uniform(0.0, total_weight_);
  for (const auto& e : entries_) {
    r -= e.weight;
    if (r <= 0.0) return e.size;
  }
  return entries_.back().size;
}

}  // namespace osnt::gen
