#include "osnt/gen/synth.hpp"

#include <algorithm>
#include <stdexcept>

#include "osnt/burst/schedule.hpp"

namespace osnt::gen {

BurstEnvelopeGap::BurstEnvelopeGap(const burst::PatternConfig& cfg,
                                   Picos horizon) {
  const burst::BurstSchedule sched{cfg, horizon};
  departures_.reserve(sched.total_frames());
  for (const burst::Burst& b : sched.bursts()) {
    for (std::size_t i = 0; i < b.count; ++i) {
      departures_.push_back(b.start + sched.offsets()[b.first + i]);
    }
  }
  if (departures_.empty()) {
    throw burst::BurstError("burst: envelope renders no frames over horizon");
  }
  // Wrap as if the whole envelope repeated after the horizon.
  wrap_gap_ = horizon - departures_.back() + departures_.front();
}

Picos BurstEnvelopeGap::sample(Rng& /*rng*/, Picos /*mean*/, Picos min_gap) {
  Picos gap;
  if (next_ < departures_.size()) {
    gap = departures_[next_] - departures_[next_ - 1];
    ++next_;
  } else {
    gap = wrap_gap_;
    next_ = 1;
  }
  return std::max(gap, min_gap);
}

std::vector<net::PcapRecord> synthesize_trace(PacketSource& source,
                                              GapModel& gaps,
                                              const SynthSpec& spec) {
  std::vector<net::PcapRecord> out;
  out.reserve(spec.frames);
  Rng rng{spec.seed};
  std::uint64_t t_ns = spec.start_ns;
  const auto mean = static_cast<Picos>(spec.mean_gap_ns) * kPicosPerNano;
  for (std::size_t i = 0; i < spec.frames; ++i) {
    auto tp = source.next();
    if (!tp)
      throw std::invalid_argument(
          "synthesize_trace: source exhausted before frame count");
    net::PcapRecord rec;
    rec.ts_nanos = t_ns;
    rec.orig_len = static_cast<std::uint32_t>(tp->pkt.size());
    rec.data = std::move(tp->pkt.data);
    out.push_back(std::move(rec));
    const Picos gap = gaps.sample(rng, mean, kPicosPerNano);
    t_ns += static_cast<std::uint64_t>(gap / kPicosPerNano);
  }
  return out;
}

std::size_t synthesize_trace_file(const std::string& path,
                                  PacketSource& source, GapModel& gaps,
                                  const SynthSpec& spec) {
  const auto records = synthesize_trace(source, gaps, spec);
  net::PcapWriter writer{path, /*nanosecond=*/true};
  for (const auto& rec : records)
    writer.write(rec.ts_nanos, ByteSpan{rec.data.data(), rec.data.size()},
                 rec.orig_len);
  return writer.records_written();
}

}  // namespace osnt::gen
