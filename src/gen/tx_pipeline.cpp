#include "osnt/gen/tx_pipeline.hpp"

#include <stdexcept>

#include "osnt/common/log.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt::gen {

TxPipeline::TxPipeline(sim::Engine& eng, hw::TxMac& mac,
                       tstamp::DisciplinedClock& clock, TxConfig cfg)
    : eng_(&eng), mac_(&mac), clock_(&clock), cfg_(cfg),
      rate_(cfg.rate), gap_model_(std::make_unique<ConstantGap>()),
      rng_(cfg.seed) {}

TxPipeline::~TxPipeline() {
  if (!telemetry::enabled() || scheduled_ == 0) return;
  auto& reg = telemetry::registry();
  reg.counter("gen.tx.frames_scheduled").add(scheduled_);
  reg.counter("gen.tx.frames_sent").add(frames_);
  reg.counter("gen.tx.mac_rejects").add(mac_rejects_);
  reg.counter("gen.tx.wire_bytes").add(bytes_);
  reg.histogram("gen.tx.frame_bytes").merge(frame_bytes_);
}

void TxPipeline::start() {
  if (!source_) throw std::logic_error("TxPipeline: no source set");
  if (running_) return;
  running_ = true;
  const sim::Engine::CategoryScope cat(*eng_, sim::EventCategory::kGen);
  pending_ = eng_->schedule_in(cfg_.start_delay, [this] { send_one(); });
}

void TxPipeline::stop() {
  running_ = false;
  if (pending_) {
    eng_->cancel(pending_);
    pending_ = {};
  }
}

void TxPipeline::kick() {
  if (!running_ || pending_) return;
  const sim::Engine::CategoryScope cat(*eng_, sim::EventCategory::kGen);
  pending_ = eng_->schedule_in(0, [this] { send_one(); });
}

void TxPipeline::send_one() {
  pending_ = {};
  if (!running_) return;
  auto tp = source_->next();
  if (!tp) {
    // A blocked source is dry, not done: park with no pull pending and
    // wait for kick(). The pacing gap of the previous frame has already
    // elapsed (this pull ran at the paced slot), so an immediate resume
    // cannot compress inter-departure times below the configured rate.
    if (source_->blocked()) return;
    running_ = false;
    return;
  }
  net::Packet pkt = std::move(tp->pkt);
  const std::size_t line_len = pkt.line_len();

  // TX timestamp taken immediately before the MAC, as in the hardware.
  const tstamp::Timestamp ts = clock_->now(eng_->now());
  if (cfg_.embed_timestamp) {
    if (!tstamp::embed_timestamp(pkt.mut_bytes(), cfg_.embed_offset,
                                 {ts, seq_})) {
      OSNT_WARN("TxPipeline: frame of %zu B too short to embed at offset %zu",
                pkt.size(), cfg_.embed_offset);
    }
  }
  ++seq_;

  pkt.tx_truth = eng_->now();
  ++scheduled_;
  const auto start = mac_->transmit(std::move(pkt));
  const Picos air = net::serialization_time(line_len, rate_.link_gbps());
  if (start) {
    ++frames_;
    bytes_ += line_len;  // line occupancy incl. framing overhead
    if (first_dep_ < 0) first_dep_ = *start;
    last_dep_ = *start;
    // Frame incl. FCS, without preamble/IFG: matches TrafficSpec::frame_size.
    frame_bytes_.record(line_len - net::kEthPerFrameOverhead);
    if (auto* tr = eng_->trace()) {
      if (!trace_track_set_) {
        trace_track_ = tr->track("gen.tx");
        trace_track_set_ = true;
      }
      tr->complete(trace_track_, "frame", *start, air);
    }
  } else {
    ++mac_rejects_;
  }

  // Pace the next departure start-to-start from the *scheduled* slot, not
  // from the (possibly pushed-back) MAC grant, so requested inter-departure
  // statistics stay exact when the MAC is keeping up.
  Picos interval;
  if (tp->gap_hint) {
    interval = std::max(*tp->gap_hint, air);
  } else {
    const Picos mean = rate_.departure_interval(line_len);
    interval = gap_model_->sample(rng_, mean, air);
  }
  const sim::Engine::CategoryScope cat(*eng_, sim::EventCategory::kGen);
  pending_ = eng_->schedule_in(interval, [this] { send_one(); });
}

double TxPipeline::achieved_gbps() const noexcept {
  if (frames_ < 2 || last_dep_ <= first_dep_) return 0.0;
  // Window closes when the last frame finishes its slot; approximate by
  // the mean per-frame occupancy.
  const double span = static_cast<double>(last_dep_ - first_dep_) *
                      static_cast<double>(frames_) /
                      static_cast<double>(frames_ - 1);
  return static_cast<double>(bytes_) * 8.0 * 1000.0 / span;
}

}  // namespace osnt::gen
