#include <stdexcept>

#include "osnt/gen/source.hpp"
#include "osnt/net/fragment.hpp"
#include "osnt/net/parser.hpp"

namespace osnt::gen {

FragmentingSource::FragmentingSource(std::unique_ptr<PacketSource> inner,
                                     std::size_t mtu)
    : inner_(std::move(inner)), mtu_(mtu) {
  if (!inner_) throw std::invalid_argument("FragmentingSource: null inner");
  if (mtu_ < 68) throw std::invalid_argument("FragmentingSource: MTU < 68");
}

std::optional<TimedPacket> FragmentingSource::next() {
  if (backlog_idx_ < backlog_.size()) {
    TimedPacket tp;
    tp.pkt = std::move(backlog_[backlog_idx_++]);
    return tp;
  }
  auto tp = inner_->next();
  if (!tp) return std::nullopt;
  const auto parsed = net::parse_packet(tp->pkt.bytes());
  if (!parsed || parsed->l3 != net::L3Kind::kIpv4 ||
      parsed->ipv4.total_length <= mtu_ || parsed->ipv4.dont_fragment) {
    return tp;  // pass through untouched (keeps any gap hint)
  }
  backlog_ = net::fragment_ipv4(tp->pkt, mtu_);
  backlog_idx_ = 0;
  TimedPacket out;
  out.pkt = std::move(backlog_[backlog_idx_++]);
  out.gap_hint = tp->gap_hint;  // replay timing anchors on the first frag
  return out;
}

void FragmentingSource::rewind() {
  inner_->rewind();
  backlog_.clear();
  backlog_idx_ = 0;
}

}  // namespace osnt::gen
