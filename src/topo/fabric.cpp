#include "osnt/topo/fabric.hpp"

#include <stdexcept>

#include "osnt/gen/template_gen.hpp"
#include "osnt/tstamp/embed.hpp"

namespace osnt::topo {

LeafSpineFabric::LeafSpineFabric(sim::Engine& eng, Config cfg)
    : eng_(&eng), cfg_(cfg) {
  if (cfg_.leaves == 0 || cfg_.spines == 0 || cfg_.testers_per_leaf == 0)
    throw std::invalid_argument("LeafSpineFabric: empty dimension");

  // Port plan: leaf = [0..testers_per_leaf) down, then one uplink per
  // spine; spine = one port per leaf.
  cfg_.leaf_cfg.num_ports = cfg_.testers_per_leaf + cfg_.spines;
  cfg_.leaf_cfg.flood_unknown = false;  // loop safety with multiple spines
  cfg_.spine_cfg.num_ports = cfg_.leaves;
  cfg_.spine_cfg.flood_unknown = false;
  cfg_.tester_cfg.num_ports = 1;

  for (std::size_t s = 0; s < cfg_.spines; ++s)
    spines_.push_back(std::make_unique<dut::LegacySwitch>(dut::GraphWired{}, eng, cfg_.spine_cfg));
  for (std::size_t l = 0; l < cfg_.leaves; ++l) {
    leaves_.push_back(std::make_unique<dut::LegacySwitch>(dut::GraphWired{}, eng, cfg_.leaf_cfg));
    for (std::size_t s = 0; s < cfg_.spines; ++s) {
      hw::connect(leaves_[l]->port(cfg_.testers_per_leaf + s),
                  spines_[s]->port(l));
    }
  }

  const std::size_t n = cfg_.leaves * cfg_.testers_per_leaf;
  for (std::size_t i = 0; i < n; ++i) {
    // Distinct deterministic clock seeds so the cards are independent.
    core::DeviceConfig tc = cfg_.tester_cfg;
    tc.clock.osc.seed = 1000 + i;
    tc.gps.seed = 2000 + i;
    testers_.push_back(std::make_unique<core::OsntDevice>(eng, tc));
    const std::size_t l = leaf_of(i);
    const std::size_t local = i % cfg_.testers_per_leaf;
    hw::connect(testers_[i]->port(0), leaves_[l]->port(local));
  }

  // Static forwarding: every switch knows every tester MAC.
  for (std::size_t i = 0; i < n; ++i) {
    const net::MacAddr mac = tester_mac(i);
    const std::size_t home_leaf = leaf_of(i);
    const std::size_t local = i % cfg_.testers_per_leaf;
    const std::size_t via_spine = spine_of(i);
    for (std::size_t l = 0; l < cfg_.leaves; ++l) {
      if (l == home_leaf) {
        leaves_[l]->add_static_mac(mac, local);
      } else {
        leaves_[l]->add_static_mac(mac, cfg_.testers_per_leaf + via_spine);
      }
    }
    for (std::size_t s = 0; s < cfg_.spines; ++s)
      spines_[s]->add_static_mac(mac, home_leaf);
  }
}

net::MacAddr LeafSpineFabric::tester_mac(std::size_t i) const noexcept {
  return net::MacAddr::from_index(0x1000 + i);
}

net::Ipv4Addr LeafSpineFabric::tester_ip(std::size_t i) const noexcept {
  return net::Ipv4Addr::of(10, 200, static_cast<std::uint8_t>(i >> 8),
                           static_cast<std::uint8_t>(i & 0xFF));
}

std::size_t LeafSpineFabric::hops(std::size_t i, std::size_t j) const noexcept {
  if (i == j) return 0;
  return leaf_of(i) == leaf_of(j) ? 1 : 3;  // leaf, or leaf→spine→leaf
}

SampleSet LeafSpineFabric::measure_latency(std::size_t src, std::size_t dst,
                                           std::size_t frames, double pps,
                                           std::size_t frame_size) {
  if (src >= testers_.size() || dst >= testers_.size() || src == dst)
    throw std::invalid_argument("measure_latency: bad tester pair");

  auto& rx_dev = *testers_[dst];
  rx_dev.capture().clear();

  gen::TxConfig txc;
  txc.rate = gen::RateSpec::pps(pps);
  txc.seed = 4000 + src;
  auto& tx = testers_[src]->configure_tx(0, txc);
  gen::TemplateConfig tc;
  tc.src_mac = tester_mac(src);
  tc.dst_mac = tester_mac(dst);
  tc.src_ip = tester_ip(src);
  tc.dst_ip = tester_ip(dst);
  tc.count = frames;
  tx.set_source(std::make_unique<gen::TemplateSource>(
      tc, std::make_unique<gen::FixedSize>(frame_size)));
  tx.start();

  // Run until the source drains plus a generous in-flight allowance.
  while (tx.running()) {
    if (!eng_->step()) break;
  }
  eng_->run_until(eng_->now() + kPicosPerMilli);

  return rx_dev.capture().latency_ns(tstamp::kDefaultEmbedOffset, 0);
}

}  // namespace osnt::topo
