#include "osnt/core/repeat.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "osnt/common/stats.hpp"

namespace osnt::core {

double t_critical_95(std::size_t n) noexcept {
  // Two-sided 95% t critical values for df = n-1 (df index 1..30).
  static constexpr std::array<double, 31> kTable = {
      0.0,   12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306, 2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120, 2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064, 2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (n < 2) return 0.0;
  const std::size_t df = n - 1;
  return df < kTable.size() ? kTable[df] : 1.96;
}

RepeatedResult run_repeated(
    const std::function<double(std::uint64_t seed)>& trial,
    std::size_t repetitions) {
  if (repetitions == 0)
    throw std::invalid_argument("run_repeated: need at least one repetition");
  RepeatedResult r;
  RunningStats stats;
  r.values.reserve(repetitions);
  for (std::size_t i = 1; i <= repetitions; ++i) {
    const double v = trial(i);
    r.values.push_back(v);
    stats.add(v);
  }
  r.mean = stats.mean();
  r.stddev = stats.stddev();
  if (repetitions > 1) {
    r.ci95_half = t_critical_95(repetitions) * r.stddev /
                  std::sqrt(static_cast<double>(repetitions));
  }
  return r;
}

}  // namespace osnt::core
