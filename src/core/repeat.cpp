#include "osnt/core/repeat.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "osnt/common/stats.hpp"

namespace osnt::core {

double t_critical_95(std::size_t n) noexcept {
  // Two-sided 95% t critical values for df = n-1 (df index 1..30).
  static constexpr std::array<double, 31> kTable = {
      0.0,   12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306, 2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120, 2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064, 2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  // Standard large-df anchor rows; between them (and toward the 1.96
  // normal limit) the critical value is near-linear in 1/df.
  static constexpr std::array<std::pair<double, double>, 4> kAnchors = {{
      {30.0, 2.042}, {40.0, 2.021}, {60.0, 2.000}, {120.0, 1.980}}};
  if (n < 2) return 0.0;
  const std::size_t df = n - 1;
  if (df < kTable.size()) return kTable[df];
  const double inv = 1.0 / static_cast<double>(df);
  for (std::size_t a = 0; a + 1 < kAnchors.size(); ++a) {
    const auto [lo_df, lo_t] = kAnchors[a];
    const auto [hi_df, hi_t] = kAnchors[a + 1];
    if (static_cast<double>(df) <= hi_df) {
      const double w = (inv - 1.0 / hi_df) / (1.0 / lo_df - 1.0 / hi_df);
      return w * lo_t + (1.0 - w) * hi_t;
    }
  }
  // df > 120: interpolate between the last anchor and the normal limit.
  const auto [tail_df, tail_t] = kAnchors.back();
  return 1.96 + (tail_t - 1.96) * inv * tail_df;
}

namespace {

RepeatedResult summarize(std::vector<double> values) {
  RepeatedResult r;
  RunningStats stats;
  for (const double v : values) stats.add(v);
  r.values = std::move(values);
  r.mean = stats.mean();
  r.stddev = stats.stddev();
  if (r.values.size() > 1) {
    r.ci95_half = t_critical_95(r.values.size()) * r.stddev /
                  std::sqrt(static_cast<double>(r.values.size()));
  }
  return r;
}

}  // namespace

RepeatedResult run_repeated(const Trial& trial, std::size_t repetitions,
                            const RunnerConfig& runner) {
  if (repetitions == 0)
    throw std::invalid_argument("run_repeated: need at least one repetition");
  TrialPlan plan = TrialPlan::repeat(repetitions);
  plan.run = trial;
  const auto stats = Runner{runner}.run(plan);
  std::vector<double> values;
  values.reserve(stats.size());
  for (const auto& s : stats) values.push_back(s.metric);
  return summarize(std::move(values));
}

}  // namespace osnt::core
