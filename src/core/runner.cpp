#include "osnt/core/runner.hpp"

#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>

#include "osnt/common/log.hpp"

namespace osnt::core {

std::size_t RunnerConfig::resolved_jobs() const noexcept {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

TrialPlan TrialPlan::repeat(std::size_t repetitions) {
  TrialPlan plan;
  plan.points.reserve(repetitions);
  for (std::size_t i = 0; i < repetitions; ++i) {
    TrialPoint p;
    p.index = i;
    p.seed = i + 1;  // historical run_repeated convention: seeds 1..n
    plan.points.push_back(p);
  }
  return plan;
}

TrialPlan TrialPlan::load_grid(const std::vector<double>& loads,
                               std::size_t frame_size) {
  TrialPlan plan;
  plan.points.reserve(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    TrialPoint p;
    p.index = i;
    p.load_fraction = loads[i];
    p.frame_size = frame_size;
    plan.points.push_back(p);
  }
  return plan;
}

void Runner::for_each(std::size_t n,
                      const std::function<void(std::size_t)>& body) const {
  if (n == 0) return;
  const std::size_t jobs = std::min(cfg_.resolved_jobs(), n);

  // Every index is attempted; the first failure in plan order wins. This
  // keeps the serial and parallel paths observably identical.
  std::vector<std::exception_ptr> errors(n);
  const auto attempt = [&](std::size_t i) {
    try {
      body(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  if (jobs <= 1) {
    // Inline on the calling thread; preserve any enclosing worker tag so
    // a trial that itself runs a serial sub-plan stays attributable.
    const int prev = log_worker();
    if (prev < 0) set_log_worker(0);
    for (std::size_t i = 0; i < n; ++i) attempt(i);
    set_log_worker(prev);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      pool.emplace_back([&, w] {
        set_log_worker(static_cast<int>(w));
        for (std::size_t i;
             (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
          attempt(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

std::vector<TrialStats> Runner::run(const TrialPlan& plan) const {
  if (!plan.run)
    throw std::invalid_argument("Runner::run: plan has no trial functor");
  std::vector<TrialStats> results(plan.points.size());
  for_each(plan.points.size(), [&](std::size_t i) {
    TrialPoint p = plan.points[i];
    p.index = i;
    results[i] = plan.run(p);
  });
  return results;
}

}  // namespace osnt::core
