#include "osnt/core/runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "osnt/common/log.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/telemetry/histogram.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt::core {
namespace {

/// Per-worker telemetry shard: trial wall times stay thread-local during
/// the batch and merge into the registry only after the join (the plan
/// barrier). Everything here is wall-clock-derived, so it publishes under
/// "wall"-marked names that the sim-determinism snapshot excludes.
struct WorkerShard {
  std::uint64_t busy_ns = 0;
  telemetry::Log2Histogram trial_us;
};

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

std::size_t RunnerConfig::resolved_jobs() const noexcept {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

TrialPlan TrialPlan::repeat(std::size_t repetitions) {
  TrialPlan plan;
  plan.points.reserve(repetitions);
  for (std::size_t i = 0; i < repetitions; ++i) {
    TrialPoint p;
    p.index = i;
    p.seed = i + 1;  // historical run_repeated convention: seeds 1..n
    plan.points.push_back(p);
  }
  return plan;
}

TrialPlan TrialPlan::load_grid(const std::vector<double>& loads,
                               std::size_t frame_size) {
  TrialPlan plan;
  plan.points.reserve(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    TrialPoint p;
    p.index = i;
    p.load_fraction = loads[i];
    p.frame_size = frame_size;
    plan.points.push_back(p);
  }
  return plan;
}

void Runner::for_each(std::size_t n,
                      const std::function<void(std::size_t)>& body) const {
  if (n == 0) return;
  const std::size_t jobs = std::min(cfg_.resolved_jobs(), n);
  const bool telem = telemetry::enabled();
  std::vector<WorkerShard> shards(jobs);
  const auto plan_t0 = std::chrono::steady_clock::now();

  // Every index is attempted; the first failure in plan order wins. This
  // keeps the serial and parallel paths observably identical.
  std::vector<std::exception_ptr> errors(n);
  const auto attempt = [&](std::size_t i, WorkerShard& shard) {
    // Watchdog limits travel ambiently: every Engine the body constructs
    // on this thread adopts them (see sim::WatchdogScope). All-zero when
    // the config has no watchdogs — a no-op scope.
    const sim::WatchdogScope wd(
        sim::WatchdogConfig{cfg_.event_budget, cfg_.wall_deadline_ms});
    const auto t0 = std::chrono::steady_clock::now();
    try {
      body(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
    if (telem) {
      const std::uint64_t ns = elapsed_ns(t0);
      shard.busy_ns += ns;
      shard.trial_us.record(ns / 1000);
    }
  };

  if (jobs <= 1) {
    // Inline on the calling thread; preserve any enclosing worker tag so
    // a trial that itself runs a serial sub-plan stays attributable.
    const int prev = log_worker();
    if (prev < 0) set_log_worker(0);
    for (std::size_t i = 0; i < n; ++i) attempt(i, shards[0]);
    set_log_worker(prev);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      pool.emplace_back([&, w] {
        set_log_worker(static_cast<int>(w));
        for (std::size_t i;
             (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
          attempt(i, shards[w]);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  if (telem) {
    // Plan barrier: the join above made every shard visible; merge them
    // into the registry in one place. Trial/plan counts are deterministic;
    // the execution-shape metrics (worker pool, wall times, utilization)
    // describe the host, not the simulated universe, and carry the "wall"
    // marker that excludes them from determinism snapshots.
    auto& reg = telemetry::registry();
    reg.counter("core.runner.plans").inc();
    reg.counter("core.runner.trials").add(n);
    std::uint64_t busy_total = 0;
    auto& trial_hist = reg.histogram("core.runner.trial_us.wall");
    for (const WorkerShard& s : shards) {
      busy_total += s.busy_ns;
      trial_hist.merge(s.trial_us);
    }
    const std::uint64_t span = elapsed_ns(plan_t0);
    const std::uint64_t pool_ns = span * jobs;
    reg.gauge("core.runner.jobs.wall").set(static_cast<std::int64_t>(jobs));
    reg.counter("core.runner.busy_ns.wall").add(busy_total);
    reg.counter("core.runner.span_ns.wall").add(span);
    reg.counter("core.runner.queue_wait_ns.wall")
        .add(pool_ns > busy_total ? pool_ns - busy_total : 0);
    if (pool_ns > 0) {
      reg.gauge("core.runner.utilization_pct.wall")
          .set(static_cast<std::int64_t>(busy_total * 100 / pool_ns));
    }
  }

  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

std::vector<TrialResult> Runner::run_resilient(const TrialPlan& plan) const {
  if (!plan.run)
    throw std::invalid_argument("Runner::run: plan has no trial functor");
  const std::size_t n = plan.points.size();
  const std::uint32_t cap = cfg_.max_attempts > 0 ? cfg_.max_attempts : 1;
  std::vector<TrialResult> results(n);
  for_each(n, [&](std::size_t i) {
    TrialResult& r = results[i];
    for (std::uint32_t a = 0; a < cap; ++a) {
      TrialPoint p = plan.points[i];
      p.index = i;
      p.attempt = a;
      p.seed = rederive_seed(p.seed, a);
      r.attempts = a + 1;
      r.seed_used = p.seed;
      try {
        r.stats = plan.run(p);
        r.outcome = a == 0 ? TrialOutcome::kOk : TrialOutcome::kRetried;
        r.error.clear();
        r.exception = nullptr;
        return;
      } catch (const sim::WatchdogError& e) {
        r.outcome = TrialOutcome::kTimedOut;
        r.error = e.what();
        r.exception = std::current_exception();
      } catch (const std::exception& e) {
        r.outcome = TrialOutcome::kFailed;
        r.error = e.what();
        r.exception = std::current_exception();
      } catch (...) {
        r.outcome = TrialOutcome::kFailed;
        r.error = "unknown exception";
        r.exception = std::current_exception();
      }
      r.stats = TrialStats{};  // a failed attempt's partial stats are void
      OSNT_WARN("trial %zu attempt %u/%u %s: %s", i, a + 1, cap,
                trial_outcome_name(r.outcome), r.error.c_str());
    }
  });

  if (telemetry::enabled()) {
    // Outcome counts derive from sim-deterministic events (event-budget
    // kills, trial exceptions), so they publish unmarked and must match
    // for any jobs count. Wall-deadline kills are the documented
    // exception — nondeterministic by nature (DESIGN.md §10).
    std::uint64_t by_outcome[4] = {};
    std::uint64_t extra_attempts = 0;
    for (const TrialResult& r : results) {
      ++by_outcome[static_cast<std::size_t>(r.outcome)];
      extra_attempts += r.attempts > 0 ? r.attempts - 1 : 0;
    }
    auto& reg = telemetry::registry();
    for (std::size_t o = 0; o < 4; ++o) {
      reg.counter(std::string("core.runner.outcome.") +
                  trial_outcome_name(static_cast<TrialOutcome>(o)))
          .add(by_outcome[o]);
    }
    reg.counter("core.runner.retries").add(extra_attempts);
  }
  return results;
}

std::vector<TrialStats> Runner::run(const TrialPlan& plan) const {
  auto resilient = run_resilient(plan);
  // Historical contract: every point attempted, then the first failure in
  // plan order is rethrown. Retry/watchdog configs still apply first.
  for (auto& r : resilient) {
    if (!r.ok() && r.exception) std::rethrow_exception(r.exception);
  }
  std::vector<TrialStats> results;
  results.reserve(resilient.size());
  for (auto& r : resilient) results.push_back(std::move(r.stats));
  return results;
}

}  // namespace osnt::core
