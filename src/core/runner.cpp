#include "osnt/core/runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "osnt/common/log.hpp"
#include "osnt/telemetry/histogram.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt::core {
namespace {

/// Per-worker telemetry shard: trial wall times stay thread-local during
/// the batch and merge into the registry only after the join (the plan
/// barrier). Everything here is wall-clock-derived, so it publishes under
/// "wall"-marked names that the sim-determinism snapshot excludes.
struct WorkerShard {
  std::uint64_t busy_ns = 0;
  telemetry::Log2Histogram trial_us;
};

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

std::size_t RunnerConfig::resolved_jobs() const noexcept {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

TrialPlan TrialPlan::repeat(std::size_t repetitions) {
  TrialPlan plan;
  plan.points.reserve(repetitions);
  for (std::size_t i = 0; i < repetitions; ++i) {
    TrialPoint p;
    p.index = i;
    p.seed = i + 1;  // historical run_repeated convention: seeds 1..n
    plan.points.push_back(p);
  }
  return plan;
}

TrialPlan TrialPlan::load_grid(const std::vector<double>& loads,
                               std::size_t frame_size) {
  TrialPlan plan;
  plan.points.reserve(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    TrialPoint p;
    p.index = i;
    p.load_fraction = loads[i];
    p.frame_size = frame_size;
    plan.points.push_back(p);
  }
  return plan;
}

void Runner::for_each(std::size_t n,
                      const std::function<void(std::size_t)>& body) const {
  if (n == 0) return;
  const std::size_t jobs = std::min(cfg_.resolved_jobs(), n);
  const bool telem = telemetry::enabled();
  std::vector<WorkerShard> shards(jobs);
  const auto plan_t0 = std::chrono::steady_clock::now();

  // Every index is attempted; the first failure in plan order wins. This
  // keeps the serial and parallel paths observably identical.
  std::vector<std::exception_ptr> errors(n);
  const auto attempt = [&](std::size_t i, WorkerShard& shard) {
    const auto t0 = std::chrono::steady_clock::now();
    try {
      body(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
    if (telem) {
      const std::uint64_t ns = elapsed_ns(t0);
      shard.busy_ns += ns;
      shard.trial_us.record(ns / 1000);
    }
  };

  if (jobs <= 1) {
    // Inline on the calling thread; preserve any enclosing worker tag so
    // a trial that itself runs a serial sub-plan stays attributable.
    const int prev = log_worker();
    if (prev < 0) set_log_worker(0);
    for (std::size_t i = 0; i < n; ++i) attempt(i, shards[0]);
    set_log_worker(prev);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      pool.emplace_back([&, w] {
        set_log_worker(static_cast<int>(w));
        for (std::size_t i;
             (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
          attempt(i, shards[w]);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  if (telem) {
    // Plan barrier: the join above made every shard visible; merge them
    // into the registry in one place. Trial/plan counts are deterministic;
    // the execution-shape metrics (worker pool, wall times, utilization)
    // describe the host, not the simulated universe, and carry the "wall"
    // marker that excludes them from determinism snapshots.
    auto& reg = telemetry::registry();
    reg.counter("core.runner.plans").inc();
    reg.counter("core.runner.trials").add(n);
    std::uint64_t busy_total = 0;
    auto& trial_hist = reg.histogram("core.runner.trial_us.wall");
    for (const WorkerShard& s : shards) {
      busy_total += s.busy_ns;
      trial_hist.merge(s.trial_us);
    }
    const std::uint64_t span = elapsed_ns(plan_t0);
    const std::uint64_t pool_ns = span * jobs;
    reg.gauge("core.runner.jobs.wall").set(static_cast<std::int64_t>(jobs));
    reg.counter("core.runner.busy_ns.wall").add(busy_total);
    reg.counter("core.runner.span_ns.wall").add(span);
    reg.counter("core.runner.queue_wait_ns.wall")
        .add(pool_ns > busy_total ? pool_ns - busy_total : 0);
    if (pool_ns > 0) {
      reg.gauge("core.runner.utilization_pct.wall")
          .set(static_cast<std::int64_t>(busy_total * 100 / pool_ns));
    }
  }

  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

std::vector<TrialStats> Runner::run(const TrialPlan& plan) const {
  if (!plan.run)
    throw std::invalid_argument("Runner::run: plan has no trial functor");
  std::vector<TrialStats> results(plan.points.size());
  for_each(plan.points.size(), [&](std::size_t i) {
    TrialPoint p = plan.points[i];
    p.index = i;
    results[i] = plan.run(p);
  });
  return results;
}

}  // namespace osnt::core
