#include "osnt/core/device.hpp"

#include <stdexcept>

namespace osnt::core {

OsntDevice::OsntDevice(sim::Engine& eng, Config cfg) : eng_(&eng), cfg_(cfg) {
  if (cfg_.num_ports == 0 || cfg_.num_ports > 16)
    throw std::invalid_argument("OsntDevice: num_ports must be in [1, 16]");

  gps_ = std::make_unique<tstamp::GpsModel>(cfg_.gps);
  clock_ = std::make_unique<tstamp::DisciplinedClock>(*gps_, cfg_.clock);
  dma_ = std::make_unique<hw::DmaEngine>(eng, cfg_.dma);
  capture_ = std::make_unique<mon::HostCapture>(*dma_);

  for (std::size_t i = 0; i < cfg_.num_ports; ++i) {
    ports_.push_back(std::make_unique<hw::EthPort>(eng, cfg_.port));
    gen::TxConfig txc;
    txc.seed = 1000 + i;
    tx_.push_back(std::make_unique<gen::TxPipeline>(eng, ports_[i]->tx(),
                                                    *clock_, txc));
    mon::RxConfig rxc;
    rxc.port_id = static_cast<std::uint8_t>(i);
    rx_.push_back(std::make_unique<mon::RxPipeline>(eng, ports_[i]->rx(),
                                                    *clock_, *dma_, rxc));
  }
}

gen::TxPipeline& OsntDevice::configure_tx(std::size_t i, gen::TxConfig cfg) {
  tx_.at(i) = std::make_unique<gen::TxPipeline>(*eng_, ports_.at(i)->tx(),
                                                *clock_, cfg);
  return *tx_[i];
}

}  // namespace osnt::core
