#include "osnt/core/rfc2544.hpp"

#include <algorithm>
#include <array>

#include "osnt/net/packet.hpp"
#include "osnt/sim/engine.hpp"

namespace osnt::core {
namespace {

constexpr std::array<std::size_t, 7> kRfc2544Sizes = {64,  128, 256, 512,
                                                      1024, 1280, 1518};

double load_to_gbps(double load_fraction, std::size_t frame_size) {
  const double line = net::max_frame_rate(frame_size, 10.0) *
                      static_cast<double>(frame_size + net::kEthPerFrameOverhead) *
                      8.0 / 1e9;
  return line * load_fraction;  // line == 10.0 by construction
}

TrialStats probe(const Trial& run, double load, std::size_t frame_size) {
  TrialPoint p;
  p.load_fraction = load;
  p.frame_size = frame_size;
  return run(p);
}

}  // namespace

std::span<const std::size_t> rfc2544_frame_sizes() noexcept {
  return {kRfc2544Sizes.data(), kRfc2544Sizes.size()};
}

ThroughputPoint find_throughput(const Trial& run, std::size_t frame_size,
                                ThroughputSearchConfig cfg) {
  ThroughputPoint pt;
  pt.frame_size = frame_size;

  double lo = cfg.lo;
  double hi = cfg.hi;
  // Try the ceiling first: a wire-rate DUT should exit in one trial.
  TrialStats best{};
  double best_load = 0.0;
  {
    TrialStats s = probe(run, hi, frame_size);
    ++pt.trials;
    if (s.loss_fraction() <= cfg.loss_tolerance) {
      best = std::move(s);
      best_load = hi;
      lo = hi;
    }
  }
  while (hi - lo > cfg.resolution && best_load != hi) {
    const double mid = (lo + hi) / 2.0;
    TrialStats s = probe(run, mid, frame_size);
    ++pt.trials;
    if (s.loss_fraction() <= cfg.loss_tolerance) {
      best = std::move(s);
      best_load = mid;
      lo = mid;
    } else {
      hi = mid;
    }
  }

  pt.max_load_fraction = best_load;
  pt.gbps = best_load > 0 ? load_to_gbps(best_load, frame_size) : 0.0;
  pt.mpps = best_load > 0
                ? net::max_frame_rate(frame_size, 10.0) * best_load / 1e6
                : 0.0;
  pt.latency_at_max_ns = std::move(best.latency_ns);
  return pt;
}

ThroughputPoint find_throughput(const TrialFn& run, std::size_t frame_size,
                                ThroughputSearchConfig cfg) {
  return find_throughput(as_trial(run), frame_size, cfg);
}

std::vector<ThroughputPoint> throughput_sweep(
    const Trial& run, std::span<const std::size_t> frame_sizes,
    ThroughputSearchConfig cfg, const RunnerConfig& runner) {
  // One task per frame size: the binary search inside a size is
  // sequential, but sizes share no state. Results land at their size's
  // index, so the output is identical for any job count.
  // A size whose search dies (watchdog kill, trial failure) yields a
  // flagged zero point instead of aborting its siblings: a sweep under
  // fault injection completes with partial results.
  std::vector<ThroughputPoint> out(frame_sizes.size());
  Runner{runner}.for_each(frame_sizes.size(), [&](std::size_t i) {
    try {
      out[i] = find_throughput(run, frame_sizes[i], cfg);
    } catch (const sim::WatchdogError& e) {
      out[i] = ThroughputPoint{};
      out[i].frame_size = frame_sizes[i];
      out[i].outcome = TrialOutcome::kTimedOut;
      out[i].error = e.what();
    } catch (const std::exception& e) {
      out[i] = ThroughputPoint{};
      out[i].frame_size = frame_sizes[i];
      out[i].outcome = TrialOutcome::kFailed;
      out[i].error = e.what();
    }
  });
  return out;
}

std::vector<ThroughputPoint> throughput_sweep(
    const TrialFn& run, std::span<const std::size_t> frame_sizes,
    ThroughputSearchConfig cfg, const RunnerConfig& runner) {
  return throughput_sweep(as_trial(run), frame_sizes, cfg, runner);
}

BackToBackPoint find_back_to_back(const BurstTrialFn& run,
                                  std::size_t frame_size,
                                  std::size_t max_burst) {
  BackToBackPoint pt;
  pt.frame_size = frame_size;
  const auto passes = [&](std::size_t burst) {
    ++pt.trials;
    return run(burst, frame_size).loss_fraction() <= 0.0;
  };
  // Ceiling first, then binary search on the burst length.
  if (passes(max_burst)) {
    pt.max_burst = max_burst;
    return pt;
  }
  std::size_t lo = 0, hi = max_burst;  // lo passes (trivially), hi fails
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (passes(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  pt.max_burst = lo;
  return pt;
}

std::vector<LossPoint> loss_rate_sweep(const Trial& run,
                                       std::size_t frame_size, double hi,
                                       double step,
                                       const RunnerConfig& runner) {
  std::vector<double> loads;
  for (double load = hi; load > step / 2; load -= step) loads.push_back(load);
  TrialPlan plan = TrialPlan::load_grid(loads, frame_size);
  plan.run = run;
  // Resilient: a failed rung is flagged and zeroed, the ladder completes.
  const auto results = Runner{runner}.run_resilient(plan);
  std::vector<LossPoint> out;
  out.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TrialStats& s = results[i].stats;
    out.push_back({loads[i], s.loss_fraction(), s.offered_gbps,
                   results[i].outcome});
  }
  return out;
}

std::vector<LossPoint> loss_rate_sweep(const TrialFn& run,
                                       std::size_t frame_size, double hi,
                                       double step,
                                       const RunnerConfig& runner) {
  return loss_rate_sweep(as_trial(run), frame_size, hi, step, runner);
}

}  // namespace osnt::core
