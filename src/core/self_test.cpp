#include "osnt/core/self_test.hpp"

#include <cstdio>

#include "osnt/common/crc.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/tstamp/embed.hpp"

namespace osnt::core {
namespace {

std::string portmsg(std::size_t p, const char* what) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "port %zu: %s", p, what);
  return buf;
}

}  // namespace

SelfTestResult run_self_test(sim::Engine& eng, OsntDevice& dev,
                             SelfTestConfig cfg) {
  SelfTestResult result;

  for (std::size_t p = 0; p + 1 < dev.num_ports(); p += 2) {
    if (dev.port(p).cabled() || dev.port(p + 1).cabled()) {
      result.fail(portmsg(p, "already cabled; self-test needs a bare card"));
      return result;
    }
    hw::connect(dev.port(p), dev.port(p + 1));
  }

  for (std::size_t p = 0; p + 1 < dev.num_ports(); p += 2) {
    dev.capture().clear();
    gen::TxConfig txc;
    txc.rate = gen::RateSpec::line_rate(0.5);
    txc.seed = 42 + p;
    auto& tx = dev.configure_tx(p, txc);
    TrafficSpec spec;
    spec.frame_size = cfg.frame_size;
    spec.frame_count = cfg.frames_per_port;
    spec.seed = p + 1;
    tx.set_source(make_source(spec));
    tx.start();
    eng.run();

    auto& rx = dev.rx(p + 1);
    if (tx.frames_sent() != cfg.frames_per_port)
      result.fail(portmsg(p, "generator under-delivered"));
    if (rx.seen() != cfg.frames_per_port)
      result.fail(portmsg(p + 1, "monitor missed frames"));
    if (rx.dma_drops() != 0)
      result.fail(portmsg(p + 1, "DMA dropped during self-test"));

    // Capture integrity: hash matches payload, stamps sane and monotonic.
    std::uint64_t prev_raw = 0;
    std::uint32_t expect_seq = 0;
    bool seq_ok = true, hash_ok = true, ts_ok = true;
    for (const auto& rec : dev.capture().records()) {
      if (rec.port != p + 1) continue;
      if (rec.hash != crc32(ByteSpan{rec.data.data(), rec.data.size()}))
        hash_ok = false;
      if (rec.ts.raw < prev_raw) ts_ok = false;
      prev_raw = rec.ts.raw;
      const auto stamp = tstamp::extract_timestamp(
          ByteSpan{rec.data.data(), rec.data.size()},
          tstamp::kDefaultEmbedOffset);
      if (!stamp || stamp->seq != expect_seq++) seq_ok = false;
    }
    if (!hash_ok) result.fail(portmsg(p + 1, "capture hash mismatch"));
    if (!ts_ok) result.fail(portmsg(p + 1, "non-monotonic RX timestamps"));
    if (!seq_ok) result.fail(portmsg(p + 1, "sequence gap or reorder"));
  }
  return result;
}

}  // namespace osnt::core
