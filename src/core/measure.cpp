#include "osnt/core/measure.hpp"

#include <cmath>

#include "osnt/gen/template_gen.hpp"
#include "osnt/tstamp/embed.hpp"

namespace osnt::core {

std::unique_ptr<gen::PacketSource> make_source(const TrafficSpec& spec) {
  std::unique_ptr<gen::SizeModel> sizes;
  switch (spec.sizes) {
    case TrafficSpec::Sizes::kFixed:
      sizes = std::make_unique<gen::FixedSize>(spec.frame_size);
      break;
    case TrafficSpec::Sizes::kImix:
      sizes = std::make_unique<gen::ImixSize>();
      break;
    case TrafficSpec::Sizes::kUniform:
      sizes = std::make_unique<gen::UniformSize>(spec.size_lo, spec.size_hi);
      break;
  }
  gen::TemplateConfig tc;
  tc.flow_count = spec.flow_count;
  tc.dst_port = spec.dst_port;
  tc.count = spec.frame_count;
  tc.seed = spec.seed;
  return std::make_unique<gen::TemplateSource>(tc, std::move(sizes));
}

std::unique_ptr<gen::GapModel> make_gap_model(const TrafficSpec& spec) {
  switch (spec.arrivals) {
    case TrafficSpec::Arrivals::kPoisson:
      return std::make_unique<gen::PoissonGap>();
    case TrafficSpec::Arrivals::kBurst:
      return std::make_unique<gen::BurstGap>(spec.burst_len);
    case TrafficSpec::Arrivals::kCbr:
      break;
  }
  return std::make_unique<gen::ConstantGap>();
}

RunResult run_capture_test(sim::Engine& eng, OsntDevice& dev,
                           std::size_t tx_port, std::size_t rx_port,
                           const TrafficSpec& spec, Picos duration,
                           const mon::FilterRule* capture_filter) {
  gen::TxConfig txc;
  txc.rate = spec.rate;
  txc.seed = spec.seed;
  auto& tx = dev.configure_tx(tx_port, txc);
  tx.set_source(make_source(spec));
  tx.set_gap_model(make_gap_model(spec));

  // Select the probe stream on the monitor side: the same wildcard rule
  // drives the capture filter (protects the loss-limited DMA path from
  // competing traffic) and a pre-DMA probe counter (true delivered count).
  auto& rx = dev.rx(rx_port);
  mon::FilterRule probe_rule;
  probe_rule.protocol = net::ipproto::kUdp;
  probe_rule.dst_port = spec.dst_port;
  rx.filters().clear();
  rx.filters().add(capture_filter ? *capture_filter : probe_rule);
  rx.set_probe(probe_rule);
  dev.capture().clear();

  const Picos t0 = eng.now();
  tx.start();
  eng.run_until(t0 + duration);
  tx.stop();
  // Drain: let in-flight frames and DMA transfers land.
  eng.run_until(eng.now() + 10 * kPicosPerMilli);

  RunResult r;
  r.tx_frames = tx.frames_sent();
  r.rx_frames = rx.probe_seen();
  r.captured = rx.captured();
  r.dma_drops = rx.dma_drops();
  r.offered_gbps = tx.achieved_gbps();
  r.delivered_gbps = rx.stats().mean_gbps();
  r.latency_ns = dev.capture().latency_ns(tstamp::kDefaultEmbedOffset,
                                          static_cast<int>(rx_port));

  const auto& lat = r.latency_ns.samples();
  for (std::size_t i = 1; i < lat.size(); ++i)
    r.jitter_ns.add(std::abs(lat[i] - lat[i - 1]));
  return r;
}

}  // namespace osnt::core
