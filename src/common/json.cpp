#include "osnt/common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace osnt::json {
namespace {

class Parser {
 public:
  Parser(const std::string& text, const std::string& context)
      : p_(text.data()),
        end_(text.data() + text.size()),
        begin_(text.data()),
        context_(context) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (p_ != end_) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[nodiscard]] std::pair<std::size_t, std::size_t> position_of(
      const char* at) const {
    std::size_t line = 1, col = 1;
    for (const char* c = begin_; c < at; ++c) {
      if (*c == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return {line, col};
  }

  [[noreturn]] void fail(const std::string& why) const {
    const auto [line, col] = position_of(p_);
    throw ParseError(context_ + ": " + why + " (line " + std::to_string(line) +
                         " column " + std::to_string(col) + ")",
                     line, col);
  }

  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }

  /// Stamp the source position of the value that starts at `p_`.
  void stamp(Value& v) const {
    const auto [line, col] = position_of(p_);
    v.line = line;
    v.column = col;
  }

  Value value() {
    skip_ws();
    if (p_ == end_) fail("unexpected end of input");
    switch (*p_) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Value v;
        stamp(v);
        v.type = Value::Type::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f':
        return boolean();
      case 'n': {
        Value v;
        stamp(v);
        literal("null");
        return v;
      }
      default:
        return number();
    }
  }

  void literal(const char* lit) {
    for (const char* c = lit; *c; ++c) {
      if (p_ == end_ || *p_ != *c) {
        fail(std::string("bad literal, expected ") + lit);
      }
      ++p_;
    }
  }

  Value boolean() {
    Value v;
    stamp(v);
    v.type = Value::Type::kBool;
    if (*p_ == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }

  Value number() {
    Value v;
    stamp(v);
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                          *p_ == '-' || *p_ == '+')) {
      ++p_;
    }
    if (p_ == start) fail("expected a value");
    char* parsed_end = nullptr;
    const std::string token(start, p_);
    const double d = std::strtod(token.c_str(), &parsed_end);
    if (parsed_end != token.c_str() + token.size() || !std::isfinite(d)) {
      fail("malformed number '" + token + "'");
    }
    v.type = Value::Type::kNumber;
    v.number = d;
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p_ == end_) fail("unterminated escape");
      switch (*p_++) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (end_ - p_ < 4) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          fail("unknown escape");
      }
    }
    expect('"');
    return out;
  }

  Value object() {
    Value v;
    stamp(v);
    expect('{');
    v.type = Value::Type::kObject;
    skip_ws();
    if (eat('}')) return v;
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (eat(',')) continue;
      expect('}');
      return v;
    }
  }

  Value array() {
    Value v;
    stamp(v);
    expect('[');
    v.type = Value::Type::kArray;
    skip_ws();
    if (eat(']')) return v;
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (eat(',')) continue;
      expect(']');
      return v;
    }
  }

  const char* p_;
  const char* end_;
  const char* begin_;
  const std::string& context_;
};

}  // namespace

std::string Value::where() const {
  return "line " + std::to_string(line) + " column " + std::to_string(column);
}

Value parse(const std::string& text, const std::string& context) {
  return Parser(text, context).parse();
}

std::string read_file(const std::string& path, const std::string& context) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw ParseError(context + ": cannot open '" + path + "'", 0, 0);
  std::string text;
  char buf[4096];
  for (std::size_t got; (got = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    text.append(buf, got);
  }
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) {
    throw ParseError(context + ": read error on '" + path + "'", 0, 0);
  }
  return text;
}

}  // namespace osnt::json
