#include "osnt/common/crc.hpp"

#include <array>

namespace osnt {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32::update(std::uint8_t byte) noexcept {
  state_ = kTable[(state_ ^ byte) & 0xFFu] ^ (state_ >> 8);
}

void Crc32::update(ByteSpan data) noexcept {
  for (auto b : data) update(b);
}

std::uint32_t crc32(ByteSpan data) noexcept {
  Crc32 c;
  c.update(data);
  return c.value();
}

std::uint32_t ethernet_fcs(ByteSpan frame_without_fcs) noexcept {
  // The FCS field carries the CRC32 of the frame; on the wire it is sent
  // least-significant byte first, which matches storing the finalised value
  // little-endian. We return the CRC value itself; framing code decides
  // byte order when appending.
  return crc32(frame_without_fcs);
}

}  // namespace osnt
