#include "osnt/common/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace osnt {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = prev[j - 1] + (a[i - 1] != b[j - 1] ? 1 : 0);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::string suggest_nearest(const std::string& name,
                            const std::vector<std::string>& candidates) {
  std::size_t best = std::string::npos;
  const std::string* winner = nullptr;
  for (const auto& candidate : candidates) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best) {
      best = d;
      winner = &candidate;
    }
  }
  // Suggest only plausible typos: at most 1 edit for short names, scaling
  // to roughly a third of the name's length for long ones.
  const std::size_t limit = std::max<std::size_t>(1, name.size() / 3);
  return winner && best <= limit ? *winner : std::string();
}

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name, std::string* target,
                         const std::string& help) {
  flags_.push_back({name, Kind::kString, target, help, *target});
}

void CliParser::add_flag(const std::string& name, double* target,
                         const std::string& help) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", *target);
  flags_.push_back({name, Kind::kDouble, target, help, buf});
}

void CliParser::add_flag(const std::string& name, std::int64_t* target,
                         const std::string& help) {
  flags_.push_back({name, Kind::kInt, target, help, std::to_string(*target)});
}

void CliParser::add_flag(const std::string& name, bool* target,
                         const std::string& help) {
  flags_.push_back({name, Kind::kBool, target, help, *target ? "true" : "false"});
}

CliParser::Flag* CliParser::find(const std::string& name) {
  for (auto& f : flags_)
    if (f.name == name) return &f;
  return nullptr;
}

bool CliParser::assign(Flag& flag, const std::string& value) {
  char* end = nullptr;
  switch (flag.kind) {
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = value;
      return true;
    case Kind::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') return false;
      *static_cast<double*>(flag.target) = v;
      return true;
    }
    case Kind::kInt: {
      const long long v = std::strtoll(value.c_str(), &end, 0);
      if (end == value.c_str() || *end != '\0') return false;
      *static_cast<std::int64_t*>(flag.target) = v;
      return true;
    }
    case Kind::kBool:
      if (value == "true" || value == "1" || value == "yes") {
        *static_cast<bool*>(flag.target) = true;
        return true;
      }
      if (value == "false" || value == "0" || value == "no") {
        *static_cast<bool*>(flag.target) = false;
        return true;
      }
      return false;
  }
  return false;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name.resize(eq);
    }
    Flag* flag = find(name);
    if (!flag) {
      // Hard error (callers exit nonzero on false): a typoed flag that
      // silently fell through would run the wrong experiment.
      const std::string hint = nearest_flag(name);
      if (!hint.empty()) {
        std::fprintf(stderr, "unknown flag --%s (did you mean --%s?)\n",
                     name.c_str(), hint.c_str());
      } else {
        std::fprintf(stderr, "unknown flag --%s (try --help)\n", name.c_str());
      }
      return false;
    }
    if (!value) {
      if (flag->kind == Kind::kBool) {
        value = "true";  // bare boolean switch
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
        return false;
      }
    }
    if (!assign(*flag, *value)) {
      std::fprintf(stderr, "bad value '%s' for --%s\n", value->c_str(),
                   name.c_str());
      return false;
    }
  }
  return true;
}

std::string CliParser::nearest_flag(const std::string& name) const {
  std::vector<std::string> candidates;
  candidates.reserve(flags_.size() + 1);
  for (const auto& f : flags_) candidates.push_back(f.name);
  candidates.emplace_back("help");
  return suggest_nearest(name, candidates);
}

std::string CliParser::usage() const {
  std::string out = description_ + "\n\nflags:\n";
  for (const auto& f : flags_) {
    out += "  --" + f.name;
    out.append(f.name.size() < 18 ? 18 - f.name.size() : 1, ' ');
    out += f.help + " (default: " + f.default_repr + ")\n";
  }
  out += "  --help              show this message\n";
  return out;
}

}  // namespace osnt
