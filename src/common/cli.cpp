#include "osnt/common/cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace osnt {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name, std::string* target,
                         const std::string& help) {
  flags_.push_back({name, Kind::kString, target, help, *target});
}

void CliParser::add_flag(const std::string& name, double* target,
                         const std::string& help) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", *target);
  flags_.push_back({name, Kind::kDouble, target, help, buf});
}

void CliParser::add_flag(const std::string& name, std::int64_t* target,
                         const std::string& help) {
  flags_.push_back({name, Kind::kInt, target, help, std::to_string(*target)});
}

void CliParser::add_flag(const std::string& name, bool* target,
                         const std::string& help) {
  flags_.push_back({name, Kind::kBool, target, help, *target ? "true" : "false"});
}

CliParser::Flag* CliParser::find(const std::string& name) {
  for (auto& f : flags_)
    if (f.name == name) return &f;
  return nullptr;
}

bool CliParser::assign(Flag& flag, const std::string& value) {
  char* end = nullptr;
  switch (flag.kind) {
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = value;
      return true;
    case Kind::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') return false;
      *static_cast<double*>(flag.target) = v;
      return true;
    }
    case Kind::kInt: {
      const long long v = std::strtoll(value.c_str(), &end, 0);
      if (end == value.c_str() || *end != '\0') return false;
      *static_cast<std::int64_t*>(flag.target) = v;
      return true;
    }
    case Kind::kBool:
      if (value == "true" || value == "1" || value == "yes") {
        *static_cast<bool*>(flag.target) = true;
        return true;
      }
      if (value == "false" || value == "0" || value == "no") {
        *static_cast<bool*>(flag.target) = false;
        return true;
      }
      return false;
  }
  return false;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name.resize(eq);
    }
    Flag* flag = find(name);
    if (!flag) {
      std::fprintf(stderr, "unknown flag --%s (try --help)\n", name.c_str());
      return false;
    }
    if (!value) {
      if (flag->kind == Kind::kBool) {
        value = "true";  // bare boolean switch
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
        return false;
      }
    }
    if (!assign(*flag, *value)) {
      std::fprintf(stderr, "bad value '%s' for --%s\n", value->c_str(),
                   name.c_str());
      return false;
    }
  }
  return true;
}

std::string CliParser::usage() const {
  std::string out = description_ + "\n\nflags:\n";
  for (const auto& f : flags_) {
    out += "  --" + f.name;
    out.append(f.name.size() < 18 ? 18 - f.name.size() : 1, ' ');
    out += f.help + " (default: " + f.default_repr + ")\n";
  }
  out += "  --help              show this message\n";
  return out;
}

}  // namespace osnt
