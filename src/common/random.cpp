#include "osnt/common/random.hpp"

#include <cmath>

namespace osnt {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed the state with the classic splitmix64 generator stepped four
  // times (additive golden-ratio counter, unlike derive_seed's ⊕ stream
  // tag — kept as-is so existing seeds replay bit-identically) so any
  // seed (including 0) yields a well-mixed, non-degenerate state.
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9E3779B97F4A7C15ull;
    s = splitmix64(x);
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  // 53-bit mantissa from the top bits.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return (*this)();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + v % range;
}

double Rng::exponential(double mean) noexcept {
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  if (have_spare_) {
    have_spare_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_ = true;
  return mean + stddev * u * factor;
}

double Rng::pareto(double alpha, double lo, double hi) noexcept {
  // Bounded Pareto via inverse CDF.
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double u = uniform01();
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

bool Rng::chance(double p) noexcept { return uniform01() < p; }

}  // namespace osnt
