#include "osnt/common/hash.hpp"

namespace osnt {

std::uint64_t fnv1a64(ByteSpan data) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (auto b : data) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint32_t jenkins_oaat(ByteSpan data) noexcept {
  std::uint32_t h = 0;
  for (auto b : data) {
    h += b;
    h += h << 10;
    h ^= h >> 6;
  }
  h += h << 3;
  h ^= h >> 11;
  h += h << 15;
  return h;
}

}  // namespace osnt
