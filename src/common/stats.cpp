#include "osnt/common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace osnt {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void SampleSet::add(double x) {
  if (!samples_.empty() && x < samples_.back()) sorted_ = false;
  samples_.push_back(x);
  stats_.add(x);
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void SampleSet::clear() {
  samples_.clear();
  sorted_ = true;
  stats_.reset();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins ? bins : 1)),
      counts_(bins ? bins : 1, 0) {}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // FP edge guard
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + bin_width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + bin_width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t cum = underflow_;
  if (cum > target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > target) return (bin_lo(i) + bin_hi(i)) / 2.0;
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof line, "[%12.3f, %12.3f) %10llu ",
                  bin_lo(i), bin_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace osnt
