#include "osnt/common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <mutex>

namespace osnt {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;
thread_local int t_worker_id = -1;

/// Monotonic epoch for the elapsed-ms line prefix; pinned on first use so
/// static-init order can't bite.
std::chrono::steady_clock::time_point log_epoch() noexcept {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}
/// Touch the epoch during static init so the prefix counts from (roughly)
/// process start rather than from the first log line.
[[maybe_unused]] const auto g_epoch_pin = log_epoch();

constexpr const char* level_name(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_worker(int id) noexcept { t_worker_id = id; }

int log_worker() noexcept { return t_worker_id; }

void log_message(LogLevel level, const std::string& msg) {
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - log_epoch())
          .count();
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (t_worker_id >= 0) {
    std::fprintf(stderr, "[osnt +%.3fms %-5s w%d] %s\n", elapsed_ms,
                 level_name(level), t_worker_id, msg.c_str());
  } else {
    std::fprintf(stderr, "[osnt +%.3fms %-5s] %s\n", elapsed_ms,
                 level_name(level), msg.c_str());
  }
  // Errors are often the last thing a crashing process says: push them
  // past the stdio buffer immediately.
  if (level >= LogLevel::kError) std::fflush(stderr);
}

namespace detail {

std::string format_log(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out;
}

}  // namespace detail
}  // namespace osnt
