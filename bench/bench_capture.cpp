// E5 — the "loss-limited path" + "packet capture filtering and packet
// thinning in hardware" (§1). Host capture completeness vs offered rate,
// with three monitor configurations:
//   full    — capture whole frames
//   snap64  — cut every frame to 64 B before DMA
//   filter  — capture only 1 of 8 flows (wildcard filter)
// The DMA path is 8 Gb/s effective, so full-frame capture saturates first.
#include <cstdio>
#include <optional>
#include <string_view>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"

using namespace osnt;

namespace {

struct Result {
  double captured_frac;
  std::uint64_t dma_drops;
  std::uint64_t filtered;
};

Result run(double gbps, const char* mode) {
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));

  auto& rx = osnt.rx(1);
  std::optional<mon::FilterRule> filter;
  if (std::string_view{mode} == "snap64") {
    rx.cutter().set_snap_len(64);
  } else if (std::string_view{mode} == "filter") {
    mon::FilterRule r;
    r.src_port = 1024;  // flow 0 of 8 (flows differ in src_port)
    filter = r;
  }

  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(gbps);
  spec.frame_size = 512;
  spec.flow_count = 8;
  const auto r =
      core::run_capture_test(eng, osnt, 0, 1, spec, 10 * kPicosPerMilli,
                             filter ? &*filter : nullptr);
  const std::uint64_t eligible = rx.captured() + rx.dma_drops();
  return {eligible ? static_cast<double>(rx.captured()) /
                         static_cast<double>(eligible)
                   : 1.0,
          rx.dma_drops(), rx.filtered_out()};
}

}  // namespace

int main() {
  std::printf("E5: host capture completeness vs offered rate "
              "(loss-limited DMA path, 8 Gb/s effective)\n");
  std::printf("%8s | %10s %10s | %10s %10s | %10s %10s %10s\n", "offered",
              "full_cap%%", "full_drop", "snap_cap%%", "snap_drop",
              "filt_cap%%", "filt_drop", "filt_out");
  for (const double gbps : {1.0, 2.0, 4.0, 6.0, 8.0, 9.5}) {
    const Result full = run(gbps, "full");
    const Result snap = run(gbps, "snap64");
    const Result filt = run(gbps, "filter");
    std::printf("%7.1fG | %9.2f%% %10llu | %9.2f%% %10llu | %9.2f%% %10llu "
                "%10llu\n",
                gbps, full.captured_frac * 100.0,
                static_cast<unsigned long long>(full.dma_drops),
                snap.captured_frac * 100.0,
                static_cast<unsigned long long>(snap.dma_drops),
                filt.captured_frac * 100.0,
                static_cast<unsigned long long>(filt.dma_drops),
                static_cast<unsigned long long>(filt.filtered));
  }
  std::printf("\nShape check: full-frame capture starts dropping once the "
              "offered rate approaches the DMA budget; snap-64 thinning and "
              "1-in-8 filtering keep capture lossless to line rate — the "
              "reason OSNT does both in hardware.\n");
  return 0;
}
