// Telemetry overhead gate: the registry and histograms are meant to stay
// compiled in and *enabled*, so the quantity that matters is the delta an
// instrumented engine pays versus one with telemetry switched off. The
// snapshot script (tools/bench_engine_snapshot.sh) records the ratio in
// BENCH_telemetry.json; the budget is <= 5% on the ScheduleFire storm.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/hw/port.hpp"
#include "osnt/mon/latency_probe.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/telemetry/histogram.hpp"
#include "osnt/telemetry/registry.hpp"

namespace {

using osnt::Picos;
using osnt::sim::Engine;

/// Restore the global telemetry switch when a benchmark exits.
class EnabledGuard {
 public:
  explicit EnabledGuard(bool on) : prev_(osnt::telemetry::enabled()) {
    osnt::telemetry::set_enabled(on);
  }
  ~EnabledGuard() { osnt::telemetry::set_enabled(prev_); }
  EnabledGuard(const EnabledGuard&) = delete;
  EnabledGuard& operator=(const EnabledGuard&) = delete;

 private:
  bool prev_;
};

/// The bench_engine ScheduleFire storm, parameterized on the telemetry
/// switch. The engine outlives the loop, so this isolates the per-event
/// cost (category byte store, high-water compares, the two predictable
/// trace/timing branches) from the end-of-life flush.
void BM_ScheduleFireTelemetry(benchmark::State& state, bool enabled) {
  const EnabledGuard guard(enabled);
  const auto batch = static_cast<int>(state.range(0));
  Engine eng;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      eng.schedule_in((i * 7919) % 4096, [&fired] { ++fired; });
    }
    eng.run();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK_CAPTURE(BM_ScheduleFireTelemetry, on, true)->Arg(256)->Arg(16384);
BENCHMARK_CAPTURE(BM_ScheduleFireTelemetry, off, false)->Arg(256)->Arg(16384);

/// Engine-per-iteration variant: includes construction and the destructor
/// flush into the registry, the full lifecycle a trial pays.
void BM_EngineLifecycleTelemetry(benchmark::State& state, bool enabled) {
  const EnabledGuard guard(enabled);
  const auto batch = static_cast<int>(state.range(0));
  std::uint64_t fired = 0;
  for (auto _ : state) {
    Engine eng;
    for (int i = 0; i < batch; ++i) {
      eng.schedule_in((i * 7919) % 4096, [&fired] { ++fired; });
    }
    eng.run();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK_CAPTURE(BM_EngineLifecycleTelemetry, on, true)->Arg(1024);
BENCHMARK_CAPTURE(BM_EngineLifecycleTelemetry, off, false)->Arg(1024);

/// Raw shard-side histogram record: the branch-free bucket increment hot
/// layers pay per sample.
void BM_HistogramRecord(benchmark::State& state) {
  osnt::telemetry::Log2Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = v * 6364136223846793005ull + 1442695040888963407ull;  // LCG walk
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

/// Registry-side costs: a resolved counter add (one relaxed fetch_add) and
/// a shared histogram record (bucket + count + sum + min/max CAS).
void BM_RegistryCounterAdd(benchmark::State& state) {
  auto& c = osnt::telemetry::registry().counter("bench.telemetry.counter");
  for (auto _ : state) c.add(1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryCounterAdd);

/// In-plane RTT probe A/B: the full monitor datapath (MAC → stamp →
/// stats → filter → DMA) receiving stamped traffic, with the LatencyProbe
/// observing every frame versus configured off. The probe's per-frame
/// cost is one packed u64 store plus an amortized 1/kBatch drain; the
/// gate is <= 5% on delivered frames/sec. Telemetry itself is held off in
/// both arms so this isolates the probe, not the registry flush.
void BM_LatencyProbe(benchmark::State& state, bool enabled) {
  const EnabledGuard guard(false);
  std::uint64_t frames = 0;
  for (auto _ : state) {
    Engine eng;
    osnt::core::OsntDevice dev{eng};
    osnt::hw::connect(dev.port(0), dev.port(1));
    dev.rx(1).set_rtt_probe_enabled(enabled);
    osnt::core::TrafficSpec spec;
    spec.rate = osnt::gen::RateSpec::gbps(5.0);
    spec.frame_size = 256;
    spec.seed = 42;
    const auto r = osnt::core::run_capture_test(
        eng, dev, 0, 1, spec, 200 * osnt::kPicosPerMicro);
    frames += r.rx_frames;
  }
  benchmark::DoNotOptimize(frames);
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
}
BENCHMARK_CAPTURE(BM_LatencyProbe, on, true);
BENCHMARK_CAPTURE(BM_LatencyProbe, off, false);

/// Raw probe hot path: the packed append + amortized drain per sample.
void BM_LatencyProbeObserve(benchmark::State& state) {
  osnt::mon::LatencyProbe p;
  std::uint64_t v = 1;
  for (auto _ : state) {
    p.observe(v & 0xFFFFF, static_cast<std::uint8_t>(v));
    v = v * 6364136223846793005ull + 1442695040888963407ull;
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencyProbeObserve);

void BM_RegistryHistogramRecord(benchmark::State& state) {
  auto& h = osnt::telemetry::registry().histogram("bench.telemetry.hist");
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = v * 6364136223846793005ull + 1442695040888963407ull;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryHistogramRecord);

}  // namespace

BENCHMARK_MAIN();
