// E2 — "sub-µsec time precision in traffic generation and capture,
// corrected using an external GPS device"; 6.25 ns timestamp resolution.
// Sweeps oscillator quality with GPS discipline on/off and reports the
// worst-case and RMS clock error over 30 simulated seconds.
#include <cmath>
#include <cstdio>

#include "osnt/common/stats.hpp"
#include "osnt/tstamp/clock.hpp"

using namespace osnt;
using namespace osnt::tstamp;

namespace {

struct Row {
  double ppm;
  double rw;
  bool gps;
  double worst_ns;
  double rms_ns;
  double final_ns;
};

Row measure(double ppm, double random_walk, bool gps_on) {
  GpsConfig gcfg;
  gcfg.jitter_rms = 30 * kPicosPerNano;
  GpsModel gps{gcfg};
  ClockConfig cfg;
  cfg.discipline = gps_on;
  cfg.osc.ppm_offset = ppm;
  cfg.osc.random_walk_ppm = random_walk;
  DisciplinedClock clk{gps, cfg};

  // Ignore the first 10 s (servo convergence), then sample every 50 ms.
  (void)clk.now(10 * kPicosPerSec);
  double worst = 0.0, sumsq = 0.0, err = 0.0;
  int n = 0;
  for (Picos t = 10 * kPicosPerSec; t <= 30 * kPicosPerSec;
       t += 50 * kPicosPerMilli) {
    err = clk.error_nanos(t);
    worst = std::max(worst, std::abs(err));
    sumsq += err * err;
    ++n;
  }
  return {ppm, random_walk, gps_on, worst, std::sqrt(sumsq / n), err};
}

}  // namespace

int main() {
  std::printf("E2: timestamp clock error over 30 s (paper: sub-usec "
              "precision with GPS correction; 6.25 ns resolution)\n");
  std::printf("timestamp format resolution: %.4f ns; datapath tick: %.2f ns\n\n",
              1e9 / 4294967296.0, kTickNanos);
  std::printf("%8s %8s %6s %14s %12s %14s\n", "ppm_off", "rw_ppm", "gps",
              "worst_err_ns", "rms_err_ns", "final_err_ns");
  for (const double ppm : {0.0, 5.0, 20.0, 50.0}) {
    for (const double rw : {0.0, 0.02}) {
      for (const bool gps : {false, true}) {
        const Row r = measure(ppm, rw, gps);
        std::printf("%8.1f %8.2f %6s %14.1f %12.1f %14.1f\n", r.ppm, r.rw,
                    r.gps ? "on" : "off", r.worst_ns, r.rms_ns, r.final_ns);
      }
    }
  }
  std::printf("\nShape check: without GPS the error grows to ppm x elapsed "
              "(e.g. 20 ppm x 30 s = 600 us); with GPS it stays bounded at "
              "tens of ns — sub-microsecond, as claimed.\n");
  return 0;
}
