// E1 — "full line-rate traffic generation regardless of packet size
// across the four card ports" (§1). For every RFC 2544 frame size and
// port count 1..4, drive the generators at 100% and compare the achieved
// aggregate rate to 10 Gb/s × ports and to the theoretical Mpps.
#include <cstdio>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"

using namespace osnt;

int main() {
  std::printf("E1: generator line rate vs frame size (paper: full line rate "
              "on all 4 ports regardless of packet size)\n");
  std::printf("%7s %6s %12s %12s %12s %12s %9s\n", "size", "ports",
              "offered_Gbps", "target_Gbps", "achieved_pps", "theory_pps",
              "rate_err");

  for (const std::size_t size : {std::size_t{64}, std::size_t{128},
                                 std::size_t{256}, std::size_t{512},
                                 std::size_t{1024}, std::size_t{1518}}) {
    for (std::size_t ports = 1; ports <= 4; ++ports) {
      sim::Engine eng;
      core::OsntDevice tx_dev{eng};
      core::OsntDevice rx_dev{eng};
      for (std::size_t p = 0; p < ports; ++p)
        hw::connect(tx_dev.port(p), rx_dev.port(p));
      // The RX monitors never back-pressure; disable host capture to keep
      // this purely a generator-rate experiment.
      for (std::size_t p = 0; p < ports; ++p)
        rx_dev.rx(p).set_capture_enabled(false);

      for (std::size_t p = 0; p < ports; ++p) {
        gen::TxConfig cfg;
        cfg.rate = gen::RateSpec::line_rate(1.0);
        cfg.seed = 100 + p;
        auto& tx = tx_dev.configure_tx(p, cfg);
        core::TrafficSpec spec;
        spec.frame_size = size;
        tx.set_source(core::make_source(spec));
        tx.start();
      }
      const Picos duration = 2 * kPicosPerMilli;
      eng.run_until(duration);
      for (std::size_t p = 0; p < ports; ++p) tx_dev.tx(p).stop();
      eng.run();

      double gbps = 0.0;
      std::uint64_t frames = 0;
      for (std::size_t p = 0; p < ports; ++p) {
        gbps += tx_dev.tx(p).achieved_gbps();
        frames += tx_dev.tx(p).frames_sent();
      }
      const double pps = static_cast<double>(frames) / to_seconds(duration);
      const double theory_pps =
          net::max_frame_rate(size, 10.0) * static_cast<double>(ports);
      const double target = 10.0 * static_cast<double>(ports);
      std::printf("%6zuB %6zu %12.4f %12.1f %12.0f %12.0f %8.3f%%\n", size,
                  ports, gbps, target, pps, theory_pps,
                  (gbps / target - 1.0) * 100.0);
    }
  }
  std::printf("\nShape check: rate error ~0%% at every size and port count "
              "= line rate regardless of packet size.\n");
  return 0;
}
