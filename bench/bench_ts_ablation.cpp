// E9 — design-choice ablation: timestamping "on receipt by the MAC
// module, thus minimising queueing noise" (§1) versus timestamping in
// the host (after the DMA path), the way commodity capture does it.
// Under bursty load the DMA queue adds noise that MAC timestamps avoid.
#include <cstdio>

#include "osnt/common/stats.hpp"
#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/tstamp/embed.hpp"

using namespace osnt;

int main() {
  std::printf("E9: MAC-receipt vs host timestamping under bursty load "
              "(ablation of the paper's design choice)\n");
  std::printf("%8s %8s | %12s %12s | %12s %12s\n", "load", "burst",
              "mac_p50_ns", "mac_sigma", "host_p50_ns", "host_sigma");

  for (const double gbps : {1.0, 4.0, 7.0}) {
    for (const std::size_t burst : {std::size_t{1}, std::size_t{64}}) {
      sim::Engine eng;
      core::OsntDevice osnt{eng};
      hw::connect(osnt.port(0), osnt.port(1));

      // Host-side timestamps: sample sim time when the record reaches the
      // host (i.e. after the shared DMA path) — the ablated design.
      SampleSet host_ns;
      osnt.capture().set_on_record([&](const mon::CaptureRecord& rec) {
        const auto stamp = tstamp::extract_timestamp(
            ByteSpan{rec.data.data(), rec.data.size()},
            tstamp::kDefaultEmbedOffset);
        if (stamp)
          host_ns.add(to_nanos(eng.now()) - stamp->ts.to_nanos());
      });

      core::TrafficSpec spec;
      spec.rate = gen::RateSpec::gbps(gbps);
      spec.frame_size = 512;
      spec.arrivals = burst > 1 ? core::TrafficSpec::Arrivals::kBurst
                                : core::TrafficSpec::Arrivals::kCbr;
      spec.burst_len = burst;
      const auto r = core::run_capture_test(eng, osnt, 0, 1, spec,
                                            2 * kPicosPerMilli);

      std::printf("%7.1fG %8zu | %12.1f %12.2f | %12.1f %12.2f\n", gbps,
                  burst, r.latency_ns.quantile(0.5), r.latency_ns.stddev(),
                  host_ns.quantile(0.5), host_ns.stddev());
    }
  }
  std::printf("\nShape check: MAC timestamps stay tight (sigma ~ one tick) "
              "at every load; host timestamps inflate by the DMA queueing "
              "delay and their sigma explodes under bursts — why OSNT "
              "stamps at the MAC.\n");
  return 0;
}
