// E7 — demo Part II: "forwarding consistency during large flow table
// updates". Sweep the update-burst size and report the inconsistency
// window and how many packets the old rules forwarded after their
// replacement was requested.
#include <cstdio>

#include "osnt/oflops/consistency.hpp"
#include "osnt/oflops/context.hpp"

using namespace osnt;

int main() {
  std::printf("E7: forwarding consistency during flow-table updates "
              "(demo Part II)\n");
  std::printf("%8s %16s %14s %14s %16s\n", "rules", "update_window_ms",
              "stale_pkts", "switched", "rule_eff_p99_ms");

  for (const std::size_t rules : {std::size_t{32}, std::size_t{128},
                                  std::size_t{512}, std::size_t{1024}}) {
    dut::OpenFlowSwitchConfig sw_cfg;
    sw_cfg.commit_base = 200 * kPicosPerMicro;  // 0.2 ms per rule commit
    sw_cfg.commit_per_entry = 0;
    sw_cfg.table.max_entries = 8192;
    oflops::Testbed tb{sw_cfg};

    oflops::ConsistencyConfig cfg;
    cfg.rule_count = rules;
    cfg.traffic_gbps = 0.5;
    oflops::ConsistencyModule mod{cfg};
    const auto rep = tb.ctx.run(mod, 600 * kPicosPerSec);

    double window = 0, stale = 0, switched = 0, p99 = 0;
    for (const auto& m : rep.scalars) {
      if (m.name == "update_window_ms") window = m.value;
      if (m.name == "stale_packets_after_burst") stale = m.value;
      if (m.name == "flows_switched") switched = m.value;
    }
    for (const auto& [name, d] : rep.distributions)
      if (name == "rule_effective_ms") p99 = d.quantile(0.99);
    std::printf("%8zu %16.2f %14.0f %14.0f %16.2f\n", rules, window, stale,
                switched, p99);
  }
  std::printf("\nShape check: the window and the stale-packet count grow "
              "~linearly with the burst size (serial hardware commits): "
              "during a 1024-rule update the data plane is inconsistent for "
              "hundreds of ms.\n");
  return 0;
}
