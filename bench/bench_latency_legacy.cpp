// E3 — demo Part I: "accurately measure the packet-processing latency of
// a legacy switch under different load conditions". Latency distribution
// vs offered load for three probe frame sizes, with competing traffic
// sharing the egress port.
#include <algorithm>
#include <cstdio>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/dut/legacy_switch.hpp"
#include "osnt/net/builder.hpp"

using namespace osnt;

namespace {

void prime_learning(sim::Engine& eng, core::OsntDevice& osnt) {
  net::PacketBuilder b;
  (void)osnt.port(1).tx().transmit(
      b.eth(net::MacAddr::from_index(2), net::MacAddr::from_index(1))
          .ipv4(net::Ipv4Addr::of(10, 0, 1, 1), net::Ipv4Addr::of(10, 0, 0, 1),
                net::ipproto::kUdp)
          .udp(5001, 1024)
          .build());
  eng.run();
}

}  // namespace

int main() {
  std::printf("E3: legacy switch latency vs load (demo Part I)\n");
  std::printf("%7s %7s %12s %12s %12s %12s %9s\n", "probe", "load",
              "lat_min_ns", "lat_p50_ns", "lat_p99_ns", "lat_max_ns",
              "loss%%");

  for (const std::size_t frame : {std::size_t{64}, std::size_t{512},
                                  std::size_t{1518}}) {
    for (const double load : {0.2, 0.5, 0.8, 0.95, 1.0, 1.05}) {
      sim::Engine eng;
      core::OsntDevice osnt{eng};
      dut::LegacySwitch sw{dut::GraphWired{}, eng};
      hw::connect(osnt.port(0), sw.port(0));
      hw::connect(osnt.port(1), sw.port(1));
      hw::connect(osnt.port(2), sw.port(2));
      prime_learning(eng, osnt);

      // Background stream occupies (load - 5%) of the shared egress; a
      // total above 100% overloads it and exposes the queueing knee.
      gen::TxConfig bg_cfg;
      bg_cfg.rate = gen::RateSpec::line_rate(
          std::clamp(load - 0.05, 0.01, 1.0));
      bg_cfg.seed = 7;
      auto& bg = osnt.configure_tx(2, bg_cfg);
      core::TrafficSpec bg_spec;
      bg_spec.dst_port = 6001;  // distinct from the probe stream
      bg_spec.frame_size = 1518;
      bg_spec.seed = 7;
      bg.set_source(core::make_source(bg_spec));
      bg.start();

      core::TrafficSpec probe;
      probe.rate = gen::RateSpec::line_rate(0.05);
      probe.frame_size = frame;
      const auto r =
          core::run_capture_test(eng, osnt, 0, 1, probe, 8 * kPicosPerMilli);
      bg.stop();

      std::printf("%6zuB %6.0f%% %12.1f %12.1f %12.1f %12.1f %8.3f%%\n",
                  frame, load * 100.0, r.latency_ns.min(),
                  r.latency_ns.quantile(0.5), r.latency_ns.quantile(0.99),
                  r.latency_ns.max(), r.loss_fraction() * 100.0);
    }
  }
  std::printf("\nShape check: flat sub-2us latency at low load, queueing "
              "knee (p99 explosion, then loss) as the egress saturates.\n");
  return 0;
}
