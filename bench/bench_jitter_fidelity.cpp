// E8 — "accurate timestamping mechanism ... used for timing-related
// network measurements, such as latency and jitter" (§1). Inject a known
// latency + jitter in the DUT and check OSNT measures exactly that —
// measurement fidelity against simulation ground truth.
#include <cmath>
#include <cstdio>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/dut/legacy_switch.hpp"
#include "osnt/net/builder.hpp"

using namespace osnt;

namespace {

void prime_learning(sim::Engine& eng, core::OsntDevice& osnt) {
  net::PacketBuilder b;
  (void)osnt.port(1).tx().transmit(
      b.eth(net::MacAddr::from_index(2), net::MacAddr::from_index(1))
          .ipv4(net::Ipv4Addr::of(10, 0, 1, 1), net::Ipv4Addr::of(10, 0, 0, 1),
                net::ipproto::kUdp)
          .udp(5001, 1024)
          .build());
  eng.run();
}

}  // namespace

int main() {
  std::printf("E8: latency/jitter measurement fidelity vs injected ground "
              "truth\n");
  std::printf("%12s %12s | %14s %14s %12s\n", "true_lat_ns", "true_jit_ns",
              "meas_p50_ns", "expect_ns", "meas_sigma");

  // Fixed per-frame terms between the TX stamp and the RX stamp for a
  // 512 B probe: TX serialization (frame fully received by the switch),
  // two cable hops, minus nothing at RX (stamped at first bit).
  const double fixed_ns =
      to_nanos(net::serialization_time(512 + net::kEthPerFrameOverhead, 10.0)) +
      2 * to_nanos(sim::fiber_delay(2.0));

  for (const double lat_us : {1.0, 10.0, 100.0}) {
    for (const double jit_ns : {0.0, 50.0, 500.0}) {
      sim::Engine eng;
      core::OsntDevice osnt{eng};
      dut::LegacySwitchConfig cfg;
      cfg.pipeline_latency = from_micros(lat_us);
      cfg.latency_jitter_ns = jit_ns;
      dut::LegacySwitch sw{dut::GraphWired{}, eng, cfg};
      hw::connect(osnt.port(0), sw.port(0));
      hw::connect(osnt.port(1), sw.port(1));
      prime_learning(eng, osnt);

      core::TrafficSpec spec;
      spec.rate = gen::RateSpec::line_rate(0.02);  // no queueing noise
      spec.frame_size = 512;
      const auto r = core::run_capture_test(eng, osnt, 0, 1, spec,
                                            8 * kPicosPerMilli);
      const double expect = lat_us * 1000.0 + fixed_ns;
      std::printf("%12.0f %12.0f | %14.1f %14.1f %12.2f\n", lat_us * 1000.0,
                  jit_ns, r.latency_ns.quantile(0.5), expect,
                  r.latency_ns.stddev());
    }
  }
  std::printf("\nShape check: measured p50 tracks injected latency + fixed "
              "serialization terms to within the 6.25 ns tick; measured "
              "sigma tracks the injected jitter (half-normal: sigma_meas ~= "
              "0.6 x injected).\n");
  return 0;
}
