// E10 — "a PCAP replay function with a tuneable per-packet
// inter-departure time" (§1): generator pacing accuracy. For each rate
// mode, compare requested vs achieved inter-departure times measured at
// the wire (ground truth) — error should be bounded by the datapath
// quantum, never cumulative.
#include <cmath>
#include <cstdio>
#include <vector>

#include "osnt/core/device.hpp"
#include "osnt/common/stats.hpp"
#include "osnt/core/measure.hpp"

using namespace osnt;

namespace {

struct IpgStats {
  double mean_ns = 0;
  double stddev_ns = 0;
  double worst_err_ns = 0;
  std::size_t n = 0;
};

IpgStats measure(gen::RateSpec rate, std::size_t frame_size, double expect_ns) {
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));

  std::vector<Picos> arrivals;
  osnt.port(1).rx().set_handler(
      [&](net::Packet, Picos first_bit, Picos) { arrivals.push_back(first_bit); });

  gen::TxConfig txc;
  txc.rate = rate;
  auto& tx = osnt.configure_tx(0, txc);
  core::TrafficSpec spec;
  spec.frame_size = frame_size;
  spec.frame_count = 2000;
  tx.set_source(core::make_source(spec));
  tx.start();
  eng.run();

  IpgStats s;
  RunningStats rs;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    const double gap = to_nanos(arrivals[i] - arrivals[i - 1]);
    rs.add(gap);
    s.worst_err_ns = std::max(s.worst_err_ns, std::abs(gap - expect_ns));
  }
  s.mean_ns = rs.mean();
  s.stddev_ns = rs.stddev();
  s.n = rs.count();
  return s;
}

}  // namespace

int main() {
  std::printf("E10: inter-departure time accuracy (tuneable per-packet IPG)\n");
  std::printf("%28s %12s %12s %10s %12s\n", "mode", "request_ns", "mean_ns",
              "stddev", "worst_err");

  struct Case {
    const char* label;
    gen::RateSpec rate;
    std::size_t frame;
    double expect_ns;
  };
  const Case cases[] = {
      {"line-rate 100% @64B", gen::RateSpec::line_rate(1.0), 64, 67.2},
      {"line-rate 50% @64B", gen::RateSpec::line_rate(0.5), 64, 134.4},
      {"2 Gb/s @512B", gen::RateSpec::gbps(2.0), 512, 2128.0},
      {"1 Mpps @256B", gen::RateSpec::pps(1e6), 256, 1000.0},
      {"gap 500ns @128B", gen::RateSpec::gap_ns(500), 128, 118.4 + 500.0},
      {"gap 10us @1518B", gen::RateSpec::gap_ns(10000), 1518, 1230.4 + 10000.0},
  };
  for (const auto& c : cases) {
    const auto s = measure(c.rate, c.frame, c.expect_ns);
    std::printf("%28s %12.1f %12.2f %10.3f %12.2f\n", c.label, c.expect_ns,
                s.mean_ns, s.stddev_ns, s.worst_err_ns);
  }
  std::printf("\nShape check: mean matches the request to sub-ns, deviation "
              "is zero (hardware pacing, no OS jitter) — the property that "
              "lets OSNT replay traces with faithful inter-departure "
              "times.\n");
  return 0;
}
