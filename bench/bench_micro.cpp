// E10 — microbenchmarks of the packet-path components (google-benchmark):
// parser, builder, checksum, CRC, filter classification, cutter, flow
// hash, OF 1.0 codec, flow-table lookup. These bound the software-side
// throughput of the toolchain.
#include <benchmark/benchmark.h>

#include "osnt/common/crc.hpp"
#include "osnt/mon/cutter.hpp"
#include "osnt/mon/filter.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/net/checksum.hpp"
#include "osnt/net/flow.hpp"
#include "osnt/net/parser.hpp"
#include "osnt/openflow/flow_table.hpp"
#include "osnt/openflow/messages.hpp"

using namespace osnt;

namespace {

net::Packet make_udp(std::size_t size) {
  net::PacketBuilder b;
  return b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
      .ipv4(net::Ipv4Addr::of(10, 0, 0, 1), net::Ipv4Addr::of(10, 0, 1, 1),
            net::ipproto::kUdp)
      .udp(1024, 5001)
      .pad_to_frame(size)
      .build();
}

void BM_BuildUdpFrame(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(make_udp(size));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BuildUdpFrame)->Arg(64)->Arg(512)->Arg(1518);

void BM_ParsePacket(benchmark::State& state) {
  const auto pkt = make_udp(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(net::parse_packet(pkt.bytes()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pkt.size()));
}
BENCHMARK(BM_ParsePacket)->Arg(64)->Arg(1518);

void BM_Crc32(benchmark::State& state) {
  const auto pkt = make_udp(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crc32(pkt.bytes()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pkt.size()));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1518);

void BM_InternetChecksum(benchmark::State& state) {
  const auto pkt = make_udp(1518);
  for (auto _ : state)
    benchmark::DoNotOptimize(net::internet_checksum(pkt.bytes()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1514);
}
BENCHMARK(BM_InternetChecksum);

void BM_FlowExtractAndHash(benchmark::State& state) {
  const auto pkt = make_udp(64);
  for (auto _ : state) {
    auto t = net::extract_flow(pkt.bytes());
    benchmark::DoNotOptimize(t->hash());
  }
}
BENCHMARK(BM_FlowExtractAndHash);

void BM_FilterClassify(benchmark::State& state) {
  mon::FilterTable table;
  for (int i = 0; i < state.range(0); ++i) {
    mon::FilterRule r;
    r.dst_port = static_cast<std::uint16_t>(9000 + i);  // all miss
    table.add(r);
  }
  const auto pkt = make_udp(64);
  const auto parsed = *net::parse_packet(pkt.bytes());
  for (auto _ : state) benchmark::DoNotOptimize(table.classify(parsed));
}
BENCHMARK(BM_FilterClassify)->Arg(1)->Arg(8)->Arg(16);

void BM_CutterSnap(benchmark::State& state) {
  mon::CutterConfig cfg;
  cfg.snap_len = 64;
  mon::PacketCutter cutter{cfg};
  const auto pkt = make_udp(1518);
  for (auto _ : state) benchmark::DoNotOptimize(cutter.process(pkt.bytes()));
}
BENCHMARK(BM_CutterSnap);

void BM_OfEncodeFlowMod(benchmark::State& state) {
  openflow::FlowMod fm;
  fm.match = openflow::OfMatch::exact_5tuple(1, 2, 17, 3, 4);
  fm.actions = {openflow::ActionOutput{2}};
  for (auto _ : state) benchmark::DoNotOptimize(openflow::encode(fm, 1));
}
BENCHMARK(BM_OfEncodeFlowMod);

void BM_OfDecodeFlowMod(benchmark::State& state) {
  openflow::FlowMod fm;
  fm.match = openflow::OfMatch::exact_5tuple(1, 2, 17, 3, 4);
  fm.actions = {openflow::ActionOutput{2}};
  const Bytes wire = openflow::encode(fm, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(openflow::decode(ByteSpan{wire.data(), wire.size()}));
}
BENCHMARK(BM_OfDecodeFlowMod);

void BM_FlowTableLookup(benchmark::State& state) {
  openflow::FlowTableConfig cfg;
  cfg.max_entries = 8192;
  openflow::FlowTable table{cfg};
  const auto n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    openflow::FlowMod fm;
    fm.match = openflow::OfMatch::exact_5tuple(
        1, static_cast<std::uint32_t>(i + 2), 17, 3, 4);
    fm.actions = {openflow::ActionOutput{2}};
    table.apply(fm, 0);
  }
  // Worst case: match the last-priority rule.
  openflow::OfMatch pkt;
  pkt.wildcards = 0;
  pkt.dl_type = 0x0800;
  pkt.nw_proto = 17;
  pkt.nw_src = 1;
  pkt.nw_dst = static_cast<std::uint32_t>(n + 1);
  pkt.tp_src = 3;
  pkt.tp_dst = 4;
  for (auto _ : state) benchmark::DoNotOptimize(table.lookup(pkt, 0, 64));
}
BENCHMARK(BM_FlowTableLookup)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
