// Event-core throughput: the scheduler is the ceiling on how many
// packets/sec the whole tester can model, so its events/sec budget is a
// first-class benchmarked quantity (cf. MoonGen / P4TG generator cores).
//
// Compiles against both the legacy shared_ptr<std::function> engine and
// the move-only slab engine: when EventFn is copyable (legacy), closures
// use the historical make_shared-to-make-it-copyable idiom; when it is
// move-only, payloads are captured by move. Each engine is therefore
// measured with its idiomatic call-site pattern.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "osnt/burst/source.hpp"
#include "osnt/graph/blocks.hpp"
#include "osnt/graph/graph.hpp"
#include "osnt/net/packet.hpp"
#include "osnt/sim/engine.hpp"

namespace {

using osnt::Picos;
using osnt::sim::Engine;
using osnt::sim::EventId;

constexpr bool kMoveOnlyEngine =
    !std::is_copy_constructible_v<osnt::sim::EventFn>;

/// Schedule + fire throughput with trivial closures and colliding times —
/// the pure scheduler overhead floor.
void BM_ScheduleFire(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  Engine eng;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      eng.schedule_in((i * 7919) % 4096, [&fired] { ++fired; });
    }
    eng.run();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * batch);
}
// 256 ~ the simulator's steady-state pending count (ports x in-flight
// events + timers); 1024/16384 stress cache-bound deep-queue behavior.
BENCHMARK(BM_ScheduleFire)->Arg(256)->Arg(1024)->Arg(16384);

/// Schedule/cancel churn: half of every batch is cancelled before it can
/// fire, exercising the lazy-cancellation bookkeeping.
void BM_ScheduleCancelChurn(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Engine eng;
  std::uint64_t fired = 0;
  std::vector<EventId> ids;
  ids.reserve(batch);
  for (auto _ : state) {
    ids.clear();
    for (std::size_t i = 0; i < batch; ++i) {
      ids.push_back(
          eng.schedule_in(static_cast<Picos>((i * 37) % 512), [&fired] { ++fired; }));
    }
    for (std::size_t i = 0; i < batch; i += 2) eng.cancel(ids[i]);
    eng.run();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ScheduleCancelChurn)->Arg(1024);

osnt::net::Packet make_frame(std::size_t payload) {
  osnt::net::Packet p;
  p.data.assign(payload, 0xa5);
  return p;
}

/// One 10G port modelled as a self-rescheduling event chain that carries a
/// real frame through every hop — the link/MAC/DMA hot-path shape.
struct PortChain {
  Engine* eng;
  std::uint64_t remaining;
  std::uint64_t delivered = 0;
  Picos gap;

  void arm(osnt::net::Packet pkt) {
    if constexpr (kMoveOnlyEngine) {
      eng->schedule_in(gap, [this, pkt = std::move(pkt)]() mutable {
        hop(std::move(pkt));
      });
    } else {
      // Legacy idiom: wrap the payload in a shared_ptr so the closure is
      // copyable, exactly as the seed call sites did.
      auto shared = std::make_shared<osnt::net::Packet>(std::move(pkt));
      eng->schedule_in(gap, [this, shared] { hop(std::move(*shared)); });
    }
  }

  void hop(osnt::net::Packet pkt) {
    ++delivered;
    benchmark::DoNotOptimize(pkt.data.data());
    if (--remaining > 0) arm(std::move(pkt));
  }
};

/// Mixed 4-port line-rate event storm: four interleaved packet-carrying
/// chains with staggered serialization gaps (64B wire times at 10G).
void BM_LineRateStorm4Port(benchmark::State& state) {
  const auto per_port = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    PortChain ports[4];
    for (int p = 0; p < 4; ++p) {
      ports[p].eng = &eng;
      ports[p].remaining = per_port;
      // 64B frame + overhead at 10G ≈ 67.2 ns; stagger so the four chains
      // interleave rather than fire in lockstep.
      ports[p].gap = 67'200 + 100 * p;
      ports[p].arm(make_frame(256));
    }
    eng.run();
    benchmark::DoNotOptimize(ports[0].delivered);
  }
  state.SetItemsProcessed(state.iterations() * 4 *
                          static_cast<std::int64_t>(per_port));
}
BENCHMARK(BM_LineRateStorm4Port)->Arg(4096);

/// Burst-generator emission throughput, 64 B on/off at 10G. First arg:
/// 1 = the batched MoonGen-style hot path (one event per burst, SoA
/// walk, template clones); 0 = the naive baseline (one event per frame,
/// each crafting its packet from scratch). Second arg: 1 = wired to a
/// sink through a real graph edge; 0 = dark output port, isolating the
/// emission machinery itself. Same schedule, identical frames either
/// way — only the emission mechanism differs.
///
/// The BENCH_engine.json `burst_pps` gate compares the dark-port pair:
/// through a wire, both modes pay the identical per-frame Link delivery
/// event (~the BM_ScheduleFire floor), which bounds any end-to-end
/// ratio near 2x no matter how cheap emission gets — the wired pair is
/// reported for that context, the dark pair for the machinery delta.
void BM_BurstEmission(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  std::uint64_t frames = 0;
  for (auto _ : state) {
    Engine eng;
    osnt::graph::Graph g{eng};
    osnt::burst::BurstSourceConfig cfg;
    cfg.pattern.pattern = osnt::burst::Pattern::kOnOff;
    cfg.pattern.rate_gbps = 10.0;
    cfg.pattern.frame_size = 64;
    cfg.pattern.period = 100 * osnt::kPicosPerMicro;
    cfg.pattern.duty = 0.5;
    cfg.batched = batched;
    cfg.horizon = 2 * osnt::kPicosPerMilli;
    auto& src = g.emplace<osnt::burst::BurstSourceBlock>(eng, "src", cfg);
    if (state.range(1) != 0) {
      g.emplace<osnt::graph::SinkBlock>(eng, "sink");
      g.connect("src", 0, "sink", 0);
    }
    g.start();
    eng.run();
    frames += src.frames_out() + src.drops();
    benchmark::DoNotOptimize(src.wire_bytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_BurstEmission)->Args({1, 1})->Args({0, 1})->Args({1, 0})->Args({0, 0});

}  // namespace

BENCHMARK_MAIN();
