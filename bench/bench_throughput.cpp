// E4 — demo Part I: "evaluate the achievable bandwidth ... of a network
// device" — RFC 2544-style zero-loss throughput per frame size, for a
// wire-rate switch and a deliberately under-provisioned one (to show the
// search finding a real capacity limit).
#include <cstdio>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/core/rfc2544.hpp"
#include "osnt/dut/legacy_switch.hpp"
#include "osnt/net/builder.hpp"

using namespace osnt;

namespace {

core::TrialStats trial(double load, std::size_t frame_size,
                       double lookup_mpps) {
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  dut::LegacySwitchConfig cfg;
  cfg.lookup_rate_mpps = lookup_mpps;
  dut::LegacySwitch sw{dut::GraphWired{}, eng, cfg};
  hw::connect(osnt.port(0), sw.port(0));
  hw::connect(osnt.port(1), sw.port(1));
  {
    net::PacketBuilder b;
    (void)osnt.port(1).tx().transmit(
        b.eth(net::MacAddr::from_index(2), net::MacAddr::from_index(1))
            .ipv4(net::Ipv4Addr::of(10, 0, 1, 1), net::Ipv4Addr::of(10, 0, 0, 1),
                  net::ipproto::kUdp)
            .udp(5001, 1024)
            .build());
    eng.run();
  }
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::line_rate(load);
  spec.frame_size = frame_size;
  const auto r = core::run_capture_test(eng, osnt, 0, 1, spec, kPicosPerMilli);
  core::TrialStats s;
  s.tx_frames = r.tx_frames;
  s.rx_frames = r.rx_frames;
  s.offered_gbps = r.offered_gbps;
  s.latency_ns = r.latency_ns;
  return s;
}

void sweep(const char* label, double lookup_mpps) {
  std::printf("\nDUT: %s\n%7s %12s %10s %10s %14s\n", label, "size",
              "zero-loss", "Gb/s", "Mpps", "lat_p50_ns");
  core::ThroughputSearchConfig cfg;
  cfg.resolution = 0.01;
  for (const std::size_t size : core::rfc2544_frame_sizes()) {
    const auto pt = core::find_throughput(
        [&](double load, std::size_t fs) { return trial(load, fs, lookup_mpps); },
        size, cfg);
    std::printf("%6zuB %11.1f%% %10.3f %10.3f %14.1f\n", pt.frame_size,
                pt.max_load_fraction * 100.0, pt.gbps, pt.mpps,
                pt.latency_at_max_ns.quantile(0.5));
  }
}

}  // namespace

int main() {
  std::printf("E4: RFC 2544 zero-loss throughput sweep (demo Part I, "
              "achievable bandwidth)\n");
  sweep("wire-rate store-and-forward switch", 0.0);
  // A packet-rate-limited lookup engine: small frames saturate it long
  // before the link fills — the classic under-provisioned-switch shape.
  sweep("lookup-limited switch (2 Mpps forwarding engine)", 2.0);
  std::printf("\nShape check: wire-rate DUT passes 100%% at every size; the "
              "lookup-limited DUT caps at ~2 Mpps, i.e. ~13%% of line rate "
              "at 64 B but full rate at 1518 B.\n");
  return 0;
}
