// Trial-throughput scaling gate for core::Runner: the same 16-trial
// RFC 2544-style workload (real sim::Engine testbed per trial) executed
// with 1..N workers. trials/sec should scale with cores because trials are
// seed-isolated; BENCH_runner.json (tools/bench_engine_snapshot.sh)
// records the measured curve plus the host's hardware_concurrency so the
// ratio is interpretable.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <thread>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/core/repeat.hpp"
#include "osnt/core/rfc2544.hpp"
#include "osnt/core/runner.hpp"

namespace {

using namespace osnt;

/// One RFC 2544-style trial: fresh simulated testbed, 0.2 ms of offered
/// traffic, loss + latency out. This is the per-trial unit of work the
/// runner shards.
core::TrialStats sim_trial(const core::TrialPoint& pt) {
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::line_rate(pt.load_fraction);
  spec.frame_size = pt.frame_size;
  spec.seed = pt.seed;
  const auto r =
      core::run_capture_test(eng, osnt, 0, 1, spec, kPicosPerMilli / 5);
  core::TrialStats s;
  s.tx_frames = r.tx_frames;
  s.rx_frames = r.rx_frames;
  s.offered_gbps = r.offered_gbps;
  s.metric = r.latency_ns.quantile(0.5);
  return s;
}

/// 16-point frame-loss ladder at 256 B — 16 independent simulations per
/// iteration, fanned across `jobs` workers.
void BM_LossLadder16Trials(benchmark::State& state) {
  core::RunnerConfig rc;
  rc.jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto ladder = core::loss_rate_sweep(sim_trial, 256, 1.0,
                                              1.0 / 16.0, rc);
    benchmark::DoNotOptimize(ladder.data());
  }
  state.SetItemsProcessed(state.iterations() * 16);
  state.counters["jobs"] = static_cast<double>(rc.jobs);
  state.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_LossLadder16Trials)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Repeat-across-seeds (run_repeated) with 16 repetitions of the same
/// simulation — the statistical-sweep shape from the methodology papers.
void BM_Repeated16Seeds(benchmark::State& state) {
  core::RunnerConfig rc;
  rc.jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto r = core::run_repeated(sim_trial, 16, rc);
    benchmark::DoNotOptimize(r.mean);
  }
  state.SetItemsProcessed(state.iterations() * 16);
  state.counters["jobs"] = static_cast<double>(rc.jobs);
}
BENCHMARK(BM_Repeated16Seeds)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
