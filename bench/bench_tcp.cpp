// Closed-loop transport cost + fidelity gate: (a) how many
// congestion-controlled flows the simulator can turn per wall second,
// measured with manual timing so items/sec is flows simulated per wall
// second of *simulation* — testbed construction (building N flow state
// machines, the device, the cable) happens outside the timed region;
// (b) the wheel-vs-heap A/B at scale in a timer-dominated regime (the
// tentpole's >= 2x gate at 10k flows); and (c) the goodput-vs-BER
// curve, the headline experiment of the tcp subsystem. BENCH_tcp.json
// (tools/bench_engine_snapshot.sh) snapshots all three.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <string>

#include "osnt/core/device.hpp"
#include "osnt/fault/plan.hpp"
#include "osnt/graph/blocks.hpp"
#include "osnt/graph/graph.hpp"
#include "osnt/graph/topology.hpp"
#include "osnt/tcp/workload.hpp"

namespace {

using namespace osnt;

tcp::WorkloadConfig bench_cfg(const char* cc, std::size_t flows) {
  tcp::WorkloadConfig cfg;
  cfg.cc = cc;
  cfg.flows = flows;
  cfg.bottleneck_gbps = 5.0;
  cfg.queue_segments = 256;
  cfg.seed = 1;
  return cfg;
}

/// Run one pre-built trial, timing only the simulation. Returns the
/// report for counter bookkeeping.
tcp::TcpTrialReport timed_trial(benchmark::State& state,
                                const tcp::WorkloadConfig& cfg,
                                Picos duration) {
  tcp::ClosedLoopTestbed bed(cfg);  // untimed: flow/device construction
  const auto t0 = std::chrono::steady_clock::now();
  bed.run_until(duration);
  const auto t1 = std::chrono::steady_clock::now();
  state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
  return bed.report(duration);
}

/// Flow-simulation throughput: one 2 ms closed-loop trial per iteration,
/// items/sec = flows simulated per wall second. The per-flow cost is
/// dominated by segment builds + the ACK tap, so this tracks the whole
/// tx→link→rx→ack path, not just the scheduler.
void BM_ClosedLoopFlows(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  const auto cfg = bench_cfg("newreno", flows);
  std::uint64_t segs = 0;
  for (auto _ : state) {
    const auto r = timed_trial(state, cfg, 2 * kPicosPerMilli);
    segs += r.segs_sent;
    benchmark::DoNotOptimize(r.bytes_acked);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(flows));
  state.counters["segs_per_sec"] = benchmark::Counter(
      static_cast<double>(segs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClosedLoopFlows)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// The tentpole gate: flows/wall-second at 1k/10k/100k flows, the §12
/// hot path (arg1 = 1: wheel timers + lazy delack + drop-early probe)
/// vs the pre-§12 legacy baseline (arg1 = 0: heap-only timers, eager
/// delack cancels, unconditional serialization). The regime is
/// deliberately timer-dominated — small MSS, a starved 0.5 Gb/s
/// bottleneck, and a 200 µs min RTO — so most engine events are RTO
/// re-arms/fires and delayed-ACK timers rather than segment transfers.
/// tools/bench_engine_snapshot.sh derives the flows_per_wall_second axis
/// and checks hot path >= 2x legacy at the 10k point.
void BM_FlowScale(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  tcp::WorkloadConfig cfg = bench_cfg("newreno", flows);
  cfg.mss = 256;
  cfg.bottleneck_gbps = 0.5;
  cfg.min_rto = 200 * kPicosPerMicro;
  cfg.max_rto = 2 * kPicosPerMilli;
  cfg.legacy_hot_path = state.range(1) == 0;
  std::uint64_t rto_fires = 0;
  for (auto _ : state) {
    const auto r = timed_trial(state, cfg, 2 * kPicosPerMilli);
    rto_fires += r.rto_fires;
    benchmark::DoNotOptimize(r.bytes_acked);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(flows));
  state.counters["rto_fires"] =
      static_cast<double>(rto_fires) / static_cast<double>(state.iterations());
  state.SetLabel(cfg.legacy_hot_path ? "legacy" : "wheel");
}
BENCHMARK(BM_FlowScale)
    ->Args({1000, 1})
    ->Args({10000, 1})
    ->Args({100000, 1})
    ->Args({1000, 0})
    ->Args({10000, 0})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// Same trial, one point per congestion controller — the relative cost
/// of the three models (BBR pays for pacing timers).
void BM_ClosedLoopPerCc(benchmark::State& state) {
  static const char* kCc[] = {"newreno", "cubic", "bbr"};
  const char* cc = kCc[state.range(0)];
  const auto cfg = bench_cfg(cc, 4);
  for (auto _ : state) {
    const auto r = timed_trial(state, cfg, 2 * kPicosPerMilli);
    benchmark::DoNotOptimize(r.bytes_acked);
  }
  state.SetItemsProcessed(state.iterations() * 4);
  state.SetLabel(cc);
}
BENCHMARK(BM_ClosedLoopPerCc)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// The graph-indirection A/B: the same 8-flow closed-loop trial with the
/// device ports either cabled directly (arg 0) or through a scenario
/// graph with a pass-through monitor block on each direction (arg 1).
/// The frames, their timestamps, and the congestion-control trajectory
/// are identical by construction — the graph arm only adds the block
/// dispatch (input adapter, counters, emit, one zero-propagation Link
/// hop) per frame per direction. tools/bench_engine_snapshot.sh derives
/// graph_overhead from the pair; the gate is <= 5%.
void BM_GraphOverhead(benchmark::State& state) {
  const bool through_graph = state.range(0) == 1;
  const auto cfg = bench_cfg("newreno", 8);
  std::uint64_t bytes_acked = 0;
  for (auto _ : state) {
    // Untimed: engine/device/graph construction and cabling.
    sim::Engine eng;
    core::OsntDevice dev{eng};
    graph::Graph g{eng};
    if (through_graph) {
      g.emplace<graph::MonitorBlock>(eng, "fwd");
      g.emplace<graph::MonitorBlock>(eng, "rev");
      dev.port(0).out_link().connect(g.input("fwd"));
      g.connect_output("fwd", 0, dev.port(1).rx());
      dev.port(1).out_link().connect(g.input("rev"));
      g.connect_output("rev", 0, dev.port(0).rx());
      g.start();
    } else {
      dev.port(0).out_link().connect(dev.port(1).rx());
      dev.port(1).out_link().connect(dev.port(0).rx());
    }
    tcp::ClosedLoopWorkload workload{eng, dev, cfg};
    workload.start();
    const auto t0 = std::chrono::steady_clock::now();
    eng.run_until(2 * kPicosPerMilli);
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    bytes_acked = workload.total_bytes_acked();
    benchmark::DoNotOptimize(bytes_acked);
  }
  state.SetItemsProcessed(state.iterations() * 8);
  // Identical in both arms — the label makes the equivalence auditable
  // from the snapshot JSON.
  state.counters["bytes_acked"] = static_cast<double>(bytes_acked);
  state.SetLabel(through_graph ? "graph" : "direct");
}
BENCHMARK(BM_GraphOverhead)
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// Goodput vs bit-error rate: a 6 ms BER window inside a 20 ms BBR run.
/// Arg indexes the BER ladder; the achieved goodput lands in the
/// "goodput_gbps" counter, from which the snapshot script derives the
/// curve. Index 0 is the clean link (the 10%-of-bottleneck gate point).
void BM_GoodputVsBer(benchmark::State& state) {
  static constexpr double kBer[] = {0.0, 1e-7, 1e-6, 5e-6, 2e-5};
  const double ber = kBer[state.range(0)];
  const auto cfg = bench_cfg("bbr", 4);
  fault::FaultPlan plan;
  if (ber > 0.0) {
    plan = fault::FaultPlan::from_json(
        std::string("{\"seed\": 5, \"events\": [{\"type\": \"ber_window\", "
                    "\"at_ms\": 2, \"duration_ms\": 6, \"ramp_us\": 500, "
                    "\"ber\": ") +
        std::to_string(ber) + "}]}");
  }
  double goodput = 0.0;
  for (auto _ : state) {
    const auto r = tcp::run_closed_loop_trial(
        cfg, 20 * kPicosPerMilli, ber > 0.0 ? &plan : nullptr);
    goodput = r.goodput_bps;
    benchmark::DoNotOptimize(r.retransmits);
  }
  state.counters["ber"] = ber;
  state.counters["goodput_gbps"] = goodput / 1e9;
}
BENCHMARK(BM_GoodputVsBer)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

/// Rate-limit resilience (DESIGN.md §15): one BbrLite flow through a
/// drop-mode carrier policer at half the path rate, detector off
/// (arg 0) vs on (arg 1). Off, the bandwidth model is poisoned by
/// recovery-aliased line-rate samples and goodput collapses under RTO
/// storms; on, the flow adapts to the detected token rate. The
/// snapshot's `rate_limit_resilience` gate holds the on/off goodput
/// ratio >= 1.5x at <= 0.5x the off run's p99 RTT inflation.
void BM_RateLimitResilience(benchmark::State& state) {
  const bool detector = state.range(0) != 0;
  const std::string topo_json = std::string(R"({
    "name": "carrier_policer_bench", "seed": 3, "duration_ms": 40,
    "blocks": [
      {"name": "access", "type": "delay_ber", "delay_us": 20},
      {"name": "policer", "type": "token_bucket",
       "rate_gbps": 2.5, "burst_bytes": 30000, "shape": false},
      {"name": "egress_q", "type": "fifo_queue",
       "rate_gbps": 10.0, "queue_frames": 256},
      {"name": "tap", "type": "monitor", "rtt_probe": true},
      {"name": "ackpath", "type": "delay_ber", "delay_us": 20}
    ],
    "edges": [
      {"from": "access:0", "to": "policer:0"},
      {"from": "policer:0", "to": "egress_q:0"},
      {"from": "egress_q:0", "to": "tap:0"}
    ],
    "workload": {
      "kind": "tcp", "flows": 1, "cc": "bbr", "mss": 1448,
      "bottleneck_gbps": 5.0, "queue_segments": 256,
      "rate_limit_detector": )") +
                                (detector ? "true" : "false") + R"(,
      "ingress": "access:0", "egress": "tap:0",
      "ack_ingress": "ackpath:0", "ack_egress": "ackpath:0"
    }
  })";
  const auto topo = graph::TopologyFile::from_json(topo_json);
  graph::TopologyTrialReport r;
  for (auto _ : state) {
    r = graph::run_topology_trial(topo, topo.seed);
    benchmark::DoNotOptimize(r.tcp.bytes_acked);
  }
  state.counters["goodput_gbps"] = r.tcp.goodput_bps / 1e9;
  state.counters["rtt_inflation"] =
      r.tcp.rtt_min_ns > 0.0 ? r.tcp.rtt_p99_ns / r.tcp.rtt_min_ns : 0.0;
  state.counters["rld_detections"] =
      static_cast<double>(r.tcp.rld_detections);
  state.counters["detect_ms"] =
      static_cast<double>(r.tcp.rld_detect_time) /
      static_cast<double>(kPicosPerMilli);
}
BENCHMARK(BM_RateLimitResilience)
    ->DenseRange(0, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
