// Closed-loop transport cost + fidelity gate: (a) how many
// congestion-controlled flows the simulator can turn per wall second
// (each "item" is one flow simulated for the trial duration — the unit a
// sweep over CC variants actually spends), and (b) the goodput-vs-BER
// curve, the headline experiment of the tcp subsystem. BENCH_tcp.json
// (tools/bench_engine_snapshot.sh) snapshots both; the gate is that the
// clean-link BBR point stays within 10% of the bottleneck's payload
// share and that goodput degrades monotonically as the BER window gets
// harsher.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>

#include "osnt/fault/plan.hpp"
#include "osnt/tcp/workload.hpp"

namespace {

using namespace osnt;

tcp::WorkloadConfig bench_cfg(const char* cc, std::size_t flows) {
  tcp::WorkloadConfig cfg;
  cfg.cc = cc;
  cfg.flows = flows;
  cfg.bottleneck_gbps = 5.0;
  cfg.queue_segments = 256;
  cfg.seed = 1;
  return cfg;
}

/// Flow-simulation throughput: one 2 ms closed-loop trial per iteration,
/// items/sec = flows simulated per wall second. The per-flow cost is
/// dominated by segment builds + the ACK tap, so this tracks the whole
/// tx→link→rx→ack path, not just the scheduler.
void BM_ClosedLoopFlows(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  const auto cfg = bench_cfg("newreno", flows);
  std::uint64_t segs = 0;
  for (auto _ : state) {
    const auto r = tcp::run_closed_loop_trial(cfg, 2 * kPicosPerMilli);
    segs += r.segs_sent;
    benchmark::DoNotOptimize(r.bytes_acked);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(flows));
  state.counters["segs_per_sec"] = benchmark::Counter(
      static_cast<double>(segs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClosedLoopFlows)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

/// Same trial, one point per congestion controller — the relative cost
/// of the three models (BBR pays for pacing timers).
void BM_ClosedLoopPerCc(benchmark::State& state) {
  static const char* kCc[] = {"newreno", "cubic", "bbr"};
  const char* cc = kCc[state.range(0)];
  const auto cfg = bench_cfg(cc, 4);
  for (auto _ : state) {
    const auto r = tcp::run_closed_loop_trial(cfg, 2 * kPicosPerMilli);
    benchmark::DoNotOptimize(r.bytes_acked);
  }
  state.SetItemsProcessed(state.iterations() * 4);
  state.SetLabel(cc);
}
BENCHMARK(BM_ClosedLoopPerCc)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

/// Goodput vs bit-error rate: a 6 ms BER window inside a 20 ms BBR run.
/// Arg indexes the BER ladder; the achieved goodput lands in the
/// "goodput_gbps" counter, from which the snapshot script derives the
/// curve. Index 0 is the clean link (the 10%-of-bottleneck gate point).
void BM_GoodputVsBer(benchmark::State& state) {
  static constexpr double kBer[] = {0.0, 1e-7, 1e-6, 5e-6, 2e-5};
  const double ber = kBer[state.range(0)];
  const auto cfg = bench_cfg("bbr", 4);
  fault::FaultPlan plan;
  if (ber > 0.0) {
    plan = fault::FaultPlan::from_json(
        std::string("{\"seed\": 5, \"events\": [{\"type\": \"ber_window\", "
                    "\"at_ms\": 2, \"duration_ms\": 6, \"ramp_us\": 500, "
                    "\"ber\": ") +
        std::to_string(ber) + "}]}");
  }
  double goodput = 0.0;
  for (auto _ : state) {
    const auto r = tcp::run_closed_loop_trial(
        cfg, 20 * kPicosPerMilli, ber > 0.0 ? &plan : nullptr);
    goodput = r.goodput_bps;
    benchmark::DoNotOptimize(r.retransmits);
  }
  state.counters["ber"] = ber;
  state.counters["goodput_gbps"] = goodput / 1e9;
}
BENCHMARK(BM_GoodputVsBer)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
