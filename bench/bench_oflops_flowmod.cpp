// E6 — demo Part II: "the latency to modify the entries of the switch
// flow table through control and data plane measurements". Sweep the
// flow-table occupancy and report barrier RTT (control plane) vs first
// packet on the new path (data plane).
#include <cstdio>

#include "osnt/oflops/context.hpp"
#include "osnt/oflops/flowmod_latency.hpp"

using namespace osnt;

int main() {
  std::printf("E6: flow_mod latency vs table occupancy (demo Part II)\n");
  std::printf("%8s %14s %14s %14s %14s\n", "rules", "ctrl_p50_ms",
              "data_p50_ms", "data_p99_ms", "gap_p50_ms");

  for (const std::size_t table : {std::size_t{8}, std::size_t{64},
                                  std::size_t{256}, std::size_t{1024}}) {
    dut::OpenFlowSwitchConfig sw_cfg;
    sw_cfg.commit_base = 1 * kPicosPerMilli;
    sw_cfg.commit_per_entry = 2 * kPicosPerMicro;  // TCAM reshuffle term
    sw_cfg.table.max_entries = 8192;
    oflops::Testbed tb{sw_cfg};

    oflops::FlowModLatencyConfig cfg;
    cfg.table_size = table;
    cfg.rounds = 12;
    oflops::FlowModLatencyModule mod{cfg};
    const auto rep = tb.ctx.run(mod, 300 * kPicosPerSec);

    const SampleSet *ctrl = nullptr, *data = nullptr, *gap = nullptr;
    for (const auto& [name, d] : rep.distributions) {
      if (name == "control_plane_ms") ctrl = &d;
      if (name == "data_plane_ms") data = &d;
      if (name == "data_minus_control_ms") gap = &d;
    }
    std::printf("%8zu %14.3f %14.3f %14.3f %14.3f\n", table,
                ctrl ? ctrl->quantile(0.5) : -1.0,
                data ? data->quantile(0.5) : -1.0,
                data ? data->quantile(0.99) : -1.0,
                gap ? gap->quantile(0.5) : -1.0);
  }
  std::printf("\nShape check: control-plane latency is flat (the agent acks "
              "quickly), data-plane install time grows with table occupancy "
              "(TCAM commit cost) — the OFLOPS finding that barriers lie.\n");
  return 0;
}
