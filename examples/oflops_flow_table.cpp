// Demo Part II: OFLOPS-turbo against an OpenFlow switch — flow-table
// modification latency via control AND data plane, plus forwarding
// consistency during a large table update.
//
// The switch here is a graph::OpenFlowSwitchBlock inside a scenario
// graph rather than a hand-cabled dut::OpenFlowSwitch: the same four
// OSNT ports attach through Graph::input()/connect_output(), and the
// block owns its control channel. Measurement modules are unchanged.
//
//   $ ./oflops_flow_table
#include <algorithm>
#include <cstdio>
#include <memory>

#include "osnt/graph/dut_blocks.hpp"
#include "osnt/graph/graph.hpp"
#include "osnt/oflops/consistency.hpp"
#include "osnt/oflops/context.hpp"
#include "osnt/oflops/echo_rtt.hpp"
#include "osnt/oflops/flowmod_latency.hpp"
#include "osnt/oflops/packet_in_latency.hpp"

using namespace osnt;

namespace {

/// The canonical four-cable topology, expressed as a scenario graph:
/// OSNT port i ↔ graph port i of one OpenFlow switch block.
struct GraphTestbed {
  sim::Engine eng;
  core::OsntDevice osnt;
  graph::Graph g;
  graph::OpenFlowSwitchBlock* sw = nullptr;
  dut::SnmpAgent snmp;
  std::unique_ptr<oflops::OflopsContext> ctx;

  explicit GraphTestbed(const dut::OpenFlowSwitchConfig& sw_cfg)
      : osnt(eng), g(eng), snmp(eng) {
    graph::OpenFlowSwitchBlockConfig bc;
    bc.sw = sw_cfg;
    sw = &g.emplace<graph::OpenFlowSwitchBlock>(eng, "sw", bc);
    const std::size_t n = std::min(osnt.num_ports(), sw->dut().num_ports());
    for (std::size_t i = 0; i < n; ++i) {
      osnt.port(i).out_link().connect(g.input("sw", i));
      g.connect_output("sw", i, osnt.port(i).rx());
    }
    snmp.register_counter("ifInOctets.1", [this] {
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < sw->dut().num_ports(); ++i)
        total += sw->dut().port(i).rx().bytes_received();
      return total;
    });
    snmp.register_counter("ifOutOctets.1", [this] {
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < sw->dut().num_ports(); ++i)
        total += sw->dut().port(i).tx().bytes_sent();
      return total;
    });
    snmp.register_counter("ofFlowTableSize.0",
                          [this] { return sw->dut().table().size(); });
    ctx = std::make_unique<oflops::OflopsContext>(eng, osnt, sw->controller(),
                                                  &snmp);
    g.start();
  }
};

}  // namespace

int main() {
  std::printf("Part II demo: OpenFlow switch evaluation (OFLOPS-turbo)\n\n");

  // A production-like switch: barrier acks before hardware commit.
  dut::OpenFlowSwitchConfig sw_cfg;
  sw_cfg.commit_base = 2 * kPicosPerMilli;
  sw_cfg.commit_per_entry = 2 * kPicosPerMicro;

  {
    GraphTestbed tb{sw_cfg};
    oflops::EchoRttModule echo;
    tb.ctx->run(echo).print();
  }
  {
    GraphTestbed tb{sw_cfg};
    oflops::PacketInLatencyModule pin;
    tb.ctx->run(pin).print();
  }
  {
    GraphTestbed tb{sw_cfg};
    oflops::FlowModLatencyConfig cfg;
    cfg.table_size = 128;
    cfg.rounds = 20;
    oflops::FlowModLatencyModule mod{cfg};
    tb.ctx->run(mod, 120 * kPicosPerSec).print();
    std::printf("  (positive data_minus_control_ms = the switch acks rules "
                "before hardware applies them)\n");
  }
  {
    GraphTestbed tb{sw_cfg};
    oflops::ConsistencyConfig cfg;
    cfg.rule_count = 128;
    oflops::ConsistencyModule mod{cfg};
    tb.ctx->run(mod, 120 * kPicosPerSec).print();
    std::printf("  (stale packets = frames forwarded by already-replaced "
                "rules during the update window)\n");
  }
  return 0;
}
