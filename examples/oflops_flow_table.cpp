// Demo Part II: OFLOPS-turbo against an OpenFlow switch — flow-table
// modification latency via control AND data plane, plus forwarding
// consistency during a large table update.
//
//   $ ./oflops_flow_table
#include <cstdio>

#include "osnt/oflops/consistency.hpp"
#include "osnt/oflops/context.hpp"
#include "osnt/oflops/echo_rtt.hpp"
#include "osnt/oflops/flowmod_latency.hpp"
#include "osnt/oflops/packet_in_latency.hpp"

using namespace osnt;

int main() {
  std::printf("Part II demo: OpenFlow switch evaluation (OFLOPS-turbo)\n\n");

  // A production-like switch: barrier acks before hardware commit.
  dut::OpenFlowSwitchConfig sw_cfg;
  sw_cfg.commit_base = 2 * kPicosPerMilli;
  sw_cfg.commit_per_entry = 2 * kPicosPerMicro;

  {
    oflops::Testbed tb{sw_cfg};
    oflops::EchoRttModule echo;
    tb.ctx.run(echo).print();
  }
  {
    oflops::Testbed tb{sw_cfg};
    oflops::PacketInLatencyModule pin;
    tb.ctx.run(pin).print();
  }
  {
    oflops::Testbed tb{sw_cfg};
    oflops::FlowModLatencyConfig cfg;
    cfg.table_size = 128;
    cfg.rounds = 20;
    oflops::FlowModLatencyModule mod{cfg};
    tb.ctx.run(mod, 120 * kPicosPerSec).print();
    std::printf("  (positive data_minus_control_ms = the switch acks rules "
                "before hardware applies them)\n");
  }
  {
    oflops::Testbed tb{sw_cfg};
    oflops::ConsistencyConfig cfg;
    cfg.rule_count = 128;
    oflops::ConsistencyModule mod{cfg};
    tb.ctx.run(mod, 120 * kPicosPerSec).print();
    std::printf("  (stale packets = frames forwarded by already-replaced "
                "rules during the update window)\n");
  }
  return 0;
}
