// Quickstart: the smallest complete OSNT test. Cable generator port 0 to
// monitor port 1 (back-to-back), send 4 Gb/s of 512-byte frames for one
// simulated millisecond, and print throughput/latency/jitter.
//
//   $ ./quickstart
#include <cstdio>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"

int main() {
  using namespace osnt;

  // 1. A simulation engine and one OSNT card (4×10G ports, GPS clock,
  //    shared DMA to the host).
  sim::Engine eng;
  core::OsntDevice osnt{eng};

  // 2. Cable TX port 0 straight into RX port 1.
  hw::connect(osnt.port(0), osnt.port(1));

  // 3. Describe the traffic: 4 Gb/s CBR, 512 B frames, one UDP flow.
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(4.0);
  spec.frame_size = 512;

  // 4. Run for 1 ms of simulated time and collect the results.
  const auto r =
      core::run_capture_test(eng, osnt, /*tx_port=*/0, /*rx_port=*/1, spec,
                             kPicosPerMilli);

  std::printf("OSNT quickstart (port 0 -> cable -> port 1)\n");
  std::printf("  frames tx/rx      : %llu / %llu (loss %.4f%%)\n",
              static_cast<unsigned long long>(r.tx_frames),
              static_cast<unsigned long long>(r.rx_frames),
              r.loss_fraction() * 100.0);
  std::printf("  offered / delivered: %.3f / %.3f Gb/s\n", r.offered_gbps,
              r.delivered_gbps);
  std::printf("  latency ns        : min %.1f  p50 %.1f  p99 %.1f  max %.1f\n",
              r.latency_ns.min(), r.latency_ns.quantile(0.5),
              r.latency_ns.quantile(0.99), r.latency_ns.max());
  std::printf("  jitter ns         : p50 %.2f  p99 %.2f\n",
              r.jitter_ns.quantile(0.5), r.jitter_ns.quantile(0.99));
  std::printf("  host captures     : %zu records (DMA drops: %llu)\n",
              osnt.capture().size(),
              static_cast<unsigned long long>(r.dma_drops));
  return 0;
}
