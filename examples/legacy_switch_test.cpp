// Demo Part I: measure the packet-processing latency of a legacy switch
// under different load conditions. One OSNT port generates timestamped
// traffic at a variable rate; another captures it after the switch and
// estimates switching latency — exactly the workflow the paper describes.
//
// The switch is a one-node scenario graph (graph::LegacySwitchBlock), so
// this doubles as the minimal example of wiring an OSNT tester through
// the composable dataplane API.
//
//   $ ./legacy_switch_test
#include <cstdio>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/graph/dut_blocks.hpp"
#include "osnt/graph/graph.hpp"
#include "osnt/net/builder.hpp"

using namespace osnt;

namespace {

void prime_learning(sim::Engine& eng, core::OsntDevice& osnt) {
  // Announce the monitor-side MAC so the switch unicasts probe traffic.
  net::PacketBuilder b;
  (void)osnt.port(1).tx().transmit(
      b.eth(net::MacAddr::from_index(2), net::MacAddr::from_index(1))
          .ipv4(net::Ipv4Addr::of(10, 0, 1, 1), net::Ipv4Addr::of(10, 0, 0, 1),
                net::ipproto::kUdp)
          .udp(5001, 1024)
          .build());
  eng.run();
}

}  // namespace

int main() {
  std::printf("Part I demo: legacy switch latency vs load\n");
  std::printf("%8s %10s %12s %12s %12s %12s %9s\n", "load", "offered",
              "lat_min_ns", "lat_p50_ns", "lat_p99_ns", "lat_max_ns", "loss%%");

  for (const double load : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    // Fresh testbed per load point: OSNT ports 0,2 → switch; port 1 captures.
    sim::Engine eng;
    core::OsntDevice osnt{eng};
    graph::Graph g{eng};
    g.emplace<graph::LegacySwitchBlock>(eng, "sw");
    for (std::size_t p : {0, 1, 2}) {
      osnt.port(p).out_link().connect(g.input("sw", p));
      g.connect_output("sw", p, osnt.port(p).rx());
    }
    g.start();
    prime_learning(eng, osnt);

    // Competing traffic from port 2 creates the "load condition": it
    // shares the probe's egress port.
    gen::TxConfig bg_cfg;
    bg_cfg.rate = gen::RateSpec::line_rate(load * 0.9);
    auto& bg = osnt.configure_tx(2, bg_cfg);
    core::TrafficSpec bg_spec;
    bg_spec.dst_port = 6001;  // distinct from the probe stream
    bg_spec.frame_size = 1518;
    bg_spec.seed = 7;
    bg.set_source(core::make_source(bg_spec));
    bg.start();

    core::TrafficSpec probe;
    probe.rate = gen::RateSpec::line_rate(load * 0.1);
    probe.frame_size = 256;
    const auto r =
        core::run_capture_test(eng, osnt, 0, 1, probe, 4 * kPicosPerMilli);
    bg.stop();

    std::printf("%7.0f%% %9.2fG %12.1f %12.1f %12.1f %12.1f %8.3f%%\n",
                load * 100.0, r.offered_gbps + bg.achieved_gbps(),
                r.latency_ns.min(), r.latency_ns.quantile(0.5),
                r.latency_ns.quantile(0.99), r.latency_ns.max(),
                r.loss_fraction() * 100.0);
  }
  std::printf("\nThe knee near 100%% offered load is the switch's egress "
              "queue filling up.\n");
  return 0;
}
