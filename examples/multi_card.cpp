// Multi-card measurement — the paper's closing vision: "deployments may
// see the use of hundreds or thousands of testers". One-way latency
// between *different* OSNT cards is only meaningful because every card's
// timestamp clock is disciplined to the same GPS time. This example
// measures A→switch→B one-way latency twice: with card B disciplined,
// and with its antenna unplugged and a 20 ppm oscillator — showing the
// measurement silently corrupting without GPS.
//
//   $ ./multi_card
#include <cstdio>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/dut/legacy_switch.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/gen/template_gen.hpp"
#include "osnt/tstamp/embed.hpp"

using namespace osnt;

namespace {

struct OneWayResult {
  SampleSet latency_ns;
};

OneWayResult run(bool card_b_disciplined, Picos duration) {
  sim::Engine eng;

  // Card A generates; card B monitors. Separate cards = separate clocks.
  core::DeviceConfig cfg_a;
  core::DeviceConfig cfg_b;
  cfg_b.clock.discipline = card_b_disciplined;
  cfg_b.clock.osc.ppm_offset = 20.0;  // a realistic uncorrected crystal
  cfg_b.clock.osc.seed = 77;
  core::OsntDevice card_a{eng, cfg_a};
  core::OsntDevice card_b{eng, cfg_b};

  dut::LegacySwitch sw{dut::GraphWired{}, eng};
  hw::connect(card_a.port(0), sw.port(0));
  hw::connect(card_b.port(0), sw.port(1));

  // Prime MAC learning toward card B.
  net::PacketBuilder pb;
  (void)card_b.port(0).tx().transmit(
      pb.eth(net::MacAddr::from_index(2), net::MacAddr::from_index(1))
          .ipv4(net::Ipv4Addr::of(10, 0, 1, 1), net::Ipv4Addr::of(10, 0, 0, 1),
                net::ipproto::kUdp)
          .udp(5001, 1024)
          .build());
  eng.run();

  // Let both clocks converge/diverge for 5 simulated seconds first — the
  // drift error grows with elapsed time.
  eng.run_until(5 * kPicosPerSec);

  gen::TxConfig txc;
  txc.rate = gen::RateSpec::pps(50'000);
  auto& tx = card_a.configure_tx(0, txc);
  gen::TemplateConfig tc;
  tx.set_source(std::make_unique<gen::TemplateSource>(
      tc, std::make_unique<gen::FixedSize>(256)));
  tx.start();
  eng.run_until(eng.now() + duration);
  tx.stop();
  eng.run_until(eng.now() + kPicosPerMilli);

  OneWayResult r;
  r.latency_ns = card_b.capture().latency_ns(tstamp::kDefaultEmbedOffset, 0);
  return r;
}

}  // namespace

int main() {
  std::printf("Cross-card one-way latency (card A TX stamp vs card B RX "
              "stamp), 5 s after power-on:\n\n");
  const auto good = run(/*card_b_disciplined=*/true, 20 * kPicosPerMilli);
  const auto bad = run(/*card_b_disciplined=*/false, 20 * kPicosPerMilli);

  std::printf("  %-28s n=%zu p50=%.1f ns  p99=%.1f ns\n",
              "both cards GPS-disciplined:", good.latency_ns.count(),
              good.latency_ns.quantile(0.5), good.latency_ns.quantile(0.99));
  std::printf("  %-28s n=%zu p50=%.1f ns  p99=%.1f ns\n",
              "card B free-running (20ppm):", bad.latency_ns.count(),
              bad.latency_ns.quantile(0.5), bad.latency_ns.quantile(0.99));

  std::printf("\nWith GPS both cards agree on absolute time and the one-way "
              "latency is the true ~1.3 us switch transit.\nWithout it, "
              "5 s of 20 ppm drift puts ~100 us of clock error straight "
              "into the measurement —\nwhich is why OSNT corrects drift "
              "and phase from an external GPS device.\n");
  return 0;
}
