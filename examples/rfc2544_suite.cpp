// Automated RFC 2544-style benchmark of a legacy switch using the OSNT
// API: zero-loss throughput per frame size plus latency at the passing
// load — the "evaluate the achievable bandwidth and latency" use case.
// Each trial builds a pristine testbed (RFC 2544 methodology), which also
// makes trials seed-isolated: the sweep shards across every core via
// core::Runner and still prints byte-identical tables.
//
//   $ ./rfc2544_suite
#include <cstdio>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/core/rfc2544.hpp"
#include "osnt/core/runner.hpp"
#include "osnt/dut/legacy_switch.hpp"
#include "osnt/net/builder.hpp"

using namespace osnt;

namespace {

core::TrialStats run_trial(const core::TrialPoint& pt) {
  // Fresh testbed per trial, per RFC 2544 methodology.
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  dut::LegacySwitch sw{dut::GraphWired{}, eng};
  hw::connect(osnt.port(0), sw.port(0));
  hw::connect(osnt.port(1), sw.port(1));
  {
    net::PacketBuilder b;
    (void)osnt.port(1).tx().transmit(
        b.eth(net::MacAddr::from_index(2), net::MacAddr::from_index(1))
            .ipv4(net::Ipv4Addr::of(10, 0, 1, 1), net::Ipv4Addr::of(10, 0, 0, 1),
                  net::ipproto::kUdp)
            .udp(5001, 1024)
            .build());
    eng.run();
  }
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::line_rate(pt.load_fraction);
  spec.frame_size = pt.frame_size;
  const auto r = core::run_capture_test(eng, osnt, 0, 1, spec, kPicosPerMilli);
  core::TrialStats s;
  s.tx_frames = r.tx_frames;
  s.rx_frames = r.rx_frames;
  s.offered_gbps = r.offered_gbps;
  s.latency_ns = r.latency_ns;
  return s;
}

}  // namespace

int main() {
  core::RunnerConfig runner;
  runner.jobs = 0;  // fill the machine; output is identical for any value

  std::printf("RFC 2544 throughput + latency, legacy switch DUT (%zu jobs)\n",
              runner.resolved_jobs());
  std::printf("%7s %12s %10s %10s %14s %7s\n", "size", "zero-loss", "Gb/s",
              "Mpps", "lat_p50_ns", "trials");

  core::ThroughputSearchConfig cfg;
  cfg.resolution = 0.01;
  for (const auto& pt : core::throughput_sweep(
           run_trial, core::rfc2544_frame_sizes(), cfg, runner)) {
    std::printf("%6zuB %11.1f%% %10.3f %10.3f %14.1f %7u\n", pt.frame_size,
                pt.max_load_fraction * 100.0, pt.gbps, pt.mpps,
                pt.latency_at_max_ns.quantile(0.5), pt.trials);
  }

  std::printf("\nframe loss rate ladder at 512 B:\n%8s %10s\n", "load",
              "loss%%");
  for (const auto& lp :
       core::loss_rate_sweep(run_trial, 512, 1.0, 0.25, runner)) {
    std::printf("%7.0f%% %9.3f%%\n", lp.load_fraction * 100.0,
                lp.loss_fraction * 100.0);
  }
  return 0;
}
