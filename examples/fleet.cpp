// Fleet measurement — "such deployments may see the use of hundreds or
// thousands of testers, offering previously unobtainable insights" (§1).
// Eight OSNT testers on a 4-leaf / 2-spine fabric measure the full
// one-way latency matrix; the fabric's structure (1-hop intra-leaf vs
// 3-hop inter-leaf) falls straight out of the data.
//
//   $ ./fleet
#include <cstdio>

#include "osnt/topo/fabric.hpp"

using namespace osnt;

int main() {
  sim::Engine eng;
  topo::FabricConfig cfg;
  cfg.leaves = 4;
  cfg.spines = 2;
  cfg.testers_per_leaf = 2;
  topo::LeafSpineFabric fabric{eng, cfg};
  const std::size_t n = fabric.tester_count();

  std::printf("one-way latency matrix (p50 ns) over a %zu-leaf/%zu-spine "
              "fabric, %zu testers:\n\n      ",
              cfg.leaves, cfg.spines, n);
  for (std::size_t j = 0; j < n; ++j) std::printf("   T%zu   ", j);
  std::printf("\n");

  double intra_sum = 0, inter_sum = 0;
  int intra_n = 0, inter_n = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("  T%zu ", i);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        std::printf("%8s", "-");
        continue;
      }
      const auto lat = fabric.measure_latency(i, j, 100);
      const double p50 = lat.quantile(0.5);
      std::printf("%8.0f", p50);
      if (fabric.hops(i, j) == 1) {
        intra_sum += p50;
        ++intra_n;
      } else {
        inter_sum += p50;
        ++inter_n;
      }
    }
    std::printf("\n");
  }
  std::printf("\nintra-leaf mean (1 switch):  %8.0f ns over %d pairs\n",
              intra_sum / intra_n, intra_n);
  std::printf("inter-leaf mean (3 switches): %8.0f ns over %d pairs\n",
              inter_sum / inter_n, inter_n);
  std::printf("\nEvery cell is a cross-card one-way measurement — possible "
              "only because all %zu testers share GPS time.\n", n);
  return 0;
}
