// PCAP replay + capture-side thinning: synthesize a bursty trace, write
// it to a .pcap, replay it through OSNT at 4× speed, capture with a 64 B
// snap length, and dump the (thinned) capture to another .pcap.
//
//   $ ./pcap_replay [output_dir]
#include <cstdio>
#include <string>

#include "osnt/core/device.hpp"
#include "osnt/gen/replay.hpp"
#include "osnt/gen/template_gen.hpp"
#include "osnt/net/pcap.hpp"

using namespace osnt;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  const std::string trace_path = dir + "/osnt_demo_trace.pcap";
  const std::string capture_path = dir + "/osnt_demo_capture.pcap";

  // --- 1. Synthesize a trace: 2000 frames, bursty, mixed sizes ---
  {
    net::PcapWriter w{trace_path, /*nanosecond=*/true};
    gen::TemplateConfig tc;
    tc.count = 2000;
    tc.flow_count = 16;
    gen::TemplateSource src{tc, std::make_unique<gen::ImixSize>()};
    Rng rng{2024};
    std::uint64_t t_ns = 0;
    while (auto tp = src.next()) {
      w.write(t_ns, tp->pkt.bytes());
      // Bursts of ~8 frames, then a long think-time gap.
      t_ns += (tp->pkt.id % 8 == 7)
                  ? static_cast<std::uint64_t>(rng.exponential(80'000.0))
                  : 1'500;
    }
    std::printf("wrote %zu-frame trace to %s\n", w.records_written(),
                trace_path.c_str());
  }

  // --- 2. Replay it through an OSNT port at 4x into a monitor port ---
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));

  // Thin the capture: keep 64 bytes per frame, hash the full frame.
  osnt.rx(1).cutter().set_snap_len(64);

  gen::TxConfig txc;
  auto& tx = osnt.configure_tx(0, txc);
  gen::ReplayConfig rc;
  rc.speedup = 4.0;
  tx.set_source(std::make_unique<gen::PcapReplaySource>(trace_path, rc));
  tx.start();
  eng.run();

  const auto& rx = osnt.rx(1);
  std::printf("replayed %llu frames at 4x: monitor saw %llu, host captured "
              "%llu (DMA drops %llu)\n",
              static_cast<unsigned long long>(tx.frames_sent()),
              static_cast<unsigned long long>(rx.stats().frames()),
              static_cast<unsigned long long>(rx.captured()),
              static_cast<unsigned long long>(rx.dma_drops()));
  std::printf("monitor rates: %.3f Gb/s, %.0f pps mean\n",
              rx.stats().mean_gbps(), rx.stats().mean_pps());

  // --- 3. Dump the thinned capture ---
  osnt.capture().write_pcap(capture_path);
  std::printf("wrote thinned capture (%zu records, 64 B snap) to %s\n",
              osnt.capture().size(), capture_path.c_str());

  // Show that orig_len survived the thinning.
  const auto back = net::PcapReader::read_all(capture_path);
  std::size_t snapped = 0;
  for (const auto& r : back)
    if (r.orig_len > r.data.size()) ++snapped;
  std::printf("%zu of %zu records carry orig_len > snap (cut in hardware)\n",
              snapped, back.size());
  return 0;
}
