file(REMOVE_RECURSE
  "CMakeFiles/test_mon.dir/test_mon.cpp.o"
  "CMakeFiles/test_mon.dir/test_mon.cpp.o.d"
  "test_mon"
  "test_mon.pdb"
  "test_mon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
