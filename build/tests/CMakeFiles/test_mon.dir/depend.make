# Empty dependencies file for test_mon.
# This may be replaced when dependencies are built.
