file(REMOVE_RECURSE
  "CMakeFiles/test_legacy_switch.dir/test_legacy_switch.cpp.o"
  "CMakeFiles/test_legacy_switch.dir/test_legacy_switch.cpp.o.d"
  "test_legacy_switch"
  "test_legacy_switch.pdb"
  "test_legacy_switch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_legacy_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
