# Empty dependencies file for test_legacy_switch.
# This may be replaced when dependencies are built.
