file(REMOVE_RECURSE
  "CMakeFiles/test_repeat.dir/test_repeat.cpp.o"
  "CMakeFiles/test_repeat.dir/test_repeat.cpp.o.d"
  "test_repeat"
  "test_repeat.pdb"
  "test_repeat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repeat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
