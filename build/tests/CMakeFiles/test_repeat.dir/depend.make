# Empty dependencies file for test_repeat.
# This may be replaced when dependencies are built.
