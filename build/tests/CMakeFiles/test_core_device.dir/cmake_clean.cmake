file(REMOVE_RECURSE
  "CMakeFiles/test_core_device.dir/test_core_device.cpp.o"
  "CMakeFiles/test_core_device.dir/test_core_device.cpp.o.d"
  "test_core_device"
  "test_core_device.pdb"
  "test_core_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
