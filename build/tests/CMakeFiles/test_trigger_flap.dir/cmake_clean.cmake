file(REMOVE_RECURSE
  "CMakeFiles/test_trigger_flap.dir/test_trigger_flap.cpp.o"
  "CMakeFiles/test_trigger_flap.dir/test_trigger_flap.cpp.o.d"
  "test_trigger_flap"
  "test_trigger_flap.pdb"
  "test_trigger_flap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trigger_flap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
