# Empty compiler generated dependencies file for test_trigger_flap.
# This may be replaced when dependencies are built.
