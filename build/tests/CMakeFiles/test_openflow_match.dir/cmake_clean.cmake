file(REMOVE_RECURSE
  "CMakeFiles/test_openflow_match.dir/test_openflow_match.cpp.o"
  "CMakeFiles/test_openflow_match.dir/test_openflow_match.cpp.o.d"
  "test_openflow_match"
  "test_openflow_match.pdb"
  "test_openflow_match[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_openflow_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
