file(REMOVE_RECURSE
  "CMakeFiles/test_oflops.dir/test_oflops.cpp.o"
  "CMakeFiles/test_oflops.dir/test_oflops.cpp.o.d"
  "test_oflops"
  "test_oflops.pdb"
  "test_oflops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oflops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
