# Empty dependencies file for test_oflops.
# This may be replaced when dependencies are built.
