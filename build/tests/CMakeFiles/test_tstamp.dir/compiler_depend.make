# Empty compiler generated dependencies file for test_tstamp.
# This may be replaced when dependencies are built.
