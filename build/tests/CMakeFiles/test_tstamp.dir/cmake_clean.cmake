file(REMOVE_RECURSE
  "CMakeFiles/test_tstamp.dir/test_tstamp.cpp.o"
  "CMakeFiles/test_tstamp.dir/test_tstamp.cpp.o.d"
  "test_tstamp"
  "test_tstamp.pdb"
  "test_tstamp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tstamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
