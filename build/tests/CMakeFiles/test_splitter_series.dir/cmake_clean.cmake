file(REMOVE_RECURSE
  "CMakeFiles/test_splitter_series.dir/test_splitter_series.cpp.o"
  "CMakeFiles/test_splitter_series.dir/test_splitter_series.cpp.o.d"
  "test_splitter_series"
  "test_splitter_series.pdb"
  "test_splitter_series[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_splitter_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
