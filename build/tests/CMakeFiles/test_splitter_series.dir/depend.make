# Empty dependencies file for test_splitter_series.
# This may be replaced when dependencies are built.
