file(REMOVE_RECURSE
  "CMakeFiles/test_pcapng.dir/test_pcapng.cpp.o"
  "CMakeFiles/test_pcapng.dir/test_pcapng.cpp.o.d"
  "test_pcapng"
  "test_pcapng.pdb"
  "test_pcapng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcapng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
