# Empty compiler generated dependencies file for test_openflow_messages.
# This may be replaced when dependencies are built.
