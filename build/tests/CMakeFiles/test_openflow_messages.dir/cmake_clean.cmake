file(REMOVE_RECURSE
  "CMakeFiles/test_openflow_messages.dir/test_openflow_messages.cpp.o"
  "CMakeFiles/test_openflow_messages.dir/test_openflow_messages.cpp.o.d"
  "test_openflow_messages"
  "test_openflow_messages.pdb"
  "test_openflow_messages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_openflow_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
