file(REMOVE_RECURSE
  "CMakeFiles/test_net_builder_parser.dir/test_net_builder_parser.cpp.o"
  "CMakeFiles/test_net_builder_parser.dir/test_net_builder_parser.cpp.o.d"
  "test_net_builder_parser"
  "test_net_builder_parser.pdb"
  "test_net_builder_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_builder_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
