# Empty compiler generated dependencies file for test_net_builder_parser.
# This may be replaced when dependencies are built.
