# Empty dependencies file for test_rfc2544.
# This may be replaced when dependencies are built.
