file(REMOVE_RECURSE
  "CMakeFiles/test_rfc2544.dir/test_rfc2544.cpp.o"
  "CMakeFiles/test_rfc2544.dir/test_rfc2544.cpp.o.d"
  "test_rfc2544"
  "test_rfc2544.pdb"
  "test_rfc2544[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rfc2544.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
