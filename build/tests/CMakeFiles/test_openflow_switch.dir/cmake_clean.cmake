file(REMOVE_RECURSE
  "CMakeFiles/test_openflow_switch.dir/test_openflow_switch.cpp.o"
  "CMakeFiles/test_openflow_switch.dir/test_openflow_switch.cpp.o.d"
  "test_openflow_switch"
  "test_openflow_switch.pdb"
  "test_openflow_switch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_openflow_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
