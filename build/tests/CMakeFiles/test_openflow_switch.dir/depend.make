# Empty dependencies file for test_openflow_switch.
# This may be replaced when dependencies are built.
