# Empty compiler generated dependencies file for oflops_flow_table.
# This may be replaced when dependencies are built.
