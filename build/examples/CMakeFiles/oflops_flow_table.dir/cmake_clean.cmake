file(REMOVE_RECURSE
  "CMakeFiles/oflops_flow_table.dir/oflops_flow_table.cpp.o"
  "CMakeFiles/oflops_flow_table.dir/oflops_flow_table.cpp.o.d"
  "oflops_flow_table"
  "oflops_flow_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oflops_flow_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
