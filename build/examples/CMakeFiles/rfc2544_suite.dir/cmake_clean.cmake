file(REMOVE_RECURSE
  "CMakeFiles/rfc2544_suite.dir/rfc2544_suite.cpp.o"
  "CMakeFiles/rfc2544_suite.dir/rfc2544_suite.cpp.o.d"
  "rfc2544_suite"
  "rfc2544_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfc2544_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
