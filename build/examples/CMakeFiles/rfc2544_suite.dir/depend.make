# Empty dependencies file for rfc2544_suite.
# This may be replaced when dependencies are built.
