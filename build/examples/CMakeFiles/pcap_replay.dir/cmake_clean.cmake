file(REMOVE_RECURSE
  "CMakeFiles/pcap_replay.dir/pcap_replay.cpp.o"
  "CMakeFiles/pcap_replay.dir/pcap_replay.cpp.o.d"
  "pcap_replay"
  "pcap_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
