# Empty compiler generated dependencies file for pcap_replay.
# This may be replaced when dependencies are built.
