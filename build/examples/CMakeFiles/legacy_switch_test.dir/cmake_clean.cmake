file(REMOVE_RECURSE
  "CMakeFiles/legacy_switch_test.dir/legacy_switch_test.cpp.o"
  "CMakeFiles/legacy_switch_test.dir/legacy_switch_test.cpp.o.d"
  "legacy_switch_test"
  "legacy_switch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
