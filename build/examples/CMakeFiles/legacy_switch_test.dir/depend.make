# Empty dependencies file for legacy_switch_test.
# This may be replaced when dependencies are built.
