file(REMOVE_RECURSE
  "CMakeFiles/multi_card.dir/multi_card.cpp.o"
  "CMakeFiles/multi_card.dir/multi_card.cpp.o.d"
  "multi_card"
  "multi_card.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_card.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
