# Empty dependencies file for multi_card.
# This may be replaced when dependencies are built.
