# Empty compiler generated dependencies file for osnt_pcap.
# This may be replaced when dependencies are built.
