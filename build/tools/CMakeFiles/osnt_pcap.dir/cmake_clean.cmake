file(REMOVE_RECURSE
  "CMakeFiles/osnt_pcap.dir/osnt_pcap.cpp.o"
  "CMakeFiles/osnt_pcap.dir/osnt_pcap.cpp.o.d"
  "osnt_pcap"
  "osnt_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osnt_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
