# Empty compiler generated dependencies file for osnt_run.
# This may be replaced when dependencies are built.
