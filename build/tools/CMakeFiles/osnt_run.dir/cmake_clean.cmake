file(REMOVE_RECURSE
  "CMakeFiles/osnt_run.dir/osnt_run.cpp.o"
  "CMakeFiles/osnt_run.dir/osnt_run.cpp.o.d"
  "osnt_run"
  "osnt_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osnt_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
