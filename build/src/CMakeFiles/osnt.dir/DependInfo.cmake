
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/cli.cpp" "src/CMakeFiles/osnt.dir/common/cli.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/common/cli.cpp.o.d"
  "/root/repo/src/common/crc.cpp" "src/CMakeFiles/osnt.dir/common/crc.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/common/crc.cpp.o.d"
  "/root/repo/src/common/hash.cpp" "src/CMakeFiles/osnt.dir/common/hash.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/common/hash.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/osnt.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/common/log.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/CMakeFiles/osnt.dir/common/random.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/common/random.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/osnt.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/common/stats.cpp.o.d"
  "/root/repo/src/core/device.cpp" "src/CMakeFiles/osnt.dir/core/device.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/core/device.cpp.o.d"
  "/root/repo/src/core/measure.cpp" "src/CMakeFiles/osnt.dir/core/measure.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/core/measure.cpp.o.d"
  "/root/repo/src/core/repeat.cpp" "src/CMakeFiles/osnt.dir/core/repeat.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/core/repeat.cpp.o.d"
  "/root/repo/src/core/rfc2544.cpp" "src/CMakeFiles/osnt.dir/core/rfc2544.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/core/rfc2544.cpp.o.d"
  "/root/repo/src/core/self_test.cpp" "src/CMakeFiles/osnt.dir/core/self_test.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/core/self_test.cpp.o.d"
  "/root/repo/src/dut/legacy_switch.cpp" "src/CMakeFiles/osnt.dir/dut/legacy_switch.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/dut/legacy_switch.cpp.o.d"
  "/root/repo/src/dut/openflow_switch.cpp" "src/CMakeFiles/osnt.dir/dut/openflow_switch.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/dut/openflow_switch.cpp.o.d"
  "/root/repo/src/dut/snmp.cpp" "src/CMakeFiles/osnt.dir/dut/snmp.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/dut/snmp.cpp.o.d"
  "/root/repo/src/gen/frag_source.cpp" "src/CMakeFiles/osnt.dir/gen/frag_source.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/gen/frag_source.cpp.o.d"
  "/root/repo/src/gen/models.cpp" "src/CMakeFiles/osnt.dir/gen/models.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/gen/models.cpp.o.d"
  "/root/repo/src/gen/rate.cpp" "src/CMakeFiles/osnt.dir/gen/rate.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/gen/rate.cpp.o.d"
  "/root/repo/src/gen/replay.cpp" "src/CMakeFiles/osnt.dir/gen/replay.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/gen/replay.cpp.o.d"
  "/root/repo/src/gen/splitter.cpp" "src/CMakeFiles/osnt.dir/gen/splitter.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/gen/splitter.cpp.o.d"
  "/root/repo/src/gen/synth.cpp" "src/CMakeFiles/osnt.dir/gen/synth.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/gen/synth.cpp.o.d"
  "/root/repo/src/gen/template_gen.cpp" "src/CMakeFiles/osnt.dir/gen/template_gen.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/gen/template_gen.cpp.o.d"
  "/root/repo/src/gen/tx_pipeline.cpp" "src/CMakeFiles/osnt.dir/gen/tx_pipeline.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/gen/tx_pipeline.cpp.o.d"
  "/root/repo/src/hw/dma.cpp" "src/CMakeFiles/osnt.dir/hw/dma.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/hw/dma.cpp.o.d"
  "/root/repo/src/hw/fifo.cpp" "src/CMakeFiles/osnt.dir/hw/fifo.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/hw/fifo.cpp.o.d"
  "/root/repo/src/hw/mac10g.cpp" "src/CMakeFiles/osnt.dir/hw/mac10g.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/hw/mac10g.cpp.o.d"
  "/root/repo/src/hw/port.cpp" "src/CMakeFiles/osnt.dir/hw/port.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/hw/port.cpp.o.d"
  "/root/repo/src/mon/capture.cpp" "src/CMakeFiles/osnt.dir/mon/capture.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/mon/capture.cpp.o.d"
  "/root/repo/src/mon/cutter.cpp" "src/CMakeFiles/osnt.dir/mon/cutter.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/mon/cutter.cpp.o.d"
  "/root/repo/src/mon/filter.cpp" "src/CMakeFiles/osnt.dir/mon/filter.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/mon/filter.cpp.o.d"
  "/root/repo/src/mon/flow_stats.cpp" "src/CMakeFiles/osnt.dir/mon/flow_stats.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/mon/flow_stats.cpp.o.d"
  "/root/repo/src/mon/rate_series.cpp" "src/CMakeFiles/osnt.dir/mon/rate_series.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/mon/rate_series.cpp.o.d"
  "/root/repo/src/mon/rx_pipeline.cpp" "src/CMakeFiles/osnt.dir/mon/rx_pipeline.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/mon/rx_pipeline.cpp.o.d"
  "/root/repo/src/mon/stats_block.cpp" "src/CMakeFiles/osnt.dir/mon/stats_block.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/mon/stats_block.cpp.o.d"
  "/root/repo/src/net/builder.cpp" "src/CMakeFiles/osnt.dir/net/builder.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/net/builder.cpp.o.d"
  "/root/repo/src/net/checksum.cpp" "src/CMakeFiles/osnt.dir/net/checksum.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/net/checksum.cpp.o.d"
  "/root/repo/src/net/flow.cpp" "src/CMakeFiles/osnt.dir/net/flow.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/net/flow.cpp.o.d"
  "/root/repo/src/net/fragment.cpp" "src/CMakeFiles/osnt.dir/net/fragment.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/net/fragment.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/CMakeFiles/osnt.dir/net/headers.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/net/headers.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/osnt.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/parser.cpp" "src/CMakeFiles/osnt.dir/net/parser.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/net/parser.cpp.o.d"
  "/root/repo/src/net/pcap.cpp" "src/CMakeFiles/osnt.dir/net/pcap.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/net/pcap.cpp.o.d"
  "/root/repo/src/net/pcapng.cpp" "src/CMakeFiles/osnt.dir/net/pcapng.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/net/pcapng.cpp.o.d"
  "/root/repo/src/net/tcp_options.cpp" "src/CMakeFiles/osnt.dir/net/tcp_options.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/net/tcp_options.cpp.o.d"
  "/root/repo/src/oflops/action_latency.cpp" "src/CMakeFiles/osnt.dir/oflops/action_latency.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/oflops/action_latency.cpp.o.d"
  "/root/repo/src/oflops/consistency.cpp" "src/CMakeFiles/osnt.dir/oflops/consistency.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/oflops/consistency.cpp.o.d"
  "/root/repo/src/oflops/context.cpp" "src/CMakeFiles/osnt.dir/oflops/context.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/oflops/context.cpp.o.d"
  "/root/repo/src/oflops/echo_rtt.cpp" "src/CMakeFiles/osnt.dir/oflops/echo_rtt.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/oflops/echo_rtt.cpp.o.d"
  "/root/repo/src/oflops/flowmod_latency.cpp" "src/CMakeFiles/osnt.dir/oflops/flowmod_latency.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/oflops/flowmod_latency.cpp.o.d"
  "/root/repo/src/oflops/interaction.cpp" "src/CMakeFiles/osnt.dir/oflops/interaction.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/oflops/interaction.cpp.o.d"
  "/root/repo/src/oflops/module.cpp" "src/CMakeFiles/osnt.dir/oflops/module.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/oflops/module.cpp.o.d"
  "/root/repo/src/oflops/packet_in_latency.cpp" "src/CMakeFiles/osnt.dir/oflops/packet_in_latency.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/oflops/packet_in_latency.cpp.o.d"
  "/root/repo/src/oflops/packet_out_latency.cpp" "src/CMakeFiles/osnt.dir/oflops/packet_out_latency.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/oflops/packet_out_latency.cpp.o.d"
  "/root/repo/src/oflops/queue_delay.cpp" "src/CMakeFiles/osnt.dir/oflops/queue_delay.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/oflops/queue_delay.cpp.o.d"
  "/root/repo/src/oflops/stats_poll.cpp" "src/CMakeFiles/osnt.dir/oflops/stats_poll.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/oflops/stats_poll.cpp.o.d"
  "/root/repo/src/openflow/channel.cpp" "src/CMakeFiles/osnt.dir/openflow/channel.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/openflow/channel.cpp.o.d"
  "/root/repo/src/openflow/flow_table.cpp" "src/CMakeFiles/osnt.dir/openflow/flow_table.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/openflow/flow_table.cpp.o.d"
  "/root/repo/src/openflow/match.cpp" "src/CMakeFiles/osnt.dir/openflow/match.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/openflow/match.cpp.o.d"
  "/root/repo/src/openflow/messages.cpp" "src/CMakeFiles/osnt.dir/openflow/messages.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/openflow/messages.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/osnt.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/CMakeFiles/osnt.dir/sim/link.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/sim/link.cpp.o.d"
  "/root/repo/src/topo/fabric.cpp" "src/CMakeFiles/osnt.dir/topo/fabric.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/topo/fabric.cpp.o.d"
  "/root/repo/src/tstamp/embed.cpp" "src/CMakeFiles/osnt.dir/tstamp/embed.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/tstamp/embed.cpp.o.d"
  "/root/repo/src/tstamp/gps.cpp" "src/CMakeFiles/osnt.dir/tstamp/gps.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/tstamp/gps.cpp.o.d"
  "/root/repo/src/tstamp/oscillator.cpp" "src/CMakeFiles/osnt.dir/tstamp/oscillator.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/tstamp/oscillator.cpp.o.d"
  "/root/repo/src/tstamp/timestamp.cpp" "src/CMakeFiles/osnt.dir/tstamp/timestamp.cpp.o" "gcc" "src/CMakeFiles/osnt.dir/tstamp/timestamp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
