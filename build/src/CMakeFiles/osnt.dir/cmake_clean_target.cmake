file(REMOVE_RECURSE
  "libosnt.a"
)
