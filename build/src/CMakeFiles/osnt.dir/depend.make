# Empty dependencies file for osnt.
# This may be replaced when dependencies are built.
