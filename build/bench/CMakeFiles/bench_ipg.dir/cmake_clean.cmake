file(REMOVE_RECURSE
  "CMakeFiles/bench_ipg.dir/bench_ipg.cpp.o"
  "CMakeFiles/bench_ipg.dir/bench_ipg.cpp.o.d"
  "bench_ipg"
  "bench_ipg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ipg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
