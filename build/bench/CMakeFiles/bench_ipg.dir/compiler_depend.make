# Empty compiler generated dependencies file for bench_ipg.
# This may be replaced when dependencies are built.
