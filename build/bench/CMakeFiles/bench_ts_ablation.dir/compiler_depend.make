# Empty compiler generated dependencies file for bench_ts_ablation.
# This may be replaced when dependencies are built.
