file(REMOVE_RECURSE
  "CMakeFiles/bench_ts_ablation.dir/bench_ts_ablation.cpp.o"
  "CMakeFiles/bench_ts_ablation.dir/bench_ts_ablation.cpp.o.d"
  "bench_ts_ablation"
  "bench_ts_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ts_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
