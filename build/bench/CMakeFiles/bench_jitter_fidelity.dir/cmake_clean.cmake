file(REMOVE_RECURSE
  "CMakeFiles/bench_jitter_fidelity.dir/bench_jitter_fidelity.cpp.o"
  "CMakeFiles/bench_jitter_fidelity.dir/bench_jitter_fidelity.cpp.o.d"
  "bench_jitter_fidelity"
  "bench_jitter_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jitter_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
