file(REMOVE_RECURSE
  "CMakeFiles/bench_oflops_flowmod.dir/bench_oflops_flowmod.cpp.o"
  "CMakeFiles/bench_oflops_flowmod.dir/bench_oflops_flowmod.cpp.o.d"
  "bench_oflops_flowmod"
  "bench_oflops_flowmod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oflops_flowmod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
