# Empty dependencies file for bench_oflops_flowmod.
# This may be replaced when dependencies are built.
