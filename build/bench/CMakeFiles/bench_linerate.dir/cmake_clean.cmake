file(REMOVE_RECURSE
  "CMakeFiles/bench_linerate.dir/bench_linerate.cpp.o"
  "CMakeFiles/bench_linerate.dir/bench_linerate.cpp.o.d"
  "bench_linerate"
  "bench_linerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
