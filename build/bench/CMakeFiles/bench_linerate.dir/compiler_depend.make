# Empty compiler generated dependencies file for bench_linerate.
# This may be replaced when dependencies are built.
