# Empty compiler generated dependencies file for bench_latency_legacy.
# This may be replaced when dependencies are built.
