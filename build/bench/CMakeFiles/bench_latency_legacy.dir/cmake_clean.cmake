file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_legacy.dir/bench_latency_legacy.cpp.o"
  "CMakeFiles/bench_latency_legacy.dir/bench_latency_legacy.cpp.o.d"
  "bench_latency_legacy"
  "bench_latency_legacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_legacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
