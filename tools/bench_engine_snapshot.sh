#!/usr/bin/env bash
# Snapshot the perf gates into BENCH_engine.json, BENCH_runner.json,
# BENCH_telemetry.json, and BENCH_tcp.json at the repo root. Run from
# anywhere on a quiet machine:
#
#   tools/bench_engine_snapshot.sh [build-dir]
#
# BENCH_engine.json is the google-benchmark JSON for bench_engine plus a
# "seed_baseline" block: the same benchmarks measured against the
# pre-slab shared_ptr<std::function> engine (interleaved A/B medians,
# 7 repetitions, measured when the slab engine landed). DESIGN.md
# ("Event core") cites both. BENCH_runner.json is bench_runner's
# trials/sec at jobs=1..8 plus a "scaling" block (speedup per job count
# and the host's hardware_concurrency, without which the ratios are
# meaningless). BENCH_telemetry.json is bench_telemetry's enabled-vs-
# disabled A/B plus an "overhead" block with the per-benchmark ratio; the
# gates are <= 5% on the ScheduleFire storm and on the in-plane
# LatencyProbe monitor-datapath A/B. Re-run after touching the
# scheduler hot path, the runner, or the telemetry layer and commit the
# refreshed files alongside the change. BENCH_tcp.json is bench_tcp's
# closed-loop flows/sec plus a "goodput_curve" block (goodput vs the BER
# of a 6 ms error window under BBR) and a "graph_overhead" block (the
# BM_GraphOverhead direct-vs-graph A/B); the gates are the clean-link
# point within 10% of the bottleneck's payload share, a monotonically
# falling curve, and <= 5% cost for routing the closed loop through
# scenario-graph blocks instead of a hand-wired cable.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo_root/build"}"
bench="$build_dir/bench/bench_engine"
bench_runner="$build_dir/bench/bench_runner"
bench_telemetry="$build_dir/bench/bench_telemetry"
bench_tcp="$build_dir/bench/bench_tcp"
out="$repo_root/BENCH_engine.json"
out_runner="$repo_root/BENCH_runner.json"
out_telemetry="$repo_root/BENCH_telemetry.json"
out_tcp="$repo_root/BENCH_tcp.json"

if [[ ! -x "$bench" || ! -x "$bench_runner" || ! -x "$bench_telemetry" || ! -x "$bench_tcp" ]]; then
  echo "error: $bench, $bench_runner, $bench_telemetry, or $bench_tcp not found — build the bench targets first:" >&2
  echo "  cmake -B \"$build_dir\" -S \"$repo_root\" && cmake --build \"$build_dir\" --target bench_engine bench_runner bench_telemetry bench_tcp -j" >&2
  exit 1
fi

"$bench" \
  --benchmark_min_time=1.0 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json

# Keep the old-engine reference numbers in the snapshot so the gate
# (schedule+fire >= 2x events/sec over the seed engine) stays checkable
# from this one file, and derive the burst_pps gate (batched burst
# emission >= 3x the naive per-frame baseline at 64 B, dark-port pair).
python3 - "$out" <<'PYEOF'
import json, sys

path = sys.argv[1]
doc = json.load(open(path))
doc["seed_baseline"] = {
    "note": (
        "items_per_second of the pre-slab engine "
        "(shared_ptr<std::function> + unordered_set pending/cancelled "
        "bookkeeping), built from the seed tree with this same benchmark "
        "source; interleaved A/B medians of 7 runs."
    ),
    "items_per_second": {
        "BM_ScheduleFire/256": 10.70e6,
        "BM_ScheduleFire/1024": 8.13e6,
        "BM_ScheduleFire/16384": 4.77e6,
        "BM_ScheduleCancelChurn/1024": 7.39e6,
        "BM_LineRateStorm4Port/4096": 10.39e6,
    },
}

rates = {}
for b in doc["benchmarks"]:
    if b.get("aggregate_name") == "median":
        rates[b["run_name"]] = b["items_per_second"]

batched = rates.get("BM_BurstEmission/1/0", 0.0)
naive = rates.get("BM_BurstEmission/0/0", 0.0)
speedup = batched / naive if naive else 0.0
doc["burst_pps"] = {
    "note": (
        "64 B on/off burst emission, frames/sec (median of 3 reps). "
        "'batched' is one engine event per burst walking the SoA "
        "schedule and cloning prebuilt templates; 'naive' is one event "
        "per frame, each crafting its packet from scratch. The gated "
        "pair emits into a dark output port, isolating the emission "
        "machinery; the *_wired pair routes through a graph edge to a "
        "sink, where the per-frame Link delivery event (common to both "
        "modes) compresses the ratio — reported for end-to-end context. "
        "Gate: batched >= 3x naive on the dark-port pair."
    ),
    "frames_per_second": {
        "batched": round(batched, 1),
        "naive": round(naive, 1),
        "batched_wired": round(rates.get("BM_BurstEmission/1/1", 0.0), 1),
        "naive_wired": round(rates.get("BM_BurstEmission/0/1", 0.0), 1),
    },
    "gate_speedup": 3.0,
    "speedup": round(speedup, 2),
    "speedup_ok": bool(speedup >= 3.0),
}
json.dump(doc, open(path, "w"), indent=1)
print(f"wrote {path}")
PYEOF

"$bench_runner" \
  --benchmark_min_time=1.0 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$out_runner" \
  --benchmark_out_format=json

# Derive the scaling curve (trials/sec at jobs=N over jobs=1) so the gate
# "jobs=8 >= 3x jobs=1 on a machine with >= 8 hardware threads" is
# checkable from this one file.
python3 - "$out_runner" <<'PYEOF'
import json, os, sys

path = sys.argv[1]
doc = json.load(open(path))
rates = {}
for b in doc["benchmarks"]:
    if b.get("aggregate_name") == "median":
        rates[b["run_name"]] = b["items_per_second"]

scaling = {}
for family in ("BM_LossLadder16Trials", "BM_Repeated16Seeds"):
    base = rates.get(f"{family}/1/real_time")
    if not base:
        continue
    scaling[family] = {
        f"jobs={j}": round(rates[key] / base, 3)
        for j in (1, 2, 4, 8)
        if (key := f"{family}/{j}/real_time") in rates
    }

doc["scaling"] = {
    "note": (
        "trials/sec speedup vs jobs=1 (median of 3 reps, real time). "
        "Trials are seed-isolated so speedup tracks available cores; on a "
        "host with fewer hardware threads than jobs, extra workers "
        "interleave and the ratio stays ~1.0 by construction."
    ),
    "hardware_concurrency": os.cpu_count(),
    "speedup_vs_1job": scaling,
}
json.dump(doc, open(path, "w"), indent=1)
print(f"wrote {path}")
PYEOF

# Random interleaving matters here: the A/B pairs are compared against
# each other, and a sequential on…on/off…off ordering turns thermal drift
# into a systematic bias bigger than the effect being measured.
"$bench_telemetry" \
  --benchmark_min_time=0.5 \
  --benchmark_repetitions=5 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$out_telemetry" \
  --benchmark_out_format=json

# Derive the enabled-vs-disabled overhead per A/B pair so the gate
# (telemetry-on within 5% of telemetry-off on the ScheduleFire storm) is
# checkable from this one file.
python3 - "$out_telemetry" <<'PYEOF'
import json, sys

path = sys.argv[1]
doc = json.load(open(path))
rates = {}
for b in doc["benchmarks"]:
    if b.get("aggregate_name") == "median":
        rates[b["run_name"]] = b["items_per_second"]

overhead = {}
for off_name, off_rate in rates.items():
    if "/off/" not in off_name and not off_name.endswith("/off"):
        continue
    on_name = off_name.replace("/off", "/on", 1)
    if on_name in rates and rates[on_name] > 0:
        overhead[off_name.replace("/off", "", 1)] = round(
            (off_rate / rates[on_name] - 1.0) * 100.0, 2
        )

doc["overhead"] = {
    "note": (
        "events/sec cost of leaving telemetry enabled, as "
        "(off_rate / on_rate - 1) * 100 per A/B pair (median of 5 "
        "randomly interleaved reps). Gate: <= 5.0 on the "
        "BM_ScheduleFireTelemetry storm and on the BM_LatencyProbe "
        "monitor-datapath A/B. Negative values are measurement "
        "noise around zero."
    ),
    "gate_pct": 5.0,
    "enabled_overhead_pct": overhead,
}
json.dump(doc, open(path, "w"), indent=1)
print(f"wrote {path}")
PYEOF

"$bench_tcp" \
  --benchmark_min_time=0.5 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$out_tcp" \
  --benchmark_out_format=json

# Derive (a) the flows-per-wall-second scale axis and its hot-path
# speedup gate, (b) the goodput-vs-BER curve with its clean-link
# fidelity gate (BBR within 10% of the bottleneck's payload share:
# 5 Gb/s L1 carries at most 5e9 * 1448/1538 of TCP payload in 1518 B
# frames), and (c) the graph-indirection overhead with its <= 5% gate.
python3 - "$out_tcp" <<'PYEOF'
import json, sys

path = sys.argv[1]
doc = json.load(open(path))
curve = {}
scale = {}
ab = {}
rld = {}
for b in doc["benchmarks"]:
    if b.get("aggregate_name") != "median":
        continue
    if b["run_name"].startswith("BM_GoodputVsBer/"):
        curve[b["ber"]] = round(b["goodput_gbps"], 4)
    if b["run_name"].startswith("BM_RateLimitResilience/"):
        arm = "on" if b["run_name"].split("/")[1] == "1" else "off"
        rld[arm] = {
            "goodput_gbps": round(b["goodput_gbps"], 4),
            "rtt_inflation": round(b["rtt_inflation"], 3),
            "rld_detections": b.get("rld_detections", 0.0),
            "detect_ms": round(b.get("detect_ms", 0.0), 3),
        }
    if b["run_name"].startswith("BM_FlowScale/"):
        # run_name: BM_FlowScale/<flows>/<mode>/manual_time
        _, flows, mode = b["run_name"].split("/")[:3]
        key = "wheel" if mode == "1" else "legacy"
        scale.setdefault(key, {})[int(flows)] = b["items_per_second"]
    if b["run_name"].startswith("BM_GraphOverhead/"):
        # run_name: BM_GraphOverhead/<0=direct,1=graph>/manual_time
        arm = "graph" if b["run_name"].split("/")[1] == "1" else "direct"
        ab[arm] = {
            "flows_per_wall_second": b["items_per_second"],
            "bytes_acked": b.get("bytes_acked", 0.0),
        }

wheel = scale.get("wheel", {})
legacy = scale.get("legacy", {})
speedup_10k = (
    wheel[10000] / legacy[10000]
    if 10000 in wheel and legacy.get(10000) else 0.0
)
doc["flow_scale"] = {
    "note": (
        "Closed-loop flows simulated per wall second (median of 3 reps, "
        "manual timing: testbed construction untimed) in the "
        "timer-dominated BM_FlowScale regime. 'wheel' is the §12 hot "
        "path (timing-wheel bulk timers, lazy delayed ACKs, drop-early "
        "admission probe); 'legacy' is the pre-§12 baseline (heap-only "
        "timers, eager delack cancels, unconditional serialization). "
        "Gate: wheel >= 2x legacy at the 10k-flow point."
    ),
    "flows_per_wall_second": {
        "wheel": {str(k): round(wheel[k], 1) for k in sorted(wheel)},
        "legacy": {str(k): round(legacy[k], 1) for k in sorted(legacy)},
    },
    "gate_speedup_10k": 2.0,
    "speedup_10k": round(speedup_10k, 2),
    "speedup_10k_ok": bool(speedup_10k >= 2.0),
}

points = [curve[k] for k in sorted(curve)]
share = 5.0 * 1448.0 / 1538.0
clean = curve.get(0.0, 0.0)
doc["goodput_curve"] = {
    "note": (
        "BBR goodput (Gb/s, median of 3 reps) for a 4-flow 20 ms run vs "
        "the BER of a 6 ms ber_window fault; 0.0 is the clean link. "
        "Gates: clean-link point within 10% of the 5 Gb/s bottleneck's "
        "payload share (5e9*1448/1538) and the curve falls monotonically "
        "with BER."
    ),
    "payload_share_gbps": round(share, 4),
    "goodput_gbps_by_ber": {str(k): curve[k] for k in sorted(curve)},
    "clean_within_10pct": bool(clean >= 0.9 * share),
    "monotone_decreasing": bool(
        all(a >= b for a, b in zip(points, points[1:]))
    ),
}

direct = ab.get("direct", {}).get("flows_per_wall_second", 0.0)
through = ab.get("graph", {}).get("flows_per_wall_second", 0.0)
overhead_pct = (direct / through - 1.0) * 100.0 if through else 0.0
doc["graph_overhead"] = {
    "note": (
        "Cost of routing the 8-flow closed loop through scenario-graph "
        "blocks (a pass-through monitor per direction) instead of a "
        "hand-wired cable, as (direct_rate / graph_rate - 1) * 100 "
        "(median of 3 reps, manual timing). bytes_acked must match "
        "between the arms — the workload is identical by construction, "
        "only the dispatch differs. Gate: <= 5.0; negative values are "
        "measurement noise around zero."
    ),
    "flows_per_wall_second": {
        "direct": round(direct, 1),
        "graph": round(through, 1),
    },
    "bytes_acked_match": bool(
        ab.get("direct", {}).get("bytes_acked")
        == ab.get("graph", {}).get("bytes_acked")
    ),
    "gate_pct": 5.0,
    "overhead_pct": round(overhead_pct, 2),
    "overhead_ok": bool(overhead_pct <= 5.0),
}

off = rld.get("off", {})
on = rld.get("on", {})
goodput_ratio = (
    on.get("goodput_gbps", 0.0) / off["goodput_gbps"]
    if off.get("goodput_gbps") else 0.0
)
inflation_ratio = (
    on.get("rtt_inflation", 0.0) / off["rtt_inflation"]
    if off.get("rtt_inflation") else 0.0
)
doc["rate_limit_resilience"] = {
    "note": (
        "One BbrLite flow through a 2.5 Gb/s drop-mode carrier policer "
        "on a 5 Gb/s path (BM_RateLimitResilience, median of 3 reps), "
        "detector off vs on. Off, recovery-aliased line-rate samples "
        "poison the bandwidth model and goodput collapses under RTO "
        "storms; on, the flow re-paces at the detected token rate "
        "(DESIGN.md §15). Gates: on/off goodput ratio >= 1.5 at an "
        "on/off p99-RTT-inflation ratio <= 0.5, with >= 1 detection."
    ),
    "off": off,
    "on": on,
    "gate_goodput_ratio": 1.5,
    "goodput_ratio": round(goodput_ratio, 3),
    "gate_inflation_ratio": 0.5,
    "inflation_ratio": round(inflation_ratio, 3),
    "resilience_ok": bool(
        goodput_ratio >= 1.5
        and inflation_ratio <= 0.5
        and on.get("rld_detections", 0.0) >= 1.0
    ),
}
json.dump(doc, open(path, "w"), indent=1)
print(f"wrote {path}")
PYEOF
