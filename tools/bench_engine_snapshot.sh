#!/usr/bin/env bash
# Snapshot the event-core throughput gate into BENCH_engine.json at the
# repo root. Run from anywhere on a quiet machine:
#
#   tools/bench_engine_snapshot.sh [build-dir]
#
# The output is the google-benchmark JSON for bench_engine plus a
# "seed_baseline" block: the same benchmarks measured against the
# pre-slab shared_ptr<std::function> engine (interleaved A/B medians,
# 7 repetitions, measured when the slab engine landed). DESIGN.md
# ("Event core") cites both. Re-run after touching the scheduler hot
# path and commit the refreshed file alongside the change.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo_root/build"}"
bench="$build_dir/bench/bench_engine"
out="$repo_root/BENCH_engine.json"

if [[ ! -x "$bench" ]]; then
  echo "error: $bench not found — build the 'bench_engine' target first:" >&2
  echo "  cmake -B \"$build_dir\" -S \"$repo_root\" && cmake --build \"$build_dir\" --target bench_engine -j" >&2
  exit 1
fi

"$bench" \
  --benchmark_min_time=1.0 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json

# Keep the old-engine reference numbers in the snapshot so the gate
# (schedule+fire >= 2x events/sec over the seed engine) stays checkable
# from this one file.
python3 - "$out" <<'PYEOF'
import json, sys

path = sys.argv[1]
doc = json.load(open(path))
doc["seed_baseline"] = {
    "note": (
        "items_per_second of the pre-slab engine "
        "(shared_ptr<std::function> + unordered_set pending/cancelled "
        "bookkeeping), built from the seed tree with this same benchmark "
        "source; interleaved A/B medians of 7 runs."
    ),
    "items_per_second": {
        "BM_ScheduleFire/256": 10.70e6,
        "BM_ScheduleFire/1024": 8.13e6,
        "BM_ScheduleFire/16384": 4.77e6,
        "BM_ScheduleCancelChurn/1024": 7.39e6,
        "BM_LineRateStorm4Port/4096": 10.39e6,
    },
}
json.dump(doc, open(path, "w"), indent=1)
print(f"wrote {path}")
PYEOF
