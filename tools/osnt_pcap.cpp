// osnt_pcap — capture-file analysis tool:
//
//   osnt_pcap info  FILE          header + record/flow summary
//   osnt_pcap dump  FILE [--max N]   one line per packet
//   osnt_pcap flows FILE [--top N]   per-flow table, heaviest first
//   osnt_pcap filter IN OUT [--dst-port P] [--proto udp|tcp]
//
// The filter grammar is conjunctive: a record is kept only when it parses
// as an Ethernet/IPv4 frame AND matches every predicate given. With no
// predicates, filter rewrites the parseable subset (a normalize pass).
// --strict (any subcommand reading classic .pcap) makes a truncated final
// record an error instead of a silently swallowed EOF — mirrors
// net::PcapReaderOptions::strict.
#include <cstdio>
#include <string>

#include "osnt/common/cli.hpp"
#include "osnt/mon/flow_stats.hpp"
#include "osnt/net/packet.hpp"
#include "osnt/net/parser.hpp"
#include "osnt/net/pcap.hpp"
#include "osnt/net/pcapng.hpp"

using namespace osnt;

namespace {

bool is_pcapng(const std::string& path) {
  return path.size() > 7 && path.rfind(".pcapng") == path.size() - 7;
}

/// Normalize either format into a single record list. `opt` applies to
/// classic .pcap only (pcapng blocks are length-framed; a short tail is
/// always an error there).
std::vector<net::PcapRecord> load_any(const std::string& path,
                                      net::PcapReaderOptions opt) {
  if (!is_pcapng(path)) return net::PcapReader::read_all(path, opt);
  std::vector<net::PcapRecord> out;
  for (auto& ng : net::PcapngReader::read_all(path)) {
    net::PcapRecord rec;
    rec.ts_nanos = ng.ts_nanos;
    rec.orig_len = ng.orig_len;
    rec.data = std::move(ng.data);
    out.push_back(std::move(rec));
  }
  return out;
}

int cmd_info(const std::string& path, net::PcapReaderOptions opt) {
  net::PcapReader reader{path, opt};
  std::printf("%s: %s timestamps, linktype %u\n", path.c_str(),
              reader.nanosecond_format() ? "nanosecond" : "microsecond",
              reader.link_type());
  std::size_t records = 0, bytes = 0, snapped = 0;
  std::uint64_t first_ns = 0, last_ns = 0;
  mon::FlowStatsCollector flows;
  while (auto rec = reader.next()) {
    if (records == 0) first_ns = rec->ts_nanos;
    last_ns = rec->ts_nanos;
    ++records;
    bytes += rec->orig_len;
    if (rec->orig_len > rec->data.size()) ++snapped;
    mon::CaptureRecord cr;
    cr.data = std::move(rec->data);
    cr.orig_len = rec->orig_len;
    cr.ts = tstamp::Timestamp::from_nanos(static_cast<double>(rec->ts_nanos));
    flows.add(cr);
  }
  const double span_s = static_cast<double>(last_ns - first_ns) * 1e-9;
  std::printf("%zu records, %zu original bytes, %zu snapped, %zu flows\n",
              records, bytes, snapped, flows.flow_count());
  if (reader.truncated_tail() > 0)
    std::printf("(final record truncated; re-run with --strict to fail)\n");
  if (span_s > 0) {
    std::printf("span %.6f s, mean %.3f Mb/s, %.0f pps\n", span_s,
                static_cast<double>(bytes) * 8.0 / span_s / 1e6,
                static_cast<double>(records) / span_s);
  }
  return 0;
}

int cmd_dump(const std::string& path, std::int64_t max,
             net::PcapReaderOptions opt) {
  std::int64_t n = 0;
  for (auto& rec : load_any(path, opt)) {
    if (max > 0 && n >= max) break;
    net::Packet pkt{std::move(rec.data)};
    std::printf("%6lld %14.6f %s\n", static_cast<long long>(n),
                static_cast<double>(rec.ts_nanos) * 1e-9,
                net::describe(pkt).c_str());
    ++n;
  }
  return 0;
}

int cmd_flows(const std::string& path, std::int64_t top,
              net::PcapReaderOptions opt) {
  mon::FlowStatsCollector flows;
  for (auto& rec : load_any(path, opt)) {
    mon::CaptureRecord cr;
    cr.data = std::move(rec.data);
    cr.orig_len = rec.orig_len;
    cr.ts = tstamp::Timestamp::from_nanos(static_cast<double>(rec.ts_nanos));
    flows.add(cr);
  }
  std::printf("%-21s %-21s %5s %10s %12s %10s\n", "src", "dst", "proto",
              "packets", "bytes", "Mb/s");
  for (const auto& f :
       flows.top_by_bytes(static_cast<std::size_t>(top > 0 ? top : 0))) {
    char src[32], dst[32];
    std::snprintf(src, sizeof src, "%s:%u", f.key.src_ip.to_string().c_str(),
                  f.key.src_port);
    std::snprintf(dst, sizeof dst, "%s:%u", f.key.dst_ip.to_string().c_str(),
                  f.key.dst_port);
    std::printf("%-21s %-21s %5u %10llu %12llu %10.3f\n", src, dst,
                f.key.protocol, static_cast<unsigned long long>(f.packets),
                static_cast<unsigned long long>(f.bytes),
                f.mean_rate_bps() / 1e6);
  }
  if (flows.unclassified() > 0)
    std::printf("(%llu non-IPv4 records not shown)\n",
                static_cast<unsigned long long>(flows.unclassified()));
  return 0;
}

int cmd_filter(const std::string& in, const std::string& out,
               std::int64_t dst_port, const std::string& proto,
               net::PcapReaderOptions opt) {
  net::PcapReader reader{in, opt};
  net::PcapWriter writer{out, reader.nanosecond_format()};
  std::size_t kept = 0, total = 0;
  while (auto rec = reader.next()) {
    ++total;
    const auto parsed =
        net::parse_packet(ByteSpan{rec->data.data(), rec->data.size()});
    if (!parsed) continue;
    if (!proto.empty()) {
      const bool is_udp = parsed->l4 == net::L4Kind::kUdp;
      const bool is_tcp = parsed->l4 == net::L4Kind::kTcp;
      if ((proto == "udp" && !is_udp) || (proto == "tcp" && !is_tcp)) continue;
    }
    if (dst_port > 0) {
      std::uint16_t dp = 0;
      if (parsed->l4 == net::L4Kind::kUdp) dp = parsed->udp.dst_port;
      if (parsed->l4 == net::L4Kind::kTcp) dp = parsed->tcp.dst_port;
      if (dp != dst_port) continue;
    }
    writer.write(rec->ts_nanos, ByteSpan{rec->data.data(), rec->data.size()},
                 rec->orig_len);
    ++kept;
  }
  std::printf("kept %zu of %zu records -> %s\n", kept, total, out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli{"osnt_pcap — inspect and filter PCAP captures"};
  std::int64_t max = 0, top = 20, dst_port = 0;
  std::string proto;
  bool strict = false;
  cli.add_flag("max", &max, "dump: stop after N records (0 = all)");
  cli.add_flag("top", &top, "flows: show the N heaviest (0 = all)");
  cli.add_flag("dst-port", &dst_port, "filter: keep this destination port");
  cli.add_flag("proto", &proto, "filter: keep udp|tcp only");
  cli.add_flag("strict", &strict,
               "fail on a truncated final record instead of dropping it");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  net::PcapReaderOptions opt;
  opt.strict = strict;

  const auto& pos = cli.positional();
  if (pos.empty()) {
    std::fprintf(stderr,
                 "usage: osnt_pcap info  FILE [--strict]\n"
                 "       osnt_pcap dump  FILE [--max N] [--strict]\n"
                 "       osnt_pcap flows FILE [--top N] [--strict]\n"
                 "       osnt_pcap filter IN OUT [--dst-port P] "
                 "[--proto udp|tcp] [--strict]\n"
                 "filter keeps records matching ALL given predicates "
                 "(parseable IPv4 frames only;\nno predicates = normalize "
                 "pass). FILE may be .pcap or .pcapng; OUT is .pcap.\n");
    return 1;
  }
  const std::string& cmd = pos[0];
  try {
    if (cmd == "info" && pos.size() == 2) return cmd_info(pos[1], opt);
    if (cmd == "dump" && pos.size() == 2) return cmd_dump(pos[1], max, opt);
    if (cmd == "flows" && pos.size() == 2) return cmd_flows(pos[1], top, opt);
    if (cmd == "filter" && pos.size() == 3)
      return cmd_filter(pos[1], pos[2], dst_port, proto, opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "bad command line (try --help)\n");
  return 1;
}
