// osnt_run — the command-line driver (the paper's "software driver
// supporting command-line interfaces"). Subcommands build a simulated
// testbed and run one measurement:
//
//   osnt_run latency    [--rate-gbps N] [--frame-size N] [--duration-ms N]
//                       [--dut none|legacy|lossy] [--poisson]
//                       [--faults PLAN.json] [--retries N]
//                       [--event-budget N] [--wall-deadline-ms N]
//                       [--trace PATH] [--metrics-out PATH]
//   osnt_run throughput [--frame-size N] [--resolution F] [--dut ...]
//                       [--jobs N]
//   osnt_run capture    [--rate-gbps N] [--snap N] [--flows N]
//                       [--pcap-out PATH]
//   osnt_run tcp        [--cc newreno|cubic|bbr] [--flows N]
//                       [--duration-ms N] [--bottleneck-gbps N]
//                       [--queue-segments N] [--rate-limit-detector]
//                       [--faults PLAN.json]
//                       [--trials N] [--jobs N] [--series-out PATH]
//   osnt_run topo       FILE.json [--seed N] [--duration-ms N]
//                       [--trials N] [--jobs N] [--faults PLAN.json]
//                       [--series-out PATH] [--series-interval-us N]
//                       [--validate-only]
//   osnt_run oflops     [--module M] [--table-size N] [--rounds N]
//                       [--faults PLAN.json]
//
// Global flags (any subcommand): --log-level debug|info|warn|error|off.
// latency, throughput, capture, and tcp all take --trace PATH and
// --metrics-out PATH: --trace writes a Chrome trace_event JSON of the run
// in *sim* time (open in Perfetto / chrome://tracing); --metrics-out
// snapshots the process-wide telemetry registry as JSON at end of run.
// latency, tcp, and topo additionally take --series-out PATH
// [--series-interval-us N | --series-interval-ms N] (default 1 ms): a
// sim-time sampler stores per-interval counter deltas and RTT-histogram
// slices and writes one "osnt.series.v1" JSON, byte-identical at any
// --jobs value (per-trial series merge commutatively).
// --faults loads
// a deterministic fault plan (see examples/faults/) and injects it into
// the testbed; fault activations show up as a "fault/*" trace track and
// in the fault.* metric family.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "osnt/common/cli.hpp"
#include "osnt/common/log.hpp"
#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/core/rfc2544.hpp"
#include "osnt/core/runner.hpp"
#include "osnt/dut/legacy_switch.hpp"
#include "osnt/fault/injector.hpp"
#include "osnt/fault/plan.hpp"
#include "osnt/graph/dut_blocks.hpp"
#include "osnt/graph/graph.hpp"
#include "osnt/graph/topology.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/mon/flow_stats.hpp"
#include "osnt/oflops/consistency.hpp"
#include "osnt/oflops/context.hpp"
#include "osnt/oflops/echo_rtt.hpp"
#include "osnt/oflops/flowmod_latency.hpp"
#include "osnt/oflops/packet_in_latency.hpp"
#include "osnt/oflops/interaction.hpp"
#include "osnt/oflops/queue_delay.hpp"
#include "osnt/oflops/stats_poll.hpp"
#include "osnt/tcp/workload.hpp"
#include "osnt/telemetry/registry.hpp"
#include "osnt/telemetry/series.hpp"
#include "osnt/telemetry/trace.hpp"
#include "osnt/topo/fabric.hpp"

using namespace osnt;

namespace {

/// Shared --trace/--metrics-out handling so every measurement subcommand
/// exposes the observability surface the same way: call add_to() before
/// parse, attach() on each single-threaded engine the run constructs, and
/// finish() once at exit to write whatever was requested.
struct ObservabilityFlags {
  std::string trace_path;
  std::string metrics_path;
  std::string series_path;
  double series_interval_us = 0.0;
  double series_interval_ms = 0.0;
  telemetry::TraceRecorder rec;

  void add_to(CliParser& cli) {
    cli.add_flag("trace", &trace_path, "write Chrome trace_event JSON here");
    cli.add_flag("metrics-out", &metrics_path,
                 "write a telemetry registry JSON snapshot here");
  }

  /// Register --series-out on the subcommands that sample sim-time
  /// series (latency, tcp, topo).
  void add_series_to(CliParser& cli) {
    cli.add_flag("series-out", &series_path,
                 "write a sim-time telemetry series JSON here");
    cli.add_flag("series-interval-us", &series_interval_us,
                 "series sampling interval, microseconds");
    cli.add_flag("series-interval-ms", &series_interval_ms,
                 "series sampling interval, milliseconds (default 1)");
  }

  [[nodiscard]] bool trace_enabled() const { return !trace_path.empty(); }
  [[nodiscard]] bool series_enabled() const { return !series_path.empty(); }

  /// Resolved sampling interval; 0 when --series-out was not given.
  [[nodiscard]] Picos series_interval() const {
    if (series_path.empty()) return 0;
    if (series_interval_us > 0.0) return from_micros(series_interval_us);
    if (series_interval_ms > 0.0) {
      return from_micros(series_interval_ms * 1000.0);
    }
    return kPicosPerMilli;
  }

  /// Post-parse validation of the series flags (at most one unit, and an
  /// interval without a destination is a mistake worth flagging).
  [[nodiscard]] bool validate_series() const {
    if (series_interval_us > 0.0 && series_interval_ms > 0.0) {
      std::fprintf(stderr,
                   "--series-interval given in more than one unit\n");
      return false;
    }
    if ((series_interval_us > 0.0 || series_interval_ms > 0.0) &&
        series_path.empty()) {
      std::fprintf(stderr, "--series-interval-* requires --series-out\n");
      return false;
    }
    return true;
  }

  /// Write the merged series (no-op when --series-out was not given).
  [[nodiscard]] bool write_series(const telemetry::SeriesData& s) {
    if (series_path.empty()) return true;
    if (!s.write_json(series_path)) {
      std::fprintf(stderr, "failed to write series to %s\n",
                   series_path.c_str());
      return false;
    }
    std::printf("wrote %zu-interval series (%zu channels) to %s\n",
                s.intervals(), s.channels.size(), series_path.c_str());
    return true;
  }

  /// Attach the recorder / handler timing to a trial engine. Only valid
  /// for engines driven from one thread (the recorder is not thread-safe);
  /// sharded sweeps must gate this on jobs == 1.
  void attach(sim::Engine& eng) {
    if (!trace_path.empty()) eng.set_trace(&rec);
    if (!metrics_path.empty()) eng.set_handler_timing(true);
  }

  /// Write the requested outputs; prints what was written. Returns false
  /// (after a stderr diagnostic) on I/O failure.
  [[nodiscard]] bool finish() {
    if (!trace_path.empty()) {
      if (!rec.write_chrome_json(trace_path)) {
        std::fprintf(stderr, "failed to write trace to %s\n",
                     trace_path.c_str());
        return false;
      }
      std::printf("wrote %zu trace events (%llu dropped) to %s\n", rec.size(),
                  static_cast<unsigned long long>(rec.dropped()),
                  trace_path.c_str());
    }
    if (!metrics_path.empty()) {
      if (!telemetry::registry().write_json(metrics_path)) {
        std::fprintf(stderr, "failed to write metrics to %s\n",
                     metrics_path.c_str());
        return false;
      }
      std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
    }
    return true;
  }
};

struct DutHolder {
  std::unique_ptr<graph::Graph> g;
};

/// Wire OSNT port 0 → DUT → OSNT port 1 (or back-to-back for "none").
/// The DUT is a one-node scenario graph, so the driver exercises the
/// same seam the topology loader does.
DutHolder wire(sim::Engine& eng, core::OsntDevice& osnt,
               const std::string& dut) {
  DutHolder h;
  if (dut == "none") {
    hw::connect(osnt.port(0), osnt.port(1));
    return h;
  }
  dut::LegacySwitchConfig cfg;
  if (dut == "lossy") cfg.lookup_rate_mpps = 2.0;
  h.g = std::make_unique<graph::Graph>(eng);
  h.g->emplace<graph::LegacySwitchBlock>(eng, "dut", cfg);
  osnt.port(0).out_link().connect(h.g->input("dut", 0));
  osnt.port(1).out_link().connect(h.g->input("dut", 1));
  h.g->connect_output("dut", 0, osnt.port(0).rx());
  h.g->connect_output("dut", 1, osnt.port(1).rx());
  h.g->start();
  // Prime MAC learning for the monitor-side address.
  net::PacketBuilder b;
  (void)osnt.port(1).tx().transmit(
      b.eth(net::MacAddr::from_index(2), net::MacAddr::from_index(1))
          .ipv4(net::Ipv4Addr::of(10, 0, 1, 1), net::Ipv4Addr::of(10, 0, 0, 1),
                net::ipproto::kUdp)
          .udp(5001, 1024)
          .build());
  eng.run();
  return h;
}

int cmd_latency(int argc, const char* const* argv) {
  double rate_gbps = 1.0, duration_ms = 5.0;
  std::int64_t frame_size = 256;
  std::string dut = "legacy";
  bool poisson = false;
  std::string faults_path;
  std::int64_t retries = 0, event_budget = 0, wall_deadline_ms = 0;
  ObservabilityFlags obs;
  CliParser cli{"osnt_run latency — one-way latency/jitter through a DUT"};
  cli.add_flag("rate-gbps", &rate_gbps, "offered L1 rate");
  cli.add_flag("frame-size", &frame_size, "frame size incl. FCS");
  cli.add_flag("duration-ms", &duration_ms, "simulated test duration");
  cli.add_flag("dut", &dut, "device under test: none|legacy|lossy");
  cli.add_flag("poisson", &poisson, "Poisson arrivals instead of CBR");
  cli.add_flag("faults", &faults_path, "JSON fault plan to inject");
  cli.add_flag("retries", &retries,
               "deterministic retries after a failed trial");
  cli.add_flag("event-budget", &event_budget,
               "abort a trial after this many sim events (0 = unlimited)");
  cli.add_flag("wall-deadline-ms", &wall_deadline_ms,
               "abort a trial after this much wall time (0 = unlimited)");
  obs.add_to(cli);
  obs.add_series_to(cli);
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  if (!obs.validate_series()) return 1;

  fault::FaultPlan fplan;
  if (!faults_path.empty()) {
    try {
      fplan = fault::FaultPlan::load(faults_path);
    } catch (const fault::PlanError& e) {
      std::fprintf(stderr, "bad fault plan %s: %s\n", faults_path.c_str(),
                   e.what());
      return 1;
    }
    std::printf("fault plan: %s\n", fplan.summary().c_str());
  }

  core::RunResult r;
  telemetry::SeriesData sdata;

  // Phrased as a one-point trial plan: the testbed lives inside the trial
  // (so telemetry shards flush before the snapshot below) and the runner
  // contributes its own metric family to --metrics-out.
  core::TrialPlan plan;
  plan.points.resize(1);
  plan.run = [&](const core::TrialPoint& pt) {
    sim::Engine eng;
    obs.attach(eng);
    core::OsntDevice osnt{eng};
    auto holder = wire(eng, osnt, dut);

    std::unique_ptr<fault::Injector> inj;
    if (!fplan.events.empty()) {
      inj = std::make_unique<fault::Injector>(eng, fplan);
      inj->attach_device(osnt);
      inj->arm();
    }

    const Picos duration = from_micros(duration_ms * 1000.0);
    // Sim-time sampler over the monitor pipeline: the in-plane view of
    // the run as it unfolds, not just end-of-run totals.
    std::unique_ptr<telemetry::TimeSeries> series;
    if (const Picos ival = obs.series_interval(); ival > 0) {
      series = std::make_unique<telemetry::TimeSeries>(ival);
      const mon::RxPipeline& rx = osnt.rx(1);
      series->add_counter("mon.rx.frames_seen", [&rx] { return rx.seen(); });
      series->add_counter("mon.rx.captured", [&rx] { return rx.captured(); });
      series->add_counter("mon.rx.dma_drops",
                          [&rx] { return rx.dma_drops(); });
      series->add_histogram("mon.rx.rtt.ns",
                            [&rx] { return rx.rtt_probe().merged(); });
      series->attach(eng, duration);
    }

    core::TrafficSpec spec;
    spec.rate = gen::RateSpec::gbps(rate_gbps);
    spec.frame_size = static_cast<std::size_t>(frame_size);
    spec.seed = pt.seed;
    if (poisson) spec.arrivals = core::TrafficSpec::Arrivals::kPoisson;
    r = core::run_capture_test(eng, osnt, 0, 1, spec, duration);
    if (series) {
      series->finish();
      sdata = series->take();
    }
    core::TrialStats s;
    s.tx_frames = r.tx_frames;
    s.rx_frames = r.rx_frames;
    s.offered_gbps = r.offered_gbps;
    return s;
  };

  core::RunnerConfig rcfg;
  rcfg.max_attempts =
      static_cast<std::uint32_t>(retries < 0 ? 0 : retries) + 1;
  rcfg.event_budget =
      static_cast<std::uint64_t>(event_budget < 0 ? 0 : event_budget);
  rcfg.wall_deadline_ms =
      static_cast<std::uint64_t>(wall_deadline_ms < 0 ? 0 : wall_deadline_ms);
  const auto outcomes = core::Runner{rcfg}.run_resilient(plan);
  const auto& tr = outcomes.front();
  if (!tr.ok()) {
    std::fprintf(stderr, "trial %s after %u attempt(s): %s\n",
                 core::trial_outcome_name(tr.outcome), tr.attempts,
                 tr.error.c_str());
    return 1;
  }
  if (tr.outcome == core::TrialOutcome::kRetried) {
    std::printf("degraded: ok on attempt %u (rederived seed %llu)\n",
                tr.attempts,
                static_cast<unsigned long long>(tr.seed_used));
  }

  std::printf("tx %llu  rx %llu  loss %.4f%%  offered %.3f Gb/s\n",
              static_cast<unsigned long long>(r.tx_frames),
              static_cast<unsigned long long>(r.rx_frames),
              r.loss_fraction() * 100.0, r.offered_gbps);
  std::printf("latency ns: min %.1f p50 %.1f p99 %.1f max %.1f\n",
              r.latency_ns.min(), r.latency_ns.quantile(0.5),
              r.latency_ns.quantile(0.99), r.latency_ns.max());
  std::printf("jitter ns:  p50 %.2f p99 %.2f\n", r.jitter_ns.quantile(0.5),
              r.jitter_ns.quantile(0.99));
  if (!obs.write_series(sdata)) return 1;
  return obs.finish() ? 0 : 1;
}

int cmd_throughput(int argc, const char* const* argv) {
  std::int64_t frame_size = 0;  // 0 = full RFC 2544 sweep
  double resolution = 0.01;
  std::string dut = "legacy";
  std::int64_t jobs = 1;
  ObservabilityFlags obs;
  CliParser cli{"osnt_run throughput — RFC 2544 zero-loss search"};
  cli.add_flag("frame-size", &frame_size, "single size, or 0 for the sweep");
  cli.add_flag("resolution", &resolution, "search resolution (fraction)");
  cli.add_flag("dut", &dut, "device under test: none|legacy|lossy");
  cli.add_flag("jobs", &jobs,
               "worker threads for the sweep (0 = all hardware threads)");
  obs.add_to(cli);
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  // The trace recorder is single-threaded; a sharded sweep cannot share
  // one. Metrics shards merge commutatively, so --metrics-out is fine at
  // any job count.
  if (obs.trace_enabled() && jobs != 1) {
    std::fprintf(stderr, "--trace requires --jobs 1\n");
    return 1;
  }

  // Each trial builds a pristine testbed, so the sweep can shard across
  // cores; output is identical for any --jobs value.
  const core::Trial trial = [&dut, &obs](const core::TrialPoint& pt) {
    sim::Engine eng;
    obs.attach(eng);
    core::OsntDevice osnt{eng};
    auto holder = wire(eng, osnt, dut);
    core::TrafficSpec spec;
    spec.rate = gen::RateSpec::line_rate(pt.load_fraction);
    spec.frame_size = pt.frame_size;
    const auto r = core::run_capture_test(eng, osnt, 0, 1, spec, kPicosPerMilli);
    core::TrialStats s;
    s.tx_frames = r.tx_frames;
    s.rx_frames = r.rx_frames;
    s.offered_gbps = r.offered_gbps;
    s.latency_ns = r.latency_ns;
    return s;
  };

  core::ThroughputSearchConfig cfg;
  cfg.resolution = resolution;
  core::RunnerConfig runner;
  runner.jobs = static_cast<std::size_t>(jobs < 0 ? 0 : jobs);
  std::printf("%7s %12s %10s %10s\n", "size", "zero-loss", "Gb/s", "Mpps");
  if (frame_size > 0) {
    const auto pt =
        core::find_throughput(trial, static_cast<std::size_t>(frame_size), cfg);
    std::printf("%6zuB %11.1f%% %10.3f %10.3f\n", pt.frame_size,
                pt.max_load_fraction * 100.0, pt.gbps, pt.mpps);
  } else {
    for (const auto& pt : core::throughput_sweep(
             trial, core::rfc2544_frame_sizes(), cfg, runner)) {
      std::printf("%6zuB %11.1f%% %10.3f %10.3f\n", pt.frame_size,
                  pt.max_load_fraction * 100.0, pt.gbps, pt.mpps);
    }
  }
  return obs.finish() ? 0 : 1;
}

int cmd_capture(int argc, const char* const* argv) {
  double rate_gbps = 4.0;
  std::int64_t snap = 0, flows = 16;
  std::string pcap_out;
  ObservabilityFlags obs;
  CliParser cli{"osnt_run capture — capture a traffic mix, report flows"};
  cli.add_flag("rate-gbps", &rate_gbps, "offered L1 rate");
  cli.add_flag("snap", &snap, "cutter snap length (0 = full frames)");
  cli.add_flag("flows", &flows, "concurrent flows");
  cli.add_flag("pcap-out", &pcap_out, "write the capture to this .pcap");
  obs.add_to(cli);
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  sim::Engine eng;
  obs.attach(eng);
  core::OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));
  osnt.rx(1).cutter().set_snap_len(static_cast<std::size_t>(snap));

  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(rate_gbps);
  spec.sizes = core::TrafficSpec::Sizes::kImix;
  spec.flow_count = static_cast<std::uint32_t>(flows);
  const auto r =
      core::run_capture_test(eng, osnt, 0, 1, spec, 5 * kPicosPerMilli);

  std::printf("captured %llu records (DMA drops %llu)\n",
              static_cast<unsigned long long>(r.captured),
              static_cast<unsigned long long>(r.dma_drops));
  mon::FlowStatsCollector collector;
  collector.add_all(osnt.capture());
  std::printf("%zu flows; top talkers:\n", collector.flow_count());
  for (const auto& f : collector.top_by_bytes(5)) {
    std::printf("  %s:%u > %s:%u  %llu pkts  %llu bytes  %.2f Mb/s\n",
                f.key.src_ip.to_string().c_str(), f.key.src_port,
                f.key.dst_ip.to_string().c_str(), f.key.dst_port,
                static_cast<unsigned long long>(f.packets),
                static_cast<unsigned long long>(f.bytes),
                f.mean_rate_bps() / 1e6);
  }
  if (!pcap_out.empty()) {
    osnt.capture().write_pcap(pcap_out);
    std::printf("wrote %zu records to %s\n", osnt.capture().size(),
                pcap_out.c_str());
  }
  return obs.finish() ? 0 : 1;
}

int cmd_oflops(int argc, const char* const* argv) {
  std::string module = "flowmod";
  std::int64_t table_size = 128, rounds = 10;
  std::string faults_path;
  CliParser cli{
      "osnt_run oflops — OFLOPS-turbo module against an OpenFlow switch"};
  cli.add_flag("module", &module,
               "echo|packet_in|flowmod|consistency|stats_poll|queue_delay|interaction");
  cli.add_flag("table-size", &table_size, "flow table occupancy");
  cli.add_flag("rounds", &rounds, "measurement rounds (flowmod)");
  cli.add_flag("faults", &faults_path,
               "JSON fault plan (ctrl_disconnect targets the control channel)");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  dut::OpenFlowSwitchConfig sw_cfg;
  sw_cfg.commit_base = 2 * kPicosPerMilli;
  sw_cfg.table.max_entries = 16384;
  oflops::Testbed tb{sw_cfg};

  std::unique_ptr<fault::Injector> inj;
  if (!faults_path.empty()) {
    try {
      fault::FaultPlan fplan = fault::FaultPlan::load(faults_path);
      std::printf("fault plan: %s\n", fplan.summary().c_str());
      inj = std::make_unique<fault::Injector>(tb.eng, std::move(fplan));
      inj->attach_device(tb.osnt).attach_channel(tb.chan);
      inj->arm();
    } catch (const fault::PlanError& e) {
      std::fprintf(stderr, "bad fault plan %s: %s\n", faults_path.c_str(),
                   e.what());
      return 1;
    }
  }

  std::unique_ptr<oflops::MeasurementModule> mod;
  if (module == "echo") {
    mod = std::make_unique<oflops::EchoRttModule>();
  } else if (module == "packet_in") {
    mod = std::make_unique<oflops::PacketInLatencyModule>();
  } else if (module == "flowmod") {
    oflops::FlowModLatencyConfig cfg;
    cfg.table_size = static_cast<std::size_t>(table_size);
    cfg.rounds = static_cast<std::size_t>(rounds);
    mod = std::make_unique<oflops::FlowModLatencyModule>(cfg);
  } else if (module == "consistency") {
    oflops::ConsistencyConfig cfg;
    cfg.rule_count = static_cast<std::size_t>(table_size);
    mod = std::make_unique<oflops::ConsistencyModule>(cfg);
  } else if (module == "stats_poll") {
    oflops::StatsPollConfig cfg;
    cfg.table_size = static_cast<std::size_t>(table_size);
    mod = std::make_unique<oflops::StatsPollModule>(cfg);
  } else if (module == "queue_delay") {
    mod = std::make_unique<oflops::QueueDelayModule>();
  } else if (module == "interaction") {
    mod = std::make_unique<oflops::InteractionModule>();
  } else {
    std::fprintf(stderr, "unknown module '%s'\n", module.c_str());
    return 1;
  }
  tb.ctx.run(*mod, 600 * kPicosPerSec).print();
  return 0;
}

int cmd_tcp(int argc, const char* const* argv) {
  std::string cc = "newreno";
  std::int64_t flows = 1, trials = 1, jobs = 1, mss = 1448;
  std::int64_t queue_segments = 256, seed = 1, rwnd_kb = 1024;
  double duration_ms = 10.0, bottleneck_gbps = 5.0;
  bool rate_limit_detector = false;
  std::string faults_path;
  std::string timers = "wheel";
  ObservabilityFlags obs;
  CliParser cli{
      "osnt_run tcp — closed-loop congestion-controlled flows over the "
      "simulated dataplane"};
  cli.add_flag("cc", &cc, "congestion control: newreno|cubic|bbr");
  cli.add_flag("flows", &flows, "concurrent flows sharing the bottleneck");
  cli.add_flag("duration-ms", &duration_ms, "simulated test duration");
  cli.add_flag("mss", &mss, "segment payload bytes (1448 = 1518B frames)");
  cli.add_flag("bottleneck-gbps", &bottleneck_gbps,
               "bottleneck drain rate (0 = port line rate)");
  cli.add_flag("queue-segments", &queue_segments,
               "bottleneck buffer depth in frames");
  cli.add_flag("rwnd-kb", &rwnd_kb, "receiver window per flow, KiB");
  cli.add_flag("rate-limit-detector", &rate_limit_detector,
               "detect in-path policers/shapers and adapt the cc to them");
  cli.add_flag("seed", &seed, "base seed (trial i runs at seed+i)");
  cli.add_flag("timers",
               &timers,
               "bulk-timer routing: wheel (O(1) timing wheel) | heap "
               "(baseline; identical results, slower at high --flows)");
  cli.add_flag("faults", &faults_path, "JSON fault plan to inject");
  cli.add_flag("trials", &trials, "independent trials (distinct seeds)");
  cli.add_flag("jobs", &jobs,
               "worker threads for the trials (0 = all hardware threads)");
  obs.add_to(cli);
  obs.add_series_to(cli);
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  if (!obs.validate_series()) return 1;
  if (flows <= 0 || trials <= 0 || mss <= 0) {
    std::fprintf(stderr, "--flows/--trials/--mss must be positive\n");
    return 1;
  }
  if (timers != "wheel" && timers != "heap") {
    std::fprintf(stderr, "--timers must be wheel or heap\n");
    return 1;
  }
  if (obs.trace_enabled() && (trials != 1 || jobs != 1)) {
    std::fprintf(stderr, "--trace requires --trials 1 --jobs 1\n");
    return 1;
  }

  fault::FaultPlan fplan;
  if (!faults_path.empty()) {
    try {
      fplan = fault::FaultPlan::load(faults_path);
    } catch (const fault::PlanError& e) {
      std::fprintf(stderr, "bad fault plan %s: %s\n", faults_path.c_str(),
                   e.what());
      return 1;
    }
    std::printf("fault plan: %s\n", fplan.summary().c_str());
  }

  tcp::WorkloadConfig base;
  base.flows = static_cast<std::size_t>(flows);
  base.cc = cc;
  base.mss = static_cast<std::uint32_t>(mss);
  base.bottleneck_gbps = bottleneck_gbps;
  base.queue_segments = static_cast<std::size_t>(queue_segments);
  base.rwnd_bytes = static_cast<std::uint64_t>(rwnd_kb) * 1024;
  base.rate_limit_detector = rate_limit_detector;
  base.wheel_timers = timers == "wheel";
  const Picos duration = from_micros(duration_ms * 1000.0);

  // One trial = one fresh closed-loop testbed; trials shard across the
  // runner pool and reports come back in plan order at any --jobs.
  std::vector<tcp::TcpTrialReport> reports(
      static_cast<std::size_t>(trials));
  std::vector<telemetry::SeriesData> series(static_cast<std::size_t>(trials));
  core::TrialPlan plan;
  plan.points.resize(static_cast<std::size_t>(trials));
  for (std::size_t i = 0; i < plan.points.size(); ++i) {
    plan.points[i].seed = static_cast<std::uint64_t>(seed) + i;
  }
  plan.run = [&](const core::TrialPoint& pt) {
    tcp::WorkloadConfig cfg = base;
    cfg.seed = pt.seed;
    const auto rep = tcp::run_closed_loop_trial(
        cfg, duration, fplan.events.empty() ? nullptr : &fplan,
        obs.trace_enabled() ? &obs.rec : nullptr, obs.series_interval(),
        obs.series_enabled() ? &series[pt.index] : nullptr);
    reports[pt.index] = rep;
    core::TrialStats s;
    s.tx_frames = rep.segs_sent;
    s.rx_frames = rep.acks_sent;
    s.metric = rep.goodput_bps;
    return s;
  };

  core::RunnerConfig rcfg;
  rcfg.jobs = static_cast<std::size_t>(jobs < 0 ? 0 : jobs);
  const auto outcomes = core::Runner{rcfg}.run_resilient(plan);

  std::printf("%5s %6s %10s %8s %8s %8s %8s %8s\n", "trial", "seed",
              "goodput", "segs", "retx", "rto", "fastrtx", "drops");
  int rc = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& tr = outcomes[i];
    if (!tr.ok()) {
      std::fprintf(stderr, "trial %zu %s after %u attempt(s): %s\n", i,
                   core::trial_outcome_name(tr.outcome), tr.attempts,
                   tr.error.c_str());
      rc = 1;
      continue;
    }
    const auto& rep = reports[i];
    std::printf("%5zu %6llu %7.3f Gb %8llu %8llu %8llu %8llu %8llu\n", i,
                static_cast<unsigned long long>(tr.seed_used),
                rep.goodput_bps / 1e9,
                static_cast<unsigned long long>(rep.segs_sent),
                static_cast<unsigned long long>(rep.retransmits),
                static_cast<unsigned long long>(rep.rto_fires),
                static_cast<unsigned long long>(rep.fast_retx),
                static_cast<unsigned long long>(rep.queue_drops));
  }
  if (trials == 1 && outcomes.front().ok()) {
    const auto& rep = reports.front();
    std::printf("cc %s  flows %lld  cwnd reductions %llu  acks %llu  "
                "flow rate min %.3f / max %.3f Gb/s\n",
                cc.c_str(), static_cast<long long>(flows),
                static_cast<unsigned long long>(rep.cwnd_reductions),
                static_cast<unsigned long long>(rep.acks_sent),
                rep.min_flow_rate_bps / 1e9, rep.max_flow_rate_bps / 1e9);
    if (rep.rld_detections > 0) {
      std::printf("rate-limit detector: %llu detections  rate %.3f Gb/s  "
                  "time-to-detect %.1f us\n",
                  static_cast<unsigned long long>(rep.rld_detections),
                  rep.rld_rate_bps / 1e9,
                  static_cast<double>(rep.rld_detect_time) / kPicosPerMicro);
    }
  }
  if (obs.series_enabled() && rc == 0) {
    // Merge in plan order: element-wise sums commute, so the bytes are
    // identical at any --jobs value.
    telemetry::SeriesData merged;
    for (const auto& s : series) merged.merge_from(s);
    if (!obs.write_series(merged)) rc = 1;
  }
  if (!obs.finish()) rc = 1;
  return rc;
}

int cmd_topo(int argc, const char* const* argv) {
  std::int64_t trials = 1, jobs = 1, seed = 0;
  double duration_ms = 0.0;
  bool validate_only = false;
  std::string faults_path;
  ObservabilityFlags obs;
  CliParser cli{
      "osnt_run topo FILE.json — run a declarative scenario-graph topology\n"
      "(see examples/topologies/; blocks: fifo_queue, red, token_bucket,\n"
      "delay_ber, ecmp, sink, monitor, legacy_switch, openflow_switch,\n"
      "burst_source)"};
  cli.add_flag("seed", &seed, "base seed (0 = the file's; trial i adds i)");
  cli.add_flag("duration-ms", &duration_ms,
               "simulated duration (0 = the file's)");
  cli.add_flag("faults", &faults_path, "JSON fault plan to inject");
  cli.add_flag("validate-only", &validate_only,
               "load the topology (and fault plan), resolve fault targets, "
               "print the block table, and exit without running");
  cli.add_flag("trials", &trials, "independent trials (distinct seeds)");
  cli.add_flag("jobs", &jobs,
               "worker threads for the trials (0 = all hardware threads)");
  obs.add_to(cli);
  obs.add_series_to(cli);
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  if (!obs.validate_series()) return 1;
  if (cli.positional().size() != 1) {
    std::fprintf(stderr, "usage: osnt_run topo FILE.json [flags]\n");
    return 1;
  }
  if (trials <= 0) {
    std::fprintf(stderr, "--trials must be positive\n");
    return 1;
  }
  if (obs.trace_enabled() && (trials != 1 || jobs != 1)) {
    std::fprintf(stderr, "--trace requires --trials 1 --jobs 1\n");
    return 1;
  }

  graph::TopologyFile topo;
  try {
    topo = graph::TopologyFile::load(cli.positional()[0]);
  } catch (const graph::GraphError& e) {
    std::fprintf(stderr, "%s: %s\n", cli.positional()[0].c_str(), e.what());
    return 1;
  }
  const std::uint64_t base_seed =
      seed > 0 ? static_cast<std::uint64_t>(seed) : topo.seed;
  const Picos duration =
      duration_ms > 0 ? from_micros(duration_ms * 1000.0) : topo.duration;

  fault::FaultPlan fplan;
  if (!faults_path.empty()) {
    try {
      fplan = fault::FaultPlan::load(faults_path);
    } catch (const fault::PlanError& e) {
      std::fprintf(stderr, "bad fault plan %s: %s\n", faults_path.c_str(),
                   e.what());
      return 1;
    }
    std::printf("fault plan: %s\n", fplan.summary().c_str());
  }

  std::printf("topology %s: %zu blocks, %zu edges, workload %s\n",
              topo.name.empty() ? cli.positional()[0].c_str()
                                : topo.name.c_str(),
              topo.blocks.size(), topo.edges.size(),
              topo.workload.kind == graph::WorkloadSpec::Kind::kTcp     ? "tcp"
              : topo.workload.kind == graph::WorkloadSpec::Kind::kCbr   ? "cbr"
              : topo.workload.kind == graph::WorkloadSpec::Kind::kBurst ? "burst"
                                                                        : "none");

  if (validate_only) {
    // Dry run: the file already parsed and wired, so all that is left is
    // the semantic workload checks, resolving the fault plan's block
    // targets, and showing what would be built — cheap enough for CI to
    // gate every plan/topology pair on.
    try {
      graph::validate_workload(topo);
      graph::validate_fault_targets(topo, fplan);
    } catch (const graph::GraphError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    std::printf("%-16s %-16s %7s %8s\n", "block", "type", "inputs",
                "outputs");
    for (const auto& b : topo.blocks) {
      std::printf("%-16s %-16s %7zu %8zu\n", b.name.c_str(), b.type.c_str(),
                  b.num_inputs, b.num_outputs);
    }
    std::printf("ok: topology valid, workload valid%s\n",
                fplan.events.empty() ? "" : ", fault targets resolved");
    return 0;
  }

  std::vector<graph::TopologyTrialReport> reports(
      static_cast<std::size_t>(trials));
  core::TrialPlan plan;
  plan.points.resize(static_cast<std::size_t>(trials));
  for (std::size_t i = 0; i < plan.points.size(); ++i) {
    plan.points[i].seed = base_seed + i;
  }
  plan.run = [&](const core::TrialPoint& pt) {
    const auto rep = graph::run_topology_trial(
        topo, pt.seed, duration, fplan.events.empty() ? nullptr : &fplan,
        obs.trace_enabled() ? &obs.rec : nullptr, obs.series_interval());
    reports[pt.index] = rep;
    core::TrialStats s;
    s.tx_frames = rep.graph_frames_in;
    s.rx_frames = rep.graph_frames_in - rep.graph_drops;
    if (topo.workload.kind == graph::WorkloadSpec::Kind::kTcp) {
      s.metric = rep.tcp.goodput_bps;
    } else if (topo.workload.kind == graph::WorkloadSpec::Kind::kBurst) {
      s.tx_frames = rep.burst.frames;
      s.rx_frames = rep.burst.rx_frames;
    }
    return s;
  };

  core::RunnerConfig rcfg;
  rcfg.jobs = static_cast<std::size_t>(jobs < 0 ? 0 : jobs);
  const auto outcomes = core::Runner{rcfg}.run_resilient(plan);

  int rc = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& tr = outcomes[i];
    if (!tr.ok()) {
      std::fprintf(stderr, "trial %zu %s after %u attempt(s): %s\n", i,
                   core::trial_outcome_name(tr.outcome), tr.attempts,
                   tr.error.c_str());
      rc = 1;
      continue;
    }
    const auto& rep = reports[i];
    if (topo.workload.kind == graph::WorkloadSpec::Kind::kTcp) {
      std::printf(
          "trial %zu seed %llu: goodput %.3f Gb/s  segs %llu  retx %llu  "
          "graph drops %llu\n",
          i, static_cast<unsigned long long>(tr.seed_used),
          rep.tcp.goodput_bps / 1e9,
          static_cast<unsigned long long>(rep.tcp.segs_sent),
          static_cast<unsigned long long>(rep.tcp.retransmits),
          static_cast<unsigned long long>(rep.graph_drops));
      if (rep.tcp.rtt_min_ns > 0.0) {
        std::printf("  source rtt: p99 %.0f ns (%.2fx min)\n",
                    rep.tcp.rtt_p99_ns,
                    rep.tcp.rtt_p99_ns / rep.tcp.rtt_min_ns);
      }
      if (rep.tcp.rld_detections > 0) {
        std::printf(
            "  rate-limit detector: %llu detections  rate %.3f Gb/s  "
            "time-to-detect %.1f us\n",
            static_cast<unsigned long long>(rep.tcp.rld_detections),
            rep.tcp.rld_rate_bps / 1e9,
            static_cast<double>(rep.tcp.rld_detect_time) / kPicosPerMicro);
      }
    } else if (topo.workload.kind == graph::WorkloadSpec::Kind::kCbr) {
      std::printf(
          "trial %zu seed %llu: tx %llu  rx %llu  loss %.4f%%  "
          "graph drops %llu\n",
          i, static_cast<unsigned long long>(tr.seed_used),
          static_cast<unsigned long long>(rep.cbr.tx_frames),
          static_cast<unsigned long long>(rep.cbr.rx_frames),
          rep.cbr.loss_fraction() * 100.0,
          static_cast<unsigned long long>(rep.graph_drops));
    } else if (topo.workload.kind == graph::WorkloadSpec::Kind::kBurst) {
      std::printf(
          "trial %zu seed %llu: %llu frames in %llu bursts  rx %llu  "
          "graph drops %llu\n",
          i, static_cast<unsigned long long>(tr.seed_used),
          static_cast<unsigned long long>(rep.burst.frames),
          static_cast<unsigned long long>(rep.burst.bursts),
          static_cast<unsigned long long>(rep.burst.rx_frames),
          static_cast<unsigned long long>(rep.graph_drops));
    } else {
      std::printf("trial %zu seed %llu: %llu frames through the graph\n", i,
                  static_cast<unsigned long long>(tr.seed_used),
                  static_cast<unsigned long long>(rep.graph_frames_in));
    }
  }
  if (rc == 0 && !reports.empty()) {
    std::printf("%-16s %12s %12s %10s %9s %9s %9s\n", "block", "frames_in",
                "frames_out", "drops", "rtt_p50", "rtt_p90", "rtt_p99");
    for (const auto& b : reports.front().blocks) {
      std::printf("%-16s %12llu %12llu %10llu", b.name.c_str(),
                  static_cast<unsigned long long>(b.frames_in),
                  static_cast<unsigned long long>(b.frames_out),
                  static_cast<unsigned long long>(b.drops));
      if (b.rtt_samples > 0) {
        std::printf(" %8.0fns %8.0fns %8.0fns\n", b.rtt_p50_ns, b.rtt_p90_ns,
                    b.rtt_p99_ns);
      } else {
        std::printf(" %9s %9s %9s\n", "-", "-", "-");
      }
    }
  }
  if (obs.series_enabled() && rc == 0) {
    telemetry::SeriesData merged;
    for (const auto& rep : reports) merged.merge_from(rep.series);
    if (!obs.write_series(merged)) rc = 1;
  }
  if (!obs.finish()) rc = 1;
  return rc;
}

int cmd_fleet(int argc, const char* const* argv) {
  std::int64_t leaves = 2, spines = 2, per_leaf = 2, frames = 100;
  CliParser cli{"osnt_run fleet — latency matrix over a leaf-spine fabric"};
  cli.add_flag("leaves", &leaves, "leaf switches");
  cli.add_flag("spines", &spines, "spine switches");
  cli.add_flag("per-leaf", &per_leaf, "testers per leaf");
  cli.add_flag("frames", &frames, "probes per pair");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  sim::Engine eng;
  topo::FabricConfig cfg;
  cfg.leaves = static_cast<std::size_t>(leaves);
  cfg.spines = static_cast<std::size_t>(spines);
  cfg.testers_per_leaf = static_cast<std::size_t>(per_leaf);
  topo::LeafSpineFabric fabric{eng, cfg};
  const std::size_t n = fabric.tester_count();
  std::printf("p50 one-way latency (ns), %zu testers:\n      ", n);
  for (std::size_t j = 0; j < n; ++j) std::printf("   T%-3zu ", j);
  std::printf("\n");
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("  T%-3zu", i);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        std::printf("%8s", "-");
        continue;
      }
      std::printf("%8.0f", fabric
                               .measure_latency(i, j,
                                                static_cast<std::size_t>(frames))
                               .quantile(0.5));
    }
    std::printf("\n");
  }
  return 0;
}

/// Global --log-level handling: accepted anywhere on the command line,
/// stripped before subcommand parsing. Returns false on a bad level name.
bool apply_log_level(const std::string& name) {
  if (name == "debug") set_log_level(LogLevel::kDebug);
  else if (name == "info") set_log_level(LogLevel::kInfo);
  else if (name == "warn") set_log_level(LogLevel::kWarn);
  else if (name == "error") set_log_level(LogLevel::kError);
  else if (name == "off") set_log_level(LogLevel::kOff);
  else {
    std::fprintf(stderr,
                 "bad --log-level '%s' (debug|info|warn|error|off)\n",
                 name.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  args.push_back(argc > 0 ? argv[0] : "osnt_run");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--log-level") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--log-level needs a value\n");
        return 1;
      }
      if (!apply_log_level(argv[++i])) return 1;
    } else if (std::strncmp(argv[i], "--log-level=", 12) == 0) {
      if (!apply_log_level(argv[i] + 12)) return 1;
    } else {
      args.push_back(argv[i]);
    }
  }

  if (args.size() < 2) {
    std::fprintf(stderr,
                 "usage: osnt_run <latency|throughput|capture|tcp|topo|oflops|"
                 "fleet> [flags] [--log-level debug|info|warn|error|off]\n"
                 "       osnt_run <cmd> --help\n");
    return 1;
  }
  const std::string cmd = args[1];
  const int sub_argc = static_cast<int>(args.size()) - 1;
  const char* const* sub_argv = args.data() + 1;
  if (cmd == "latency") return cmd_latency(sub_argc, sub_argv);
  if (cmd == "tcp") return cmd_tcp(sub_argc, sub_argv);
  if (cmd == "topo") return cmd_topo(sub_argc, sub_argv);
  if (cmd == "throughput") return cmd_throughput(sub_argc, sub_argv);
  if (cmd == "capture") return cmd_capture(sub_argc, sub_argv);
  if (cmd == "oflops") return cmd_oflops(sub_argc, sub_argv);
  if (cmd == "fleet") return cmd_fleet(sub_argc, sub_argv);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 1;
}
