// osnt_run — the command-line driver (the paper's "software driver
// supporting command-line interfaces"). Subcommands build a simulated
// testbed and run one measurement:
//
//   osnt_run latency    [--rate-gbps N] [--frame-size N] [--duration-ms N]
//                       [--dut none|legacy|lossy] [--poisson]
//   osnt_run throughput [--frame-size N] [--resolution F] [--dut ...]
//                       [--jobs N]
//   osnt_run capture    [--rate-gbps N] [--snap N] [--flows N]
//                       [--pcap-out PATH]
//   osnt_run oflops     [--module M] [--table-size N] [--rounds N]
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "osnt/common/cli.hpp"
#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/core/rfc2544.hpp"
#include "osnt/core/runner.hpp"
#include "osnt/dut/legacy_switch.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/mon/flow_stats.hpp"
#include "osnt/oflops/consistency.hpp"
#include "osnt/oflops/context.hpp"
#include "osnt/oflops/echo_rtt.hpp"
#include "osnt/oflops/flowmod_latency.hpp"
#include "osnt/oflops/packet_in_latency.hpp"
#include "osnt/oflops/interaction.hpp"
#include "osnt/oflops/queue_delay.hpp"
#include "osnt/oflops/stats_poll.hpp"
#include "osnt/topo/fabric.hpp"

using namespace osnt;

namespace {

struct DutHolder {
  std::unique_ptr<dut::LegacySwitch> sw;
};

/// Wire OSNT port 0 → DUT → OSNT port 1 (or back-to-back for "none").
DutHolder wire(sim::Engine& eng, core::OsntDevice& osnt,
               const std::string& dut) {
  DutHolder h;
  if (dut == "none") {
    hw::connect(osnt.port(0), osnt.port(1));
    return h;
  }
  dut::LegacySwitchConfig cfg;
  if (dut == "lossy") cfg.lookup_rate_mpps = 2.0;
  h.sw = std::make_unique<dut::LegacySwitch>(eng, cfg);
  hw::connect(osnt.port(0), h.sw->port(0));
  hw::connect(osnt.port(1), h.sw->port(1));
  // Prime MAC learning for the monitor-side address.
  net::PacketBuilder b;
  (void)osnt.port(1).tx().transmit(
      b.eth(net::MacAddr::from_index(2), net::MacAddr::from_index(1))
          .ipv4(net::Ipv4Addr::of(10, 0, 1, 1), net::Ipv4Addr::of(10, 0, 0, 1),
                net::ipproto::kUdp)
          .udp(5001, 1024)
          .build());
  eng.run();
  return h;
}

int cmd_latency(int argc, const char* const* argv) {
  double rate_gbps = 1.0, duration_ms = 5.0;
  std::int64_t frame_size = 256;
  std::string dut = "legacy";
  bool poisson = false;
  CliParser cli{"osnt_run latency — one-way latency/jitter through a DUT"};
  cli.add_flag("rate-gbps", &rate_gbps, "offered L1 rate");
  cli.add_flag("frame-size", &frame_size, "frame size incl. FCS");
  cli.add_flag("duration-ms", &duration_ms, "simulated test duration");
  cli.add_flag("dut", &dut, "device under test: none|legacy|lossy");
  cli.add_flag("poisson", &poisson, "Poisson arrivals instead of CBR");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  sim::Engine eng;
  core::OsntDevice osnt{eng};
  auto holder = wire(eng, osnt, dut);

  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(rate_gbps);
  spec.frame_size = static_cast<std::size_t>(frame_size);
  if (poisson) spec.arrivals = core::TrafficSpec::Arrivals::kPoisson;
  const auto r = core::run_capture_test(eng, osnt, 0, 1, spec,
                                        from_micros(duration_ms * 1000.0));
  std::printf("tx %llu  rx %llu  loss %.4f%%  offered %.3f Gb/s\n",
              static_cast<unsigned long long>(r.tx_frames),
              static_cast<unsigned long long>(r.rx_frames),
              r.loss_fraction() * 100.0, r.offered_gbps);
  std::printf("latency ns: min %.1f p50 %.1f p99 %.1f max %.1f\n",
              r.latency_ns.min(), r.latency_ns.quantile(0.5),
              r.latency_ns.quantile(0.99), r.latency_ns.max());
  std::printf("jitter ns:  p50 %.2f p99 %.2f\n", r.jitter_ns.quantile(0.5),
              r.jitter_ns.quantile(0.99));
  return 0;
}

int cmd_throughput(int argc, const char* const* argv) {
  std::int64_t frame_size = 0;  // 0 = full RFC 2544 sweep
  double resolution = 0.01;
  std::string dut = "legacy";
  std::int64_t jobs = 1;
  CliParser cli{"osnt_run throughput — RFC 2544 zero-loss search"};
  cli.add_flag("frame-size", &frame_size, "single size, or 0 for the sweep");
  cli.add_flag("resolution", &resolution, "search resolution (fraction)");
  cli.add_flag("dut", &dut, "device under test: none|legacy|lossy");
  cli.add_flag("jobs", &jobs,
               "worker threads for the sweep (0 = all hardware threads)");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  // Each trial builds a pristine testbed, so the sweep can shard across
  // cores; output is identical for any --jobs value.
  const core::Trial trial = [&dut](const core::TrialPoint& pt) {
    sim::Engine eng;
    core::OsntDevice osnt{eng};
    auto holder = wire(eng, osnt, dut);
    core::TrafficSpec spec;
    spec.rate = gen::RateSpec::line_rate(pt.load_fraction);
    spec.frame_size = pt.frame_size;
    const auto r = core::run_capture_test(eng, osnt, 0, 1, spec, kPicosPerMilli);
    core::TrialStats s;
    s.tx_frames = r.tx_frames;
    s.rx_frames = r.rx_frames;
    s.offered_gbps = r.offered_gbps;
    s.latency_ns = r.latency_ns;
    return s;
  };

  core::ThroughputSearchConfig cfg;
  cfg.resolution = resolution;
  core::RunnerConfig runner;
  runner.jobs = static_cast<std::size_t>(jobs < 0 ? 0 : jobs);
  std::printf("%7s %12s %10s %10s\n", "size", "zero-loss", "Gb/s", "Mpps");
  if (frame_size > 0) {
    const auto pt =
        core::find_throughput(trial, static_cast<std::size_t>(frame_size), cfg);
    std::printf("%6zuB %11.1f%% %10.3f %10.3f\n", pt.frame_size,
                pt.max_load_fraction * 100.0, pt.gbps, pt.mpps);
  } else {
    for (const auto& pt : core::throughput_sweep(
             trial, core::rfc2544_frame_sizes(), cfg, runner)) {
      std::printf("%6zuB %11.1f%% %10.3f %10.3f\n", pt.frame_size,
                  pt.max_load_fraction * 100.0, pt.gbps, pt.mpps);
    }
  }
  return 0;
}

int cmd_capture(int argc, const char* const* argv) {
  double rate_gbps = 4.0;
  std::int64_t snap = 0, flows = 16;
  std::string pcap_out;
  CliParser cli{"osnt_run capture — capture a traffic mix, report flows"};
  cli.add_flag("rate-gbps", &rate_gbps, "offered L1 rate");
  cli.add_flag("snap", &snap, "cutter snap length (0 = full frames)");
  cli.add_flag("flows", &flows, "concurrent flows");
  cli.add_flag("pcap-out", &pcap_out, "write the capture to this .pcap");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  sim::Engine eng;
  core::OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));
  osnt.rx(1).cutter().set_snap_len(static_cast<std::size_t>(snap));

  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(rate_gbps);
  spec.sizes = core::TrafficSpec::Sizes::kImix;
  spec.flow_count = static_cast<std::uint32_t>(flows);
  const auto r =
      core::run_capture_test(eng, osnt, 0, 1, spec, 5 * kPicosPerMilli);

  std::printf("captured %llu records (DMA drops %llu)\n",
              static_cast<unsigned long long>(r.captured),
              static_cast<unsigned long long>(r.dma_drops));
  mon::FlowStatsCollector collector;
  collector.add_all(osnt.capture());
  std::printf("%zu flows; top talkers:\n", collector.flow_count());
  for (const auto& f : collector.top_by_bytes(5)) {
    std::printf("  %s:%u > %s:%u  %llu pkts  %llu bytes  %.2f Mb/s\n",
                f.key.src_ip.to_string().c_str(), f.key.src_port,
                f.key.dst_ip.to_string().c_str(), f.key.dst_port,
                static_cast<unsigned long long>(f.packets),
                static_cast<unsigned long long>(f.bytes),
                f.mean_rate_bps() / 1e6);
  }
  if (!pcap_out.empty()) {
    osnt.capture().write_pcap(pcap_out);
    std::printf("wrote %zu records to %s\n", osnt.capture().size(),
                pcap_out.c_str());
  }
  return 0;
}

int cmd_oflops(int argc, const char* const* argv) {
  std::string module = "flowmod";
  std::int64_t table_size = 128, rounds = 10;
  CliParser cli{
      "osnt_run oflops — OFLOPS-turbo module against an OpenFlow switch"};
  cli.add_flag("module", &module,
               "echo|packet_in|flowmod|consistency|stats_poll|queue_delay|interaction");
  cli.add_flag("table-size", &table_size, "flow table occupancy");
  cli.add_flag("rounds", &rounds, "measurement rounds (flowmod)");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  dut::OpenFlowSwitchConfig sw_cfg;
  sw_cfg.commit_base = 2 * kPicosPerMilli;
  sw_cfg.table.max_entries = 16384;
  oflops::Testbed tb{sw_cfg};

  std::unique_ptr<oflops::MeasurementModule> mod;
  if (module == "echo") {
    mod = std::make_unique<oflops::EchoRttModule>();
  } else if (module == "packet_in") {
    mod = std::make_unique<oflops::PacketInLatencyModule>();
  } else if (module == "flowmod") {
    oflops::FlowModLatencyConfig cfg;
    cfg.table_size = static_cast<std::size_t>(table_size);
    cfg.rounds = static_cast<std::size_t>(rounds);
    mod = std::make_unique<oflops::FlowModLatencyModule>(cfg);
  } else if (module == "consistency") {
    oflops::ConsistencyConfig cfg;
    cfg.rule_count = static_cast<std::size_t>(table_size);
    mod = std::make_unique<oflops::ConsistencyModule>(cfg);
  } else if (module == "stats_poll") {
    oflops::StatsPollConfig cfg;
    cfg.table_size = static_cast<std::size_t>(table_size);
    mod = std::make_unique<oflops::StatsPollModule>(cfg);
  } else if (module == "queue_delay") {
    mod = std::make_unique<oflops::QueueDelayModule>();
  } else if (module == "interaction") {
    mod = std::make_unique<oflops::InteractionModule>();
  } else {
    std::fprintf(stderr, "unknown module '%s'\n", module.c_str());
    return 1;
  }
  tb.ctx.run(*mod, 600 * kPicosPerSec).print();
  return 0;
}

int cmd_fleet(int argc, const char* const* argv) {
  std::int64_t leaves = 2, spines = 2, per_leaf = 2, frames = 100;
  CliParser cli{"osnt_run fleet — latency matrix over a leaf-spine fabric"};
  cli.add_flag("leaves", &leaves, "leaf switches");
  cli.add_flag("spines", &spines, "spine switches");
  cli.add_flag("per-leaf", &per_leaf, "testers per leaf");
  cli.add_flag("frames", &frames, "probes per pair");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  sim::Engine eng;
  topo::FabricConfig cfg;
  cfg.leaves = static_cast<std::size_t>(leaves);
  cfg.spines = static_cast<std::size_t>(spines);
  cfg.testers_per_leaf = static_cast<std::size_t>(per_leaf);
  topo::LeafSpineFabric fabric{eng, cfg};
  const std::size_t n = fabric.tester_count();
  std::printf("p50 one-way latency (ns), %zu testers:\n      ", n);
  for (std::size_t j = 0; j < n; ++j) std::printf("   T%-3zu ", j);
  std::printf("\n");
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("  T%-3zu", i);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        std::printf("%8s", "-");
        continue;
      }
      std::printf("%8.0f", fabric
                               .measure_latency(i, j,
                                                static_cast<std::size_t>(frames))
                               .quantile(0.5));
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: osnt_run <latency|throughput|capture|oflops|fleet> "
                 "[flags]\n       osnt_run <cmd> --help\n");
    return 1;
  }
  const std::string cmd = argv[1];
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (cmd == "latency") return cmd_latency(sub_argc, sub_argv);
  if (cmd == "throughput") return cmd_throughput(sub_argc, sub_argv);
  if (cmd == "capture") return cmd_capture(sub_argc, sub_argv);
  if (cmd == "oflops") return cmd_oflops(sub_argc, sub_argv);
  if (cmd == "fleet") return cmd_fleet(sub_argc, sub_argv);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 1;
}
