// Process-wide metrics registry (the software twin of OSNT's monitoring
// registers): named counters, gauges, and log2 histograms, cheap enough
// to leave compiled in and enabled. Counters are plain relaxed atomics;
// a histogram record is a branch-free bucket increment. High-rate layers
// do not even pay the atomic per event — they accumulate in plain local
// shards (one sim::Engine / pipeline = one shard) and merge into the
// registry once, at end of life; merging is commutative (sums, maxes,
// bucket adds), which is what keeps `--jobs N` snapshots byte-identical
// for any worker count.
//
// Naming convention: metric names are dot-separated families
// (`sim.engine.*`, `gen.tx.*`, `mon.rx.*`, `hw.dma.*`, `core.runner.*`).
// Anything derived from the host's wall clock — as opposed to simulated
// time — MUST contain the token "wall" in its name; likewise anything
// describing *how* the engine executed (timer routing, slab growth) as
// opposed to what the simulation did MUST contain the token "impl".
// `Snapshot::kSimOnly` filters both out so determinism checks can compare
// the rest bit-exactly across worker counts and execution strategies.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "osnt/telemetry/histogram.hpp"

namespace osnt::telemetry {

/// Global kill switch. When false, instrumented layers skip their
/// end-of-life merges (the per-event cost is already near zero either
/// way — bench/bench_telemetry.cpp holds that to within single digits).
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonic sum. Relaxed atomic: addition commutes, so concurrent shards
/// merging in any order produce the same total.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value. `set`/`add` for last-writer-wins readings,
/// `update_max` for high-water marks (max commutes, so high-water gauges
/// stay deterministic under concurrent shard merges; `set` does not and
/// is reserved for wall-domain metrics).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  void update_max(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Thread-safe log2 histogram: the registry-side accumulator local
/// Log2Histogram shards merge into. Direct record() is also supported for
/// low-rate call sites.
class SharedHistogram {
 public:
  void record(std::uint64_t v) noexcept;
  void merge(const Log2Histogram& shard) noexcept;
  /// Consistent-enough copy for reporting (exact once writers are done).
  [[nodiscard]] Log2Histogram snapshot() const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> counts_[Log2Histogram::kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Which metrics a snapshot includes. kSimOnly drops every metric whose
/// name contains "wall" (host-clock domain) or "impl" (execution-strategy
/// internals) — the remainder is derived from simulated time only and
/// must be byte-identical for any --jobs value or timer routing.
enum class Snapshot : std::uint8_t { kAll, kSimOnly };

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Lookup-or-create. Returned references are stable for the registry's
  /// lifetime (metrics are never erased; reset() zeroes them in place),
  /// so hot layers resolve once and cache the pointer.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] SharedHistogram& histogram(std::string_view name);

  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with names sorted, so identical metric values render identical bytes.
  [[nodiscard]] std::string to_json(Snapshot mode = Snapshot::kAll) const;
  bool write_json(const std::string& path, Snapshot mode = Snapshot::kAll) const;

  /// Zero every registered metric (registrations and addresses survive).
  void reset();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide registry instance.
[[nodiscard]] Registry& registry();

}  // namespace osnt::telemetry
