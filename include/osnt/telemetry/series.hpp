// Sim-time telemetry time series: a periodic sampler that turns the
// registry's end-of-run totals into *trajectories*. A TimeSeries owns a
// set of named channels, each a closure over a cumulative counter or a
// cumulative Log2Histogram living in the testbed (block counters, probe
// histograms, pipeline shards); attach() pre-schedules one tick per
// interval on the engine's bulk-timer path (the timing wheel), and every
// tick stores the *delta* since the previous one. Deltas are plain u64
// sums, so merging the per-trial SeriesData of a sharded run is
// commutative — `--series-out` JSON is byte-identical for any --jobs
// value, the same contract as Snapshot::kSimOnly (DESIGN.md §14).
//
// Ticks are pre-scheduled up to a fixed horizon rather than self-
// rearming: Engine::run() drains to empty, and a timer that re-arms
// itself would never let it terminate.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "osnt/common/time.hpp"
#include "osnt/telemetry/histogram.hpp"

namespace osnt::sim {
class Engine;
}  // namespace osnt::sim

namespace osnt::telemetry {

/// The sampled result: per-channel per-interval deltas, detached from the
/// engine that produced it. Copyable, mergeable, serializable.
struct SeriesData {
  static constexpr std::size_t kBuckets = Log2Histogram::kBuckets;

  /// One interval's worth of histogram growth (bucket-wise delta of the
  /// cumulative histogram). Quantiles are recovered per interval at
  /// serialization time by reassembling a Log2Histogram from the buckets.
  struct HistDelta {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };

  struct Channel {
    enum class Kind : std::uint8_t { kCounter, kHistogram };
    Kind kind = Kind::kCounter;
    std::vector<std::uint64_t> deltas;  ///< kCounter: one delta per interval
    std::vector<HistDelta> hist;        ///< kHistogram: one delta per interval
  };

  Picos interval = 0;
  /// Duration covered by the final sample when the run did not end on an
  /// interval boundary (0 = the last sample is a full interval).
  Picos tail = 0;
  std::uint64_t trials = 0;
  /// std::map: sorted iteration keeps the JSON deterministic.
  std::map<std::string, Channel> channels;

  [[nodiscard]] bool empty() const noexcept { return channels.empty(); }
  [[nodiscard]] std::size_t intervals() const noexcept;

  /// Element-wise sum of another trial's series (pads the shorter side
  /// with zeros; channel sets are unioned). Commutative and associative,
  /// so any merge order — and any worker count — yields the same bytes.
  void merge_from(const SeriesData& o);

  /// Deterministic JSON: schema "osnt.series.v1". Counter channels carry
  /// "delta" + "rate_per_s"; histogram channels carry "count", "mean",
  /// "p50", "p99" — one element per interval. Doubles render via %.17g,
  /// the same shortest-round-trip convention as the registry snapshot.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] bool write_json(const std::string& path) const;
};

/// The live sampler. Register channels, attach to an engine, run the
/// simulation, call finish(), then take() the data.
class TimeSeries {
 public:
  /// `interval` must be positive.
  explicit TimeSeries(Picos interval);

  /// Channel getters return *cumulative* values; the sampler differences
  /// consecutive reads. They are invoked from engine context at tick time
  /// and must outlive the attached run (capture testbed objects by
  /// reference/pointer). Re-adding a name replaces the getter.
  void add_counter(const std::string& name,
                   std::function<std::uint64_t()> get);
  void add_histogram(const std::string& name,
                     std::function<Log2Histogram()> get);

  /// Pre-schedule ticks at k*interval for k = 1..floor(horizon/interval)
  /// on the bulk-timer (wheel) path under EventCategory::kMon. Call once,
  /// after the channels are registered and before the engine runs.
  void attach(sim::Engine& eng, Picos horizon);

  /// Capture the trailing partial interval (anything after the last tick
  /// up to the engine's current time). Call after the run completes.
  void finish();

  [[nodiscard]] const SeriesData& data() const noexcept { return data_; }
  [[nodiscard]] SeriesData take() noexcept { return std::move(data_); }
  [[nodiscard]] Picos interval() const noexcept { return data_.interval; }

 private:
  void tick();

  struct CounterChan {
    std::string name;
    std::function<std::uint64_t()> get;
    std::uint64_t prev = 0;
  };
  struct HistChan {
    std::string name;
    std::function<Log2Histogram()> get;
    Log2Histogram prev;
  };

  sim::Engine* eng_ = nullptr;
  Picos last_tick_ = 0;
  std::vector<CounterChan> counters_;
  std::vector<HistChan> hists_;
  SeriesData data_;
};

}  // namespace osnt::telemetry
