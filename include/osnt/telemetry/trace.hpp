// Sim-time event tracing in the Chrome trace_event JSON array format, so
// a run can be opened in Perfetto / chrome://tracing. Timestamps are
// *simulated* picoseconds rendered as microseconds (Chrome's `ts` unit) —
// the trace shows what the simulated universe did, not how long the host
// took to compute it; that is what makes traces byte-identical across
// --jobs values. Tracks map to Chrome threads (one `tid` per registered
// track, named via thread_name metadata).
//
// Not thread-safe: one recorder serves one engine on one thread, matching
// the one-engine-per-trial execution model. Event names must be string
// literals (or otherwise outlive the recorder) — nothing is copied on the
// record path, which keeps a slice record at vector-push-back cost.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "osnt/common/time.hpp"

namespace osnt::telemetry {

class TraceRecorder {
 public:
  using TrackId = std::uint32_t;

  /// `max_events` bounds memory; records past the cap are dropped and
  /// counted (a bounded trace beats an OOM mid-experiment).
  explicit TraceRecorder(std::size_t max_events = std::size_t{1} << 22)
      : max_events_(max_events) {}

  /// Register (or look up) a track by name; equal names share a track.
  TrackId track(const std::string& name);

  /// Duration slice [start, start+dur] in sim time. dur 0 is a valid
  /// zero-width slice (an engine handler is instantaneous in sim time).
  void complete(TrackId t, const char* name, Picos start, Picos dur) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(Event{name, start, dur, t, 'X'});
  }

  /// Instant marker at `at`.
  void instant(TrackId t, const char* name, Picos at) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(Event{name, at, 0, t, 'i'});
  }

  /// Counter sample at `at`: renders as a stepped value-over-time track
  /// in Perfetto (one series per `name` within the track). This is how
  /// cwnd sawtooths and rate estimates become visible next to the frame
  /// slices they explain.
  void counter(TrackId t, const char* name, Picos at, std::uint64_t value) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(Event{name, at, static_cast<Picos>(value), t, 'C'});
  }

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t track_count() const noexcept {
    return tracks_.size();
  }

  /// Drop recorded events (tracks survive).
  void clear() noexcept {
    events_.clear();
    dropped_ = 0;
  }

  /// Emit the JSON array: thread_name metadata for every track, then the
  /// events in record order. Deterministic byte-for-byte for identical
  /// recordings.
  void write_chrome_json(std::ostream& os) const;
  bool write_chrome_json(const std::string& path) const;

 private:
  struct Event {
    const char* name;
    Picos start;
    Picos dur;  ///< slice duration for 'X'; raw counter value for 'C'
    TrackId track;
    char ph;
  };

  std::vector<std::string> tracks_;
  std::vector<Event> events_;
  std::size_t max_events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace osnt::telemetry
