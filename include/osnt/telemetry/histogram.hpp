// Fixed-bucket log2 latency histograms (cf. P4TG's in-pipeline RTT
// histograms): 65 power-of-two buckets cover the full uint64 range with
// no configuration, and recording is a branch-free bucket increment —
// bit_width(v) indexes the bucket directly. Quantiles are recovered by
// linear interpolation inside a bucket, clamped to the observed min/max,
// which is exact for single-valued streams and rank-accurate for dense
// ones (see tests/test_telemetry.cpp for the error characterization).
//
// `Log2Histogram` is the plain, single-threaded accumulator hot layers
// keep locally (one engine/pipeline = one shard); the thread-safe
// registry-side accumulator that shards merge into lives in registry.hpp.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

namespace osnt::telemetry {

class Log2Histogram {
 public:
  /// Bucket b=0 holds only the value 0; bucket b>=1 holds [2^(b-1), 2^b).
  static constexpr std::size_t kBuckets = 65;

  [[nodiscard]] static constexpr std::size_t bucket_of(
      std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  [[nodiscard]] static constexpr std::uint64_t bucket_lo(
      std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  /// Inclusive upper edge.
  [[nodiscard]] static constexpr std::uint64_t bucket_hi(
      std::size_t b) noexcept {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) noexcept {
    ++counts_[bucket_of(v)];
    ++count_;
    sum_ += v;
    min_ = v < min_ ? v : min_;
    max_ = v > max_ ? v : max_;
  }

  void merge(const Log2Histogram& o) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += o.counts_[b];
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = o.min_ < min_ ? o.min_ : min_;
    max_ = o.max_ > max_ ? o.max_ : max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ ? min_ : 0;
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return count_ ? max_ : 0;
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const {
    return counts_.at(b);
  }

  /// q in [0,1]. Walks the cumulative counts to the bucket holding rank
  /// q*(count-1) (the same 0-based rank convention as SampleSet), then
  /// interpolates linearly across the bucket span by rank fraction and
  /// clamps to [min, max]. 0 on an empty histogram.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(count_ - 1);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t c = counts_[b];
      if (c == 0) continue;
      if (rank <= static_cast<double>(cum + c - 1)) {
        const double lo = static_cast<double>(bucket_lo(b));
        const double hi = static_cast<double>(bucket_hi(b));
        const double frac =
            c == 1 ? 0.0
                   : (rank - static_cast<double>(cum)) /
                         static_cast<double>(c - 1);
        return std::clamp(lo + (hi - lo) * frac, static_cast<double>(min_),
                          static_cast<double>(max_));
      }
      cum += c;
    }
    return static_cast<double>(max_);
  }

  void reset() noexcept { *this = Log2Histogram{}; }

  /// Reassemble from raw accumulators (SharedHistogram::snapshot). `min`
  /// must be the all-ones sentinel when `count` is 0.
  [[nodiscard]] static Log2Histogram from_parts(
      const std::array<std::uint64_t, kBuckets>& counts, std::uint64_t count,
      std::uint64_t sum, std::uint64_t min, std::uint64_t max) noexcept {
    Log2Histogram h;
    h.counts_ = counts;
    h.count_ = count;
    h.sum_ = sum;
    h.min_ = min;
    h.max_ = max;
    return h;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace osnt::telemetry
