// Synthetic trace production: render a TemplateSource + timing model
// into an in-memory record list or a .pcap on disk — the tooling used to
// prepare replay inputs without a live capture.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "osnt/burst/pattern.hpp"
#include "osnt/gen/models.hpp"
#include "osnt/gen/source.hpp"
#include "osnt/net/pcap.hpp"

namespace osnt::gen {

/// Bridge from osnt::burst envelopes to the GapModel seam: renders a
/// BurstSchedule over `horizon` and replays its inter-departure gaps, so
/// synthesize_trace / synthesize_trace_file can turn any burst pattern
/// into a replayable .pcap without a live run. The requested mean is
/// ignored — the pattern's own timing (rate, period, duty, ...) IS the
/// timeline; `min_gap` still clamps, as for every GapModel. When the
/// schedule runs out the envelope wraps, so a trace can be longer than
/// one horizon.
class BurstEnvelopeGap final : public GapModel {
 public:
  /// Throws burst::BurstError on an invalid config/horizon or an empty
  /// schedule.
  BurstEnvelopeGap(const burst::PatternConfig& cfg, Picos horizon);
  [[nodiscard]] Picos sample(Rng& rng, Picos mean, Picos min_gap) override;

 private:
  std::vector<Picos> departures_;  ///< absolute, flattened from the schedule
  std::size_t next_ = 1;
  Picos wrap_gap_ = 0;  ///< last departure → first of the next horizon
};

struct SynthSpec {
  std::size_t frames = 1000;
  /// Mean inter-departure time in the trace timeline.
  std::uint64_t mean_gap_ns = 1000;
  std::uint64_t start_ns = 0;
  std::uint64_t seed = 7;
};

/// Draw `spec.frames` packets from `source`, spacing them with `gaps`
/// around the requested mean. The source must yield at least that many
/// packets.
[[nodiscard]] std::vector<net::PcapRecord> synthesize_trace(
    PacketSource& source, GapModel& gaps, const SynthSpec& spec);

/// Convenience: synthesize and write to a nanosecond .pcap; returns the
/// number of records written.
std::size_t synthesize_trace_file(const std::string& path,
                                  PacketSource& source, GapModel& gaps,
                                  const SynthSpec& spec);

}  // namespace osnt::gen
