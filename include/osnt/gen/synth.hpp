// Synthetic trace production: render a TemplateSource + timing model
// into an in-memory record list or a .pcap on disk — the tooling used to
// prepare replay inputs without a live capture.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "osnt/gen/models.hpp"
#include "osnt/gen/source.hpp"
#include "osnt/net/pcap.hpp"

namespace osnt::gen {

struct SynthSpec {
  std::size_t frames = 1000;
  /// Mean inter-departure time in the trace timeline.
  std::uint64_t mean_gap_ns = 1000;
  std::uint64_t start_ns = 0;
  std::uint64_t seed = 7;
};

/// Draw `spec.frames` packets from `source`, spacing them with `gaps`
/// around the requested mean. The source must yield at least that many
/// packets.
[[nodiscard]] std::vector<net::PcapRecord> synthesize_trace(
    PacketSource& source, GapModel& gaps, const SynthSpec& spec);

/// Convenience: synthesize and write to a nanosecond .pcap; returns the
/// number of records written.
std::size_t synthesize_trace_file(const std::string& path,
                                  PacketSource& source, GapModel& gaps,
                                  const SynthSpec& spec);

}  // namespace osnt::gen
