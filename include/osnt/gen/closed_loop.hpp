// ClosedLoopSource: the seam between a stateful transport sender and the
// open-loop TX pipeline. Protocol endpoints offer() ready-to-send frames
// into a bounded queue (the model of a shallow bottleneck buffer — a full
// queue tail-drops, which is precisely the congestion signal closed-loop
// senders exist to react to); the TX pipeline pulls from the queue at its
// configured rate. While the queue is dry the source reports blocked() so
// the pipeline parks instead of terminating; offering into an empty queue
// kicks the pipeline awake through the registered callback.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "osnt/gen/source.hpp"

namespace osnt::gen {

class ClosedLoopSource final : public PacketSource {
 public:
  /// `queue_limit` bounds the number of queued frames (0 = unbounded —
  /// only sensible for tests; real bottlenecks are shallow).
  explicit ClosedLoopSource(std::size_t queue_limit = 0)
      : queue_limit_(queue_limit) {}

  /// Called by the pipeline owner after set_source/start: wakes the
  /// pipeline when offer() refills an empty queue (TxPipeline::kick).
  void set_kick(std::function<void()> kick) { kick_ = std::move(kick); }

  /// True when the next offer() would tail-drop. Senders may probe this
  /// before serializing a frame and skip the build entirely.
  [[nodiscard]] bool full() const {
    return queue_limit_ != 0 && queue_.size() >= queue_limit_;
  }

  /// Record a tail-drop for a frame the sender elided building because
  /// full() was already true — keeps drops() identical to the path where
  /// the frame is built and then refused by offer().
  void note_tail_drop() { ++drops_; }

  /// Enqueue a frame for transmission. Returns false (and counts a drop)
  /// when the queue is full — the frame is lost exactly as a full switch
  /// buffer would lose it.
  bool offer(net::Packet pkt) {
    if (full()) {
      ++drops_;
      return false;
    }
    const bool was_empty = queue_.empty();
    queue_.push_back(std::move(pkt));
    ++offered_;
    if (was_empty && kick_) kick_();
    return true;
  }

  /// After close(), a drained queue ends generation instead of parking.
  void close() { closed_ = true; }

  [[nodiscard]] std::optional<TimedPacket> next() override {
    if (queue_.empty()) return std::nullopt;
    TimedPacket tp{std::move(queue_.front()), std::nullopt};
    queue_.pop_front();
    return tp;
  }

  [[nodiscard]] bool blocked() const override { return !closed_; }

  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::size_t queue_limit() const { return queue_limit_; }

 private:
  std::size_t queue_limit_;
  std::deque<net::Packet> queue_;
  std::function<void()> kick_;
  bool closed_ = false;
  std::uint64_t offered_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace osnt::gen
