// Synthetic traffic from a packet template: N concurrent UDP/TCP flows
// with configurable addressing, a size distribution, and reserved space
// for the embedded TX timestamp.
#pragma once

#include <cstdint>
#include <memory>

#include "osnt/common/random.hpp"
#include "osnt/gen/models.hpp"
#include "osnt/gen/source.hpp"
#include "osnt/net/headers.hpp"

namespace osnt::gen {

struct TemplateConfig {
  net::MacAddr src_mac = net::MacAddr::from_index(1);
  net::MacAddr dst_mac = net::MacAddr::from_index(2);
  net::Ipv4Addr src_ip = net::Ipv4Addr::of(10, 0, 0, 1);
  net::Ipv4Addr dst_ip = net::Ipv4Addr::of(10, 0, 1, 1);
  std::uint16_t src_port = 1024;
  std::uint16_t dst_port = 5001;
  std::uint8_t protocol = net::ipproto::kUdp;  ///< kUdp or kTcp
  std::uint16_t vlan_id = 0;                   ///< 0 = untagged

  /// Flows rotate round-robin; flow i offsets dst_ip/ports by i.
  std::uint32_t flow_count = 1;
  /// Vary dst_ip (vs only ports) across flows.
  bool vary_dst_ip = false;

  std::uint64_t count = 0;  ///< frames to produce; 0 = unbounded
  std::uint64_t seed = 1;
};

class TemplateSource final : public PacketSource {
 public:
  /// `size_model` must not be null.
  TemplateSource(TemplateConfig cfg, std::unique_ptr<SizeModel> size_model);

  [[nodiscard]] std::optional<TimedPacket> next() override;
  void rewind() override { produced_ = 0; }

  [[nodiscard]] std::uint64_t produced() const noexcept { return produced_; }

 private:
  TemplateConfig cfg_;
  std::unique_ptr<SizeModel> size_;
  Rng rng_;
  std::uint64_t produced_ = 0;
};

}  // namespace osnt::gen
