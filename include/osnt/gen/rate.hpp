// Rate control: converts a user-facing rate specification ("4.2 Gb/s",
// "80% of line rate", "1.2 Mpps", "IPG 500 ns") into per-frame
// inter-departure times, exactly like OSNT's tuneable per-packet
// inter-departure time knob.
#pragma once

#include <cstdint>

#include "osnt/common/time.hpp"
#include "osnt/net/packet.hpp"

namespace osnt::gen {

enum class RateMode : std::uint8_t {
  kLineRateFraction,  ///< value = fraction of line rate (0, 1]
  kGbps,              ///< value = L1 rate in Gb/s (incl. preamble + IFG)
  kPps,               ///< value = packets per second
  kGapNanos,          ///< value = gap between frames (end→start), ns
};

struct RateSpec {
  RateMode mode = RateMode::kLineRateFraction;
  double value = 1.0;

  [[nodiscard]] static RateSpec line_rate(double fraction = 1.0) noexcept {
    return {RateMode::kLineRateFraction, fraction};
  }
  [[nodiscard]] static RateSpec gbps(double g) noexcept {
    return {RateMode::kGbps, g};
  }
  [[nodiscard]] static RateSpec pps(double p) noexcept {
    return {RateMode::kPps, p};
  }
  [[nodiscard]] static RateSpec gap_ns(double ns) noexcept {
    return {RateMode::kGapNanos, ns};
  }
};

class RateController {
 public:
  RateController(RateSpec spec, double link_gbps = 10.0) noexcept
      : spec_(spec), link_gbps_(link_gbps) {}

  /// Start-to-start departure interval for a frame occupying
  /// `line_len_bytes` on the medium (frame + FCS + preamble + IFG).
  [[nodiscard]] Picos departure_interval(std::size_t line_len_bytes) const noexcept;

  /// The offered L1 rate (Gb/s) this spec implies for a fixed frame size.
  [[nodiscard]] double offered_gbps(std::size_t line_len_bytes) const noexcept;

  [[nodiscard]] const RateSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] double link_gbps() const noexcept { return link_gbps_; }

 private:
  RateSpec spec_;
  double link_gbps_;
};

}  // namespace osnt::gen
