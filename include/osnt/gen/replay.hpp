// PCAP replay source — OSNT's headline generator feature: replay a
// captured trace with its recorded inter-departure times (optionally
// time-scaled), or override them entirely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "osnt/gen/source.hpp"
#include "osnt/net/pcap.hpp"

namespace osnt::gen {

enum class ReplayTiming : std::uint8_t {
  kAsRecorded,  ///< recorded gaps, divided by `speedup`
  kIgnore,      ///< no gap hints; the rate controller paces
};

struct ReplayConfig {
  ReplayTiming timing = ReplayTiming::kAsRecorded;
  double speedup = 1.0;   ///< 2.0 = replay twice as fast
  std::uint64_t loops = 1; ///< times through the trace; 0 = forever
};

class PcapReplaySource final : public PacketSource {
 public:
  /// Load a trace from disk. Throws on I/O or format errors.
  PcapReplaySource(const std::string& path, ReplayConfig cfg = ReplayConfig());
  /// Replay an in-memory record list (e.g. a synthetic trace).
  PcapReplaySource(std::vector<net::PcapRecord> records,
                   ReplayConfig cfg = ReplayConfig());

  [[nodiscard]] std::optional<TimedPacket> next() override;
  void rewind() override;

  [[nodiscard]] std::size_t trace_size() const noexcept {
    return records_.size();
  }

 private:
  std::vector<net::PcapRecord> records_;
  ReplayConfig cfg_;
  std::size_t idx_ = 0;
  std::uint64_t loops_done_ = 0;
};

}  // namespace osnt::gen
