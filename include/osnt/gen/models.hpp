// Traffic shape models: inter-arrival processes (how bursty) and frame
// size distributions (how big). These compose with the RateController:
// the controller fixes the *mean* interval, the gap model shapes its
// distribution around that mean.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "osnt/common/random.hpp"
#include "osnt/common/time.hpp"

namespace osnt::gen {

// ------------------------------------------------------------- gap models

/// Shapes departure intervals around a target mean.
class GapModel {
 public:
  virtual ~GapModel() = default;
  /// `mean` is the interval the rate controller asked for; the returned
  /// value must have (approximately) that mean. `min_gap` is the frame
  /// air time — intervals below it are meaningless on the wire.
  [[nodiscard]] virtual Picos sample(Rng& rng, Picos mean, Picos min_gap) = 0;
};

/// CBR: every interval exactly the mean.
class ConstantGap final : public GapModel {
 public:
  [[nodiscard]] Picos sample(Rng&, Picos mean, Picos min_gap) override;
};

/// Poisson arrivals: exponential intervals (mean-preserving, clamped to
/// the air time, which slightly raises the effective mean at high load —
/// exactly as a real shaped NIC behaves).
class PoissonGap final : public GapModel {
 public:
  [[nodiscard]] Picos sample(Rng& rng, Picos mean, Picos min_gap) override;
};

/// On/off bursts: `burst_len` frames back-to-back at line rate, then an
/// idle gap sized so the long-run mean matches the requested mean.
class BurstGap final : public GapModel {
 public:
  explicit BurstGap(std::size_t burst_len) noexcept
      : burst_len_(burst_len ? burst_len : 1) {}
  [[nodiscard]] Picos sample(Rng& rng, Picos mean, Picos min_gap) override;

 private:
  std::size_t burst_len_;
  std::size_t in_burst_ = 0;
};

/// Heavy-tailed gaps: bounded-Pareto inter-departure times rescaled to
/// the requested mean — a cheap stand-in for self-similar traffic, whose
/// long bursts and long silences stress queues far more than Poisson at
/// the same average load.
class ParetoGap final : public GapModel {
 public:
  /// alpha in (1, 2] controls tail weight (smaller = burstier).
  explicit ParetoGap(double alpha = 1.5);
  [[nodiscard]] Picos sample(Rng& rng, Picos mean, Picos min_gap) override;

 private:
  double alpha_;
  double raw_mean_;  ///< E[X] of the unscaled bounded Pareto
};

// ------------------------------------------------------------ size models

/// Frame size (including FCS) distribution.
class SizeModel {
 public:
  virtual ~SizeModel() = default;
  [[nodiscard]] virtual std::size_t sample(Rng& rng) = 0;
};

class FixedSize final : public SizeModel {
 public:
  explicit FixedSize(std::size_t size) noexcept : size_(size) {}
  [[nodiscard]] std::size_t sample(Rng&) override { return size_; }

 private:
  std::size_t size_;
};

class UniformSize final : public SizeModel {
 public:
  UniformSize(std::size_t lo, std::size_t hi) noexcept : lo_(lo), hi_(hi) {}
  [[nodiscard]] std::size_t sample(Rng& rng) override;

 private:
  std::size_t lo_, hi_;
};

/// Classic "simple IMIX": 64 B : 594 B : 1518 B at 7 : 4 : 1.
class ImixSize final : public SizeModel {
 public:
  [[nodiscard]] std::size_t sample(Rng& rng) override;
};

/// Arbitrary empirical distribution (size, weight) pairs.
class WeightedSize final : public SizeModel {
 public:
  struct Entry {
    std::size_t size;
    double weight;
  };
  explicit WeightedSize(std::vector<Entry> entries);
  [[nodiscard]] std::size_t sample(Rng& rng) override;

 private:
  std::vector<Entry> entries_;
  double total_weight_ = 0.0;
};

}  // namespace osnt::gen
