// Trace splitting for multi-port replay: partition a PCAP trace into N
// per-port sources by flow hash, so one recorded trace can be replayed
// "at full line-rate across the four card ports" while keeping each flow
// on a single port (no intra-flow reordering).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "osnt/gen/replay.hpp"
#include "osnt/net/pcap.hpp"

namespace osnt::gen {

/// Partition `records` into `ports` buckets by 5-tuple hash (non-IP
/// frames round-robin). Relative timing within each bucket is preserved;
/// each bucket becomes an independent PcapReplaySource.
[[nodiscard]] std::vector<std::unique_ptr<PcapReplaySource>> split_trace(
    const std::vector<net::PcapRecord>& records, std::size_t ports,
    ReplayConfig cfg = ReplayConfig());

/// Same, loading from a file.
[[nodiscard]] std::vector<std::unique_ptr<PcapReplaySource>> split_trace_file(
    const std::string& path, std::size_t ports,
    ReplayConfig cfg = ReplayConfig());

}  // namespace osnt::gen
