// PacketSource: where the TX pipeline pulls frames from. Implementations:
// TemplateSource (synthetic flows) and PcapReplaySource (trace replay).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "osnt/common/time.hpp"
#include "osnt/net/packet.hpp"

namespace osnt::gen {

/// A frame plus an optional replay gap hint. Sources that replay recorded
/// traffic provide the recorded inter-departure time; synthetic sources
/// leave it empty and let the rate controller decide.
struct TimedPacket {
  net::Packet pkt;
  std::optional<Picos> gap_hint;  ///< start-to-start interval to next frame
};

class PacketSource {
 public:
  virtual ~PacketSource() = default;
  /// Next frame, or nullopt when the source is exhausted.
  [[nodiscard]] virtual std::optional<TimedPacket> next() = 0;
  /// Restart from the beginning (for looped generation); default no-op.
  virtual void rewind() {}
  /// After next() returned nullopt: true means "dry, not done" — the
  /// pipeline parks instead of stopping, and resumes on TxPipeline::kick()
  /// once the source has frames again. Open-loop sources are never
  /// blocked; closed-loop sources (gen::ClosedLoopSource) are blocked
  /// until closed.
  [[nodiscard]] virtual bool blocked() const { return false; }
};

/// Adapter: fragments every IPv4 frame of an inner source at `mtu`
/// (non-IPv4 and already-fitting frames pass through) — the way a tester
/// produces fragmented workloads to stress DUT reassembly/TCAM paths.
class FragmentingSource final : public PacketSource {
 public:
  FragmentingSource(std::unique_ptr<PacketSource> inner, std::size_t mtu);

  [[nodiscard]] std::optional<TimedPacket> next() override;
  void rewind() override;

 private:
  std::unique_ptr<PacketSource> inner_;
  std::size_t mtu_;
  std::vector<net::Packet> backlog_;  ///< fragments awaiting emission
  std::size_t backlog_idx_ = 0;
};

}  // namespace osnt::gen
