// Per-port transmit pipeline: pulls frames from a PacketSource, paces
// them with the rate controller + gap model, takes the TX timestamp from
// the disciplined clock *just before the MAC* (and embeds it at the
// configured offset, as the OSNT generator does), then hands the frame to
// the 10G TX MAC.
#pragma once

#include <cstdint>
#include <memory>

#include "osnt/common/random.hpp"
#include "osnt/gen/models.hpp"
#include "osnt/gen/rate.hpp"
#include "osnt/gen/source.hpp"
#include "osnt/hw/mac10g.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/telemetry/histogram.hpp"
#include "osnt/tstamp/clock.hpp"
#include "osnt/tstamp/embed.hpp"

namespace osnt::gen {

struct TxConfig {
  RateSpec rate = RateSpec::line_rate(1.0);
  bool embed_timestamp = true;
  std::size_t embed_offset = tstamp::kDefaultEmbedOffset;
  Picos start_delay = 0;
  std::uint64_t seed = 99;
};

class TxPipeline {
 public:
  /// The MAC and clock must outlive the pipeline.
  TxPipeline(sim::Engine& eng, hw::TxMac& mac, tstamp::DisciplinedClock& clock,
             TxConfig cfg = TxConfig());
  /// Merges this pipeline's shard (frame counters, frame-size histogram)
  /// into the telemetry registry under `gen.tx.*`.
  ~TxPipeline();

  void set_source(std::unique_ptr<PacketSource> source) {
    source_ = std::move(source);
  }
  /// Replace the default constant gap model (CBR) with e.g. Poisson.
  void set_gap_model(std::unique_ptr<GapModel> model) {
    gap_model_ = std::move(model);
  }

  /// Begin generation `cfg.start_delay` after the current sim time.
  /// Requires a source. Generation ends when the source is exhausted or
  /// stop() is called. A source that reports blocked() parks the pipeline
  /// instead of ending it; kick() resumes.
  void start();
  void stop();

  /// Wake a parked pipeline (source was dry-but-blocked and now has
  /// frames). No-op while a pull is already pending or the pipeline is
  /// stopped. Safe to call from any event handler; the pull happens in
  /// its own immediately-scheduled event, never re-entrantly.
  void kick();

  [[nodiscard]] bool running() const noexcept { return running_; }

  // --- statistics ---
  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return frames_; }
  [[nodiscard]] std::uint64_t wire_bytes_sent() const noexcept { return bytes_; }
  [[nodiscard]] Picos first_departure() const noexcept { return first_dep_; }
  [[nodiscard]] Picos last_departure() const noexcept { return last_dep_; }
  /// Achieved L1 rate over the generation window, Gb/s.
  [[nodiscard]] double achieved_gbps() const noexcept;
  [[nodiscard]] std::uint32_t next_seq() const noexcept { return seq_; }
  /// Frames pulled from the source (sent + rejected by a busy MAC).
  [[nodiscard]] std::uint64_t frames_scheduled() const noexcept {
    return scheduled_;
  }
  [[nodiscard]] std::uint64_t mac_rejects() const noexcept {
    return mac_rejects_;
  }

 private:
  void send_one();

  sim::Engine* eng_;
  hw::TxMac* mac_;
  tstamp::DisciplinedClock* clock_;
  TxConfig cfg_;
  RateController rate_;
  std::unique_ptr<GapModel> gap_model_;
  std::unique_ptr<PacketSource> source_;
  Rng rng_;

  bool running_ = false;
  sim::EventId pending_{};
  std::uint32_t seq_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t mac_rejects_ = 0;
  Picos first_dep_ = -1;
  Picos last_dep_ = -1;
  /// Telemetry shard: wire bytes per sent frame, merged at destruction.
  telemetry::Log2Histogram frame_bytes_;
  telemetry::TraceRecorder::TrackId trace_track_ = 0;
  bool trace_track_set_ = false;
};

}  // namespace osnt::gen
