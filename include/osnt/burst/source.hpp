// BurstSourceBlock: a graph source that plays a BurstSchedule into the
// dataplane. Two emission modes share one schedule, so their frame
// streams are byte- and time-identical:
//
//   batched (default)  ONE engine event per Burst; the handler walks the
//                      SoA range cloning prebuilt per-flow template
//                      packets — the MoonGen-style hot path
//   naive              one engine event per frame, each crafting its
//                      packet from scratch — the reference baseline the
//                      BENCH_engine.json `burst_pps` gate measures against
//
// Frames leave with tx_truth/tx_start at their scheduled departure and a
// serialization window at the pattern rate, exactly the TxPipeline
// convention, so downstream monitor blocks see honest latency samples.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "osnt/burst/schedule.hpp"
#include "osnt/graph/block.hpp"
#include "osnt/net/packet.hpp"

namespace osnt::burst {

struct BurstSourceConfig {
  PatternConfig pattern;
  bool batched = true;
  /// Schedule length. The topology loader fills this from the run
  /// duration when the JSON leaves it unset; start() throws without one.
  Picos horizon = 0;
};

class BurstSourceBlock final : public graph::Block {
 public:
  BurstSourceBlock(sim::Engine& eng, std::string name,
                   BurstSourceConfig cfg = {});
  ~BurstSourceBlock() override;

  /// Builds the schedule and templates, then arms the first emission
  /// event (category kGen). Schedule offsets are relative to now().
  void start() override;

  /// Sources have no inputs; a stray frame is counted as a drop.
  void on_frame(std::size_t in_port, net::Packet pkt, Picos first_bit,
                Picos last_bit) override;

  /// Must be called before start().
  void set_horizon(Picos horizon);

  [[nodiscard]] const BurstSourceConfig& config() const noexcept {
    return cfg_;
  }
  /// Valid after start().
  [[nodiscard]] const BurstSchedule* schedule() const noexcept {
    return sched_.get();
  }
  [[nodiscard]] std::uint64_t bursts_emitted() const noexcept {
    return bursts_;
  }
  /// Wire bytes emitted (incl. FCS, excl. preamble/IFG).
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept {
    return wire_bytes_;
  }

  /// The frame a schedule slot produces, independent of emission mode:
  /// template `flow_id` padded to `frame_size`. Exposed for tests.
  [[nodiscard]] static net::Packet make_frame(const PatternConfig& cfg,
                                              std::uint32_t flow_id,
                                              std::size_t frame_size);

 private:
  void arm_burst(std::size_t burst_idx);
  void emit_burst(std::size_t burst_idx);
  void arm_frame(std::size_t burst_idx, std::size_t offset_in_burst);
  void emit_one(std::size_t frame_idx, Picos burst_start);

  BurstSourceConfig cfg_;
  std::unique_ptr<BurstSchedule> sched_;
  std::vector<net::Packet> templates_;  ///< batched mode, one per flow id
  Picos origin_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t bursts_ = 0;
  std::uint64_t wire_bytes_ = 0;
};

}  // namespace osnt::burst
