// BurstSchedule: the batched (MoonGen-style) precomputation behind
// burst::BurstSourceBlock. The whole envelope over a horizon is rendered
// up front into SoA frame-metadata arrays — per-frame departure offsets,
// wire lengths, and flow ids — partitioned into Bursts, each of which the
// source emits from ONE engine event. Precomputing the schedule is what
// keeps the hot path free of per-frame closures and the result seedable:
// the same (config, horizon) always yields byte-identical frame metadata,
// independent of emission batching or `--jobs`.
#pragma once

#include <cstdint>
#include <vector>

#include "osnt/burst/pattern.hpp"
#include "osnt/common/random.hpp"
#include "osnt/common/time.hpp"

namespace osnt::burst {

/// One contiguous emission group: `count` frames starting at schedule
/// offset `start`, indexing [first, first + count) in the SoA arrays.
struct Burst {
  Picos start = 0;
  std::size_t first = 0;
  std::size_t count = 0;
};

class BurstSchedule {
 public:
  /// Render `cfg`'s envelope over [0, horizon). Throws BurstError on an
  /// invalid config, a non-positive horizon, or a schedule that would
  /// exceed the frame-count guard (kMaxFrames).
  BurstSchedule(const PatternConfig& cfg, Picos horizon);

  /// Runaway guard: a schedule this size (~1 s of 64 B at 40G) is a
  /// config error, not a workload.
  static constexpr std::size_t kMaxFrames = 64u << 20;

  [[nodiscard]] const PatternConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] Picos horizon() const noexcept { return horizon_; }

  [[nodiscard]] const std::vector<Burst>& bursts() const noexcept {
    return bursts_;
  }
  // --- SoA frame metadata, indexed by Burst::first/count ---
  /// Departure (first-bit) offset of frame i relative to its Burst::start.
  [[nodiscard]] const std::vector<Picos>& offsets() const noexcept {
    return offsets_;
  }
  /// Wire length incl. FCS.
  [[nodiscard]] const std::vector<std::uint16_t>& lengths() const noexcept {
    return lengths_;
  }
  /// Template index in [0, cfg.template_count()).
  [[nodiscard]] const std::vector<std::uint32_t>& flow_ids() const noexcept {
    return flow_ids_;
  }

  [[nodiscard]] std::size_t total_frames() const noexcept {
    return offsets_.size();
  }
  [[nodiscard]] std::uint64_t total_wire_bytes() const noexcept {
    return total_wire_bytes_;
  }

 private:
  void build_on_off();
  void build_strobe();
  void build_heavy_tail();
  void build_amplification();
  /// Append one burst of `count` back-to-back `frame_size` frames at
  /// `start`, drawing flow ids from `rng`; enforces kMaxFrames.
  void append_burst(Picos start, std::size_t count, std::size_t frame_size,
                    Rng& rng);

  PatternConfig cfg_;
  Picos horizon_;
  std::vector<Burst> bursts_;
  std::vector<Picos> offsets_;
  std::vector<std::uint16_t> lengths_;
  std::vector<std::uint32_t> flow_ids_;
  std::uint64_t total_wire_bytes_ = 0;
};

}  // namespace osnt::burst
