// osnt::burst — pattern vocabulary for line-rate burst & DDoS envelope
// generation (DESIGN.md §16). A PatternConfig names one of four traffic
// envelopes (P4TG's periodic-pattern vocabulary):
//
//   on_off         square-wave duty-cycle bursts: `duty`·`period` on at
//                  `rate_gbps`, the remainder silent
//   strobe         short max-rate pulses: `pulse_frames` back-to-back
//                  frames at the top of every `period`
//   heavy_tail     self-similar burst loads: Pareto(alpha)-distributed on
//                  periods (mean `mean_on`) separated by exponential idle
//                  gaps (mean `mean_off`)
//   amplification  reflection-shaped many-to-one DDoS: `attackers`
//                  spoofed reflector sources converge on one victim
//                  port, each volley carrying the `amp_factor`-inflated
//                  response to a `request_size`-byte request, gated by a
//                  `period`/`duty` macro envelope (attack waves)
//
// Configs are pure data + validation; the schedule math lives in
// burst::BurstSchedule and the dataplane hookup in burst::BurstSourceBlock.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "osnt/common/time.hpp"

namespace osnt::burst {

/// Configuration or schedule-construction failure.
class BurstError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Pattern { kOnOff, kStrobe, kHeavyTail, kAmplification };

/// Spelled names, in enum order — the vocabulary JSON stanzas accept.
[[nodiscard]] const std::vector<std::string>& known_patterns();
[[nodiscard]] const char* pattern_name(Pattern p) noexcept;
/// Throws BurstError on an unknown name (callers with CLI context add
/// their own did-you-mean before surfacing it).
[[nodiscard]] Pattern pattern_from_name(const std::string& name);

/// L4 framing of generated frames: UDP datagrams (reflection traffic) or
/// bare TCP SYNs (connection-exhaustion floods).
enum class L4 { kUdp, kTcpSyn };

struct PatternConfig {
  Pattern pattern = Pattern::kOnOff;

  // --- common ---
  double rate_gbps = 10.0;      ///< emission rate inside a burst (line rate)
  std::size_t frame_size = 64;  ///< frame incl. FCS (amplification: response)
  std::size_t flows = 16;       ///< spoofed 5-tuple spread (ECMP entropy)
  L4 l4 = L4::kUdp;
  std::uint64_t seed = 1;       ///< loaders derive this from the trial seed

  // --- on_off / strobe / amplification envelope ---
  Picos period = 100 * kPicosPerMicro;
  double duty = 0.5;            ///< on fraction of each period (on_off,
                                ///< amplification macro envelope)

  // --- strobe ---
  std::size_t pulse_frames = 32;

  // --- heavy_tail ---
  double alpha = 1.5;           ///< Pareto shape in (1, 2.5]
  Picos mean_on = 50 * kPicosPerMicro;
  Picos mean_off = 50 * kPicosPerMicro;

  // --- amplification ---
  std::size_t attackers = 64;     ///< spoofed reflector source count
  std::size_t request_size = 64;  ///< bytes of the (unmodeled) request
  double amp_factor = 10.0;       ///< response bytes per request byte

  /// Throws BurstError naming the offending field.
  void validate() const;

  /// Per-frame serialization slot at `rate_gbps` incl. preamble/IFG —
  /// the back-to-back inter-departure time inside a burst.
  [[nodiscard]] Picos slot() const noexcept;

  /// Number of distinct packet templates the pattern draws from
  /// (`attackers` for amplification, `flows` otherwise).
  [[nodiscard]] std::size_t template_count() const noexcept;
};

}  // namespace osnt::burst
