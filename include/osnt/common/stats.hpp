// Streaming statistics and histograms used by every measurement path:
// latency distributions, jitter, rate accuracy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace osnt {

/// Streaming summary: count/mean/variance via Welford, plus min/max.
/// O(1) memory; use SampleSet when exact percentiles are needed.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples; supports exact quantiles. Sorting is deferred and
/// cached. Intended for measurement result sets (≤ millions of samples).
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  [[nodiscard]] double stddev() const noexcept { return stats_.stddev(); }
  [[nodiscard]] double min() const noexcept { return stats_.min(); }
  [[nodiscard]] double max() const noexcept { return stats_.max(); }

  /// Exact quantile by linear interpolation; q in [0,1]. 0 on empty set.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

  void clear();

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  RunningStats stats_;
};

/// Fixed-bin linear histogram over [lo, hi); out-of-range values land in
/// saturating under/overflow bins. Mirrors the hardware stats counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Quantile estimated from bin midpoints.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Render as a terminal bar chart (for CLI tools/bench output).
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace osnt
