// Deterministic pseudo-random source for workload generation and noise
// models. Uses xoshiro256** so simulations replay bit-identically across
// platforms (std::mt19937 distributions are not portable across libstdc++
// versions for some distributions).
#pragma once

#include <array>
#include <cstdint>

namespace osnt {

/// splitmix64 finalizer: one full avalanche round, every input bit affects
/// every output bit. The single mixing primitive behind all seed
/// derivation in the codebase (Rng state init, retry-seed rederivation,
/// fault-event streams, per-flow ISN streams).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Derive the `stream`-th decorrelated seed from `base`: splitmix64 over
/// base ⊕ stream·golden-ratio. Different streams give independent,
/// well-mixed seeds even when `base` values are small and sequential.
/// Note stream 0 is NOT the identity — callers that need "stream 0 means
/// the base seed itself" (e.g. core::rederive_seed) must special-case it.
[[nodiscard]] constexpr std::uint64_t derive_seed(
    std::uint64_t base, std::uint64_t stream) noexcept {
  return splitmix64(base ^ (0x9E3779B97F4A7C15ull * stream));
}

/// xoshiro256** PRNG. Deterministic and seedable; satisfies
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x05317A915EC0DE5ull) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo,
                                          std::uint64_t hi) noexcept;

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Bounded Pareto variate with shape `alpha` on [lo, hi].
  [[nodiscard]] double pareto(double alpha, double lo, double hi) noexcept;

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool chance(double p) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace osnt
