// Deterministic pseudo-random source for workload generation and noise
// models. Uses xoshiro256** so simulations replay bit-identically across
// platforms (std::mt19937 distributions are not portable across libstdc++
// versions for some distributions).
#pragma once

#include <array>
#include <cstdint>

namespace osnt {

/// xoshiro256** PRNG. Deterministic and seedable; satisfies
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x05317A915EC0DE5ull) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo,
                                          std::uint64_t hi) noexcept;

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Bounded Pareto variate with shape `alpha` on [lo, hi].
  [[nodiscard]] double pareto(double alpha, double lo, double hi) noexcept;

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool chance(double p) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace osnt
