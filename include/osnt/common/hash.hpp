// Packet hashing primitives modelled on the OSNT monitor's hardware hash
// block: used for packet thinning/sampling and for flow dispatch.
#pragma once

#include <cstdint>

#include "osnt/common/types.hpp"

namespace osnt {

/// FNV-1a 64-bit hash.
[[nodiscard]] std::uint64_t fnv1a64(ByteSpan data) noexcept;

/// Bob Jenkins one-at-a-time hash (32-bit), the classic cheap hardware-
/// friendly mix used for flow hashing.
[[nodiscard]] std::uint32_t jenkins_oaat(ByteSpan data) noexcept;

/// 64-bit mix function (splitmix64 finaliser); good for hashing small keys.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace osnt
