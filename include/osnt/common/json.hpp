// Strict recursive-descent JSON reader shared by every declarative input
// the simulator accepts (fault plans, topology files). Inputs are small
// hand-written documents, so this parses into a value tree and favors
// diagnostics over speed: errors carry the 1-based line/column of the
// offending byte, and callers layer their own unknown-key/unknown-type
// hard errors on top (typos must not silently no-op). No external
// dependency: the toolchain image is all we may assume.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace osnt::json {

/// Parse failure, positioned. what() already includes "line L column C".
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, std::size_t line, std::size_t column)
      : std::runtime_error(msg), line_(line), column_(column) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

struct Value {
  enum class Type : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // preserves order
  /// 1-based position of the value's first byte in the source text, so
  /// schema-level errors ("unknown key") can point at the document too.
  std::size_t line = 0;
  std::size_t column = 0;

  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] bool is(Type t) const noexcept { return type == t; }
  /// "line L column C" — for prefixing schema diagnostics.
  [[nodiscard]] std::string where() const;
};

/// Parse a complete JSON document (trailing content is an error).
/// `context` prefixes error messages, e.g. "topology JSON".
[[nodiscard]] Value parse(const std::string& text,
                          const std::string& context = "JSON");

/// Slurp a file; throws ParseError (line 0) when it cannot be read.
[[nodiscard]] std::string read_file(const std::string& path,
                                    const std::string& context = "JSON");

}  // namespace osnt::json
