// Tiny declarative flag parser for the OSNT command-line drivers. Flags
// are `--name value` or `--name=value`; bools may omit the value.
// Unknown flags are an error; `--help` renders the registered table.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace osnt {

/// Levenshtein distance with two rolling rows — names are short, so the
/// quadratic DP is microscopic. Shared by the CLI's unknown-flag hint and
/// the topology loader's unknown-block-type hint.
[[nodiscard]] std::size_t edit_distance(const std::string& a,
                                        const std::string& b);

/// Closest candidate to a (misspelled) name, or "" when nothing is close
/// enough to be a plausible typo: at most 1 edit for short names, scaling
/// to roughly a third of the name's length for long ones.
[[nodiscard]] std::string suggest_nearest(
    const std::string& name, const std::vector<std::string>& candidates);

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Register flags (call before parse()). `target` must outlive parse().
  void add_flag(const std::string& name, std::string* target,
                const std::string& help);
  void add_flag(const std::string& name, double* target,
                const std::string& help);
  void add_flag(const std::string& name, std::int64_t* target,
                const std::string& help);
  void add_flag(const std::string& name, bool* target,
                const std::string& help);

  /// Parse argv. Returns false (after printing a message) on bad input or
  /// --help; callers should exit(0) on help_requested(), exit(1) otherwise.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const noexcept { return help_; }
  /// Positional (non-flag) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

  /// Closest registered flag to a (misspelled) name, or "" when nothing
  /// is close enough to be a plausible typo. Exposed for tests.
  [[nodiscard]] std::string nearest_flag(const std::string& name) const;

 private:
  enum class Kind : std::uint8_t { kString, kDouble, kInt, kBool };
  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  [[nodiscard]] Flag* find(const std::string& name);
  [[nodiscard]] bool assign(Flag& flag, const std::string& value);

  std::string description_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
  bool help_ = false;
};

}  // namespace osnt
