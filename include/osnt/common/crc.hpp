// CRC32 (IEEE 802.3 polynomial) used for Ethernet FCS and packet hashing.
#pragma once

#include <cstdint>

#include "osnt/common/types.hpp"

namespace osnt {

/// Incremental CRC32 (reflected, poly 0xEDB88320). Initialise with
/// `Crc32{}`, feed bytes with update(), read with value().
class Crc32 {
 public:
  void update(ByteSpan data) noexcept;
  void update(std::uint8_t byte) noexcept;

  /// Finalised CRC (post-inverted). May be called repeatedly.
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }

  void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC32 of a buffer.
[[nodiscard]] std::uint32_t crc32(ByteSpan data) noexcept;

/// Ethernet FCS as transmitted on the wire (little-endian byte order of the
/// CRC32 over the frame from destination MAC through payload).
[[nodiscard]] std::uint32_t ethernet_fcs(ByteSpan frame_without_fcs) noexcept;

}  // namespace osnt
