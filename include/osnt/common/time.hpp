// Ground-truth simulation time base. The discrete-event engine runs in
// integer picoseconds: fine enough to represent a single bit-time at
// 10 Gb/s (100 ps) exactly, and a 64-bit count still spans ~106 days.
//
// Note the deliberate split: `Picos` is *ground truth* (what the simulated
// universe does); device-observable time is `tstamp::Timestamp`, produced
// by a (possibly drifting, GPS-disciplined) clock model. The paper's
// precision claims are statements about the gap between the two.
#pragma once

#include <cstdint>

namespace osnt {

using Picos = std::int64_t;

inline constexpr Picos kPicosPerNano = 1'000;
inline constexpr Picos kPicosPerMicro = 1'000'000;
inline constexpr Picos kPicosPerMilli = 1'000'000'000;
inline constexpr Picos kPicosPerSec = 1'000'000'000'000;

[[nodiscard]] constexpr double to_seconds(Picos t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kPicosPerSec);
}
[[nodiscard]] constexpr double to_nanos(Picos t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kPicosPerNano);
}
[[nodiscard]] constexpr double to_micros(Picos t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kPicosPerMicro);
}
[[nodiscard]] constexpr Picos from_nanos(double ns) noexcept {
  return static_cast<Picos>(ns * static_cast<double>(kPicosPerNano));
}
[[nodiscard]] constexpr Picos from_micros(double us) noexcept {
  return static_cast<Picos>(us * static_cast<double>(kPicosPerMicro));
}
[[nodiscard]] constexpr Picos from_seconds(double s) noexcept {
  return static_cast<Picos>(s * static_cast<double>(kPicosPerSec));
}

}  // namespace osnt
