// Minimal leveled logger. Library code logs sparingly (warnings for
// misconfiguration); tools raise verbosity for debugging.
#pragma once

#include <cstdio>
#include <string>

namespace osnt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Tag this thread's log lines with a worker id (core::Runner pool slot);
/// -1 (the default) clears the tag. Thread-local.
void set_log_worker(int id) noexcept;
[[nodiscard]] int log_worker() noexcept;

/// Core sink. Thread-safe: sink writes are serialized by a mutex so lines
/// from concurrent trials never interleave, and each line carries the
/// calling thread's worker tag when one is set.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
std::string format_log(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define OSNT_LOG(level, ...)                                            \
  do {                                                                  \
    if (static_cast<int>(level) >= static_cast<int>(::osnt::log_level())) \
      ::osnt::log_message(level, ::osnt::detail::format_log(__VA_ARGS__)); \
  } while (0)

#define OSNT_DEBUG(...) OSNT_LOG(::osnt::LogLevel::kDebug, __VA_ARGS__)
#define OSNT_INFO(...) OSNT_LOG(::osnt::LogLevel::kInfo, __VA_ARGS__)
#define OSNT_WARN(...) OSNT_LOG(::osnt::LogLevel::kWarn, __VA_ARGS__)
#define OSNT_ERROR(...) OSNT_LOG(::osnt::LogLevel::kError, __VA_ARGS__)

}  // namespace osnt
