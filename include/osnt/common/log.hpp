// Minimal leveled logger. Library code logs sparingly (warnings for
// misconfiguration); tools raise verbosity for debugging.
#pragma once

#include <cstdio>
#include <string>

namespace osnt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Core sink. Thread-safe (single fprintf per message).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
std::string format_log(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define OSNT_LOG(level, ...)                                            \
  do {                                                                  \
    if (static_cast<int>(level) >= static_cast<int>(::osnt::log_level())) \
      ::osnt::log_message(level, ::osnt::detail::format_log(__VA_ARGS__)); \
  } while (0)

#define OSNT_DEBUG(...) OSNT_LOG(::osnt::LogLevel::kDebug, __VA_ARGS__)
#define OSNT_INFO(...) OSNT_LOG(::osnt::LogLevel::kInfo, __VA_ARGS__)
#define OSNT_WARN(...) OSNT_LOG(::osnt::LogLevel::kWarn, __VA_ARGS__)
#define OSNT_ERROR(...) OSNT_LOG(::osnt::LogLevel::kError, __VA_ARGS__)

}  // namespace osnt
