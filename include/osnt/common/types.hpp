// Basic shared types and byte-order helpers used across the OSNT library.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

namespace osnt {

using ByteSpan = std::span<const std::uint8_t>;
using MutByteSpan = std::span<std::uint8_t>;
using Bytes = std::vector<std::uint8_t>;

/// Read a big-endian (network order) integer from a raw byte pointer.
[[nodiscard]] constexpr std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}
[[nodiscard]] constexpr std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}
[[nodiscard]] constexpr std::uint64_t load_be64(const std::uint8_t* p) noexcept {
  return (std::uint64_t{load_be32(p)} << 32) | load_be32(p + 4);
}

constexpr void store_be16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}
constexpr void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
constexpr void store_be64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

/// Little-endian loads/stores (PCAP file headers are host/LE on disk).
[[nodiscard]] constexpr std::uint16_t load_le16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}
[[nodiscard]] constexpr std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}
constexpr void store_le16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
constexpr void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace osnt
