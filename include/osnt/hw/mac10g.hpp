// 10GbE MAC models. The TX MAC serializes frames at line rate with
// preamble + IFG overhead and a bounded staging FIFO; the RX MAC
// validates framing and hands frames (with first-bit arrival time, for
// MAC-receipt timestamping) to its handler.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "osnt/common/time.hpp"
#include "osnt/net/packet.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/sim/link.hpp"

namespace osnt::hw {

/// Transmit-side 10GbE MAC.
struct TxMacConfig {
  double gbps = 10.0;
  /// Max backlog (bytes of frame data) the staging FIFO accepts beyond
  /// the frame in flight; 0 = unbounded (generator-style, upstream is
  /// rate-controlled).
  std::size_t queue_limit_bytes = 0;
};

class TxMac {
 public:
  using Config = TxMacConfig;

  TxMac(sim::Engine& eng, Config cfg = Config()) noexcept : eng_(&eng), cfg_(cfg) {}

  void attach(sim::Link& link) noexcept { link_ = &link; }

  /// Queue a frame for transmission at the current simulation time.
  /// Returns the wire start-of-frame time, or nullopt if the staging FIFO
  /// is full and the frame was dropped.
  std::optional<Picos> transmit(net::Packet pkt);

  /// Time at which the serializer becomes idle.
  [[nodiscard]] Picos next_free() const noexcept { return next_free_; }
  [[nodiscard]] bool idle() const noexcept { return eng_->now() >= next_free_; }

  /// Serialization window (line occupancy) for a frame of this size.
  [[nodiscard]] Picos frame_air_time(const net::Packet& pkt) const noexcept;

  // counters
  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return frames_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  /// Total time the serializer has been busy (for utilization).
  [[nodiscard]] Picos busy_time() const noexcept { return busy_; }

 private:
  sim::Engine* eng_;
  Config cfg_;
  sim::Link* link_ = nullptr;
  Picos next_free_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
  Picos busy_ = 0;
};

struct RxMacConfig {
  double gbps = 10.0;
  std::size_t min_frame = net::kEthMinFrame;  ///< incl. FCS
  std::size_t max_frame = net::kEthMaxFrame;  ///< incl. FCS (1518 untagged)
  bool accept_oversize = false;               ///< jumbo tolerance
};

/// Receive-side 10GbE MAC.
class RxMac final : public sim::FrameSink {
 public:
  using Config = RxMacConfig;
  /// first_bit = arrival of the frame's first bit at the MAC (the moment
  /// OSNT timestamps); last_bit = store-and-forward completion.
  using Handler = std::function<void(net::Packet, Picos first_bit, Picos last_bit)>;

  RxMac(sim::Engine& eng, Config cfg = Config()) noexcept : eng_(&eng), cfg_(cfg) {}

  void set_handler(Handler h) { handler_ = std::move(h); }

  void on_frame(net::Packet pkt, Picos first_bit, Picos last_bit) override;

  [[nodiscard]] std::uint64_t frames_received() const noexcept { return frames_; }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t runts() const noexcept { return runts_; }
  [[nodiscard]] std::uint64_t giants() const noexcept { return giants_; }
  /// Frames discarded for an FCS mismatch (wire corruption).
  [[nodiscard]] std::uint64_t crc_errors() const noexcept { return crc_errors_; }

 private:
  sim::Engine* eng_;
  Config cfg_;
  Handler handler_;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t runts_ = 0;
  std::uint64_t giants_ = 0;
  std::uint64_t crc_errors_ = 0;
};

}  // namespace osnt::hw
