// PCIe DMA engine model: the loss-limited path from the capture pipeline
// to the host. Finite effective bandwidth (shared by all ports) and a
// finite descriptor ring; when either is exhausted, records are dropped
// in hardware and counted — the wire is never back-pressured. This is the
// property that makes filtering and packet thinning matter.
#pragma once

#include <cstdint>
#include <functional>

#include "osnt/common/time.hpp"
#include "osnt/common/types.hpp"
#include "osnt/sim/engine.hpp"

namespace osnt::hw {

/// One completed DMA transfer. `meta_*` are descriptor words the producer
/// is free to use (the monitor stores timestamp / original length / port).
struct DmaRecord {
  Bytes payload;
  std::uint64_t meta_a = 0;
  std::uint64_t meta_b = 0;
  std::uint64_t meta_c = 0;
};

struct DmaConfig {
  /// Effective host throughput. PCIe Gen2 x8 nominal is 32 Gb/s but the
  /// achievable packet-rate-limited goodput of the NetFPGA-10G DMA core
  /// is far lower; default 8 Gb/s reproduces the "subset of captured
  /// packets" behaviour when all four ports are busy.
  double gbps = 8.0;
  std::size_t ring_entries = 1024;
  /// Fixed per-record cost (descriptor + completion), in bytes-equivalent
  /// on the bus; dominates for small snapped packets.
  std::size_t per_record_overhead_bytes = 64;
};

class DmaEngine {
 public:
  using Config = DmaConfig;
  using Handler = std::function<void(DmaRecord)>;

  DmaEngine(sim::Engine& eng, Config cfg = Config()) noexcept
      : eng_(&eng), cfg_(cfg) {}
  /// Merges delivery/drop counters into the telemetry registry (`hw.dma.*`).
  ~DmaEngine();

  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Try to enqueue a record at the current sim time. Returns false (and
  /// counts the drop) when the ring is full.
  bool enqueue(DmaRecord rec);

  /// Fault seam: freeze the bus for `duration` (host-ring stall, PCIe
  /// backpressure burst). Transfers already on the bus complete on
  /// schedule; everything enqueued afterwards queues behind the stall, so
  /// a busy capture path fills the ring and drops — exactly the paper's
  /// loss-limited behaviour under host pressure.
  void inject_stall(Picos duration);
  [[nodiscard]] std::uint64_t stalls_injected() const noexcept {
    return stalls_;
  }

  [[nodiscard]] std::size_t ring_occupancy() const noexcept { return in_ring_; }
  [[nodiscard]] std::uint64_t records_delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] std::uint64_t bytes_delivered() const noexcept {
    return bytes_delivered_;
  }
  [[nodiscard]] std::uint64_t drops_ring_full() const noexcept {
    return drops_;
  }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  sim::Engine* eng_;
  Config cfg_;
  Handler handler_;
  Picos bus_free_ = 0;    ///< when the bus finishes its current backlog
  std::size_t in_ring_ = 0;
  std::size_t ring_hw_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t stalls_ = 0;
};

}  // namespace osnt::hw
