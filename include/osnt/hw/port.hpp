// A full-duplex 10GbE port: TX MAC + RX MAC + the outbound wire. Ports are
// cabled together with connect(), which wires each side's TX link to the
// other side's RX MAC — the software equivalent of plugging in a fiber.
#pragma once

#include <cstdint>

#include "osnt/hw/mac10g.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/sim/link.hpp"

namespace osnt::hw {

struct EthPortConfig {
  TxMac::Config tx{};
  RxMac::Config rx{};
  Picos propagation = sim::fiber_delay(2.0);
};

class EthPort {
 public:
  using Config = EthPortConfig;

  EthPort(sim::Engine& eng, Config cfg = Config())
      : tx_(eng, cfg.tx), rx_(eng, cfg.rx), out_(eng, cfg.propagation) {
    tx_.attach(out_);
  }

  EthPort(const EthPort&) = delete;
  EthPort& operator=(const EthPort&) = delete;

  [[nodiscard]] TxMac& tx() noexcept { return tx_; }
  [[nodiscard]] RxMac& rx() noexcept { return rx_; }
  [[nodiscard]] const TxMac& tx() const noexcept { return tx_; }
  [[nodiscard]] const RxMac& rx() const noexcept { return rx_; }
  [[nodiscard]] sim::Link& out_link() noexcept { return out_; }

  [[nodiscard]] bool cabled() const noexcept { return out_.connected(); }

 private:
  TxMac tx_;
  RxMac rx_;
  sim::Link out_;
};

/// Cable two ports together (both directions).
void connect(EthPort& a, EthPort& b);

}  // namespace osnt::hw
