// Bounded packet FIFO with byte accounting — the building block for
// switch output queues and staging buffers. Tail-drop on overflow.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "osnt/net/packet.hpp"

namespace osnt::hw {

struct PacketFifoConfig {
  std::size_t max_bytes = 512 * 1024;  ///< 0 = unbounded
  std::size_t max_packets = 0;         ///< 0 = unbounded
};

class PacketFifo {
 public:
  using Config = PacketFifoConfig;

  explicit PacketFifo(Config cfg = Config()) noexcept : cfg_(cfg) {}

  /// Returns false (and counts a drop) when the frame doesn't fit.
  bool push(net::Packet pkt);

  [[nodiscard]] std::optional<net::Packet> pop();
  [[nodiscard]] const net::Packet* front() const noexcept {
    return q_.empty() ? nullptr : &q_.front();
  }

  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::size_t packets() const noexcept { return q_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t dropped_bytes() const noexcept {
    return dropped_bytes_;
  }
  /// High-water mark of queued bytes.
  [[nodiscard]] std::size_t peak_bytes() const noexcept { return peak_bytes_; }

  void clear();

 private:
  Config cfg_;
  std::deque<net::Packet> q_;
  std::size_t bytes_ = 0;
  std::size_t peak_bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t dropped_bytes_ = 0;
};

}  // namespace osnt::hw
