// Applies a FaultPlan to a live testbed. The Injector holds non-owning
// pointers to the models a plan may target — links, the DMA engine, the
// OpenFlow control channel, the GPS — and arm() schedules every plan
// event on the trial's engine (category kFault, visible in --trace).
// Faults act through the models' existing public seams, so an injected
// run is just a run: same engine, same determinism, same telemetry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "osnt/fault/plan.hpp"
#include "osnt/sim/engine.hpp"

namespace osnt::core {
class OsntDevice;
}
namespace osnt::graph {
class Graph;
class TokenBucketBlock;
class FifoQueueBlock;
}  // namespace osnt::graph
namespace osnt::hw {
class DmaEngine;
}
namespace osnt::openflow {
class ControlChannel;
}
namespace osnt::sim {
class Link;
}
namespace osnt::tstamp {
class GpsModel;
}

namespace osnt::fault {

class Injector {
 public:
  /// The plan is normalized (validated + sorted) on entry; throws
  /// PlanError if it is malformed. Targets attach afterwards; nothing is
  /// scheduled until arm().
  Injector(sim::Engine& eng, FaultPlan plan);
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;
  /// Merges `fault.injected.<kind>` / `fault.skipped` into telemetry.
  ~Injector();

  /// Register a link as the next index (plan events address links by
  /// attach order; link = -1 targets all of them).
  Injector& attach_link(sim::Link& link);
  Injector& attach_dma(hw::DmaEngine& dma);
  Injector& attach_channel(openflow::ControlChannel& chan);
  Injector& attach_gps(tstamp::GpsModel& gps);
  /// Convenience: every port's outbound link (port order), the shared DMA
  /// engine, and the GPS of one OSNT card.
  Injector& attach_device(core::OsntDevice& dev);

  /// Register a named token_bucket / queue block as a target for
  /// rate_limit / queue_cap events. Names must be unique per injector.
  Injector& attach_token_bucket(const std::string& name,
                                graph::TokenBucketBlock& tb);
  Injector& attach_fifo(const std::string& name, graph::FifoQueueBlock& q);
  /// Convenience: register every token_bucket / fifo_queue / red block of
  /// a graph under its block name.
  Injector& attach_graph(graph::Graph& g);

  /// Schedule the whole plan on the engine. Call once, before running;
  /// events whose target kind has nothing attached are counted as skipped
  /// (with a warning) rather than failing the run — except block-targeted
  /// events (rate_limit / queue_cap), whose unknown target is a hard
  /// PlanError: a chaos plan aimed at a block that does not exist is a
  /// bad plan, not a benign mismatch. All targets must outlive the
  /// engine's run.
  void arm();
  [[nodiscard]] bool armed() const noexcept { return armed_; }

  /// Fault activations that actually fired (counted at their start time).
  [[nodiscard]] std::uint64_t injected(FaultKind k) const noexcept {
    return injected_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t injected_total() const noexcept;
  /// Plan events dropped at arm() because their target was not attached.
  [[nodiscard]] std::uint64_t skipped() const noexcept { return skipped_; }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  void arm_event_(const FaultEvent& ev, std::size_t ordinal);
  [[nodiscard]] std::vector<sim::Link*> targets_(int link,
                                                 std::size_t ordinal) const;
  [[nodiscard]] std::string unknown_target_(const FaultEvent& ev,
                                            std::size_t ordinal,
                                            bool buckets_only) const;
  void mark_(FaultKind kind, Picos at, Picos duration);

  sim::Engine* eng_;
  FaultPlan plan_;
  std::vector<sim::Link*> links_;
  // Ordered maps: arm-time error messages and any per-target iteration
  // must not depend on hash order (determinism contract, DESIGN.md §10).
  std::map<std::string, graph::TokenBucketBlock*> buckets_;
  std::map<std::string, graph::FifoQueueBlock*> queues_;
  hw::DmaEngine* dma_ = nullptr;
  openflow::ControlChannel* chan_ = nullptr;
  tstamp::GpsModel* gps_ = nullptr;
  bool armed_ = false;
  std::uint64_t injected_[kFaultKindCount] = {};
  std::uint64_t skipped_ = 0;
  telemetry::TraceRecorder::TrackId trace_tracks_[kFaultKindCount] = {};
  bool tracing_ = false;
};

}  // namespace osnt::fault
