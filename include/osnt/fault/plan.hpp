// Deterministic fault-injection plans: a FaultPlan is a sim-time schedule
// of typed fault events — link flaps, BER windows/ramps, latency-jitter
// spikes, DMA stalls, control-channel outages, GPS loss — built
// programmatically or parsed from JSON (`osnt_run --faults plan.json`).
// A plan is pure data: the same plan applied to the same seeded testbed
// replays bit-identically (see DESIGN.md §10). The Injector (injector.hpp)
// turns a plan into scheduled engine events through the models' seams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "osnt/common/time.hpp"

namespace osnt::fault {

enum class FaultKind : std::uint8_t {
  kLinkFlap = 0,    ///< link down at `at`, back up after `duration`
  kBerWindow,       ///< bit-error window, optional linear ramp-in
  kLatencySpike,    ///< extra one-way delay window on a link
  kDmaStall,        ///< freeze the DMA bus for `duration`
  kCtrlDisconnect,  ///< control link unavailable for `duration`
  kGpsLoss,         ///< GPS antenna gone → oscillator holdover
  kRateLimit,       ///< retime a named token_bucket's rate/burst
  kQueueCap,        ///< cap a named queue/bucket's frame budget
};
inline constexpr std::size_t kFaultKindCount = 8;

[[nodiscard]] constexpr const char* fault_kind_name(FaultKind k) noexcept {
  constexpr const char* kNames[kFaultKindCount] = {
      "link_flap", "ber_window",      "latency_spike", "dma_stall",
      "ctrl_disconnect", "gps_loss",  "rate_limit",    "queue_cap"};
  return kNames[static_cast<std::size_t>(k)];
}

/// One scheduled fault. Fields beyond {kind, at, duration} apply only to
/// the kinds that document them; the rest ignore them.
struct FaultEvent {
  FaultKind kind = FaultKind::kLinkFlap;
  Picos at = 0;        ///< sim time the fault begins
  Picos duration = 0;  ///< how long the condition holds (0 = instantaneous)
  int link = -1;       ///< target link index (attach order); -1 = all links
  double ber = 0.0;    ///< kBerWindow: plateau error rate (errors/bit)
  Picos ramp = 0;      ///< kBerWindow/kRateLimit: linear ramp length
  Picos extra_delay = 0;  ///< kLatencySpike: added one-way delay
  /// kRateLimit/kQueueCap: graph block name the fault retimes. Resolved
  /// at Injector::arm() time against the attached blocks; an unknown
  /// name is a hard error (unlike link faults, which skip-with-warning —
  /// a chaos plan aimed at a block that does not exist is a bad plan,
  /// not a benign mismatch).
  std::string target;
  double rate_gbps = 0.0;        ///< kRateLimit: new bucket rate (> 0)
  std::int64_t burst_bytes = -1; ///< kRateLimit: new burst; -1 = keep
  std::size_t queue_frames = 0;  ///< kQueueCap: new frame budget (>= 1)
};

/// Plan parse/validation failure (malformed JSON, bad field, bad value).
class PlanError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FaultPlan {
  /// Base seed for per-event randomness (BER streams): event ordinal i
  /// draws from a stream seeded by a splitmix of `seed` and i, so plans
  /// replay identically and events don't share streams.
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;

  // Builder interface (chainable) for programmatic plans and tests.
  FaultPlan& link_flap(Picos at, Picos duration, int link = -1);
  FaultPlan& ber_window(Picos at, Picos duration, double ber, Picos ramp = 0,
                        int link = -1);
  FaultPlan& latency_spike(Picos at, Picos duration, Picos extra,
                           int link = -1);
  FaultPlan& dma_stall(Picos at, Picos duration);
  FaultPlan& ctrl_disconnect(Picos at, Picos duration);
  FaultPlan& gps_loss(Picos at, Picos duration);
  FaultPlan& rate_limit(Picos at, Picos duration, std::string target,
                        double rate_gbps, Picos ramp = 0,
                        std::int64_t burst_bytes = -1);
  FaultPlan& queue_cap(Picos at, Picos duration, std::string target,
                       std::size_t queue_frames);

  /// Validate fields and stable-sort events by start time. Throws
  /// PlanError on out-of-range values. Idempotent; the Injector calls it.
  void normalize();

  /// Parse a plan from JSON text / a JSON file. Schema (times accept the
  /// suffixes _ns/_us/_ms):
  ///   {"seed": 7, "events": [
  ///      {"type": "link_flap", "at_us": 100, "duration_us": 50, "link": 0},
  ///      {"type": "ber_window", "at_us": 0, "duration_us": 200,
  ///       "ber": 1e-6, "ramp_us": 40},
  ///      {"type": "latency_spike", "at_us": 10, "duration_us": 5,
  ///       "extra_ns": 800},
  ///      {"type": "dma_stall", "at_us": 120, "duration_us": 30},
  ///      {"type": "ctrl_disconnect", "at_ms": 1, "duration_ms": 4},
  ///      {"type": "gps_loss", "at_ms": 0, "duration_ms": 900},
  ///      {"type": "rate_limit", "at_ms": 5, "duration_ms": 10,
  ///       "target": "policer", "rate_gbps": 0.5, "ramp_ms": 2,
  ///       "burst_bytes": 15000},
  ///      {"type": "queue_cap", "at_ms": 5, "duration_ms": 10,
  ///       "target": "bottleneck", "queue_frames": 32}]}
  /// Unknown types and unknown keys are hard errors — a typoed fault that
  /// silently never fires would invalidate an experiment. Errors carry
  /// the offending value's line/column and a did-you-mean suggestion.
  [[nodiscard]] static FaultPlan from_json(const std::string& text);
  [[nodiscard]] static FaultPlan load(const std::string& path);

  /// One-line human summary ("4 events over 1.2 ms: 2 link_flap, ...").
  [[nodiscard]] std::string summary() const;
};

}  // namespace osnt::fault
