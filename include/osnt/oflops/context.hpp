// OflopsContext: the runtime a measurement module sees — unified access
// to the OSNT data plane, the OpenFlow control channel, SNMP, and timers.
// Testbed is the canonical four-cable topology of the demo (Figure 2):
// OSNT port i ↔ switch port i, controller on the control channel.
#pragma once

#include <cstdint>
#include <memory>

#include "osnt/core/device.hpp"
#include "osnt/dut/openflow_switch.hpp"
#include "osnt/dut/snmp.hpp"
#include "osnt/oflops/module.hpp"
#include "osnt/openflow/channel.hpp"
#include "osnt/sim/engine.hpp"

namespace osnt::oflops {

class OflopsContext {
 public:
  /// `snmp` may be null (modules that don't poll).
  OflopsContext(sim::Engine& eng, core::OsntDevice& osnt,
                openflow::ControlChannel::Endpoint& ctrl,
                dut::SnmpAgent* snmp = nullptr);

  // --- control plane ---
  std::uint32_t send(const openflow::OfMessage& msg) { return ctrl_->send(msg); }
  /// Whether the control-channel session is currently up. Sends while it
  /// is down are dropped (and counted by the channel).
  [[nodiscard]] bool channel_up() const noexcept { return ctrl_->session_up(); }

  // --- data plane ---
  [[nodiscard]] core::OsntDevice& osnt() noexcept { return *osnt_; }

  // --- SNMP ---
  void snmp_get(const std::string& oid);
  [[nodiscard]] bool has_snmp() const noexcept { return snmp_ != nullptr; }

  // --- timers ---
  void timer_in(Picos dt, std::uint64_t timer_id);

  [[nodiscard]] sim::Engine& engine() noexcept { return *eng_; }
  [[nodiscard]] Picos now() const noexcept { return eng_->now(); }

  /// Run one module to completion (or `timeout` of simulated time) and
  /// return its report. Events are routed to the module for the duration.
  Report run(MeasurementModule& module, Picos timeout = 60 * kPicosPerSec);

 private:
  sim::Engine* eng_;
  core::OsntDevice* osnt_;
  openflow::ControlChannel::Endpoint* ctrl_;
  dut::SnmpAgent* snmp_;
  MeasurementModule* active_ = nullptr;
};

/// The demo topology in one object: a 4-port OSNT tester cabled 1:1 to a
/// 4-port OpenFlow switch, a control channel, and an SNMP agent exposing
/// the switch counters.
struct Testbed {
  sim::Engine eng;
  core::OsntDevice osnt;
  openflow::ControlChannel chan;
  dut::OpenFlowSwitch sw;
  dut::SnmpAgent snmp;
  OflopsContext ctx;

  explicit Testbed(
      dut::OpenFlowSwitchConfig sw_cfg = dut::OpenFlowSwitchConfig(),
      core::DeviceConfig osnt_cfg = core::DeviceConfig(),
      openflow::ChannelConfig chan_cfg = openflow::ChannelConfig());
};

}  // namespace osnt::oflops
