// Action-processing latency module (an OFLOPS scenario): compares the
// data-plane latency of a plain-forward rule against a rule that also
// rewrites headers (VLAN set). Switches that punt modifications to a
// slow path show a dramatic gap — invisible to control-plane-only tools,
// measurable with OSNT's per-packet timestamps.
#pragma once

#include "osnt/oflops/context.hpp"
#include "osnt/oflops/module.hpp"

namespace osnt::oflops {

struct ActionLatencyConfig {
  std::size_t samples_per_mode = 200;
  double probe_pps = 50'000.0;
  Picos settle = 20 * kPicosPerMilli;
};

class ActionLatencyModule final : public MeasurementModule {
 public:
  using Config = ActionLatencyConfig;

  explicit ActionLatencyModule(Config cfg = Config()) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "action_latency"; }
  void start(OflopsContext& ctx) override;
  void on_of_message(OflopsContext& ctx,
                     const openflow::Decoded& msg) override;
  void on_capture(OflopsContext& ctx, const mon::CaptureRecord& rec) override;
  void on_timer(OflopsContext& ctx, std::uint64_t timer_id) override;
  [[nodiscard]] bool finished() const override { return done_; }
  [[nodiscard]] Report report() const override;

 private:
  enum class Mode { kInstallPlain, kPlain, kInstallModify, kModify, kDone };
  enum : std::uint64_t { kTimerSettled = 1 };

  void install_rule(OflopsContext& ctx, bool with_modify);

  Config cfg_;
  Mode mode_ = Mode::kInstallPlain;
  bool done_ = false;
  std::uint32_t barrier_xid_ = 0;

  SampleSet plain_ns_;
  SampleSet modify_ns_;
};

}  // namespace osnt::oflops
