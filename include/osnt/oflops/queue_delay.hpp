// Per-queue QoS measurement: install one rule per egress queue and
// measure each queue's achieved rate and added delay under identical
// offered load — OFLOPS-turbo's slicing-verification scenario. OSNT's
// per-packet timestamps expose the shaper behaviour directly.
#pragma once

#include <vector>

#include "osnt/oflops/context.hpp"
#include "osnt/oflops/module.hpp"

namespace osnt::oflops {

struct QueueDelayConfig {
  /// Queues to exercise (ids into the switch's queue_rates table).
  std::vector<std::uint32_t> queue_ids = {0, 1, 2};
  std::size_t frames_per_queue = 200;
  std::size_t frame_size = 512;
  double offered_gbps = 4.0;  ///< per run; above the slow queues' share
};

class QueueDelayModule final : public MeasurementModule {
 public:
  using Config = QueueDelayConfig;

  explicit QueueDelayModule(Config cfg = Config()) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "queue_delay"; }
  void start(OflopsContext& ctx) override;
  void on_of_message(OflopsContext& ctx,
                     const openflow::Decoded& msg) override;
  void on_capture(OflopsContext& ctx, const mon::CaptureRecord& rec) override;
  void on_timer(OflopsContext& ctx, std::uint64_t timer_id) override;
  [[nodiscard]] bool finished() const override { return done_; }
  [[nodiscard]] Report report() const override;

 private:
  void start_queue_run(OflopsContext& ctx);

  Config cfg_;
  bool done_ = false;
  std::size_t current_ = 0;  ///< index into queue_ids
  std::uint32_t barrier_xid_ = 0;

  struct PerQueue {
    SampleSet latency_us;
    tstamp::Timestamp first_rx;
    tstamp::Timestamp last_rx;
    std::uint64_t frames = 0;
  };
  std::vector<PerQueue> results_;
};

}  // namespace osnt::oflops
