// OFLOPS-turbo measurement module interface. A module drives one
// experiment against the switch under test, receiving events from three
// channels — data plane (OSNT captures), control plane (OpenFlow
// messages) and SNMP — and produces a Report.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "osnt/common/stats.hpp"
#include "osnt/mon/capture.hpp"
#include "osnt/openflow/messages.hpp"

namespace osnt::oflops {

class OflopsContext;

struct Metric {
  std::string name;
  double value = 0.0;
  std::string unit;
};

struct Report {
  std::string module;
  std::vector<Metric> scalars;
  std::vector<std::pair<std::string, SampleSet>> distributions;

  void add(std::string name, double value, std::string unit = "") {
    scalars.push_back({std::move(name), value, std::move(unit)});
  }
  void add_distribution(std::string name, SampleSet s) {
    distributions.emplace_back(std::move(name), std::move(s));
  }
  /// Pretty-print: scalars, then p50/p99 etc. of each distribution.
  void print(std::FILE* out = stdout) const;
};

class MeasurementModule {
 public:
  virtual ~MeasurementModule() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once; the module schedules its work through the context.
  virtual void start(OflopsContext& ctx) = 0;

  /// Control-plane event (message from the switch).
  virtual void on_of_message(OflopsContext& /*ctx*/,
                             const openflow::Decoded& /*msg*/) {}
  /// Data-plane event (a capture record landed at the host).
  virtual void on_capture(OflopsContext& /*ctx*/,
                          const mon::CaptureRecord& /*rec*/) {}
  /// SNMP poll answered.
  virtual void on_snmp(OflopsContext& /*ctx*/, const std::string& /*oid*/,
                       std::uint64_t /*value*/) {}
  /// A timer armed via ctx.timer_in() fired.
  virtual void on_timer(OflopsContext& /*ctx*/, std::uint64_t /*timer_id*/) {}
  /// Control-channel session transition (down on disconnect, up on
  /// reconnect). Everything the module had in flight on the old session —
  /// unacknowledged flow_mods, pending barriers — is gone; a robust
  /// module re-drives its state on `up` and flags the measurement
  /// degraded. Default ignores it (a module that never saw faults before
  /// behaves exactly as it did).
  virtual void on_channel_status(OflopsContext& /*ctx*/, bool /*up*/) {}

  /// The run loop stops when this turns true (or on timeout).
  [[nodiscard]] virtual bool finished() const = 0;

  [[nodiscard]] virtual Report report() const = 0;
};

}  // namespace osnt::oflops
