// Forwarding consistency during large flow-table updates (demo Part II,
// second measurement): N flows forward via port A; all N rules are then
// redirected to port B in one burst. Because the switch commits rules to
// hardware asynchronously and serially, there is a window where some
// flows follow the new rules while others still follow the old ones.
// OSNT's per-packet capture quantifies that window precisely.
#pragma once

#include <unordered_map>
#include <vector>

#include "osnt/oflops/context.hpp"
#include "osnt/oflops/module.hpp"

namespace osnt::oflops {

struct ConsistencyConfig {
  std::size_t rule_count = 128;        ///< flows/rules updated in the burst
  double traffic_gbps = 1.0;           ///< aggregate probe load
  Picos warmup = 100 * kPicosPerMilli; ///< traffic before the update burst
  Picos drain = 200 * kPicosPerMilli;  ///< observation after the last switch
};

class ConsistencyModule final : public MeasurementModule {
 public:
  using Config = ConsistencyConfig;

  explicit ConsistencyModule(Config cfg = Config());

  [[nodiscard]] std::string name() const override {
    return "forwarding_consistency";
  }
  void start(OflopsContext& ctx) override;
  void on_of_message(OflopsContext& ctx,
                     const openflow::Decoded& msg) override;
  void on_capture(OflopsContext& ctx, const mon::CaptureRecord& rec) override;
  void on_timer(OflopsContext& ctx, std::uint64_t timer_id) override;
  void on_channel_status(OflopsContext& ctx, bool up) override;
  [[nodiscard]] bool finished() const override { return done_; }
  [[nodiscard]] Report report() const override;

 private:
  enum class Phase { kInstall, kWarmup, kUpdating, kDrain, kDone };
  enum : std::uint64_t { kTimerBurst = 1, kTimerFinish = 2 };

  void send_generation(OflopsContext& ctx, std::uint16_t out_port);

  [[nodiscard]] openflow::FlowMod rule_for(std::size_t flow,
                                           std::uint16_t out_port) const;
  [[nodiscard]] int flow_of_record(const mon::CaptureRecord& rec) const;

  Config cfg_;
  Phase phase_ = Phase::kInstall;
  bool done_ = false;

  Picos t_burst_ = 0;
  std::uint32_t install_barrier_ = 0;
  /// Control-channel outage bookkeeping: a reconnect mid-phase re-sends
  /// the whole current rule generation (flow_mods replace by match, so
  /// the re-drive is idempotent) and the report flags the degradation.
  std::uint64_t disconnects_ = 0;
  std::uint64_t rules_resent_ = 0;
  std::vector<double> first_on_new_ns_;  ///< per flow; <0 = not yet seen
  std::size_t flows_switched_ = 0;
  std::uint64_t stale_packets_ = 0;  ///< old path after the burst
  std::uint64_t new_packets_ = 0;
  std::uint64_t pre_burst_packets_ = 0;

  SampleSet install_time_ms_;  ///< per-rule data-plane effective time
};

}  // namespace osnt::oflops
