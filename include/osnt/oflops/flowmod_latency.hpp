// The Part II headline measurement: latency to modify a flow-table entry,
// measured simultaneously on the control plane (barrier RTT) and the data
// plane (first probe packet observed on the rule's new output path, using
// OSNT's high-precision capture). The gap between the two is the classic
// OFLOPS finding: switches acknowledge rules before hardware applies them.
//
// Topology convention (Testbed): OSNT port 0 generates the probe flow into
// switch port 1; the rule alternates its output between switch ports 2 and
// 3, captured by OSNT ports 1 and 2.
#pragma once

#include "osnt/oflops/context.hpp"
#include "osnt/oflops/module.hpp"
#include "osnt/openflow/match.hpp"

namespace osnt::oflops {

struct FlowModLatencyConfig {
  std::size_t table_size = 64;   ///< filler rules pre-installed
  std::size_t rounds = 20;       ///< redirect cycles measured
  double probe_pps = 100000.0;   ///< probe flow rate
  Picos settle = 50 * kPicosPerMilli;  ///< pause between rounds
  /// Wait after the fill barrier before measuring, so the fillers' own
  /// hardware commits drain (the barrier does not cover them on a
  /// production-like switch) and rounds measure a quiescent table.
  Picos fill_settle = 5 * kPicosPerSec;
};

class FlowModLatencyModule final : public MeasurementModule {
 public:
  using Config = FlowModLatencyConfig;

  explicit FlowModLatencyModule(Config cfg = Config()) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "flowmod_latency"; }
  void start(OflopsContext& ctx) override;
  void on_of_message(OflopsContext& ctx,
                     const openflow::Decoded& msg) override;
  void on_capture(OflopsContext& ctx, const mon::CaptureRecord& rec) override;
  void on_timer(OflopsContext& ctx, std::uint64_t timer_id) override;
  void on_channel_status(OflopsContext& ctx, bool up) override;
  [[nodiscard]] bool finished() const override { return done_; }
  [[nodiscard]] Report report() const override;

 private:
  enum class Phase { kFill, kWarmup, kMeasure, kDone };
  enum : std::uint64_t { kTimerNextRound = 1, kTimerStartProbe = 2 };

  void send_redirect(OflopsContext& ctx);
  void maybe_finish_round(OflopsContext& ctx);
  void install_table(OflopsContext& ctx);
  [[nodiscard]] openflow::FlowMod probe_rule(std::uint16_t out_port) const;

  Config cfg_;
  Phase phase_ = Phase::kFill;
  bool done_ = false;

  std::size_t round_ = 0;
  std::uint8_t target_osnt_port_ = 1;  ///< where the *current* rule points
  Picos t_send_ = 0;
  std::uint32_t barrier_xid_ = 0;
  bool awaiting_barrier_ = false;
  bool awaiting_data_ = false;

  // Degradation bookkeeping: control-channel outages survived mid-run.
  // Rounds whose redirect was re-driven after a reconnect stay in the
  // distributions (their control sample includes the outage) but are
  // counted so the report is explicit about being degraded-but-complete.
  std::uint64_t disconnects_ = 0;
  std::uint64_t degraded_rounds_ = 0;

  SampleSet ctrl_ms_;
  SampleSet data_ms_;
  SampleSet gap_ms_;
};

}  // namespace osnt::oflops
