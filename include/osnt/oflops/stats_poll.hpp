// Flow-statistics polling module (an OFLOPS baseline scenario): measures
// the flow-stats request RTT as a function of table occupancy, and the
// collateral damage polling inflicts on other control-plane work — the
// packet_in path shares the agent CPU, so its latency inflates while the
// agent walks the table.
#pragma once

#include "osnt/oflops/context.hpp"
#include "osnt/oflops/module.hpp"

namespace osnt::oflops {

struct StatsPollConfig {
  std::size_t table_size = 256;       ///< rules the stats scan must walk
  std::size_t probes_per_phase = 100; ///< packet_in samples per phase
  double probe_pps = 500.0;
  Picos poll_interval = 10 * kPicosPerMilli;
  Picos fill_settle = 5 * kPicosPerSec;
};

class StatsPollModule final : public MeasurementModule {
 public:
  using Config = StatsPollConfig;

  explicit StatsPollModule(Config cfg = Config()) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "stats_poll"; }
  void start(OflopsContext& ctx) override;
  void on_of_message(OflopsContext& ctx,
                     const openflow::Decoded& msg) override;
  void on_timer(OflopsContext& ctx, std::uint64_t timer_id) override;
  [[nodiscard]] bool finished() const override { return done_; }
  [[nodiscard]] Report report() const override;

 private:
  enum class Phase { kFill, kBaseline, kPolling, kDone };
  enum : std::uint64_t { kTimerStartProbe = 1, kTimerPoll = 2 };

  Config cfg_;
  Phase phase_ = Phase::kFill;
  bool done_ = false;

  std::uint32_t fill_barrier_ = 0;
  std::unordered_map<std::uint32_t, Picos> stats_in_flight_;
  std::size_t flows_reported_ = 0;

  SampleSet baseline_pin_us_;
  SampleSet polling_pin_us_;
  SampleSet stats_rtt_ms_;
};

}  // namespace osnt::oflops
