// Control-plane interaction module (an OFLOPS scenario): how much does a
// packet_in storm slow down rule installation? The switch agent CPU is a
// single shared resource; this module measures flow_mod barrier RTT in a
// quiet control plane and again while table-miss traffic keeps the agent
// busy punting packets.
#pragma once

#include "osnt/oflops/context.hpp"
#include "osnt/oflops/module.hpp"

namespace osnt::oflops {

struct InteractionConfig {
  std::size_t rounds_per_phase = 30;
  Picos round_interval = 10 * kPicosPerMilli;
  double storm_pps = 1500.0;  ///< below the switch's packet_in limiter
};

class InteractionModule final : public MeasurementModule {
 public:
  using Config = InteractionConfig;

  explicit InteractionModule(Config cfg = Config()) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "interaction"; }
  void start(OflopsContext& ctx) override;
  void on_of_message(OflopsContext& ctx,
                     const openflow::Decoded& msg) override;
  void on_timer(OflopsContext& ctx, std::uint64_t timer_id) override;
  [[nodiscard]] bool finished() const override { return done_; }
  [[nodiscard]] Report report() const override;

 private:
  enum class Phase { kIdle, kStorm, kDone };
  enum : std::uint64_t { kTimerRound = 1 };

  void send_round(OflopsContext& ctx);

  Config cfg_;
  Phase phase_ = Phase::kIdle;
  bool done_ = false;
  std::size_t round_ = 0;
  std::uint32_t barrier_xid_ = 0;
  Picos t_send_ = 0;
  std::uint64_t packet_ins_seen_ = 0;

  SampleSet idle_rtt_us_;
  SampleSet storm_rtt_us_;
};

}  // namespace osnt::oflops
