// packet_out path latency (controller → data plane): the mirror image of
// packet_in. The controller injects frames through the switch agent; the
// OSNT monitor timestamps them at the MAC, so the measurement combines
// the control channel, agent service time, and egress path.
#pragma once

#include "osnt/oflops/context.hpp"
#include "osnt/oflops/module.hpp"

namespace osnt::oflops {

struct PacketOutLatencyConfig {
  std::size_t count = 200;
  Picos interval = 2 * kPicosPerMilli;
  std::uint16_t out_port = 2;  ///< OF port = OSNT capture port 1
};

class PacketOutLatencyModule final : public MeasurementModule {
 public:
  using Config = PacketOutLatencyConfig;

  explicit PacketOutLatencyModule(Config cfg = Config()) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override {
    return "packet_out_latency";
  }
  void start(OflopsContext& ctx) override;
  void on_timer(OflopsContext& ctx, std::uint64_t timer_id) override;
  void on_capture(OflopsContext& ctx, const mon::CaptureRecord& rec) override;
  [[nodiscard]] bool finished() const override {
    return received_ >= cfg_.count;
  }
  [[nodiscard]] Report report() const override;

 private:
  Config cfg_;
  std::size_t sent_ = 0;
  std::size_t received_ = 0;
  SampleSet latency_us_;
};

}  // namespace osnt::oflops
