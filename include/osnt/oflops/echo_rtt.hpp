// Baseline module: OpenFlow echo round-trip time. Calibrates the control
// channel + agent service time before interpreting flow_mod latencies.
#pragma once

#include <unordered_map>

#include "osnt/oflops/context.hpp"
#include "osnt/oflops/module.hpp"

namespace osnt::oflops {

struct EchoRttConfig {
  std::size_t count = 100;
  Picos interval = 10 * kPicosPerMilli;
};

class EchoRttModule final : public MeasurementModule {
 public:
  using Config = EchoRttConfig;

  explicit EchoRttModule(Config cfg = Config()) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "echo_rtt"; }
  void start(OflopsContext& ctx) override;
  void on_timer(OflopsContext& ctx, std::uint64_t timer_id) override;
  void on_of_message(OflopsContext& ctx,
                     const openflow::Decoded& msg) override;
  [[nodiscard]] bool finished() const override {
    return replies_ >= cfg_.count;
  }
  [[nodiscard]] Report report() const override;

 private:
  Config cfg_;
  std::size_t sent_ = 0;
  std::size_t replies_ = 0;
  std::unordered_map<std::uint32_t, Picos> in_flight_;
  SampleSet rtt_us_;
};

}  // namespace osnt::oflops
