// packet_in path latency: probes that miss the (empty) flow table are
// punted to the controller; latency is measured from the OSNT-embedded
// transmit timestamp (which survives inside the packet_in payload) to the
// controller's receive time — data-plane TX precision applied to a
// control-plane measurement, the OSNT+OFLOPS integration point.
#pragma once

#include "osnt/oflops/context.hpp"
#include "osnt/oflops/module.hpp"

namespace osnt::oflops {

struct PacketInLatencyConfig {
  std::size_t probes = 200;
  double probe_pps = 500.0;  ///< keep below the switch packet_in limiter
};

class PacketInLatencyModule final : public MeasurementModule {
 public:
  using Config = PacketInLatencyConfig;

  explicit PacketInLatencyModule(Config cfg = Config()) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "packet_in_latency"; }
  void start(OflopsContext& ctx) override;
  void on_of_message(OflopsContext& ctx,
                     const openflow::Decoded& msg) override;
  [[nodiscard]] bool finished() const override {
    return received_ >= cfg_.probes;
  }
  [[nodiscard]] Report report() const override;

 private:
  Config cfg_;
  std::size_t received_ = 0;
  SampleSet latency_us_;
};

}  // namespace osnt::oflops
