// Packet decoding: turns raw frame bytes into header values + layer
// offsets. This mirrors the header-extraction stage of the OSNT monitor
// pipeline (which feeds the filter and hash blocks).
#pragma once

#include <cstdint>
#include <optional>

#include "osnt/common/types.hpp"
#include "osnt/net/headers.hpp"

namespace osnt::net {

enum class L3Kind : std::uint8_t { kNone, kIpv4, kIpv6, kArp };
enum class L4Kind : std::uint8_t { kNone, kTcp, kUdp, kIcmp };

/// Decoded view of a frame. Offsets index into the original buffer; header
/// structs are decoded copies (the buffer may be mutated independently).
struct ParsedPacket {
  EthHeader eth;
  std::optional<VlanTag> vlan;

  L3Kind l3 = L3Kind::kNone;
  Ipv4Header ipv4;  ///< valid iff l3 == kIpv4
  Ipv6Header ipv6;  ///< valid iff l3 == kIpv6
  ArpHeader arp;    ///< valid iff l3 == kArp

  L4Kind l4 = L4Kind::kNone;
  TcpHeader tcp;    ///< valid iff l4 == kTcp
  UdpHeader udp;    ///< valid iff l4 == kUdp
  IcmpHeader icmp;  ///< valid iff l4 == kIcmp

  std::size_t l3_offset = 0;       ///< 0 when no L3
  std::size_t l4_offset = 0;       ///< 0 when no L4
  std::size_t payload_offset = 0;  ///< end of innermost decoded header
  std::size_t frame_len = 0;       ///< bytes parsed from

  /// EtherType after any VLAN tag.
  [[nodiscard]] std::uint16_t effective_ethertype() const noexcept {
    return vlan ? vlan->inner_ethertype : eth.ethertype;
  }
};

/// Parse as far as the frame allows. Returns nullopt only when even the
/// Ethernet header does not fit; truncated upper layers simply stop the
/// decode (l3/l4 stay kNone).
[[nodiscard]] std::optional<ParsedPacket> parse_packet(ByteSpan frame) noexcept;

}  // namespace osnt::net
