// TCP option parsing and construction: enough for realistic generated
// traffic (SYN with MSS/window-scale/SACK-permitted/timestamps) and for
// analyzing captured handshakes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "osnt/common/types.hpp"
#include "osnt/net/headers.hpp"

namespace osnt::net {

enum class TcpOptionKind : std::uint8_t {
  kEnd = 0,
  kNop = 1,
  kMss = 2,
  kWindowScale = 3,
  kSackPermitted = 4,
  kTimestamps = 8,
};

struct TcpOption {
  TcpOptionKind kind = TcpOptionKind::kNop;
  Bytes data;  ///< option payload (without kind/length bytes)

  friend bool operator==(const TcpOption&, const TcpOption&) = default;
};

/// Parse the options area of a TCP header (`options` = bytes between the
/// 20-byte fixed header and data_offset*4). NOP/END are consumed but not
/// returned. nullopt on malformed lengths.
[[nodiscard]] std::optional<std::vector<TcpOption>> parse_tcp_options(
    ByteSpan options) noexcept;

/// Serialize options (inserting kind/length) and pad with END/NOP to a
/// 4-byte multiple. Returns the encoded area ready to splice after the
/// fixed TCP header.
[[nodiscard]] Bytes encode_tcp_options(const std::vector<TcpOption>& options);

// Typed constructors / accessors for the common options.
[[nodiscard]] TcpOption tcp_option_mss(std::uint16_t mss);
[[nodiscard]] TcpOption tcp_option_window_scale(std::uint8_t shift);
[[nodiscard]] TcpOption tcp_option_sack_permitted();
[[nodiscard]] TcpOption tcp_option_timestamps(std::uint32_t tsval,
                                              std::uint32_t tsecr);

[[nodiscard]] std::optional<std::uint16_t> tcp_mss_of(
    const std::vector<TcpOption>& options) noexcept;
[[nodiscard]] std::optional<std::uint8_t> tcp_window_scale_of(
    const std::vector<TcpOption>& options) noexcept;
[[nodiscard]] std::optional<std::pair<std::uint32_t, std::uint32_t>>
tcp_timestamps_of(const std::vector<TcpOption>& options) noexcept;

}  // namespace osnt::net
