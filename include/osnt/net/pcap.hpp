// PCAP file I/O. Supports the classic microsecond format (magic
// 0xA1B2C3D4) and the nanosecond variant (0xA1B23C4D) in both byte orders
// on read; writes native-endian. OSNT's generator replays PCAP traces and
// its monitor dumps captures — the nanosecond variant is the natural fit
// for a 6.25 ns timestamp clock.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "osnt/common/types.hpp"

namespace osnt::net {

struct PcapRecord {
  std::uint64_t ts_nanos = 0;  ///< absolute timestamp in nanoseconds
  std::uint32_t orig_len = 0;  ///< original length on the wire
  Bytes data;                  ///< captured bytes (<= orig_len when snapped)
};

struct PcapReaderOptions {
  /// Throw on a truncated final record instead of treating it as
  /// EOF-with-warning. Lenient is the default: a capture cut off by a
  /// crashed or killed writer loses its tail record, not the whole file.
  /// An implausible length or a truncated global header throws either way.
  bool strict = false;
};

/// Streaming PCAP reader. Throws std::runtime_error on open/parse failure.
class PcapReader {
 public:
  explicit PcapReader(const std::string& path,
                      PcapReaderOptions options = {});
  ~PcapReader();
  PcapReader(const PcapReader&) = delete;
  PcapReader& operator=(const PcapReader&) = delete;
  PcapReader(PcapReader&&) noexcept;
  PcapReader& operator=(PcapReader&&) noexcept;

  /// Next record, or nullopt at EOF. A record cut off by end-of-file is
  /// counted in truncated_tail() and reported as EOF (lenient mode, the
  /// default) or thrown (options.strict).
  [[nodiscard]] std::optional<PcapRecord> next();

  [[nodiscard]] bool nanosecond_format() const noexcept { return nanos_; }
  [[nodiscard]] std::uint32_t link_type() const noexcept { return link_type_; }
  /// 1 when the file ended mid-record and lenient mode swallowed it.
  [[nodiscard]] std::uint64_t truncated_tail() const noexcept {
    return truncated_tail_;
  }

  /// Read every record of a file into memory.
  [[nodiscard]] static std::vector<PcapRecord> read_all(
      const std::string& path, PcapReaderOptions options = {});

 private:
  std::optional<PcapRecord> truncated_eof_();

  std::FILE* f_ = nullptr;
  PcapReaderOptions opt_;
  bool nanos_ = false;
  bool swapped_ = false;
  bool done_ = false;
  std::uint32_t link_type_ = 1;
  std::uint32_t snaplen_ = 0;
  std::uint64_t truncated_tail_ = 0;
};

/// Streaming PCAP writer (Ethernet link type). Throws on I/O failure.
class PcapWriter {
 public:
  explicit PcapWriter(const std::string& path, bool nanosecond = true,
                      std::uint32_t snaplen = 65535);
  ~PcapWriter();
  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  void write(std::uint64_t ts_nanos, ByteSpan frame,
             std::uint32_t orig_len = 0);  ///< orig_len 0 → frame.size()
  void flush();

  [[nodiscard]] std::size_t records_written() const noexcept { return count_; }

 private:
  std::FILE* f_ = nullptr;
  bool nanos_ = true;
  std::size_t count_ = 0;
};

}  // namespace osnt::net
