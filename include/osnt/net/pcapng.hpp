// pcapng (pcap next generation) I/O — the format modern capture tooling
// speaks. Minimal but correct: Section Header / Interface Description /
// Enhanced Packet blocks, nanosecond timestamps (if_tsresol), multiple
// interfaces (one per OSNT port), unknown blocks skipped, both byte
// orders read.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "osnt/common/types.hpp"

namespace osnt::net {

struct PcapngRecord {
  std::uint32_t interface_id = 0;
  std::uint64_t ts_nanos = 0;
  std::uint32_t orig_len = 0;
  Bytes data;
};

/// Streaming pcapng writer: one section, N interfaces (declare up front),
/// nanosecond resolution. Throws std::runtime_error on I/O failure.
class PcapngWriter {
 public:
  /// `interfaces` = human-readable names, one per interface id.
  explicit PcapngWriter(const std::string& path,
                        std::vector<std::string> interfaces = {"port0"},
                        std::uint32_t snaplen = 65535);
  ~PcapngWriter();
  PcapngWriter(const PcapngWriter&) = delete;
  PcapngWriter& operator=(const PcapngWriter&) = delete;

  void write(std::uint32_t interface_id, std::uint64_t ts_nanos,
             ByteSpan frame, std::uint32_t orig_len = 0);

  [[nodiscard]] std::size_t records_written() const noexcept { return count_; }
  [[nodiscard]] std::size_t interface_count() const noexcept { return n_ifaces_; }

 private:
  void write_block(std::uint32_t type, ByteSpan body);

  std::FILE* f_ = nullptr;
  std::size_t n_ifaces_ = 0;
  std::size_t count_ = 0;
};

/// Streaming pcapng reader. Handles both byte orders; skips unknown
/// block types; scales timestamps by each interface's if_tsresol.
class PcapngReader {
 public:
  explicit PcapngReader(const std::string& path);
  ~PcapngReader();
  PcapngReader(const PcapngReader&) = delete;
  PcapngReader& operator=(const PcapngReader&) = delete;

  /// Next packet record, or nullopt at end of file.
  [[nodiscard]] std::optional<PcapngRecord> next();

  [[nodiscard]] std::size_t interface_count() const noexcept {
    return tsresol_.size();
  }

  [[nodiscard]] static std::vector<PcapngRecord> read_all(
      const std::string& path);

 private:
  [[nodiscard]] std::optional<Bytes> read_block(std::uint32_t* type);

  std::FILE* f_ = nullptr;
  bool swapped_ = false;
  std::vector<double> tsresol_;  ///< ticks→nanoseconds factor per interface
};

}  // namespace osnt::net
