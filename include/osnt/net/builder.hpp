// Fluent packet construction with automatic length/checksum fixup — the
// software analogue of OSNT's host-side packet crafting used to prepare
// PCAP traces and generator templates.
#pragma once

#include <cstdint>
#include <optional>

#include "osnt/common/types.hpp"
#include "osnt/net/headers.hpp"
#include "osnt/net/packet.hpp"
#include "osnt/net/tcp_options.hpp"

namespace osnt::net {

/// Builds one Ethernet frame layer by layer. Layers must be added outer to
/// inner; build() back-patches lengths and checksums. The builder is
/// single-use: build() leaves it empty.
class PacketBuilder {
 public:
  PacketBuilder& eth(MacAddr src, MacAddr dst, std::uint16_t ethertype = 0);
  PacketBuilder& vlan(std::uint16_t vid, std::uint8_t pcp = 0);
  PacketBuilder& ipv4(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol = 0,
                      std::uint8_t ttl = 64, std::uint8_t dscp = 0);
  PacketBuilder& ipv6(const Ipv6Addr& src, const Ipv6Addr& dst,
                      std::uint8_t next_header = 0, std::uint8_t hop_limit = 64);
  PacketBuilder& arp(std::uint16_t opcode, MacAddr sender_mac, Ipv4Addr sender_ip,
                     MacAddr target_mac, Ipv4Addr target_ip);
  PacketBuilder& udp(std::uint16_t src_port, std::uint16_t dst_port);
  PacketBuilder& tcp(std::uint16_t src_port, std::uint16_t dst_port,
                     std::uint32_t seq = 0, std::uint32_t ack = 0,
                     std::uint8_t flags = TcpFlags::kAck);
  /// Append TCP options (call immediately after tcp()); encodes, pads to
  /// a 4-byte multiple and patches data_offset.
  PacketBuilder& tcp_options(const std::vector<TcpOption>& options);
  PacketBuilder& icmp_echo(std::uint16_t identifier, std::uint16_t sequence,
                           bool reply = false);
  PacketBuilder& payload(ByteSpan data);
  /// Deterministic pseudo-random payload of `n` bytes seeded by `seed`.
  PacketBuilder& payload_random(std::size_t n, std::uint64_t seed = 1);

  /// Pad (with zeros) so the frame *including FCS* reaches `frame_len`.
  /// IP total-length fields are fixed up to cover the padding so that the
  /// whole frame remains a consistent datagram of the requested size.
  PacketBuilder& pad_to_frame(std::size_t frame_len_with_fcs);

  /// Finalize: patch lengths + checksums, enforce the 64-byte minimum
  /// frame, and return the packet. Resets the builder.
  [[nodiscard]] Packet build();

 private:
  void patch_ethertype(std::uint16_t ethertype);
  void patch_l3_protocol(std::uint8_t proto);

  Bytes buf_;
  // offsets of headers needing back-patch; nullopt when absent
  std::optional<std::size_t> eth_off_;
  std::optional<std::size_t> vlan_off_;
  std::optional<std::size_t> ipv4_off_;
  std::optional<std::size_t> ipv6_off_;
  std::optional<std::size_t> tcp_off_;
  std::optional<std::size_t> udp_off_;
  std::optional<std::size_t> icmp_off_;
  std::uint8_t l4_proto_ = 0;
};

}  // namespace osnt::net
