// IPv4 fragmentation and reassembly: generators use it to produce
// fragmented workloads (a classic DUT stressor — TCAMs can't match L4
// ports on non-first fragments), and capture analysis uses reassembly to
// recover the original datagrams.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "osnt/common/time.hpp"
#include "osnt/net/packet.hpp"
#include "osnt/net/parser.hpp"

namespace osnt::net {

/// Split an IPv4 frame so no fragment's frame exceeds `mtu` bytes of L3
/// datagram (header + payload). Returns {packet} unchanged when it fits.
/// Each fragment is a complete Ethernet frame with correct IP lengths,
/// flags/offsets and checksums. Throws std::invalid_argument on non-IPv4
/// input, DF-marked packets that don't fit, or an MTU too small to make
/// progress (< header + 8).
[[nodiscard]] std::vector<Packet> fragment_ipv4(const Packet& packet,
                                                std::size_t mtu);

/// Reassembles fragment streams back into full datagrams. Fragments may
/// arrive in any order; completed datagrams are returned from add().
struct ReassemblerConfig {
  Picos timeout = 30 * kPicosPerSec;  ///< partial datagrams expire
  std::size_t max_pending = 1024;     ///< concurrent partial datagrams
};

class Ipv4Reassembler {
 public:
  using Config = ReassemblerConfig;

  explicit Ipv4Reassembler(Config cfg = Config()) : cfg_(cfg) {}

  /// Feed one frame at time `now`. Unfragmented IPv4 frames come straight
  /// back; a fragment that completes its datagram returns the reassembled
  /// frame; otherwise nullopt.
  [[nodiscard]] std::optional<Packet> add(const Packet& frame, Picos now);

  /// Drop partial datagrams older than the timeout; returns how many.
  std::size_t expire(Picos now);

  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t dropped_overflow() const noexcept {
    return dropped_overflow_;
  }

 private:
  struct Key {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint16_t id = 0;
    std::uint8_t proto = 0;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  struct Partial {
    // offset (bytes) → L3 payload chunk
    std::map<std::uint16_t, Bytes> chunks;
    std::optional<std::size_t> total_payload;  ///< known once last frag seen
    Bytes first_frame_headers;  ///< Ethernet + IP header of offset-0 frag
    Picos first_seen = 0;
  };

  Config cfg_;
  std::map<Key, Partial> pending_;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_overflow_ = 0;
};

}  // namespace osnt::net
