// Protocol header value types with explicit big-endian (de)serialization.
// Each header knows its wire size and reads/writes itself from/to a span;
// reads fail (nullopt) on short buffers rather than asserting.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "osnt/common/types.hpp"

namespace osnt::net {

// ---------------------------------------------------------------- MacAddr
struct MacAddr {
  std::array<std::uint8_t, 6> b{};

  [[nodiscard]] static MacAddr broadcast() noexcept {
    return {{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}};
  }
  /// Parse "aa:bb:cc:dd:ee:ff"; nullopt on malformed input.
  [[nodiscard]] static std::optional<MacAddr> parse(const std::string& s);
  /// Deterministic locally-administered address derived from an index.
  [[nodiscard]] static MacAddr from_index(std::uint64_t idx) noexcept;

  [[nodiscard]] bool is_broadcast() const noexcept;
  [[nodiscard]] bool is_multicast() const noexcept { return b[0] & 1; }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::uint64_t to_u64() const noexcept;

  friend bool operator==(const MacAddr&, const MacAddr&) = default;
  friend auto operator<=>(const MacAddr&, const MacAddr&) = default;
};

// --------------------------------------------------------------- Ipv4Addr
struct Ipv4Addr {
  std::uint32_t v = 0;  ///< host byte order

  [[nodiscard]] static std::optional<Ipv4Addr> parse(const std::string& s);
  [[nodiscard]] static constexpr Ipv4Addr of(std::uint8_t a, std::uint8_t b,
                                             std::uint8_t c, std::uint8_t d) noexcept {
    return {(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
            (std::uint32_t{c} << 8) | d};
  }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Ipv4Addr&, const Ipv4Addr&) = default;
  friend auto operator<=>(const Ipv4Addr&, const Ipv4Addr&) = default;
};

// --------------------------------------------------------------- Ipv6Addr
struct Ipv6Addr {
  std::array<std::uint8_t, 16> b{};

  [[nodiscard]] std::string to_string() const;  ///< full (non-compressed) form
  friend bool operator==(const Ipv6Addr&, const Ipv6Addr&) = default;
};

// ---------------------------------------------------------------- EtherType
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,
  kIpv6 = 0x86DD,
};

// -------------------------------------------------------------- EthHeader
struct EthHeader {
  static constexpr std::size_t kSize = 14;

  MacAddr dst;
  MacAddr src;
  std::uint16_t ethertype = 0;

  [[nodiscard]] static std::optional<EthHeader> read(ByteSpan in) noexcept;
  void write(MutByteSpan out) const noexcept;  ///< out.size() >= kSize
};

// ---------------------------------------------------------------- VlanTag
struct VlanTag {
  static constexpr std::size_t kSize = 4;  ///< TPID + TCI

  std::uint8_t pcp = 0;   ///< priority, 3 bits
  bool dei = false;       ///< drop eligible
  std::uint16_t vid = 0;  ///< VLAN id, 12 bits
  std::uint16_t inner_ethertype = 0;

  [[nodiscard]] static std::optional<VlanTag> read(ByteSpan in) noexcept;
  void write(MutByteSpan out) const noexcept;
};

// -------------------------------------------------------------- Ipv4Header
struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t ihl = 5;  ///< header length in 32-bit words
  std::uint8_t dscp = 0;
  std::uint8_t ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  ///< in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;
  Ipv4Addr src;
  Ipv4Addr dst;

  [[nodiscard]] std::size_t header_len() const noexcept { return std::size_t{ihl} * 4; }
  [[nodiscard]] static std::optional<Ipv4Header> read(ByteSpan in) noexcept;
  /// Writes the header with the stored checksum field; call
  /// finalize_checksum() (or checksum = 0 then compute) beforehand.
  void write(MutByteSpan out) const noexcept;
  /// Computes and stores the correct header checksum over `this`.
  void finalize_checksum() noexcept;
};

// -------------------------------------------------------------- Ipv6Header
struct Ipv6Header {
  static constexpr std::size_t kSize = 40;

  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;  ///< 20 bits
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  Ipv6Addr src;
  Ipv6Addr dst;

  [[nodiscard]] static std::optional<Ipv6Header> read(ByteSpan in) noexcept;
  void write(MutByteSpan out) const noexcept;
};

// -------------------------------------------------------------- ArpHeader
struct ArpHeader {
  static constexpr std::size_t kSize = 28;  ///< Ethernet/IPv4 ARP

  std::uint16_t opcode = 1;  ///< 1=request, 2=reply
  MacAddr sender_mac;
  Ipv4Addr sender_ip;
  MacAddr target_mac;
  Ipv4Addr target_ip;

  [[nodiscard]] static std::optional<ArpHeader> read(ByteSpan in) noexcept;
  void write(MutByteSpan out) const noexcept;
};

// --------------------------------------------------------------- TcpHeader
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
  static constexpr std::uint8_t kUrg = 0x20;
};

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  ///< in 32-bit words
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;
  std::uint16_t urgent_ptr = 0;

  [[nodiscard]] std::size_t header_len() const noexcept {
    return std::size_t{data_offset} * 4;
  }
  [[nodiscard]] static std::optional<TcpHeader> read(ByteSpan in) noexcept;
  void write(MutByteSpan out) const noexcept;
};

// --------------------------------------------------------------- UdpHeader
struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  ///< header + payload
  std::uint16_t checksum = 0;

  [[nodiscard]] static std::optional<UdpHeader> read(ByteSpan in) noexcept;
  void write(MutByteSpan out) const noexcept;
};

// -------------------------------------------------------------- IcmpHeader
struct IcmpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint8_t type = 8;  ///< 8=echo request, 0=echo reply
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;

  [[nodiscard]] static std::optional<IcmpHeader> read(ByteSpan in) noexcept;
  void write(MutByteSpan out) const noexcept;
};

/// IP protocol numbers used throughout.
namespace ipproto {
inline constexpr std::uint8_t kIcmp = 1;
inline constexpr std::uint8_t kTcp = 6;
inline constexpr std::uint8_t kUdp = 17;
}  // namespace ipproto

}  // namespace osnt::net
