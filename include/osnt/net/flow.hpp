// Flow identification: the 5-tuple key used by the monitor's filter/hash
// stages and by the OpenFlow match reduction.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "osnt/net/headers.hpp"
#include "osnt/net/parser.hpp"

namespace osnt::net {

struct FiveTuple {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;
  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;

  [[nodiscard]] std::uint64_t hash() const noexcept;
  /// The same flow with endpoints swapped (reverse direction).
  [[nodiscard]] FiveTuple reversed() const noexcept {
    return {dst_ip, src_ip, dst_port, src_port, protocol};
  }
};

/// Extract the 5-tuple from a parsed IPv4 packet; nullopt for non-IPv4 or
/// port-less protocols other than ICMP (ICMP yields ports = 0).
[[nodiscard]] std::optional<FiveTuple> extract_flow(const ParsedPacket& p) noexcept;

/// Convenience: parse + extract from raw frame bytes.
[[nodiscard]] std::optional<FiveTuple> extract_flow(ByteSpan frame) noexcept;

}  // namespace osnt::net

template <>
struct std::hash<osnt::net::FiveTuple> {
  std::size_t operator()(const osnt::net::FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(t.hash());
  }
};
