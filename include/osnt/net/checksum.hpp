// RFC 1071 internet checksum and the L4 pseudo-header variants.
#pragma once

#include <cstdint>

#include "osnt/common/types.hpp"
#include "osnt/net/headers.hpp"

namespace osnt::net {

/// Incremental ones-complement sum; fold() yields the 16-bit checksum.
class InternetChecksum {
 public:
  void add(ByteSpan data) noexcept;
  void add_u16(std::uint16_t v) noexcept { sum_ += v; }
  void add_u32(std::uint32_t v) noexcept {
    sum_ += (v >> 16) + (v & 0xFFFF);
  }
  [[nodiscard]] std::uint16_t fold() const noexcept;

 private:
  std::uint64_t sum_ = 0;
};

/// One-shot checksum over a buffer (checksum field must be zeroed first).
[[nodiscard]] std::uint16_t internet_checksum(ByteSpan data) noexcept;

/// TCP/UDP checksum over the IPv4 pseudo header + L4 segment. `l4` must
/// contain the full L4 header+payload with its checksum field zeroed.
[[nodiscard]] std::uint16_t l4_checksum_v4(Ipv4Addr src, Ipv4Addr dst,
                                           std::uint8_t protocol,
                                           ByteSpan l4) noexcept;

/// IPv6 variant.
[[nodiscard]] std::uint16_t l4_checksum_v6(const Ipv6Addr& src,
                                           const Ipv6Addr& dst,
                                           std::uint8_t next_header,
                                           ByteSpan l4) noexcept;

}  // namespace osnt::net
