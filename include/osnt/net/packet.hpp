// Packet: the value type that flows through every pipeline. Carries the
// frame bytes (destination MAC through payload, *excluding* the 4-byte FCS,
// which the MAC models append/strip) plus simulation metadata.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "osnt/common/time.hpp"
#include "osnt/common/types.hpp"

namespace osnt::net {

/// Ethernet framing constants (10GBASE-R).
inline constexpr std::size_t kEthHeaderLen = 14;
inline constexpr std::size_t kEthFcsLen = 4;
inline constexpr std::size_t kEthMinFrame = 64;    ///< incl. FCS
inline constexpr std::size_t kEthMaxFrame = 1518;  ///< incl. FCS, untagged
inline constexpr std::size_t kEthPreambleLen = 8;  ///< preamble + SFD
inline constexpr std::size_t kEthIfgLen = 12;      ///< inter-frame gap
/// Per-frame overhead on the wire beyond the frame itself.
inline constexpr std::size_t kEthPerFrameOverhead = kEthPreambleLen + kEthIfgLen;

struct Packet {
  Bytes data;  ///< frame bytes without FCS

  // --- simulation metadata (ground truth; not visible to device logic) ---
  std::uint64_t id = 0;           ///< unique per generated packet
  std::uint32_t ingress_port = 0; ///< port index on the receiving device
  Picos tx_truth = 0;             ///< when the first bit left the source MAC
  Picos rx_truth = 0;             ///< when the last bit arrived at the sink MAC
  bool fcs_bad = false;           ///< corrupted in flight (FCS mismatch)

  Packet() = default;
  explicit Packet(Bytes bytes) : data(std::move(bytes)) {}

  [[nodiscard]] std::size_t size() const noexcept { return data.size(); }
  [[nodiscard]] bool empty() const noexcept { return data.empty(); }

  /// Frame length on the wire including FCS.
  [[nodiscard]] std::size_t wire_len() const noexcept {
    return data.size() + kEthFcsLen;
  }

  /// Bytes occupied on the medium including preamble/SFD and minimum IFG.
  [[nodiscard]] std::size_t line_len() const noexcept {
    return wire_len() + kEthPerFrameOverhead;
  }

  [[nodiscard]] ByteSpan bytes() const noexcept { return {data.data(), data.size()}; }
  [[nodiscard]] MutByteSpan mut_bytes() noexcept { return {data.data(), data.size()}; }
};

/// One-line human-readable summary of a frame (for CLI tools/examples).
[[nodiscard]] std::string describe(const Packet& pkt);

/// Time for `bytes` to serialize at `gbps` (payload bytes only, no framing).
[[nodiscard]] constexpr Picos serialization_time(std::size_t bytes,
                                                 double gbps) noexcept {
  // bits / (Gb/s) = ns; work in picoseconds to stay integral at 10G.
  return static_cast<Picos>(static_cast<double>(bytes) * 8.0 * 1000.0 / gbps);
}

/// Theoretical max frames/sec at `gbps` for a given wire frame size.
[[nodiscard]] constexpr double max_frame_rate(std::size_t frame_len_with_fcs,
                                              double gbps) noexcept {
  const double bits_per_frame =
      static_cast<double>(frame_len_with_fcs + kEthPerFrameOverhead) * 8.0;
  return gbps * 1e9 / bits_per_frame;
}

}  // namespace osnt::net
