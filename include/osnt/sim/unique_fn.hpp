// UniqueFn: a move-only `void()` callable for the event core.
//
// std::function requires copy-constructible targets, which forced every
// packet-carrying call site into a make_shared<Packet> wrapper (two heap
// allocations per event: control block + std::function's own storage).
// UniqueFn accepts move-only captures and keeps them in 104 bytes of
// inline storage — sized so a move-captured {this, net::Packet, 2×Picos}
// closure (88 bytes) fits with zero heap traffic. Larger or over-aligned
// targets fall back to a single heap allocation. The object is one
// 64-byte-aligned 128-byte block with the vtable pointer first, so small
// closures (data + vtable) live on a single cache line — the event slab
// indexes arrays of these.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace osnt::sim {

class alignas(64) UniqueFn {
 public:
  /// Inline storage: fits a move-captured packet closure (see header note).
  static constexpr std::size_t kInlineBytes = 104;

  UniqueFn() noexcept = default;
  UniqueFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, UniqueFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  UniqueFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Construct the target directly in this object's storage (replacing any
  /// current target) — lets the scheduler build a closure in its slab slot
  /// without an intermediate UniqueFn relocation.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, UniqueFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& f) {
    reset();
    if constexpr (fits_inline_<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vt_ = &kInlineVt<D>;
    } else {
      ::new (static_cast<void*>(storage_))
          D*(new D(std::forward<F>(f)));
      vt_ = &kHeapVt<D>;
    }
  }

  UniqueFn(UniqueFn&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(storage_, other.storage_);
      other.vt_ = nullptr;
    }
  }

  UniqueFn& operator=(UniqueFn&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(storage_, other.storage_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  UniqueFn(const UniqueFn&) = delete;
  UniqueFn& operator=(const UniqueFn&) = delete;

  ~UniqueFn() { reset(); }

  /// Destroy the target (and free its captures) without invoking it.
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

  void operator()() { vt_->invoke(storage_); }

  /// Invoke the target, then destroy it, in one virtual dispatch — the
  /// fire-path fast case. Leaves this UniqueFn empty. If the target throws,
  /// it stays alive (and owned) exactly as after a throwing operator().
  void consume() {
    const VTable* vt = vt_;
    vt->consume(storage_);
    vt_ = nullptr;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*consume)(void*);
    /// Move-construct the target into `dst` from `src`, leaving `src` dead.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline_() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* inline_target_(void* p) noexcept {
    return std::launder(reinterpret_cast<D*>(p));
  }
  template <typename D>
  static D* heap_target_(void* p) noexcept {
    return *std::launder(reinterpret_cast<D**>(p));
  }

  template <typename D>
  static constexpr VTable kInlineVt{
      [](void* p) { (*inline_target_<D>(p))(); },
      [](void* p) {
        D* f = inline_target_<D>(p);
        (*f)();
        f->~D();
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*inline_target_<D>(src)));
        inline_target_<D>(src)->~D();
      },
      [](void* p) noexcept { inline_target_<D>(p)->~D(); },
  };

  template <typename D>
  static constexpr VTable kHeapVt{
      [](void* p) { (*heap_target_<D>(p))(); },
      [](void* p) {
        D* f = heap_target_<D>(p);
        (*f)();
        delete f;
      },
      [](void* dst, void* src) noexcept {
        // The target stays put on the heap; only the pointer moves.
        ::new (dst) D*(heap_target_<D>(src));
      },
      [](void* p) noexcept { delete heap_target_<D>(p); },
  };

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
};

static_assert(sizeof(UniqueFn) == 128);

}  // namespace osnt::sim
