// Point-to-point wire model. A Link is unidirectional: the transmit MAC
// pushes frames whose serialization window it already computed; the link
// adds propagation delay and hands the frame to the connected sink.
// A Cable bundles the two directions between two ports.
#pragma once

#include <cstdint>
#include <memory>

#include "osnt/common/random.hpp"
#include "osnt/common/time.hpp"
#include "osnt/net/packet.hpp"
#include "osnt/sim/engine.hpp"

namespace osnt::sim {

/// Anything that can terminate a wire (an RX MAC).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  /// `first_bit` / `last_bit` are arrival times at this sink.
  virtual void on_frame(net::Packet pkt, Picos first_bit, Picos last_bit) = 0;
};

/// Propagation delay of `meters` of fiber (~4.9 ns/m).
[[nodiscard]] constexpr Picos fiber_delay(double meters) noexcept {
  return static_cast<Picos>(meters * 4'900.0);  // ps
}

class Link {
 public:
  /// `propagation` is the one-way flight time of a bit.
  Link(Engine& eng, Picos propagation = fiber_delay(2.0)) noexcept
      : eng_(&eng), propagation_(propagation) {}

  void connect(FrameSink& sink) noexcept { sink_ = &sink; }
  [[nodiscard]] bool connected() const noexcept { return sink_ != nullptr; }
  [[nodiscard]] Picos propagation() const noexcept { return propagation_; }

  /// Inject a bit error rate (errors per transmitted bit). Frames hit by
  /// at least one error are delivered corrupted (a random payload bit is
  /// flipped and the FCS-bad flag set) so the RX MAC counts/drops them.
  void set_bit_error_rate(double ber, std::uint64_t seed = 33) noexcept;
  [[nodiscard]] std::uint64_t frames_corrupted() const noexcept {
    return corrupted_;
  }

  /// Administrative/physical link state. Frames entering a downed link
  /// are lost (counted) — a fiber pull.
  void set_up(bool up) noexcept { up_ = up; }
  [[nodiscard]] bool is_up() const noexcept { return up_; }
  [[nodiscard]] std::uint64_t frames_lost_down() const noexcept {
    return lost_down_;
  }

  /// Fault seam: additional one-way delay applied on top of propagation
  /// (a latency-jitter spike — rerouted path, PAUSE storm). Negative
  /// clamps to zero; frames already in flight keep their old delay.
  void set_extra_delay(Picos extra) noexcept {
    extra_delay_ = extra > 0 ? extra : 0;
  }
  [[nodiscard]] Picos extra_delay() const noexcept { return extra_delay_; }

  /// Carry a frame whose first bit enters the wire at `tx_start` and whose
  /// last bit enters at `tx_end`. Frames on an unconnected link are
  /// counted and discarded (a dark fiber).
  void carry(net::Packet pkt, Picos tx_start, Picos tx_end);

  [[nodiscard]] std::uint64_t frames_carried() const noexcept { return carried_; }
  [[nodiscard]] std::uint64_t frames_lost_dark() const noexcept { return dark_; }

 private:
  Engine* eng_;
  FrameSink* sink_ = nullptr;
  Picos propagation_;
  Picos extra_delay_ = 0;
  double ber_ = 0.0;
  std::unique_ptr<Rng> rng_;
  bool up_ = true;
  std::uint64_t carried_ = 0;
  std::uint64_t dark_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t lost_down_ = 0;
};

}  // namespace osnt::sim
