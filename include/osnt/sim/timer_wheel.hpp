// Hierarchical timing wheel for coarse bulk timers (see DESIGN.md §12).
//
// The wheel is NOT a second priority queue: it is an O(1) staging area in
// front of the engine's 4-ary heap. Entries keep their exact {time, seq}
// keys from arm time; when a bucket comes due its entries are drained
// *into the heap*, which re-sorts them by those exact keys. The fired
// order is therefore bit-identical to routing every timer through the
// heap directly — the wheel only changes *when* an entry starts paying
// O(log n), not where it lands in the total order. That property is what
// keeps kSimOnly telemetry byte-identical across timer routing.
//
// Geometry: 4 levels × 256 slots, one tick = 2^20 ps (~1.05 µs). Level k
// buckets span 2^(20+8k) ps, so the horizon is 2^52 ps ≈ 75 min of sim
// time ahead of the cursor. Schedules at or below the cursor tick, or
// past the horizon (a top-level wrap), are refused and the caller falls
// back to the heap — wrap never happens *inside* the wheel.
//
// Level routing is by high-bit equality with the cursor, not by delta
// magnitude: an entry lands in level k iff its quantized time agrees with
// the cursor above bit 8(k+1). This guarantees fresh entries always land
// strictly ahead of the cursor index at their level, so cursor buckets
// are only ever populated transiently during a cascade.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "osnt/common/time.hpp"

namespace osnt::sim {

class TimerWheel {
 public:
  TimerWheel() {
    for (auto& h : heads_) h = kNil;
  }

  static constexpr std::uint32_t kLevels = 4;
  static constexpr std::uint32_t kSlotBits = 8;
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kSlotBits;  // 256
  static constexpr std::uint32_t kTickShift = 20;
  /// One tick: ~1.05 µs. Coarse bulk timers (RTO, delayed ACK, paced
  /// sends above this pitch) quantize losslessly enough to bucket; the
  /// exact Picos value still travels with the entry. The tick is chosen
  /// so the common bulk deadlines (hundreds of µs to hundreds of ms)
  /// land in levels 0–1 and rarely cascade; sub-tick gaps (tight pacing)
  /// spill to the heap, which is exactly where precise events belong.
  static constexpr Picos kTickPicos = Picos{1} << kTickShift;
  /// Ticks covered by all four levels: 2^32 ticks ≈ 75 min of sim time.
  static constexpr std::uint64_t kHorizonTicks = std::uint64_t{1}
                                                 << (kSlotBits * kLevels);

  /// Grow per-slot node storage to `slots` (parallel to the engine slab;
  /// node i belongs to engine slot i). Never shrinks.
  void ensure_capacity(std::size_t slots) {
    if (nodes_.size() < slots) nodes_.resize(slots);
  }

  /// Try to admit the timer {time, seq, slot}. Returns false when the
  /// quantized time is at/behind the cursor or beyond the horizon — the
  /// caller must push the entry onto the heap instead (the spill path).
  bool schedule(Picos time, std::uint32_t seq, std::uint32_t slot);

  /// O(1) unlink of a pending wheel entry. Precondition: `slot` was
  /// admitted by schedule() and has not been drained or cancelled since.
  void cancel(std::uint32_t slot) noexcept;

  [[nodiscard]] bool has_pending() const noexcept { return pending_ != 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }

  /// Conservative lower bound on the earliest pending entry's time: the
  /// base time of the first occupied bucket. No entry can fire before it.
  /// Call only while has_pending().
  [[nodiscard]] Picos next_due() const noexcept {
    if (!due_dirty_) return cached_due_;
    cached_due_ = scan_due_();
    due_dirty_ = false;
    return cached_due_;
  }

  /// Migrate every entry that might fire at or before `bound` to the
  /// caller: advance the cursor bucket-by-bucket through all due buckets,
  /// cascading higher levels down, and hand each level-0 entry to
  /// `sink(time, seq, slot)` with its exact arm-time keys.
  template <typename Sink>
  void drain_until(Picos bound, Sink&& sink) {
    while (pending_ != 0) {
      const Picos due = next_due();
      if (due > bound) break;
      advance_cursor_(static_cast<std::uint64_t>(due) >> kTickShift);
      drain_cursor_bucket_(sink);
      due_dirty_ = true;
    }
  }

  // Introspection for telemetry/tests (lifetime totals).
  [[nodiscard]] std::uint64_t scheduled() const noexcept { return scheduled_; }
  [[nodiscard]] std::uint64_t cancelled() const noexcept { return cancelled_; }
  [[nodiscard]] std::uint64_t drained() const noexcept { return drained_; }
  [[nodiscard]] std::uint64_t cascaded() const noexcept { return cascaded_; }
  [[nodiscard]] std::uint64_t cur_tick() const noexcept { return cur_tick_; }

 private:
  static constexpr std::uint32_t kNil =
      std::numeric_limits<std::uint32_t>::max();
  static constexpr std::uint32_t kWordsPerLevel = kSlotsPerLevel / 64;

  /// 24-byte intrusive node, indexed by engine slot id. `bucket` is the
  /// flat heads_ index (level * 256 + slot) so an unlink can fix the head
  /// pointer and occupancy bit without re-deriving the route.
  struct Node {
    Picos time = 0;
    std::uint32_t seq = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint16_t bucket = 0;
  };

  /// Level for quantized tick `qt`, given it is strictly ahead of the
  /// cursor and within the horizon: the lowest level whose epoch (bits
  /// above 8(k+1)) still matches the cursor's.
  [[nodiscard]] std::uint32_t level_of_(std::uint64_t qt) const noexcept {
    if ((qt >> kSlotBits) == (cur_tick_ >> kSlotBits)) return 0;
    if ((qt >> (2 * kSlotBits)) == (cur_tick_ >> (2 * kSlotBits))) return 1;
    if ((qt >> (3 * kSlotBits)) == (cur_tick_ >> (3 * kSlotBits))) return 2;
    return 3;
  }

  void link_(std::uint64_t qt, std::uint32_t slot) noexcept;
  void unlink_(std::uint32_t slot) noexcept;
  void advance_cursor_(std::uint64_t tick) noexcept;
  void cascade_(std::uint32_t level, std::uint32_t index) noexcept;
  [[nodiscard]] Picos scan_due_() const noexcept;

  /// Empty the level-0 cursor bucket into the sink. Every resident entry
  /// has quantized time == cur_tick_ exactly.
  template <typename Sink>
  void drain_cursor_bucket_(Sink&& sink) {
    const auto bucket =
        static_cast<std::uint32_t>(cur_tick_ & (kSlotsPerLevel - 1));
    std::uint32_t n = heads_[bucket];
    heads_[bucket] = kNil;
    occupancy_[0][bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
    while (n != kNil) {
      const Node& node = nodes_[n];
      const std::uint32_t next = node.next;
      --pending_;
      ++drained_;
      sink(node.time, node.seq, n);
      n = next;
    }
  }

  std::vector<Node> nodes_;
  std::uint32_t heads_[kLevels * kSlotsPerLevel];  // set to kNil in ctor
  std::uint64_t occupancy_[kLevels][kWordsPerLevel] = {};
  std::uint64_t cur_tick_ = 0;
  std::size_t pending_ = 0;
  mutable Picos cached_due_ = 0;
  mutable bool due_dirty_ = true;

  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t drained_ = 0;
  std::uint64_t cascaded_ = 0;
};

}  // namespace osnt::sim
