// Discrete-event simulation engine. Single-threaded, deterministic:
// events at equal times fire in scheduling order. All hardware models
// (MACs, DMA, switch pipelines, clocks) hang off one Engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "osnt/common/time.hpp"

namespace osnt::sim {

using EventFn = std::function<void()>;

/// Handle for cancellation. Default-constructed id is never issued.
struct EventId {
  std::uint64_t v = 0;
  [[nodiscard]] explicit operator bool() const noexcept { return v != 0; }
  friend bool operator==(const EventId&, const EventId&) = default;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Picos now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now; earlier is clamped to now).
  EventId schedule_at(Picos t, EventFn fn);
  /// Schedule `fn` `dt` picoseconds from now (negative clamps to now).
  EventId schedule_in(Picos dt, EventFn fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  /// Cancel a pending event. Returns false if already fired/cancelled.
  bool cancel(EventId id);

  /// Run a single event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue is empty.
  void run();

  /// Run all events with time <= t, then advance now to exactly t.
  void run_until(Picos t);

  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

 private:
  struct Entry {
    Picos time;
    std::uint64_t seq;  ///< tiebreaker: FIFO among same-time events
    std::uint64_t id;
    // heap entries are moved around; keep the closure on the heap
    std::shared_ptr<EventFn> fn;
    bool operator>(const Entry& o) const noexcept {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  Picos now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> pending_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace osnt::sim
