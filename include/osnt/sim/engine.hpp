// Discrete-event simulation engine. Single-threaded, deterministic:
// events at equal times fire in scheduling order. All hardware models
// (MACs, DMA, switch pipelines, clocks) hang off one Engine.
//
// Hot-path design (see DESIGN.md "Event core"): closures are emplaced
// directly into a generation-counted slab of slots recycled through a
// free list, so the steady state schedules and fires events with zero
// heap allocations. Slots live in fixed 256-entry blocks whose addresses
// never move, which lets a closure execute in place even when it
// schedules new events (reentrant slab growth). The priority queue is a
// 4-ary heap of slim 16-byte {time, seq, slot} entries; cancellation is
// lazy (a cancelled slot's entry is skimmed off the heap head when it
// surfaces). EventId packs {generation, slot}, so a stale id from a
// fired event can never cancel the slot's next occupant.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "osnt/common/time.hpp"
#include "osnt/sim/timer_wheel.hpp"
#include "osnt/sim/unique_fn.hpp"
#include "osnt/telemetry/trace.hpp"

namespace osnt::sim {

/// Move-only: packet-carrying closures are captured by move, not wrapped
/// in shared_ptr to satisfy a copyability requirement.
using EventFn = UniqueFn;

/// Coarse attribution of scheduled events to the component that scheduled
/// them: tags telemetry counters and trace tracks without the engine ever
/// inspecting a closure. Set via Engine::CategoryScope at the scheduling
/// call site; rides in a padding byte of the slot metadata.
enum class EventCategory : std::uint8_t {
  kGeneric = 0,  ///< uncategorized (timers, test closures)
  kGen,          ///< generator TX pipeline pacing
  kLink,         ///< in-flight frames on a link
  kHw,           ///< MAC/DMA hardware models
  kDut,          ///< device-under-test internals
  kMon,          ///< monitor-side bookkeeping
  kFault,        ///< fault-injection schedule (osnt::fault::Injector)
  kTcp,          ///< transport-layer timers (osnt::tcp pacing, RTO, ACKs)
};
inline constexpr std::size_t kEventCategoryCount = 8;

[[nodiscard]] constexpr const char* event_category_name(
    EventCategory c) noexcept {
  constexpr const char* kNames[kEventCategoryCount] = {
      "generic", "gen", "link", "hw", "dut", "mon", "fault", "tcp"};
  return kNames[static_cast<std::size_t>(c)];
}

/// Which watchdog tripped.
enum class WatchdogKind : std::uint8_t {
  kEventBudget,  ///< deterministic: the Nth dispatched event
  kWallClock,    ///< host-time safety net; inherently nondeterministic
};

/// Thrown out of step()/run()/run_until() when a watchdog trips. The
/// engine stays destructible (pending closures are freed by the slab),
/// but the simulation it was driving is dead — catch at trial scope.
class WatchdogError : public std::runtime_error {
 public:
  WatchdogError(WatchdogKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  [[nodiscard]] WatchdogKind kind() const noexcept { return kind_; }

 private:
  WatchdogKind kind_;
};

/// Watchdog limits a new Engine adopts at construction. Zero = off.
struct WatchdogConfig {
  std::uint64_t event_budget = 0;    ///< max dispatched events per engine
  std::uint64_t wall_budget_ms = 0;  ///< wall-clock ms from construction
};

/// The trial runner cannot reach into engines a trial constructs for
/// itself, so watchdog limits travel ambiently: a WatchdogScope sets a
/// thread-local config and every Engine built on that thread while the
/// scope is alive adopts it. Scopes nest (inner wins, restored on exit).
class WatchdogScope {
 public:
  explicit WatchdogScope(WatchdogConfig cfg) noexcept;
  ~WatchdogScope();
  WatchdogScope(const WatchdogScope&) = delete;
  WatchdogScope& operator=(const WatchdogScope&) = delete;

 private:
  WatchdogConfig prev_;
};

/// The thread's current ambient watchdog config (all-zero when none).
[[nodiscard]] WatchdogConfig ambient_watchdog() noexcept;

/// Handle for cancellation. Default-constructed id is never issued.
struct EventId {
  std::uint64_t v = 0;
  [[nodiscard]] explicit operator bool() const noexcept { return v != 0; }
  friend bool operator==(const EventId&, const EventId&) = default;
};

class Engine {
 public:
  /// Adopts the thread's ambient WatchdogConfig (see WatchdogScope).
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  /// Merges this engine's counters into the process-wide telemetry
  /// registry (when telemetry is enabled) — one engine is one shard, and
  /// merging at end of life keeps the event hot path free of atomics.
  ~Engine();

  [[nodiscard]] Picos now() const noexcept { return now_; }

  /// RAII tag: events scheduled while the scope is alive carry `cat`.
  class CategoryScope {
   public:
    CategoryScope(Engine& eng, EventCategory cat) noexcept
        : eng_(&eng), prev_(eng.cat_) {
      eng.cat_ = cat;
    }
    ~CategoryScope() { eng_->cat_ = prev_; }
    CategoryScope(const CategoryScope&) = delete;
    CategoryScope& operator=(const CategoryScope&) = delete;

   private:
    Engine* eng_;
    EventCategory prev_;
  };

  /// Attach a sim-time trace recorder; every fired event becomes a
  /// zero-width slice on its category's track. The recorder must outlive
  /// the engine (or be detached with nullptr first). Null disables.
  void set_trace(telemetry::TraceRecorder* tr) {
    trace_ = tr;
    if (tr) {
      for (std::size_t c = 0; c < kEventCategoryCount; ++c) {
        trace_tracks_[c] = tr->track(
            std::string("engine/") +
            event_category_name(static_cast<EventCategory>(c)));
      }
    }
  }
  [[nodiscard]] telemetry::TraceRecorder* trace() const noexcept {
    return trace_;
  }

  /// Accumulate per-category wall time spent inside handlers (two clock
  /// reads per event — leave off unless profiling; the totals flush to
  /// `sim.engine.handler_ns.wall.<category>` counters).
  void set_handler_timing(bool on) noexcept { timing_ = on; }

  /// Schedule `fn` at absolute time `t` (>= now; earlier is clamped to now).
  /// The callable is emplaced straight into its slab slot.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_at(Picos t, F&& fn) {
    const std::uint32_t slot = acquire_slot_();
    fn_(slot).emplace(std::forward<F>(fn));
    return arm_(t, slot, meta_[slot]);
  }
  EventId schedule_at(Picos t, EventFn fn) {
    const std::uint32_t slot = acquire_slot_();
    fn_(slot) = std::move(fn);
    return arm_(t, slot, meta_[slot]);
  }

  /// Schedule `fn` `dt` picoseconds from now (negative clamps to now).
  template <typename F>
  EventId schedule_in(Picos dt, F&& fn) {
    return schedule_at(now_ + dt, std::forward<F>(fn));
  }

  /// Timer-class variant of schedule_at for coarse *bulk* timers — RTO,
  /// delayed ACK, pacing at ≥ tens-of-ns pitch — of which a large flow
  /// count arms millions. Routed to the hierarchical timing wheel (O(1)
  /// schedule/cancel) instead of the O(log n) heap; entries migrate to
  /// the heap only when due, carrying their exact {time, seq} keys, so
  /// firing order — and kSimOnly telemetry — is identical to schedule_at
  /// for any configuration. Sub-tick times, times at/behind the wheel
  /// cursor, and times past the ~281 s horizon spill to the heap.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_bulk_at(Picos t, F&& fn) {
    const std::uint32_t slot = acquire_slot_();
    fn_(slot).emplace(std::forward<F>(fn));
    return arm_bulk_(t, slot, meta_[slot]);
  }
  EventId schedule_bulk_at(Picos t, EventFn fn) {
    const std::uint32_t slot = acquire_slot_();
    fn_(slot) = std::move(fn);
    return arm_bulk_(t, slot, meta_[slot]);
  }
  template <typename F>
  EventId schedule_bulk_in(Picos dt, F&& fn) {
    return schedule_bulk_at(now_ + dt, std::forward<F>(fn));
  }

  /// Route schedule_bulk_* to the heap instead of the wheel (A/B baseline
  /// for benchmarks and equivalence tests). Firing order is unaffected.
  void set_wheel_enabled(bool on) noexcept { wheel_enabled_ = on; }
  [[nodiscard]] bool wheel_enabled() const noexcept { return wheel_enabled_; }
  [[nodiscard]] const TimerWheel& wheel() const noexcept { return wheel_; }
  /// Bulk timers the wheel refused (sub-tick, at/behind cursor, or past
  /// the horizon) that fell back to the heap.
  [[nodiscard]] std::uint64_t wheel_spilled() const noexcept {
    return wheel_spilled_;
  }

  /// Cancel a pending event. Returns false if already fired/cancelled.
  bool cancel(EventId id);

  /// Override/disable the event-budget watchdog (0 = unlimited). The
  /// budget counts dispatched events over the engine's whole life, so it
  /// is exactly reproducible: the same simulation dies on the same event.
  void set_event_budget(std::uint64_t budget) noexcept {
    budget_ = budget;
    watchdog_on_ = budget_ != 0 || wall_armed_;
  }
  [[nodiscard]] std::uint64_t event_budget() const noexcept { return budget_; }

  /// Arm (or disarm with 0) a wall-clock deadline `ms` from now. Checked
  /// every 1024 events — a safety net for handlers that block, not a
  /// precise timer, and nondeterministic by nature (see DESIGN.md §10).
  void set_wall_deadline_in(std::uint64_t ms) noexcept {
    wall_armed_ = ms != 0;
    if (wall_armed_) {
      wall_deadline_ = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(static_cast<std::int64_t>(ms));
    }
    watchdog_on_ = budget_ != 0 || wall_armed_;
  }

  /// Run a single event. Returns false when the queue is empty.
  /// Throws WatchdogError once a trip point is reached.
  bool step() {
    // Check only while work remains: a budget that exactly covers the
    // run must drain the queue, not trip on the way out.
    if (watchdog_on_ && live_ != 0) check_watchdog_();
    Picos t;
    const std::uint32_t slot =
        pop_next_live_(std::numeric_limits<Picos>::max(), t);
    if (slot == kNilSlot) return false;
    now_ = t;
    ++processed_;
    dispatch_(slot);
    return true;
  }

  /// Run until the queue is empty.
  void run();

  /// Run all events with time <= t, then advance now to exactly t.
  void run_until(Picos t);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }
  [[nodiscard]] std::uint64_t events_cancelled() const noexcept {
    return cancelled_;
  }
  /// Deepest the heap has ever been (includes lazily-cancelled entries).
  [[nodiscard]] std::size_t heap_high_water() const noexcept {
    return heap_hw_;
  }
  /// Most events simultaneously live (scheduled, not yet fired/cancelled).
  [[nodiscard]] std::size_t live_high_water() const noexcept {
    return live_hw_;
  }
  /// Slab capacity in slots (a multiple of the 256-entry block size).
  [[nodiscard]] std::size_t slab_slots() const noexcept {
    return meta_.size();
  }

 private:
  static constexpr std::uint32_t kNilSlot =
      std::numeric_limits<std::uint32_t>::max();
  static constexpr std::uint32_t kSlotBlockShift = 8;
  static constexpr std::uint32_t kSlotBlockSize = 1u << kSlotBlockShift;

  /// Slim 16-byte heap entry; the closure stays put in the slab while
  /// entries are sifted around.
  struct HeapEntry {
    Picos time;
    std::uint32_t seq;  ///< tiebreaker: FIFO among same-time events
    std::uint32_t slot;
  };

  enum class State : std::uint8_t { kFree, kPending, kCancelled, kRunning };

  /// Slot bookkeeping lives in a dense parallel array (12 B/slot) so the
  /// cancel-check on the pop path stays L1-resident even when the closure
  /// slab has outgrown the cache.
  /// Which structure currently holds a kPending slot's {time, seq} entry.
  enum class Where : std::uint8_t { kHeap, kWheel };

  struct SlotMeta {
    std::uint32_t gen = 1;  ///< bumped on release; stale ids mismatch
    std::uint32_t next_free = kNilSlot;
    State state = State::kFree;
    /// EventCategory of the pending event; rides in padding, so the
    /// telemetry tag costs no slot-metadata footprint at all.
    std::uint8_t category = 0;
    /// Rides in the remaining padding byte: cancel() must know whether to
    /// unlink from the wheel (eager, O(1)) or mark for the lazy heap skim.
    Where where = Where::kHeap;
  };

  /// `seq` is a wrapping 32-bit counter; events pending at the same time
  /// always span far less than 2^31 seqs, so circular comparison gives the
  /// exact FIFO order while keeping heap entries at 16 bytes.
  static bool before_(const HeapEntry& a, const HeapEntry& b) noexcept {
    // Bitwise (not short-circuit) composition so the comparison compiles to
    // flag ops + cmov: the sift loops select among random keys, and a
    // branchy two-field compare costs a mispredict per level.
    const bool lt = a.time < b.time;
    const bool eq = a.time == b.time;
    const bool seq_lt = static_cast<std::int32_t>(a.seq - b.seq) < 0;
    return lt | (eq & seq_lt);
  }

  [[nodiscard]] static EventId id_of_(std::uint32_t slot,
                                      std::uint32_t gen) noexcept {
    return EventId{(static_cast<std::uint64_t>(gen) << 32) | slot};
  }

  [[nodiscard]] UniqueFn& fn_(std::uint32_t i) noexcept {
    return blocks_[i >> kSlotBlockShift][i & (kSlotBlockSize - 1)];
  }

  EventId arm_(Picos t, std::uint32_t slot, SlotMeta& m) {
    m.state = State::kPending;
    m.category = static_cast<std::uint8_t>(cat_);
    m.where = Where::kHeap;
    heap_push_(HeapEntry{t > now_ ? t : now_, next_seq_++, slot});
    ++live_;
    live_hw_ = live_ > live_hw_ ? live_ : live_hw_;
    return id_of_(slot, m.gen);
  }

  /// arm_ with wheel routing. The seq is consumed identically on both
  /// routes, so the fired (time, seq) order — and every sim-only counter
  /// derived from it — does not depend on where the entry waited.
  EventId arm_bulk_(Picos t, std::uint32_t slot, SlotMeta& m) {
    m.state = State::kPending;
    m.category = static_cast<std::uint8_t>(cat_);
    const Picos when = t > now_ ? t : now_;
    const std::uint32_t seq = next_seq_++;
    if (wheel_enabled_ && wheel_.schedule(when, seq, slot)) {
      m.where = Where::kWheel;
    } else {
      if (wheel_enabled_) ++wheel_spilled_;
      m.where = Where::kHeap;
      heap_push_(HeapEntry{when, seq, slot});
    }
    ++live_;
    live_hw_ = live_ > live_hw_ ? live_ : live_hw_;
    return id_of_(slot, m.gen);
  }

  std::uint32_t acquire_slot_() {
    if (free_head_ == kNilSlot) add_block_();
    const std::uint32_t slot = free_head_;
    free_head_ = meta_[slot].next_free;
    // Overlap the next acquisition's slab write-miss with this event's setup.
    if (free_head_ != kNilSlot) __builtin_prefetch(&fn_(free_head_), 1, 1);
    return slot;
  }

  /// Precondition: the slot's closure is already empty — consume() emptied
  /// it on the fire path, cancel() reset it before the lazy skim.
  void release_slot_(std::uint32_t slot) noexcept {
    SlotMeta& m = meta_[slot];
    // Bump the generation so any EventId still pointing here goes stale.
    // gen 0 is reserved: it would make {gen, slot 0} collide with the null id.
    if (++m.gen == 0) m.gen = 1;
    m.state = State::kFree;
    m.next_free = free_head_;
    free_head_ = slot;
  }

  /// Run the closure in place (block addresses are stable, so reentrant
  /// scheduling can't move it), then recycle the slot. While running, the
  /// slot is off both the heap and the free list: kRunning just makes a
  /// same-generation cancel from within the callback report false, as a
  /// fired event always has.
  void fire_(std::uint32_t slot) {
    fn_(slot).consume();  // invoke + destroy in one dispatch
    release_slot_(slot);
  }

  /// fire_ plus the observability hooks. One predictable branch each for
  /// tracing and handler timing when both are off — the hot-path cost the
  /// bench_telemetry gate holds to single digits.
  void dispatch_(std::uint32_t slot) {
    const std::uint8_t cat = meta_[slot].category;
    if (trace_) {
      trace_->complete(trace_tracks_[cat],
                       event_category_name(static_cast<EventCategory>(cat)),
                       now_, 0);
    }
    if (timing_) {
      const auto t0 = std::chrono::steady_clock::now();
      fire_(slot);
      handler_ns_[cat] += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    } else {
      fire_(slot);
    }
  }

  /// Skim cancelled entries off the heap head, drain any due wheel
  /// buckets into the heap, then pop the next live event if its time is
  /// <= `limit`. Returns its slot (kRunning, already off the heap) and
  /// fills `time`, or kNilSlot.
  ///
  /// Order matters: cancelled heads are skimmed *before* the drain bound
  /// is computed, so the bound is the live heap head. A cancelled head's
  /// (possibly earlier) time must not mask a due wheel bucket, or a live
  /// heap entry could fire ahead of a wheel entry that sorts before it.
  std::uint32_t pop_next_live_(Picos limit, Picos& time) {
    for (;;) {
      while (!heap_.empty() &&
             meta_[heap_.front().slot].state == State::kCancelled) {
        release_slot_(heap_.front().slot);
        heap_pop_();
      }
      if (wheel_.has_pending()) {
        const Picos head =
            heap_.empty() ? std::numeric_limits<Picos>::max()
                          : heap_.front().time;
        const Picos bound = head < limit ? head : limit;
        const Picos due = wheel_.next_due();
        if (due <= bound) {
          // Migrate the earliest due bucket onto the heap with its exact
          // arm-time keys; the heap merges it into the global (time, seq)
          // order. Draining only to `due` — not all the way to `bound` —
          // keeps far-future entries parked in O(1) buckets instead of
          // mass-migrating the whole window when the heap happens to be
          // empty; the loop re-evaluates with the updated heap head.
          wheel_.drain_until(due, [this](Picos t, std::uint32_t seq,
                                         std::uint32_t slot) {
            meta_[slot].where = Where::kHeap;
            heap_push_(HeapEntry{t, seq, slot});
          });
          continue;  // the heap head may have changed
        }
      }
      if (heap_.empty() || heap_.front().time > limit) return kNilSlot;
      const HeapEntry top = heap_.front();
      meta_[top.slot].state = State::kRunning;
      --live_;
      heap_pop_();
      // Overlap the next closure's slab miss with this one's execution.
      if (!heap_.empty()) __builtin_prefetch(&fn_(heap_.front().slot), 1, 1);
      time = top.time;
      return top.slot;
    }
  }

  // Hole-shifting sift-up/down: one final store instead of a swap per level.
  void heap_push_(const HeapEntry& e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    heap_hw_ = heap_.size() > heap_hw_ ? heap_.size() : heap_hw_;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before_(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void heap_pop_() {
    const HeapEntry tail = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    // Floyd's variant: walk the min-child path all the way to a leaf, then
    // bubble the tail up — skips the per-level tail comparison, and the
    // tail (a former leaf) almost always belongs near the bottom anyway.
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        best = before_(heap_[c], heap_[best]) ? c : best;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before_(tail, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = tail;
  }

  void add_block_();
  /// Out of line: the throw paths stay off the step() fast path.
  void check_watchdog_() const;

  Picos now_ = 0;
  std::uint32_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t live_ = 0;  ///< scheduled and not yet fired/cancelled
  std::size_t live_hw_ = 0;
  std::size_t heap_hw_ = 0;
  EventCategory cat_ = EventCategory::kGeneric;
  std::uint64_t budget_ = 0;  ///< 0 = unlimited
  std::chrono::steady_clock::time_point wall_deadline_{};
  bool wall_armed_ = false;
  bool watchdog_on_ = false;  ///< budget_ != 0 || wall_armed_
  bool timing_ = false;
  telemetry::TraceRecorder* trace_ = nullptr;
  telemetry::TraceRecorder::TrackId trace_tracks_[kEventCategoryCount] = {};
  std::uint64_t handler_ns_[kEventCategoryCount] = {};
  std::vector<HeapEntry> heap_;
  /// Staging area for schedule_bulk_* timers; drains into heap_ when due.
  TimerWheel wheel_;
  bool wheel_enabled_ = true;
  std::uint64_t wheel_spilled_ = 0;  ///< bulk timers the wheel refused
  /// Fixed-size blocks: closure addresses are stable across slab growth,
  /// so a closure can run in place while scheduling new events.
  std::vector<std::unique_ptr<UniqueFn[]>> blocks_;
  std::vector<SlotMeta> meta_;  ///< parallel to slot indices
  std::uint32_t free_head_ = kNilSlot;
};

}  // namespace osnt::sim
