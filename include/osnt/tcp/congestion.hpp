// Pluggable congestion control for osnt::tcp flows. The controller is a
// pure policy object: the flow feeds it ACK/loss/RTO events (with
// delivery-rate samples, BBR-style) and reads back a congestion window
// and an optional pacing rate. Three implementations ship: NewReno
// (RFC 5681/6582 window arithmetic), CubicLite (RFC 8312 window curve),
// and BbrLite (startup/drain/probe_bw gain cycling with windowed
// delivery-rate sampling, modelled on R-TCP's rtcp_bbr.c / Linux BBRv1 —
// see DESIGN.md §11 for what it keeps and drops).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "osnt/common/time.hpp"

namespace osnt::tcp {

struct CcConfig {
  std::uint32_t mss = 1448;            ///< payload bytes per full segment
  std::uint64_t initial_cwnd = 0;      ///< 0 = 10·mss (RFC 6928 IW10)
  std::uint64_t min_cwnd = 0;          ///< 0 = 2·mss (BbrLite floors at 4·mss)
};

/// One ACK's worth of feedback, delivered after the flow has advanced
/// snd_una and updated its delivery-rate estimator.
struct AckEvent {
  Picos now = 0;
  std::uint64_t bytes_acked = 0;      ///< newly cum-acked by this ACK
  std::uint64_t bytes_in_flight = 0;  ///< outstanding after the advance
  Picos rtt = 0;                      ///< this ACK's RTT sample (0 = none)
  double delivery_rate_bps = 0.0;     ///< windowed sample (0 = none)
  bool round_start = false;           ///< a packet-timed round elapsed
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void on_ack(const AckEvent& ev) = 0;
  /// Loss inferred from 3 duplicate ACKs (entering fast retransmit).
  virtual void on_loss(Picos now, std::uint64_t bytes_in_flight) = 0;
  /// Retransmission timeout fired (go-back-N restart follows).
  virtual void on_rto(Picos now) = 0;

  /// A RateLimitDetector verdict: the path is policed at `rate_bps`
  /// (payload bits/s, the same unit as AckEvent::delivery_rate_bps) with
  /// an unqueued round trip of `min_rtt`. Controllers that understand
  /// policers cap cwnd/pacing near the policer BDP instead of
  /// sawtoothing against its drops; `rate_bps == 0` revokes the verdict
  /// (the limiter was lifted or raised). The default is a no-op so
  /// detector-off — and controllers without an adaptation — behave
  /// exactly as before.
  virtual void adapt_to_policer(double rate_bps, Picos min_rtt) {
    (void)rate_bps;
    (void)min_rtt;
  }

  [[nodiscard]] virtual std::uint64_t cwnd_bytes() const = 0;
  /// Pacing rate in bits/s; 0 = unpaced (pure ACK clocking).
  [[nodiscard]] virtual double pacing_rate_bps() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Factory over the CLI names: "newreno" | "cubic" | "bbr".
/// Throws std::invalid_argument for anything else.
[[nodiscard]] std::unique_ptr<CongestionControl> make_congestion_control(
    const std::string& name, CcConfig cfg);

}  // namespace osnt::tcp
