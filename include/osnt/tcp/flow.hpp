// One TCP sender: sliding window over an unbounded (or byte-limited)
// application stream, RFC 6298 RTO estimation with bounded exponential
// backoff, fast retransmit on 3 duplicate ACKs, and a SACK-less
// go-back-N retransmit queue. The flow does not own a socket or a wire —
// it emits ready-to-send `net::` TCP/IPv4 frames through a SegmentEmitter
// (in practice gen::ClosedLoopSource + TxPipeline::kick) and is fed ACKs
// by the receiving monitor pipeline's tap. All timers run on the sim
// engine under EventCategory::kTcp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "osnt/net/headers.hpp"
#include "osnt/net/packet.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/tcp/congestion.hpp"
#include "osnt/tcp/rate_limit_detector.hpp"
#include "osnt/telemetry/histogram.hpp"
#include "osnt/telemetry/trace.hpp"

namespace osnt::mon {
class LatencyProbe;
}

namespace osnt::tcp {

/// RFC 6298 retransmission-timer estimator. SRTT/RTTVAR with the standard
/// α=1/8, β=1/4 gains; RTO = SRTT + max(G, 4·RTTVAR) clamped to
/// [min_rto, max_rto]; timer backoff doubles the effective RTO per fire,
/// also clamped to max_rto (the "bounded exponential backoff"). A fresh
/// RTT sample resets the backoff. Pure arithmetic — deterministic by
/// construction, property-tested in test_property.cpp.
class RtoEstimator {
 public:
  RtoEstimator(Picos min_rto, Picos max_rto, Picos granularity = kPicosPerNano)
      : min_rto_(min_rto), max_rto_(max_rto), granularity_(granularity) {}

  void sample(Picos rtt) {
    if (rtt <= 0) return;
    if (srtt_ == 0) {  // first measurement (RFC 6298 §2.2)
      srtt_ = rtt;
      rttvar_ = rtt / 2;
    } else {  // RFC 6298 §2.3
      const Picos err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
      rttvar_ = rttvar_ - rttvar_ / 4 + err / 4;
      srtt_ = srtt_ - srtt_ / 8 + rtt / 8;
    }
    backoff_ = 0;
  }

  /// Timer fired: double the effective RTO (bounded by max_rto).
  void backoff() {
    if (rto() < max_rto_) ++backoff_;
  }

  [[nodiscard]] Picos rto() const {
    Picos base = srtt_ == 0 ? min_rto_
                            : srtt_ + std::max(granularity_, 4 * rttvar_);
    if (base < min_rto_) base = min_rto_;
    for (std::uint32_t i = 0; i < backoff_ && base < max_rto_; ++i) base *= 2;
    return base > max_rto_ ? max_rto_ : base;
  }

  [[nodiscard]] Picos srtt() const { return srtt_; }
  [[nodiscard]] Picos rttvar() const { return rttvar_; }
  [[nodiscard]] std::uint32_t backoff_count() const { return backoff_; }

 private:
  Picos min_rto_;
  Picos max_rto_;
  Picos granularity_;
  Picos srtt_ = 0;
  Picos rttvar_ = 0;
  std::uint32_t backoff_ = 0;
};

struct FlowConfig {
  std::uint32_t flow_id = 0;
  net::MacAddr src_mac{};
  net::MacAddr dst_mac{};
  net::Ipv4Addr src_ip{};
  net::Ipv4Addr dst_ip{};
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t mss = 1448;           ///< 1448 ⇒ 1518 B frames with options
  std::uint64_t bytes_to_send = 0;    ///< 0 = unbounded (duration-limited)
  std::uint64_t rwnd_bytes = 1 << 20; ///< peer's (fixed) receive window
  std::uint64_t seed = 1;             ///< per-flow stream; derives the ISN
  std::string cc = "newreno";
  Picos min_rto = kPicosPerMilli;       ///< sim-scaled (RFC says 1 s; §11)
  Picos max_rto = 250 * kPicosPerMilli;
  /// IPv4 DSCP stamped on every segment (and echoed on ACKs by the
  /// workload), so in-plane monitor probes can bin flows by class.
  std::uint8_t dscp = 0;
  /// Optional in-plane RTT sink: every accepted RTT sample (the same
  /// ones that feed the RTO estimator) is observed under class `dscp`.
  /// Not owned; must outlive the flow.
  mon::LatencyProbe* rtt_probe = nullptr;
  /// R-TCP-style rate-limit detection (DESIGN.md §15): watch the
  /// delivery-rate/RTT estimators for a policer plateau and feed the
  /// verdict to `CongestionControl::adapt_to_policer`. Off by default —
  /// and when off, the detector is never constructed, so the flow is
  /// byte-identical to a build without it.
  bool rate_limit_detector = false;
  RateLimitDetectorConfig rld{};
};

/// Sender-side counters, exposed for tests and the CLI report.
struct FlowStats {
  std::uint64_t segs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_acked = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t dup_acks = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rto_fires = 0;
  std::uint64_t fast_retx = 0;
  std::uint64_t cwnd_reductions = 0;  ///< times cwnd shrank on loss/RTO
  std::uint64_t emit_rejects = 0;     ///< segments the bottleneck queue refused
};

class Flow {
 public:
  /// Hand a frame to the wire-side (closed-loop source). Returns false
  /// when the bottleneck queue is full — the segment is then simply lost
  /// and recovered like any other drop.
  using SegmentEmitter = std::function<bool(net::Packet&&)>;

  /// Optional admission probe consulted before a segment is serialized.
  /// Returning false means "a frame offered right now would be
  /// tail-dropped" — the flow then skips building the frame entirely
  /// (the per-packet hot path stays allocation-free under congestion)
  /// and the probe is responsible for recording the drop exactly as a
  /// refused offer would have.
  using EmitPreflight = std::function<bool()>;

  Flow(sim::Engine& eng, FlowConfig cfg, SegmentEmitter emit);
  ~Flow();  // cancels pending timers; merges the telemetry shard

  void set_emit_preflight(EmitPreflight probe) {
    preflight_ = std::move(probe);
  }

  Flow(const Flow&) = delete;
  Flow& operator=(const Flow&) = delete;

  /// Open the window and send the first burst.
  void start();

  /// Feed one received pure-ACK header (from the monitor tap on the
  /// sender's port). `peer_tsval`/`tsecr` are the ACK's timestamps-option
  /// fields (0 = absent); `now` is the ACK's MAC-receipt time.
  void on_ack(const net::TcpHeader& hdr, std::uint32_t peer_tsval,
              std::uint32_t tsecr, Picos now);

  // --- introspection ---
  [[nodiscard]] const FlowStats& stats() const { return stats_; }
  [[nodiscard]] const FlowConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t cwnd_bytes() const { return cc_->cwnd_bytes(); }
  [[nodiscard]] Picos srtt() const { return rto_.srtt(); }
  [[nodiscard]] Picos current_rto() const { return rto_.rto(); }
  /// Windowed-max delivery-rate estimate (max sample over the last 10
  /// packet-timed rounds, BBR bw-filter semantics). The instantaneous
  /// sample dips during pacing drain phases; the windowed max tracks the
  /// bottleneck.
  [[nodiscard]] double delivery_rate_bps() const {
    return rate_window_.empty() ? last_rate_bps_ : rate_window_.front().second;
  }
  /// Most recent raw delivery-rate sample (delivered-delta / elapsed).
  [[nodiscard]] double last_delivery_sample_bps() const {
    return last_rate_bps_;
  }
  [[nodiscard]] std::uint64_t bytes_in_flight() const {
    return snd_nxt_ - snd_una_;
  }
  [[nodiscard]] bool done() const {
    return cfg_.bytes_to_send != 0 && snd_una_ >= cfg_.bytes_to_send;
  }
  [[nodiscard]] std::uint32_t isn() const { return isn_; }
  [[nodiscard]] const CongestionControl& cc() const { return *cc_; }
  /// Null unless `FlowConfig::rate_limit_detector` was set.
  [[nodiscard]] const RateLimitDetector* rate_limit_detector() const {
    return rld_.get();
  }

 private:
  struct SegRec {
    std::uint64_t offset;      ///< stream offset of the first payload byte
    std::uint32_t len;
    Picos sent_time;
    std::uint64_t delivered_at_send;  ///< delivery-rate sample anchors
    Picos delivered_time_at_send;
  };

  void try_send();
  void emit_segment(std::uint64_t offset, std::uint32_t len, bool in_place);
  void on_rto_fire();
  void arm_rto();
  void note_cwnd(Picos now);
  [[nodiscard]] std::int64_t unwrap_ack(std::uint32_t ack32) const;
  [[nodiscard]] std::uint32_t seq32_of(std::uint64_t offset) const {
    return isn_ + static_cast<std::uint32_t>(offset);
  }

  sim::Engine* eng_;
  FlowConfig cfg_;
  SegmentEmitter emit_;
  EmitPreflight preflight_;       ///< null = always build and offer
  std::size_t line_overhead_ = 0; ///< line_len minus payload, from 1st build
  std::unique_ptr<CongestionControl> cc_;
  std::unique_ptr<RateLimitDetector> rld_;  ///< null = detector off
  RtoEstimator rto_;
  std::uint32_t isn_;

  std::uint64_t snd_una_ = 0;  ///< stream offsets, 0-based (header adds ISN)
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t max_sent_ = 0;
  std::deque<SegRec> inflight_;
  std::uint32_t dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_point_ = 0;
  std::uint32_t last_tsecr_seen_ = 0;  ///< peer tsval to echo back

  // Delivery-rate estimator (BBR-style: delivered-bytes deltas between
  // a segment's send anchor and its ACK).
  std::uint64_t delivered_ = 0;
  Picos delivered_time_ = 0;
  std::uint64_t round_mark_ = 0;  ///< `delivered_` at last round start
  std::uint64_t round_count_ = 0;
  double last_rate_bps_ = 0.0;
  /// Monotone-decreasing (round, rate) deque: front holds the windowed max.
  std::deque<std::pair<std::uint64_t, double>> rate_window_;

  Picos pace_next_ = 0;
  std::size_t last_line_len_ = 0;
  sim::EventId pace_timer_{};
  sim::EventId rto_timer_{};

  FlowStats stats_;
  // Telemetry shards (merged into tcp.* at destruction, commutatively).
  telemetry::Log2Histogram cwnd_hist_;
  telemetry::Log2Histogram srtt_hist_;
  telemetry::Log2Histogram rate_hist_;
  telemetry::Log2Histogram rld_rate_hist_;  ///< detected rate (Mb/s)
  telemetry::Log2Histogram rld_ttd_hist_;   ///< time-to-detect (µs)
  telemetry::TraceRecorder::TrackId trace_track_ = 0;
  bool trace_track_set_ = false;
};

}  // namespace osnt::tcp
