// ClosedLoopWorkload: N congestion-controlled flows over one cabled pair
// of OSNT ports. The sender side lives on `tx_port`: per-flow tcp::Flow
// state machines emit TCP/IPv4 frames into one shared
// gen::ClosedLoopSource, which the port's TX pipeline drains at the
// configured bottleneck rate (the queue bound is the bottleneck buffer).
// The receiver side hangs off `rx_port`'s monitor pipeline tap: per-flow
// delayed-ACK reassembly state that transmits cumulative/duplicate ACKs
// back through the reverse sim link — so loss injected anywhere on the
// path (osnt::fault BER windows, flaps) closes the control loop.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "osnt/core/device.hpp"
#include "osnt/fault/plan.hpp"
#include "osnt/gen/closed_loop.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/tcp/flow.hpp"

namespace osnt::tcp {

struct WorkloadConfig {
  std::size_t flows = 1;
  std::string cc = "newreno";
  std::uint32_t mss = 1448;          ///< 1448 ⇒ 1518 B frames with options
  std::uint64_t seed = 1;            ///< trial seed; flows derive substreams
  double bottleneck_gbps = 0.0;      ///< TX drain rate; 0 = port line rate
  std::size_t queue_segments = 256;  ///< bottleneck buffer, in frames
  std::uint64_t rwnd_bytes = std::uint64_t{1} << 20;
  std::uint64_t bytes_per_flow = 0;  ///< 0 = unbounded (duration-limited)
  std::size_t tx_port = 0;
  std::size_t rx_port = 1;
  Picos min_rto = kPicosPerMilli;    ///< sim-scaled; see DESIGN.md §11
  Picos max_rto = 250 * kPicosPerMilli;
  Picos delayed_ack_timeout = 200 * kPicosPerMicro;
  bool capture = false;              ///< keep the DMA capture path off
};

/// Receiver-side per-flow state: cumulative reassembly point, a small
/// out-of-order interval set (data is go-back-N so it stays small), and
/// RFC 1122 delayed ACKs (every 2nd segment or a timeout).
struct ReceiverState {
  std::uint64_t rcv_nxt = 0;  ///< absolute stream offset (wire seq − ISN)
  std::uint32_t isn = 0;
  std::map<std::uint64_t, std::uint64_t> ooo;  ///< [start, end) intervals
  std::uint32_t pending_ack_segs = 0;
  std::uint32_t last_tsval = 0;  ///< tsval of last in-order arrival
  sim::EventId delack_timer{};
  std::uint64_t bytes_in_order = 0;
  std::uint64_t ooo_segs = 0;
  std::uint64_t below_window_segs = 0;  ///< spurious-retransmit arrivals
  std::uint64_t acks_sent = 0;
};

class ClosedLoopWorkload {
 public:
  /// Reconfigures `tx_port`'s generator pipeline and installs monitor
  /// taps on both ports. The engine and device must outlive the workload;
  /// the workload must be destroyed before either (it cancels its timers
  /// and detaches its taps in the destructor).
  ClosedLoopWorkload(sim::Engine& eng, core::OsntDevice& dev,
                     WorkloadConfig cfg);
  ~ClosedLoopWorkload();

  ClosedLoopWorkload(const ClosedLoopWorkload&) = delete;
  ClosedLoopWorkload& operator=(const ClosedLoopWorkload&) = delete;

  /// Start the TX pipeline and open every flow's window.
  void start();

  [[nodiscard]] std::size_t num_flows() const { return flows_.size(); }
  [[nodiscard]] Flow& flow(std::size_t i) { return *flows_.at(i); }
  [[nodiscard]] const Flow& flow(std::size_t i) const {
    return *flows_.at(i);
  }
  [[nodiscard]] const ReceiverState& receiver(std::size_t i) const {
    return recv_.at(i);
  }
  [[nodiscard]] const gen::ClosedLoopSource& source() const {
    return *source_;
  }

  // --- aggregates across flows ---
  [[nodiscard]] std::uint64_t total_bytes_acked() const;
  [[nodiscard]] std::uint64_t total_retransmits() const;
  [[nodiscard]] std::uint64_t total_rto_fires() const;
  [[nodiscard]] std::uint64_t total_fast_retx() const;
  [[nodiscard]] std::uint64_t total_cwnd_reductions() const;
  [[nodiscard]] std::uint64_t total_acks_sent() const;
  [[nodiscard]] std::uint64_t total_ooo_segs() const;
  /// Application goodput (cum-acked bytes) over `window`, in bits/s.
  [[nodiscard]] double goodput_bps(Picos window) const;

 private:
  void on_data_frame(const net::ParsedPacket& p, const net::Packet& pkt,
                     Picos first_bit);
  void on_ack_frame(const net::ParsedPacket& p, const net::Packet& pkt,
                    Picos first_bit);
  void send_ack(std::size_t idx, Picos now);
  void schedule_delack(std::size_t idx);

  sim::Engine* eng_;
  core::OsntDevice* dev_;
  WorkloadConfig cfg_;
  gen::ClosedLoopSource* source_ = nullptr;  ///< owned by the TX pipeline
  std::vector<std::unique_ptr<Flow>> flows_;
  std::vector<ReceiverState> recv_;
  std::map<std::uint16_t, std::size_t> data_port_to_flow_;
  std::map<std::uint16_t, std::size_t> ack_port_to_flow_;
};

/// Aggregate result of one closed-loop trial (the unit osnt_run tcp,
/// tests, and the bench all shard through core::Runner).
struct TcpTrialReport {
  std::uint64_t bytes_acked = 0;
  std::uint64_t segs_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rto_fires = 0;
  std::uint64_t fast_retx = 0;
  std::uint64_t cwnd_reductions = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t emit_rejects = 0;
  double goodput_bps = 0.0;
  double min_flow_rate_bps = 0.0;  ///< slowest flow's delivery-rate sample
  double max_flow_rate_bps = 0.0;
};

/// Build a fresh testbed (engine + device + cabled ports), run `cfg` for
/// `duration` of sim time with an optional fault plan armed on the
/// device, and report aggregates. One deterministic code path shared by
/// the CLI, the tests, and the benchmark — byte-identical reruns for a
/// fixed (cfg.seed, plan) pair. `trace` attaches a recorder to the
/// trial's engine (single-trial runs only; the recorder is not
/// thread-safe across sharded trials).
[[nodiscard]] TcpTrialReport run_closed_loop_trial(
    const WorkloadConfig& cfg, Picos duration,
    const fault::FaultPlan* plan = nullptr,
    telemetry::TraceRecorder* trace = nullptr);

}  // namespace osnt::tcp
