// ClosedLoopWorkload: N congestion-controlled flows over one cabled pair
// of OSNT ports. The sender side lives on `tx_port`: per-flow tcp::Flow
// state machines emit TCP/IPv4 frames into one shared
// gen::ClosedLoopSource, which the port's TX pipeline drains at the
// configured bottleneck rate (the queue bound is the bottleneck buffer).
// The receiver side hangs off `rx_port`'s monitor pipeline tap: per-flow
// delayed-ACK reassembly state that transmits cumulative/duplicate ACKs
// back through the reverse sim link — so loss injected anywhere on the
// path (osnt::fault BER windows, flaps) closes the control loop.
//
// Built for flow counts in the 10k–1M range (DESIGN.md §12): flows live
// in a generation-counted Slab (no per-flow unique_ptr), receiver state
// is split hot/cold so the per-ACK touch set stays cache-resident, and
// the per-frame demux is pure index arithmetic over the flow addressing
// scheme — no map lookups anywhere on the RX tap path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "osnt/core/device.hpp"
#include "osnt/fault/injector.hpp"
#include "osnt/fault/plan.hpp"
#include "osnt/gen/closed_loop.hpp"
#include "osnt/mon/latency_probe.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/tcp/flow.hpp"
#include "osnt/tcp/flow_slab.hpp"
#include "osnt/telemetry/series.hpp"

namespace osnt::tcp {

struct WorkloadConfig {
  std::size_t flows = 1;
  std::string cc = "newreno";
  std::uint32_t mss = 1448;          ///< 1448 ⇒ 1518 B frames with options
  std::uint64_t seed = 1;            ///< trial seed; flows derive substreams
  double bottleneck_gbps = 0.0;      ///< TX drain rate; 0 = port line rate
  std::size_t queue_segments = 256;  ///< bottleneck buffer, in frames
  std::uint64_t rwnd_bytes = std::uint64_t{1} << 20;
  std::uint64_t bytes_per_flow = 0;  ///< 0 = unbounded (duration-limited)
  std::size_t tx_port = 0;
  std::size_t rx_port = 1;
  Picos min_rto = kPicosPerMilli;    ///< sim-scaled; see DESIGN.md §11
  Picos max_rto = 250 * kPicosPerMilli;
  Picos delayed_ack_timeout = 200 * kPicosPerMicro;
  bool capture = false;              ///< keep the DMA capture path off
  /// Route RTO/delack/pacing timers through the engine's timing wheel
  /// (schedule_bulk_*). false = heap-only; firing order and kSimOnly
  /// telemetry are identical either way (DESIGN.md §12).
  bool wheel_timers = true;
  /// Benchmark baseline: reproduce the pre-§12 hot path — heap-only
  /// timers, an eager delayed-ACK cancel on every ACK sent, and
  /// unconditional frame serialization (no drop-early admission probe).
  /// This is the baseline the flows-per-wall-second speedup gate in
  /// BENCH_tcp.json compares against. Not byte-identical to the default
  /// path (lazy delack timers may deliver an ACK slightly earlier);
  /// wheel_timers is the knob for byte-identical A/B.
  bool legacy_hot_path = false;
  /// Arm the per-flow R-TCP-style RateLimitDetector (DESIGN.md §15).
  /// Off by default; off is byte-identical to pre-detector builds.
  bool rate_limit_detector = false;
};

// --- flow addressing -------------------------------------------------
// The demux must invert a frame's {dst IP, dst port} back to a flow index
// in O(1), so the index is split across the header fields: the low
// kPortIndexBits land in the port number, the high bits in the third IP
// octet. Good for kMaxFlows = 2^21 flows before an octet would overflow.
inline constexpr std::uint16_t kSenderPortBase = 40000;
inline constexpr std::uint16_t kReceiverPortBase = 50000;
inline constexpr std::uint32_t kPortIndexBits = 13;
inline constexpr std::uint32_t kPortsPerGroup = 1u << kPortIndexBits;  // 8192
inline constexpr std::size_t kMaxFlows = std::size_t{kPortsPerGroup} << 8;

/// Sender-side endpoint of flow `i`: 10.0.<i/8192>.1:<40000 + i%8192>.
[[nodiscard]] inline net::Ipv4Addr sender_ip_of(std::size_t i) noexcept {
  return net::Ipv4Addr::of(10, 0, static_cast<std::uint8_t>(i >> kPortIndexBits),
                           1);
}
/// Receiver-side endpoint of flow `i`: 10.1.<i/8192>.1:<50000 + i%8192>.
[[nodiscard]] inline net::Ipv4Addr receiver_ip_of(std::size_t i) noexcept {
  return net::Ipv4Addr::of(10, 1, static_cast<std::uint8_t>(i >> kPortIndexBits),
                           1);
}
[[nodiscard]] inline std::uint16_t sender_port_of(std::size_t i) noexcept {
  return static_cast<std::uint16_t>(kSenderPortBase +
                                    (i & (kPortsPerGroup - 1)));
}
[[nodiscard]] inline std::uint16_t receiver_port_of(std::size_t i) noexcept {
  return static_cast<std::uint16_t>(kReceiverPortBase +
                                    (i & (kPortsPerGroup - 1)));
}

inline constexpr std::size_t kNoFlow = static_cast<std::size_t>(-1);

/// Invert a data frame's destination {ip, port} to its flow index, or
/// kNoFlow for foreign traffic. Pure arithmetic — the O(1) demux.
[[nodiscard]] inline std::size_t flow_index_of_data(
    net::Ipv4Addr dst_ip, std::uint16_t dst_port) noexcept {
  const std::uint32_t off = static_cast<std::uint32_t>(dst_port) -
                            kReceiverPortBase;  // unsigned: below-base wraps big
  if (off >= kPortsPerGroup) return kNoFlow;
  const std::uint32_t v = dst_ip.v;
  if ((v >> 16) != ((10u << 8) | 1u) || (v & 0xffu) != 1u) return kNoFlow;
  return (static_cast<std::size_t>((v >> 8) & 0xffu) << kPortIndexBits) | off;
}

/// Same inversion for the ACK direction (dst is the sender endpoint).
[[nodiscard]] inline std::size_t flow_index_of_ack(
    net::Ipv4Addr dst_ip, std::uint16_t dst_port) noexcept {
  const std::uint32_t off =
      static_cast<std::uint32_t>(dst_port) - kSenderPortBase;
  if (off >= kPortsPerGroup) return kNoFlow;
  const std::uint32_t v = dst_ip.v;
  if ((v >> 16) != (10u << 8) || (v & 0xffu) != 1u) return kNoFlow;
  return (static_cast<std::size_t>((v >> 8) & 0xffu) << kPortIndexBits) | off;
}

// --- receiver state, split hot/cold ----------------------------------

/// The per-segment receiver touch set: everything the in-order fast path
/// reads or writes, packed to 48 bytes (¾ of a cache line, no map, no
/// EventId indirection beyond the lazy delack handle).
struct ReceiverHot {
  std::uint64_t rcv_nxt = 0;  ///< absolute stream offset (wire seq − ISN)
  std::uint64_t bytes_in_order = 0;
  std::uint64_t acks_sent = 0;
  sim::EventId delack_timer{};  ///< lazy: armed once, checked on fire
  std::uint32_t isn = 0;
  std::uint32_t pending_ack_segs = 0;
  std::uint32_t last_tsval = 0;  ///< tsval of last in-order arrival
};
static_assert(sizeof(ReceiverHot) <= 48, "per-segment touch set grew");

/// Loss-episode state: only touched when a hole opens or a spurious
/// retransmit lands, so it stays out of the hot array entirely.
struct ReceiverCold {
  std::map<std::uint64_t, std::uint64_t> ooo;  ///< [start, end) intervals
  std::uint64_t ooo_segs = 0;
  std::uint64_t below_window_segs = 0;  ///< spurious-retransmit arrivals
};

class ClosedLoopWorkload {
 public:
  /// Reconfigures `tx_port`'s generator pipeline, installs monitor taps
  /// on both ports, and sets the engine's bulk-timer routing from
  /// cfg.wheel_timers. The engine and device must outlive the workload;
  /// the workload must be destroyed before either (it cancels its timers
  /// and detaches its taps in the destructor).
  ClosedLoopWorkload(sim::Engine& eng, core::OsntDevice& dev,
                     WorkloadConfig cfg);
  ~ClosedLoopWorkload();

  ClosedLoopWorkload(const ClosedLoopWorkload&) = delete;
  ClosedLoopWorkload& operator=(const ClosedLoopWorkload&) = delete;

  /// Start the TX pipeline and open every flow's window.
  void start();

  [[nodiscard]] std::size_t num_flows() const { return flows_.size(); }
  [[nodiscard]] Flow& flow(std::size_t i) {
    return flows_[static_cast<std::uint32_t>(i)];
  }
  [[nodiscard]] const Flow& flow(std::size_t i) const {
    return flows_[static_cast<std::uint32_t>(i)];
  }
  [[nodiscard]] const ReceiverHot& receiver(std::size_t i) const {
    return recv_hot_.at(i);
  }
  [[nodiscard]] const ReceiverCold& receiver_cold(std::size_t i) const {
    return recv_cold_.at(i);
  }
  [[nodiscard]] const gen::ClosedLoopSource& source() const {
    return *source_;
  }

  // --- aggregates across flows ---
  [[nodiscard]] std::uint64_t total_bytes_acked() const;
  [[nodiscard]] std::uint64_t total_retransmits() const;
  [[nodiscard]] std::uint64_t total_rto_fires() const;
  [[nodiscard]] std::uint64_t total_fast_retx() const;
  [[nodiscard]] std::uint64_t total_cwnd_reductions() const;
  [[nodiscard]] std::uint64_t total_acks_sent() const;
  [[nodiscard]] std::uint64_t total_ooo_segs() const;
  /// Delayed-ACK timer cancels avoided by the lazy one-armed-timer
  /// scheme (each would have been a cancel + re-arm pair pre-§12).
  [[nodiscard]] std::uint64_t delack_cancels_saved() const {
    return delack_cancels_saved_;
  }
  /// In-plane RTT probe fed by every flow's accepted RTT samples (the
  /// RTO estimator's input stream), classed by flow DSCP (flow index
  /// mod 4). Flushed under tcp.rtt.* at destruction.
  [[nodiscard]] const mon::LatencyProbe& rtt_probe() const {
    return rtt_probe_;
  }
  /// Application goodput (cum-acked bytes) over `window`, in bits/s.
  [[nodiscard]] double goodput_bps(Picos window) const;

  // --- rate-limit detector aggregates (all 0 when the detector is off) ---
  [[nodiscard]] std::uint64_t total_rld_detections() const;
  /// Mean detected rate across currently-detected flows, bits/s.
  [[nodiscard]] double mean_rld_rate_bps() const;
  /// Mean first-sample→detection latency across flows that detected.
  [[nodiscard]] Picos mean_rld_detect_time() const;

 private:
  void on_data_frame(const net::ParsedPacket& p, const net::Packet& pkt,
                     Picos first_bit);
  void on_ack_frame(const net::ParsedPacket& p, const net::Packet& pkt,
                    Picos first_bit);
  void send_ack(std::size_t idx, Picos now);
  void schedule_delack(std::size_t idx);

  sim::Engine* eng_;
  core::OsntDevice* dev_;
  WorkloadConfig cfg_;
  gen::ClosedLoopSource* source_ = nullptr;  ///< owned by the TX pipeline
  /// Flows live in the slab; handles are dense (slot == flow index).
  Slab<Flow> flows_;
  std::vector<Slab<Flow>::Handle> flow_handles_;
  std::vector<ReceiverHot> recv_hot_;
  std::vector<ReceiverCold> recv_cold_;
  std::uint64_t delack_cancels_saved_ = 0;
  mon::LatencyProbe rtt_probe_;
};

/// Aggregate result of one closed-loop trial (the unit osnt_run tcp,
/// tests, and the bench all shard through core::Runner).
struct TcpTrialReport {
  std::uint64_t bytes_acked = 0;
  std::uint64_t segs_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rto_fires = 0;
  std::uint64_t fast_retx = 0;
  std::uint64_t cwnd_reductions = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t emit_rejects = 0;
  double goodput_bps = 0.0;
  double min_flow_rate_bps = 0.0;  ///< slowest flow's delivery-rate sample
  double max_flow_rate_bps = 0.0;
  // Rate-limit detector aggregates (0 when the detector is off).
  std::uint64_t rld_detections = 0;
  double rld_rate_bps = 0.0;       ///< mean detected rate across flows
  Picos rld_detect_time = 0;       ///< mean first-sample→detect latency
  // In-plane RTT summary (from the workload's tcp.rtt probe): p99 and
  // the observed floor, so callers can report queueing inflation.
  double rtt_p99_ns = 0.0;
  double rtt_min_ns = 0.0;
};

/// A complete closed-loop testbed: engine + device + cabled port pair +
/// workload (+ optional armed fault plan). Exists so callers that care
/// about wall time — the benchmarks, the 100k-flow CLI smoke — can split
/// construction (packet templates, slab growth, 2·N state blocks) from
/// the run itself and measure only the simulation.
class ClosedLoopTestbed {
 public:
  explicit ClosedLoopTestbed(const WorkloadConfig& cfg,
                             const fault::FaultPlan* plan = nullptr,
                             telemetry::TraceRecorder* trace = nullptr);

  /// Start (first call) and simulate up to absolute sim time `until`.
  void run_until(Picos until);

  /// Aggregate the trial counters; `window` scales the goodput figure.
  [[nodiscard]] TcpTrialReport report(Picos window) const;

  [[nodiscard]] sim::Engine& engine() { return eng_; }
  [[nodiscard]] ClosedLoopWorkload& workload() { return *workload_; }

 private:
  sim::Engine eng_;
  core::OsntDevice dev_;
  std::unique_ptr<ClosedLoopWorkload> workload_;
  std::optional<fault::Injector> injector_;
  bool started_ = false;
};

/// Build a fresh testbed (engine + device + cabled ports), run `cfg` for
/// `duration` of sim time with an optional fault plan armed on the
/// device, and report aggregates. One deterministic code path shared by
/// the CLI, the tests, and the benchmark — byte-identical reruns for a
/// fixed (cfg.seed, plan) pair. `trace` attaches a recorder to the
/// trial's engine (single-trial runs only; the recorder is not
/// thread-safe across sharded trials).
///
/// `series_interval > 0` attaches a sim-time sampler (tcp.* counter
/// channels + the tcp.rtt.ns histogram) and stores its per-interval
/// deltas into `*series_out`; per-trial series merge commutatively.
[[nodiscard]] TcpTrialReport run_closed_loop_trial(
    const WorkloadConfig& cfg, Picos duration,
    const fault::FaultPlan* plan = nullptr,
    telemetry::TraceRecorder* trace = nullptr, Picos series_interval = 0,
    telemetry::SeriesData* series_out = nullptr);

}  // namespace osnt::tcp
