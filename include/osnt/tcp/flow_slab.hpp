// Generation-counted object slab for per-flow transport state — the same
// storage discipline as the sim engine's event core (DESIGN.md "Event
// core", §12): objects are placement-constructed into fixed 256-entry
// blocks whose addresses never move, recycled through a LIFO free list,
// and addressed by {slot, generation} handles so a stale handle can never
// reach a slot's next occupant. At 100k+ flows this removes one heap
// allocation and one pointer chase per flow versus vector<unique_ptr<T>>,
// and keeps same-block neighbours cache-adjacent for the per-ACK walk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace osnt::tcp {

template <typename T>
class Slab {
 public:
  /// {slot, generation}. Default handle is null and never issued.
  struct Handle {
    std::uint32_t slot = kNil;
    std::uint32_t gen = 0;
    [[nodiscard]] explicit operator bool() const noexcept {
      return slot != kNil;
    }
    friend bool operator==(const Handle&, const Handle&) = default;
  };

  Slab() = default;
  ~Slab() { clear(); }
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  /// Construct a T in the lowest free slot. Handles issue densely
  /// (0, 1, 2, …) while no erase() has run, so a caller creating N
  /// objects up front can index them by slot directly.
  template <typename... Args>
  Handle emplace(Args&&... args) {
    if (free_head_ == kNil) add_block_();
    const std::uint32_t slot = free_head_;
    free_head_ = meta_[slot].next_free;
    try {
      ::new (static_cast<void*>(cell_(slot))) T(std::forward<Args>(args)...);
    } catch (...) {
      meta_[slot].next_free = free_head_;
      free_head_ = slot;
      throw;
    }
    Meta& m = meta_[slot];
    m.live = true;
    ++size_;
    return Handle{slot, m.gen};
  }

  /// The object behind `h`, or nullptr if it was erased (or the slot was
  /// since reused — the generation mismatch catches that).
  [[nodiscard]] T* get(Handle h) noexcept {
    if (h.slot >= meta_.size()) return nullptr;
    const Meta& m = meta_[h.slot];
    if (!m.live || m.gen != h.gen) return nullptr;
    return cell_(h.slot);
  }
  [[nodiscard]] const T* get(Handle h) const noexcept {
    return const_cast<Slab*>(this)->get(h);
  }

  /// Unchecked slot access. Precondition: the slot is live.
  [[nodiscard]] T& operator[](std::uint32_t slot) noexcept {
    return *cell_(slot);
  }
  [[nodiscard]] const T& operator[](std::uint32_t slot) const noexcept {
    return *const_cast<Slab*>(this)->cell_(slot);
  }

  /// Destroy the object and recycle its slot; the bumped generation makes
  /// every outstanding handle to it stale. False if already gone.
  bool erase(Handle h) noexcept {
    T* p = get(h);
    if (!p) return false;
    p->~T();
    Meta& m = meta_[h.slot];
    if (++m.gen == 0) m.gen = 1;  // gen 0 is reserved for null handles
    m.live = false;
    m.next_free = free_head_;
    free_head_ = h.slot;
    --size_;
    return true;
  }

  /// Destroy every live object (slot order) and reset to empty.
  void clear() noexcept {
    for (std::uint32_t i = 0; i < meta_.size(); ++i) {
      if (meta_[i].live) cell_(i)->~T();
    }
    blocks_.clear();
    meta_.clear();
    free_head_ = kNil;
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return meta_.size(); }

 private:
  static constexpr std::uint32_t kNil =
      std::numeric_limits<std::uint32_t>::max();
  static constexpr std::uint32_t kBlockShift = 8;
  static constexpr std::uint32_t kBlockSize = 1u << kBlockShift;

  struct alignas(alignof(T)) Cell {
    std::byte raw[sizeof(T)];
  };

  struct Meta {
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNil;
    bool live = false;
  };

  [[nodiscard]] T* cell_(std::uint32_t i) noexcept {
    return std::launder(reinterpret_cast<T*>(
        blocks_[i >> kBlockShift][i & (kBlockSize - 1)].raw));
  }

  void add_block_() {
    const auto base = static_cast<std::uint32_t>(blocks_.size())
                      << kBlockShift;
    blocks_.push_back(std::make_unique<Cell[]>(kBlockSize));
    meta_.resize(meta_.size() + kBlockSize);
    // Lowest index first, so dense creation yields slot == creation order.
    for (std::uint32_t i = kBlockSize; i-- > 0;) {
      meta_[base + i].next_free = free_head_;
      free_head_ = base + i;
    }
  }

  std::vector<std::unique_ptr<Cell[]>> blocks_;
  std::vector<Meta> meta_;
  std::uint32_t free_head_ = kNil;
  std::size_t size_ = 0;
};

}  // namespace osnt::tcp
