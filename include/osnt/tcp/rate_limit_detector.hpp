// R-TCP-style rate-limit detection (see DESIGN.md §15). A token-bucket
// limiter has a signature no ordinary bottleneck shares: the flow's
// delivered goodput pins to a flat plateau while the sender demonstrably
// pushes harder — either the RTT inflates well past its unqueued floor
// (a shaper queueing behind the bucket) or losses arrive at the plateau
// rate (a policer discarding the non-conformant excess). The detector
// watches the flow's existing per-ACK estimator state (zero extra
// events, zero extra dataplane state machines) and hands its verdict to
// the congestion controller via `CongestionControl::adapt_to_policer`.
//
// Three mechanisms:
//   * Plateau detection integrates `delivered` over wall-clock windows
//     (`window_rtts * srtt`, floored at `min_window` so one window
//     spans several RTO stall/burst cycles). Cumulative-ACK goodput is
//     immune to the delivery-rate aliasing of loss recovery, so "flat
//     across consecutive windows, with losses or inflated RTT" is a
//     reliable limiter signature. It only answers *whether* a limiter
//     stands — under a drop-mode policer its level is the achieved
//     goodput, dragged far below the token rate by go-back-N recovery.
//   * The verdict rate comes from the clean (non-recovery) per-ACK
//     delivery-rate samples accumulated over the plateau in a small
//     log-spaced histogram. Against a shaper they pin at the token rate
//     directly. Against a policer they split into a token-rate cluster
//     (ACK clock through the draining bucket) and a line-rate pileup
//     (post-stall bursts through the refilled reserve) — the verdict is
//     the median of samples below the top of the distribution, falling
//     back to the plain median when that cut removes most of the mass
//     (the unimodal shaper case).
//   * Release probing. Once adapted, the controller paces at the
//     verdict, so no passive sample can ever reveal that the limiter
//     was lifted — and a policer's token reserve can fake short bursts
//     above any threshold, so counting over-rate ACKs cannot tell a
//     lifted limiter from a deep bucket. Instead the detector
//     periodically runs an active probe epoch: for one measurement
//     window every `probe_interval_windows`, the exported rate is
//     `probe_gain` times the verdict (the controller simply follows
//     it). A standing limiter holds that window's goodput at the token
//     rate — inside the verdict band — while a lifted one lets it
//     break above `(1 + rate_tolerance) * verdict`, which releases the
//     verdict and restarts learning. The epoch's cost against a
//     standing policer is one window of overshoot loss every interval.
//
// The detector is pure arithmetic on samples the flow already computes:
// with the detector disabled the flow's behavior is byte-identical to a
// build without it, and with it enabled determinism is preserved — the
// verdict is a function of the deterministic sample stream only.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "osnt/common/time.hpp"

namespace osnt::tcp {

struct RateLimitDetectorConfig {
  /// Consecutive in-band measurement windows before a verdict.
  int plateau_windows = 4;
  /// Measurement-window length in units of the smoothed RTT (the
  /// queue-inflated one, not the floor).
  double window_rtts = 8.0;
  /// Absolute floor on the window length. Go-back-N recovery turns
  /// goodput into a stall/burst square wave on the RTO timescale
  /// (min_rto is 1 ms in this stack); windows must integrate over
  /// several such cycles or the plateau test just samples the wave.
  Picos min_window = 2 * kPicosPerMilli;
  /// Half-width of the plateau band, as a fraction of the plateau rate:
  /// a window whose goodput lands within ±tolerance extends the
  /// plateau, anything else restarts it. Also the release test: a probe
  /// epoch whose goodput breaks above `(1 + tolerance) * verdict`
  /// proves the limiter no longer binds.
  double rate_tolerance = 0.25;
  /// RTT must inflate past `rtt_inflation * min_rtt` (shaper signature)
  /// — or a loss must land inside the plateau (policer signature) —
  /// for the plateau to count as *limited* rather than app-limited.
  double rtt_inflation = 1.5;
  /// While a verdict stands, run one probe epoch (exported rate =
  /// `probe_gain` * verdict for a single window) every this many
  /// windows. 16 windows at the 2 ms floor = one epoch per ~32 ms.
  int probe_interval_windows = 16;
  /// Exported-rate multiple during a probe epoch. Must clear the
  /// release band `(1 + rate_tolerance)` with margin once the limiter
  /// is gone; 2x leaves the verdict band unambiguous.
  double probe_gain = 2.0;
};

class RateLimitDetector {
 public:
  explicit RateLimitDetector(RateLimitDetectorConfig cfg = {}) : cfg_(cfg) {}

  /// Feed one ACK's worth of estimator state. `delivery_rate_bps` is the
  /// instantaneous BBR-style sample; the caller passes 0 for samples it
  /// considers tainted (e.g. taken during loss recovery, where one
  /// hole-filling cumulative ACK aliases into a multi-Gb/s spike).
  /// `delivered_bytes` is the flow's cumulative delivered counter.
  /// Returns true when the exported verdict changed — a detection, a
  /// release, or a probe-epoch boundary — i.e. exactly when the caller
  /// should re-run `adapt_to_policer`.
  bool on_ack(Picos now, double delivery_rate_bps, Picos rtt,
              std::uint64_t delivered_bytes) {
    if (first_sample_ == 0) first_sample_ = now;
    if (rtt > 0) {
      min_rtt_ = min_rtt_ ? std::min(min_rtt_, rtt) : rtt;
      // Smoothed RTT (EWMA, gain 1/8) sizes the measurement window.
      srtt_ = srtt_ ? srtt_ - srtt_ / 8 + rtt / 8 : rtt;
      if (static_cast<double>(rtt) >
          cfg_.rtt_inflation * static_cast<double>(min_rtt_)) {
        rtt_inflated_ = true;
      }
    }
    // Probe-epoch samples run at an elevated rate on purpose; keep them
    // out of the verdict histogram.
    if (delivery_rate_bps > 0.0 && !probing_) bump_(delivery_rate_bps);
    if (srtt_ == 0) return false;  // no RTT yet → no window length
    if (win_start_ == 0) {
      win_start_ = now;
      win_delivered_ = delivered_bytes;
      return false;
    }
    const auto win_len = std::max<Picos>(
        static_cast<Picos>(cfg_.window_rtts * static_cast<double>(srtt_)),
        cfg_.min_window);
    if (now - win_start_ < win_len) return false;
    const double r =
        static_cast<double>(delivered_bytes - win_delivered_) * 8.0 *
        static_cast<double>(kPicosPerSec) /
        static_cast<double>(now - win_start_);
    win_start_ = now;
    win_delivered_ = delivered_bytes;
    if (probing_) {
      // The epoch window just closed: did goodput follow the raised
      // rate? Breaking out of the verdict band means nothing held it
      // there — the limiter was lifted (or retimed far upward).
      probing_ = false;
      windows_since_probe_ = 0;
      if (r > detected_rate_bps_ * (1.0 + cfg_.rate_tolerance)) {
        detected_ = false;
        detected_rate_bps_ = 0.0;
        ++releases_;
        reset_plateau();
        return true;
      }
      return true;  // still limited: re-clamp to the standing verdict
    }
    if (r <= 0.0) {
      reset_plateau();
      return false;
    }
    if (plateau_goodput_bps_ <= 0.0 ||
        r > plateau_goodput_bps_ * (1.0 + cfg_.rate_tolerance) ||
        r < plateau_goodput_bps_ * (1.0 - cfg_.rate_tolerance)) {
      reset_plateau();
      plateau_goodput_bps_ = r;
      plateau_len_ = 1;
      return start_probe_();
    }
    plateau_goodput_bps_ = std::max(plateau_goodput_bps_, r);
    ++plateau_len_;
    if (plateau_len_ >= cfg_.plateau_windows &&
        (rtt_inflated_ || loss_in_plateau_)) {
      const double verdict = verdict_rate_();
      // A standing verdict only re-fires for a materially *lower* rate
      // (the bucket was retimed downward mid-flow); upward retimes are
      // caught by the probe epochs.
      if (verdict > 0.0 &&
          (!detected_ ||
           verdict < detected_rate_bps_ * (1.0 - cfg_.rate_tolerance))) {
        detected_ = true;
        detected_rate_bps_ = verdict;
        detect_time_ = now - first_sample_;
        ++detections_;
        return true;
      }
    }
    return start_probe_();
  }

  /// Loss signal (fast retransmit / RTO) — the policer half of the
  /// corroboration: flat goodput plus drops means a bucket is
  /// discarding the overshoot.
  void on_loss() { loss_in_plateau_ = true; }

  [[nodiscard]] bool detected() const { return detected_; }
  /// Rate to hand to `adapt_to_policer`, in payload bits/s: the verdict
  /// — or `probe_gain` times it during a release-probe epoch (0 when
  /// nothing is detected).
  [[nodiscard]] double detected_rate_bps() const {
    return probing_ ? cfg_.probe_gain * detected_rate_bps_
                    : detected_rate_bps_;
  }
  /// The standing verdict itself, unmodulated by probe epochs.
  [[nodiscard]] double verdict_rate_bps() const { return detected_rate_bps_; }
  [[nodiscard]] bool probing() const { return probing_; }
  [[nodiscard]] Picos min_rtt() const { return min_rtt_; }
  /// First-sample → most-recent-detection latency.
  [[nodiscard]] Picos detect_time() const { return detect_time_; }
  [[nodiscard]] std::uint64_t detections() const { return detections_; }
  [[nodiscard]] std::uint64_t releases() const { return releases_; }

 private:
  // Clean-sample histogram: kBins log-spaced bins over [1 Mb/s,
  // 100 Gb/s), ~1.2x wide each — fine enough to pin the limiter within
  // the controller's tolerance band, coarse enough that the token-rate
  // pileup lands in a couple of bins.
  static constexpr int kBins = 64;
  static constexpr double kLoBps = 1e6;
  static constexpr double kDecades = 5.0;  // 1e6 .. 1e11

  void bump_(double rate_bps) {
    const double pos = std::log10(rate_bps / kLoBps) * (kBins / kDecades);
    const int bin = std::clamp(static_cast<int>(pos), 0, kBins - 1);
    ++hist_[bin];
    ++hist_total_;
  }

  [[nodiscard]] static double bin_rate_(int bin) {
    return kLoBps * std::pow(10.0, (bin + 0.5) * (kDecades / kBins));
  }

  /// Rate estimate from the plateau's clean samples: the median of
  /// samples below the top of the distribution. Against a policer the
  /// post-stall bursts through the refilled token reserve pile up at
  /// the *line* rate; cutting everything within the tolerance band of
  /// the sample p90 removes that pileup and the median of the rest is
  /// the token-limited ACK clock. When the cut removes most of the mass
  /// the distribution was unimodal (shaper: every sample already sits
  /// at the token rate) and the plain median stands.
  [[nodiscard]] double verdict_rate_() const {
    if (hist_total_ == 0) return 0.0;
    const std::uint64_t p90_target = hist_total_ - hist_total_ / 10;
    std::uint64_t acc = 0;
    int p90_bin = kBins - 1;
    for (int i = 0; i < kBins; ++i) {
      acc += hist_[i];
      if (acc >= p90_target) {
        p90_bin = i;
        break;
      }
    }
    const double cut = (1.0 - cfg_.rate_tolerance) * bin_rate_(p90_bin);
    std::uint64_t below = 0;
    for (int i = 0; i < kBins; ++i) {
      if (bin_rate_(i) < cut) below += hist_[i];
    }
    const std::uint64_t median_mass =
        below * 2 >= hist_total_ ? below : hist_total_;
    std::uint64_t half = (median_mass + 1) / 2;
    for (int i = 0; i < kBins; ++i) {
      if (median_mass != hist_total_ && bin_rate_(i) >= cut) break;
      if (hist_[i] >= half) return bin_rate_(i);
      half -= hist_[i];
    }
    return bin_rate_(kBins - 1);
  }

  /// At a window boundary with a standing verdict: time for the next
  /// release-probe epoch? Returns true when the exported rate changed.
  bool start_probe_() {
    if (!detected_) return false;
    if (++windows_since_probe_ < cfg_.probe_interval_windows) return false;
    probing_ = true;
    return true;
  }

  void reset_plateau() {
    plateau_goodput_bps_ = 0.0;
    plateau_len_ = 0;
    rtt_inflated_ = false;
    loss_in_plateau_ = false;
    hist_.fill(0);
    hist_total_ = 0;
  }

  RateLimitDetectorConfig cfg_;
  Picos first_sample_ = 0;
  Picos min_rtt_ = 0;
  Picos srtt_ = 0;
  Picos win_start_ = 0;
  std::uint64_t win_delivered_ = 0;
  double plateau_goodput_bps_ = 0.0;
  int plateau_len_ = 0;
  bool rtt_inflated_ = false;
  bool loss_in_plateau_ = false;
  std::array<std::uint64_t, kBins> hist_{};
  std::uint64_t hist_total_ = 0;
  bool probing_ = false;
  int windows_since_probe_ = 0;
  bool detected_ = false;
  double detected_rate_bps_ = 0.0;
  Picos detect_time_ = 0;
  std::uint64_t detections_ = 0;
  std::uint64_t releases_ = 0;
};

}  // namespace osnt::tcp
