// OpenFlow 1.0 flow table with ADD/MODIFY/DELETE (strict and non-strict)
// semantics, priority lookup, per-flow counters, and idle/hard timeout
// expiry. Lookup is linear in priority order — the software analogue of a
// TCAM walk.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "osnt/common/time.hpp"
#include "osnt/openflow/messages.hpp"

namespace osnt::openflow {

struct FlowEntry {
  OfMatch match;
  std::uint16_t priority = 0x8000;
  std::uint64_t cookie = 0;
  std::vector<Action> actions;
  std::uint16_t idle_timeout = 0;  ///< seconds; 0 = none
  std::uint16_t hard_timeout = 0;
  std::uint16_t flags = 0;
  Picos installed_at = 0;
  Picos last_used = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

struct FlowTableConfig {
  std::size_t max_entries = 4096;
};

class FlowTable {
 public:
  using Config = FlowTableConfig;

  explicit FlowTable(Config cfg = Config()) noexcept : cfg_(cfg) {}

  enum class ModResult : std::uint8_t {
    kAdded,
    kModified,
    kRemoved,
    kTableFull,
    kOverlap,   ///< CHECK_OVERLAP set and an overlapping entry exists
    kNoOp,      ///< delete/modify matched nothing (per spec: not an error)
  };

  /// Apply a flow_mod at simulated time `now`. For DELETE commands the
  /// removed entries are returned through `removed` when non-null (used
  /// to emit flow_removed messages).
  ModResult apply(const FlowMod& mod, Picos now,
                  std::vector<FlowEntry>* removed = nullptr);

  /// Highest-priority entry matching a packet's concrete match; updates
  /// counters when `wire_bytes` > 0. Ties broken by install order.
  [[nodiscard]] const FlowEntry* lookup(const OfMatch& concrete, Picos now,
                                        std::size_t wire_bytes = 0);

  /// Remove expired entries; returns them (reason derivable from config).
  [[nodiscard]] std::vector<FlowEntry> expire(Picos now);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const std::vector<FlowEntry>& entries() const noexcept {
    return entries_;
  }

  /// Entries matching a stats request (non-strict match, out_port filter).
  [[nodiscard]] std::vector<const FlowEntry*> collect_stats(
      const FlowStatsRequest& req) const;

  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  [[nodiscard]] bool outputs_to(const FlowEntry& e,
                                std::uint16_t port) const noexcept;

  Config cfg_;
  std::vector<FlowEntry> entries_;  ///< kept sorted: priority desc
  std::uint64_t lookups_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace osnt::openflow
