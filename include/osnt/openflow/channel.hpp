// Simulated OpenFlow control channel: an in-simulation TCP-ish byte
// stream between the controller (OFLOPS) and the switch agent, with
// configurable latency, bandwidth and in-order delivery. Messages are
// serialized to real OF 1.0 bytes on send and re-framed/decoded on
// delivery, so wire-format bugs are observable.
#pragma once

#include <cstdint>
#include <functional>

#include "osnt/common/time.hpp"
#include "osnt/openflow/messages.hpp"
#include "osnt/sim/engine.hpp"

namespace osnt::openflow {

struct ChannelConfig {
  Picos latency = 50 * kPicosPerMicro;  ///< one-way propagation+stack delay
  double mbps = 1000.0;                 ///< control-channel bandwidth
  /// Session-reconnect policy after a disconnect: probe attempt k fires
  /// after base * multiplier^k (capped at `reconnect_max_backoff`). The
  /// FSM gives up after `reconnect_max_attempts` probes so a permanently
  /// dead link cannot keep the event queue alive forever; a later
  /// set_link_available(true) still restores the session directly.
  Picos reconnect_base = 2 * kPicosPerMilli;
  double reconnect_multiplier = 2.0;
  Picos reconnect_max_backoff = 100 * kPicosPerMilli;
  std::size_t reconnect_max_attempts = 16;
};

class ControlChannel {
 public:
  using Config = ChannelConfig;
  using Handler = std::function<void(Decoded)>;
  /// Session status callback: `up` false on disconnect, true on
  /// reconnect. Fired at the sim time of the transition.
  using StatusHandler = std::function<void(bool up)>;

  class Endpoint {
   public:
    /// Serialize and send to the peer; delivered in order after the
    /// channel delay. Returns the assigned xid (auto-increment when
    /// `xid` is 0). Sends while the session is down are dropped and
    /// counted — a closed TCP socket, not a queue.
    std::uint32_t send(const OfMessage& msg, std::uint32_t xid = 0);

    void set_handler(Handler h) { handler_ = std::move(h); }
    void set_status_handler(StatusHandler h) { status_ = std::move(h); }

    [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
    [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_; }
    /// Sends attempted while the session was down.
    [[nodiscard]] std::uint64_t messages_dropped() const noexcept {
      return dropped_down_;
    }
    /// Whether the session this endpoint belongs to is currently up.
    [[nodiscard]] bool session_up() const noexcept;

   private:
    friend class ControlChannel;
    ControlChannel* chan_ = nullptr;
    Endpoint* peer_ = nullptr;
    Handler handler_;
    StatusHandler status_;
    Picos tx_free_ = 0;  ///< this direction's serialization backlog
    std::uint32_t next_xid_ = 1;
    std::uint64_t sent_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t dropped_down_ = 0;
  };

  explicit ControlChannel(sim::Engine& eng, Config cfg = Config());
  ControlChannel(const ControlChannel&) = delete;
  ControlChannel& operator=(const ControlChannel&) = delete;
  /// Merges session/loss counters into telemetry (`openflow.channel.*`).
  ~ControlChannel();

  [[nodiscard]] Endpoint& controller() noexcept { return a_; }
  [[nodiscard]] Endpoint& switch_end() noexcept { return b_; }

  /// Tear down the session now: in-flight messages of the old session are
  /// lost (counted at what would have been their delivery time), both
  /// status handlers fire with up=false, and the reconnect FSM starts
  /// probing with exponential backoff.
  void disconnect();
  [[nodiscard]] bool connected() const noexcept { return connected_; }

  /// Physical availability of the control link — the fault injector's
  /// seam. Going unavailable tears the session down (as above); probes
  /// fail until availability returns, after which the next probe (or a
  /// direct kick, if the FSM already gave up) restores the session.
  void set_link_available(bool available);
  [[nodiscard]] bool link_available() const noexcept { return link_available_; }

  [[nodiscard]] std::uint64_t disconnects() const noexcept {
    return disconnects_;
  }
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_;
  }
  /// Messages that were on the wire when their session died.
  [[nodiscard]] std::uint64_t messages_lost_in_flight() const noexcept {
    return lost_in_flight_;
  }
  [[nodiscard]] std::uint64_t reconnect_probes() const noexcept {
    return probes_;
  }

 private:
  void transmit(Endpoint& from, const OfMessage& msg, std::uint32_t xid);
  void schedule_probe_(std::size_t attempt);
  void restore_session_();
  void notify_(bool up);
  [[nodiscard]] Picos backoff_(std::size_t attempt) const noexcept;

  sim::Engine* eng_;
  Config cfg_;
  Endpoint a_;
  Endpoint b_;
  bool connected_ = true;
  bool link_available_ = true;
  bool probing_ = false;  ///< a reconnect probe is scheduled
  /// Session epoch: bumped on every disconnect. Delivery events capture
  /// the epoch they were sent under; a mismatch at delivery time means
  /// the message died with its session.
  std::uint64_t epoch_ = 0;
  std::uint64_t disconnects_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t lost_in_flight_ = 0;
  std::uint64_t probes_ = 0;
};

inline bool ControlChannel::Endpoint::session_up() const noexcept {
  return chan_->connected();
}

}  // namespace osnt::openflow
