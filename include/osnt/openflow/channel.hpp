// Simulated OpenFlow control channel: an in-simulation TCP-ish byte
// stream between the controller (OFLOPS) and the switch agent, with
// configurable latency, bandwidth and in-order delivery. Messages are
// serialized to real OF 1.0 bytes on send and re-framed/decoded on
// delivery, so wire-format bugs are observable.
#pragma once

#include <cstdint>
#include <functional>

#include "osnt/common/time.hpp"
#include "osnt/openflow/messages.hpp"
#include "osnt/sim/engine.hpp"

namespace osnt::openflow {

struct ChannelConfig {
  Picos latency = 50 * kPicosPerMicro;  ///< one-way propagation+stack delay
  double mbps = 1000.0;                 ///< control-channel bandwidth
};

class ControlChannel {
 public:
  using Config = ChannelConfig;
  using Handler = std::function<void(Decoded)>;

  class Endpoint {
   public:
    /// Serialize and send to the peer; delivered in order after the
    /// channel delay. Returns the assigned xid (auto-increment when
    /// `xid` is 0).
    std::uint32_t send(const OfMessage& msg, std::uint32_t xid = 0);

    void set_handler(Handler h) { handler_ = std::move(h); }

    [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
    [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_; }

   private:
    friend class ControlChannel;
    ControlChannel* chan_ = nullptr;
    Endpoint* peer_ = nullptr;
    Handler handler_;
    Picos tx_free_ = 0;  ///< this direction's serialization backlog
    std::uint32_t next_xid_ = 1;
    std::uint64_t sent_ = 0;
    std::uint64_t bytes_ = 0;
  };

  explicit ControlChannel(sim::Engine& eng, Config cfg = Config());

  [[nodiscard]] Endpoint& controller() noexcept { return a_; }
  [[nodiscard]] Endpoint& switch_end() noexcept { return b_; }

 private:
  void transmit(Endpoint& from, const OfMessage& msg, std::uint32_t xid);

  sim::Engine* eng_;
  Config cfg_;
  Endpoint a_;
  Endpoint b_;
};

}  // namespace osnt::openflow
