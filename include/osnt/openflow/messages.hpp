// OpenFlow 1.0 message types with full wire-format encode/decode. Only
// the subset a switch-evaluation framework exercises is modelled, but
// each message round-trips through the real byte layout so the control
// channel carries genuine OF 1.0 bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "osnt/common/types.hpp"
#include "osnt/openflow/match.hpp"

namespace osnt::openflow {

inline constexpr std::uint8_t kOfVersion = 0x01;
inline constexpr std::size_t kHeaderSize = 8;

enum class MsgType : std::uint8_t {
  kHello = 0,
  kError = 1,
  kEchoRequest = 2,
  kEchoReply = 3,
  kFeaturesRequest = 5,
  kFeaturesReply = 6,
  kPacketIn = 10,
  kFlowRemoved = 11,
  kPacketOut = 13,
  kFlowMod = 14,
  kStatsRequest = 16,
  kStatsReply = 17,
  kBarrierRequest = 18,
  kBarrierReply = 19,
  kQueueGetConfigRequest = 20,
  kQueueGetConfigReply = 21,
};

/// Reserved port numbers (OF 1.0 ofp_port).
namespace ofpp {
inline constexpr std::uint16_t kMax = 0xFF00;
inline constexpr std::uint16_t kInPort = 0xFFF8;
inline constexpr std::uint16_t kTable = 0xFFF9;
inline constexpr std::uint16_t kFlood = 0xFFFB;
inline constexpr std::uint16_t kAll = 0xFFFC;
inline constexpr std::uint16_t kController = 0xFFFD;
inline constexpr std::uint16_t kNone = 0xFFFF;
}  // namespace ofpp

// ---------------------------------------------------------------- actions

struct ActionOutput {
  std::uint16_t port = 0;
  std::uint16_t max_len = 0xFFFF;
  friend bool operator==(const ActionOutput&, const ActionOutput&) = default;
};

struct ActionSetVlanVid {
  std::uint16_t vlan_vid = 0;
  friend bool operator==(const ActionSetVlanVid&,
                         const ActionSetVlanVid&) = default;
};

struct ActionStripVlan {
  friend bool operator==(const ActionStripVlan&,
                         const ActionStripVlan&) = default;
};

/// OFPAT_ENQUEUE: output through a specific egress queue (QoS).
struct ActionEnqueue {
  std::uint16_t port = 0;
  std::uint32_t queue_id = 0;
  friend bool operator==(const ActionEnqueue&, const ActionEnqueue&) = default;
};

using Action = std::variant<ActionOutput, ActionSetVlanVid, ActionStripVlan,
                            ActionEnqueue>;

/// Encoded size of one action (8 bytes, except enqueue = 16).
[[nodiscard]] std::size_t action_wire_size(const Action& a) noexcept;

// --------------------------------------------------------------- messages

struct Hello {};

struct EchoRequest {
  Bytes payload;
};
struct EchoReply {
  Bytes payload;
};

struct FeaturesRequest {};

struct FeaturesReply {
  std::uint64_t datapath_id = 0;
  std::uint32_t n_buffers = 256;
  std::uint8_t n_tables = 1;
  std::uint32_t capabilities = 0;
  std::uint32_t actions = 0x0FFF;
  std::uint16_t n_ports = 0;  ///< port descriptions elided (count only)
};

enum class FlowModCommand : std::uint16_t {
  kAdd = 0,
  kModify = 1,
  kModifyStrict = 2,
  kDelete = 3,
  kDeleteStrict = 4,
};

/// ofp_flow_mod flags.
namespace off {
inline constexpr std::uint16_t kSendFlowRem = 1 << 0;
inline constexpr std::uint16_t kCheckOverlap = 1 << 1;
}  // namespace off

struct FlowMod {
  OfMatch match;
  std::uint64_t cookie = 0;
  FlowModCommand command = FlowModCommand::kAdd;
  std::uint16_t idle_timeout = 0;
  std::uint16_t hard_timeout = 0;
  std::uint16_t priority = 0x8000;
  std::uint32_t buffer_id = 0xFFFFFFFF;
  std::uint16_t out_port = ofpp::kNone;
  std::uint16_t flags = 0;
  std::vector<Action> actions;
};

enum class PacketInReason : std::uint8_t { kNoMatch = 0, kAction = 1 };

struct PacketIn {
  std::uint32_t buffer_id = 0xFFFFFFFF;
  std::uint16_t total_len = 0;
  std::uint16_t in_port = 0;
  PacketInReason reason = PacketInReason::kNoMatch;
  Bytes data;  ///< (possibly truncated) frame
};

struct PacketOut {
  std::uint32_t buffer_id = 0xFFFFFFFF;
  std::uint16_t in_port = ofpp::kNone;
  std::vector<Action> actions;
  Bytes data;
};

enum class FlowRemovedReason : std::uint8_t {
  kIdleTimeout = 0,
  kHardTimeout = 1,
  kDelete = 2,
};

struct FlowRemoved {
  OfMatch match;
  std::uint64_t cookie = 0;
  std::uint16_t priority = 0;
  FlowRemovedReason reason = FlowRemovedReason::kDelete;
  std::uint32_t duration_sec = 0;
  std::uint32_t duration_nsec = 0;
  std::uint16_t idle_timeout = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

struct BarrierRequest {};
struct BarrierReply {};

struct ErrorMsg {
  std::uint16_t type = 0;
  std::uint16_t code = 0;
  Bytes data;
};

// Flow statistics (OFPST_FLOW).
struct FlowStatsRequest {
  OfMatch match;
  std::uint8_t table_id = 0xFF;
  std::uint16_t out_port = ofpp::kNone;
};

struct FlowStatsEntry {
  std::uint8_t table_id = 0;
  OfMatch match;
  std::uint32_t duration_sec = 0;
  std::uint32_t duration_nsec = 0;
  std::uint16_t priority = 0;
  std::uint16_t idle_timeout = 0;
  std::uint16_t hard_timeout = 0;
  std::uint64_t cookie = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  std::vector<Action> actions;
};

struct FlowStatsReply {
  std::vector<FlowStatsEntry> flows;
};

// Aggregate statistics (OFPST_AGGREGATE).
struct AggregateStatsRequest {
  OfMatch match;
  std::uint8_t table_id = 0xFF;
  std::uint16_t out_port = ofpp::kNone;
};

struct AggregateStatsReply {
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  std::uint32_t flow_count = 0;
};

// Port statistics (OFPST_PORT).
struct PortStatsRequest {
  std::uint16_t port_no = ofpp::kNone;  ///< kNone = all ports
};

struct PortStatsEntry {
  std::uint16_t port_no = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_dropped = 0;
  std::uint64_t tx_dropped = 0;
  std::uint64_t rx_errors = 0;
  std::uint64_t tx_errors = 0;
  std::uint64_t rx_frame_err = 0;
  std::uint64_t rx_over_err = 0;
  std::uint64_t rx_crc_err = 0;
  std::uint64_t collisions = 0;
};

struct PortStatsReply {
  std::vector<PortStatsEntry> ports;
};

// Queue configuration (OFPT_QUEUE_GET_CONFIG_*).
struct QueueGetConfigRequest {
  std::uint16_t port = 0;
};

struct QueueDesc {
  std::uint32_t queue_id = 0;
  /// Guaranteed minimum rate in 1/10 of a percent of the link
  /// (OFPQT_MIN_RATE); 0xFFFF = disabled.
  std::uint16_t min_rate_tenths = 0xFFFF;
};

struct QueueGetConfigReply {
  std::uint16_t port = 0;
  std::vector<QueueDesc> queues;
};

using OfMessage =
    std::variant<Hello, EchoRequest, EchoReply, FeaturesRequest, FeaturesReply,
                 FlowMod, PacketIn, PacketOut, FlowRemoved, BarrierRequest,
                 BarrierReply, ErrorMsg, FlowStatsRequest, FlowStatsReply,
                 PortStatsRequest, PortStatsReply, AggregateStatsRequest,
                 AggregateStatsReply, QueueGetConfigRequest,
                 QueueGetConfigReply>;

[[nodiscard]] MsgType message_type(const OfMessage& msg) noexcept;

/// Serialize one message with the given transaction id.
[[nodiscard]] Bytes encode(const OfMessage& msg, std::uint32_t xid);

struct Decoded {
  OfMessage msg;
  std::uint32_t xid = 0;
  std::size_t wire_size = 0;  ///< bytes consumed
};

/// Decode the first complete message in `in`; nullopt when `in` is shorter
/// than the message (framing handled by the caller/channel) or malformed.
[[nodiscard]] std::optional<Decoded> decode(ByteSpan in);

}  // namespace osnt::openflow
