// OpenFlow 1.0 ofp_match: the 40-byte wildcard match structure, plus the
// cover/overlap algebra the flow table needs for ADD/MODIFY/DELETE
// semantics.
#pragma once

#include <cstdint>
#include <optional>

#include "osnt/common/types.hpp"
#include "osnt/net/headers.hpp"
#include "osnt/net/parser.hpp"

namespace osnt::openflow {

/// ofp_flow_wildcards bits (OF 1.0 §5.2.3).
namespace wc {
inline constexpr std::uint32_t kInPort = 1u << 0;
inline constexpr std::uint32_t kDlVlan = 1u << 1;
inline constexpr std::uint32_t kDlSrc = 1u << 2;
inline constexpr std::uint32_t kDlDst = 1u << 3;
inline constexpr std::uint32_t kDlType = 1u << 4;
inline constexpr std::uint32_t kNwProto = 1u << 5;
inline constexpr std::uint32_t kTpSrc = 1u << 6;
inline constexpr std::uint32_t kTpDst = 1u << 7;
inline constexpr std::uint32_t kNwSrcShift = 8;   ///< 6-bit prefix field
inline constexpr std::uint32_t kNwSrcMask = 0x3Fu << kNwSrcShift;
inline constexpr std::uint32_t kNwDstShift = 14;
inline constexpr std::uint32_t kNwDstMask = 0x3Fu << kNwDstShift;
inline constexpr std::uint32_t kDlVlanPcp = 1u << 20;
inline constexpr std::uint32_t kNwTos = 1u << 21;
inline constexpr std::uint32_t kAll = 0x3FFFFFu;
}  // namespace wc

struct OfMatch {
  static constexpr std::size_t kWireSize = 40;

  std::uint32_t wildcards = wc::kAll;
  std::uint16_t in_port = 0;
  net::MacAddr dl_src;
  net::MacAddr dl_dst;
  std::uint16_t dl_vlan = 0xFFFF;  ///< OFP_VLAN_NONE
  std::uint8_t dl_vlan_pcp = 0;
  std::uint16_t dl_type = 0;
  std::uint8_t nw_tos = 0;
  std::uint8_t nw_proto = 0;
  std::uint32_t nw_src = 0;
  std::uint32_t nw_dst = 0;
  std::uint16_t tp_src = 0;
  std::uint16_t tp_dst = 0;

  friend bool operator==(const OfMatch&, const OfMatch&) = default;

  /// nw_src prefix wildcard bits (0 = exact /32, >=32 = fully wild).
  [[nodiscard]] std::uint32_t nw_src_wild_bits() const noexcept {
    return (wildcards & wc::kNwSrcMask) >> wc::kNwSrcShift;
  }
  [[nodiscard]] std::uint32_t nw_dst_wild_bits() const noexcept {
    return (wildcards & wc::kNwDstMask) >> wc::kNwDstShift;
  }
  void set_nw_src_prefix(std::uint32_t addr, std::uint32_t prefix_len) noexcept;
  void set_nw_dst_prefix(std::uint32_t addr, std::uint32_t prefix_len) noexcept;

  /// A fully-wildcarded match.
  [[nodiscard]] static OfMatch any() noexcept { return OfMatch{}; }

  /// Extract the concrete (no-wildcard) match of a packet as seen on
  /// `in_port` — what the switch datapath computes per packet.
  [[nodiscard]] static OfMatch from_packet(const net::ParsedPacket& p,
                                           std::uint16_t in_port) noexcept;

  /// Exact-match-flow convenience: exact on the 5-tuple + dl_type,
  /// wildcard everything else.
  [[nodiscard]] static OfMatch exact_5tuple(std::uint32_t nw_src,
                                            std::uint32_t nw_dst,
                                            std::uint8_t nw_proto,
                                            std::uint16_t tp_src,
                                            std::uint16_t tp_dst) noexcept;

  /// Does this (possibly wildcarded) match cover the concrete match of a
  /// packet?
  [[nodiscard]] bool matches_packet(const OfMatch& concrete) const noexcept;

  /// Rule-versus-rule: true when every packet matching `other` also
  /// matches `this` (OF 1.0 non-strict DELETE/MODIFY semantics).
  [[nodiscard]] bool covers(const OfMatch& other) const noexcept;

  // --- wire format ---
  void write(MutByteSpan out) const noexcept;  ///< out.size() >= kWireSize
  [[nodiscard]] static std::optional<OfMatch> read(ByteSpan in) noexcept;
};

}  // namespace osnt::openflow
