// Parallel trial runner: shard independent simulations across cores behind
// one experiment API. Trials are seed-isolated — each builds its own
// sim::Engine testbed — so a TrialPlan fans out across a worker pool with
// no shared mutable state, and results are aggregated in descriptor order
// so output is byte-identical for any thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "osnt/core/trial.hpp"

namespace osnt::core {

struct RunnerConfig {
  /// Worker threads. 1 (the default) runs inline on the calling thread;
  /// 0 means std::thread::hardware_concurrency().
  std::size_t jobs = 1;

  [[nodiscard]] std::size_t resolved_jobs() const noexcept;
};

/// A batch of independent trials plus the functor that runs one of them.
struct TrialPlan {
  std::vector<TrialPoint> points;
  Trial run;

  /// Repeat-across-seeds plan: seeds 1..repetitions, one point each.
  [[nodiscard]] static TrialPlan repeat(std::size_t repetitions);
  /// One point per load fraction at a fixed frame size (loss-rate ladder).
  [[nodiscard]] static TrialPlan load_grid(const std::vector<double>& loads,
                                           std::size_t frame_size);
};

/// Executes TrialPlans (and generic index ranges) across a worker pool.
///
/// Guarantees:
///  - results come back in plan order, independent of jobs;
///  - every trial is attempted even if an earlier one throws; the first
///    exception in plan order is rethrown after the batch completes;
///  - worker threads are tagged for the logger (common/log) so interleaved
///    lines from concurrent trials stay attributable.
class Runner {
 public:
  explicit Runner(RunnerConfig cfg = {}) : cfg_(cfg) {}

  /// Run every point through `plan.run`; result i corresponds to
  /// `plan.points[i]` (with `index` filled in) regardless of thread count.
  [[nodiscard]] std::vector<TrialStats> run(const TrialPlan& plan) const;

  /// Deterministic-order parallel map: invoke `body(i)` for i in [0, n)
  /// across the pool. The sweeps use this when the unit of parallelism is
  /// a whole search (one frame size's binary search), not a single trial.
  void for_each(std::size_t n,
                const std::function<void(std::size_t)>& body) const;

  [[nodiscard]] const RunnerConfig& config() const noexcept { return cfg_; }

 private:
  RunnerConfig cfg_;
};

}  // namespace osnt::core
