// Parallel trial runner: shard independent simulations across cores behind
// one experiment API. Trials are seed-isolated — each builds its own
// sim::Engine testbed — so a TrialPlan fans out across a worker pool with
// no shared mutable state, and results are aggregated in descriptor order
// so output is byte-identical for any thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "osnt/core/trial.hpp"

namespace osnt::core {

struct RunnerConfig {
  /// Worker threads. 1 (the default) runs inline on the calling thread;
  /// 0 means std::thread::hardware_concurrency().
  std::size_t jobs = 1;

  /// Attempt cap per trial (min 1). Above 1, a failed attempt a is retried
  /// at seed rederive_seed(point.seed, a) — bounded, deterministic, and
  /// independent of which worker runs it.
  std::uint32_t max_attempts = 1;

  /// Per-attempt sim-event budget adopted by every Engine the trial
  /// constructs (0 = off). The deterministic watchdog: a livelocked trial
  /// dies on the same event number everywhere.
  std::uint64_t event_budget = 0;

  /// Per-attempt wall-clock deadline in ms (0 = off). A safety net for
  /// stalls the event budget cannot see (a blocking handler); inherently
  /// nondeterministic — see DESIGN.md §10.
  std::uint64_t wall_deadline_ms = 0;

  [[nodiscard]] std::size_t resolved_jobs() const noexcept;
};

/// A batch of independent trials plus the functor that runs one of them.
struct TrialPlan {
  std::vector<TrialPoint> points;
  Trial run;

  /// Repeat-across-seeds plan: seeds 1..repetitions, one point each.
  [[nodiscard]] static TrialPlan repeat(std::size_t repetitions);
  /// One point per load fraction at a fixed frame size (loss-rate ladder).
  [[nodiscard]] static TrialPlan load_grid(const std::vector<double>& loads,
                                           std::size_t frame_size);
};

/// Executes TrialPlans (and generic index ranges) across a worker pool.
///
/// Guarantees:
///  - results come back in plan order, independent of jobs;
///  - every trial is attempted even if an earlier one throws; the first
///    exception in plan order is rethrown after the batch completes;
///  - worker threads are tagged for the logger (common/log) so interleaved
///    lines from concurrent trials stay attributable.
class Runner {
 public:
  explicit Runner(RunnerConfig cfg = {}) : cfg_(cfg) {}

  /// Run every point through `plan.run`; result i corresponds to
  /// `plan.points[i]` (with `index` filled in) regardless of thread count.
  /// Retries/watchdogs from the config still apply; a slot whose attempts
  /// are exhausted surfaces as the historical throw (every point is still
  /// attempted, first exception in plan order rethrown after the batch).
  [[nodiscard]] std::vector<TrialStats> run(const TrialPlan& plan) const;

  /// Hardened execution: never throws for trial failures. Every slot gets
  /// up to `max_attempts` watchdogged attempts with per-attempt seed
  /// rederivation; the plan always completes, and each TrialResult says
  /// whether its stats are first-try (ok), salvaged (retried), or absent
  /// (timed_out / failed, with the last error attached). Outcome counts
  /// land in telemetry under `core.runner.outcome.*`.
  [[nodiscard]] std::vector<TrialResult> run_resilient(
      const TrialPlan& plan) const;

  /// Deterministic-order parallel map: invoke `body(i)` for i in [0, n)
  /// across the pool. The sweeps use this when the unit of parallelism is
  /// a whole search (one frame size's binary search), not a single trial.
  void for_each(std::size_t n,
                const std::function<void(std::size_t)>& body) const;

  [[nodiscard]] const RunnerConfig& config() const noexcept { return cfg_; }

 private:
  RunnerConfig cfg_;
};

}  // namespace osnt::core
