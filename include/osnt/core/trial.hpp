// Unified trial vocabulary for the experiment layer. Every measurement —
// repeat-across-seeds, RFC 2544 searches, CLI sweeps — is phrased as "run
// one trial at this TrialPoint on a fresh testbed and report TrialStats",
// so one functor type (`Trial`) feeds both the serial searches and the
// parallel `core::Runner`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <utility>

#include "osnt/common/random.hpp"
#include "osnt/common/stats.hpp"

namespace osnt::core {

/// One trial descriptor. A plan is a list of these; trials are seed-isolated
/// (each builds its own sim::Engine testbed) so any subset may run
/// concurrently. `index` is the position in the plan and the key results are
/// ordered by, whatever thread ran the trial.
struct TrialPoint {
  std::size_t index = 0;       ///< position in the plan (set by the runner)
  std::uint64_t seed = 1;      ///< RNG seed for the trial's testbed
  double load_fraction = 1.0;  ///< offered load as a fraction of line rate
  std::size_t frame_size = 64; ///< frame size incl. FCS
  std::size_t burst_len = 0;   ///< back-to-back burst length (0 = n/a)
  /// Retry ordinal (set by the runner): 0 on the first attempt. The seed
  /// above is already rederived for the attempt — a trial that only uses
  /// `seed` replays bit-identically when re-invoked at the same point.
  std::uint32_t attempt = 0;
};

/// Deterministic per-attempt seed rederivation (osnt::derive_seed, i.e. a
/// splitmix64 finalizer over seed ⊕ attempt·golden-ratio). Identity at
/// attempt 0, so retry-capable runs reproduce retry-free runs exactly;
/// distinct, well-mixed streams for every later attempt, independent of
/// thread or schedule.
[[nodiscard]] constexpr std::uint64_t rederive_seed(
    std::uint64_t seed, std::uint32_t attempt) noexcept {
  return attempt == 0 ? seed : derive_seed(seed, attempt);
}

/// How a trial's slot in the plan ended up (see DESIGN.md §10).
enum class TrialOutcome : std::uint8_t {
  kOk = 0,    ///< first attempt succeeded
  kRetried,   ///< an attempt failed; a later rederived-seed attempt passed
  kTimedOut,  ///< last attempt killed by a watchdog (sim::WatchdogError)
  kFailed,    ///< last attempt threw something else
};

[[nodiscard]] constexpr const char* trial_outcome_name(
    TrialOutcome o) noexcept {
  constexpr const char* kNames[] = {"ok", "retried", "timed_out", "failed"};
  return kNames[static_cast<std::size_t>(o)];
}

/// Outcome of offering `load_fraction` of line rate at one frame size.
struct TrialStats {
  std::uint64_t tx_frames = 0;
  std::uint64_t rx_frames = 0;
  double offered_gbps = 0.0;
  SampleSet latency_ns;
  /// Free-form scalar for repeat-style experiments whose figure of merit
  /// is not a frame count (e.g. a latency percentile or a fitted rate).
  double metric = 0.0;

  [[nodiscard]] double loss_fraction() const noexcept {
    return tx_frames == 0
               ? 0.0
               : 1.0 - static_cast<double>(rx_frames) /
                           static_cast<double>(tx_frames);
  }
};

/// One plan slot's result under the hardened runner: stats when any
/// attempt succeeded, plus how it got there. Failed/timed-out slots carry
/// the last attempt's error so a sweep can report partial results with
/// quality flags instead of aborting.
struct TrialResult {
  TrialStats stats;  ///< valid iff ok(); value-initialized otherwise
  TrialOutcome outcome = TrialOutcome::kOk;
  std::uint32_t attempts = 0;      ///< attempts actually made
  std::uint64_t seed_used = 0;     ///< rederived seed of the last attempt
  std::string error;               ///< last attempt's what() when !ok()
  std::exception_ptr exception;    ///< last attempt's exception when !ok()

  [[nodiscard]] bool ok() const noexcept {
    return outcome == TrialOutcome::kOk || outcome == TrialOutcome::kRetried;
  }
};

/// Runs one trial on a fresh testbed. Implemented by the caller (bench,
/// test, or CLI) so the DUT and topology stay out of this layer. Must be
/// safe to invoke from several threads at once when handed to a Runner
/// with jobs > 1 — which it is for free when every state it touches lives
/// inside the trial body.
using Trial = std::function<TrialStats(const TrialPoint&)>;

/// Lift a scalar-valued experiment into the Trial vocabulary: the returned
/// Trial stores `fn(point)` in TrialStats::metric.
[[nodiscard]] inline Trial scalar_trial(
    std::function<double(const TrialPoint&)> fn) {
  return [fn = std::move(fn)](const TrialPoint& p) {
    TrialStats s;
    s.metric = fn(p);
    return s;
  };
}

}  // namespace osnt::core
