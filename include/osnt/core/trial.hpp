// Unified trial vocabulary for the experiment layer. Every measurement —
// repeat-across-seeds, RFC 2544 searches, CLI sweeps — is phrased as "run
// one trial at this TrialPoint on a fresh testbed and report TrialStats",
// so one functor type (`Trial`) feeds both the serial searches and the
// parallel `core::Runner`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "osnt/common/stats.hpp"

namespace osnt::core {

/// One trial descriptor. A plan is a list of these; trials are seed-isolated
/// (each builds its own sim::Engine testbed) so any subset may run
/// concurrently. `index` is the position in the plan and the key results are
/// ordered by, whatever thread ran the trial.
struct TrialPoint {
  std::size_t index = 0;       ///< position in the plan (set by the runner)
  std::uint64_t seed = 1;      ///< RNG seed for the trial's testbed
  double load_fraction = 1.0;  ///< offered load as a fraction of line rate
  std::size_t frame_size = 64; ///< frame size incl. FCS
  std::size_t burst_len = 0;   ///< back-to-back burst length (0 = n/a)
};

/// Outcome of offering `load_fraction` of line rate at one frame size.
struct TrialStats {
  std::uint64_t tx_frames = 0;
  std::uint64_t rx_frames = 0;
  double offered_gbps = 0.0;
  SampleSet latency_ns;
  /// Free-form scalar for repeat-style experiments whose figure of merit
  /// is not a frame count (e.g. a latency percentile or a fitted rate).
  double metric = 0.0;

  [[nodiscard]] double loss_fraction() const noexcept {
    return tx_frames == 0
               ? 0.0
               : 1.0 - static_cast<double>(rx_frames) /
                           static_cast<double>(tx_frames);
  }
};

/// Runs one trial on a fresh testbed. Implemented by the caller (bench,
/// test, or CLI) so the DUT and topology stay out of this layer. Must be
/// safe to invoke from several threads at once when handed to a Runner
/// with jobs > 1 — which it is for free when every state it touches lives
/// inside the trial body.
using Trial = std::function<TrialStats(const TrialPoint&)>;

/// Lift a scalar-valued experiment into the Trial vocabulary: the returned
/// Trial stores `fn(point)` in TrialStats::metric.
[[nodiscard]] inline Trial scalar_trial(
    std::function<double(const TrialPoint&)> fn) {
  return [fn = std::move(fn)](const TrialPoint& p) {
    TrialStats s;
    s.metric = fn(p);
    return s;
  };
}

}  // namespace osnt::core
