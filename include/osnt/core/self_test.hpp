// Card bring-up self-test: loop each generator port back to a monitor
// port, push a burst, and verify counters, timestamps and capture
// integrity — what the OSNT driver runs before trusting a card.
#pragma once

#include <string>
#include <vector>

#include "osnt/core/device.hpp"

namespace osnt::core {

struct SelfTestResult {
  bool passed = true;
  std::vector<std::string> failures;  ///< human-readable diagnoses

  void fail(std::string why) {
    passed = false;
    failures.push_back(std::move(why));
  }
};

struct SelfTestConfig {
  std::size_t frames_per_port = 200;
  std::size_t frame_size = 512;
};

/// Runs on a device whose ports are NOT yet cabled: the test wires
/// port 2k → port 2k+1 internally (loopback pairs), drives traffic, and
/// checks: zero loss, in-order sequence numbers, hash integrity of every
/// capture, and timestamp sanity. The device is left with those cables
/// in place; use a fresh device for production wiring afterwards.
[[nodiscard]] SelfTestResult run_self_test(sim::Engine& eng, OsntDevice& dev,
                                           SelfTestConfig cfg = SelfTestConfig());

}  // namespace osnt::core
