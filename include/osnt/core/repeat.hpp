// Measurement methodology helpers: repeat a trial across seeds and report
// mean ± confidence interval — the discipline RFC 2544 (and reviewers)
// expect from numbers a tester produces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace osnt::core {

struct RepeatedResult {
  std::vector<double> values;  ///< one scalar per repetition
  double mean = 0.0;
  double stddev = 0.0;
  /// Half-width of the two-sided 95% confidence interval on the mean
  /// (Student t for n ≤ 30, normal beyond).
  double ci95_half = 0.0;

  [[nodiscard]] double lo() const noexcept { return mean - ci95_half; }
  [[nodiscard]] double hi() const noexcept { return mean + ci95_half; }
  /// Relative CI half-width (0 when the mean is 0).
  [[nodiscard]] double relative_ci() const noexcept {
    return mean != 0.0 ? ci95_half / mean : 0.0;
  }
};

/// Run `trial(seed)` for seeds 1..repetitions and summarize the scalars.
[[nodiscard]] RepeatedResult run_repeated(
    const std::function<double(std::uint64_t seed)>& trial,
    std::size_t repetitions);

/// 95% two-sided Student-t critical value for n-1 degrees of freedom
/// (table for n ≤ 30, 1.96 beyond). Exposed for tests.
[[nodiscard]] double t_critical_95(std::size_t n) noexcept;

}  // namespace osnt::core
