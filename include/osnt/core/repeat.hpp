// Measurement methodology helpers: repeat a trial across seeds and report
// mean ± confidence interval — the discipline RFC 2544 (and reviewers)
// expect from numbers a tester produces. Repetitions are seed-isolated, so
// they shard across cores via core::Runner when asked.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "osnt/core/runner.hpp"
#include "osnt/core/trial.hpp"

namespace osnt::core {

struct RepeatedResult {
  std::vector<double> values;  ///< one scalar per repetition, in seed order
  double mean = 0.0;
  double stddev = 0.0;
  /// Half-width of the two-sided 95% confidence interval on the mean
  /// (Student t, interpolated for large n).
  double ci95_half = 0.0;

  [[nodiscard]] double lo() const noexcept { return mean - ci95_half; }
  [[nodiscard]] double hi() const noexcept { return mean + ci95_half; }
  /// Relative CI half-width (0 when the mean is 0).
  [[nodiscard]] double relative_ci() const noexcept {
    return mean != 0.0 ? ci95_half / mean : 0.0;
  }
};

/// Run `trial` at seeds 1..repetitions and summarize TrialStats::metric.
/// `runner.jobs > 1` fans repetitions out across threads; values (and
/// therefore the summary) are identical for any thread count because
/// aggregation happens in seed order.
[[nodiscard]] RepeatedResult run_repeated(const Trial& trial,
                                          std::size_t repetitions,
                                          const RunnerConfig& runner = {});

/// 95% two-sided Student-t critical value for n-1 degrees of freedom:
/// exact table for df ≤ 30, interpolated in 1/df through the standard
/// df = 40/60/120 anchors beyond, converging to 1.96. Exposed for tests.
[[nodiscard]] double t_critical_95(std::size_t n) noexcept;

}  // namespace osnt::core
