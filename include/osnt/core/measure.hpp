// High-level measurement API — the "programmer-friendly" layer the paper
// describes for building throughput / latency / jitter tests in software.
// Callers cable a device-under-test between two OSNT ports, describe the
// traffic, and get distributions back.
#pragma once

#include <cstdint>
#include <memory>

#include "osnt/common/stats.hpp"
#include "osnt/core/device.hpp"
#include "osnt/gen/models.hpp"
#include "osnt/gen/rate.hpp"
#include "osnt/gen/source.hpp"

namespace osnt::core {

/// Declarative traffic description; expanded into a source + gap model.
struct TrafficSpec {
  gen::RateSpec rate = gen::RateSpec::line_rate(1.0);

  enum class Sizes : std::uint8_t { kFixed, kImix, kUniform };
  Sizes sizes = Sizes::kFixed;
  std::size_t frame_size = 64;      ///< for kFixed (incl. FCS)
  std::size_t size_lo = 64;         ///< for kUniform
  std::size_t size_hi = 1518;

  enum class Arrivals : std::uint8_t { kCbr, kPoisson, kBurst };
  Arrivals arrivals = Arrivals::kCbr;
  std::size_t burst_len = 32;       ///< for kBurst

  std::uint32_t flow_count = 1;
  /// UDP destination port shared by every probe flow — the selector the
  /// measurement uses to tell probe frames from other traffic.
  std::uint16_t dst_port = 5001;
  std::uint64_t frame_count = 0;    ///< 0 = until duration expires
  std::uint64_t seed = 1;
};

[[nodiscard]] std::unique_ptr<gen::PacketSource> make_source(
    const TrafficSpec& spec);
[[nodiscard]] std::unique_ptr<gen::GapModel> make_gap_model(
    const TrafficSpec& spec);

/// Result of a generate→DUT→capture run between two ports of one device.
struct RunResult {
  std::uint64_t tx_frames = 0;
  std::uint64_t rx_frames = 0;       ///< frames seen by the monitor port
  std::uint64_t captured = 0;        ///< records that survived the DMA path
  std::uint64_t dma_drops = 0;
  double offered_gbps = 0.0;         ///< measured at the generator
  double delivered_gbps = 0.0;       ///< measured at the monitor
  SampleSet latency_ns;              ///< embedded-stamp one-way latency
  SampleSet jitter_ns;               ///< |latency[i] - latency[i-1]| (RFC3550-ish)
  [[nodiscard]] double loss_fraction() const noexcept {
    return tx_frames == 0
               ? 0.0
               : 1.0 - static_cast<double>(rx_frames) /
                           static_cast<double>(tx_frames);
  }
};

/// Drive traffic out of `tx_port`, capture on `rx_port`, for `duration` of
/// simulated time (plus drain time), and collect latency/loss statistics.
/// The caller must already have cabled the ports (through a DUT or
/// back-to-back). The RX port's filter table is reprogrammed to capture
/// only the probe stream (selected by `spec.dst_port`), and rx_frames is
/// counted with a pre-DMA probe counter, so competing traffic on the
/// monitor port does not pollute the measurement.
/// `capture_filter`, when given, replaces the default capture rule (e.g.
/// to capture only a subset of the probe flows); the probe *counter*
/// always selects the full probe stream by `spec.dst_port`.
[[nodiscard]] RunResult run_capture_test(
    sim::Engine& eng, OsntDevice& dev, std::size_t tx_port,
    std::size_t rx_port, const TrafficSpec& spec, Picos duration,
    const mon::FilterRule* capture_filter = nullptr);

}  // namespace osnt::core
