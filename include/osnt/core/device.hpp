// OsntDevice: the software twin of one OSNT NetFPGA-10G card — four 10G
// ports, each with a generator TX pipeline and a monitor RX pipeline, one
// GPS-disciplined timestamp clock, and one shared (loss-limited) DMA path
// to the host capture buffer. This is the entry point of the public API.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "osnt/gen/tx_pipeline.hpp"
#include "osnt/hw/dma.hpp"
#include "osnt/hw/port.hpp"
#include "osnt/mon/capture.hpp"
#include "osnt/mon/rx_pipeline.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/tstamp/clock.hpp"
#include "osnt/tstamp/gps.hpp"

namespace osnt::core {

struct DeviceConfig {
  std::size_t num_ports = 4;
  hw::EthPortConfig port{};
  hw::DmaConfig dma{};
  tstamp::GpsConfig gps{};
  tstamp::ClockConfig clock{};
};

class OsntDevice {
 public:
  using Config = DeviceConfig;

  explicit OsntDevice(sim::Engine& eng, Config cfg = Config());

  OsntDevice(const OsntDevice&) = delete;
  OsntDevice& operator=(const OsntDevice&) = delete;

  [[nodiscard]] std::size_t num_ports() const noexcept { return ports_.size(); }

  /// Physical port (for cabling to a DUT with hw::connect).
  [[nodiscard]] hw::EthPort& port(std::size_t i) { return *ports_.at(i); }

  /// Generator pipeline of port i.
  [[nodiscard]] gen::TxPipeline& tx(std::size_t i) { return *tx_.at(i); }
  /// Monitor pipeline of port i.
  [[nodiscard]] mon::RxPipeline& rx(std::size_t i) { return *rx_.at(i); }

  /// Reconfigure the generator of port i (drops the old pipeline and its
  /// source). The new pipeline is stopped; set a source and start() it.
  gen::TxPipeline& configure_tx(std::size_t i, gen::TxConfig cfg);

  [[nodiscard]] tstamp::DisciplinedClock& clock() noexcept { return *clock_; }
  [[nodiscard]] tstamp::GpsModel& gps() noexcept { return *gps_; }
  [[nodiscard]] hw::DmaEngine& dma() noexcept { return *dma_; }
  /// Host capture buffer shared by all ports.
  [[nodiscard]] mon::HostCapture& capture() noexcept { return *capture_; }

  [[nodiscard]] sim::Engine& engine() noexcept { return *eng_; }

 private:
  sim::Engine* eng_;
  Config cfg_;
  std::unique_ptr<tstamp::GpsModel> gps_;
  std::unique_ptr<tstamp::DisciplinedClock> clock_;
  std::unique_ptr<hw::DmaEngine> dma_;
  std::unique_ptr<mon::HostCapture> capture_;
  std::vector<std::unique_ptr<hw::EthPort>> ports_;
  std::vector<std::unique_ptr<gen::TxPipeline>> tx_;
  std::vector<std::unique_ptr<mon::RxPipeline>> rx_;
};

}  // namespace osnt::core
