// RFC 2544-style automated benchmarking built on OSNT: zero-loss
// throughput search, frame-loss-rate sweep, and back-to-back burst
// capacity. The suite is generic over a trial runner so each trial can
// rebuild a pristine simulated testbed; searches and sweeps speak the
// unified core::Trial vocabulary (core/trial.hpp), and the sweeps shard
// independent work across cores via core::Runner.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "osnt/common/stats.hpp"
#include "osnt/core/runner.hpp"
#include "osnt/core/trial.hpp"

namespace osnt::core {

/// Legacy (load, frame_size) trial signature, kept so existing call sites
/// compile; internally adapted to core::Trial via as_trial().
using TrialFn =
    std::function<TrialStats(double load_fraction, std::size_t frame_size)>;

/// Adapt a legacy functor to the unified vocabulary.
[[nodiscard]] inline Trial as_trial(TrialFn legacy) {
  return [legacy = std::move(legacy)](const TrialPoint& p) {
    return legacy(p.load_fraction, p.frame_size);
  };
}

struct ThroughputSearchConfig {
  double lo = 0.02;          ///< search floor (fraction of line rate)
  double hi = 1.0;           ///< search ceiling
  double resolution = 0.005; ///< stop when hi-lo below this
  double loss_tolerance = 0.0;
};

struct ThroughputPoint {
  std::size_t frame_size = 0;
  double max_load_fraction = 0.0;  ///< highest passing load
  double gbps = 0.0;               ///< offered L1 Gb/s at that load
  double mpps = 0.0;
  std::uint32_t trials = 0;
  SampleSet latency_at_max_ns;     ///< latency at the passing load
  /// Quality flag: kOk numbers are trustworthy; a timed-out/failed size
  /// carries zeroed numbers plus the error, and the sweep still returns.
  TrialOutcome outcome = TrialOutcome::kOk;
  std::string error;  ///< what() of the search-killing exception
};

/// Binary-search the highest zero-loss (or tolerance) load for one size.
/// Inherently sequential: each probe depends on the previous verdict.
[[nodiscard]] ThroughputPoint find_throughput(
    const Trial& run, std::size_t frame_size,
    ThroughputSearchConfig cfg = ThroughputSearchConfig());
[[nodiscard]] ThroughputPoint find_throughput(
    const TrialFn& run, std::size_t frame_size,
    ThroughputSearchConfig cfg = ThroughputSearchConfig());

/// Standard RFC 2544 frame-size sweep. Each size's binary search stays
/// sequential, but sizes are independent and shard across `runner.jobs`
/// workers; the returned points are in `frame_sizes` order for any job
/// count.
[[nodiscard]] std::vector<ThroughputPoint> throughput_sweep(
    const Trial& run, std::span<const std::size_t> frame_sizes,
    ThroughputSearchConfig cfg = ThroughputSearchConfig(),
    const RunnerConfig& runner = RunnerConfig());
[[nodiscard]] std::vector<ThroughputPoint> throughput_sweep(
    const TrialFn& run, std::span<const std::size_t> frame_sizes,
    ThroughputSearchConfig cfg = ThroughputSearchConfig(),
    const RunnerConfig& runner = RunnerConfig());

/// Frame loss rate at a ladder of loads (RFC 2544 §26.3): returns
/// (load_fraction, loss_fraction) pairs from `hi` down in `step`s. Grid
/// points are independent trials and shard across `runner.jobs`.
struct LossPoint {
  double load_fraction = 0.0;
  double loss_fraction = 0.0;
  double offered_gbps = 0.0;
  /// Quality flag: numbers are zeroed (not trustworthy) unless the
  /// outcome is kOk/kRetried. The ladder completes either way.
  TrialOutcome outcome = TrialOutcome::kOk;
};
[[nodiscard]] std::vector<LossPoint> loss_rate_sweep(
    const Trial& run, std::size_t frame_size, double hi = 1.0,
    double step = 0.1, const RunnerConfig& runner = RunnerConfig());
[[nodiscard]] std::vector<LossPoint> loss_rate_sweep(
    const TrialFn& run, std::size_t frame_size, double hi = 1.0,
    double step = 0.1, const RunnerConfig& runner = RunnerConfig());

/// Back-to-back burst capacity (RFC 2544 §26.4): the longest line-rate
/// burst the DUT forwards without loss. The caller's trial runner offers
/// `burst_len` frames back-to-back and reports what came through.
using BurstTrialFn =
    std::function<TrialStats(std::size_t burst_len, std::size_t frame_size)>;

struct BackToBackPoint {
  std::size_t frame_size = 0;
  std::size_t max_burst = 0;  ///< longest zero-loss burst found
  std::uint32_t trials = 0;
};

[[nodiscard]] BackToBackPoint find_back_to_back(
    const BurstTrialFn& run, std::size_t frame_size,
    std::size_t max_burst = 1 << 16);

/// The canonical RFC 2544 frame sizes.
[[nodiscard]] std::span<const std::size_t> rfc2544_frame_sizes() noexcept;

}  // namespace osnt::core
