// In-plane latency/RTT measurement (cf. P4TG's histogram-based RTT
// monitoring in the data plane): per-traffic-class log2 histograms fed at
// MAC-receipt time, *before* the cutter/filter/DMA stages, so the
// distribution covers every delivered frame even when the loss-limited
// DMA path drops capture records. Host-side `HostCapture::latency_ns`
// only sees the survivors — under load its quantiles are biased toward
// whatever the DMA ring happened to keep; the probe is the unbiased
// population (see BiasReport / DESIGN.md §14).
//
// The hot path is batch-structured: observe() packs (latency, class) into
// one u64 and appends to a fixed ring; the bit_width bucketing runs in a
// tight drain loop once per kBatch samples, the way a hardware pipeline
// would retire a burst of stamps per clock. Accessors drain implicitly.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "osnt/common/stats.hpp"
#include "osnt/telemetry/histogram.hpp"

namespace osnt::mon {

class LatencyProbe {
 public:
  /// Traffic classes tracked separately (DSCP & kClassMask). Four matches
  /// the hardware design point: per-class histograms fit the register
  /// budget, and workloads tag flows round-robin across them.
  static constexpr std::size_t kClasses = 4;
  static constexpr std::uint8_t kClassMask = kClasses - 1;
  /// Samples buffered between drains of the batch ring.
  static constexpr std::size_t kBatch = 128;
  /// Largest representable latency: the class tag rides in the low 2 bits
  /// of the packed word, so values clamp at 2^62-1 ns (~146 years).
  static constexpr std::uint64_t kMaxNs = (std::uint64_t{1} << 62) - 1;

  /// Record one sample. `tclass` beyond kClasses wraps via kClassMask.
  void observe(std::uint64_t latency_ns, std::uint8_t tclass) noexcept {
    if (latency_ns > kMaxNs) latency_ns = kMaxNs;
    batch_[pending_++] = (latency_ns << 2) | (tclass & kClassMask);
    if (pending_ == kBatch) drain();
  }

  /// Record a pre-collected burst (generator/monitor batch hot path).
  void observe_batch(const std::uint64_t* latency_ns, std::size_t n,
                     std::uint8_t tclass) noexcept;

  /// Retire buffered samples into the per-class histograms. Called
  /// automatically when the ring fills and by every accessor, so readers
  /// never see a stale distribution.
  void drain() const noexcept;

  [[nodiscard]] const telemetry::Log2Histogram& of_class(
      std::size_t k) const noexcept {
    drain();
    return hist_[k & kClassMask];
  }
  /// All classes merged into one distribution.
  [[nodiscard]] telemetry::Log2Histogram merged() const noexcept;
  [[nodiscard]] std::uint64_t samples() const noexcept;

  /// Merge into the telemetry registry under `<prefix>rtt.*`:
  /// `<prefix>rtt.ns` (merged histogram), `<prefix>rtt.class<k>.ns` for
  /// each non-empty class, and the `<prefix>rtt.samples` counter. A no-op
  /// when no samples were observed, so idle probes add no metric names.
  void flush(const std::string& prefix) const;

  void reset() noexcept;

 private:
  // drain() is logically const (observe order is preserved; accessors
  // just retire the buffer early), so the storage is mutable.
  mutable std::array<std::uint64_t, kBatch> batch_;
  mutable std::size_t pending_ = 0;
  mutable std::array<telemetry::Log2Histogram, kClasses> hist_{};
};

/// Host-vs-in-plane bias: the same latency population seen by the probe
/// (full) and by host capture (post-DMA survivors). `coverage` is the
/// fraction of in-plane samples that made it to the host — 1.0 means the
/// DMA path kept up, anything less means host-side quantiles are computed
/// over a biased subset.
struct BiasReport {
  std::uint64_t inplane_samples = 0;
  std::uint64_t host_samples = 0;
  double coverage = 1.0;
  double inplane_p50 = 0.0;
  double inplane_p99 = 0.0;
  double host_p50 = 0.0;
  double host_p99 = 0.0;

  [[nodiscard]] std::uint64_t lost_samples() const noexcept {
    return inplane_samples > host_samples ? inplane_samples - host_samples
                                          : 0;
  }
};

/// Compare the probe's full population against a host-side SampleSet
/// (typically HostCapture::latency_ns over the same port/offset).
[[nodiscard]] BiasReport compare_bias(const LatencyProbe& probe,
                                      const SampleSet& host);

}  // namespace osnt::mon
