// Per-port receive pipeline, the OSNT monitor datapath:
//
//   RX MAC → timestamp (first bit, disciplined clock) → stats block
//          → wildcard filter → cutter/hash → DMA (loss-limited) → host
//
// The pipeline never back-pressures the MAC: anything the DMA path cannot
// take is dropped and counted, exactly like the hardware.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "osnt/hw/dma.hpp"
#include "osnt/hw/mac10g.hpp"
#include "osnt/mon/cutter.hpp"
#include "osnt/mon/filter.hpp"
#include "osnt/mon/latency_probe.hpp"
#include "osnt/mon/stats_block.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/telemetry/histogram.hpp"
#include "osnt/tstamp/clock.hpp"
#include "osnt/tstamp/embed.hpp"

namespace osnt::mon {

struct RxConfig {
  std::uint8_t port_id = 0;
  bool capture_enabled = true;
  CutterConfig cutter{};
  /// In-plane RTT probe (LatencyProbe): decode the embedded TX stamp at
  /// `probe_embed_offset` before the trigger/filter/DMA stages and record
  /// the device-clock latency per traffic class (IPv4 DSCP). Frames whose
  /// bytes at the offset do not decode to a plausible stamp (delta outside
  /// [0, probe_window_ns)) are skipped — unstamped traffic decodes to
  /// absurd deltas, which is what makes the probe safe to leave on.
  bool rtt_probe = true;
  std::size_t probe_embed_offset = tstamp::kDefaultEmbedOffset;
  double probe_window_ns = 1e9;
};

class RxPipeline {
 public:
  using Config = RxConfig;

  /// Installs itself as the RX MAC handler. All referenced components
  /// must outlive the pipeline. The DMA engine is typically shared by all
  /// four ports of a device — that is what makes the path loss-limited.
  RxPipeline(sim::Engine& eng, hw::RxMac& mac, tstamp::DisciplinedClock& clock,
             hw::DmaEngine& dma, Config cfg = Config());
  /// Merges this pipeline's shard (path counters, the sim-time one-way
  /// latency histogram) into the telemetry registry under `mon.rx.*`.
  ~RxPipeline();

  [[nodiscard]] FilterTable& filters() noexcept { return filters_; }
  [[nodiscard]] PacketCutter& cutter() noexcept { return cutter_; }
  [[nodiscard]] StatsBlock& stats() noexcept { return stats_; }
  [[nodiscard]] const StatsBlock& stats() const noexcept { return stats_; }

  void set_capture_enabled(bool on) noexcept { cfg_.capture_enabled = on; }
  void set_rtt_probe_enabled(bool on) noexcept { cfg_.rtt_probe = on; }

  /// In-sim frame tap: invoked for every parseable frame after the stats
  /// block, before the capture path (so trigger/filter/DMA state cannot
  /// hide traffic from it). This is the seam protocol endpoints build on —
  /// osnt::tcp hangs its senders/receivers here so ACK generation rides
  /// the same monitor datapath as measurement. The parse is shared with
  /// the stats block; `first_bit` is MAC-receipt (pre-queueing) sim time.
  using FrameTap =
      std::function<void(const net::ParsedPacket&, const net::Packet&,
                         Picos first_bit)>;
  void set_tap(FrameTap tap) { tap_ = std::move(tap); }

  /// Probe counter: counts frames matching `rule` before the capture
  /// filter and DMA (like a dedicated hardware match counter). Used by
  /// measurement code to count DUT-delivered probe frames independently
  /// of capture-path loss.
  void set_probe(std::optional<FilterRule> rule) noexcept {
    probe_ = std::move(rule);
    probe_seen_ = 0;
  }
  [[nodiscard]] std::uint64_t probe_seen() const noexcept { return probe_seen_; }

  /// Oscilloscope-style triggered capture: nothing is captured until a
  /// frame matches `rule`; then the trigger frame plus the following
  /// `window - 1` frames are captured and the pipeline disarms. Re-arm
  /// for the next event. Works on top of the regular capture filter.
  void arm_trigger(FilterRule rule, std::uint64_t window);
  void disarm_trigger() noexcept { trigger_state_ = TriggerState::kOff; }
  [[nodiscard]] bool trigger_armed() const noexcept {
    return trigger_state_ == TriggerState::kArmed;
  }
  [[nodiscard]] bool trigger_fired() const noexcept {
    return trigger_state_ == TriggerState::kFired ||
           trigger_state_ == TriggerState::kDone;
  }
  [[nodiscard]] bool trigger_window_open() const noexcept {
    return trigger_state_ == TriggerState::kFired;
  }

  /// The in-plane RTT probe (per-class log2 histograms over the embedded
  /// TX stamp → RX device stamp delta, pre-DMA). Empty when cfg.rtt_probe
  /// is off or no stamped traffic arrived.
  [[nodiscard]] const LatencyProbe& rtt_probe() const noexcept {
    return rtt_probe_;
  }

  // --- counters ---
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::uint64_t captured() const noexcept { return captured_; }
  [[nodiscard]] std::uint64_t filtered_out() const noexcept { return filtered_; }
  [[nodiscard]] std::uint64_t dma_drops() const noexcept { return dma_drops_; }

 private:
  void on_frame(net::Packet pkt, Picos first_bit, Picos last_bit);

  sim::Engine* eng_;
  tstamp::DisciplinedClock* clock_;
  hw::DmaEngine* dma_;
  Config cfg_;
  FilterTable filters_;
  PacketCutter cutter_;
  StatsBlock stats_;
  std::optional<FilterRule> probe_;
  std::uint64_t probe_seen_ = 0;
  FrameTap tap_;

  enum class TriggerState : std::uint8_t { kOff, kArmed, kFired, kDone };
  TriggerState trigger_state_ = TriggerState::kOff;
  FilterRule trigger_rule_{};
  std::uint64_t trigger_remaining_ = 0;

  std::uint64_t seen_ = 0;
  std::uint64_t captured_ = 0;
  std::uint64_t filtered_ = 0;
  std::uint64_t dma_drops_ = 0;
  /// Ground-truth one-way latency (tx_truth → first bit at the monitor),
  /// in nanoseconds of *sim* time — the shard behind `mon.rx.latency_ns`.
  telemetry::Log2Histogram latency_ns_;
  /// Device-observable in-plane latency (embedded stamp vs RX stamp),
  /// flushed under `mon.rx.rtt.*`.
  LatencyProbe rtt_probe_;
  telemetry::TraceRecorder::TrackId trace_track_ = 0;
  bool trace_track_set_ = false;
};

}  // namespace osnt::mon
