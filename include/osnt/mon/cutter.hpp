// Packet cutting ("thinning") + hashing — the monitor's bandwidth-saving
// stage. Truncates each captured frame to a snap length before it crosses
// the loss-limited DMA path, and computes a hash of the *full* frame so
// cut captures can still be matched/deduplicated.
#pragma once

#include <cstdint>

#include "osnt/common/types.hpp"

namespace osnt::mon {

struct CutterConfig {
  /// Bytes to keep per frame; 0 = cutting disabled (full frames).
  std::size_t snap_len = 0;
  /// Hash the full (pre-cut) frame and carry it in the capture record.
  bool hash_full_frame = true;
};

struct CutResult {
  Bytes data;                 ///< snapped frame bytes
  std::uint32_t orig_len = 0; ///< original frame length (without FCS)
  std::uint32_t hash = 0;     ///< CRC32 over the full frame (0 if disabled)
};

class PacketCutter {
 public:
  using Config = CutterConfig;

  explicit PacketCutter(Config cfg = Config()) noexcept : cfg_(cfg) {}

  [[nodiscard]] CutResult process(ByteSpan frame) const;

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  void set_snap_len(std::size_t snap) noexcept { cfg_.snap_len = snap; }

 private:
  Config cfg_;
};

}  // namespace osnt::mon
