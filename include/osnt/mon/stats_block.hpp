// Per-port RX statistics block: the hardware counters OSNT exposes —
// frame/byte totals, RMON-style size bins, protocol counters, and a
// windowed rate estimator.
#pragma once

#include <array>
#include <cstdint>

#include "osnt/common/time.hpp"
#include "osnt/net/parser.hpp"

namespace osnt::mon {

struct SizeBins {
  // RMON etherStatsPkts bins (frame length incl. FCS).
  std::uint64_t p64 = 0;
  std::uint64_t p65_127 = 0;
  std::uint64_t p128_255 = 0;
  std::uint64_t p256_511 = 0;
  std::uint64_t p512_1023 = 0;
  std::uint64_t p1024_1518 = 0;
  std::uint64_t oversize = 0;
};

struct ProtoCounts {
  std::uint64_t ipv4 = 0;
  std::uint64_t ipv6 = 0;
  std::uint64_t arp = 0;
  std::uint64_t tcp = 0;
  std::uint64_t udp = 0;
  std::uint64_t icmp = 0;
  std::uint64_t other_l3 = 0;
};

class StatsBlock {
 public:
  void record(const net::ParsedPacket& parsed, std::size_t wire_len,
              Picos now) noexcept;

  [[nodiscard]] std::uint64_t frames() const noexcept { return frames_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] const SizeBins& size_bins() const noexcept { return bins_; }
  [[nodiscard]] const ProtoCounts& protocols() const noexcept { return proto_; }

  /// Mean L1 rate between the first and last recorded frame, Gb/s.
  [[nodiscard]] double mean_gbps() const noexcept;
  /// Mean packet rate over the same window, packets/s.
  [[nodiscard]] double mean_pps() const noexcept;

  void reset() noexcept { *this = StatsBlock{}; }

 private:
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;  ///< line bytes incl. framing overhead
  SizeBins bins_;
  ProtoCounts proto_;
  Picos first_ = -1;
  Picos last_ = -1;
};

}  // namespace osnt::mon
