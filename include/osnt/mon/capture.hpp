// Host-side capture: receives completed DMA records, unpacks the
// descriptor metadata back into capture records, and offers PCAP export
// plus latency decoding against embedded TX timestamps.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "osnt/common/stats.hpp"
#include "osnt/common/types.hpp"
#include "osnt/hw/dma.hpp"
#include "osnt/tstamp/timestamp.hpp"

namespace osnt::mon {

struct CaptureRecord {
  Bytes data;               ///< snapped frame bytes
  tstamp::Timestamp ts;     ///< RX timestamp (MAC receipt, device clock)
  std::uint32_t orig_len = 0;
  std::uint32_t hash = 0;   ///< CRC32 of the full frame (pre-cut)
  std::uint8_t port = 0;

  /// Descriptor packing used across the DMA boundary.
  [[nodiscard]] static CaptureRecord from_dma(hw::DmaRecord rec);
  [[nodiscard]] hw::DmaRecord to_dma() &&;
};

class HostCapture {
 public:
  /// Installs itself as the DMA completion handler. The DMA engine must
  /// outlive this object.
  explicit HostCapture(hw::DmaEngine& dma);

  /// Live hook: called for every record as it lands (after it is stored).
  /// Used by OFLOPS-turbo modules to react to data-plane events in-line.
  void set_on_record(std::function<void(const CaptureRecord&)> fn) {
    on_record_ = std::move(fn);
  }

  [[nodiscard]] const std::vector<CaptureRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  void clear() { records_.clear(); }

  /// Dump to a nanosecond PCAP (orig_len preserved for snapped frames).
  void write_pcap(const std::string& path) const;

  /// Dump to pcapng with one interface per OSNT port (`num_ports` names
  /// are generated), so per-port attribution survives the export.
  void write_pcapng(const std::string& path, std::size_t num_ports = 4) const;

  /// One-way latency samples (ns): embedded TX stamp vs RX stamp, for
  /// records captured on `port` (-1 = all) that carry a stamp at `offset`.
  [[nodiscard]] SampleSet latency_ns(std::size_t embed_offset,
                                     int port = -1) const;

  /// Duplicate detection via the hardware full-frame hash — the reason
  /// the monitor hashes packets before cutting: identical frames captured
  /// on multiple ports (e.g. a flood, a mirror, or a forwarding loop) are
  /// recognisable even from 64-byte snaps.
  struct DupReport {
    std::uint64_t unique = 0;
    std::uint64_t duplicates = 0;   ///< records beyond the first per hash
    std::uint64_t multi_port = 0;   ///< hashes seen on more than one port
  };
  [[nodiscard]] DupReport duplicate_report() const;

  /// Sequence-gap analysis over embedded sequence numbers: returns the
  /// number of missing sequence values (lost frames) and reorderings.
  struct SeqReport {
    std::uint64_t received = 0;
    std::uint64_t lost = 0;
    std::uint64_t reordered = 0;
    std::uint32_t max_seq = 0;
  };
  [[nodiscard]] SeqReport sequence_report(std::size_t embed_offset,
                                          int port = -1) const;

 private:
  std::vector<CaptureRecord> records_;
  std::function<void(const CaptureRecord&)> on_record_;
};

}  // namespace osnt::mon
