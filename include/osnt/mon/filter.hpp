// Wildcard packet filter table — the monitor's hardware filter stage.
// A small TCAM: value/mask rules over the classic header fields, first
// match wins, per-rule hit counters. With no rules installed the monitor
// captures everything (promiscuous default).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "osnt/net/parser.hpp"

namespace osnt::mon {

enum class FilterAction : std::uint8_t { kCapture, kDrop };

struct FilterRule {
  // IPv4 addresses: `mask` selects the care bits (0 = wildcard).
  std::uint32_t src_ip = 0;
  std::uint32_t src_ip_mask = 0;
  std::uint32_t dst_ip = 0;
  std::uint32_t dst_ip_mask = 0;
  // Exact-match-or-wildcard fields.
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  std::optional<std::uint8_t> protocol;
  std::optional<std::uint16_t> ethertype;  ///< post-VLAN ethertype
  std::optional<std::uint16_t> vlan_id;

  FilterAction action = FilterAction::kCapture;

  [[nodiscard]] bool matches(const net::ParsedPacket& p) const noexcept;
};

class FilterTable {
 public:
  /// The NetFPGA-10G OSNT filter stage holds a small number of TCAM
  /// entries; 16 matches the shipped design.
  static constexpr std::size_t kMaxRules = 16;

  /// Append a rule (lowest index = highest priority). False when full.
  bool add(FilterRule rule);
  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rules_.empty(); }

  struct Verdict {
    bool capture = true;
    std::optional<std::size_t> rule;  ///< index of the matching rule
  };

  /// First-match-wins classification. Empty table captures everything;
  /// a non-empty table drops packets that match no rule.
  [[nodiscard]] Verdict classify(const net::ParsedPacket& p) noexcept;

  [[nodiscard]] std::uint64_t hits(std::size_t rule_idx) const;
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  std::vector<FilterRule> rules_;
  std::vector<std::uint64_t> hits_;
  std::uint64_t misses_ = 0;
};

}  // namespace osnt::mon
