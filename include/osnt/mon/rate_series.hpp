// Time-bucketed rate series: the monitor-side view of "rate over time"
// used to visualise transients (update windows, bursts, failures). Each
// bucket accumulates frames/line-bytes; the series reads back as Gb/s
// and pps per bucket.
#pragma once

#include <cstdint>
#include <vector>

#include "osnt/common/time.hpp"

namespace osnt::mon {

class RateSeries {
 public:
  explicit RateSeries(Picos bucket_width = kPicosPerMilli);

  /// Account one frame observed at `now` occupying `line_bytes` on the
  /// medium. Out-of-order times land in their proper bucket as long as
  /// they are not before t=0.
  void record(Picos now, std::size_t line_bytes);

  struct Bucket {
    Picos start = 0;
    std::uint64_t frames = 0;
    std::uint64_t line_bytes = 0;

    [[nodiscard]] double gbps(Picos width) const noexcept {
      return static_cast<double>(line_bytes) * 8.0 * 1000.0 /
             static_cast<double>(width);
    }
    [[nodiscard]] double pps(Picos width) const noexcept {
      return static_cast<double>(frames) / to_seconds(width);
    }
  };

  [[nodiscard]] Picos bucket_width() const noexcept { return width_; }
  [[nodiscard]] std::size_t size() const noexcept { return buckets_.size(); }
  [[nodiscard]] const Bucket& bucket(std::size_t i) const {
    return buckets_.at(i);
  }
  [[nodiscard]] const std::vector<Bucket>& buckets() const noexcept {
    return buckets_;
  }

  /// Highest per-bucket rate seen (Gb/s).
  [[nodiscard]] double peak_gbps() const noexcept;
  /// First bucket whose rate falls below `threshold_gbps` after at least
  /// one bucket above it; -1 if no such transition (used to locate rate
  /// dips, e.g. during a table update). Returns the bucket index.
  [[nodiscard]] int first_dip_below(double threshold_gbps) const noexcept;

  void clear() { buckets_.clear(); }

 private:
  Picos width_;
  std::vector<Bucket> buckets_;
};

}  // namespace osnt::mon
