// Host-side per-flow accounting over capture records — the NetFlow-style
// summary the OSNT userspace tools derive from (possibly thinned)
// captures. Works on snapped frames because the 5-tuple lives in the
// first 42 bytes and the original length rides in the record.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "osnt/mon/capture.hpp"
#include "osnt/net/flow.hpp"

namespace osnt::mon {

struct FlowRecord {
  net::FiveTuple key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;  ///< sum of original (pre-cut) lengths
  tstamp::Timestamp first_seen;
  tstamp::Timestamp last_seen;
  /// TCP sequence progression. Needs the full fixed TCP header (54-byte
  /// snap); the strict parser refuses shorter TCP snaps entirely, so
  /// hard-snapped TCP frames count as unclassified and never reach these
  /// fields. A regression is a segment whose wrap-aware sequence is below
  /// the highest already seen — on a passive monitor that is the
  /// signature of reordering or of a retransmission, either of which
  /// means the path disturbed the flow.
  std::uint64_t tcp_segments = 0;
  std::uint64_t seq_regressions = 0;
  std::uint32_t highest_seq = 0;  ///< valid once tcp_segments > 0

  [[nodiscard]] bool reordering_seen() const noexcept {
    return seq_regressions > 0;
  }
  [[nodiscard]] double duration_seconds() const noexcept {
    return tstamp::delta_nanos(last_seen, first_seen) * 1e-9;
  }
  [[nodiscard]] double mean_rate_bps() const noexcept {
    const double d = duration_seconds();
    return d > 0 ? static_cast<double>(bytes) * 8.0 / d : 0.0;
  }
};

class FlowStatsCollector {
 public:
  /// Account one capture record; non-IPv4 frames land in `unclassified`.
  void add(const CaptureRecord& rec);

  /// Account an entire capture buffer.
  void add_all(const HostCapture& capture);

  [[nodiscard]] std::size_t flow_count() const noexcept { return flows_.size(); }
  [[nodiscard]] std::uint64_t unclassified() const noexcept {
    return unclassified_;
  }

  [[nodiscard]] const FlowRecord* find(const net::FiveTuple& key) const;

  /// All flows, heaviest (by bytes) first.
  [[nodiscard]] std::vector<FlowRecord> top_by_bytes(std::size_t n = 0) const;

  void clear();

 private:
  std::unordered_map<net::FiveTuple, FlowRecord> flows_;
  std::uint64_t unclassified_ = 0;
};

}  // namespace osnt::mon
