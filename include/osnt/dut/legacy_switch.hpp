// Legacy (non-OpenFlow) Ethernet switch model — the device under test in
// Part I of the demo. Store-and-forward pipeline with MAC learning,
// flooding, bounded output queues, and a configurable processing latency
// with jitter. The latency-vs-load curve of this model has the canonical
// shape (flat, then a queueing knee near saturation) OSNT measures.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "osnt/common/random.hpp"
#include "osnt/dut/construct.hpp"
#include "osnt/hw/port.hpp"
#include "osnt/net/headers.hpp"
#include "osnt/sim/engine.hpp"

namespace osnt::dut {

struct LegacySwitchConfig {
  std::size_t num_ports = 4;
  /// Fixed pipeline (parse + lookup + scheduling) latency.
  Picos pipeline_latency = 650 * kPicosPerNano;
  /// Gaussian jitter (1 sigma) added to the pipeline latency.
  double latency_jitter_ns = 25.0;
  /// Per-port output buffer; tail-drop beyond this backlog.
  std::size_t queue_bytes = 128 * 1024;
  /// MAC table capacity and aging.
  std::size_t mac_table_size = 16384;
  Picos mac_aging = 300 * kPicosPerSec;
  /// Flood frames with unknown unicast destinations (standard learning
  /// bridge). Disable for statically-programmed fabrics with redundant
  /// paths, where flooding would loop.
  bool flood_unknown = true;
  /// Cut-through forwarding: latency measured from the first bit rather
  /// than frame completion (approximated; see DESIGN.md).
  bool cut_through = false;
  /// Serial lookup engine capacity in Mpps; 0 = unlimited (wire rate).
  /// Under-provisioned switches are packet-rate-limited: small frames
  /// saturate the lookup stage long before the link fills.
  double lookup_rate_mpps = 0.0;
  /// Max backlog (in time) tolerated at the lookup stage before ingress
  /// drops, when lookup_rate_mpps > 0.
  Picos lookup_queue_limit = 100 * kPicosPerMicro;
  std::uint64_t seed = 11;
};

class LegacySwitch {
 public:
  using Config = LegacySwitchConfig;

  /// Embedded construction (graph nodes, fabrics, testbeds): the caller
  /// cables the ports itself. This is the supported constructor.
  LegacySwitch(GraphWired, sim::Engine& eng, Config cfg = Config());

  [[deprecated(
      "construct via graph::LegacySwitchBlock (or pass dut::GraphWired{} "
      "when embedding a raw switch in a harness)")]]
  LegacySwitch(sim::Engine& eng, Config cfg = Config());

  LegacySwitch(const LegacySwitch&) = delete;
  LegacySwitch& operator=(const LegacySwitch&) = delete;

  [[nodiscard]] std::size_t num_ports() const noexcept { return ports_.size(); }
  [[nodiscard]] hw::EthPort& port(std::size_t i) { return *ports_.at(i); }

  // --- counters ---
  [[nodiscard]] std::uint64_t frames_forwarded() const noexcept {
    return forwarded_;
  }
  [[nodiscard]] std::uint64_t frames_flooded() const noexcept {
    return flooded_;
  }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept;
  [[nodiscard]] std::uint64_t lookup_drops() const noexcept {
    return lookup_drops_;
  }
  [[nodiscard]] std::size_t mac_table_size() const noexcept {
    return mac_table_.size();
  }
  [[nodiscard]] std::uint64_t unknown_dropped() const noexcept {
    return unknown_dropped_;
  }

  /// Install a permanent (non-aging) forwarding entry — the "static MAC"
  /// feature used to program fabrics without relying on flooding.
  void add_static_mac(const net::MacAddr& mac, std::size_t port);

 private:
  void on_frame(std::size_t in_port, net::Packet pkt, Picos first_bit,
                Picos last_bit);
  void emit(std::size_t out_port, net::Packet pkt, Picos not_before);

  struct MacEntry {
    std::size_t port = 0;
    Picos last_seen = 0;
    bool is_static = false;
  };

  sim::Engine* eng_;
  Config cfg_;
  Rng rng_;
  std::vector<std::unique_ptr<hw::EthPort>> ports_;
  std::unordered_map<std::uint64_t, MacEntry> mac_table_;
  Picos lookup_busy_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t flooded_ = 0;
  std::uint64_t lookup_drops_ = 0;
  std::uint64_t unknown_dropped_ = 0;
};

}  // namespace osnt::dut
