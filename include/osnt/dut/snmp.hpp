// SNMP agent model: the third measurement channel OFLOPS-turbo consumes.
// Real agents answer with noticeable delay and serve counter *snapshots*
// refreshed on a coarse interval — both effects are modelled, because
// they are why SNMP alone cannot time dataplane events precisely.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "osnt/common/random.hpp"
#include "osnt/common/time.hpp"
#include "osnt/sim/engine.hpp"

namespace osnt::dut {

struct SnmpConfig {
  /// Agent response latency (mean) and jitter (1 sigma).
  Picos response_latency = 5 * kPicosPerMilli;
  double response_jitter_ms = 1.0;
  /// Counters are snapshotted into the agent MIB at this period.
  Picos refresh_interval = 1 * kPicosPerSec;
  std::uint64_t seed = 23;
};

class SnmpAgent {
 public:
  using Config = SnmpConfig;
  using CounterFn = std::function<std::uint64_t()>;
  using ResponseFn = std::function<void(std::string oid, std::uint64_t value,
                                        Picos answered_at)>;

  SnmpAgent(sim::Engine& eng, Config cfg = Config());

  /// Expose a live counter under `oid`. The agent snapshots it on its
  /// refresh schedule; polls observe the snapshot, not the live value.
  void register_counter(const std::string& oid, CounterFn fn);

  /// Asynchronous GET: `cb` fires after the response latency with the
  /// *snapshotted* value. Unknown OIDs answer with value 0.
  void get(const std::string& oid, ResponseFn cb);

  [[nodiscard]] std::uint64_t polls_served() const noexcept { return polls_; }

 private:
  void refresh_if_due();

  sim::Engine* eng_;
  Config cfg_;
  Rng rng_;
  std::unordered_map<std::string, CounterFn> live_;
  std::unordered_map<std::string, std::uint64_t> snapshot_;
  Picos last_refresh_ = -1;
  std::uint64_t polls_ = 0;
};

}  // namespace osnt::dut
