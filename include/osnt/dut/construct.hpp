// Construction tag for DUT models. The plain constructors of
// LegacySwitch/OpenFlowSwitch are deprecated in favour of their
// osnt::graph block wrappers (graph/dut_blocks.hpp); harness code that
// deliberately embeds a raw switch inside a larger composition — a graph
// node, a leaf/spine fabric, an OFLOPS testbed — passes GraphWired{} to
// select the supported, non-deprecated constructor and take on the
// wiring responsibility itself.
#pragma once

namespace osnt::dut {

struct GraphWired {};

}  // namespace osnt::dut
