// OpenFlow 1.0 switch model — the device under test in Part II of the
// demo. The data plane is a flow-table pipeline over 10G ports; the
// control plane is a serial agent with a service-time model plus an
// asynchronous TCAM-commit stage. The separation is deliberate: on real
// switches a flow_mod is acknowledged (even barriered) by the agent CPU
// well before the rule lands in the hardware table, which is exactly the
// control-vs-data-plane gap and the forwarding-consistency window
// OFLOPS-turbo measures.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "osnt/common/random.hpp"
#include "osnt/dut/construct.hpp"
#include "osnt/hw/port.hpp"
#include "osnt/openflow/channel.hpp"
#include "osnt/openflow/flow_table.hpp"
#include "osnt/sim/engine.hpp"

namespace osnt::dut {

struct OpenFlowSwitchConfig {
  std::size_t num_ports = 4;
  std::uint64_t datapath_id = 0xCAFE;

  // --- data plane ---
  Picos pipeline_latency = 700 * kPicosPerNano;
  double latency_jitter_ns = 25.0;
  std::size_t queue_bytes = 128 * 1024;
  /// Extra per-packet cost for each header-modifying action (set/strip
  /// VLAN). Near-zero on switches that rewrite in the pipeline; large
  /// (tens of µs) on those that punt modifications to the slow path —
  /// the contrast the ActionLatency OFLOPS module measures.
  Picos action_modify_latency = 50 * kPicosPerNano;
  /// Egress queue rate shares, as fractions of line rate, per queue id
  /// (every port gets the same queue set). Queue 0 is the default path.
  /// OFPAT_ENQUEUE selects a queue; its shaper caps the drain rate.
  std::vector<double> queue_rates = {1.0, 0.5, 0.1};
  openflow::FlowTableConfig table{};

  // --- control plane service model ---
  /// Agent CPU time to parse/handle one control message.
  Picos agent_service = 20 * kPicosPerMicro;
  /// Gaussian jitter on the agent service time (1 sigma, ns).
  double agent_jitter_ns = 2000.0;
  /// Hardware (TCAM) commit: base cost per rule write...
  Picos commit_base = 1 * kPicosPerMilli;
  /// ...plus a component growing with current table occupancy (TCAM
  /// reshuffle), per existing entry.
  Picos commit_per_entry = 500 * kPicosPerNano;
  /// When true, barrier replies only after pending commits hit hardware
  /// (spec-faithful). When false (default, matching observed commercial
  /// behaviour), barrier covers agent processing only.
  bool barrier_covers_commit = false;

  /// How often the agent sweeps the table for idle/hard timeouts.
  Picos expiry_scan_interval = 500 * kPicosPerMilli;

  // --- packet_in path ---
  std::size_t packet_in_trunc = 128;
  /// Token-bucket rate limit on packet_in generation (0 = unlimited).
  double packet_in_limit_pps = 2000.0;

  std::uint64_t seed = 17;
};

class OpenFlowSwitch {
 public:
  using Config = OpenFlowSwitchConfig;

  /// Embedded construction (graph nodes, testbeds): the caller cables
  /// the ports itself. `chan.switch_end()` is claimed by this switch.
  /// Both must outlive it. This is the supported constructor.
  OpenFlowSwitch(GraphWired, sim::Engine& eng, openflow::ControlChannel& chan,
                 Config cfg = Config());

  [[deprecated(
      "construct via graph::OpenFlowSwitchBlock (or pass dut::GraphWired{} "
      "when embedding a raw switch in a harness)")]]
  OpenFlowSwitch(sim::Engine& eng, openflow::ControlChannel& chan,
                 Config cfg = Config());

  OpenFlowSwitch(const OpenFlowSwitch&) = delete;
  OpenFlowSwitch& operator=(const OpenFlowSwitch&) = delete;

  [[nodiscard]] std::size_t num_ports() const noexcept { return ports_.size(); }
  [[nodiscard]] hw::EthPort& port(std::size_t i) { return *ports_.at(i); }
  [[nodiscard]] const openflow::FlowTable& table() const noexcept {
    return table_;
  }

  // --- counters ---
  [[nodiscard]] std::uint64_t frames_forwarded() const noexcept {
    return forwarded_;
  }
  [[nodiscard]] std::uint64_t table_misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t packet_ins_sent() const noexcept {
    return packet_ins_;
  }
  [[nodiscard]] std::uint64_t packet_ins_rate_limited() const noexcept {
    return packet_ins_limited_;
  }
  [[nodiscard]] std::uint64_t flow_mods_received() const noexcept {
    return flow_mods_;
  }
  [[nodiscard]] std::uint64_t flow_mods_committed() const noexcept {
    return commits_done_;
  }
  /// Frames that went through a non-default egress queue shaper.
  [[nodiscard]] std::uint64_t frames_shaped() const noexcept {
    return enqueue_shaped_;
  }
  /// When the last scheduled TCAM commit lands (diagnostics).
  [[nodiscard]] Picos commit_backlog_until() const noexcept {
    return commit_busy_;
  }

 private:
  void on_control(openflow::Decoded d);
  void on_frame(std::size_t in_port, net::Packet pkt, Picos first_bit,
                Picos last_bit);
  void execute_actions(const std::vector<openflow::Action>& actions,
                       std::size_t in_port, net::Packet pkt, Picos release);
  void send_packet_in(std::size_t in_port, const net::Packet& pkt);
  void send_flow_removed(const openflow::FlowEntry& e,
                         openflow::FlowRemovedReason reason);
  /// Arm the periodic timeout sweep iff some entry can expire.
  void schedule_expiry_scan();
  /// Serial agent CPU: returns the completion time of a job started now.
  Picos agent_run(Picos cost);

  sim::Engine* eng_;
  Config cfg_;
  Rng rng_;
  openflow::ControlChannel::Endpoint* ctrl_;
  std::vector<std::unique_ptr<hw::EthPort>> ports_;
  openflow::FlowTable table_;

  Picos agent_busy_ = 0;
  Picos commit_busy_ = 0;
  bool expiry_scan_pending_ = false;
  /// shaper_free_[port][queue]: when that queue's shaper next admits.
  std::vector<std::vector<Picos>> shaper_free_;
  std::uint64_t enqueue_shaped_ = 0;
  double pin_tokens_ = 0.0;
  Picos pin_last_refill_ = 0;

  std::uint64_t forwarded_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t packet_ins_ = 0;
  std::uint64_t packet_ins_limited_ = 0;
  std::uint64_t flow_mods_ = 0;
  std::uint64_t commits_done_ = 0;
};

}  // namespace osnt::dut
