// The stock block library: the functional pieces topologies are composed
// from. Each block is deliberately small — one queue, one policer, one
// hash stage — so a scenario's behaviour is legible from its JSON wiring
// rather than buried in a monolithic DUT model.
//
//   fifo_queue    store-and-forward serializer with a bounded FIFO
//   red           the same serializer behind RED early-drop admission
//   token_bucket  policer (drop) or shaper (delay) at a token rate
//   delay_ber     named delay/bit-error stage (Link physics as a node)
//   ecmp          stateless 5-tuple hash fan-out across N outputs
//   sink          terminal byte/frame counter
//   monitor       pass-through tap with a frame-size histogram
#pragma once

#include <cstdint>

#include "osnt/common/random.hpp"
#include "osnt/graph/block.hpp"
#include "osnt/mon/latency_probe.hpp"
#include "osnt/telemetry/histogram.hpp"

namespace osnt::graph {

// ------------------------------------------------------------ fifo_queue

struct FifoQueueConfig {
  double rate_gbps = 10.0;        ///< output serialization rate
  std::size_t queue_frames = 64;  ///< tail-drop beyond this depth
};

/// Bounded store-and-forward queue: frames serialize out at `rate_gbps`
/// one at a time; arrivals beyond `queue_frames` waiting are tail-dropped.
/// This is the contention point of any topology — its depth trace is what
/// RED, shapers, and congestion control all ultimately react to.
class FifoQueueBlock : public Block {
 public:
  FifoQueueBlock(sim::Engine& eng, std::string name, FifoQueueConfig cfg = {});
  ~FifoQueueBlock() override;

  void on_frame(std::size_t in_port, net::Packet pkt, Picos first_bit,
                Picos last_bit) override;

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t peak_depth() const noexcept { return peak_; }
  [[nodiscard]] std::uint64_t tail_drops() const noexcept {
    return tail_drops_;
  }
  [[nodiscard]] std::size_t queue_frames() const noexcept {
    return fifo_cfg_.queue_frames;
  }
  /// Fault seam (queue_cap): retime the tail-drop threshold mid-run.
  /// Frames already queued beyond a shrunken cap stay queued — the cap
  /// gates admission only, like reprogramming a real queue manager.
  void set_queue_frames(std::size_t frames);

 protected:
  /// Admission already passed: claim a serializer slot and schedule the
  /// departure. Shared with RedBlock, whose job is only to veto arrivals.
  void enqueue(net::Packet pkt);
  void count_tail_drop() noexcept {
    ++tail_drops_;
    count_drop();
  }

  FifoQueueConfig fifo_cfg_;

 private:
  std::size_t depth_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t tail_drops_ = 0;
  Picos busy_until_ = 0;
};

// ------------------------------------------------------------------- red

struct RedConfig {
  double rate_gbps = 10.0;
  std::size_t queue_frames = 64;
  double min_th = 15.0;   ///< frames: no early drop below this average
  double max_th = 60.0;   ///< frames: forced drop at/above this average
  double max_p = 0.1;     ///< early-drop probability as avg -> max_th
  double weight = 0.002;  ///< EWMA weight for the average queue estimate
  std::uint64_t seed = 1; ///< drop-lottery stream (loader derives this)
};

/// Random Early Detection in front of the FIFO serializer (Floyd/Jacobson
/// '93, minus the idle-time correction — the averaging runs per arrival).
/// Early drops start once the EWMA queue average crosses `min_th` and
/// reach probability `max_p` at `max_th`, where drops become forced.
class RedBlock : public FifoQueueBlock {
 public:
  RedBlock(sim::Engine& eng, std::string name, RedConfig cfg = {});
  ~RedBlock() override;

  void on_frame(std::size_t in_port, net::Packet pkt, Picos first_bit,
                Picos last_bit) override;

  [[nodiscard]] double avg_depth() const noexcept { return avg_; }
  [[nodiscard]] std::uint64_t early_drops() const noexcept {
    return early_drops_;
  }
  [[nodiscard]] std::uint64_t forced_drops() const noexcept {
    return forced_drops_;
  }

 private:
  RedConfig cfg_;
  Rng rng_;
  double avg_ = 0.0;
  std::uint64_t early_drops_ = 0;
  std::uint64_t forced_drops_ = 0;
};

// ----------------------------------------------------------- token_bucket

struct TokenBucketConfig {
  double rate_gbps = 1.0;          ///< sustained token refill rate
  std::size_t burst_bytes = 15000; ///< bucket capacity (line-length bytes)
  bool shape = true;               ///< true: delay excess; false: drop it
  std::size_t queue_frames = 256;  ///< shaper backlog cap (shape mode)
};

/// Token bucket over frame line lengths. In police mode nonconforming
/// frames are dropped on arrival; in shape mode the balance is allowed to
/// go negative and the frame is released once the deficit refills, which
/// spaces departures at exactly `rate_gbps` without per-token events.
class TokenBucketBlock : public Block {
 public:
  TokenBucketBlock(sim::Engine& eng, std::string name,
                   TokenBucketConfig cfg = {});
  ~TokenBucketBlock() override;

  void on_frame(std::size_t in_port, net::Packet pkt, Picos first_bit,
                Picos last_bit) override;

  [[nodiscard]] std::uint64_t conforming() const noexcept {
    return conforming_;
  }
  [[nodiscard]] std::uint64_t shaped() const noexcept { return shaped_; }
  [[nodiscard]] std::uint64_t policed() const noexcept { return policed_; }
  [[nodiscard]] double rate_gbps() const noexcept { return cfg_.rate_gbps; }
  [[nodiscard]] std::size_t burst_bytes() const noexcept {
    return cfg_.burst_bytes;
  }
  [[nodiscard]] std::size_t queue_frames() const noexcept {
    return cfg_.queue_frames;
  }

  // Fault seams (rate_limit / queue_cap): retime the bucket mid-run, the
  // way a carrier reprovisions a policer under live traffic. Tokens
  // accrued so far are settled at the *old* rate first, so the change
  // takes effect exactly at the call's sim time; already-scheduled
  // shaped releases keep their departure times (they cleared the old
  // contract), only subsequent arrivals see the new one.
  void set_rate_gbps(double rate_gbps);
  void set_burst_bytes(std::size_t burst_bytes);
  void set_queue_frames(std::size_t frames);

 private:
  void refill() noexcept;

  TokenBucketConfig cfg_;
  double bytes_per_pico_ = 0.0;
  double tokens_ = 0.0;  ///< may run negative while shaping (deficit)
  Picos last_refill_ = 0;
  Picos last_release_ = 0;  ///< keeps shaped departures in FIFO order
  std::size_t backlog_ = 0;
  std::uint64_t conforming_ = 0;
  std::uint64_t shaped_ = 0;
  std::uint64_t policed_ = 0;
};

// -------------------------------------------------------------- delay_ber

struct DelayBerConfig {
  Picos delay = 0;        ///< added to both bit times
  double ber = 0.0;       ///< per-bit error probability
  std::uint64_t seed = 1; ///< corruption lottery (loader derives this)
};

/// Link physics as a named node: constant extra delay plus optional
/// bit-error corruption (same model as sim::Link's BER — one flipped bit,
/// fcs_bad set). Exists so topologies can put delay/noise *between* any
/// two blocks and read its corruption count under graph.<name>.*.
class DelayBerBlock : public Block {
 public:
  DelayBerBlock(sim::Engine& eng, std::string name, DelayBerConfig cfg = {});
  ~DelayBerBlock() override;

  void on_frame(std::size_t in_port, net::Packet pkt, Picos first_bit,
                Picos last_bit) override;

  [[nodiscard]] std::uint64_t corrupted() const noexcept { return corrupted_; }

 private:
  DelayBerConfig cfg_;
  Rng rng_;
  std::uint64_t corrupted_ = 0;
};

// ------------------------------------------------------------------ ecmp

struct EcmpConfig {
  std::size_t fanout = 2;   ///< number of output ports
  std::uint64_t salt = 0;   ///< mixed into the hash (path polarization)
};

/// Stateless equal-cost fan-out: FNV-1a over the IPv4 5-tuple picks the
/// output port, so every frame of a flow takes the same path (no intra-
/// flow reordering). Non-IP frames hash over their raw bytes instead.
class EcmpBlock : public Block {
 public:
  EcmpBlock(sim::Engine& eng, std::string name, EcmpConfig cfg = {});

  void on_frame(std::size_t in_port, net::Packet pkt, Picos first_bit,
                Picos last_bit) override;

 private:
  EcmpConfig cfg_;
};

// ------------------------------------------------------------------ sink

/// Terminal counter: frames stop here. Byte/frame totals and the last
/// arrival time give tests a cheap "did traffic make it through" probe.
class SinkBlock : public Block {
 public:
  SinkBlock(sim::Engine& eng, std::string name);
  ~SinkBlock() override;

  void on_frame(std::size_t in_port, net::Packet pkt, Picos first_bit,
                Picos last_bit) override;

  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] Picos last_arrival() const noexcept { return last_arrival_; }

 private:
  std::uint64_t bytes_ = 0;
  Picos last_arrival_ = 0;
};

// --------------------------------------------------------------- monitor

struct MonitorConfig {
  /// Record per-class latency (tx_truth → arrival) into the in-plane
  /// LatencyProbe, flushed under graph.<name>.rtt.*.
  bool rtt_probe = true;
};

/// Transparent tap: forwards every frame unchanged while recording a
/// wire-length histogram, an FCS-error count, and — the in-plane
/// measurement point — per-traffic-class latency histograms over the
/// frame's source-MAC ground truth (`tx_truth`), the graph analogue of
/// the RxPipeline's pre-DMA LatencyProbe. The graph equivalent of
/// clipping a probe onto a fiber.
class MonitorBlock : public Block {
 public:
  MonitorBlock(sim::Engine& eng, std::string name, MonitorConfig cfg = {});
  ~MonitorBlock() override;

  void on_frame(std::size_t in_port, net::Packet pkt, Picos first_bit,
                Picos last_bit) override;

  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t fcs_errors() const noexcept {
    return fcs_errors_;
  }
  [[nodiscard]] const telemetry::Log2Histogram& frame_bytes() const noexcept {
    return frame_bytes_;
  }
  /// Per-class latency histograms (ns, sim ground truth). Empty when the
  /// probe is disabled or frames carry no tx_truth.
  [[nodiscard]] const mon::LatencyProbe& rtt_probe() const noexcept {
    return rtt_probe_;
  }

 private:
  MonitorConfig cfg_;
  std::uint64_t bytes_ = 0;
  std::uint64_t fcs_errors_ = 0;
  telemetry::Log2Histogram frame_bytes_;
  mon::LatencyProbe rtt_probe_;
};

}  // namespace osnt::graph
