// Declarative topologies: a JSON file names a set of blocks, wires their
// ports, and picks a workload; TopologyFile turns that into a live Graph
// and run_topology_trial() closes the loop with the OSNT device — TCP
// flows or a CBR stream enter the graph at `ingress` and leave at
// `egress`, with an optional separate path for the ACK direction.
//
// Parsing is strict (osnt::json): any unknown key or misspelled block
// type is a hard error with the line/column it occurred at, plus a
// did-you-mean suggestion for plausible typos. Wiring errors — dangling
// edges, port-count mismatches, an output claimed twice, duplicate block
// names — fail at load() time, before any engine exists.
//
// Determinism: per-block random streams (RED's drop lottery, delay_ber's
// corruption) are derived from the trial seed and the block's ordinal,
// so a topology run is byte-identical for a fixed (file, seed) pair at
// any --jobs value.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "osnt/burst/source.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/fault/plan.hpp"
#include "osnt/graph/blocks.hpp"
#include "osnt/graph/dut_blocks.hpp"
#include "osnt/graph/graph.hpp"
#include "osnt/tcp/workload.hpp"
#include "osnt/telemetry/series.hpp"
#include "osnt/telemetry/trace.hpp"

namespace osnt::graph {

/// Load/validation failure: what was wrong and (when it came from JSON)
/// where in the file.
class TopologyError : public GraphError {
 public:
  using GraphError::GraphError;
};

/// "block" or "block:port" in an edge or workload attachment.
struct Endpoint {
  std::string block;
  std::size_t port = 0;
};

/// One block declaration. `type` selects which of the config members is
/// meaningful; the loader fills port counts for validation.
struct BlockSpec {
  std::string name;
  std::string type;
  std::size_t num_inputs = 1;
  std::size_t num_outputs = 1;

  FifoQueueConfig fifo{};
  RedConfig red{};
  TokenBucketConfig token_bucket{};
  DelayBerConfig delay_ber{};
  EcmpConfig ecmp{};
  MonitorConfig monitor{};
  dut::LegacySwitchConfig legacy_switch{};
  OpenFlowSwitchBlockConfig openflow_switch{};
  burst::BurstSourceConfig burst{};
};

struct EdgeSpec {
  Endpoint from;
  Endpoint to;
  Picos propagation = 0;
};

/// The traffic that drives the graph.
struct WorkloadSpec {
  enum class Kind : std::uint8_t { kNone, kTcp, kCbr, kBurst };
  Kind kind = Kind::kNone;

  Endpoint ingress;  ///< where device TX enters the graph
  Endpoint egress;   ///< which block output feeds the device RX
  /// Optional ACK-direction path (tcp only). Absent = a direct reverse
  /// cable, i.e. an ideal return channel.
  std::optional<Endpoint> ack_ingress;
  std::optional<Endpoint> ack_egress;

  // --- tcp ---
  std::size_t flows = 1;
  std::string cc = "newreno";
  std::uint32_t mss = 1448;
  double bottleneck_gbps = 0.0;  ///< source-side TX drain; 0 = line rate
  std::size_t queue_segments = 256;
  std::uint64_t rwnd_kb = 1024;
  /// Arm the per-flow RateLimitDetector (tcp/rate_limit_detector.hpp) so
  /// the congestion controller adapts to in-path policers/shapers.
  bool rate_limit_detector = false;

  // --- cbr ---
  double rate_gbps = 1.0;
  std::size_t frame_size = 256;
  std::uint32_t flow_count = 1;

  // --- burst (graph-native: a burst_source named "burst_workload" is
  // emplaced at `ingress` and a "burst_sink" behind `egress`) ---
  burst::PatternConfig burst{};
  bool burst_batched = true;
};

/// A parsed, validated topology file. Pure data until build() is called.
struct TopologyFile {
  std::string name;
  std::uint64_t seed = 1;
  Picos duration = 10 * kPicosPerMilli;
  std::vector<BlockSpec> blocks;
  std::vector<EdgeSpec> edges;
  WorkloadSpec workload;

  /// Parse + validate. Throws TopologyError with file positions.
  [[nodiscard]] static TopologyFile from_json(const std::string& text);
  [[nodiscard]] static TopologyFile load(const std::string& path);

  /// The block type names the loader accepts (for did-you-mean and docs).
  [[nodiscard]] static const std::vector<std::string>& known_types();

  /// Instantiate every block and edge into `g`. Per-block random streams
  /// derive from `trial_seed` and the block ordinal. `horizon` is the run
  /// length burst_source schedules render over (0 = the file's duration).
  void build(sim::Engine& eng, Graph& g, std::uint64_t trial_seed,
             Picos horizon = 0) const;
};

/// Per-block counter row captured before the graph is torn down.
struct BlockCounters {
  std::string name;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t drops = 0;
  std::uint64_t frame_bytes = 0;
  /// In-plane latency summary (monitor blocks only; 0 samples otherwise).
  std::uint64_t rtt_samples = 0;
  double rtt_p50_ns = 0.0;
  double rtt_p90_ns = 0.0;
  double rtt_p99_ns = 0.0;
};

struct TopologyTrialReport {
  tcp::TcpTrialReport tcp{};  ///< meaningful when workload.kind == kTcp
  core::RunResult cbr{};      ///< meaningful when workload.kind == kCbr
  /// Meaningful when workload.kind == kBurst.
  struct BurstReport {
    std::uint64_t frames = 0;    ///< frames the burst_workload source emitted
    std::uint64_t bursts = 0;    ///< emission events (batched: one per burst)
    std::uint64_t tx_bytes = 0;  ///< wire bytes emitted (incl. FCS)
    std::uint64_t rx_frames = 0; ///< frames that reached burst_sink
    std::uint64_t rx_bytes = 0;
  } burst{};
  std::vector<BlockCounters> blocks;
  std::uint64_t graph_frames_in = 0;
  std::uint64_t graph_drops = 0;
  /// Filled when a series interval was requested (see run_topology_trial).
  telemetry::SeriesData series{};
};

/// Resolve a fault plan's block-targeted events (rate_limit / queue_cap)
/// against the topology's block declarations without building anything:
/// rate_limit must name a token_bucket; queue_cap a fifo_queue, red, or
/// token_bucket. Throws TopologyError with a did-you-mean suggestion on
/// an unknown or wrongly-typed target. Backs `osnt_run topo
/// --validate-only`, so a bad chaos plan fails in CI, not mid-campaign.
void validate_fault_targets(const TopologyFile& topo,
                            const fault::FaultPlan& plan);

/// Semantic workload validation beyond parse-time shape checks: tcp cc
/// names (with did-you-mean), cbr rate/frame-size ranges, and burst
/// pattern configs — both the `burst` workload stanza and every
/// burst_source block. Throws TopologyError. Backs `osnt_run topo
/// --validate-only`, so a stanza that would only explode at build time
/// fails the dry run instead.
void validate_workload(const TopologyFile& topo);

/// One deterministic trial: fresh engine + device + graph built from
/// `topo`, workload attached at the declared endpoints, run for
/// `duration` (0 = the file's duration). Shared by osnt_run topo, the
/// tests, and the graph A/B benchmark.
///
/// `series_interval > 0` attaches a telemetry::TimeSeries sampler to the
/// trial engine (per-block frames/bytes/drops channels, monitor RTT
/// histograms, and — for tcp workloads — the aggregate tcp.* channels)
/// and returns its data in the report. Per-trial series merge
/// commutatively, so sharded runs stay byte-identical at any --jobs.
[[nodiscard]] TopologyTrialReport run_topology_trial(
    const TopologyFile& topo, std::uint64_t trial_seed, Picos duration = 0,
    const fault::FaultPlan* plan = nullptr,
    telemetry::TraceRecorder* trace = nullptr, Picos series_interval = 0);

}  // namespace osnt::graph
