// Graph: owns a set of named Blocks and the directed edges between their
// ports. Every edge is a sim::Link — the same seam MACs, DUT ports, and
// the fault injector already ride — so propagation delay, BER windows,
// and link flaps compose with any topology for free.
//
// The boundary to the rest of the testbed is the FrameSink seam in both
// directions: input(block, port) returns a sink an external Link (e.g. an
// OSNT port's out_link) can connect to, and connect_output(block, port,
// sink) wires a block's output into an external sink (e.g. an OSNT port's
// RX MAC). Wiring mistakes — unknown names, out-of-range ports, an output
// wired twice — are hard GraphErrors at wiring time, not silent no-ops.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "osnt/graph/block.hpp"
#include "osnt/sim/link.hpp"

namespace osnt::graph {

class Graph {
 public:
  explicit Graph(sim::Engine& eng) noexcept : eng_(&eng) {}

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Take ownership of a block. Throws GraphError on a duplicate name.
  Block& add(std::unique_ptr<Block> block);

  /// Construct a block in place: g.emplace<RedBlock>(eng, "aqm", cfg).
  template <class B, class... Args>
  B& emplace(Args&&... args) {
    auto b = std::make_unique<B>(std::forward<Args>(args)...);
    B& ref = *b;
    add(std::move(b));
    return ref;
  }

  /// Wire src's output port into dst's input port over a new Link with
  /// the given propagation delay (0 = a backplane trace, not 2 m fiber).
  sim::Link& connect(const std::string& src, std::size_t out_port,
                     const std::string& dst, std::size_t in_port,
                     Picos propagation = 0);

  /// External ingress: a FrameSink delivering into dst's input port.
  /// Stable for the Graph's lifetime; connect an external Link to it.
  [[nodiscard]] sim::FrameSink& input(const std::string& dst,
                                      std::size_t in_port = 0);

  /// External egress: wire src's output port into an external sink (an
  /// RX MAC, a capture tap) over a new Link. `sink` must outlive the run.
  sim::Link& connect_output(const std::string& src, std::size_t out_port,
                            sim::FrameSink& sink, Picos propagation = 0);

  /// Start every block, in insertion order.
  void start();

  [[nodiscard]] Block* find(const std::string& name) noexcept;
  /// Lookup that throws GraphError when the block does not exist.
  [[nodiscard]] Block& at(const std::string& name);
  [[nodiscard]] std::size_t num_blocks() const noexcept {
    return blocks_.size();
  }
  [[nodiscard]] Block& block(std::size_t i) { return *blocks_.at(i); }

  // --- aggregates across blocks (graph-level health in one read) ---
  [[nodiscard]] std::uint64_t total_frames_in() const noexcept;
  [[nodiscard]] std::uint64_t total_drops() const noexcept;

 private:
  /// Adapts the port-less FrameSink seam to a (block, in_port) pair.
  class InputAdapter final : public sim::FrameSink {
   public:
    InputAdapter(Block& b, std::size_t port) noexcept
        : block_(&b), port_(port) {}
    void on_frame(net::Packet pkt, Picos first_bit, Picos last_bit) override {
      block_->deliver(port_, std::move(pkt), first_bit, last_bit);
    }

   private:
    Block* block_;
    std::size_t port_;
  };

  Block& lookup(const std::string& name, const char* role);
  void claim_output(Block& src, std::size_t out_port, sim::Link* link);

  sim::Engine* eng_;
  std::vector<std::unique_ptr<Block>> blocks_;
  /// Deques: adapters/links hand out stable addresses as edges accrete.
  std::deque<InputAdapter> adapters_;
  std::deque<sim::Link> links_;
};

}  // namespace osnt::graph
