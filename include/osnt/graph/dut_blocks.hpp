// The existing DUT models re-expressed as graph nodes. Each wrapper owns
// a real switch (constructed with dut::GraphWired) and bridges the two
// seams: graph input port i feeds the switch's RX MAC on port i, and the
// switch's TX link on port i relays into graph output port i. Everything
// the standalone models do — MAC learning, queueing knees, flow-table
// pipelines, agent/commit latency — composes with queues, shapers, and
// impairment blocks in a topology without a line of glue.
#pragma once

#include <deque>

#include "osnt/dut/legacy_switch.hpp"
#include "osnt/dut/openflow_switch.hpp"
#include "osnt/graph/block.hpp"
#include "osnt/openflow/channel.hpp"

namespace osnt::graph {

/// dut::LegacySwitch as an N-in/N-out block (N = cfg.num_ports).
class LegacySwitchBlock : public Block {
 public:
  LegacySwitchBlock(sim::Engine& eng, std::string name,
                    dut::LegacySwitchConfig cfg = {});

  void on_frame(std::size_t in_port, net::Packet pkt, Picos first_bit,
                Picos last_bit) override;

  /// The wrapped switch, for static MACs and counter assertions.
  [[nodiscard]] dut::LegacySwitch& dut() noexcept { return sw_; }

 private:
  /// Relays one switch TX link into one graph output port.
  class Egress final : public sim::FrameSink {
   public:
    Egress(LegacySwitchBlock& owner, std::size_t port) noexcept
        : owner_(&owner), port_(port) {}
    void on_frame(net::Packet pkt, Picos first_bit, Picos last_bit) override {
      owner_->emit(port_, std::move(pkt), first_bit, last_bit);
    }

   private:
    LegacySwitchBlock* owner_;
    std::size_t port_;
  };

  dut::LegacySwitch sw_;
  std::deque<Egress> egress_;
};

/// dut::OpenFlowSwitch as an N-in/N-out block. The block owns its
/// control channel; drive the switch through controller().
struct OpenFlowSwitchBlockConfig {
  dut::OpenFlowSwitchConfig sw{};
  openflow::ChannelConfig chan{};
};

class OpenFlowSwitchBlock : public Block {
 public:
  OpenFlowSwitchBlock(sim::Engine& eng, std::string name,
                      OpenFlowSwitchBlockConfig cfg = {});

  void on_frame(std::size_t in_port, net::Packet pkt, Picos first_bit,
                Picos last_bit) override;

  [[nodiscard]] openflow::ControlChannel::Endpoint& controller() noexcept {
    return chan_.controller();
  }
  [[nodiscard]] dut::OpenFlowSwitch& dut() noexcept { return sw_; }

 private:
  class Egress final : public sim::FrameSink {
   public:
    Egress(OpenFlowSwitchBlock& owner, std::size_t port) noexcept
        : owner_(&owner), port_(port) {}
    void on_frame(net::Packet pkt, Picos first_bit, Picos last_bit) override {
      owner_->emit(port_, std::move(pkt), first_bit, last_bit);
    }

   private:
    OpenFlowSwitchBlock* owner_;
    std::size_t port_;
  };

  openflow::ControlChannel chan_;
  dut::OpenFlowSwitch sw_;
  std::deque<Egress> egress_;
};

}  // namespace osnt::graph
