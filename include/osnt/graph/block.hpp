// Functional-block dataplane: the Block interface. A Block is a named
// node with a fixed number of input and output ports; frames arrive on an
// input port via on_frame() (delivered by the owning Graph over the
// sim::Link seam) and leave through emit(), which hands them to whatever
// Link the Graph wired onto that output port. Blocks in the LANA fb_*
// style: a queue, an AQM, a rate limiter, a whole switch — anything that
// transforms, delays, drops, or fans out frames.
//
// Determinism rules for block authors (DESIGN.md §13):
//   - all randomness through an osnt::Rng seeded from the block config
//     (the topology loader derives per-block seeds from the trial seed);
//   - all time from engine().now() / the frame's bit times, never the
//     host clock;
//   - per-block telemetry flushes once, at destruction, under
//     `graph.<name>.*` — counter merges commute, so sharded trials stay
//     byte-identical at any --jobs;
//   - schedule events under EventCategory::kDut (emit() and Link::carry
//     handle their own categories).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "osnt/common/time.hpp"
#include "osnt/net/packet.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/telemetry/trace.hpp"

namespace osnt::sim {
class Link;
}

namespace osnt::graph {

class Graph;

/// Wiring or lookup failure while assembling a graph.
class GraphError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Block {
 public:
  /// `name` must be unique within the owning Graph; it is the stable
  /// identity telemetry (`graph.<name>.*`) and trace tracks
  /// (`graph/<name>`) key on.
  Block(sim::Engine& eng, std::string name, std::size_t num_inputs,
        std::size_t num_outputs);
  virtual ~Block();

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t num_inputs() const noexcept { return num_in_; }
  [[nodiscard]] std::size_t num_outputs() const noexcept {
    return outs_.size();
  }

  /// Called once by Graph::start(), in block-insertion order. Blocks with
  /// internal timers or sources arm themselves here.
  virtual void start() {}

  /// A frame's last bit arrived on `in_port` at `last_bit` (sim time ==
  /// now). Implementations drop, transform, queue, or emit() it.
  virtual void on_frame(std::size_t in_port, net::Packet pkt, Picos first_bit,
                        Picos last_bit) = 0;

  // --- counters (also flushed to graph.<name>.* at destruction) ---
  [[nodiscard]] std::uint64_t frames_in() const noexcept { return frames_in_; }
  [[nodiscard]] std::uint64_t frames_out() const noexcept {
    return frames_out_;
  }
  /// Frames this block decided not to forward (policy drops + frames
  /// emitted into unwired output ports).
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  /// Wire bytes delivered to this block (intrinsic, like frames_in) —
  /// flushed as graph.<name>.frame_bytes so series-derived Gbps needs no
  /// separate tap.
  [[nodiscard]] std::uint64_t bytes_in() const noexcept { return bytes_in_; }

 protected:
  [[nodiscard]] sim::Engine& engine() noexcept { return *eng_; }
  [[nodiscard]] Picos now() const noexcept;

  /// Forward a frame out `out_port` with the given serialization window.
  /// Unwired ports count the frame as a drop (a dark fiber stub), so a
  /// partially-wired topology stays runnable and observable.
  void emit(std::size_t out_port, net::Packet pkt, Picos tx_start,
            Picos tx_end);

  /// Record a policy drop (tail drop, RED early drop, nonconforming...).
  void count_drop() noexcept { ++drops_; }

 private:
  friend class Graph;

  /// Graph-side entry: counts, traces, then dispatches to on_frame().
  void deliver(std::size_t in_port, net::Packet pkt, Picos first_bit,
               Picos last_bit);

  sim::Engine* eng_;
  std::string name_;
  std::size_t num_in_;
  std::vector<sim::Link*> outs_;  ///< wired by Graph; may hold nullptr
  std::uint64_t frames_in_ = 0;
  std::uint64_t frames_out_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t bytes_in_ = 0;
  telemetry::TraceRecorder::TrackId track_ = 0;
  bool traced_ = false;
};

}  // namespace osnt::graph
