// Free-running oscillator model: maps ground-truth simulation time to a
// tick count, with a static ppm offset plus a random-walk frequency
// component — the imperfection that GPS discipline must correct.
#pragma once

#include <cstdint>

#include "osnt/common/random.hpp"
#include "osnt/common/time.hpp"
#include "osnt/tstamp/timestamp.hpp"

namespace osnt::tstamp {

struct OscillatorConfig {
  double nominal_hz = kDatapathHz;
  double ppm_offset = 0.0;          ///< static frequency error
  double random_walk_ppm = 0.0;     ///< per-sqrt(second) random walk intensity
  std::uint64_t seed = 42;
};

class Oscillator {
 public:
  using Config = OscillatorConfig;

  explicit Oscillator(Config cfg = Config()) noexcept
      : cfg_(cfg), rng_(cfg.seed), freq_error_ppm_(cfg.ppm_offset) {}

  /// Tick count at ground-truth time `truth`. Must be called with
  /// non-decreasing `truth` (the simulator is monotonic).
  [[nodiscard]] std::uint64_t ticks_at(Picos truth);

  /// Current instantaneous frequency error (ppm) — for diagnostics.
  [[nodiscard]] double frequency_error_ppm() const noexcept {
    return freq_error_ppm_;
  }

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  Config cfg_;
  Rng rng_;
  double freq_error_ppm_;
  Picos last_truth_ = 0;
  double phase_ticks_ = 0.0;  ///< accumulated (fractional) ticks
};

}  // namespace osnt::tstamp
