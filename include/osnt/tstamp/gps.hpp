// GPS receiver model: emits a pulse-per-second edge at every true UTC
// second boundary, with configurable edge jitter (a decent timing GPS is
// a few tens of nanoseconds RMS). Can be "unplugged" for the undisciplined
// ablation.
#pragma once

#include <cstdint>
#include <optional>

#include "osnt/common/random.hpp"
#include "osnt/common/time.hpp"

namespace osnt::tstamp {

struct GpsConfig {
  bool connected = true;
  Picos jitter_rms = 30 * kPicosPerNano;  ///< PPS edge jitter (1 sigma)
  std::uint64_t seed = 7;
};

class GpsModel {
 public:
  using Config = GpsConfig;

  explicit GpsModel(Config cfg = Config()) noexcept : cfg_(cfg), rng_(cfg.seed) {}

  /// Ground-truth time of the next PPS edge strictly after `after`, or
  /// nullopt when no GPS is connected.
  [[nodiscard]] std::optional<Picos> next_pps_after(Picos after);

  [[nodiscard]] bool connected() const noexcept { return cfg_.connected; }
  void set_connected(bool c) noexcept { cfg_.connected = c; }

 private:
  Config cfg_;
  Rng rng_;
  std::int64_t last_second_issued_ = -1;
};

}  // namespace osnt::tstamp
