// OSNT timestamp format: 64-bit fixed point, upper 32 bits = seconds,
// lower 32 bits = fraction of a second (resolution 2^-32 s ≈ 233 ps).
// The *clock* that produces stamps ticks at the 160 MHz datapath clock,
// i.e. one stamp step every 6.25 ns — the resolution the paper quotes.
#pragma once

#include <cstdint>

namespace osnt::tstamp {

struct Timestamp {
  std::uint64_t raw = 0;  ///< 32.32 fixed-point seconds

  [[nodiscard]] static constexpr Timestamp from_raw(std::uint64_t r) noexcept {
    return Timestamp{r};
  }
  [[nodiscard]] static Timestamp from_seconds(double s) noexcept {
    return Timestamp{static_cast<std::uint64_t>(s * 4294967296.0)};
  }
  [[nodiscard]] static Timestamp from_nanos(double ns) noexcept {
    return from_seconds(ns * 1e-9);
  }

  [[nodiscard]] double to_seconds() const noexcept {
    return static_cast<double>(raw) / 4294967296.0;
  }
  [[nodiscard]] double to_nanos() const noexcept { return to_seconds() * 1e9; }

  [[nodiscard]] std::uint32_t whole_seconds() const noexcept {
    return static_cast<std::uint32_t>(raw >> 32);
  }
  [[nodiscard]] std::uint32_t fraction() const noexcept {
    return static_cast<std::uint32_t>(raw);
  }

  friend bool operator==(const Timestamp&, const Timestamp&) = default;
  friend auto operator<=>(const Timestamp&, const Timestamp&) = default;
};

/// Signed difference a - b in nanoseconds.
[[nodiscard]] inline double delta_nanos(Timestamp a, Timestamp b) noexcept {
  return static_cast<double>(static_cast<std::int64_t>(a.raw - b.raw)) /
         4294967296.0 * 1e9;
}

/// The datapath clock the NetFPGA-10G design runs at.
inline constexpr double kDatapathHz = 160e6;
inline constexpr double kTickNanos = 1e9 / kDatapathHz;  // 6.25 ns

}  // namespace osnt::tstamp
