// GPS-disciplined timestamp clock — the mechanism OSNT uses to keep its
// 6.25 ns timestamp counter aligned to absolute time. The hardware adds a
// fixed-point increment to a 64-bit accumulator every datapath tick; the
// discipline loop measures the accumulator error at each GPS PPS edge and
// trims the increment (a PI servo), stepping the phase outright on a cold
// start. We model exactly that.
#pragma once

#include <cstdint>
#include <optional>

#include "osnt/common/time.hpp"
#include "osnt/tstamp/gps.hpp"
#include "osnt/tstamp/oscillator.hpp"
#include "osnt/tstamp/timestamp.hpp"

namespace osnt::tstamp {

struct ClockConfig {
  Oscillator::Config osc{};
  bool discipline = true;  ///< false = free-running (GPS ignored)
  double servo_kp = 0.7;   ///< fraction of phase error removed per second
  double servo_ki = 0.3;   ///< integral gain (absorbs frequency offset)
  /// Above this error the clock phase-steps instead of slewing.
  double step_threshold_ns = 10'000.0;
};

class DisciplinedClock {
 public:
  using Config = ClockConfig;

  /// The GPS model must outlive the clock.
  DisciplinedClock(GpsModel& gps, Config cfg = Config());

  /// Device timestamp at ground-truth time `truth`. Monotonic queries.
  [[nodiscard]] Timestamp now(Picos truth);

  /// Device-vs-truth error (device minus truth) in ns, at `truth`.
  [[nodiscard]] double error_nanos(Picos truth);

  [[nodiscard]] std::uint64_t pps_edges_seen() const noexcept { return pps_count_; }
  [[nodiscard]] double last_pps_error_ns() const noexcept { return last_err_ns_; }
  /// Current servo frequency trim in ppm (0 when undisciplined).
  [[nodiscard]] double trim_ppm() const noexcept { return trim_ * 1e6; }
  /// True when disciplining is on but no PPS is currently available —
  /// the clock coasts on its last frequency estimate (holdover).
  [[nodiscard]] bool in_holdover() const noexcept {
    return cfg_.discipline && !next_pps_.has_value();
  }

 private:
  void advance_to(Picos truth);
  void process_pps(Picos edge);

  Oscillator osc_;
  GpsModel* gps_;
  Config cfg_;

  /// Accumulated device time in 2^-64 second units (96-bit headroom).
  unsigned __int128 acc_ = 0;
  std::uint64_t nominal_inc_;  ///< 2^-64 s per tick at nominal frequency
  std::uint64_t increment_;    ///< current (trimmed) per-tick increment
  double trim_ = 0.0;          ///< fractional frequency adjustment
  std::uint64_t last_ticks_ = 0;

  std::optional<Picos> next_pps_;
  Picos holdover_recheck_ = 0;
  double last_err_ns_ = 0.0;
  std::uint64_t pps_count_ = 0;
};

}  // namespace osnt::tstamp
