// Transmit-timestamp embedding: the generator writes the 64-bit stamp
// (taken just before the TX MAC) into the packet at a preconfigured byte
// offset; the receiver extracts it to compute one-way latency. A 32-bit
// sequence number travels with it for loss/reordering accounting.
#pragma once

#include <cstdint>
#include <optional>

#include "osnt/common/types.hpp"
#include "osnt/tstamp/timestamp.hpp"

namespace osnt::tstamp {

/// Default embed offset: just past Ethernet(14) + IPv4(20) + UDP(8).
inline constexpr std::size_t kDefaultEmbedOffset = 42;
/// Bytes consumed at the offset: 8 (timestamp) + 4 (sequence).
inline constexpr std::size_t kEmbedSize = 12;

struct EmbeddedStamp {
  Timestamp ts;
  std::uint32_t seq = 0;
};

/// Write stamp+seq at `offset`; false when the frame is too short.
bool embed_timestamp(MutByteSpan frame, std::size_t offset,
                     EmbeddedStamp stamp) noexcept;

/// Read back what embed_timestamp wrote; nullopt when out of bounds.
[[nodiscard]] std::optional<EmbeddedStamp> extract_timestamp(
    ByteSpan frame, std::size_t offset) noexcept;

}  // namespace osnt::tstamp
