// Multi-tester fabric harness — the paper's closing vision ("deployments
// may see the use of hundreds or thousands of testers, offering
// previously unobtainable insights"). Builds a leaf-spine fabric of
// legacy switches with one OSNT tester per edge port, statically
// programmed (no flooding, loop-safe), and measures one-way latency
// between any tester pair using GPS-synchronized timestamps.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "osnt/common/stats.hpp"
#include "osnt/core/device.hpp"
#include "osnt/dut/legacy_switch.hpp"
#include "osnt/sim/engine.hpp"

namespace osnt::topo {

struct FabricConfig {
  std::size_t leaves = 2;
  std::size_t spines = 2;
  std::size_t testers_per_leaf = 2;
  dut::LegacySwitchConfig leaf_cfg{};   ///< num_ports set by the fabric
  dut::LegacySwitchConfig spine_cfg{};  ///< num_ports set by the fabric
  core::DeviceConfig tester_cfg{};      ///< each tester uses its port 0
};

class LeafSpineFabric {
 public:
  using Config = FabricConfig;

  LeafSpineFabric(sim::Engine& eng, Config cfg = Config());

  LeafSpineFabric(const LeafSpineFabric&) = delete;
  LeafSpineFabric& operator=(const LeafSpineFabric&) = delete;

  [[nodiscard]] std::size_t tester_count() const noexcept {
    return testers_.size();
  }
  [[nodiscard]] core::OsntDevice& tester(std::size_t i) {
    return *testers_.at(i);
  }
  [[nodiscard]] dut::LegacySwitch& leaf(std::size_t i) { return *leaves_.at(i); }
  [[nodiscard]] dut::LegacySwitch& spine(std::size_t i) {
    return *spines_.at(i);
  }
  [[nodiscard]] std::size_t leaf_of(std::size_t tester) const noexcept {
    return tester / cfg_.testers_per_leaf;
  }
  /// Deterministic addressing for tester i.
  [[nodiscard]] net::MacAddr tester_mac(std::size_t i) const noexcept;
  [[nodiscard]] net::Ipv4Addr tester_ip(std::size_t i) const noexcept;
  /// The spine that carries traffic *to* tester i (static ECMP-by-dst).
  [[nodiscard]] std::size_t spine_of(std::size_t tester) const noexcept {
    return tester % cfg_.spines;
  }
  /// Number of switch hops on the i→j path (0 if i == j).
  [[nodiscard]] std::size_t hops(std::size_t i, std::size_t j) const noexcept;

  /// One-way latency (ns) for `frames` probe frames from tester `src` to
  /// tester `dst`, using embedded TX timestamps against the destination
  /// card's GPS-disciplined capture stamps.
  [[nodiscard]] SampleSet measure_latency(std::size_t src, std::size_t dst,
                                          std::size_t frames = 200,
                                          double pps = 100'000.0,
                                          std::size_t frame_size = 256);

 private:
  sim::Engine* eng_;
  Config cfg_;
  std::vector<std::unique_ptr<core::OsntDevice>> testers_;
  std::vector<std::unique_ptr<dut::LegacySwitch>> leaves_;
  std::vector<std::unique_ptr<dut::LegacySwitch>> spines_;
};

}  // namespace osnt::topo
