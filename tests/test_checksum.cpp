// RFC 1071 checksum properties and known vectors.
#include <gtest/gtest.h>

#include "osnt/common/random.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/net/checksum.hpp"
#include "osnt/net/parser.hpp"
#include "osnt/net/tcp_options.hpp"

namespace osnt::net {
namespace {

TEST(InternetChecksum, Rfc1071Example) {
  // The worked example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7
  // sum to ddf2 (before inversion).
  const std::uint8_t data[] = {0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7};
  EXPECT_EQ(internet_checksum(ByteSpan{data, 8}),
            static_cast<std::uint16_t>(~0xDDF2 & 0xFFFF));
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const std::uint8_t even[] = {0x12, 0x34, 0xAB, 0x00};
  const std::uint8_t odd[] = {0x12, 0x34, 0xAB};
  EXPECT_EQ(internet_checksum(ByteSpan{even, 4}),
            internet_checksum(ByteSpan{odd, 3}));
}

TEST(InternetChecksum, VerificationYieldsZero) {
  // Appending the computed checksum makes the whole sum validate to 0.
  Rng rng{1};
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data;
    const auto n = 2 * rng.uniform_int(4, 50);
    for (std::uint64_t i = 0; i < n; ++i)
      data.push_back(static_cast<std::uint8_t>(rng()));
    const std::uint16_t ck = internet_checksum(ByteSpan{data.data(), data.size()});
    data.push_back(static_cast<std::uint8_t>(ck >> 8));
    data.push_back(static_cast<std::uint8_t>(ck));
    EXPECT_EQ(internet_checksum(ByteSpan{data.data(), data.size()}), 0u);
  }
}

TEST(InternetChecksum, IncrementalAdditionsMatch) {
  const std::uint8_t part1[] = {0xDE, 0xAD};
  const std::uint8_t part2[] = {0xBE, 0xEF};
  InternetChecksum inc;
  inc.add(ByteSpan{part1, 2});
  inc.add(ByteSpan{part2, 2});
  const std::uint8_t all[] = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(inc.fold(), internet_checksum(ByteSpan{all, 4}));
}

TEST(L4Checksum, PseudoHeaderAffectsResult) {
  const std::uint8_t seg[] = {0x00, 0x35, 0x00, 0x35, 0x00, 0x08, 0x00, 0x00};
  const auto a = l4_checksum_v4(Ipv4Addr::of(1, 1, 1, 1),
                                Ipv4Addr::of(2, 2, 2, 2), 17, ByteSpan{seg, 8});
  const auto b = l4_checksum_v4(Ipv4Addr::of(1, 1, 1, 2),
                                Ipv4Addr::of(2, 2, 2, 2), 17, ByteSpan{seg, 8});
  EXPECT_NE(a, b);
}

TEST(L4Checksum, V6DiffersFromV4) {
  // Note: addresses are chosen so the ones-complement sums genuinely
  // differ (v6 ::1/::2 would alias v4 0.0.0.1/0.0.0.2 bit-for-bit).
  const std::uint8_t seg[] = {0x00, 0x35, 0x00, 0x35, 0x00, 0x08, 0x00, 0x00};
  Ipv6Addr s6, d6;
  s6.b[0] = 0x20;
  s6.b[15] = 1;
  d6.b[0] = 0xFE;
  d6.b[15] = 2;
  const auto v6 = l4_checksum_v6(s6, d6, 17, ByteSpan{seg, 8});
  const auto v4 = l4_checksum_v4(Ipv4Addr{1}, Ipv4Addr{2}, 17, ByteSpan{seg, 8});
  EXPECT_NE(v6, v4);
}

TEST(InternetChecksum, AddU32MatchesBytes) {
  InternetChecksum a;
  a.add_u32(0x0A000001);
  const std::uint8_t bytes[] = {0x0A, 0x00, 0x00, 0x01};
  InternetChecksum b;
  b.add(ByteSpan{bytes, 4});
  EXPECT_EQ(a.fold(), b.fold());
}

// ----------------------------------- TCP/IPv4 frames with header options

/// Build a TCP/IPv4 data frame carrying timestamps (+ optionally MSS)
/// options, as the tcp:: closed-loop workload emits them.
Packet tcp_frame_with_options(bool with_mss, std::size_t payload_len) {
  PacketBuilder b;
  b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
      .ipv4(Ipv4Addr::of(10, 0, 0, 1), Ipv4Addr::of(10, 0, 1, 1),
            ipproto::kTcp)
      .tcp(40000, 50000, 0x01020304, 0x0a0b0c0d, TcpFlags::kAck | TcpFlags::kPsh);
  std::vector<TcpOption> opts{tcp_option_timestamps(123456, 654321)};
  if (with_mss) opts.push_back(tcp_option_mss(1448));
  b.tcp_options(opts);
  Bytes payload(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  b.payload(payload);
  return b.build();
}

/// Fold the frame's TCP segment (header + options + payload, as bounded
/// by the IP total length) through the pseudo-header checksum; a frame
/// with a correct embedded checksum folds to zero.
std::uint16_t tcp_segment_residual(const Packet& pkt) {
  const auto parsed = parse_packet(pkt.bytes());
  EXPECT_TRUE(parsed);
  EXPECT_EQ(parsed->l4, L4Kind::kTcp);
  const std::size_t seg_len =
      parsed->ipv4.total_length - parsed->ipv4.header_len();
  return l4_checksum_v4(parsed->ipv4.src, parsed->ipv4.dst, ipproto::kTcp,
                        pkt.bytes().subspan(parsed->l4_offset, seg_len));
}

TEST(TcpChecksum, TimestampOptionFrameValidates) {
  const auto pkt = tcp_frame_with_options(/*with_mss=*/false, 64);
  EXPECT_EQ(tcp_segment_residual(pkt), 0u);
  const auto parsed = parse_packet(pkt.bytes());
  ASSERT_TRUE(parsed);
  // Timestamps pad 10 -> 12 bytes: a 32-byte header, offset 8 words.
  EXPECT_EQ(parsed->tcp.header_len(), 32u);
}

TEST(TcpChecksum, TimestampPlusMssFrameValidates) {
  const auto pkt = tcp_frame_with_options(/*with_mss=*/true, 1448);
  EXPECT_EQ(tcp_segment_residual(pkt), 0u);
  const auto parsed = parse_packet(pkt.bytes());
  ASSERT_TRUE(parsed);
  const auto opts = parse_tcp_options(pkt.bytes().subspan(
      parsed->l4_offset + TcpHeader::kMinSize,
      parsed->tcp.header_len() - TcpHeader::kMinSize));
  ASSERT_TRUE(opts);
  EXPECT_EQ(tcp_mss_of(*opts), 1448);
  const auto ts = tcp_timestamps_of(*opts);
  ASSERT_TRUE(ts);
  EXPECT_EQ(ts->first, 123456u);
  EXPECT_EQ(ts->second, 654321u);
}

TEST(TcpChecksum, CorruptedOptionByteFailsValidation) {
  // The options live between the fixed header and the payload — a bit
  // error there must be caught by the checksum like any payload error.
  auto pkt = tcp_frame_with_options(/*with_mss=*/true, 256);
  const auto parsed = parse_packet(pkt.bytes());
  ASSERT_TRUE(parsed);
  pkt.data[parsed->l4_offset + TcpHeader::kMinSize + 2] ^= 0x40;
  EXPECT_NE(tcp_segment_residual(pkt), 0u);
}

TEST(TcpChecksum, CorruptedPayloadByteFailsValidation) {
  auto pkt = tcp_frame_with_options(/*with_mss=*/false, 512);
  const auto parsed = parse_packet(pkt.bytes());
  ASSERT_TRUE(parsed);
  pkt.data[parsed->payload_offset + 100] ^= 0x01;
  EXPECT_NE(tcp_segment_residual(pkt), 0u);
}

TEST(TcpChecksum, MinFramePaddingStaysOutsideTheSegment) {
  // A short TCP frame is padded to the 64-byte Ethernet minimum; the pad
  // bytes sit beyond the IP total length and must not disturb the
  // checksum bound to the segment.
  const auto pkt = tcp_frame_with_options(/*with_mss=*/false, 1);
  EXPECT_GE(pkt.size(), 64u);
  EXPECT_EQ(tcp_segment_residual(pkt), 0u);
}

}  // namespace
}  // namespace osnt::net
