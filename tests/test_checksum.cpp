// RFC 1071 checksum properties and known vectors.
#include <gtest/gtest.h>

#include "osnt/common/random.hpp"
#include "osnt/net/checksum.hpp"

namespace osnt::net {
namespace {

TEST(InternetChecksum, Rfc1071Example) {
  // The worked example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7
  // sum to ddf2 (before inversion).
  const std::uint8_t data[] = {0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7};
  EXPECT_EQ(internet_checksum(ByteSpan{data, 8}),
            static_cast<std::uint16_t>(~0xDDF2 & 0xFFFF));
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const std::uint8_t even[] = {0x12, 0x34, 0xAB, 0x00};
  const std::uint8_t odd[] = {0x12, 0x34, 0xAB};
  EXPECT_EQ(internet_checksum(ByteSpan{even, 4}),
            internet_checksum(ByteSpan{odd, 3}));
}

TEST(InternetChecksum, VerificationYieldsZero) {
  // Appending the computed checksum makes the whole sum validate to 0.
  Rng rng{1};
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data;
    const auto n = 2 * rng.uniform_int(4, 50);
    for (std::uint64_t i = 0; i < n; ++i)
      data.push_back(static_cast<std::uint8_t>(rng()));
    const std::uint16_t ck = internet_checksum(ByteSpan{data.data(), data.size()});
    data.push_back(static_cast<std::uint8_t>(ck >> 8));
    data.push_back(static_cast<std::uint8_t>(ck));
    EXPECT_EQ(internet_checksum(ByteSpan{data.data(), data.size()}), 0u);
  }
}

TEST(InternetChecksum, IncrementalAdditionsMatch) {
  const std::uint8_t part1[] = {0xDE, 0xAD};
  const std::uint8_t part2[] = {0xBE, 0xEF};
  InternetChecksum inc;
  inc.add(ByteSpan{part1, 2});
  inc.add(ByteSpan{part2, 2});
  const std::uint8_t all[] = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(inc.fold(), internet_checksum(ByteSpan{all, 4}));
}

TEST(L4Checksum, PseudoHeaderAffectsResult) {
  const std::uint8_t seg[] = {0x00, 0x35, 0x00, 0x35, 0x00, 0x08, 0x00, 0x00};
  const auto a = l4_checksum_v4(Ipv4Addr::of(1, 1, 1, 1),
                                Ipv4Addr::of(2, 2, 2, 2), 17, ByteSpan{seg, 8});
  const auto b = l4_checksum_v4(Ipv4Addr::of(1, 1, 1, 2),
                                Ipv4Addr::of(2, 2, 2, 2), 17, ByteSpan{seg, 8});
  EXPECT_NE(a, b);
}

TEST(L4Checksum, V6DiffersFromV4) {
  // Note: addresses are chosen so the ones-complement sums genuinely
  // differ (v6 ::1/::2 would alias v4 0.0.0.1/0.0.0.2 bit-for-bit).
  const std::uint8_t seg[] = {0x00, 0x35, 0x00, 0x35, 0x00, 0x08, 0x00, 0x00};
  Ipv6Addr s6, d6;
  s6.b[0] = 0x20;
  s6.b[15] = 1;
  d6.b[0] = 0xFE;
  d6.b[15] = 2;
  const auto v6 = l4_checksum_v6(s6, d6, 17, ByteSpan{seg, 8});
  const auto v4 = l4_checksum_v4(Ipv4Addr{1}, Ipv4Addr{2}, 17, ByteSpan{seg, 8});
  EXPECT_NE(v6, v4);
}

TEST(InternetChecksum, AddU32MatchesBytes) {
  InternetChecksum a;
  a.add_u32(0x0A000001);
  const std::uint8_t bytes[] = {0x0A, 0x00, 0x00, 0x01};
  InternetChecksum b;
  b.add(ByteSpan{bytes, 4});
  EXPECT_EQ(a.fold(), b.fold());
}

}  // namespace
}  // namespace osnt::net
